package chant_test

import (
	"fmt"

	"chant"
)

// A minimal two-PE machine: thread 0 on PE 0 messages thread 0 on PE 1.
func Example() {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS, DisableServer: true},
		chant.Paragon1994(),
	)
	rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			t.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 1, []byte("hello"))
		},
		{PE: 1, Proc: 0}: func(t *chant.Thread) {
			buf := make([]byte, 16)
			n, from, _ := t.Recv(chant.AnyThread, 1, buf)
			fmt.Printf("%s from %v\n", buf[:n], from)
		},
	})
	// Output: hello from pe0.p0.t0
}

// Remote thread creation and join: the global-thread-operations layer.
func ExampleThread_Create() {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)
	rt.Register("worker", func(t *chant.Thread, arg []byte) {
		t.Exit("processed " + string(arg))
	})
	rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			id, _ := t.Create(1, 0, "worker", []byte("dataset-7"), chant.CreateOpts{})
			v, _ := t.Join(id)
			fmt.Println(v)
		},
	})
	// Output: processed dataset-7
}

// A remote service request: the Section 3.2 communication style.
func ExampleThread_Call() {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsWQ},
		chant.Paragon1994(),
	)
	rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			var reply [32]byte
			n, _ := t.Call(chant.Addr{PE: 1, Proc: 0}, 1, []byte("stat"), reply[:])
			fmt.Printf("%s\n", reply[:n])
		},
		{PE: 1, Proc: 0}: func(t *chant.Thread) {
			t.Process().RegisterHandler(1, func(ctx *chant.RSRContext) ([]byte, error) {
				return []byte("load=0.42"), nil
			})
		},
	})
	// Output: load=0.42
}

// A collective all-reduce across the machine's main threads.
func ExampleGroup() {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS, DisableServer: true},
		chant.Paragon1994(),
	)
	members := []chant.ChanterID{{PE: 0, Proc: 0, Thread: 0}, {PE: 1, Proc: 0, Thread: 0}}
	mk := func(pe int32) chant.MainFunc {
		return func(t *chant.Thread) {
			g, _ := chant.NewGroup(members, 0x1000)
			sum, _ := g.AllReduceInt64(t, chant.OpSum, int64(pe)+1)
			if pe == 0 {
				fmt.Println("sum:", sum)
			}
		}
	}
	rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: mk(0),
		{PE: 1, Proc: 0}: mk(1),
	})
	// Output: sum: 3
}
