// RPC: a distributed key-value store built on Chant's remote service
// requests — the Section 3.2 usage pattern. PE 1 owns the store; clients
// anywhere issue remote fetches and updates through the server thread,
// which polls for requests without interrupts (paper Figure 7). A slow
// lookup shows the deferred-reply pattern: the handler hands the work to a
// spawned thread so the server keeps serving.
//
//	go run ./examples/rpc
package main

import (
	"fmt"
	"log"

	"chant"
)

// Handler ids agreed between client and server.
const (
	hPut int32 = iota
	hGet
	hSlowGet
)

func main() {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsWQ},
		chant.Paragon1994(),
	)
	server := chant.Addr{PE: 1, Proc: 0}

	mains := map[chant.Addr]chant.MainFunc{
		server: func(t *chant.Thread) {
			// The store lives in this process; only its threads touch it,
			// so no locking is needed (handlers run on the server thread).
			store := map[string]string{}
			p := t.Process()

			p.RegisterHandler(hPut, func(ctx *chant.RSRContext) ([]byte, error) {
				k, v := split(ctx.Req)
				store[k] = v
				return nil, nil
			})
			p.RegisterHandler(hGet, func(ctx *chant.RSRContext) ([]byte, error) {
				v, ok := store[string(ctx.Req)]
				if !ok {
					return nil, fmt.Errorf("no such key %q", ctx.Req)
				}
				return []byte(v), nil
			})
			p.RegisterHandler(hSlowGet, func(ctx *chant.RSRContext) ([]byte, error) {
				// Simulate an expensive lookup: defer the reply and let a
				// worker thread carry it, so the server thread can keep
				// serving other requests meanwhile.
				key := string(ctx.Req) // copy out: Req dies with the handler
				ctx.DeferReply()
				p.CreateLocal("slow-lookup", func(w *chant.Thread) {
					w.Process().Endpoint().Host().Compute(200_000) // ~8ms of work
					v, ok := store[key]
					if !ok {
						ctx.Reply(nil, fmt.Errorf("no such key %q", key))
						return
					}
					ctx.Reply([]byte(v), nil)
				}, chant.SpawnOpts{})
				return nil, nil
			})
		},
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			reply := make([]byte, 256)

			must(t.Notify(server, hPut, []byte("lang\x00Fortran M")))
			must(t.Notify(server, hPut, []byte("machine\x00Intel Paragon")))

			n, err := t.Call(server, hGet, []byte("machine"), reply)
			must(err)
			fmt.Printf("get machine      -> %s\n", reply[:n])

			n, err = t.Call(server, hSlowGet, []byte("lang"), reply)
			must(err)
			fmt.Printf("slow-get lang    -> %s\n", reply[:n])

			if _, err := t.Call(server, hGet, []byte("missing"), reply); err != nil {
				fmt.Printf("get missing      -> error: %v\n", err)
			}
		},
	}

	res, err := rt.Run(mains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d remote service requests in %.2f virtual ms\n",
		res.Total.RSRRequests, res.VirtualEnd.Millis())
}

func split(req []byte) (string, string) {
	for i, b := range req {
		if b == 0 {
			return string(req[:i]), string(req[i+1:])
		}
	}
	return string(req), ""
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
