// Pingpong: per-message latency between two talking threads, across the
// polling policies and message sizes — a miniature of the paper's Table 2
// experiment that an application programmer could run to choose a policy.
//
//	go run ./examples/pingpong [-rounds N]
package main

import (
	"flag"
	"fmt"
	"log"

	"chant"
)

func main() {
	rounds := flag.Int("rounds", 300, "message exchanges per configuration")
	flag.Parse()

	policies := []chant.PolicyKind{
		chant.ThreadPolls, chant.SchedulerPollsPS,
		chant.SchedulerPollsWQ, chant.SchedulerPollsWQAny,
	}
	sizes := []int{64, 1024, 8192}

	fmt.Printf("%-24s", "policy")
	for _, s := range sizes {
		fmt.Printf("  %8dB", s)
	}
	fmt.Println("   (virtual us per one-way message)")

	for _, pol := range policies {
		fmt.Printf("%-24v", pol)
		for _, size := range sizes {
			fmt.Printf("  %9.1f", measure(pol, size, *rounds))
		}
		fmt.Println()
	}
}

// measure runs one ping-pong configuration on a simulated 2-PE machine and
// returns the average one-way message time in virtual microseconds.
func measure(policy chant.PolicyKind, size, rounds int) float64 {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: policy, DisableServer: true},
		chant.Paragon1994(),
	)
	var perMsgUS float64
	_, err := rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			peer := chant.ChanterID{PE: 1, Proc: 0, Thread: 0}
			out := make([]byte, size)
			buf := make([]byte, size)
			host := t.Process().Endpoint().Host()
			start := host.Now()
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				t.Recv(peer, 1, buf)
			}
			perMsgUS = host.Now().Sub(start).Micros() / float64(2*rounds)
		},
		{PE: 1, Proc: 0}: func(t *chant.Thread) {
			peer := chant.ChanterID{PE: 0, Proc: 0, Thread: 0}
			out := make([]byte, size)
			buf := make([]byte, size)
			for i := 0; i < rounds; i++ {
				t.Recv(peer, 1, buf)
				t.Send(peer, 1, out)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return perMsgUS
}
