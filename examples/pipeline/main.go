// Pipeline: a three-stage software pipeline across three PEs connected by
// flow-controlled channels — the Fortran-M-style port programming model
// the paper's Chant was built to host. Stage 1 generates records, stage 2
// transforms them, stage 3 aggregates; midway through, stage 3 hands its
// receive port to a fresh thread without losing a record.
//
//	go run ./examples/pipeline [-records N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"chant"
)

func main() {
	records := flag.Int("records", 40, "records pushed through the pipeline")
	flag.Parse()

	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 3, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)

	total := *records
	var finalSum uint64

	mains := map[chant.Addr]chant.MainFunc{
		// Stage 1 (pe0): source. Owns both channels' broker state and
		// distributes the descriptors.
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			ab, err := chant.OpenChannel(t, 4, 0x2000) // stage1 -> stage2
			must(err)
			bc, err := chant.OpenChannel(t, 4, 0x2100) // stage2 -> stage3
			must(err)
			must(t.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 1,
				append(ab.Encode(), bc.Encode()...)))
			must(t.Send(chant.ChanterID{PE: 2, Proc: 0, Thread: 0}, 1, bc.Encode()))

			out, err := ab.BindSend(t)
			must(err)
			var rec [8]byte
			for i := 0; i < total; i++ {
				binary.LittleEndian.PutUint64(rec[:], uint64(i))
				must(out.Send(rec[:]))
			}
		},
		// Stage 2 (pe1): transform (square each record).
		{PE: 1, Proc: 0}: func(t *chant.Thread) {
			buf := make([]byte, 64)
			n, _, err := t.Recv(chant.AnyThread, 1, buf)
			must(err)
			ab, err := chant.DecodeChannel(buf[:20])
			must(err)
			bc, err := chant.DecodeChannel(buf[20:n])
			must(err)
			in, err := ab.BindRecv(t)
			must(err)
			out, err := bc.BindSend(t)
			must(err)
			var rec [8]byte
			for i := 0; i < total; i++ {
				_, err := in.Recv(rec[:])
				must(err)
				v := binary.LittleEndian.Uint64(rec[:])
				binary.LittleEndian.PutUint64(rec[:], v*v)
				must(out.Send(rec[:]))
			}
		},
		// Stage 3 (pe2): sink, with a mid-stream handoff to a successor.
		{PE: 2, Proc: 0}: func(t *chant.Thread) {
			buf := make([]byte, 64)
			n, _, err := t.Recv(chant.AnyThread, 1, buf)
			must(err)
			bc, err := chant.DecodeChannel(buf[:n])
			must(err)

			successor := t.Process().CreateLocal("sink2", func(me *chant.Thread) {
				rp, pending, err := bc.AcceptRecv(me)
				must(err)
				seen := total / 2
				for _, m := range pending {
					finalSum += binary.LittleEndian.Uint64(m)
					seen++
				}
				var rec [8]byte
				for ; seen < total; seen++ {
					_, err := rp.Recv(rec[:])
					must(err)
					finalSum += binary.LittleEndian.Uint64(rec[:])
				}
			}, chant.SpawnOpts{})

			in, err := bc.BindRecv(t)
			must(err)
			var rec [8]byte
			for i := 0; i < total/2; i++ {
				_, err := in.Recv(rec[:])
				must(err)
				finalSum += binary.LittleEndian.Uint64(rec[:])
			}
			fmt.Printf("stage 3 handing off after %d records\n", total/2)
			must(in.Handoff(successor.ID()))
			_, err = t.JoinLocal(successor)
			must(err)
		},
	}

	res, err := rt.Run(mains)
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(0)
	for i := 0; i < total; i++ {
		want += uint64(i) * uint64(i)
	}
	fmt.Printf("sum of squares 0..%d = %d (want %d) in %.1f virtual ms\n",
		total-1, finalSum, want, res.VirtualEnd.Millis())
	if finalSum != want {
		log.Fatal("pipeline lost or corrupted records")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
