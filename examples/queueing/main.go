// Queueing: an open queueing network simulated with the pdes package —
// logical processes as talking threads across four PEs, exactly the
// simulation use the paper cites first for lightweight threads. Jobs
// arrive at a router that alternates between two servers with different
// speeds; each server queues jobs FIFO and forwards completions to a sink
// that reports throughput and latency.
//
//	go run ./examples/queueing [-end N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"chant"
	"chant/pdes"
)

func main() {
	end := flag.Uint64("end", 20000, "simulation horizon (ticks)")
	flag.Parse()

	sim := pdes.New(pdes.Time(*end))

	const (
		interArrival = pdes.Time(50)
		fastService  = pdes.Time(60)
		slowService  = pdes.Time(110)
	)

	// Source: a job every interArrival ticks, stamped with its birth time.
	check(sim.AddLP(pdes.LPSpec{
		Name: "arrivals", PE: 0, Lookahead: interArrival,
		Source: func(ctx *pdes.Ctx) error {
			for at := interArrival; at < pdes.Time(*end); at += interArrival {
				var job [8]byte
				binary.LittleEndian.PutUint64(job[:], uint64(at))
				if err := ctx.Emit("router", at, job[:]); err != nil {
					return err
				}
				if err := ctx.AdvanceTo(at); err != nil {
					return err
				}
			}
			return nil
		},
	}))

	// Router: round-robin dispatch (a real router might inspect queue
	// lengths through shared variables; round-robin keeps the model
	// deterministic).
	turn := 0
	check(sim.AddLP(pdes.LPSpec{
		Name: "router", PE: 1, Lookahead: 1,
		Handler: func(ctx *pdes.Ctx, ev pdes.Event) error {
			dst := "fast"
			if turn%2 == 1 {
				dst = "slow"
			}
			turn++
			return ctx.Emit(dst, ev.At+1, ev.Data)
		},
	}))

	// Servers: FIFO single-server queues with deterministic service times.
	server := func(service pdes.Time) pdes.Handler {
		var freeAt pdes.Time
		return func(ctx *pdes.Ctx, ev pdes.Event) error {
			start := ev.At
			if freeAt > start {
				start = freeAt // the job waits in queue
			}
			done := start + service
			freeAt = done
			return ctx.Emit("sink", done, ev.Data)
		}
	}
	check(sim.AddLP(pdes.LPSpec{Name: "fast", PE: 2, Lookahead: fastService, Handler: server(fastService)}))
	check(sim.AddLP(pdes.LPSpec{Name: "slow", PE: 3, Lookahead: slowService, Handler: server(slowService)}))

	// Sink: aggregates latency.
	completed := 0
	var totalLatency uint64
	var maxLatency uint64
	check(sim.AddLP(pdes.LPSpec{
		Name: "sink", PE: 0, Lookahead: 1,
		Handler: func(ctx *pdes.Ctx, ev pdes.Event) error {
			born := binary.LittleEndian.Uint64(ev.Data)
			lat := uint64(ev.At) - born
			completed++
			totalLatency += lat
			if lat > maxLatency {
				maxLatency = lat
			}
			return nil
		},
	}))

	check(sim.Connect("arrivals", "router", 16))
	check(sim.Connect("router", "fast", 16))
	check(sim.Connect("router", "slow", 16))
	check(sim.Connect("fast", "sink", 16))
	check(sim.Connect("slow", "sink", 16))

	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 4, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)
	stats, err := sim.Run(rt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("horizon %d ticks: %d jobs arrived, %d completed\n",
		*end, stats["arrivals"].Emitted, completed)
	if completed > 0 {
		fmt.Printf("latency: mean %.1f ticks, max %d ticks\n",
			float64(totalLatency)/float64(completed), maxLatency)
	}
	fmt.Printf("server loads: fast=%d slow=%d jobs\n",
		stats["fast"].Processed, stats["slow"].Processed)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
