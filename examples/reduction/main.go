// Reduction: data-parallel numerical work on talking threads — the kind of
// HPF-style task the paper built Chant to support. A group of threads
// spread over several PEs estimates pi by integrating 4/(1+x^2) over
// [0,1]: the interval count is published through a shared variable (owner-
// based coherence over remote service requests), each thread integrates
// its strip, and a tree all-reduce combines the partial sums. A barrier
// brackets the timed region, as an SPMD code would.
//
//	go run ./examples/reduction [-pes N] [-threads N] [-intervals N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"chant"
)

func main() {
	pes := flag.Int("pes", 4, "processing elements")
	threads := flag.Int("threads", 4, "group threads per PE")
	intervals := flag.Int64("intervals", 1_000_000, "integration intervals")
	flag.Parse()

	rt := chant.NewSimRuntime(
		chant.Topology{PEs: *pes, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)

	// The group: thread w on each PE; worker local ids start at 2 (main=0,
	// server=1) and are identical on every PE by construction.
	var members []chant.ChanterID
	for w := 0; w < *threads; w++ {
		for pe := 0; pe < *pes; pe++ {
			members = append(members, chant.ChanterID{PE: int32(pe), Proc: 0, Thread: int32(w) + 2})
		}
	}
	home := chant.Addr{PE: 0, Proc: 0}

	var piEstimate float64
	mains := map[chant.Addr]chant.MainFunc{}
	for pe := 0; pe < *pes; pe++ {
		pe := int32(pe)
		mains[chant.Addr{PE: pe, Proc: 0}] = func(t *chant.Thread) {
			p := t.Process()

			// The problem size is published through a shared variable
			// homed on PE 0; every other PE's first read fetches and
			// caches it.
			var nbuf [8]byte
			binary.LittleEndian.PutUint64(nbuf[:], uint64(*intervals))
			var init []byte
			if pe == 0 {
				init = nbuf[:]
			}
			shared, err := p.NewShared("intervals", home, init)
			if err != nil {
				log.Fatal(err)
			}

			var ws []*chant.Thread
			for w := 0; w < *threads; w++ {
				ws = append(ws, p.CreateLocal("integrator", func(me *chant.Thread) {
					g, err := chant.NewGroup(members, 0x1000)
					if err != nil {
						log.Fatal(err)
					}
					rank := g.Rank(me.ID())
					size := g.Size()

					var buf [8]byte
					if _, err := shared.Read(me, buf[:]); err != nil {
						log.Fatal(err)
					}
					n := int64(binary.LittleEndian.Uint64(buf[:]))

					if err := g.Barrier(me); err != nil {
						log.Fatal(err)
					}

					// Integrate this thread's strip; count the work against
					// the simulated processor so the speedup is honest.
					h := 1.0 / float64(n)
					sum := 0.0
					for i := int64(rank); i < n; i += int64(size) {
						x := h * (float64(i) + 0.5)
						sum += 4.0 / (1.0 + x*x)
					}
					me.Process().Endpoint().Host().Compute(n / int64(size))

					// Combine partial sums with a fixed-point all-reduce
					// (collectives carry bytes; we scale to keep precision).
					scaled := int64(sum * h * 1e12)
					total, err := g.AllReduceInt64(me, chant.OpSum, scaled)
					if err != nil {
						log.Fatal(err)
					}
					if rank == 0 {
						piEstimate = float64(total) / 1e12
					}
				}, chant.SpawnOpts{}))
			}
			for _, w := range ws {
				if _, err := t.JoinLocal(w); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	res, err := rt.Run(mains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ~= %.9f (error %.2e) with %d threads on %d PEs\n",
		piEstimate, math.Abs(piEstimate-math.Pi), len(members), *pes)
	fmt.Printf("virtual time %.2fms, %d messages, %d RSRs\n",
		res.VirtualEnd.Millis(), res.Total.Sends, res.Total.RSRRequests)
}
