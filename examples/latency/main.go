// Latency: the paper's headline motivation — "in a distributed memory
// system, lightweight threads can overlap communication with computation
// (latency tolerance)". A fixed volume of work (remote fetches plus
// per-fetch computation) runs on a 2-PE machine with 1, 2, 4, 8, and 16
// threads per PE: more threads hide more of the wire latency behind
// computation, shrinking total time until the processor is saturated.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"chant"
)

const (
	fetches      = 64     // remote fetches per PE
	computeUnits = 20_000 // work per fetch (~0.76 virtual ms)
	fetchBytes   = 2048
)

func main() {
	fmt.Println("threads/PE   virtual time    speedup   (fixed total work)")
	base := 0.0
	for _, threads := range []int{1, 2, 4, 8, 16} {
		ms := run(threads)
		if base == 0 {
			base = ms
		}
		fmt.Printf("%10d   %9.1f ms   %6.2fx\n", threads, ms, base/ms)
	}
}

// run executes the workload with the given concurrency and returns the
// virtual completion time in milliseconds.
func run(threads int) float64 {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)

	peMain := func(pe int32) chant.MainFunc {
		return func(t *chant.Thread) {
			p := t.Process()
			host := p.Endpoint().Host()

			// Each PE runs a fetch server holding this PE's share of the
			// data. It is a daemon: it serves until the whole machine shuts
			// down, so the peer can fetch for as long as it needs.
			server := p.CreateLocal("fetchserver", func(me *chant.Thread) {
				data := make([]byte, fetchBytes)
				req := make([]byte, 4)
				for {
					_, from, err := me.Recv(chant.AnyThread, 1, req)
					if err != nil {
						return
					}
					if err := me.Send(from, 2, data); err != nil {
						return
					}
				}
			}, chant.SpawnOpts{Daemon: true})

			// Exchange server identities with the peer's main thread.
			peerMain := chant.ChanterID{PE: 1 - pe, Proc: 0, Thread: 0}
			if err := t.Send(peerMain, 3, []byte{byte(server.ID().Thread)}); err != nil {
				log.Fatal(err)
			}
			idBuf := make([]byte, 1)
			if _, _, err := t.Recv(peerMain, 3, idBuf); err != nil {
				log.Fatal(err)
			}
			peerServer := chant.ChanterID{PE: 1 - pe, Proc: 0, Thread: int32(idBuf[0])}

			// The fetchers: request remote data, then compute on it. With
			// several fetchers, one thread's wire wait overlaps another's
			// computation — the latency-tolerance effect.
			perThread := fetches / threads
			var ws []*chant.Thread
			for w := 0; w < threads; w++ {
				ws = append(ws, p.CreateLocal("fetcher", func(me *chant.Thread) {
					buf := make([]byte, fetchBytes)
					for i := 0; i < perThread; i++ {
						if err := me.Send(peerServer, 1, []byte{'d'}); err != nil {
							log.Fatal(err)
						}
						if _, _, err := me.Recv(peerServer, 2, buf); err != nil {
							log.Fatal(err)
						}
						host.Compute(computeUnits)
					}
				}, chant.SpawnOpts{}))
			}
			for _, w := range ws {
				if _, err := t.JoinLocal(w); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	res, err := rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: peMain(0),
		{PE: 1, Proc: 0}: peMain(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.VirtualEnd.Millis()
}
