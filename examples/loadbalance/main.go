// Loadbalance: a dynamic self-scheduling task farm — one of the paper's
// motivating uses ("they can permit dynamic scheduling and load
// balancing"). PE 0 owns a bag of unevenly sized tasks; worker threads
// created remotely on every PE pull tasks through remote service requests
// whenever they go idle, so fast PEs automatically take more work.
//
//	go run ./examples/loadbalance [-tasks N] [-workers N]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"chant"
)

const (
	hGrab   int32 = iota // worker asks the master for the next task
	hReport              // worker reports a finished task's result
)

func main() {
	tasks := flag.Int("tasks", 64, "number of tasks in the bag")
	workers := flag.Int("workers", 3, "worker threads per PE")
	pes := flag.Int("pes", 4, "processing elements")
	flag.Parse()

	rt := chant.NewSimRuntime(
		chant.Topology{PEs: *pes, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)
	master := chant.Addr{PE: 0, Proc: 0}

	// Worker body: grab, compute, report, repeat until the bag is empty.
	rt.Register("worker", func(t *chant.Thread, arg []byte) {
		host := t.Process().Endpoint().Host()
		var reply [8]byte
		done := 0
		for {
			n, err := t.Call(master, hGrab, nil, reply[:])
			if err != nil || n == 0 {
				break // bag empty
			}
			units := int64(binary.LittleEndian.Uint32(reply[:]))
			host.Compute(units * 1000) // the task's work
			var report [8]byte
			binary.LittleEndian.PutUint32(report[:], uint32(units))
			if err := t.Notify(master, hReport, report[:4]); err != nil {
				break
			}
			done++
		}
		t.Exit(int64(done))
	})

	mains := map[chant.Addr]chant.MainFunc{}
	mains[master] = func(t *chant.Thread) {
		// Build an uneven bag: task i costs (i*7 mod 97)+3 kilounits.
		bag := make([]uint32, *tasks)
		for i := range bag {
			bag[i] = uint32((i*7)%97 + 3)
		}
		next := 0
		finished := 0
		unitsDone := make(map[int32]uint64) // per requesting PE

		p := t.Process()
		p.RegisterHandler(hGrab, func(ctx *chant.RSRContext) ([]byte, error) {
			if next >= len(bag) {
				return nil, nil // empty reply: shut down, worker
			}
			var out [4]byte
			binary.LittleEndian.PutUint32(out[:], bag[next])
			next++
			return out[:], nil
		})
		p.RegisterHandler(hReport, func(ctx *chant.RSRContext) ([]byte, error) {
			finished++
			unitsDone[ctx.Src.PE] += uint64(binary.LittleEndian.Uint32(ctx.Req))
			return nil, nil
		})

		// Create the workers across the whole machine.
		var ids []chant.ChanterID
		for pe := 0; pe < *pes; pe++ {
			for w := 0; w < *workers; w++ {
				id, err := t.Create(int32(pe), 0, "worker", nil, chant.CreateOpts{})
				if err != nil {
					log.Fatal(err)
				}
				ids = append(ids, id)
			}
		}
		// Join them all; each returns how many tasks it ran.
		total := int64(0)
		for _, id := range ids {
			v, err := t.Join(id)
			if err != nil {
				log.Fatal(err)
			}
			total += v.(int64)
		}
		fmt.Printf("tasks completed: %d (by %d workers on %d PEs)\n", total, len(ids), *pes)
		for pe := int32(0); pe < int32(*pes); pe++ {
			fmt.Printf("  pe%d computed %6d kilounits\n", pe, unitsDone[pe])
		}
		if total != int64(*tasks) || finished != *tasks {
			log.Fatalf("lost tasks: joined %d, reported %d, want %d", total, finished, *tasks)
		}
	}

	res, err := rt.Run(mains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished at virtual %.1fms; %d RSRs served by the master\n",
		res.VirtualEnd.Millis(), res.PerProc[master].RSRRequests)
}
