// Quickstart: a two-PE Chant machine. Thread 0 on PE 0 talks to thread 0
// on PE 1 with point-to-point messages, then creates a thread remotely and
// joins it — the paper's two communication styles in one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chant"
)

func main() {
	rt := chant.NewSimRuntime(
		chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)

	// Thread bodies that remote creates can name must be registered up
	// front (code cannot travel between address spaces).
	rt.Register("greeter", func(t *chant.Thread, arg []byte) {
		t.Exit(fmt.Sprintf("hello %s, from %v", arg, t.ID()))
	})

	mains := map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(t *chant.Thread) {
			// Point-to-point: send to the global thread (pe=1, proc=0,
			// thread=0) and await its reply.
			peer := chant.ChanterID{PE: 1, Proc: 0, Thread: 0}
			if err := t.Send(peer, 1, []byte("ping")); err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, 64)
			n, from, err := t.Recv(peer, 2, buf)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("p2p reply from %v: %s\n", from, buf[:n])

			// Global thread operations: create a thread on the other PE,
			// then join it for its exit value.
			remote, err := t.Create(1, 0, "greeter", []byte("world"), chant.CreateOpts{})
			if err != nil {
				log.Fatal(err)
			}
			v, err := t.Join(remote)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("remote thread %v exited with: %v\n", remote, v)
		},
		{PE: 1, Proc: 0}: func(t *chant.Thread) {
			buf := make([]byte, 64)
			n, from, err := t.Recv(chant.AnyThread, 1, buf)
			if err != nil {
				log.Fatal(err)
			}
			if err := t.Send(from, 2, append([]byte("pong:"), buf[:n]...)); err != nil {
				log.Fatal(err)
			}
		},
	}

	res, err := rt.Run(mains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine finished at virtual time %.2fms (%d messages)\n",
		res.VirtualEnd.Millis(), res.Total.Sends)
}
