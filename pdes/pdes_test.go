package pdes

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"chant"
)

func newRT(pes int) *chant.Runtime {
	return chant.NewSimRuntime(
		chant.Topology{PEs: pes, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsPS},
		chant.Paragon1994(),
	)
}

// TestPipelineSimulation: source -> server -> sink across three PEs. The
// source emits one job every 10 ticks; the server adds a fixed 4-tick
// service delay; the sink verifies count and timestamp monotonicity.
func TestPipelineSimulation(t *testing.T) {
	const (
		end      = Time(1000)
		interval = Time(10)
	)
	sim := New(end)
	var sinkTimes []Time

	must(t, sim.AddLP(LPSpec{
		Name: "source", PE: 0, Lookahead: interval,
		Source: func(ctx *Ctx) error {
			for at := interval; at <= end; at += interval {
				var job [8]byte
				binary.LittleEndian.PutUint64(job[:], uint64(at))
				if err := ctx.Emit("server", at, job[:]); err != nil {
					return err
				}
				if err := ctx.AdvanceTo(at); err != nil {
					return err
				}
			}
			return nil
		},
	}))
	must(t, sim.AddLP(LPSpec{
		Name: "server", PE: 1, Lookahead: 4,
		Handler: func(ctx *Ctx, ev Event) error {
			return ctx.Emit("sink", ev.At+4, ev.Data)
		},
	}))
	must(t, sim.AddLP(LPSpec{
		Name: "sink", PE: 2, Lookahead: 1,
		Handler: func(ctx *Ctx, ev Event) error {
			sinkTimes = append(sinkTimes, ev.At)
			return nil
		},
	}))
	must(t, sim.Connect("source", "server", 8))
	must(t, sim.Connect("server", "sink", 8))

	stats, err := sim.Run(newRT(3))
	if err != nil {
		t.Fatal(err)
	}

	// The horizon is half-open [0, End): only jobs with at < end leave the
	// source, and only arrivals with at+4 < end reach the sink.
	wantJobs := 0
	wantDelivered := 0
	for at := interval; at <= end; at += interval {
		if at < end {
			wantJobs++
		}
		if at < end && at+4 < end {
			wantDelivered++
		}
	}
	if len(sinkTimes) != wantDelivered {
		t.Fatalf("sink got %d jobs, want %d", len(sinkTimes), wantDelivered)
	}
	for i := 1; i < len(sinkTimes); i++ {
		if sinkTimes[i] <= sinkTimes[i-1] {
			t.Fatalf("sink timestamps not increasing: %v", sinkTimes[i-1:i+1])
		}
	}
	for i, at := range sinkTimes {
		if want := interval*Time(i+1) + 4; at != want {
			t.Fatalf("job %d arrived at %d, want %d", i, at, want)
		}
	}
	if stats["server"].Processed != uint64(wantJobs) {
		t.Errorf("server processed %d, want %d", stats["server"].Processed, wantJobs)
	}
	if stats["source"].Emitted != uint64(wantJobs) {
		t.Errorf("source emitted %d, want %d", stats["source"].Emitted, wantJobs)
	}
}

// TestRingSimulation: a token circulates S -> A -> B -> A -> B ... with a
// fixed hop delay; cyclic graphs exercise the null-message protocol.
func TestRingSimulation(t *testing.T) {
	const (
		end = Time(500)
		hop = Time(7)
	)
	sim := New(end)
	hops := 0

	pass := func(to string) Handler {
		return func(ctx *Ctx, ev Event) error {
			hops++
			return ctx.Emit(to, ev.At+hop, ev.Data)
		}
	}
	must(t, sim.AddLP(LPSpec{
		Name: "s", PE: 0, Lookahead: 1,
		Source: func(ctx *Ctx) error {
			return ctx.Emit("a", 1, []byte("token"))
		},
	}))
	must(t, sim.AddLP(LPSpec{Name: "a", PE: 0, Lookahead: hop, Handler: pass("b")}))
	must(t, sim.AddLP(LPSpec{Name: "b", PE: 1, Lookahead: hop, Handler: pass("a")}))
	must(t, sim.Connect("s", "a", 4))
	must(t, sim.Connect("a", "b", 4))
	must(t, sim.Connect("b", "a", 4))

	stats, err := sim.Run(newRT(2))
	if err != nil {
		t.Fatal(err)
	}
	// The token visits at 1, 8, 15, ... while < end; each visit is a hop.
	wantHops := 0
	for at := Time(1); at < end; at += hop {
		wantHops++
	}
	if hops != wantHops {
		t.Fatalf("token made %d hops, want %d", hops, wantHops)
	}
	if stats["a"].Processed+stats["b"].Processed != uint64(wantHops) {
		t.Fatalf("per-LP processed %d+%d, want %d total",
			stats["a"].Processed, stats["b"].Processed, wantHops)
	}
}

// TestFanInOrdering: two sources with different rates feed one sink; the
// sink must see the merged stream in global timestamp order — the whole
// point of conservative synchronization.
func TestFanInOrdering(t *testing.T) {
	const end = Time(600)
	sim := New(end)
	var merged []Time

	mkSource := func(name string, interval Time) {
		must(t, sim.AddLP(LPSpec{
			Name: name, PE: 0, Lookahead: interval,
			Source: func(ctx *Ctx) error {
				for at := interval; at <= end; at += interval {
					if err := ctx.Emit("sink", at, []byte(name)); err != nil {
						return err
					}
					if err := ctx.AdvanceTo(at); err != nil {
						return err
					}
				}
				return nil
			},
		}))
	}
	mkSource("fast", 7)
	mkSource("slow", 31)
	must(t, sim.AddLP(LPSpec{
		Name: "sink", PE: 1, Lookahead: 1,
		Handler: func(ctx *Ctx, ev Event) error {
			merged = append(merged, ev.At)
			return nil
		},
	}))
	must(t, sim.Connect("fast", "sink", 8))
	must(t, sim.Connect("slow", "sink", 8))

	if _, err := sim.Run(newRT(2)); err != nil {
		t.Fatal(err)
	}
	want := int((end-1)/7) + int((end-1)/31)
	if len(merged) != want {
		t.Fatalf("sink merged %d events, want %d", len(merged), want)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i] < merged[i-1] {
			t.Fatalf("causality violated at %d: %d after %d", i, merged[i], merged[i-1])
		}
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() (map[string]Stats, []Time) {
		sim := New(300)
		var seen []Time
		must(t, sim.AddLP(LPSpec{
			Name: "src", PE: 0, Lookahead: 5,
			Source: func(ctx *Ctx) error {
				for at := Time(5); at <= 300; at += 5 {
					if err := ctx.Emit("snk", at, nil); err != nil {
						return err
					}
					if err := ctx.AdvanceTo(at); err != nil {
						return err
					}
				}
				return nil
			},
		}))
		must(t, sim.AddLP(LPSpec{
			Name: "snk", PE: 1, Lookahead: 1,
			Handler: func(ctx *Ctx, ev Event) error {
				seen = append(seen, ev.At)
				return nil
			},
		}))
		must(t, sim.Connect("src", "snk", 4))
		stats, err := sim.Run(newRT(2))
		if err != nil {
			t.Fatal(err)
		}
		return stats, seen
	}
	s1, t1 := run()
	s2, t2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("runs differ in length: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
	if s1["snk"].Processed != s2["snk"].Processed {
		t.Fatal("stats nondeterministic")
	}
}

func TestValidationErrors(t *testing.T) {
	sim := New(100)
	if err := sim.AddLP(LPSpec{}); err == nil {
		t.Error("nameless LP accepted")
	}
	must(t, sim.AddLP(LPSpec{Name: "a", Lookahead: 1, Source: func(*Ctx) error { return nil }}))
	if err := sim.AddLP(LPSpec{Name: "a"}); err == nil {
		t.Error("duplicate LP accepted")
	}
	if err := sim.Connect("a", "ghost", 4); err == nil {
		t.Error("edge to unknown LP accepted")
	}
	if err := sim.Connect("ghost", "a", 4); err == nil {
		t.Error("edge from unknown LP accepted")
	}

	// Handler/source structure validation at Run time.
	bad := New(100)
	must(t, bad.AddLP(LPSpec{Name: "s", Lookahead: 1, Source: func(*Ctx) error { return nil }}))
	must(t, bad.AddLP(LPSpec{Name: "h", Lookahead: 1})) // has input, no handler
	must(t, bad.Connect("s", "h", 4))
	if _, err := bad.Run(newRT(1)); err == nil || !strings.Contains(err.Error(), "Handler") {
		t.Errorf("missing handler: %v", err)
	}

	zero := New(100)
	must(t, zero.AddLP(LPSpec{Name: "s", Lookahead: 1, Source: func(*Ctx) error { return nil }}))
	must(t, zero.AddLP(LPSpec{Name: "h", Lookahead: 0, Handler: func(*Ctx, Event) error { return nil }}))
	must(t, zero.Connect("s", "h", 4))
	if _, err := zero.Run(newRT(1)); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("zero lookahead: %v", err)
	}

	empty := New(100)
	if _, err := empty.Run(newRT(1)); err == nil {
		t.Error("empty simulation accepted")
	}
}

func TestLookaheadViolationSurfaces(t *testing.T) {
	sim := New(100)
	must(t, sim.AddLP(LPSpec{
		Name: "s", PE: 0, Lookahead: 10,
		Source: func(ctx *Ctx) error {
			if err := ctx.AdvanceTo(50); err != nil {
				return err
			}
			return ctx.Emit("h", 55, nil) // 55 < 50+10: violation
		},
	}))
	must(t, sim.AddLP(LPSpec{Name: "h", PE: 0, Lookahead: 1,
		Handler: func(*Ctx, Event) error { return nil }}))
	must(t, sim.Connect("s", "h", 4))
	_, err := sim.Run(newRT(1))
	if err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("violation not surfaced: %v", err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestBackloggedServer reproduces the queueing regression: a server whose
// service time exceeds its arrival spacing emits completions far beyond
// its promise floor, so later nulls legally carry smaller values than
// earlier event timestamps. The bound-carrying wire format must keep the
// downstream edge consistent.
func TestBackloggedServer(t *testing.T) {
	const (
		end     = Time(5000)
		arrive  = Time(40)
		service = Time(90) // > arrive: queue grows without bound
	)
	sim := New(end)
	var arrivals []Time

	must(t, sim.AddLP(LPSpec{
		Name: "src", PE: 0, Lookahead: arrive,
		Source: func(ctx *Ctx) error {
			for at := arrive; at < end; at += arrive {
				if err := ctx.Emit("q", at, nil); err != nil {
					return err
				}
				if err := ctx.AdvanceTo(at); err != nil {
					return err
				}
			}
			return nil
		},
	}))
	var freeAt Time
	must(t, sim.AddLP(LPSpec{
		Name: "q", PE: 1, Lookahead: service,
		Handler: func(ctx *Ctx, ev Event) error {
			start := ev.At
			if freeAt > start {
				start = freeAt
			}
			freeAt = start + service
			return ctx.Emit("sink", freeAt, nil)
		},
	}))
	must(t, sim.AddLP(LPSpec{
		Name: "sink", PE: 0, Lookahead: 1,
		Handler: func(ctx *Ctx, ev Event) error {
			arrivals = append(arrivals, ev.At)
			return nil
		},
	}))
	must(t, sim.Connect("src", "q", 8))
	must(t, sim.Connect("q", "sink", 8))

	if _, err := sim.Run(newRT(2)); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) == 0 {
		t.Fatal("no completions reached the sink")
	}
	// Completions are spaced exactly one service time apart once the
	// backlog forms, strictly increasing throughout.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] <= arrivals[i-1] {
			t.Fatalf("completion order broken at %d: %d after %d", i, arrivals[i], arrivals[i-1])
		}
	}
	for i := 2; i < len(arrivals); i++ {
		if got := arrivals[i] - arrivals[i-1]; got != service {
			t.Fatalf("steady-state spacing at %d is %d, want %d", i, got, service)
		}
	}
}

// TestAcrossPolicies runs the pipeline model under every polling policy
// and delivery mode combination that the underlying machine supports,
// verifying the simulation layer is insensitive to runtime configuration.
func TestAcrossPolicies(t *testing.T) {
	for _, pol := range []chant.PolicyKind{
		chant.ThreadPolls, chant.SchedulerPollsPS,
		chant.SchedulerPollsWQ, chant.SchedulerPollsWQAny,
	} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			sim := New(400)
			count := 0
			must(t, sim.AddLP(LPSpec{
				Name: "src", PE: 0, Lookahead: 20,
				Source: func(ctx *Ctx) error {
					for at := Time(20); at < 400; at += 20 {
						if err := ctx.Emit("snk", at, nil); err != nil {
							return err
						}
						if err := ctx.AdvanceTo(at); err != nil {
							return err
						}
					}
					return nil
				},
			}))
			must(t, sim.AddLP(LPSpec{
				Name: "snk", PE: 1, Lookahead: 1,
				Handler: func(ctx *Ctx, ev Event) error { count++; return nil },
			}))
			must(t, sim.Connect("src", "snk", 4))
			rt := chant.NewSimRuntime(chant.Topology{PEs: 2, ProcsPerPE: 1},
				chant.Config{Policy: pol}, chant.Paragon1994())
			if _, err := sim.Run(rt); err != nil {
				t.Fatal(err)
			}
			if count != 19 {
				t.Fatalf("sink saw %d events, want 19", count)
			}
		})
	}
}

func TestCtxAccessors(t *testing.T) {
	sim := New(100)
	var outputs []string
	var sawThread bool
	must(t, sim.AddLP(LPSpec{
		Name: "s", PE: 0, Lookahead: 10,
		Source: func(ctx *Ctx) error {
			outputs = ctx.Outputs()
			sawThread = ctx.Thread != nil && ctx.Name == "s"
			if err := ctx.AdvanceTo(50); err != nil {
				return err
			}
			if ctx.Now() != 50 {
				return fmt.Errorf("Now = %d after AdvanceTo(50)", ctx.Now())
			}
			if err := ctx.AdvanceTo(40); err == nil {
				return fmt.Errorf("AdvanceTo backwards accepted")
			}
			if err := ctx.Emit("ghost", 90, nil); err == nil {
				return fmt.Errorf("emit to non-edge accepted")
			}
			return nil
		},
	}))
	must(t, sim.AddLP(LPSpec{Name: "h", PE: 0, Lookahead: 1,
		Handler: func(*Ctx, Event) error { return nil }}))
	must(t, sim.Connect("s", "h", 4))
	if _, err := sim.Run(newRT(1)); err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 1 || outputs[0] != "h" {
		t.Errorf("Outputs = %v", outputs)
	}
	if !sawThread {
		t.Error("Ctx identity fields not populated")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	sim := New(100)
	must(t, sim.AddLP(LPSpec{
		Name: "s", PE: 0, Lookahead: 10,
		Source: func(ctx *Ctx) error { return ctx.Emit("h", 10, nil) },
	}))
	must(t, sim.AddLP(LPSpec{
		Name: "h", PE: 1, Lookahead: 1,
		Handler: func(*Ctx, Event) error { return fmt.Errorf("model blew up") },
	}))
	must(t, sim.Connect("s", "h", 4))
	_, err := sim.Run(newRT(2))
	if err == nil || !strings.Contains(err.Error(), "model blew up") {
		t.Fatalf("handler error lost: %v", err)
	}
}

func TestWireCodecErrors(t *testing.T) {
	if _, _, _, _, err := decodeMsg([]byte{1, 2}); err == nil {
		t.Error("short message accepted")
	}
	kind, at, bound, data, err := decodeMsg(encodeMsg(1, 42, 40, []byte("payload")))
	if err != nil || kind != 1 || at != 42 || bound != 40 || string(data) != "payload" {
		t.Errorf("roundtrip = (%d,%d,%d,%q,%v)", kind, at, bound, data, err)
	}
	if _, err := decodeDescs([]byte{1, 2, 3}); err == nil {
		t.Error("bad descriptor bundle accepted")
	}
}
