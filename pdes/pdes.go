// Package pdes is a conservative parallel discrete-event simulation
// library built on Chant's talking threads — the first use the paper
// cites for lightweight threads ("they are used in simulation systems ...
// to represent asynchronous events that can be mapped onto single or
// multiple processors"). Logical processes (LPs) are Chant threads placed
// on any processing element; every edge of the LP graph is a
// flow-controlled Chant channel; and causality is enforced with the
// classic Chandy-Misra-Bryant null-message protocol: an LP only consumes
// an event once every input edge's clock has passed it, and each LP
// promises, via its lookahead, never to send into its outputs' past.
//
// Build a Simulation by declaring LPs and edges, then Run it on a Chant
// runtime. Handlers receive events and emit new ones onto named output
// edges with a delay of at least the LP's lookahead.
package pdes

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"chant"
)

// Time is virtual simulation time (independent of the Chant machine's own
// clock; a pdes tick is whatever the model says it is).
type Time uint64

// endOfTime marks final null messages during shutdown.
const endOfTime = ^Time(0)

// Event is one timestamped occurrence delivered to an LP.
type Event struct {
	At   Time
	Data []byte
}

// Handler reacts to one event; it may emit new events through the Ctx.
type Handler func(ctx *Ctx, ev Event) error

// SourceFunc drives a source LP (an LP with no inputs): it is called once
// and emits the LP's entire event stream (respecting lookahead spacing).
type SourceFunc func(ctx *Ctx) error

// LPSpec declares one logical process.
type LPSpec struct {
	// Name identifies the LP and its edges.
	Name string
	// PE places the LP's thread.
	PE int32
	// Lookahead is the LP's minimum emit delay: every event it sends must
	// carry a timestamp >= its current safe time + Lookahead. Must be > 0
	// for LPs on cycles.
	Lookahead Time
	// Handler processes events (LPs with inputs).
	Handler Handler
	// Source drives the LP (LPs without inputs). Exactly one of Handler
	// or Source must be set, matching whether the LP has input edges.
	Source SourceFunc
}

// EdgeSpec declares a directed edge between two LPs.
type EdgeSpec struct {
	From, To string
	// Capacity is the underlying channel's flow-control window
	// (default 8).
	Capacity int32
}

// Simulation is a declared LP graph ready to run.
type Simulation struct {
	lps   map[string]*LPSpec
	order []string
	edges []EdgeSpec
	// End is the simulation horizon: the simulated interval is [0, End),
	// so events timestamped at or after End are dropped.
	End Time
	// TagBase is the first user tag the simulation's channels may use;
	// each edge consumes 4 tags (default 0x4000).
	TagBase int32
}

// New creates an empty simulation that runs until end.
func New(end Time) *Simulation {
	return &Simulation{lps: make(map[string]*LPSpec), End: end, TagBase: 0x4000}
}

// AddLP declares a logical process.
func (s *Simulation) AddLP(spec LPSpec) error {
	if spec.Name == "" {
		return errors.New("pdes: LP needs a name")
	}
	if _, dup := s.lps[spec.Name]; dup {
		return fmt.Errorf("pdes: duplicate LP %q", spec.Name)
	}
	cp := spec
	s.lps[spec.Name] = &cp
	s.order = append(s.order, spec.Name)
	return nil
}

// Connect declares a directed edge.
func (s *Simulation) Connect(from, to string, capacity int32) error {
	if _, ok := s.lps[from]; !ok {
		return fmt.Errorf("pdes: unknown LP %q", from)
	}
	if _, ok := s.lps[to]; !ok {
		return fmt.Errorf("pdes: unknown LP %q", to)
	}
	if capacity <= 0 {
		capacity = 8
	}
	s.edges = append(s.edges, EdgeSpec{From: from, To: to, Capacity: capacity})
	return nil
}

// wire format: [1B kind][8B event-time][8B bound][payload]; kind 0 = null
// (no payload, at == bound), kind 1 = event. The bound is the sender's
// promise — its safe time plus lookahead at the moment of sending — and is
// what advances the receiving edge's clock. Event timestamps themselves
// are NOT lower bounds for future traffic: with queueing, an LP can emit
// an event far in the future (a backlogged completion) and later send a
// smaller promise, and a later event may land between the two.
func encodeMsg(kind byte, at, bound Time, data []byte) []byte {
	out := make([]byte, 17+len(data))
	out[0] = kind
	binary.LittleEndian.PutUint64(out[1:], uint64(at))
	binary.LittleEndian.PutUint64(out[9:], uint64(bound))
	copy(out[17:], data)
	return out
}

func decodeMsg(b []byte) (kind byte, at, bound Time, data []byte, err error) {
	if len(b) < 17 {
		return 0, 0, 0, nil, errors.New("pdes: malformed message")
	}
	return b[0], Time(binary.LittleEndian.Uint64(b[1:])),
		Time(binary.LittleEndian.Uint64(b[9:])), b[17:], nil
}

// Ctx is a handler's view of its LP.
type Ctx struct {
	// Name is the LP's name.
	Name string
	// Thread is the Chant thread animating the LP.
	Thread *chant.Thread

	sim      *Simulation
	spec     *LPSpec
	now      Time // the LP's current safe time
	outs     map[string]*chant.SendPort
	outNames []string
	ended    bool
	emitted  uint64
	nulls    uint64 // null messages sent (protocol overhead, see Stats.NullsSent)
	lastNull Time   // highest null promise already sent
	sentNull bool
}

// countNull records one null message leaving this LP, both in the per-LP
// stats and in the process-wide trace counter (so chantbench reports can
// show protocol overhead next to sends/recvs).
func (c *Ctx) countNull() {
	c.nulls++
	c.Thread.Process().Counters().NullsSent.Add(1)
}

// Now reports the LP's current safe virtual time.
func (c *Ctx) Now() Time { return c.now }

// Outputs lists the LP's outgoing edge destinations.
func (c *Ctx) Outputs() []string { return append([]string(nil), c.outNames...) }

// Emit sends an event with timestamp at to the named downstream LP. The
// timestamp must respect the LP's lookahead promise.
func (c *Ctx) Emit(to string, at Time, data []byte) error {
	port := c.outs[to]
	if port == nil {
		return fmt.Errorf("pdes: LP %q has no edge to %q", c.Name, to)
	}
	if at < c.now+c.spec.Lookahead {
		return fmt.Errorf("pdes: LP %q emitting at %d violates lookahead (now %d + la %d)",
			c.Name, at, c.now, c.spec.Lookahead)
	}
	if at >= c.sim.End {
		// At or past the horizon: the simulated interval is [0, End), so
		// downstream never needs it.
		return nil
	}
	c.emitted++
	return port.Send(encodeMsg(1, at, c.now+c.spec.Lookahead, data))
}

// AdvanceTo moves a source LP's clock forward (sources have no inputs to
// derive time from). It also refreshes downstream null promises.
func (c *Ctx) AdvanceTo(at Time) error {
	if at < c.now {
		return fmt.Errorf("pdes: AdvanceTo(%d) before now (%d)", at, c.now)
	}
	c.now = at
	return c.sendNulls()
}

// sendNulls promises every output that nothing earlier than
// now+lookahead will ever be sent. Nulls travel outside the channels'
// flow-control windows: on cyclic LP graphs a credit-blocked null would
// deadlock the cycle (each LP waiting for the other to consume). Their
// volume is bounded here instead, by sending only when the promise
// actually improves.
func (c *Ctx) sendNulls() error {
	promise := c.now + c.spec.Lookahead
	if c.sentNull && promise <= c.lastNull {
		return nil
	}
	c.lastNull, c.sentNull = promise, true
	for _, name := range c.outNames {
		if err := c.outs[name].SendUnflowed(encodeMsg(0, promise, promise, nil)); err != nil {
			return err
		}
		c.countNull()
	}
	return nil
}

// finish floods the outputs with end-of-time nulls so downstream LPs can
// drain and stop. The finals travel outside the flow-control window, so
// finishing never blocks on peers that already exited at the horizon.
func (c *Ctx) finish() error {
	if c.ended {
		return nil
	}
	c.ended = true
	for _, name := range c.outNames {
		if err := c.outs[name].SendUnflowed(encodeMsg(0, endOfTime, endOfTime, nil)); err != nil {
			return err
		}
		c.countNull()
	}
	return nil
}

// inEdge is one input edge's receive state.
type inEdge struct {
	from  string
	port  *chant.RecvPort
	clock Time
	queue []Event // events received but not yet safe to process
}

// Stats reports per-LP results after a run.
type Stats struct {
	Processed uint64
	Emitted   uint64
	// NullsSent counts the CMB null messages this LP emitted — the
	// protocol's overhead traffic. Null volume is damped: an LP only
	// re-promises when its bound actually advances past the last promise,
	// so cyclic graphs exchange a bounded number of nulls per real event
	// instead of flooding on every safe-time recomputation.
	NullsSent uint64
	FinalTime Time
}

// Run executes the simulation on the given Chant runtime (which must have
// at least as many PEs as the specs name). It returns per-LP statistics.
func (s *Simulation) Run(rt *chant.Runtime) (map[string]Stats, error) {
	if len(s.order) == 0 {
		return nil, errors.New("pdes: no LPs declared")
	}
	// Validate handler/source against edge structure.
	hasInput := map[string]bool{}
	for _, e := range s.edges {
		hasInput[e.To] = true
	}
	for name, lp := range s.lps {
		if hasInput[name] && lp.Handler == nil {
			return nil, fmt.Errorf("pdes: LP %q has inputs but no Handler", name)
		}
		if !hasInput[name] && lp.Source == nil {
			return nil, fmt.Errorf("pdes: source LP %q needs a Source", name)
		}
		if hasInput[name] && lp.Lookahead == 0 {
			// Zero lookahead is only safe on acyclic graphs; require it
			// positive unconditionally for robustness.
			return nil, fmt.Errorf("pdes: LP %q needs positive lookahead", name)
		}
	}

	stats := make(map[string]Stats, len(s.lps))
	results := make(map[string]*Stats, len(s.lps))
	for name := range s.lps {
		results[name] = &Stats{}
	}
	lpErrs := make([]error, len(s.order))

	// The coordinator main (pe0) opens every edge's channel and broadcasts
	// descriptors; LP threads are created remotely and bind their ports.
	// Edge channels are brokered at pe0.
	mains := map[chant.Addr]chant.MainFunc{}
	topo := rt.Topology()
	peErrs := make([]error, topo.PEs)

	mains[chant.Addr{PE: 0, Proc: 0}] = func(t *chant.Thread) {
		// Open one channel per edge.
		descs := make([]chant.Channel, len(s.edges))
		for i, e := range s.edges {
			ch, err := chant.OpenChannel(t, e.Capacity, s.TagBase+int32(i)*4)
			if err != nil {
				peErrs[0] = err
				return
			}
			descs[i] = ch
			_ = e
		}
		// Spawn every LP locally-or-remotely as a plain local thread on
		// its PE via the process-main trick: here all LP threads are
		// created by per-PE mains instead; the coordinator IS pe0's main,
		// so it creates pe0's LPs after shipping descriptors.
		// Ship each PE's LP list with channel descriptors via messages.
		for pe := int32(1); pe < int32(topo.PEs); pe++ {
			if err := t.Send(chant.ChanterID{PE: pe, Proc: 0, Thread: 0}, 1, encodeDescs(descs)); err != nil {
				peErrs[0] = err
				return
			}
		}
		runPELPs(t, s, descs, 0, results, lpErrs, peErrs)
	}
	for pe := int32(1); pe < int32(topo.PEs); pe++ {
		pe := pe
		mains[chant.Addr{PE: pe, Proc: 0}] = func(t *chant.Thread) {
			buf := make([]byte, 20*len(s.edges)+8)
			n, _, err := t.Recv(chant.AnyThread, 1, buf)
			if err != nil {
				peErrs[pe] = err
				return
			}
			descs, err := decodeDescs(buf[:n])
			if err != nil {
				peErrs[pe] = err
				return
			}
			runPELPs(t, s, descs, pe, results, lpErrs, peErrs)
		}
	}

	if _, err := rt.Run(mains); err != nil {
		return nil, err
	}
	for _, err := range peErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range lpErrs {
		if err != nil {
			return nil, err
		}
	}
	for name, r := range results {
		stats[name] = *r
	}
	return stats, nil
}

func encodeDescs(descs []chant.Channel) []byte {
	out := make([]byte, 0, 20*len(descs))
	for _, d := range descs {
		out = append(out, d.Encode()...)
	}
	return out
}

func decodeDescs(b []byte) ([]chant.Channel, error) {
	if len(b)%20 != 0 {
		return nil, errors.New("pdes: malformed descriptor bundle")
	}
	out := make([]chant.Channel, 0, len(b)/20)
	for off := 0; off < len(b); off += 20 {
		d, err := chant.DecodeChannel(b[off : off+20])
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// runPELPs creates and joins this PE's LP threads.
func runPELPs(t *chant.Thread, s *Simulation, descs []chant.Channel, pe int32,
	results map[string]*Stats, lpErrs, peErrs []error) {
	var threads []*chant.Thread
	for idx, name := range s.order {
		lp := s.lps[name]
		if lp.PE != pe {
			continue
		}
		idx := idx
		name := name
		threads = append(threads, t.Process().CreateLocal("lp-"+name, func(me *chant.Thread) {
			if err := runLP(me, s, s.lps[name], descs, results[name]); err != nil {
				lpErrs[idx] = fmt.Errorf("LP %q: %w", name, err)
			}
		}, chant.SpawnOpts{}))
	}
	for _, th := range threads {
		if _, err := t.JoinLocal(th); err != nil {
			peErrs[pe] = err
		}
	}
}

// runLP executes one logical process: bind ports, then either drive
// (source) or run the conservative event loop.
func runLP(me *chant.Thread, s *Simulation, lp *LPSpec, descs []chant.Channel, st *Stats) error {
	ctx := &Ctx{
		Name:   lp.Name,
		Thread: me,
		sim:    s,
		spec:   lp,
		outs:   make(map[string]*chant.SendPort),
	}
	var ins []*inEdge
	// Bind inputs first: receive-side registration never blocks, so every
	// LP completes its input binds before anyone blocks in a send bind —
	// which makes the (blocking) output binds deadlock-free on arbitrary
	// graphs, cycles included.
	for i, e := range s.edges {
		if e.To == lp.Name {
			rp, err := descs[i].BindRecv(me)
			if err != nil {
				return err
			}
			ins = append(ins, &inEdge{from: e.From, port: rp})
		}
	}
	for i, e := range s.edges {
		if e.From == lp.Name {
			sp, err := descs[i].BindSend(me)
			if err != nil {
				return err
			}
			ctx.outs[e.To] = sp
			ctx.outNames = append(ctx.outNames, e.To)
		}
	}

	processed := uint64(0)
	defer func() {
		st.Processed = processed
		st.FinalTime = ctx.now
		st.Emitted = ctx.emitted
		st.NullsSent = ctx.nulls
	}()

	if lp.Source != nil {
		err := lp.Source(ctx)
		if ferr := ctx.finish(); err == nil {
			err = ferr
		}
		return err
	}

	// The event loop runs inside a closure so that every exit path —
	// including protocol errors — still flushes end-of-time markers
	// downstream; otherwise one failing LP would strand its successors.
	loopErr := func() error {
		// Prime the protocol: promise now+lookahead on every output before
		// blocking, so cyclic graphs have null messages to bootstrap from.
		if err := ctx.sendNulls(); err != nil {
			return err
		}

		buf := make([]byte, 64<<10)
		for {
			// Conservative rule: the only edge that can lower the safe time is
			// the one with the minimal clock; block receiving from it.
			sort.SliceStable(ins, func(a, b int) bool { return ins[a].clock < ins[b].clock })
			min := ins[0]
			if min.clock == endOfTime || min.clock >= s.End {
				// Every edge has either flushed (early-finishing upstream) or
				// promised past the horizon: nothing processable remains. On
				// cyclic graphs this is the only exit — LPs on a cycle never
				// see end-of-time from their cycle edges.
				break
			}
			n, err := min.port.Recv(buf)
			if err != nil {
				return err
			}
			kind, at, bound, data, err := decodeMsg(buf[:n])
			if err != nil {
				return err
			}
			if kind == 1 {
				// A true causality violation: an event below the edge's
				// established lower bound.
				if at < min.clock {
					return fmt.Errorf("pdes: event on %s->%s below the edge bound (%d < %d)",
						min.from, lp.Name, at, min.clock)
				}
				min.queue = append(min.queue, Event{At: at, Data: append([]byte(nil), data...)})
			}
			// Stale bounds (a promise computed before an already-delivered
			// event advanced past it) are simply ignored.
			if bound > min.clock {
				min.clock = bound
			}
			// Safe time = min over input clocks.
			safe := ins[0].clock
			for _, e := range ins {
				if e.clock < safe {
					safe = e.clock
				}
			}
			// Process every queued event with timestamp <= safe, globally in
			// time order.
			for {
				var best *inEdge
				for _, e := range ins {
					if len(e.queue) > 0 && e.queue[0].At <= safe &&
						(best == nil || e.queue[0].At < best.queue[0].At) {
						best = e
					}
				}
				if best == nil {
					break
				}
				ev := best.queue[0]
				best.queue = best.queue[1:]
				if ev.At >= s.End {
					continue
				}
				if ev.At > ctx.now {
					ctx.now = ev.At
				}
				if err := lp.Handler(ctx, ev); err != nil {
					return err
				}
				processed++
			}
			// Advance our clock to the safe horizon and promise downstream.
			capped := safe
			if capped > s.End {
				capped = s.End
			}
			if capped > ctx.now {
				ctx.now = capped
			}
			if len(ctx.outNames) > 0 && safe < endOfTime && ctx.now < s.End {
				if err := ctx.sendNulls(); err != nil {
					return err
				}
			}
		}
		return nil
	}()
	if ferr := ctx.finish(); loopErr == nil {
		loopErr = ferr
	}
	return loopErr
}
