package pdes

import (
	"testing"
)

// TestCyclicNullTraffic pins the null-message volume on a cyclic graph.
// A token circulates a <-> b while a source primes the cycle; every
// safe-time advance may re-promise downstream, and without damping (only
// re-promising when the bound actually improves past the last promise)
// the cycle floods nulls on every recomputation. The exact counts are
// pinned: if the damping guard in sendNulls is removed, these numbers
// balloon and the test fails loudly rather than silently regressing the
// protocol's overhead.
func TestCyclicNullTraffic(t *testing.T) {
	const (
		end = Time(200)
		hop = Time(5)
	)
	sim := New(end)
	var tracedNulls uint64

	pass := func(to string) Handler {
		return func(ctx *Ctx, ev Event) error {
			// Read the process-wide trace counter from inside the run to
			// verify the Counters plumbing (per-LP stats are checked below).
			tracedNulls = ctx.Thread.Process().Counters().NullsSent.Load()
			return ctx.Emit(to, ev.At+hop, ev.Data)
		}
	}
	must(t, sim.AddLP(LPSpec{
		Name: "s", PE: 0, Lookahead: 1,
		Source: func(ctx *Ctx) error {
			return ctx.Emit("a", 1, []byte("tok"))
		},
	}))
	must(t, sim.AddLP(LPSpec{Name: "a", PE: 0, Lookahead: hop, Handler: pass("b")}))
	must(t, sim.AddLP(LPSpec{Name: "b", PE: 1, Lookahead: hop, Handler: pass("a")}))
	must(t, sim.Connect("s", "a", 4))
	must(t, sim.Connect("a", "b", 4))
	must(t, sim.Connect("b", "a", 4))

	stats, err := sim.Run(newRT(2))
	if err != nil {
		t.Fatal(err)
	}

	// 40 token hops around the ring cost each ring LP 61 nulls (~1.5 per
	// event: one refreshed promise per advance plus the end-of-time flush).
	// Undamped, the same run sends 461/481 — an 8x flood.
	want := map[string]uint64{"s": 1, "a": 61, "b": 61}
	for name, n := range want {
		if got := stats[name].NullsSent; got != n {
			t.Errorf("LP %q sent %d nulls, want exactly %d (null damping regressed?)", name, got, n)
		}
	}
	if tracedNulls == 0 {
		t.Errorf("trace counter NullsSent stayed 0; pdes is not feeding the process counters")
	}
}
