package chant_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"chant"
)

// These tests exercise the public API end to end, the way a downstream
// user would: simulated machines for determinism, a real-mode machine for
// wall-clock behaviour, and each Appendix-A routine at least once.

func sim2(t *testing.T, cfg chant.Config, main0, main1 chant.MainFunc) *chant.Result {
	t.Helper()
	rt := chant.NewSimRuntime(chant.Topology{PEs: 2, ProcsPerPE: 1}, cfg, chant.Paragon1994())
	res, err := rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: main0,
		{PE: 1, Proc: 0}: main1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPublicSendRecv(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsPS, DisableServer: true}
	var got string
	sim2(t, cfg,
		func(th *chant.Thread) {
			err := th.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 3, []byte("over the wire"))
			if err != nil {
				t.Error(err)
			}
		},
		func(th *chant.Thread) {
			buf := make([]byte, 32)
			n, from, err := th.Recv(chant.AnyThread, 3, buf)
			if err != nil {
				t.Error(err)
			}
			if !from.Equal(chant.ChanterID{PE: 0, Proc: 0, Thread: 0}) {
				t.Errorf("from = %v", from)
			}
			got = string(buf[:n])
		},
	)
	if got != "over the wire" {
		t.Fatalf("got %q", got)
	}
}

func TestPublicIdentityOps(t *testing.T) {
	cfg := chant.Config{Policy: chant.ThreadPolls, DisableServer: true}
	sim2(t, cfg,
		func(th *chant.Thread) {
			if th.PE() != 0 || th.Proc() != 0 {
				t.Errorf("identity: pe=%d proc=%d", th.PE(), th.Proc())
			}
			self := th.ID()
			if !self.Equal(chant.ChanterID{PE: 0, Proc: 0, Thread: 0}) {
				t.Errorf("self = %v", self)
			}
			if th.TCB() == nil || th.TCB().ID() != 0 {
				t.Error("TCB accessor broken")
			}
			th.Yield() // must not disturb anything with an empty queue
		},
		nil,
	)
}

func TestPublicCreateJoinAcrossMachine(t *testing.T) {
	rt := chant.NewSimRuntime(chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsWQ}, chant.Paragon1994())
	rt.Register("worker", func(th *chant.Thread, arg []byte) {
		th.Exit(append([]byte("did:"), arg...))
	})
	_, err := rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(th *chant.Thread) {
			remote, err := th.Create(1, 0, "worker", []byte("task"), chant.CreateOpts{})
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			v, err := th.Join(remote)
			if err != nil {
				t.Errorf("join: %v", err)
				return
			}
			if b, ok := v.([]byte); !ok || !bytes.Equal(b, []byte("did:task")) {
				t.Errorf("join value %v", v)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicRSR(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsPS}
	sim2(t, cfg,
		func(th *chant.Thread) {
			var reply [16]byte
			n, err := th.Call(chant.Addr{PE: 1, Proc: 0}, 7, []byte("6x7"), reply[:])
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if string(reply[:n]) != "42" {
				t.Errorf("reply %q", reply[:n])
			}
		},
		func(th *chant.Thread) {
			th.Process().RegisterHandler(7, func(ctx *chant.RSRContext) ([]byte, error) {
				if string(ctx.Req) != "6x7" {
					return nil, fmt.Errorf("bad request %q", ctx.Req)
				}
				return []byte("42"), nil
			})
		},
	)
}

func TestPublicMutexCondAcrossThreads(t *testing.T) {
	cfg := chant.Config{Policy: chant.ThreadPolls, DisableServer: true}
	sim2(t, cfg,
		func(th *chant.Thread) {
			p := th.Process()
			m := chant.NewMutex(p)
			c := chant.NewCond(m)
			fed := false
			eater := p.CreateLocal("eater", func(me *chant.Thread) {
				m.Lock()
				for !fed {
					c.Wait()
				}
				m.Unlock()
			}, chant.SpawnOpts{})
			th.Yield()
			m.Lock()
			fed = true
			c.Signal()
			m.Unlock()
			if _, err := th.JoinLocal(eater); err != nil {
				t.Error(err)
			}
		},
		nil,
	)
}

func TestPublicThreadLocalData(t *testing.T) {
	cfg := chant.Config{Policy: chant.ThreadPolls, DisableServer: true}
	destroyed := 0
	key := chant.NewKey("conn", func(any) { destroyed++ })
	sim2(t, cfg,
		func(th *chant.Thread) {
			w := th.Process().CreateLocal("w", func(me *chant.Thread) {
				me.TCB().SetLocal(key, "resource")
				if me.TCB().Local(key) != "resource" {
					t.Error("local lost")
				}
			}, chant.SpawnOpts{})
			th.JoinLocal(w)
		},
		nil,
	)
	if destroyed != 1 {
		t.Fatalf("destructor ran %d times", destroyed)
	}
}

func TestPublicCancelSemantics(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsPS, DisableServer: true}
	sim2(t, cfg,
		func(th *chant.Thread) {
			victim := th.Process().CreateLocal("victim", func(me *chant.Thread) {
				buf := make([]byte, 4)
				me.Recv(chant.AnyThread, 9, buf) // never arrives
			}, chant.SpawnOpts{})
			th.Yield()
			th.CancelLocal(victim)
			if _, err := th.JoinLocal(victim); !errors.Is(err, chant.ErrCanceled) {
				t.Errorf("join err = %v, want ErrCanceled", err)
			}
		},
		nil,
	)
}

func TestPublicErrors(t *testing.T) {
	cfg := chant.Config{Policy: chant.ThreadPolls, DisableServer: true}
	sim2(t, cfg,
		func(th *chant.Thread) {
			if err := th.Send(chant.ChanterID{PE: 5, Proc: 0}, 1, nil); !errors.Is(err, chant.ErrBadTarget) {
				t.Errorf("bad target: %v", err)
			}
			if err := th.Send(chant.ChanterID{PE: 1, Proc: 0}, chant.TagReserved+1, nil); !errors.Is(err, chant.ErrBadTag) {
				t.Errorf("reserved tag: %v", err)
			}
		},
		nil,
	)
}

func TestPublicTruncatedRecv(t *testing.T) {
	cfg := chant.Config{Policy: chant.ThreadPolls, DisableServer: true}
	sim2(t, cfg,
		func(th *chant.Thread) {
			th.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 1, []byte("0123456789"))
		},
		func(th *chant.Thread) {
			buf := make([]byte, 4)
			n, _, err := th.Recv(chant.AnyThread, 1, buf)
			if !errors.Is(err, chant.ErrTruncated) {
				t.Errorf("err = %v, want ErrTruncated", err)
			}
			if n != 4 || string(buf) != "0123" {
				t.Errorf("n=%d buf=%q", n, buf)
			}
		},
	)
}

func TestPublicRealRuntime(t *testing.T) {
	rt := chant.NewRealRuntime(chant.Topology{PEs: 2, ProcsPerPE: 1},
		chant.Config{Policy: chant.SchedulerPollsWQ}, chant.Modern())
	sum := 0
	_, err := rt.Run(map[chant.Addr]chant.MainFunc{
		{PE: 0, Proc: 0}: func(th *chant.Thread) {
			for i := 1; i <= 10; i++ {
				th.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 1, []byte{byte(i)})
			}
			buf := make([]byte, 2)
			th.Recv(chant.AnyThread, 2, buf)
			sum = int(buf[0])
		},
		{PE: 1, Proc: 0}: func(th *chant.Thread) {
			total := 0
			buf := make([]byte, 2)
			for i := 0; i < 10; i++ {
				th.Recv(chant.AnyThread, 1, buf)
				total += int(buf[0])
			}
			th.Send(chant.ChanterID{PE: 0, Proc: 0, Thread: 0}, 2, []byte{byte(total)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 55 {
		t.Fatalf("sum = %d, want 55", sum)
	}
}

func TestPublicCountersExposed(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsPS, DisableServer: true}
	res := sim2(t, cfg,
		func(th *chant.Thread) {
			th.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 1, []byte("x"))
		},
		func(th *chant.Thread) {
			buf := make([]byte, 4)
			th.Recv(chant.AnyThread, 1, buf)
		},
	)
	if res.Total.Sends < 1 || res.Total.Recvs < 1 {
		t.Fatalf("counters missing traffic: %+v", res.Total)
	}
	if res.VirtualEnd <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestPublicGroupCollectives(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsPS}
	// Group of the two main threads themselves.
	members := []chant.ChanterID{{PE: 0, Proc: 0, Thread: 0}, {PE: 1, Proc: 0, Thread: 0}}
	sums := make([]int64, 2)
	mk := func(pe int32) chant.MainFunc {
		return func(th *chant.Thread) {
			g, err := chant.NewGroup(members, 0x3000)
			if err != nil {
				t.Error(err)
				return
			}
			if err := g.Barrier(th); err != nil {
				t.Errorf("barrier: %v", err)
			}
			sum, err := g.AllReduceInt64(th, chant.OpSum, int64(pe)+10)
			if err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
			sums[pe] = sum
			// Broadcast a payload from rank 1.
			buf := make([]byte, 5)
			if pe == 1 {
				copy(buf, "token")
			}
			if _, err := g.Broadcast(th, 1, buf); err != nil {
				t.Errorf("broadcast: %v", err)
			}
			if string(buf) != "token" {
				t.Errorf("pe%d broadcast got %q", pe, buf)
			}
		}
	}
	sim2(t, cfg, mk(0), mk(1))
	if sums[0] != 21 || sums[1] != 21 {
		t.Fatalf("allreduce sums = %v, want [21 21]", sums)
	}
}

func TestPublicSharedVar(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsWQ}
	home := chant.Addr{PE: 0, Proc: 0}
	sim2(t, cfg,
		func(th *chant.Thread) {
			v, err := th.Process().NewShared("conf", home, []byte("release-1"))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 4)
			th.Recv(chant.AnyThread, 9, buf) // wait for the reader's ack
			if err := v.Write(th, []byte("release-2")); err != nil {
				t.Errorf("write: %v", err)
			}
			th.Send(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 9, []byte("go"))
		},
		func(th *chant.Thread) {
			v, err := th.Process().NewShared("conf", home, nil)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 16)
			n, err := v.Read(th, buf)
			if err != nil || string(buf[:n]) != "release-1" {
				t.Errorf("read = (%q, %v)", buf[:n], err)
			}
			th.Send(chant.ChanterID{PE: 0, Proc: 0, Thread: 0}, 9, []byte("ok"))
			th.Recv(chant.AnyThread, 9, buf[:4])
			n, err = v.Read(th, buf)
			if err != nil || string(buf[:n]) != "release-2" {
				t.Errorf("read after write = (%q, %v)", buf[:n], err)
			}
		},
	)
}

func TestPublicSendSync(t *testing.T) {
	cfg := chant.Config{Policy: chant.SchedulerPollsPS, DisableServer: true}
	sim2(t, cfg,
		func(th *chant.Thread) {
			if err := th.SendSync(chant.ChanterID{PE: 1, Proc: 0, Thread: 0}, 4, []byte("sync")); err != nil {
				t.Errorf("sendsync: %v", err)
			}
		},
		func(th *chant.Thread) {
			buf := make([]byte, 8)
			if _, _, err := th.Recv(chant.AnyThread, 4, buf); err != nil {
				t.Error(err)
			}
		},
	)
}
