package chant

import (
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/experiments"
	"chant/internal/machine"
	"chant/internal/trace"
	"chant/internal/ult"
)

// One benchmark per table and figure of the paper. Simulated experiments
// report their paper-relevant quantity (virtual time, event counts) as
// custom metrics alongside the usual wall-clock ns/op of regenerating
// them. Run: go test -bench=. -benchmem

// BenchmarkTable1ThreadCreate measures real thread-creation cost in the
// ult package (the paper's Table 1, "Create" column): create plus the
// thread's first dispatch and reap. Creation is drained in batches — the
// scheduler's priority scan is linear in the ready-queue length by design
// (Chant machines run tens of threads, not millions), so an unbounded
// spawn burst would measure the scan, not creation.
func BenchmarkTable1ThreadCreate(b *testing.B) {
	host := machine.NewRealHost(&machine.Model{Name: "bench"})
	s := ult.NewSched(host, &trace.Counters{}, ult.Options{IdleBlock: true})
	if err := s.Run(func() {
		const batch = 64
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := batch
			if rem := b.N - done; rem < n {
				n = rem
			}
			var last *ult.TCB
			for i := 0; i < n; i++ {
				last = s.Spawn("t", func() {})
			}
			// Joining the newest thread drains the whole FIFO batch.
			if _, err := s.Join(last); err != nil {
				b.Fatal(err)
			}
			done += n
		}
		b.StopTimer()
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable1ContextSwitch measures a real complete context switch
// (Table 1, "Switch" column): two threads handing off.
func BenchmarkTable1ContextSwitch(b *testing.B) {
	host := machine.NewRealHost(&machine.Model{Name: "bench"})
	s := ult.NewSched(host, &trace.Counters{}, ult.Options{IdleBlock: true})
	if err := s.Run(func() {
		yields := b.N/2 + 1
		yielder := func() {
			for i := 0; i < yields; i++ {
				s.Yield()
			}
		}
		a := s.Spawn("a", yielder)
		c := s.Spawn("b", yielder)
		b.ResetTimer()
		s.Join(a)
		s.Join(c)
		b.StopTimer()
	}); err != nil {
		b.Fatal(err)
	}
}

// benchTable2 runs one Table-2 configuration and reports the simulated
// per-message time.
func benchTable2(b *testing.B, size int) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunTable2(experiments.Table2Config{Rounds: 200, Sizes: []int{size}})
	}
	r := rows[0]
	b.ReportMetric(r.ProcessUS, "vus/msg(process)")
	b.ReportMetric(r.TPUS, "vus/msg(TP)")
	b.ReportMetric(r.SPUS, "vus/msg(SP)")
	b.ReportMetric(r.TPOverPct, "TP-overhead-%")
	b.ReportMetric(r.SPOverPct, "SP-overhead-%")
}

// BenchmarkTable2 regenerates Table 2 (thread-based point-to-point
// overhead) at each of the paper's message sizes.
func BenchmarkTable2(b *testing.B) {
	for _, size := range experiments.Table2Sizes {
		b.Run(byteLabel(size), func(b *testing.B) { benchTable2(b, size) })
	}
}

// BenchmarkFigure8 regenerates Figure 8's series (the Table 2 data plotted
// log-log); the 1 KiB point carries the largest relative overhead.
func BenchmarkFigure8(b *testing.B) { benchTable2(b, 1024) }

// benchPolling runs one polling-experiment cell and reports the paper's
// three columns plus the Figure-13 metric.
func benchPolling(b *testing.B, pol core.PolicyKind, alpha, beta int64) {
	var row experiments.PollingRow
	for i := 0; i < b.N; i++ {
		cfg := experiments.StandardPollingBase
		cfg.Policy = pol
		cfg.Alpha = alpha
		cfg.Beta = beta
		row = experiments.RunPolling(cfg)
	}
	b.ReportMetric(row.TimeMS, "vms")
	b.ReportMetric(float64(row.CtxSw), "ctxsw")
	b.ReportMetric(float64(row.MsgTest), "msgtest")
	b.ReportMetric(row.AvgWaiting, "avg-waiting")
}

// benchPollingTable runs every policy at the paper's canonical alpha=1000
// column for one beta.
func benchPollingTable(b *testing.B, beta int64) {
	for _, pol := range experiments.StandardPolicies {
		b.Run(pol.String(), func(b *testing.B) { benchPolling(b, pol, 1000, beta) })
	}
}

// BenchmarkTable3 regenerates Table 3 (beta=100).
func BenchmarkTable3(b *testing.B) { benchPollingTable(b, 100) }

// BenchmarkTable4 regenerates Table 4 (beta=1000).
func BenchmarkTable4(b *testing.B) { benchPollingTable(b, 1000) }

// BenchmarkTable5 regenerates Table 5 (beta=0).
func BenchmarkTable5(b *testing.B) { benchPollingTable(b, 0) }

// BenchmarkFigure10 regenerates Figure 10 (execution time vs alpha,
// beta=100) at the sweep's extremes.
func BenchmarkFigure10(b *testing.B) {
	for _, alpha := range []int64{100, 100000} {
		b.Run("alpha="+intLabel(alpha), func(b *testing.B) {
			benchPolling(b, core.SchedulerPollsPS, alpha, 100)
		})
	}
}

// BenchmarkFigure11 regenerates Figure 11 (context switches): the
// thread-polls series, which pays the most switches.
func BenchmarkFigure11(b *testing.B) { benchPolling(b, core.ThreadPolls, 1000, 100) }

// BenchmarkFigure12 regenerates Figure 12 (msgtest calls): the WQ series,
// whose per-request testing dominates its running time.
func BenchmarkFigure12(b *testing.B) { benchPolling(b, core.SchedulerPollsWQ, 1000, 100) }

// BenchmarkFigure13 regenerates Figure 13 (average waiting threads).
func BenchmarkFigure13(b *testing.B) { benchPolling(b, core.SchedulerPollsPS, 10000, 100) }

// BenchmarkAblationTestAny runs the paper's Section-4.2 hypothesis: WQ
// with a single msgtestany per scheduling point.
func BenchmarkAblationTestAny(b *testing.B) {
	for _, pol := range []core.PolicyKind{core.SchedulerPollsWQ, core.SchedulerPollsWQAny} {
		b.Run(pol.String(), func(b *testing.B) { benchPolling(b, pol, 1000, 100) })
	}
}

// BenchmarkAblationFastPath measures the single-thread yield fast path
// against a contended processor.
func BenchmarkAblationFastPath(b *testing.B) {
	var rows []experiments.AblationFastPathRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunAblationFastPath()
	}
	b.ReportMetric(rows[0].SinglePct, "1thread-ovr-%")
	b.ReportMetric(rows[0].ContendedPct, "contended-ovr-%")
}

// BenchmarkAblationDelivery measures the three delivery designs of
// Section 3.1 at 4 KiB.
func BenchmarkAblationDelivery(b *testing.B) {
	var rows []experiments.AblationDeliveryRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunAblationDelivery()
	}
	for _, r := range rows {
		if r.Size == 4096 {
			b.ReportMetric(r.CtxUS, "vus/msg(ctx)")
			b.ReportMetric(r.TagPackUS, "vus/msg(tagpack)")
			b.ReportMetric(r.BodyUS, "vus/msg(body)")
		}
	}
}

func byteLabel(n int) string { return intLabel(int64(n)) + "B" }
func intLabel(n int64) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return intLabel(n/1000) + "k"
	default:
		var digits []byte
		if n == 0 {
			return "0"
		}
		for n > 0 {
			digits = append([]byte{byte('0' + n%10)}, digits...)
			n /= 10
		}
		return string(digits)
	}
}

// BenchmarkChannelStream measures flow-controlled channel throughput on
// the simulated machine, reporting virtual microseconds per message.
func BenchmarkChannelStream(b *testing.B) {
	const msgs = 200
	var virtUS float64
	for i := 0; i < b.N; i++ {
		rt := core.NewSimRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
			core.Config{Policy: core.SchedulerPollsPS}, machine.Paragon1994())
		res, err := rt.Run(map[comm.Addr]core.MainFunc{
			{PE: 0, Proc: 0}: func(t *core.Thread) {
				ch, err := core.OpenChannel(t, 8, 0x2000)
				if err != nil {
					b.Error(err)
					return
				}
				t.Send(core.GlobalID{PE: 1, Proc: 0, Thread: 0}, 1, ch.Encode())
				sp, err := ch.BindSend(t)
				if err != nil {
					b.Error(err)
					return
				}
				payload := make([]byte, 256)
				for m := 0; m < msgs; m++ {
					if err := sp.Send(payload); err != nil {
						b.Error(err)
						return
					}
				}
			},
			{PE: 1, Proc: 0}: func(t *core.Thread) {
				buf := make([]byte, 512)
				n, _, err := t.Recv(core.AnyThread, 1, buf)
				if err != nil {
					b.Error(err)
					return
				}
				ch, err := core.DecodeChannel(buf[:n])
				if err != nil {
					b.Error(err)
					return
				}
				rp, err := ch.BindRecv(t)
				if err != nil {
					b.Error(err)
					return
				}
				for m := 0; m < msgs; m++ {
					if _, err := rp.Recv(buf); err != nil {
						b.Error(err)
						return
					}
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		virtUS = res.VirtualEnd.Micros() / msgs
	}
	b.ReportMetric(virtUS, "vus/msg")
}
