package chant

import (
	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/ult"
)

// The public surface is defined by aliases onto the implementation
// packages, so the documented types here are identical to the ones the
// runtime uses internally; see doc.go for the Appendix-A mapping.

type (
	// ChanterID names a thread anywhere in the machine: the paper's
	// pthread_chanter_t 3-tuple (processing element, process, local
	// thread).
	ChanterID = core.GlobalID
	// Thread is a chanter: the handle through which a thread performs all
	// Chant operations. Thread functions receive their own *Thread.
	Thread = core.Thread
	// Process is one Chant process: a scheduler of threads attached to a
	// communication endpoint.
	Process = core.Process
	// Runtime assembles and runs one Chant machine.
	Runtime = core.Runtime
	// Topology describes the machine: PEs x ProcsPerPE processes.
	Topology = core.Topology
	// Config selects polling policy, delivery mode, and server options.
	Config = core.Config
	// Result reports end-of-run counters for every process.
	Result = core.Result
	// MainFunc is a process main body.
	MainFunc = core.MainFunc
	// ThreadFunc is a registered thread body that Create can name.
	ThreadFunc = core.ThreadFunc
	// CreateOpts configures thread creation through Create.
	CreateOpts = core.CreateOpts
	// Handler services one remote service request on the server thread.
	Handler = core.Handler
	// RSRContext carries one remote service request through its handler.
	RSRContext = core.RSRContext
	// PolicyKind names a message-polling scheduling algorithm.
	PolicyKind = core.PolicyKind
	// DeliveryMode selects where destination thread names travel.
	DeliveryMode = core.DeliveryMode
	// Group is an ordered set of global threads supporting collective
	// operations (barrier, broadcast, reduce, gather).
	Group = core.Group
	// ReduceFunc combines two partial reduction values.
	ReduceFunc = core.ReduceFunc
	// Int64Op names a built-in int64 reduction (OpSum, OpMin, OpMax).
	Int64Op = core.Int64Op
	// SharedVar is an owner-based distributed shared variable with
	// read-caching and write-invalidation coherence carried by remote
	// service requests (the paper's "coherence management" RSR use).
	SharedVar = core.SharedVar
	// Channel is a Fortran-M / NewThreads-style port-based stream between
	// two threads, with credit flow control and receive-port handoff,
	// built entirely on Chant primitives.
	Channel = core.Channel
	// SendPort is the sending end of a Channel.
	SendPort = core.SendPort
	// RecvPort is the receiving end of a Channel.
	RecvPort = core.RecvPort

	// Addr names a process (PE, process index) at the communication layer.
	Addr = comm.Addr
	// Handle is a nonblocking-receive completion handle
	// (pthread_chanter_irecv's result).
	Handle = comm.RecvHandle
	// Header is a received message's header.
	Header = comm.Header

	// Model is a machine cost model for simulated runs.
	Model = machine.Model

	// CheckpointStore archives versioned, byte-deterministic process
	// checkpoints for crash recovery; set Config.CheckpointStore (one
	// store shared by all processes) to enable Thread.Checkpoint and
	// restart-from-checkpoint (see DESIGN.md's "Recovery" section).
	CheckpointStore = recovery.Store

	// TCB is the local lightweight thread beneath a chanter
	// (pthread_chanter_pthread's result); purely-local operations —
	// priorities, thread-local data — are performed on it.
	TCB = ult.TCB
	// Mutex is a thread-level mutual-exclusion lock within one process.
	Mutex = ult.Mutex
	// Cond is a thread-level condition variable within one process.
	Cond = ult.Cond
	// Key identifies a slot of thread-local data.
	Key = ult.Key
	// SpawnOpts configures local thread creation.
	SpawnOpts = ult.SpawnOpts
)

// Polling policies (paper Section 4.2).
const (
	// ThreadPolls has each waiting thread test its own request on every
	// reschedule (Figure 5); works with any thread package.
	ThreadPolls = core.ThreadPolls
	// SchedulerPollsPS stores the request in the TCB and tests it during a
	// partial context switch; the paper's fastest policy.
	SchedulerPollsPS = core.SchedulerPollsPS
	// SchedulerPollsWQ keeps a waiting queue of requests walked at every
	// scheduling point (Figure 6).
	SchedulerPollsWQ = core.SchedulerPollsWQ
	// SchedulerPollsWQAny is WQ with a single msgtestany per scheduling
	// point (the paper's MPI hypothesis).
	SchedulerPollsWQAny = core.SchedulerPollsWQAny
)

// Delivery modes (paper Section 3.1).
const (
	// DeliverCtx carries the thread id in a header context field
	// (MPI-communicator style).
	DeliverCtx = core.DeliverCtx
	// DeliverTagPack overloads the tag field (NX/p4 style), halving tag
	// space and losing source-thread selection.
	DeliverTagPack = core.DeliverTagPack
	// DeliverBody embeds the thread id in the body via an intermediate
	// dispatcher thread; the design the paper rejects, kept for ablation.
	DeliverBody = core.DeliverBody
)

// Built-in int64 reductions for Group collectives.
const (
	OpSum = core.OpSum
	OpMin = core.OpMin
	OpMax = core.OpMax
)

// NewMemCheckpointStore returns an in-memory checkpoint store, the usual
// choice for simulated machines (every process shares the one store).
func NewMemCheckpointStore() CheckpointStore { return recovery.NewMemStore() }

// NewDirCheckpointStore returns a checkpoint store persisting each archive
// as a file under dir, for real (multi-OS-process) machines.
func NewDirCheckpointStore(dir string) (CheckpointStore, error) {
	return recovery.NewDirStore(dir)
}

// NewGroup builds a collective group over members; every member constructs
// its own handle with the identical member list and tag base.
func NewGroup(members []ChanterID, tagBase int32) (*Group, error) {
	return core.NewGroup(members, tagBase)
}

// OpenChannel creates a channel descriptor brokered by the calling
// thread's process; ship it to the endpoint threads, which BindSend and
// BindRecv.
func OpenChannel(t *Thread, capacity, tagBase int32) (Channel, error) {
	return core.OpenChannel(t, capacity, tagBase)
}

// DecodeChannel reverses Channel.Encode.
func DecodeChannel(b []byte) (Channel, error) { return core.DecodeChannel(b) }

// Any is the wildcard for ChanterID fields and tags.
const Any = core.AnyField

// AnyThread matches a message from any thread anywhere.
var AnyThread = core.AnyThread

// TagReserved is the first reserved tag value; user tags are
// [0, TagReserved).
const TagReserved = core.TagReserved

// NewSimRuntime creates a runtime whose processes execute deterministically
// in virtual time on a simulated multicomputer with the given cost model.
func NewSimRuntime(topo Topology, cfg Config, model *Model) *Runtime {
	return core.NewSimRuntime(topo, cfg, model)
}

// NewRealRuntime creates a runtime whose processes execute on goroutines
// against the wall clock, joined by the in-memory transport.
func NewRealRuntime(topo Topology, cfg Config, model *Model) *Runtime {
	return core.NewRealRuntime(topo, cfg, model)
}

// Paragon1994 is the cost model calibrated against the paper's Intel
// Paragon / NX measurements; the experiment harness runs on it.
func Paragon1994() *Model { return machine.Paragon1994() }

// Modern is a contemporary-cluster cost model, for contrast runs.
func Modern() *Model { return machine.Modern() }

// Errors re-exported from the implementation.
var (
	ErrBadTag      = core.ErrBadTag
	ErrBadTarget   = core.ErrBadTarget
	ErrNoFunc      = core.ErrNoFunc
	ErrNoThread    = core.ErrNoThread
	ErrNoHandler   = core.ErrNoHandler
	ErrRemote      = core.ErrRemote
	ErrRSRTooLarge = core.ErrRSRTooLarge
	ErrTruncated   = comm.ErrTruncated
	ErrCanceled    = ult.ErrCanceled
	ErrDetached    = ult.ErrDetached
	ErrSelfJoin    = ult.ErrSelfJoin
	ErrDeadlock    = ult.ErrDeadlock
)

// NewMutex creates a mutex for threads of process p.
func NewMutex(p *Process) *Mutex { return ult.NewMutex(p.Sched()) }

// NewCond creates a condition variable using m.
func NewCond(m *Mutex) *Cond { return ult.NewCond(m) }

// NewKey creates a thread-local data key; destructor (optional) runs for
// each thread's value when that thread finishes.
func NewKey(name string, destructor func(value any)) *Key {
	return ult.NewKey(name, destructor)
}
