//go:build race

package chant

// raceEnabled reports whether the race detector is compiled in; its shadow
// bookkeeping allocates, so allocation-exactness tests skip under it.
const raceEnabled = true
