// Package chant is a Go implementation of Chant, the "talking threads"
// runtime of Haines, Cronk & Mehrotra (ICASE / NASA Langley, 1994):
// lightweight user-level threads that communicate directly with one
// another across address spaces, using point-to-point message passing and
// remote service requests layered over a standard communication library
// and a standard lightweight-thread library.
//
// # Layers
//
// Exactly as the paper's Figure 4 draws them:
//
//	Chant pthread-style interface      — this package
//	global thread operations           — Thread.Create / Join / Cancel across PEs
//	remote service requests            — Thread.Call / Notify, RegisterHandler
//	point-to-point message passing     — Thread.Send / Recv / Irecv / Msgtest / Msgwait
//	communication library              — internal/comm (NX/MPI-style, 3 transports)
//	lightweight thread library         — internal/ult (cooperative, TCB-based)
//
// # Appendix-A mapping
//
// The paper specifies the interface as an extension of POSIX pthreads;
// this package renders each routine as idiomatic Go:
//
//	pthread_chanter_t        ChanterID (PE, process, local thread)
//	pthread_chanter_create   Thread.Create (remote or LOCAL)
//	pthread_chanter_join     Thread.Join / Thread.JoinLocal
//	pthread_chanter_detach   Thread.Detach / Thread.DetachGlobal
//	pthread_chanter_exit     Thread.Exit
//	pthread_chanter_yield    Thread.Yield
//	pthread_chanter_self     Thread.ID
//	pthread_chanter_pthread  Thread.TCB (the local thread underneath)
//	pthread_chanter_pe       Thread.PE
//	pthread_chanter_process  Thread.Proc
//	pthread_chanter_equal    ChanterID.Equal
//	pthread_chanter_cancel   Thread.Cancel / Thread.CancelLocal
//	pthread_chanter_send     Thread.Send
//	pthread_chanter_recv     Thread.Recv
//	pthread_chanter_irecv    Thread.Irecv
//	pthread_chanter_msgtest  Thread.Msgtest
//	pthread_chanter_msgwait  Thread.Msgwait
//
// # Running a machine
//
// A Runtime assembles a whole machine: a topology of processing elements
// and processes, a polling policy (the paper's Section 4.2 algorithms), a
// delivery mode (Section 3.1), and a transport. NewSimRuntime runs the
// machine deterministically in virtual time on a simulated Intel-Paragon
// cost model; NewRealRuntime runs it on goroutines against the wall clock.
//
//	rt := chant.NewSimRuntime(
//	    chant.Topology{PEs: 2, ProcsPerPE: 1},
//	    chant.Config{Policy: chant.SchedulerPollsPS},
//	    chant.Paragon1994(),
//	)
//	rt.Run(map[chant.Addr]chant.MainFunc{
//	    {PE: 0, Proc: 0}: func(t *chant.Thread) { ... },
//	    {PE: 1, Proc: 0}: func(t *chant.Thread) { ... },
//	})
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package chant
