package chant

import (
	"fmt"
	"testing"

	"chant/internal/check"
	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/ult"
)

// Real-mode benchmarks: wall-clock performance of the library itself (as a
// user would feel it), complementing the simulated paper reproductions.
// These run a 2-PE machine on the in-memory transport per iteration batch.

// benchRealMachine runs a 2-PE real-mode machine whose pe0 main executes
// rounds iterations of loop, with pe1 running peer.
func benchRealMachine(b *testing.B, policy core.PolicyKind,
	main0 func(t *core.Thread, rounds int), main1 func(t *core.Thread, rounds int)) {
	b.Helper()
	rt := core.NewRealRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: policy, DisableServer: false}, machine.Modern())
	rounds := b.N
	b.ResetTimer()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) { main0(t, rounds) },
		{PE: 1, Proc: 0}: func(t *core.Thread) { main1(t, rounds) },
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealPingPong measures round-trip latency between two talking
// threads over the in-memory transport, per polling policy.
func BenchmarkRealPingPong(b *testing.B) {
	for _, pol := range []core.PolicyKind{core.ThreadPolls, core.SchedulerPollsPS, core.SchedulerPollsWQ} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			benchRealMachine(b, pol,
				func(t *core.Thread, rounds int) {
					peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
					buf := make([]byte, 64)
					out := make([]byte, 64)
					for i := 0; i < rounds; i++ {
						t.Send(peer, 1, out)
						t.Recv(peer, 1, buf)
					}
				},
				func(t *core.Thread, rounds int) {
					peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
					buf := make([]byte, 64)
					out := make([]byte, 64)
					for i := 0; i < rounds; i++ {
						t.Recv(peer, 1, buf)
						t.Send(peer, 1, out)
					}
				})
		})
	}
}

// BenchmarkHotPathPingPong is the allocation-focused round-trip benchmark:
// ns/op and allocs/op over the in-memory transport, where the message and
// handle pools should keep the steady state allocation-free on the hot
// path. Compare against the historical BENCH_hotpath.json figures.
func BenchmarkHotPathPingPong(b *testing.B) {
	b.ReportAllocs()
	benchRealMachine(b, core.SchedulerPollsPS,
		func(t *core.Thread, rounds int) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			buf := make([]byte, 64)
			out := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				t.Recv(peer, 1, buf)
			}
		},
		func(t *core.Thread, rounds int) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf := make([]byte, 64)
			out := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Recv(peer, 1, buf)
				t.Send(peer, 1, out)
			}
		})
}

// benchMultiProducer floods one receiving PE from `senders` peer PEs, with
// credit-window flow control bounding the in-flight backlog. One op is one
// round: the receiver absorbing one message from every sender. The serial
// arm forces the per-message mailbox path (SetSerialDelivery), so the pair
// isolates what the MPSC ingress ring's batched drain buys under
// multi-producer contention.
func benchMultiProducer(b *testing.B, senders int, serial bool) {
	const window = 32
	rt := core.NewRealRuntime(core.Topology{PEs: senders + 1, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	rounds := b.N
	mains := map[comm.Addr]core.MainFunc{}
	mains[comm.Addr{PE: 0, Proc: 0}] = func(t *core.Thread) {
		if serial {
			t.Process().Endpoint().SetSerialDelivery(true)
		}
		for s := 1; s <= senders; s++ {
			t.Send(core.GlobalID{PE: int32(s), Proc: 0, Thread: 0}, 2, []byte{1})
		}
		buf := make([]byte, 16)
		got := make([]int, senders+1)
		for i := 0; i < senders*rounds; i++ {
			_, from, err := t.Recv(core.AnyThread, 1, buf)
			if err != nil {
				b.Error(err)
				return
			}
			got[from.PE]++
			if got[from.PE]%window == 0 {
				t.Send(from, 3, []byte{1})
			}
		}
	}
	for s := 1; s <= senders; s++ {
		s := s
		mains[comm.Addr{PE: int32(s), Proc: 0}] = func(t *core.Thread) {
			recv := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			ack := make([]byte, 4)
			out := make([]byte, 16)
			if _, _, err := t.Recv(core.AnyThread, 2, ack); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				t.Send(recv, 1, out)
				if (i+1)%window == 0 {
					if _, _, err := t.Recv(core.AnyThread, 3, ack); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}
	}
	b.ResetTimer()
	_, err := rt.Run(mains)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealMultiProducer compares batched ingress drain against the
// serial per-message mailbox path while 2 and 4 producer PEs flood one
// receiver.
func BenchmarkRealMultiProducer(b *testing.B) {
	for _, senders := range []int{2, 4} {
		for _, arm := range []struct {
			name   string
			serial bool
		}{{"batched", false}, {"serial", true}} {
			senders, arm := senders, arm
			b.Run(fmt.Sprintf("senders=%d/%s", senders, arm.name), func(b *testing.B) {
				benchMultiProducer(b, senders, arm.serial)
			})
		}
	}
}

// BenchmarkRealStreaming measures one-way streaming bandwidth: a single
// sender floods 4 KiB messages at one receiver under a credit window. One
// op is one message; the bytes metric reports the achieved bandwidth.
func BenchmarkRealStreaming(b *testing.B) {
	const window = 32
	const msgSize = 4096
	b.SetBytes(msgSize)
	rt := core.NewRealRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	rounds := b.N
	b.ResetTimer()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			out := make([]byte, msgSize)
			ack := make([]byte, 4)
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				if (i+1)%window == 0 {
					t.Recv(peer, 3, ack)
				}
			}
		},
		{PE: 1, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf := make([]byte, msgSize)
			for i := 0; i < rounds; i++ {
				if _, _, err := t.Recv(core.AnyThread, 1, buf); err != nil {
					b.Error(err)
					return
				}
				if (i+1)%window == 0 {
					t.Send(peer, 3, []byte{1})
				}
			}
		},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// TestHotPathAllocsPinned pins the steady-state allocation count of the
// real-mode ping-pong hot path. The pooled messages, per-thread wait boxes,
// and mailbox bucket freelists hold it at zero; the pin leaves slack only
// for amortized startup. (The pre-ring baseline in
// BENCH_real_baseline.json sat at 8 allocs/op.)
func TestHotPathAllocsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed pin skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race for allocation exactness")
	}
	if check.Enabled {
		t.Skip("chantdebug invariant checks are not allocation-audited")
	}
	r := testing.Benchmark(BenchmarkHotPathPingPong)
	if got := r.AllocsPerOp(); got > 2 {
		t.Fatalf("hot-path ping-pong allocates %d allocs/op (%d B/op); pinned at <= 2 (baseline was 8)",
			got, r.AllocedBytesPerOp())
	}
	t.Logf("hot-path ping-pong: %d allocs/op, %d B/op, %d ns/op",
		r.AllocsPerOp(), r.AllocedBytesPerOp(), r.NsPerOp())
}

// BenchmarkRealRSR measures remote-procedure-call round trips through the
// server thread.
func BenchmarkRealRSR(b *testing.B) {
	benchRealMachine(b, core.SchedulerPollsPS,
		func(t *core.Thread, rounds int) {
			var reply [16]byte
			for i := 0; i < rounds; i++ {
				if _, err := t.Call(comm.Addr{PE: 1, Proc: 0}, 1, []byte("ping"), reply[:]); err != nil {
					b.Error(err)
					return
				}
			}
		},
		func(t *core.Thread, rounds int) {
			t.Process().RegisterHandler(1, func(ctx *core.RSRContext) ([]byte, error) {
				return ctx.Req, nil
			})
		})
}

// BenchmarkRealSharedRead measures cached shared-variable reads (after the
// first fetch, a read is purely local).
func BenchmarkRealSharedRead(b *testing.B) {
	home := comm.Addr{PE: 0, Proc: 0}
	benchRealMachine(b, core.SchedulerPollsPS,
		func(t *core.Thread, rounds int) {
			v, err := t.Process().NewShared("bench", home, []byte("value"))
			if err != nil {
				b.Error(err)
				return
			}
			buf := make([]byte, 16)
			for i := 0; i < rounds; i++ {
				if _, err := v.Read(t, buf); err != nil {
					b.Error(err)
					return
				}
			}
		},
		func(t *core.Thread, rounds int) {})
}

// BenchmarkRealLocalSendRecv measures same-process thread-to-thread
// messaging (the loopback path).
func BenchmarkRealLocalSendRecv(b *testing.B) {
	rt := core.NewRealRuntime(core.Topology{PEs: 1, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	rounds := b.N
	b.ResetTimer()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) {
			echo := t.Process().CreateLocal("echo", func(me *core.Thread) {
				buf := make([]byte, 32)
				for i := 0; i < rounds; i++ {
					_, from, err := me.Recv(core.AnyThread, 1, buf)
					if err != nil {
						b.Error(err)
						return
					}
					me.Send(from, 2, buf[:4])
				}
			}, ult.SpawnOpts{})
			buf := make([]byte, 32)
			out := make([]byte, 32)
			for i := 0; i < rounds; i++ {
				t.Send(echo.ID(), 1, out)
				t.Recv(echo.ID(), 2, buf)
			}
			t.JoinLocal(echo)
		},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}
