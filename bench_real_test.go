package chant

import (
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/ult"
)

// Real-mode benchmarks: wall-clock performance of the library itself (as a
// user would feel it), complementing the simulated paper reproductions.
// These run a 2-PE machine on the in-memory transport per iteration batch.

// benchRealMachine runs a 2-PE real-mode machine whose pe0 main executes
// rounds iterations of loop, with pe1 running peer.
func benchRealMachine(b *testing.B, policy core.PolicyKind,
	main0 func(t *core.Thread, rounds int), main1 func(t *core.Thread, rounds int)) {
	b.Helper()
	rt := core.NewRealRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: policy, DisableServer: false}, machine.Modern())
	rounds := b.N
	b.ResetTimer()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) { main0(t, rounds) },
		{PE: 1, Proc: 0}: func(t *core.Thread) { main1(t, rounds) },
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealPingPong measures round-trip latency between two talking
// threads over the in-memory transport, per polling policy.
func BenchmarkRealPingPong(b *testing.B) {
	for _, pol := range []core.PolicyKind{core.ThreadPolls, core.SchedulerPollsPS, core.SchedulerPollsWQ} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			benchRealMachine(b, pol,
				func(t *core.Thread, rounds int) {
					peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
					buf := make([]byte, 64)
					out := make([]byte, 64)
					for i := 0; i < rounds; i++ {
						t.Send(peer, 1, out)
						t.Recv(peer, 1, buf)
					}
				},
				func(t *core.Thread, rounds int) {
					peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
					buf := make([]byte, 64)
					out := make([]byte, 64)
					for i := 0; i < rounds; i++ {
						t.Recv(peer, 1, buf)
						t.Send(peer, 1, out)
					}
				})
		})
	}
}

// BenchmarkHotPathPingPong is the allocation-focused round-trip benchmark:
// ns/op and allocs/op over the in-memory transport, where the message and
// handle pools should keep the steady state allocation-free on the hot
// path. Compare against the historical BENCH_hotpath.json figures.
func BenchmarkHotPathPingPong(b *testing.B) {
	b.ReportAllocs()
	benchRealMachine(b, core.SchedulerPollsPS,
		func(t *core.Thread, rounds int) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			buf := make([]byte, 64)
			out := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				t.Recv(peer, 1, buf)
			}
		},
		func(t *core.Thread, rounds int) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf := make([]byte, 64)
			out := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Recv(peer, 1, buf)
				t.Send(peer, 1, out)
			}
		})
}

// BenchmarkRealRSR measures remote-procedure-call round trips through the
// server thread.
func BenchmarkRealRSR(b *testing.B) {
	benchRealMachine(b, core.SchedulerPollsPS,
		func(t *core.Thread, rounds int) {
			var reply [16]byte
			for i := 0; i < rounds; i++ {
				if _, err := t.Call(comm.Addr{PE: 1, Proc: 0}, 1, []byte("ping"), reply[:]); err != nil {
					b.Error(err)
					return
				}
			}
		},
		func(t *core.Thread, rounds int) {
			t.Process().RegisterHandler(1, func(ctx *core.RSRContext) ([]byte, error) {
				return ctx.Req, nil
			})
		})
}

// BenchmarkRealSharedRead measures cached shared-variable reads (after the
// first fetch, a read is purely local).
func BenchmarkRealSharedRead(b *testing.B) {
	home := comm.Addr{PE: 0, Proc: 0}
	benchRealMachine(b, core.SchedulerPollsPS,
		func(t *core.Thread, rounds int) {
			v, err := t.Process().NewShared("bench", home, []byte("value"))
			if err != nil {
				b.Error(err)
				return
			}
			buf := make([]byte, 16)
			for i := 0; i < rounds; i++ {
				if _, err := v.Read(t, buf); err != nil {
					b.Error(err)
					return
				}
			}
		},
		func(t *core.Thread, rounds int) {})
}

// BenchmarkRealLocalSendRecv measures same-process thread-to-thread
// messaging (the loopback path).
func BenchmarkRealLocalSendRecv(b *testing.B) {
	rt := core.NewRealRuntime(core.Topology{PEs: 1, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	rounds := b.N
	b.ResetTimer()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) {
			echo := t.Process().CreateLocal("echo", func(me *core.Thread) {
				buf := make([]byte, 32)
				for i := 0; i < rounds; i++ {
					_, from, err := me.Recv(core.AnyThread, 1, buf)
					if err != nil {
						b.Error(err)
						return
					}
					me.Send(from, 2, buf[:4])
				}
			}, ult.SpawnOpts{})
			buf := make([]byte, 32)
			out := make([]byte, 32)
			for i := 0; i < rounds; i++ {
				t.Send(echo.ID(), 1, out)
				t.Recv(echo.ID(), 2, buf)
			}
			t.JoinLocal(echo)
		},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}
