// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write chantvet's
// checkers against (the container image carries no module proxy, so the real
// x/tools package is not available). An Analyzer inspects one type-checked
// package at a time through a Pass and reports Diagnostics; drivers — the
// standalone runner in cmd/chantvet, the go vet -vettool protocol shim, and
// the analysistest harness — supply the Pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one chantvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description printed by chantvet help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic. Drivers install it; analyzers call
	// Reportf instead.
	Report func(Diagnostic)

	suppress map[string]map[int]bool // filename -> line -> allow-nondet present
}

// A Diagnostic is one finding, attached to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a diagnostic at pos unless an allow-nondet suppression
// comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// allowRe matches a well-formed suppression comment: the marker must carry a
// non-empty reason, so silenced diagnostics stay explained.
var allowRe = regexp.MustCompile(`^//chant:allow-nondet\s+\S`)

// Suppressed reports whether pos is covered by a //chant:allow-nondet
// comment with a reason, either trailing on the same line or alone on the
// line immediately above.
func (p *Pass) Suppressed(pos token.Pos) bool {
	if p.suppress == nil {
		p.suppress = make(map[string]map[int]bool)
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			if tf == nil {
				continue
			}
			lines := make(map[int]bool)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if allowRe.MatchString(c.Text) {
						lines[p.Fset.Position(c.Pos()).Line] = true
					}
				}
			}
			p.suppress[tf.Name()] = lines
		}
	}
	position := p.Fset.Position(pos)
	lines := p.suppress[position.Filename]
	return lines[position.Line] || lines[position.Line-1]
}

// IsTest reports whether file is a _test.go file. Chantvet's contracts bind
// the simulation code itself; test harnesses legitimately drive schedulers
// from plain goroutines and race real-time timeouts against them, so every
// analyzer skips test files.
func (p *Pass) IsTest(file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Package).Filename, "_test.go")
}

// PathMatches reports whether a package path is, or ends with, the given
// repo-relative path (e.g. "internal/ult" matches both "chant/internal/ult"
// and a test fixture module's "internal/ult").
func PathMatches(pkgPath, want string) bool {
	return pkgPath == want || strings.HasSuffix(pkgPath, "/"+want)
}

// PathContains reports whether the repo-relative path want appears as a
// segment run anywhere in pkgPath ("internal/comm" matches
// "chant/internal/comm/tcpnet").
func PathContains(pkgPath, want string) bool {
	return strings.Contains("/"+pkgPath+"/", "/"+want+"/")
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through non-selector expressions, function-typed values, and
// built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RecvNamed reports the receiver's named type for a method, unwrapping any
// pointer, or nil for plain functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
