// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write chantvet's
// checkers against (the container image carries no module proxy, so the real
// x/tools package is not available). An Analyzer inspects one type-checked
// package at a time through a Pass and reports Diagnostics; drivers — the
// standalone runner in cmd/chantvet, the go vet -vettool protocol shim, and
// the analysistest harness — supply the Pass.
//
// Beyond the per-package model, the framework carries two interprocedural
// mechanisms: serializable per-object Facts (see FactStore) that let a pass
// over one package export conclusions its dependents import, and a shared
// type-informed call graph (see the callgraph package) that drivers build
// over every loaded package and hand to each Pass. Analyzers that need a
// whole-program view after every package has been visited install a Finish
// hook.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"chant/internal/analysis/callgraph"
	"chant/internal/analysis/typeutil"
)

// An Analyzer describes one chantvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description printed by chantvet help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every loaded package has been
	// visited, receiving the passes in dependency order. Whole-program
	// analyzers (ndtaint) do their propagation and reporting here, when the
	// fact store and call graph cover everything the driver loaded.
	Finish func(passes []*Pass) error
	// Marker overrides the suppression comment this analyzer honors;
	// empty means the default "allow-nondet". handleleak, whose findings
	// are resource leaks rather than nondeterminism, uses "allow-leak".
	Marker string
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the path of the module declaring the package, empty for
	// packages outside any module. Under `go vet -vettool` the analyzers
	// also run over dependency units (the standard library included) to
	// produce facts; analyzers whose verdicts must not depend on how much
	// of the build graph the driver happened to load gate on Module so
	// both drivers reach the same conclusions.
	Module string

	// Facts is the run's shared fact store; nil when the driver provides no
	// fact plumbing (facts exported then are silently dropped).
	Facts *FactStore

	// Graph is the call graph over every package the driver loaded — the
	// whole program for standalone runs, the single unit under the go vet
	// protocol. Nil when the driver builds none.
	Graph *callgraph.Graph

	// Report receives each diagnostic. Drivers install it; analyzers call
	// Reportf instead.
	Report func(Diagnostic)

	suppress map[string]map[string]map[int]bool // marker -> filename -> line
}

// A Diagnostic is one finding, attached to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// SuggestedFixes carries mechanical rewrites that would resolve the
	// diagnostic, applied by chantvet -fix and verified against .golden
	// files by the analysistest harness.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained mechanical rewrite.
type SuggestedFix struct {
	// Message describes the rewrite ("insert defer e.ReleaseHandle(h)").
	Message string
	// TextEdits are the replacements; they must not overlap.
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText. An insertion
// has Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Reportf reports a diagnostic at pos unless a suppression comment with the
// analyzer's marker covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix is Reportf carrying suggested fixes.
func (p *Pass) ReportfFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:            pos,
		Message:        fmt.Sprintf(format, args...),
		Analyzer:       p.Analyzer.Name,
		SuggestedFixes: fixes,
	})
}

// DefaultMarker is the suppression marker analyzers honor unless they set
// Analyzer.Marker: //chant:allow-nondet <reason>.
const DefaultMarker = "allow-nondet"

// marker reports the suppression marker in force for this pass.
func (p *Pass) marker() string {
	if p.Analyzer != nil && p.Analyzer.Marker != "" {
		return p.Analyzer.Marker
	}
	return DefaultMarker
}

// Suppressed reports whether pos is covered by the analyzer's suppression
// comment (//chant:<marker> <reason>) — with a non-empty reason, so silenced
// diagnostics stay explained — either trailing on the same line or alone on
// the line immediately above.
func (p *Pass) Suppressed(pos token.Pos) bool {
	return p.SuppressedBy(pos, p.marker())
}

// SuppressedBy is Suppressed for an explicit marker, for analyzers that
// consult a marker other than their reporting default (ndtaint checks
// allow-nondet at taint sources while reporting elsewhere).
func (p *Pass) SuppressedBy(pos token.Pos, marker string) bool {
	lines := p.markerLines(marker)
	position := p.Fset.Position(pos)
	fileLines := lines[position.Filename]
	return fileLines[position.Line] || fileLines[position.Line-1]
}

// markerLines lazily indexes, per file, the lines carrying a well-formed
// suppression comment for marker.
func (p *Pass) markerLines(marker string) map[string]map[int]bool {
	if p.suppress == nil {
		p.suppress = make(map[string]map[string]map[int]bool)
	}
	if m, ok := p.suppress[marker]; ok {
		return m
	}
	re := regexp.MustCompile(`^//chant:` + regexp.QuoteMeta(marker) + `\s+\S`)
	byFile := make(map[string]map[int]bool)
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if re.MatchString(c.Text) {
					lines[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		byFile[tf.Name()] = lines
	}
	p.suppress[marker] = byFile
	return byFile
}

// IsTest reports whether file is a _test.go file. Chantvet's contracts bind
// the simulation code itself; test harnesses legitimately drive schedulers
// from plain goroutines and race real-time timeouts against them, so every
// analyzer skips test files.
func (p *Pass) IsTest(file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Package).Filename, "_test.go")
}

// PathMatches reports whether a package path is, or ends with, the given
// repo-relative path (e.g. "internal/ult" matches both "chant/internal/ult"
// and a test fixture module's "internal/ult").
func PathMatches(pkgPath, want string) bool {
	return pkgPath == want || strings.HasSuffix(pkgPath, "/"+want)
}

// PathContains reports whether the repo-relative path want appears as a
// segment run anywhere in pkgPath ("internal/comm" matches
// "chant/internal/comm/tcpnet").
func PathContains(pkgPath, want string) bool {
	return strings.Contains("/"+pkgPath+"/", "/"+want+"/")
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through non-selector expressions, function-typed values, and
// built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return typeutil.CalleeFunc(info, call)
}

// RecvNamed reports the receiver's named type for a method, unwrapping any
// pointer, or nil for plain functions.
func RecvNamed(fn *types.Func) *types.Named {
	return typeutil.RecvNamed(fn)
}
