package handleleak_test

import (
	"testing"

	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/handleleak"
)

func TestHandleleak(t *testing.T) {
	analysistest.Run(t, "testdata", handleleak.Analyzer, "./internal/comm/leakfix")
}

// TestCheckpointFixture covers the coordinated-snapshot capture shapes:
// pooled messages held in a checkpoint's in-flight log are ownership
// transfers, not leaks; bailing out of the capture while owning one is.
func TestCheckpointFixture(t *testing.T) {
	analysistest.Run(t, "testdata", handleleak.Analyzer, "./internal/comm/ckptfix")
}

// TestSuggestedFixes applies the deferred-release fixes in memory and
// compares against the .golden file.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", handleleak.Analyzer, "./internal/comm/fixgolden")
}
