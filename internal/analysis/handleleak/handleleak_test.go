package handleleak_test

import (
	"testing"

	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/handleleak"
)

func TestHandleleak(t *testing.T) {
	analysistest.Run(t, "testdata", handleleak.Analyzer, "./internal/comm/leakfix")
}

// TestSuggestedFixes applies the deferred-release fixes in memory and
// compares against the .golden file.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", handleleak.Analyzer, "./internal/comm/fixgolden")
}
