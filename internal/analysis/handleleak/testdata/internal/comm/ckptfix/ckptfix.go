// Package ckptfix seeds the checkpoint-capture shapes for the handleleak
// analyzer: the coordinated-snapshot recorder holds pooled messages in its
// in-flight log (an ownership transfer, silent), or copies the payload and
// returns the message to the pool (also silent) — but a capture path that
// bails out while still owning the message must be flagged.
package ckptfix

import "errors"

var errFull = errors.New("in-flight log full")

// Message mirrors the comm package's pooled message.
type Message struct{ Data []byte }

func GetPooledMessage(n int) *Message { return &Message{Data: make([]byte, n)} }
func ReleaseMessage(m *Message)       {}

// Recorder mirrors the recovery package's in-flight recorder.
type Recorder struct {
	inflight []*Message
	limit    int
}

// recordHeld moves the message into the checkpoint's in-flight log: the
// append transfers ownership to the recorder for the checkpoint's lifetime.
func (r *Recorder) recordHeld(n int) {
	m := GetPooledMessage(n)
	r.inflight = append(r.inflight, m)
}

// recordCopied snapshots the payload and returns the message to the pool:
// the checkpoint owns a copy, never the pooled buffer.
func (r *Recorder) recordCopied(n int) []byte {
	m := GetPooledMessage(n)
	data := make([]byte, len(m.Data))
	copy(data, m.Data)
	ReleaseMessage(m)
	return data
}

// recordBounded leaks: the full-log early return drops the pooled message
// without releasing it.
func (r *Recorder) recordBounded(n int) error {
	m := GetPooledMessage(n) // want `pooled message m acquired from GetPooledMessage is not released on every path`
	if len(r.inflight) >= r.limit {
		return errFull
	}
	r.inflight = append(r.inflight, m)
	return nil
}

// recordBoundedFixed is the corrected shape: the rejected message goes back
// to the pool before the error return.
func (r *Recorder) recordBoundedFixed(n int) error {
	m := GetPooledMessage(n)
	if len(r.inflight) >= r.limit {
		ReleaseMessage(m)
		return errFull
	}
	r.inflight = append(r.inflight, m)
	return nil
}

// drain releases every held message when the checkpoint is archived. The
// messages were acquired elsewhere (the analyzer tracks acquisitions per
// function), so this stays silent regardless.
func (r *Recorder) drain() {
	for _, m := range r.inflight {
		ReleaseMessage(m)
	}
	r.inflight = nil
}

// captureLoop records a batch; the held annotation sanctions the one kept
// past the loop for the checkpoint's lifetime.
func (r *Recorder) captureLoop(rounds, n int) {
	for i := 0; i < rounds; i++ {
		m := GetPooledMessage(n) //chant:allow-leak checkpoint holds the message until archived
		_ = m
	}
}
