// Package fixgolden exercises handleleak's suggested fix: the inserted
// deferred release, applied in memory, must reproduce fixgolden.go.golden
// byte for byte.
package fixgolden

import "chant/internal/comm/leakfix"

// leakHandle's fix releases through the acquiring receiver.
func leakHandle(e *leakfix.Endpoint, buf []byte) bool {
	h := e.Irecv(buf) // want `receive handle h acquired from Irecv is not released on every path`
	return e.Test(h)
}

// leakMessage's fix preserves the acquirer's package qualifier.
func leakMessage(n int) int {
	m := leakfix.GetPooledMessage(n) // want `pooled message m acquired from GetPooledMessage is not released on every path`
	return len(m.Data)
}
