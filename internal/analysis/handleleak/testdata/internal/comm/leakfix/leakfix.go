// Package leakfix seeds acquisition/release shapes for the handleleak
// analyzer: pooled messages and receive handles that leak on some path must
// be flagged at the acquisition; releases, ownership transfers, and escapes
// on every path must stay silent.
package leakfix

import "errors"

var errTimeout = errors.New("timeout")

// Message and RecvHandle mirror the comm package's pooled resources.
type Message struct{ Data []byte }

type RecvHandle struct{ done bool }

// Endpoint mirrors comm.Endpoint's acquire/release surface.
type Endpoint struct{ handles []*RecvHandle }

func GetPooledMessage(n int) *Message              { return &Message{Data: make([]byte, n)} }
func ReleaseMessage(m *Message)                    {}
func Deliver(m *Message)                           {}
func (e *Endpoint) Irecv(buf []byte) *RecvHandle   { return &RecvHandle{} }
func (e *Endpoint) ReleaseHandle(h *RecvHandle)    {}
func (e *Endpoint) Test(h *RecvHandle) bool        { return h.done }
func (e *Endpoint) CancelRecv(h *RecvHandle) bool  { return true }
func process(m *Message)                           {}

// leakOnError releases on the happy path only: the early return leaks.
func leakOnError(e *Endpoint, buf []byte) error {
	h := e.Irecv(buf) // want `receive handle h acquired from Irecv is not released on every path`
	if !e.Test(h) {
		return errTimeout
	}
	e.ReleaseHandle(h)
	return nil
}

// releasedAll releases unconditionally.
func releasedAll(e *Endpoint, buf []byte) {
	h := e.Irecv(buf)
	e.ReleaseHandle(h)
}

// deferRelease registers the release up front: every exit past the defer is
// covered.
func deferRelease(e *Endpoint, buf []byte) error {
	h := e.Irecv(buf)
	defer e.ReleaseHandle(h)
	if !e.Test(h) {
		return errTimeout
	}
	return nil
}

// returnsHandle transfers ownership to the caller.
func returnsHandle(e *Endpoint, buf []byte) *RecvHandle {
	h := e.Irecv(buf)
	return h
}

// storesHandle moves the handle into the endpoint's own bookkeeping.
func storesHandle(e *Endpoint, buf []byte) {
	h := e.Irecv(buf)
	e.handles = append(e.handles, h)
}

// suppressed is sanctioned: the annotation must silence the report.
func suppressed(e *Endpoint, buf []byte) {
	h := e.Irecv(buf) //chant:allow-leak fixture: held until endpoint close
	_ = h
}

// branchRelease covers both arms.
func branchRelease(e *Endpoint, buf []byte) {
	h := e.Irecv(buf)
	if e.Test(h) {
		e.ReleaseHandle(h)
	} else {
		e.CancelRecv(h)
		e.ReleaseHandle(h)
	}
}

// branchLeak covers only one arm: the else path falls to the exit owning h.
func branchLeak(e *Endpoint, buf []byte) {
	h := e.Irecv(buf) // want `receive handle h acquired from Irecv is not released on every path \(leaks at the function exit\)`
	if e.Test(h) {
		e.ReleaseHandle(h)
	}
}

// panicPath panics while owning the handle: panic tears the process down,
// so the unreleased arm is not a leak.
func panicPath(e *Endpoint, buf []byte) {
	h := e.Irecv(buf)
	if !e.Test(h) {
		panic("not done")
	}
	e.ReleaseHandle(h)
}

// loopRepost releases at the bottom of every iteration.
func loopRepost(e *Endpoint, buf []byte, rounds int) {
	for i := 0; i < rounds; i++ {
		h := e.Irecv(buf)
		e.Test(h)
		e.ReleaseHandle(h)
	}
}

// loopSkip leaks through the continue, which skips the release.
func loopSkip(e *Endpoint, buf []byte, rounds int) {
	for i := 0; i < rounds; i++ {
		h := e.Irecv(buf) // want `receive handle h acquired from Irecv is not released on every path`
		if !e.Test(h) {
			continue
		}
		e.ReleaseHandle(h)
	}
}

// leakMsg drops a pooled message on the floor.
func leakMsg(n int) int {
	m := GetPooledMessage(n) // want `pooled message m acquired from GetPooledMessage is not released on every path \(leaks at the return on line \d+\)`
	return len(m.Data)
}

// delivered transfers ownership to the mailbox.
func delivered(n int) {
	m := GetPooledMessage(n)
	Deliver(m)
}

// sentToChan transfers ownership through a channel.
func sentToChan(ch chan *Message, n int) {
	m := GetPooledMessage(n)
	ch <- m
}

// goHandoff transfers ownership to a goroutine.
func goHandoff(n int) {
	m := GetPooledMessage(n)
	go process(m)
}

// earlyReturnMsg releases late and returns early: the first return leaks.
func earlyReturnMsg(n int) error {
	m := GetPooledMessage(n) // want `pooled message m acquired from GetPooledMessage is not released on every path \(leaks at the return on line \d+\)`
	if n == 0 {
		return errTimeout
	}
	ReleaseMessage(m)
	return nil
}

// gotoSkipped uses control flow the CFG builder rejects: the function is
// skipped rather than analyzed wrongly, even though it leaks.
func gotoSkipped(e *Endpoint, buf []byte) {
	h := e.Irecv(buf)
	if e.Test(h) {
		goto out
	}
	e.ReleaseHandle(h)
out:
}
