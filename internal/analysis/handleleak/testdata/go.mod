module chant

go 1.22
