// Package handleleak defines chantvet's must-release analyzer for Chant's
// two manually managed resources: pooled messages (PR 3's allocation pools —
// GetPooledMessage / getMessage) and receive handles (comm.Endpoint.Irecv /
// newHandle). Both are recycled through explicit release calls; a handle or
// message that escapes every release on some path is a slow leak that erodes
// the constant-time pool guarantees the paper's Table 2 depends on.
//
// The analysis is intraprocedural and path-sensitive over the cfg package's
// basic blocks: from each acquisition it walks every control-flow path and
// demands that ownership ends before the function exits — by an explicit
// release, by transfer to a consuming call (Deliver and friends take
// ownership of the message), or by escape (returning the value, storing it
// into a structure, sending it on a channel, handing it to a goroutine),
// which moves the obligation to the new owner. A path reaching the exit
// with ownership still held is reported at the acquisition, naming the line
// where the leaking path leaves the function, with a suggested fix inserting
// a deferred release. Functions whose control flow the cfg builder rejects
// (goto) are skipped, not guessed at.
//
// Sanctioned sites carry //chant:allow-leak <reason>.
package handleleak

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"chant/internal/analysis"
	"chant/internal/analysis/cfg"
)

// Marker is the suppression marker: //chant:allow-leak <reason>.
const Marker = "allow-leak"

// Analyzer proves every pooled message and receive handle is released on all
// paths.
var Analyzer = &analysis.Analyzer{
	Name: "handleleak",
	Doc: "report pooled messages (GetPooledMessage/getMessage) and receive " +
		"handles (Irecv/newHandle) not released, delivered, or escaped on " +
		"every control-flow path; suppress sanctioned sites with a " +
		"//chant:allow-leak <reason> comment",
	Run:    run,
	Marker: Marker,
}

// kind distinguishes the two tracked resources; each has its own release
// vocabulary.
type kind int

const (
	message kind = iota
	handle
)

// acquirers maps function names that mint a tracked resource to its kind.
// Handle acquirers are only honored in the packages that define them
// (internal/comm and its consumers in internal/core), so an unrelated Irecv
// elsewhere is not claimed.
var acquirers = map[string]kind{
	"GetPooledMessage": message,
	"getMessage":       message,
	"Irecv":            handle,
	"newHandle":        handle,
}

// consumers lists, per kind, the callee names that take ownership when the
// tracked value is passed as an argument: releases return it to the pool,
// Deliver hands the message to the destination mailbox (which releases it
// after matching), append moves it into a caller-owned collection.
var consumers = map[kind]map[string]bool{
	message: {
		"ReleaseMessage": true, "releaseMessage": true,
		"Deliver": true, "DeliverLocal": true, "deliver": true,
		"append": true,
	},
	handle: {
		"ReleaseHandle": true,
		"append":        true,
	},
}

// handlePkgs are the package trees where Irecv/newHandle calls mint real
// receive handles.
var handlePkgs = []string{"internal/comm", "internal/core"}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTest(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// an acquisition is one statement binding a tracked resource to a local
// variable.
type acquisition struct {
	stmt ast.Node    // the assignment statement
	call *ast.CallExpr
	obj  types.Object // the local the resource is bound to
	name string       // acquirer name ("GetPooledMessage")
	kind kind
}

// checkFunc builds the function's CFG and runs the must-release walk for
// each acquisition found in it.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var acqs []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name, k, ok := acquirer(pass, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		acqs = append(acqs, acquisition{stmt: as, call: call, obj: obj, name: name, kind: k})
		return true
	})
	if len(acqs) == 0 {
		return
	}
	graph, err := cfg.New(fd.Body)
	if err != nil {
		return // goto-using control flow: skip rather than guess
	}
	for _, acq := range acqs {
		if pass.SuppressedBy(acq.stmt.Pos(), Marker) {
			continue
		}
		checkAcquisition(pass, fd, graph, acq)
	}
}

// acquirer classifies call as a resource acquisition, returning the acquirer
// name and resource kind.
func acquirer(pass *analysis.Pass, call *ast.CallExpr) (string, kind, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", 0, false
	}
	k, ok := acquirers[fn.Name()]
	if !ok {
		return "", 0, false
	}
	if k == handle {
		inScope := false
		for _, p := range handlePkgs {
			if analysis.PathContains(pass.Pkg.Path(), p) || analysis.PathMatches(pass.Pkg.Path(), p) {
				inScope = true
			}
		}
		if !inScope {
			return "", 0, false
		}
	}
	return fn.Name(), k, true
}

// effect is what one statement does to a tracked resource's ownership.
type effect int

const (
	none effect = iota
	// released: ownership explicitly ended (release call, consuming call,
	// defer-registered release, escape to a new owner). The walk stops.
	released
	// rebound: the variable was reassigned; the old value's obligation was
	// the previous statements' business and tracking cannot continue.
	rebound
)

// checkAcquisition walks every path from the acquisition to the function
// exit; if any path arrives still owning the resource, it reports at the
// acquisition with a deferred-release suggested fix.
func checkAcquisition(pass *analysis.Pass, fd *ast.FuncDecl, graph *cfg.Graph, acq acquisition) {
	// Locate the acquisition inside its block.
	var start *cfg.Block
	startIdx := -1
	for _, blk := range graph.Blocks {
		for i, n := range blk.Nodes {
			if n == acq.stmt {
				start, startIdx = blk, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return // acquisition in unreachable code
	}

	// Walk the rest of the acquisition block, then BFS over successors.
	// Ownership is the only state, so visiting each block once suffices.
	first := &item{blk: start, from: startIdx + 1}
	queue := []*item{first}
	seen := map[*cfg.Block]bool{start: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		eff := none
		for _, n := range it.blk.Nodes[it.from:] {
			eff = nodeEffect(pass, n, acq)
			if eff != none {
				break
			}
		}
		if eff != none {
			continue // ownership ended (or tracking must stop) on this path
		}
		// Only the virtual exit is a leak; a successor-less block that is not
		// the exit ends in panic, which tears the process down pool and all.
		if it.blk == graph.Exit {
			report(pass, fd, acq, leakLine(pass, it))
			return
		}
		for _, succ := range it.blk.Succs {
			if seen[succ] {
				continue
			}
			seen[succ] = true
			queue = append(queue, &item{blk: succ, prev: it})
		}
	}
}

// leakLine picks the line where the leaking path leaves the function: the
// return statement of the last block on the path, or the function's closing
// line when control falls off the end.
func leakLine(pass *analysis.Pass, it *item) int {
	for cur := it; cur != nil; cur = cur.prev {
		if cur.blk.Returns != nil {
			return pass.Fset.Position(cur.blk.Returns.Pos()).Line
		}
		for i := len(cur.blk.Nodes) - 1; i >= 0; i-- {
			if r, ok := cur.blk.Nodes[i].(*ast.ReturnStmt); ok {
				return pass.Fset.Position(r.Pos()).Line
			}
		}
	}
	return 0
}

// item is one step of the must-release walk: a block, the index of its
// first unprocessed node, and the path that led here (for leakLine).
type item struct {
	blk  *cfg.Block
	from int
	prev *item
}

func report(pass *analysis.Pass, fd *ast.FuncDecl, acq acquisition, line int) {
	what := "pooled message"
	rel := releaseName(pass, acq)
	if acq.kind == handle {
		what = "receive handle"
	}
	where := "at the function exit"
	if line > 0 {
		where = fmt.Sprintf("at the return on line %d", line)
	}
	fix := deferFix(pass, acq, rel)
	pass.ReportfFix(acq.stmt.Pos(), []analysis.SuggestedFix{fix},
		"%s %s acquired from %s is not released on every path (leaks %s); release it with %s or annotate //chant:allow-leak <reason>",
		what, acq.obj.Name(), acq.name, where, rel)
}

// releaseName derives the release call matching the acquisition, preserving
// the acquisition's qualifier: "comm.GetPooledMessage" suggests
// "comm.ReleaseMessage", and a method acquirer like "p.ep.Irecv" suggests
// releasing through the same receiver, "p.ep.ReleaseHandle".
func releaseName(pass *analysis.Pass, acq acquisition) string {
	rel := map[kind]string{message: "ReleaseMessage", handle: "ReleaseHandle"}[acq.kind]
	if acq.name == "getMessage" {
		rel = "releaseMessage"
	}
	if sel, ok := ast.Unparen(acq.call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return id.Name + "." + rel
			}
		}
		if acq.kind == handle {
			if q := exprString(pass.Fset, sel.X); q != "" {
				return q + "." + rel
			}
		}
	}
	return rel
}

// exprString renders an expression's source text.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}

// deferFix builds the suggested fix inserting `defer <rel>(<var>)` on the
// line after the acquisition, matching its indentation (tabs, per gofmt).
func deferFix(pass *analysis.Pass, acq acquisition, rel string) analysis.SuggestedFix {
	pos := pass.Fset.Position(acq.stmt.Pos())
	indent := strings.Repeat("\t", pos.Column-1)
	return analysis.SuggestedFix{
		Message: fmt.Sprintf("defer %s(%s) after the acquisition", rel, acq.obj.Name()),
		TextEdits: []analysis.TextEdit{{
			Pos:     acq.stmt.End(),
			End:     acq.stmt.End(),
			NewText: "\n" + indent + fmt.Sprintf("defer %s(%s)", rel, acq.obj.Name()),
		}},
	}
}

// nodeEffect classifies one CFG node's action on the tracked resource.
func nodeEffect(pass *analysis.Pass, n ast.Node, acq acquisition) effect {
	eff := none
	ast.Inspect(n, func(node ast.Node) bool {
		if eff != none {
			return false
		}
		switch node := node.(type) {
		case *ast.ReturnStmt:
			// Returning the value itself transfers ownership to the caller;
			// returning a field of it does not.
			for _, res := range node.Results {
				if isVar(pass, res, acq.obj) {
					eff = released
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if isVar(pass, lhs, acq.obj) {
					eff = rebound
					return false
				}
			}
			// Storing the value anywhere — a field, slice element, map,
			// global, or a plain alias `m2 := msg` — escapes it to the
			// structure's (or alias's) owner.
			for _, rhs := range node.Rhs {
				if isVar(pass, rhs, acq.obj) {
					eff = released
					return false
				}
			}
		case *ast.SendStmt:
			if isVar(pass, node.Value, acq.obj) {
				eff = released
				return false
			}
		case *ast.GoStmt:
			if callUsesVar(pass, node.Call, acq.obj) {
				eff = released
				return false
			}
		case *ast.DeferStmt:
			// A deferred consuming call releases on every exit past this
			// point: sound to treat as an immediate kill for must-release.
			if callUsesVar(pass, node.Call, acq.obj) {
				eff = released
				return false
			}
		case *ast.CompositeLit:
			for _, el := range node.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isVar(pass, el, acq.obj) {
					eff = released
					return false
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND && isVar(pass, node.X, acq.obj) {
				eff = released
				return false
			}
		case *ast.CallExpr:
			if e := callEffect(pass, node, acq); e != none {
				eff = e
				return false
			}
		}
		return true
	})
	return eff
}

// callEffect classifies a call with the tracked value among its arguments:
// consuming callees (releases, Deliver, append) end ownership; any other
// callee merely borrows it for the duration of the call.
func callEffect(pass *analysis.Pass, call *ast.CallExpr, acq acquisition) effect {
	used := false
	for _, arg := range call.Args {
		if isVar(pass, arg, acq.obj) {
			used = true
			break
		}
	}
	if !used {
		return none
	}
	name := calleeName(pass, call)
	if consumers[acq.kind][name] {
		return released
	}
	// Closures taking the value by argument get ownership too: the analysis
	// cannot see inside them.
	if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
		return released
	}
	return none
}

// calleeName resolves the called function or builtin's bare name.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return b.Name()
		}
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn.Name()
		}
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isVar reports whether expr is exactly the tracked variable (through
// parens).
func isVar(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj
}

// callUsesVar reports whether the tracked value appears among a call's
// arguments (go/defer transfer).
func callUsesVar(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if isVar(pass, arg, obj) {
			return true
		}
	}
	return false
}
