package cfg_test

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"chant/internal/analysis/cfg"
)

// build parses a single function body and builds its CFG.
func build(t *testing.T, body string) (*cfg.Graph, error) {
	t.Helper()
	src := "package p\nfunc f() int {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body)
}

// reaches reports whether to is reachable from from.
func reaches(from, to *cfg.Block) bool {
	seen := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestStraightLine(t *testing.T) {
	g, err := build(t, "x := 1\nreturn x")
	if err != nil {
		t.Fatal(err)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable in straight-line function")
	}
	if g.Entry.Returns == nil {
		t.Error("return statement not recorded on its block")
	}
}

func TestBranchJoin(t *testing.T) {
	g, err := build(t, "x := 1\nif x > 0 {\n\tx++\n} else {\n\tx--\n}\nreturn x")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if-header block has %d successors, want 2", len(g.Entry.Succs))
	}
	for i, s := range g.Entry.Succs {
		if !reaches(s, g.Exit) {
			t.Errorf("branch %d does not rejoin and reach exit", i)
		}
	}
}

func TestEarlyReturnSkipsTail(t *testing.T) {
	g, err := build(t, "x := 1\nif x > 0 {\n\treturn x\n}\nreturn 0")
	if err != nil {
		t.Fatal(err)
	}
	// Both returns flow to exit; the then-branch must go there directly.
	var thenBlk *cfg.Block
	for _, s := range g.Entry.Succs {
		if s.Returns != nil {
			thenBlk = s
		}
	}
	if thenBlk == nil {
		t.Fatal("no successor holds the early return")
	}
	if len(thenBlk.Succs) != 1 || thenBlk.Succs[0] != g.Exit {
		t.Error("early-return block must flow straight to exit")
	}
}

func TestPanicTerminates(t *testing.T) {
	g, err := build(t, "x := 1\nif x > 0 {\n\tpanic(\"boom\")\n}\nreturn x")
	if err != nil {
		t.Fatal(err)
	}
	// The panic block ends the path: no successors, and it is not the exit.
	var panicBlk *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if c, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlk = b
					}
				}
			}
		}
	}
	if panicBlk == nil {
		t.Fatal("panic block not found")
	}
	if len(panicBlk.Succs) != 0 {
		t.Error("panic block must have no successors")
	}
	if panicBlk == g.Exit {
		t.Error("panic block must not be the exit block")
	}
}

func TestLoopBackEdge(t *testing.T) {
	g, err := build(t, "x := 0\nfor i := 0; i < 3; i++ {\n\tx += i\n}\nreturn x")
	if err != nil {
		t.Fatal(err)
	}
	// Some block must reach itself through a cycle.
	cyclic := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if reaches(s, b) {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Error("for loop produced no back edge")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("loop exit path missing")
	}
}

func TestGotoUnsupported(t *testing.T) {
	_, err := build(t, "x := 1\ngoto done\ndone:\nreturn x")
	if !errors.Is(err, cfg.ErrUnsupported) {
		t.Errorf("goto built without ErrUnsupported: %v", err)
	}
}
