// Package cfg builds a control-flow graph of basic blocks from a function
// body, for chantvet's path-sensitive analyses (handleleak's must-release
// proof). The graph is intentionally modest: it models the structured
// control flow Go programs are written with — if/else, for, range, switch,
// type switch, select, return, break, continue (labeled or not), defer, and
// terminating panic calls. Functions using goto, or a label the builder
// cannot pair with its loop or switch, are rejected; callers skip such
// functions rather than analyze them wrongly.
package cfg

import (
	"errors"
	"go/ast"
)

// A Block is a maximal straight-line run of statements. Succs lists the
// blocks control may reach next; a block with no successors either returns
// (Returns non-nil), panics unconditionally, or is the function's virtual
// exit.
type Block struct {
	Index int
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	Succs []*Block
	// Returns is the return statement ending the block, if any.
	Returns *ast.ReturnStmt
}

// A Graph is the CFG of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the virtual block reached by every return and by falling off
	// the end of the body.
	Exit *Block
}

// ErrUnsupported reports a body whose control flow the builder does not
// model (goto, or an unresolvable labeled branch).
var ErrUnsupported = errors.New("cfg: unsupported control flow")

// New builds the CFG for body.
func New(body *ast.BlockStmt) (*Graph, error) {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	cur := b.g.Entry
	cur, err := b.stmts(cur, body.List)
	if err != nil {
		return nil, err
	}
	b.edge(cur, b.g.Exit)
	return b.g, nil
}

type loopFrame struct {
	label            string
	breakTo, contTo  *Block
	isSwitchOrSelect bool
}

type builder struct {
	g     *Graph
	loops []loopFrame
	// pendingLabel holds a label naming the next loop/switch statement.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds an edge from -> to unless from is nil (unreachable code) or
// already terminated.
func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur, returning the block live at
// the end (nil when control cannot fall through).
func (b *builder) stmts(cur *Block, list []ast.Stmt) (*Block, error) {
	var err error
	for _, s := range list {
		cur, err = b.stmt(cur, s)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// terminates reports whether an expression statement unconditionally stops
// ordinary control flow: a call to the panic builtin.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(cur *Block, s ast.Stmt) (*Block, error) {
	if cur == nil {
		// Unreachable statement after a return or break: no flow to model.
		return nil, nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			return b.stmt(cur, s.Stmt)
		default:
			// A plain labeled statement exists only as a goto target.
			return nil, ErrUnsupported
		}

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenBlk := b.newBlock()
		b.edge(cur, thenBlk)
		thenEnd, err := b.stmts(thenBlk, s.Body.List)
		if err != nil {
			return nil, err
		}
		var elseEnd *Block
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cur, elseBlk)
			elseEnd, err = b.stmt(elseBlk, s.Else)
			if err != nil {
				return nil, err
			}
			if thenEnd == nil && elseEnd == nil {
				return nil, nil
			}
			join := b.newBlock()
			b.edge(thenEnd, join)
			b.edge(elseEnd, join)
			return join, nil
		}
		join := b.newBlock()
		b.edge(cur, join)
		b.edge(thenEnd, join)
		return join, nil

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			b.edge(head, exit)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: exit, contTo: post})
		bodyEnd, err := b.stmts(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if err != nil {
			return nil, err
		}
		b.edge(bodyEnd, post)
		return exit, nil

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s.X)
		b.edge(cur, head)
		exit := b.newBlock()
		b.edge(head, exit)
		body := b.newBlock()
		b.edge(head, body)
		if s.Key != nil || s.Value != nil {
			// The per-iteration assignment of key/value happens at the top of
			// the body; represent it with the range statement itself.
			body.Nodes = append(body.Nodes, s)
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: exit, contTo: head})
		bodyEnd, err := b.stmts(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if err != nil {
			return nil, err
		}
		b.edge(bodyEnd, head)
		return exit, nil

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.branching(cur, s)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.Returns = s
		b.edge(cur, b.g.Exit)
		return nil, nil

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if terminates(s) {
			return nil, nil
		}
		return cur, nil

	default:
		// Straight-line statements: assignments, declarations, sends, defer,
		// go, incdec, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur, nil
	}
}

// takeLabel consumes the label pending for the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// branch handles break/continue/fallthrough/goto.
func (b *builder) branch(cur *Block, s *ast.BranchStmt) (*Block, error) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if label == "" || f.label == label {
				b.edge(cur, f.breakTo)
				return nil, nil
			}
		}
		return nil, ErrUnsupported
	case "continue":
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.isSwitchOrSelect {
				continue
			}
			if label == "" || f.label == label {
				b.edge(cur, f.contTo)
				return nil, nil
			}
		}
		return nil, ErrUnsupported
	case "fallthrough":
		// Handled structurally by branching(); reaching here means a
		// fallthrough outside a switch clause tail — reject.
		return nil, ErrUnsupported
	default: // goto
		return nil, ErrUnsupported
	}
}

// branching builds switch, type switch, and select statements: a head block
// evaluating the subject, one block per clause, all joining at a common
// exit. Switches without a default also edge head -> join (no clause may
// match); selects without a default block until some clause runs, so no
// such edge is added.
func (b *builder) branching(cur *Block, s ast.Stmt) (*Block, error) {
	label := b.takeLabel()
	var clauses []ast.Stmt
	hasDefault := false
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		isSelect = true
	}
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join, isSwitchOrSelect: true})
	defer func() { b.loops = b.loops[:len(b.loops)-1] }()

	// Build clause bodies; for switches, record each clause's entry block so
	// fallthrough can jump to the next clause's body.
	type clauseInfo struct {
		entry *Block
		body  []ast.Stmt
		comm  ast.Stmt
	}
	var infos []clauseInfo
	for _, c := range clauses {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			infos = append(infos, clauseInfo{entry: b.newBlock(), body: c.Body})
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			infos = append(infos, clauseInfo{entry: b.newBlock(), body: c.Body, comm: c.Comm})
		}
	}
	for i, info := range infos {
		b.edge(cur, info.entry)
		entry := info.entry
		if info.comm != nil {
			var err error
			entry, err = b.stmt(entry, info.comm)
			if err != nil {
				return nil, err
			}
		}
		// Split a trailing fallthrough off the body; it redirects the clause
		// end into the next clause's entry.
		body := info.body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				body = body[:n-1]
				fallsThrough = true
			}
		}
		end, err := b.stmts(entry, body)
		if err != nil {
			return nil, err
		}
		if fallsThrough {
			if i+1 >= len(infos) {
				return nil, ErrUnsupported
			}
			b.edge(end, infos[i+1].entry)
		} else {
			b.edge(end, join)
		}
	}
	if !hasDefault && !isSelect {
		b.edge(cur, join)
	}
	if isSelect && len(infos) == 0 {
		// Empty select blocks forever.
		return nil, nil
	}
	return join, nil
}
