// Package nondet is the shared detector of nondeterminism sources: the
// syntactic constructs whose results differ run to run (wall-clock reads,
// global PRNG draws, raw goroutine spawns, order-sensitive map iteration,
// multi-case selects, sync.Pool traffic). Two analyzers consume it: detlint
// reports every source appearing directly in a simulation-critical package,
// and ndtaint seeds its interprocedural taint propagation with the sources
// of every loaded package. Keeping one scanner guarantees the two agree on
// what "a nondeterminism source" is and on which //chant:allow-nondet
// comments sanction one.
package nondet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"chant/internal/analysis"
)

// Kind classifies a source.
type Kind int

const (
	// WallClock is a time-package call whose result or scheduling follows
	// the wall clock.
	WallClock Kind = iota
	// GlobalRand is a draw from math/rand's shared global state.
	GlobalRand
	// GoStmt is a raw goroutine spawn.
	GoStmt
	// MapRange is iteration over a map with order-sensitive effects.
	MapRange
	// Select is a select choosing among two or more ready communications.
	Select
	// PoolMethod is sync.Pool.Get or Put.
	PoolMethod
)

// A Source is one nondeterminism source surviving suppression filtering.
type Source struct {
	Pos  token.Pos
	Kind Kind
	// Call is the offending call expression for call-shaped sources
	// (WallClock, GlobalRand, PoolMethod); nil otherwise.
	Call *ast.CallExpr
	// What is the leading clause of a diagnostic: "time.Now",
	// "global rand.Intn", "raw go statement", "select with 2 communication
	// cases", "range over map with order-sensitive effects", "sync.Pool.Get".
	What string
	// Why is the explanation clause: "the wall clock is nondeterministic;
	// use the Host/sim clock".
	Why string
}

// wallClock lists the time-package functions whose results differ run to
// run (or that schedule against the wall clock).
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// Scan walks root (a file or a single declaration) and returns its
// nondeterminism sources in position order, excluding any covered by a
// //chant:allow-nondet <reason> comment. The pass supplies type information
// and the suppression index; the scan itself reports nothing.
func Scan(pass *analysis.Pass, root ast.Node) []Source {
	var out []Source
	add := func(s Source) {
		if !pass.SuppressedBy(s.Pos, analysis.DefaultMarker) {
			out = append(out, s)
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if s, ok := callSource(pass, n); ok {
				add(s)
			}
		case *ast.GoStmt:
			add(Source{
				Pos:  n.Pos(),
				Kind: GoStmt,
				What: "raw go statement",
				Why:  "goroutine interleaving is nondeterministic",
			})
		case *ast.RangeStmt:
			if s, ok := rangeSource(pass, n); ok {
				add(s)
			}
		case *ast.SelectStmt:
			if s, ok := selectSource(n); ok {
				add(s)
			}
		}
		return true
	})
	return out
}

// callSource classifies wall-clock reads, global math/rand draws, and
// sync.Pool traffic.
func callSource(pass *analysis.Pass, call *ast.CallExpr) (Source, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return Source{}, false
	}
	if named := analysis.RecvNamed(fn); named != nil {
		return poolSource(call, fn.Name(), named)
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			return Source{
				Pos:  call.Pos(),
				Kind: WallClock,
				Call: call,
				What: "time." + fn.Name(),
				Why:  "the wall clock is nondeterministic; use the Host/sim clock",
			}, true
		}
	case "math/rand", "math/rand/v2":
		return Source{
			Pos:  call.Pos(),
			Kind: GlobalRand,
			Call: call,
			What: fmt.Sprintf("global %s.%s", fn.Pkg().Name(), fn.Name()),
			Why:  "shared PRNG state is order-dependent; use sim.RNG with an explicit seed",
		}, true
	}
	return Source{}, false
}

// poolSource classifies Get and Put on sync.Pool: the pool hands objects
// back in a scheduler- and GC-dependent order, so any observable reuse (a
// recycled buffer's identity, a per-P cache hit vs a fresh allocation)
// varies run to run. Deterministic code wants a plain LIFO freelist;
// real-transport paths gate pooling behind Host.Deterministic() and carry
// the annotation.
func poolSource(call *ast.CallExpr, method string, named *types.Named) (Source, bool) {
	if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return Source{}, false
	}
	if method != "Get" && method != "Put" {
		return Source{}, false
	}
	return Source{
		Pos:  call.Pos(),
		Kind: PoolMethod,
		Call: call,
		What: "sync.Pool." + method,
		Why:  "pool reuse order is scheduler- and GC-dependent; use a plain freelist, or gate behind Host.Deterministic()",
	}, true
}

// rangeSource classifies iteration over a map whose body has side effects
// beyond plain reads and builtin calls: Go randomizes map order, so any
// order-sensitive effect (emitting events, sends, non-builtin calls)
// diverges between runs.
func rangeSource(pass *analysis.Pass, rng *ast.RangeStmt) (Source, bool) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return Source{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return Source{}, false
	}
	var effect ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = n
		case *ast.CallExpr:
			if !isPureBuiltin(pass, n) {
				effect = n
			}
		}
		return true
	})
	if effect == nil {
		return Source{}, false
	}
	return Source{
		Pos:  rng.Pos(),
		Kind: MapRange,
		What: "range over map with order-sensitive effects",
		Why:  "map iteration order is randomized; sort the keys first",
	}, true
}

// isPureBuiltin reports whether a call is one of the builtins whose use in a
// map loop cannot observe iteration order externally (append into a slice
// that is presumably sorted afterwards, len, cap, delete, copy, make, min,
// max). Conversions also qualify.
func isPureBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		// Selector or literal call: a conversion like sim.Time(x) is fine.
		tv, isConv := pass.TypesInfo.Types[call.Fun]
		return isConv && tv.IsType()
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return true
	}
	return false
}

// selectSource classifies selects that choose among multiple ready
// communications: the runtime picks uniformly at random.
func selectSource(sel *ast.SelectStmt) (Source, bool) {
	comm := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm < 2 {
		return Source{}, false
	}
	return Source{
		Pos:  sel.Pos(),
		Kind: Select,
		What: fmt.Sprintf("select with %d communication cases", comm),
		Why:  "case choice is randomized when several are ready",
	}, true
}

// ClockFix builds the mechanical rewrite for a time.Now read when the
// enclosing function has an obvious scheduler clock in scope: a receiver or
// parameter (or a field `host` of the receiver) whose type offers a
// zero-argument Now method — machine.Host and the sim kernel both do. The
// returned fix replaces the whole call; nil when no clock is identifiable.
func ClockFix(pass *analysis.Pass, src Source, decl *ast.FuncDecl) *analysis.SuggestedFix {
	if src.Kind != WallClock || src.Call == nil || decl == nil {
		return nil
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, src.Call)
	if fn == nil || fn.Name() != "Now" {
		return nil
	}
	clock := clockExpr(pass, decl)
	if clock == "" {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: fmt.Sprintf("replace time.Now with the scheduler clock %s.Now()", clock),
		TextEdits: []analysis.TextEdit{{
			Pos:     src.Call.Pos(),
			End:     src.Call.End(),
			NewText: clock + ".Now()",
		}},
	}
}

// clockExpr finds the source text of a scheduler-clock expression reachable
// from decl's receiver and parameters, or "".
func clockExpr(pass *analysis.Pass, decl *ast.FuncDecl) string {
	// Receiver and parameters, in declaration order.
	var fields []*ast.Field
	if decl.Recv != nil {
		fields = append(fields, decl.Recv.List...)
	}
	if decl.Type.Params != nil {
		fields = append(fields, decl.Type.Params.List...)
	}
	for _, f := range fields {
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if hasNowMethod(obj.Type()) {
				return name.Name
			}
			// A receiver carrying a `host` field with a clock covers the
			// common endpoint/process shape.
			if field := lookupField(obj.Type(), pass.Pkg, "host"); field != nil && hasNowMethod(field.Type()) {
				return name.Name + ".host"
			}
		}
	}
	return ""
}

// hasNowMethod reports whether t (or *t) has a method Now() with no
// parameters and one result.
func hasNowMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, "Now")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			return true
		}
	}
	return false
}

// lookupField resolves a struct field by name through any pointer; pkg
// grants access to unexported fields declared in it.
func lookupField(t types.Type, pkg *types.Package, name string) *types.Var {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
