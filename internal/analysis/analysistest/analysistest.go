// Package analysistest runs a chantvet analyzer over a fixture module and
// compares its diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (rebuilt here on the standard
// library). Fixtures live under a testdata directory containing a complete
// module — by convention `module chant` with stub internal packages — so
// import paths in fixtures resolve exactly like the real repository's.
//
// Packages named by one Run call are analyzed together, the way the
// standalone chantvet driver analyzes a tree: one call graph, one fact
// store, Finish hooks after all packages. Cross-package fixtures (ndtaint's
// fact propagation) rely on this.
//
// RunWithSuggestedFixes additionally applies every suggested fix in memory
// and compares each rewritten file against a sibling `.golden` file.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"chant/internal/analysis"
	"chant/internal/analysis/load"
	"chant/internal/analysis/registry"
)

// wantRe extracts the expectation list from a `// want "re1" "re2"` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one `// want` pattern awaiting a matching diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the packages matching patterns from the fixture module rooted at
// dir, applies the analyzer to them as one program, and reports any mismatch
// between diagnostics and `// want` comments as test errors. It returns the
// findings for callers with further assertions to make.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) []registry.Finding {
	t.Helper()
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	findings, err := registry.RunAll(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("%s on %s: %v", a.Name, dir, err)
	}
	check(t, pkgs, findings)
	return findings
}

// RunWithSuggestedFixes is Run followed by a golden-file check: every
// suggested fix is applied in memory and each rewritten file must equal its
// `.golden` sibling byte for byte.
func RunWithSuggestedFixes(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	findings := Run(t, dir, a, patterns...)
	var diags []analysis.Diagnostic
	var fset *token.FileSet
	for _, f := range findings {
		if len(f.SuggestedFixes) > 0 {
			diags = append(diags, f.Diagnostic)
			fset = f.Fset
		}
	}
	if len(diags) == 0 {
		t.Fatalf("RunWithSuggestedFixes: no diagnostic of %s carried a fix", a.Name)
	}
	fixed, err := analysis.ApplyFixes(fset, diags, os.ReadFile)
	if err != nil {
		t.Fatalf("applying suggested fixes: %v", err)
	}
	for name, content := range fixed {
		golden, err := os.ReadFile(name + ".golden")
		if err != nil {
			t.Errorf("suggested fix rewrote %s but no golden file: %v", name, err)
			continue
		}
		if string(content) != string(golden) {
			t.Errorf("suggested fixes for %s do not match %s.golden:\n-- got --\n%s\n-- want --\n%s",
				name, name, content, golden)
		}
	}
}

// check matches findings against the union of every package's `// want`
// comments.
func check(t *testing.T, pkgs []*load.Package, findings []registry.Finding) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, f := range findings {
		pos := f.Position()
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && !w.matched && w.pattern.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses every `// want` comment in the package's files.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a space-separated list of quoted or backquoted
// regular expressions.
func splitPatterns(t *testing.T, pos token.Position, s string) []*regexp.Regexp {
	t.Helper()
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit, rest string
		switch s[0] {
		case '"':
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			quoted := s[:end+2]
			var err error
			lit, err = strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
			}
			rest = s[end+2:]
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			lit = s[1 : end+1]
			rest = s[end+2:]
		default:
			t.Fatalf("%s: want patterns must be quoted: %s", pos, s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(rest)
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return out
}

// Fprint formats diagnostics the way test failures and the chantvet command
// print them: file:line:col: analyzer: message.
func Fprint(pkg *load.Package, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return b.String()
}
