package ndtaint_test

import (
	"strings"
	"testing"

	"chant/internal/analysis"
	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/load"
	"chant/internal/analysis/ndtaint"
	"chant/internal/analysis/registry"
)

// TestNdtaint runs the analyzer whole-program over the fixture module: one
// call graph, interface resolution across packages, Finish over every pass.
func TestNdtaint(t *testing.T) {
	analysistest.Run(t, "testdata", ndtaint.Analyzer, "./...")
}

// TestFactPropagationAcrossUnits replays the go vet modular discipline: each
// package is analyzed alone, in dependency order, and the fact store is
// serialized and re-decoded between units the way .vetx files carry it. The
// root package never sees util's source code — only its facts — and must
// still report the tainted static call.
func TestFactPropagationAcrossUnits(t *testing.T) {
	pkgs, err := load.Load("testdata", "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	facts := analysis.NewFactStore()
	var got []string
	for _, pkg := range pkgs {
		findings, err := registry.RunAll([]*load.Package{pkg}, []*analysis.Analyzer{ndtaint.Analyzer}, facts)
		if err != nil {
			t.Fatalf("unit %s: %v", pkg.PkgPath, err)
		}
		for _, f := range findings {
			got = append(got, f.Message)
		}
		// Round-trip the store through its serialized form, as the vet
		// protocol does between units.
		data, err := facts.Encode()
		if err != nil {
			t.Fatalf("encoding facts after %s: %v", pkg.PkgPath, err)
		}
		facts = analysis.NewFactStore()
		facts.Decode(data)
	}
	want := "call into tainted util.Indirect: util.Indirect → util.WallNow reaches time.Now"
	found := false
	for _, m := range got {
		if strings.Contains(m, want) {
			found = true
		}
		if strings.Contains(m, "Sanctioned") {
			t.Errorf("sanctioned source leaked into a unit-mode diagnostic: %s", m)
		}
	}
	if !found {
		t.Errorf("unit-mode run did not report the cross-package taint %q; got %d findings:\n%s",
			want, len(got), strings.Join(got, "\n"))
	}
}

// TestTaintedFactExported asserts the analyzer exports Tainted facts for the
// dependency's functions, keyed so a dependent unit can import them.
func TestTaintedFactExported(t *testing.T) {
	pkgs, err := load.Load("testdata", "./internal/util")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	facts := analysis.NewFactStore()
	if _, err := registry.RunAll(pkgs, []*analysis.Analyzer{ndtaint.Analyzer}, facts); err != nil {
		t.Fatalf("running: %v", err)
	}
	var fact ndtaint.Tainted
	if !facts.Import("chant/internal/util", "Indirect", &fact) {
		t.Fatal("no Tainted fact exported for util.Indirect")
	}
	if fact.Source != "time.Now" || len(fact.Chain) != 2 {
		t.Errorf("util.Indirect fact = %+v, want source time.Now with a 2-hop chain", fact)
	}
	if facts.Import("chant/internal/util", "Sanctioned", &fact) {
		t.Error("Tainted fact exported for the sanctioned function")
	}
	if facts.Import("chant/internal/util", "Clean", &fact) {
		t.Error("Tainted fact exported for a deterministic function")
	}
}
