// Package netif declares the fixture's transport interface. Calls through
// it are resolved against every implementation in the loaded packages.
package netif

// Transport is a minimal stand-in for comm.Transport.
type Transport interface {
	Send(b []byte)
}
