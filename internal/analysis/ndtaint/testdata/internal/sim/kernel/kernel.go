// Package kernel sits under internal/sim: a simulation-critical root whose
// reachable call graph must be free of nondeterminism. Direct sources here
// would be detlint's report; ndtaint flags the calls whose *callees* reach
// one.
package kernel

import (
	"chant/internal/netif"
	"chant/internal/realnet"
	"chant/internal/util"
)

// Step reaches the wall clock two hops away.
func Step() int64 {
	return util.Indirect() // want `call into tainted util\.Indirect: util\.Indirect → util\.WallNow reaches time\.Now`
}

// Direct reaches it one hop away.
func Direct() int64 {
	return util.WallNow() // want `call into tainted util\.WallNow: util\.WallNow reaches time\.Now`
}

// OK calls only deterministic code.
func OK() int {
	return util.Clean()
}

// OKSanctioned calls a function whose source carries an allow-nondet
// marker: the taint never starts, so this call is clean.
func OKSanctioned() int64 {
	return util.Sanctioned()
}

// Allowed sanctions the call edge itself.
func Allowed() int64 {
	return util.WallNow() //chant:allow-nondet fixture: sanctioned call edge
}

// Drive dispatches through the Transport interface: the call resolves
// against every loaded implementation, and realnet.TCP's Send spawns a raw
// goroutine.
func Drive(t netif.Transport) {
	t.Send(nil) // want `call into tainted realnet\.TCP\.Send: realnet\.TCP\.Send reaches raw go statement`
}

// DriveQuiet calls the deterministic implementation statically: no
// interface dispatch, no taint.
func DriveQuiet() {
	var q realnet.Quiet
	q.Send(nil)
}

// localHelper is tainted through a package-local chain.
func localHelper() int64 {
	return util.WallNow() // want `call into tainted util\.WallNow: util\.WallNow reaches time\.Now`
}

// UseLocal shows the chain growing within the root package.
func UseLocal() int64 {
	return localHelper() // want `call into tainted kernel\.localHelper: kernel\.localHelper → util\.WallNow reaches time\.Now`
}
