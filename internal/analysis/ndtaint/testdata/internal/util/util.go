// Package util is outside both the simulation-critical roots and the
// detlint scope: its nondeterminism sources produce no diagnostics here.
// They seed ndtaint's taint, which surfaces only at call sites in root
// packages.
package util

import "time"

// WallNow reads the wall clock: a direct nondeterminism source.
func WallNow() int64 { return time.Now().UnixNano() }

// Indirect is tainted transitively, through WallNow.
func Indirect() int64 { return WallNow() }

// Clean is deterministic.
func Clean() int { return 42 }

// Sanctioned reads the wall clock under an allow-nondet marker: the
// suppression stops the taint at its source, so callers stay clean.
func Sanctioned() int64 {
	t := time.Now() //chant:allow-nondet fixture: sanctioned wall-clock read
	return t.UnixNano()
}
