// Package realnet implements netif.Transport with a tainted method: the
// raw goroutine inside Send taints every interface call site that may
// dispatch to it.
package realnet

// TCP is a real-network transport stand-in.
type TCP struct{}

// Send flushes asynchronously: the raw go statement is a nondeterminism
// source.
func (TCP) Send(b []byte) {
	go flush(b)
}

func flush([]byte) {}

// Quiet implements nothing nondeterministic.
type Quiet struct{}

// Send on Quiet is deterministic; it must not taint interface dispatch by
// itself.
func (Quiet) Send(b []byte) {}
