// Package ndtaint defines chantvet's interprocedural nondeterminism-taint
// analyzer. detlint sees only what a simulation-critical package does
// syntactically; ndtaint sees what it *reaches*: every loaded function is
// scanned for nondeterminism sources (the shared nondet scanner — wall
// clock, global math/rand, raw goroutine spawn, order-sensitive map
// iteration, unordered multi-case select), taint is propagated backward over
// the call graph — through static calls and through the method sets of the
// module's small interfaces — and every call site in a simulation-critical
// root package (internal/sim, internal/faults, internal/comm/simnet) whose
// callee is tainted is reported with the full call chain down to the source.
//
// A //chant:allow-nondet <reason> comment at the source site sanctions the
// source and stops the taint before it starts; the same comment at a root
// call site sanctions that one edge.
//
// Cross-package propagation composes through object facts: the pass over a
// dependency exports a Tainted fact per tainted function, and passes over
// dependent packages import them — so modular `go vet -vettool` runs reach
// the same verdicts as the standalone whole-program run, save for interface
// implementations living in packages outside the unit's import closure.
package ndtaint

import (
	"go/token"
	"strings"

	"chant/internal/analysis"
	"chant/internal/analysis/callgraph"
	"chant/internal/analysis/nondet"
)

// Analyzer reports nondeterminism transitively reachable from
// simulation-critical roots.
var Analyzer = &analysis.Analyzer{
	Name: "ndtaint",
	Doc: "report calls in simulation-critical root packages (internal/sim, " +
		"internal/faults, internal/comm/simnet, internal/recovery) whose " +
		"callees transitively reach a nondeterminism source; the call chain " +
		"is traced across packages via facts and through interface method sets",
	Run:    func(*analysis.Pass) error { return nil },
	Finish: finish,
}

// roots lists the package trees whose reachable call graph must be
// deterministic: the simulation kernel, the fault-injection plane, and the
// simulated transport. (The broader detlint scope covers direct sources;
// the roots are where *reachability* matters — a tainted function two hops
// away corrupts the event stream just as surely.)
var roots = []string{
	"internal/sim",
	"internal/faults",
	"internal/comm/simnet",
	// The checkpoint codec and stores must be byte-deterministic: a
	// nondeterministic encoding would give the same machine state two
	// different archived forms, breaking restore-replay identity.
	"internal/recovery",
}

// IsRoot reports whether a package path is a simulation-critical root.
func IsRoot(pkgPath string) bool {
	for _, r := range roots {
		if analysis.PathContains(pkgPath, r) || analysis.PathMatches(pkgPath, r) {
			return true
		}
	}
	return false
}

// Tainted is the object fact exported for every function that reaches a
// nondeterminism source. Chain holds the call chain of function IDs from
// the fact's own function (first) down to the function containing the
// source (last); Source describes the source itself ("time.Now").
type Tainted struct {
	Source string   `json:"source"`
	Chain  []string `json:"chain"`
}

// AFact marks Tainted as a fact.
func (*Tainted) AFact() {}

// taint is the in-flight propagation record for one call-graph node.
type taint struct {
	source string
	chain  []string
}

// finish runs once after every package's pass: it seeds direct sources,
// propagates taint to a fixpoint over the shared call graph (importing
// facts for callees outside the loaded set), exports facts for every
// tainted declared function, and reports tainted call sites in root
// packages.
func finish(passes []*analysis.Pass) error {
	if len(passes) == 0 || passes[0].Graph == nil {
		return nil
	}
	graph := passes[0].Graph
	facts := passes[0].Facts

	taints := make(map[string]*taint)

	// Seed: direct sources per declared function, honoring source-site
	// suppression through each package's own pass. Only module packages
	// seed: the standalone driver never loads the standard library, and
	// under go vet — where stdlib units do pass through to produce facts —
	// scanning them would taint half of the stdlib (fmt's printer pool is a
	// sync.Pool) and diverge from the standalone verdicts.
	for _, pass := range passes {
		if pass.Module == "" {
			continue
		}
		for _, node := range graph.PackageNodes(pass.Pkg.Path()) {
			srcs := nondet.Scan(pass, node.Decl)
			if len(srcs) == 0 {
				continue
			}
			taints[node.ID] = &taint{source: srcs[0].What, chain: []string{node.ID}}
		}
	}

	// Propagate to a fixpoint, visiting packages in dependency order and
	// functions in source order so the chosen chains are deterministic.
	lookup := func(e callgraph.Edge) *taint {
		if t, ok := taints[e.Callee.ID]; ok {
			return t
		}
		if e.Callee.Decl == nil && facts != nil {
			var fact Tainted
			if facts.Import(e.Callee.PkgPath, e.Callee.Key, &fact) {
				t := &taint{source: fact.Source, chain: fact.Chain}
				taints[e.Callee.ID] = t
				return t
			}
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, pass := range passes {
			for _, node := range graph.PackageNodes(pass.Pkg.Path()) {
				if _, done := taints[node.ID]; done {
					continue
				}
				for _, edge := range node.Edges {
					t := lookup(edge)
					if t == nil {
						continue
					}
					taints[node.ID] = &taint{
						source: t.source,
						chain:  append([]string{node.ID}, t.chain...),
					}
					changed = true
					break
				}
			}
		}
	}

	// Export facts for every tainted declared function, so dependent units
	// in modular (go vet) runs import the conclusion instead of the code.
	if facts != nil {
		for _, pass := range passes {
			for _, node := range graph.PackageNodes(pass.Pkg.Path()) {
				if t, ok := taints[node.ID]; ok {
					if err := facts.Export(node.PkgPath, node.Key, &Tainted{Source: t.source, Chain: t.chain}); err != nil {
						return err
					}
				}
			}
		}
	}

	// Report: every call site in a root package whose callee is tainted.
	// Interface calls fan one site into several edges; report each site
	// once, for its first tainted resolution.
	for _, pass := range passes {
		if !IsRoot(pass.Pkg.Path()) {
			continue
		}
		for _, node := range graph.PackageNodes(pass.Pkg.Path()) {
			reported := make(map[token.Pos]bool)
			// Skip call sites inside the function when the function itself
			// is directly tainted at that exact construct: direct sources
			// are detlint's report, not ndtaint's.
			for _, edge := range node.Edges {
				if reported[edge.Site] {
					continue
				}
				t := lookup(edge)
				if t == nil {
					continue
				}
				reported[edge.Site] = true
				pass.Reportf(edge.Site,
					"call into tainted %s: %s reaches %s, which is nondeterministic and transitively reachable from simulation-critical package %s; fix the source or annotate it with //chant:allow-nondet <reason>",
					shortID(edge.Callee.ID), chainString(t), t.source, pass.Pkg.Path())
			}
		}
	}

	return nil
}

// chainString renders a taint chain for a diagnostic: short function names
// joined by arrows.
func chainString(t *taint) string {
	parts := make([]string, len(t.chain))
	for i, id := range t.chain {
		parts[i] = shortID(id)
	}
	return strings.Join(parts, " → ")
}

// shortID compresses "chant/internal/util.WallNow" to "util.WallNow".
func shortID(id string) string {
	slash := strings.LastIndex(id, "/")
	return id[slash+1:]
}
