// Package registry enumerates chantvet's analyzers and runs them over
// loaded packages. It sits between the analyzers and the drivers (the
// chantvet command and the analysistest harness) so each driver shares one
// definition of "all checks".
package registry

import (
	"sort"

	"chant/internal/analysis"
	"chant/internal/analysis/ctrlock"
	"chant/internal/analysis/detlint"
	"chant/internal/analysis/load"
	"chant/internal/analysis/schedctx"
)

// Analyzers returns every chantvet analyzer, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		schedctx.Analyzer,
		detlint.Analyzer,
		ctrlock.Analyzer,
	}
}

// Run applies the given analyzers to one loaded package and returns the
// diagnostics sorted by position.
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}
