// Package registry enumerates chantvet's analyzers and runs them over
// loaded packages. It sits between the analyzers and the drivers (the
// chantvet command, the go vet unit shim, and the analysistest harness) so
// each driver shares one definition of "all checks" and one execution
// discipline: packages visited in dependency order (facts flow forward),
// a call graph built over everything loaded, and Finish hooks run once at
// the end for whole-program analyzers.
package registry

import (
	"go/token"
	"sort"

	"chant/internal/analysis"
	"chant/internal/analysis/callgraph"
	"chant/internal/analysis/ctrlock"
	"chant/internal/analysis/detlint"
	"chant/internal/analysis/handleleak"
	"chant/internal/analysis/load"
	"chant/internal/analysis/ndtaint"
	"chant/internal/analysis/schedctx"
)

// Analyzers returns every chantvet analyzer, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		schedctx.Analyzer,
		detlint.Analyzer,
		ctrlock.Analyzer,
		ndtaint.Analyzer,
		handleleak.Analyzer,
	}
}

// A Finding is one diagnostic with the file set that interprets its
// positions, so drivers can render findings from several loaded packages
// uniformly.
type Finding struct {
	Fset *token.FileSet
	analysis.Diagnostic
}

// Position resolves the finding's location.
func (f Finding) Position() token.Position { return f.Fset.Position(f.Pos) }

// RunAll applies the analyzers to every package: packages are visited in
// dependency order (load.Load already topo-sorts; other callers should), a
// call graph is built over the whole set, each per-package pass shares the
// given fact store (nil for a private throwaway store), and each analyzer's
// Finish hook runs once after all packages. Findings come back sorted by
// (file, line, column, analyzer, message) — a total, deterministic order.
func RunAll(pkgs []*load.Package, analyzers []*analysis.Analyzer, facts *analysis.FactStore) ([]Finding, error) {
	if facts == nil {
		facts = analysis.NewFactStore()
	}
	graph := callgraph.Build(pkgs)

	var findings []Finding
	passes := make(map[*analysis.Analyzer][]*analysis.Pass)
	for _, pkg := range pkgs {
		fset := pkg.Fset
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    pkg.Module,
				Facts:     facts,
				Graph:     graph,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, Finding{Fset: fset, Diagnostic: d})
				},
			}
			passes[a] = append(passes[a], pass)
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			if err := a.Finish(passes[a]); err != nil {
				return nil, err
			}
		}
	}
	Sort(findings)
	return findings, nil
}

// Sort orders findings by position, then analyzer, then message: a total
// order, so equal runs produce byte-identical output.
func Sort(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := findings[i].Position(), findings[j].Position()
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if findings[i].Analyzer != findings[j].Analyzer {
			return findings[i].Analyzer < findings[j].Analyzer
		}
		return findings[i].Message < findings[j].Message
	})
}

// Run applies the analyzers to one package with a private fact store and no
// cross-package context, returning bare diagnostics sorted by position. It
// remains for single-package callers (fixture tests over one package).
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	findings, err := RunAll([]*load.Package{pkg}, analyzers, nil)
	if err != nil {
		return nil, err
	}
	diags := make([]analysis.Diagnostic, len(findings))
	for i, f := range findings {
		diags[i] = f.Diagnostic
	}
	return diags, nil
}
