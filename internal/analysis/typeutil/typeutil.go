// Package typeutil holds the small go/types helpers shared by the analysis
// framework and the callgraph builder. It is a leaf package (no other
// analysis package imports flow into it) so that callgraph and the framework
// proper can both use one definition of callee resolution and object keying
// without an import cycle.
package typeutil

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through non-selector expressions, function-typed values, and
// built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RecvNamed reports the receiver's named type for a method, unwrapping any
// pointer, or nil for plain functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ObjectKey is the package-relative key facts and call-graph nodes use to
// name an object: "Func" for package-level functions, "Type.Method" for
// methods (pointerness of the receiver is irrelevant for identity). Keys are
// stable across loads — the same function type-checked from source and
// imported from export data produces the same key.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if named := RecvNamed(fn); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return obj.Name()
}

// FuncID is the load-stable global name of a function: "pkgpath.Key". Two
// *types.Func values for the same function — one from source, one from
// export data — map to the same ID.
func FuncID(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return pkg + "." + ObjectKey(fn)
}
