// Package ctrlock defines the chantvet analyzer that protects the
// integrity of Chant's instrumentation and sync primitives: trace.Counters
// and trace.Log contain atomics and mutexes, so copying them by value forks
// the instrument (half the events land in a doomed copy); counter atomics
// are add-only, so Store/Swap from any context races with concurrent Adds;
// and a sync.Mutex Lock with no matching Unlock in the same function is the
// classic lock leak that hangs a real-mode scheduler.
package ctrlock

import (
	"go/ast"
	"go/token"
	"go/types"

	"chant/internal/analysis"
	"chant/internal/analysis/detlint"
)

// Analyzer flags trace instrument misuse and unbalanced lock pairs.
var Analyzer = &analysis.Analyzer{
	Name: "ctrlock",
	Doc: "report by-value copies of trace.Counters/trace.Log, Store/Swap on " +
		"add-only counter atomics, sync.Mutex Lock calls with no " +
		"matching Unlock in the same function, and append-based compact " +
		"deletes on reference-element slices (they strand a live reference " +
		"in the vacated tail slot)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !detlint.InScope(pass.Pkg.Path()) && !analysis.PathMatches(pass.Pkg.Path(), "internal/trace") {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTest(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to the blank identifier discards the value;
					// no usable copy is made.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkCopy(pass, rhs)
				}
				checkCompactDelete(pass, n)
			case *ast.CallExpr:
				checkStore(pass, n)
				for _, arg := range n.Args {
					checkCopy(pass, arg)
				}
			case *ast.FuncType:
				checkSignature(pass, n)
			case *ast.FuncDecl:
				checkLockBalance(pass, n)
			}
			return true
		})
	}
	return nil
}

// instrumentType reports whether t (after unwrapping) is trace.Counters or
// trace.Log as a value type.
func instrumentType(t types.Type) (name string, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", false
	}
	if !analysis.PathMatches(named.Obj().Pkg().Path(), "internal/trace") {
		return "", false
	}
	switch named.Obj().Name() {
	case "Counters", "Log":
		return "trace." + named.Obj().Name(), true
	}
	return "", false
}

// checkCopy flags expressions that copy a Counters or Log by value: a
// dereference, a variable read, or a call result of value type.
func checkCopy(pass *analysis.Pass, expr ast.Expr) {
	expr = ast.Unparen(expr)
	if _, isLit := expr.(*ast.CompositeLit); isLit {
		return // constructing a fresh instrument is fine
	}
	if _, isCall := expr.(*ast.CallExpr); isCall {
		// A call yielding a value-typed instrument is itself declared
		// somewhere we flag; don't double-report at each call site.
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || !tv.IsValue() {
		return
	}
	if name, isInstr := instrumentType(tv.Type); isInstr {
		pass.Reportf(expr.Pos(), "%s copied by value: the copy forks mutex and atomic state, splitting the instrument; use a pointer", name)
	}
}

// checkSignature flags value-typed Counters/Log parameters and results.
func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	flag := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if name, isInstr := instrumentType(tv.Type); isInstr {
				pass.Reportf(field.Type.Pos(), "%s passed by value as a %s: every call copies mutex and atomic state; use a pointer", name, kind)
			}
		}
	}
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
}

// checkStore flags Store and Swap on atomic fields reached through a
// trace.Counters: counters are add-only accumulators, and a Store loses
// every Add that raced with it.
func checkStore(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	if fn.Name() != "Store" && fn.Name() != "Swap" && fn.Name() != "CompareAndSwap" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[field.X]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if name, isInstr := instrumentType(t); isInstr && name == "trace.Counters" {
		pass.Reportf(call.Pos(), "%s on a trace.Counters field: counters are add-only; %s discards Adds racing from other schedulers", fn.Name(), fn.Name())
	}
}

// checkCompactDelete flags the `s = append(s[:i], s[i+1:]...)` element
// removal idiom when s's elements hold references (pointers, interfaces,
// slices, maps, chans, funcs, strings): append shifts the tail left but the
// old last slot keeps its value, pinning the removed object until the slice
// is reallocated — exactly the failPeer leak this repo once shipped. The
// fix is copy + nil the vacated slot + truncate.
func checkCompactDelete(pass *analysis.Pass, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok || !call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	head, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || head.High == nil || head.Slice3 {
		return
	}
	tail, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok || tail.Low == nil || tail.High != nil {
		return
	}
	base := types.ExprString(head.X)
	if types.ExprString(tail.X) != base || types.ExprString(n.Lhs[0]) != base {
		return
	}
	tv, ok := pass.TypesInfo.Types[head.X]
	if !ok {
		return
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok || !holdsReferences(slice.Elem()) {
		return
	}
	pass.Reportf(n.Pos(), "append-based compact delete on %s strands a live reference in the vacated tail slot; use copy, zero the last element, then truncate", base)
}

// holdsReferences reports whether values of type t keep other objects
// reachable (so a stale slot delays collection).
func holdsReferences(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map,
		*types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.String
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsReferences(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return holdsReferences(u.Elem())
	}
	return false
}

// lockMethod resolves a call to a (Lock|RLock|Unlock|RUnlock|TryLock) method
// on sync.Mutex/sync.RWMutex or Chant's ult.Mutex, returning the method name
// and a key identifying the receiver expression.
func lockMethod(pass *analysis.Pass, call *ast.CallExpr) (method, recvKey string) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", ""
	}
	named := analysis.RecvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	pkg := named.Obj().Pkg().Path()
	isSync := pkg == "sync" && (named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
	isUlt := analysis.PathMatches(pkg, "internal/ult") && named.Obj().Name() == "Mutex"
	if !isSync && !isUlt {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return fn.Name(), types.ExprString(sel.X)
}

// checkLockBalance counts Lock and Unlock call sites per receiver
// expression within one function: more Locks than Unlocks (deferred or not)
// means some path leaks the lock. The converse (extra Unlocks on branched
// paths) is fine and common.
func checkLockBalance(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	type counts struct {
		locks, unlocks int
		firstLock      ast.Node
	}
	perRecv := map[string]*counts{}
	record := func(call *ast.CallExpr) {
		method, key := lockMethod(pass, call)
		if method == "" {
			return
		}
		c := perRecv[key]
		if c == nil {
			c = &counts{}
			perRecv[key] = c
		}
		switch method {
		case "Lock", "RLock":
			c.locks++
			if c.firstLock == nil {
				c.firstLock = call
			}
		case "Unlock", "RUnlock":
			c.unlocks++
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literal bodies are separate balance domains only when they
			// escape; a deferred literal releasing the lock belongs to this
			// function's balance, so keep descending.
			return true
		case *ast.CallExpr:
			record(n)
		}
		return true
	})
	// Deterministic report order: walk the body again in source order.
	reported := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, key := lockMethod(pass, call)
		if method != "Lock" && method != "RLock" || reported[key] {
			return true
		}
		if c := perRecv[key]; c != nil && c.locks > c.unlocks {
			reported[key] = true
			pass.Reportf(call.Pos(), "%s.%s has no matching unlock in %s: %d lock call(s) vs %d unlock call(s); some path leaks the lock", key, method, decl.Name.Name, c.locks, c.unlocks)
		}
		return true
	})
}
