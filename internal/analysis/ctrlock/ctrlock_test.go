package ctrlock_test

import (
	"testing"

	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/ctrlock"
)

func TestCtrlock(t *testing.T) {
	analysistest.Run(t, "testdata", ctrlock.Analyzer, "./...")
}
