// Package ult stubs chant/internal/ult's thread mutex for ctrlock fixtures.
package ult

// Mutex stubs the cooperative thread mutex.
type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) TryLock() bool { return false }
func (m *Mutex) Unlock()       {}
