// Package trace stubs chant/internal/trace for ctrlock fixtures: the real
// Counters and Log also embed atomics and a mutex, which is exactly why
// copying them by value is a bug.
package trace

import (
	"sync"
	"sync/atomic"
)

// Counters stubs the per-process event counters.
type Counters struct {
	FullSwitches atomic.Uint64
	Sends        atomic.Uint64
	mu           sync.Mutex
}

// Snapshot stubs the plain-value counter copy (safe to copy).
type Snapshot struct {
	FullSwitches, Sends uint64
}

// Snap stubs snapshotting.
func (c *Counters) Snap() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{FullSwitches: c.FullSwitches.Load(), Sends: c.Sends.Load()}
}

// Log stubs the scheduler event log.
type Log struct {
	mu   sync.Mutex
	ring []int64
}

// Add stubs event recording.
func (l *Log) Add(at int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = append(l.ring, at)
}
