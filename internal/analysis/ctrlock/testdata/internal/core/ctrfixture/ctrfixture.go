// Package ctrfixture seeds instrumentation and locking violations for the
// ctrlock analyzer inside a runtime package path (internal/core/...).
package ctrfixture

import (
	"sync"

	"chant/internal/trace"
	"chant/internal/ult"
)

// copies exercises the by-value instrument checks.
func copies(c *trace.Counters, l *trace.Log) {
	bad := *c // want `trace\.Counters copied by value`
	_ = bad
	badLog := *l // want `trace\.Log copied by value`
	_ = badLog
	snap := c.Snap() // ok: Snapshot is the sanctioned plain-value copy
	_ = snap
	good := c // ok: pointer copy
	_ = good
}

func byValueParam(c trace.Counters) { // want `trace\.Counters passed by value as a parameter`
	_ = c.Sends.Load()
}

func byValueResult() trace.Log { // want `trace\.Log passed by value as a result`
	return trace.Log{}
}

// stores exercises the add-only counter check.
func stores(c *trace.Counters) {
	c.Sends.Store(0)       // want `Store on a trace\.Counters field`
	c.FullSwitches.Swap(7) // want `Swap on a trace\.Counters field`
	c.Sends.Add(1)         // ok: counters are add-only accumulators
	_ = c.Sends.Load()
}

// leakSync exercises the sync.Mutex balance check.
func leakSync(mu *sync.Mutex, cond bool) {
	mu.Lock() // want `mu\.Lock has no matching unlock in leakSync`
	if cond {
		return
	}
}

// leakUlt exercises the thread-mutex balance check.
func leakUlt(m *ult.Mutex) {
	m.Lock() // want `m\.Lock has no matching unlock in leakUlt`
}

// compactDeletes exercises the stale-tail check: append-based removal on a
// reference-element slice strands the removed pointer in the old last slot.
func compactDeletes(ptrs []*trace.Counters, ints []int, i int) ([]*trace.Counters, []int) {
	ptrs = append(ptrs[:i], ptrs[i+1:]...) // want `append-based compact delete on ptrs strands a live reference`
	ints = append(ints[:i], ints[i+1:]...) // ok: value elements hold nothing
	return ptrs, ints
}

type withRef struct{ name string }

func compactDeleteStruct(xs []withRef, i int) []withRef {
	xs = append(xs[:i], xs[i+1:]...) // want `append-based compact delete on xs strands a live reference`
	return xs
}

// compactDeleteFixed is the sanctioned removal shape: shift, zero the
// vacated slot, truncate.
func compactDeleteFixed(ptrs []*trace.Counters, i int) []*trace.Counters {
	copy(ptrs[i:], ptrs[i+1:])
	ptrs[len(ptrs)-1] = nil
	return ptrs[:len(ptrs)-1]
}

// balanced locking shapes must stay silent.
type guarded struct {
	mu    sync.Mutex
	count int
}

func (g *guarded) deferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.count++
}

func (g *guarded) branched(early bool) int {
	g.mu.Lock()
	if early {
		g.mu.Unlock()
		return 0
	}
	n := g.count
	g.mu.Unlock()
	return n
}
