// Package load type-checks Go packages for chantvet without the
// golang.org/x/tools machinery: it shells out to `go list -json -export
// -deps` for dependency export data (compiled into the build cache by the go
// command, so this works offline) and type-checks the target packages' source
// with go/parser and go/types.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	// Imports are the package's direct imports (canonical paths), used by
	// drivers to schedule passes in dependency order so facts exported by a
	// dependency's pass are in the store before any dependent's pass runs.
	Imports []string
	// Module is the path of the module declaring the package, empty for
	// packages outside any module (the standard library, under the vet
	// protocol). Analyzers whose conclusions must not depend on how much
	// of the build graph a driver loads (ndtaint's nondeterminism-source
	// seeding) gate on it.
	Module    string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns, resolving imports through
// export data. dir is the working directory for the go command (the module
// root whose packages are named by patterns).
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var out []*Package
	for _, lp := range roots {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
		}
		p := &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Imports:   lp.Imports,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		}
		if lp.Module != nil {
			p.Module = lp.Module.Path
		}
		out = append(out, p)
	}
	return TopoSort(out), nil
}

// TopoSort orders packages so every package follows the packages it imports
// (considering only imports within the slice), with import-path order
// breaking ties. The result is deterministic for a given input set, which
// keeps multi-package diagnostic output byte-stable across runs.
func TopoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || state[path] != 0 {
			return // external, already emitted, or a cycle (impossible in Go)
		}
		state[path] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			visit(dep)
		}
		state[path] = 2
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// goList runs the go command twice: once without -deps to learn which
// packages the patterns name (the roots to analyze), once with -export -deps
// to collect export data for every dependency.
func goList(dir string, patterns []string) (roots []listPackage, exports map[string]string, err error) {
	rootOut, err := runGoList(dir, append([]string{"list", "-json"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	for _, lp := range rootOut {
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		roots = append(roots, lp)
	}
	depOut, err := runGoList(dir, append([]string{"list", "-json", "-export", "-deps"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	exports = make(map[string]string, len(depOut))
	for _, lp := range depOut {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return roots, exports, nil
}

func runGoList(dir string, args []string) ([]listPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// NewImporter returns a types.Importer that reads gc export data files named
// by the path -> file map (as produced by `go list -export` or a vet.cfg
// PackageFile table). An optional importMap translates import paths as
// written in source to canonical package paths first.
func NewImporter(fset *token.FileSet, exportFiles map[string]string, importMap map[string]string) types.Importer {
	return &mapImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exportFiles[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		importMap: importMap,
	}
}

func newImporter(fset *token.FileSet, exportFiles map[string]string) types.Importer {
	return NewImporter(fset, exportFiles, nil)
}

type mapImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.gc.Import(path)
}
