package analysis_test

import (
	"bytes"
	"testing"

	"chant/internal/analysis"
)

type fakeFact struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func (*fakeFact) AFact() {}

type otherFact struct {
	OK bool `json:"ok"`
}

func (*otherFact) AFact() {}

// TestFactRoundTrip exports, serializes, decodes into a fresh store, and
// imports back.
func TestFactRoundTrip(t *testing.T) {
	s := analysis.NewFactStore()
	if err := s.Export("chant/internal/util", "WallNow", &fakeFact{N: 7, S: "time.Now"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Export("chant/internal/util", "WallNow", &otherFact{OK: true}); err != nil {
		t.Fatal(err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}

	next := analysis.NewFactStore()
	next.Decode(data)
	var f fakeFact
	if !next.Import("chant/internal/util", "WallNow", &f) {
		t.Fatal("fact lost in round trip")
	}
	if f.N != 7 || f.S != "time.Now" {
		t.Errorf("fact = %+v, want {7 time.Now}", f)
	}
	var o otherFact
	if !next.Import("chant/internal/util", "WallNow", &o) || !o.OK {
		t.Error("second fact type lost: facts of different types must coexist on one object")
	}
	if next.Import("chant/internal/util", "Other", &f) {
		t.Error("import matched an object that was never exported")
	}
}

// TestEncodeDeterministic asserts insertion order does not leak into the
// serialized bytes: the vetx files must be byte-stable for the go command's
// content-based caching.
func TestEncodeDeterministic(t *testing.T) {
	a := analysis.NewFactStore()
	b := analysis.NewFactStore()
	type entry struct{ pkg, obj string }
	entries := []entry{{"p1", "A"}, {"p2", "B"}, {"p1", "C"}, {"p3", "D"}}
	for i, e := range entries {
		if err := a.Export(e.pkg, e.obj, &fakeFact{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if err := b.Export(entries[i].pkg, entries[i].obj, &fakeFact{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Errorf("encodings differ by insertion order:\n%s\n%s", ea, eb)
	}
}

// TestDecodeForeignInput asserts non-chantvet vetx content (the placeholder
// older builds wrote, or another tool's format) is ignored, not fatal.
func TestDecodeForeignInput(t *testing.T) {
	s := analysis.NewFactStore()
	s.Decode([]byte("chantvet: no facts\n"))
	s.Decode([]byte(`{"some_other_tool": true}`))
	var f fakeFact
	if s.Import("p", "O", &f) {
		t.Error("foreign input produced facts")
	}
}
