package schedctx_test

import (
	"testing"

	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/schedctx"
)

func TestSchedctx(t *testing.T) {
	analysistest.Run(t, "testdata", schedctx.Analyzer, "./...")
}
