// Package schedctx defines the chantvet analyzer that enforces Chant's
// scheduler-context contract: ult.Sched operations, thread synchronization
// primitives, blocking core.Thread communication, and Host time-consuming
// calls are only meaningful on the goroutine currently animating the owning
// scheduler. Invoking them from a raw `go` statement or a time.AfterFunc
// callback silently corrupts scheduler state (the exact misuse class the
// runtime's chantdebug owner tokens catch at run time — this analyzer
// catches the common escapes at compile time).
package schedctx

import (
	"go/ast"

	"chant/internal/analysis"
)

// Analyzer flags scheduler-context-only calls made from goroutine escapes.
var Analyzer = &analysis.Analyzer{
	Name: "schedctx",
	Doc: "report scheduler-context-only Chant runtime calls made from raw go " +
		"statements or time.AfterFunc callbacks, which execute outside the " +
		"owning scheduler's context",
	Run: run,
}

// restricted maps (repo-relative package path, type, method) to the reason a
// call is scheduler-context-only. Host.Interrupt, Proc.Signal, Log.Add and
// the Counters atomics are deliberately absent: those are the sanctioned
// cross-context entry points.
var restricted = map[[3]string]string{
	{"internal/ult", "Sched", "Spawn"}:     "mutates the ready queue",
	{"internal/ult", "Sched", "SpawnWith"}: "mutates the ready queue",
	{"internal/ult", "Sched", "Yield"}:     "switches threads",
	{"internal/ult", "Sched", "Block"}:     "parks the calling thread",
	{"internal/ult", "Sched", "Unblock"}:   "mutates the ready queue",
	{"internal/ult", "Sched", "Exit"}:      "unwinds the calling thread",
	{"internal/ult", "Sched", "Cancel"}:    "mutates thread state",
	{"internal/ult", "Sched", "Join"}:      "parks the calling thread",
	{"internal/ult", "Mutex", "Lock"}:      "blocks the calling thread",
	{"internal/ult", "Mutex", "TryLock"}:   "mutates scheduler-owned state",
	{"internal/ult", "Mutex", "Unlock"}:    "mutates the ready queue",
	{"internal/ult", "Cond", "Wait"}:       "blocks the calling thread",
	{"internal/ult", "Cond", "Signal"}:     "mutates the ready queue",
	{"internal/ult", "Cond", "Broadcast"}:  "mutates the ready queue",
	{"internal/ult", "TCB", "SetLocal"}:    "touches thread-local storage",
	{"internal/ult", "TCB", "Local"}:       "touches thread-local storage",
	{"internal/ult", "TCB", "SetPriority"}: "mutates scheduler-owned state",

	{"internal/core", "Thread", "Send"}:         "charges the caller's host",
	{"internal/core", "Thread", "SendSync"}:     "blocks the calling thread",
	{"internal/core", "Thread", "Recv"}:         "blocks the calling thread",
	{"internal/core", "Thread", "Irecv"}:        "posts into scheduler-owned state",
	{"internal/core", "Thread", "Msgtest"}:      "charges the caller's host",
	{"internal/core", "Thread", "Msgwait"}:      "blocks the calling thread",
	{"internal/core", "Thread", "Yield"}:        "switches threads",
	{"internal/core", "Thread", "Exit"}:         "unwinds the calling thread",
	{"internal/core", "Thread", "Join"}:         "blocks the calling thread",
	{"internal/core", "Thread", "JoinLocal"}:    "blocks the calling thread",
	{"internal/core", "Thread", "Cancel"}:       "sends from the calling thread",
	{"internal/core", "Thread", "CancelLocal"}:  "mutates thread state",
	{"internal/core", "Thread", "Create"}:       "sends from the calling thread",
	{"internal/core", "Thread", "Call"}:         "blocks the calling thread",
	{"internal/core", "Thread", "Notify"}:       "sends from the calling thread",
	{"internal/core", "Thread", "Ping"}:         "blocks the calling thread",
	{"internal/core", "Process", "CreateLocal"}: "mutates the ready queue",

	{"internal/comm", "Endpoint", "Send"}:       "charges the endpoint's host",
	{"internal/comm", "Endpoint", "SendFlags"}:  "charges the endpoint's host",
	{"internal/comm", "Endpoint", "Recv"}:       "parks the endpoint's host",
	{"internal/comm", "Endpoint", "Irecv"}:      "posts into the mailbox",
	{"internal/comm", "Endpoint", "Test"}:       "charges the endpoint's host",
	{"internal/comm", "Endpoint", "TestAny"}:    "charges the endpoint's host",
	{"internal/comm", "Endpoint", "Wait"}:       "parks the endpoint's host",
	{"internal/comm", "Endpoint", "Probe"}:      "charges the endpoint's host",
	{"internal/comm", "Endpoint", "CancelRecv"}: "mutates the mailbox",

	{"internal/machine", "Host", "Charge"}:  "consumes the processor's time",
	{"internal/machine", "Host", "Compute"}: "consumes the processor's time",
	{"internal/machine", "Host", "Idle"}:    "parks the processor",

	{"internal/sim", "Proc", "Advance"}:    "yields to the simulation kernel",
	{"internal/sim", "Proc", "WaitSignal"}: "parks the simulation process",
	{"internal/sim", "Kernel", "At"}:       "mutates the event heap",
	{"internal/sim", "Kernel", "AtOn"}:     "mutates the event heap",
	{"internal/sim", "Kernel", "After"}:    "mutates the event heap",
	{"internal/sim", "Kernel", "Spawn"}:    "mutates the event heap",
	{"internal/sim", "Kernel", "SpawnAt"}:  "mutates the event heap",

	// The parallel kernel's controller-side API is restricted exactly like
	// the sequential kernel's; ParKernel.Stop is deliberately absent (it is
	// the sanctioned atomic cross-context stop request).
	{"internal/sim", "ParKernel", "At"}:      "mutates the controller callback heap",
	{"internal/sim", "ParKernel", "Spawn"}:   "mutates the shard event heaps",
	{"internal/sim", "ParKernel", "SpawnAt"}: "mutates the shard event heaps",
}

// lookup resolves a call to its restriction reason, or "" if unrestricted.
func lookup(pass *analysis.Pass, call *ast.CallExpr) (api, reason string) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	named := analysis.RecvNamed(fn)
	if named == nil {
		return "", ""
	}
	for key, why := range restricted {
		if named.Obj().Name() == key[1] && fn.Name() == key[2] &&
			analysis.PathMatches(fn.Pkg().Path(), key[0]) {
			return key[1] + "." + key[2], why
		}
	}
	return "", ""
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTest(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkEscape(pass, n.Call, "a raw go statement")
			case *ast.CallExpr:
				if isTimeAfterFunc(pass, n) && len(n.Args) == 2 {
					if lit, ok := ast.Unparen(n.Args[1]).(*ast.FuncLit); ok {
						checkBody(pass, lit.Body, "a time.AfterFunc callback")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkEscape examines the call launched by a go statement: the call itself
// may be restricted (go s.Yield()), or it may run a function literal whose
// body makes restricted calls.
func checkEscape(pass *analysis.Pass, call *ast.CallExpr, context string) {
	if api, reason := lookup(pass, call); api != "" {
		pass.Reportf(call.Pos(), "%s %s but is launched on %s, outside the scheduler's context", api, reason, context)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		checkBody(pass, lit.Body, context)
	}
}

// checkBody flags restricted calls anywhere inside an escaping function
// body, including nested literals (they inherit the escaped context).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, context string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if api, reason := lookup(pass, call); api != "" {
			pass.Reportf(call.Pos(), "%s %s and must be called from the scheduler's context, not from %s", api, reason, context)
		}
		return true
	})
}

// isTimeAfterFunc reports whether call invokes time.AfterFunc.
func isTimeAfterFunc(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "AfterFunc"
}
