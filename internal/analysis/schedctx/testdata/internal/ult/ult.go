// Package ult is a stub of chant/internal/ult exposing the scheduler API
// surface the schedctx analyzer restricts. Fixtures resolve the same import
// paths as the real repository (the testdata module is also named chant).
package ult

// Key stubs thread-local keys.
type Key struct{}

// TCB stubs a thread control block.
type TCB struct{}

func (t *TCB) SetLocal(k *Key, v any) {}
func (t *TCB) Local(k *Key) any       { return nil }
func (t *TCB) SetPriority(p int)      {}
func (t *TCB) ID() int32              { return 0 }

// SpawnOpts stubs spawn options.
type SpawnOpts struct{}

// Sched stubs the cooperative scheduler.
type Sched struct{}

func (s *Sched) Spawn(name string, fn func()) *TCB                  { return nil }
func (s *Sched) SpawnWith(name string, fn func(), o SpawnOpts) *TCB { return nil }
func (s *Sched) Run(main func()) error                              { return nil }
func (s *Sched) Yield()                                             {}
func (s *Sched) Block()                                             {}
func (s *Sched) Unblock(t *TCB)                                     {}
func (s *Sched) Exit(value any)                                     {}
func (s *Sched) Cancel(t *TCB)                                      {}
func (s *Sched) Join(t *TCB) (any, error)                           { return nil, nil }
func (s *Sched) Current() *TCB                                      { return nil }

// Mutex stubs the thread mutex.
type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) TryLock() bool { return false }
func (m *Mutex) Unlock()       {}

// Cond stubs the thread condition variable.
type Cond struct{}

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
