// Package comm stubs chant/internal/comm for schedctx fixtures.
package comm

// Addr stubs a process address.
type Addr struct{ PE, Proc int32 }

// MatchSpec stubs a receive match specification.
type MatchSpec struct{}

// RecvHandle stubs a receive completion handle.
type RecvHandle struct{}

// Header stubs a message header.
type Header struct{}

// Endpoint stubs a process's communication attachment.
type Endpoint struct{}

func (e *Endpoint) Send(dst Addr, ctx, tag, srcThread int32, data []byte)             {}
func (e *Endpoint) SendFlags(dst Addr, ctx, tag, srcThread, flags int32, data []byte) {}
func (e *Endpoint) Recv(spec MatchSpec, buf []byte) (int, Header, error)              { return 0, Header{}, nil }
func (e *Endpoint) Irecv(spec MatchSpec, buf []byte) *RecvHandle                      { return nil }
func (e *Endpoint) Test(h *RecvHandle) bool                                           { return false }
func (e *Endpoint) TestAny(hs []*RecvHandle) int                                      { return -1 }
func (e *Endpoint) Wait(h *RecvHandle)                                                {}
func (e *Endpoint) Probe(spec MatchSpec) (Header, bool)                               { return Header{}, false }
func (e *Endpoint) CancelRecv(h *RecvHandle) bool                                     { return false }
func (e *Endpoint) DeliverLocal(msg any)                                              {}
