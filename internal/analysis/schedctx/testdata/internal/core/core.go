// Package core stubs chant/internal/core for schedctx fixtures.
package core

import "chant/internal/comm"

// GlobalID stubs a global thread name.
type GlobalID struct{ PE, Proc, Thread int32 }

// Process stubs a Chant process.
type Process struct{}

func (p *Process) CreateLocal(name string, fn func(t *Thread), opts any) *Thread { return nil }

// Thread stubs a chanter.
type Thread struct{}

func (t *Thread) Send(dst GlobalID, tag int32, data []byte) error     { return nil }
func (t *Thread) SendSync(dst GlobalID, tag int32, data []byte) error { return nil }
func (t *Thread) Recv(src GlobalID, tag int32, buf []byte) (int, GlobalID, error) {
	return 0, GlobalID{}, nil
}
func (t *Thread) Irecv(src GlobalID, tag int32, buf []byte) (*comm.RecvHandle, error) {
	return nil, nil
}
func (t *Thread) Msgtest(h *comm.RecvHandle) bool       { return false }
func (t *Thread) Msgwait(h *comm.RecvHandle)            {}
func (t *Thread) Yield()                                {}
func (t *Thread) Exit(value any)                        {}
func (t *Thread) Join(target GlobalID) (any, error)     { return nil, nil }
func (t *Thread) JoinLocal(target *Thread) (any, error) { return nil, nil }
func (t *Thread) Cancel(target GlobalID) error          { return nil }
func (t *Thread) CancelLocal(target *Thread)            {}
func (t *Thread) Create(pe, proc int32, name string, arg []byte, opts any) (GlobalID, error) {
	return GlobalID{}, nil
}
func (t *Thread) Call(dst comm.Addr, handler int32, req, replyBuf []byte) (int, error) {
	return 0, nil
}
func (t *Thread) Notify(dst comm.Addr, handler int32, req []byte) error { return nil }
func (t *Thread) Ping(dst comm.Addr) error                              { return nil }
func (t *Thread) Process() *Process                                     { return nil }
