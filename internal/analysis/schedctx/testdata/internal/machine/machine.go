// Package machine stubs chant/internal/machine for schedctx fixtures.
package machine

// Host stubs the execution substrate interface.
type Host interface {
	Charge(d int64)
	Compute(units int64)
	Idle()
	Interrupt()
}
