// Package sim stubs chant/internal/sim for schedctx fixtures.
package sim

// Time stubs virtual time.
type Time int64

// Duration stubs virtual durations.
type Duration int64

// Proc stubs a simulation process.
type Proc struct{}

func (p *Proc) Advance(d Duration) {}
func (p *Proc) WaitSignal()        {}
func (p *Proc) Signal()            {}

// Kernel stubs the discrete-event kernel.
type Kernel struct{}

func (k *Kernel) At(t Time, fn func())                              {}
func (k *Kernel) AtOn(target *Proc, t Time, fn func())              {}
func (k *Kernel) After(d Duration, fn func())                       {}
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc           { return nil }
func (k *Kernel) SpawnAt(t Time, name string, fn func(*Proc)) *Proc { return nil }

// ParKernel stubs the parallel conservative kernel.
type ParKernel struct{}

func (pk *ParKernel) At(t Time, fn func())                              {}
func (pk *ParKernel) Spawn(name string, fn func(*Proc)) *Proc           { return nil }
func (pk *ParKernel) SpawnAt(t Time, name string, fn func(*Proc)) *Proc { return nil }
func (pk *ParKernel) Stop()                                             {}
