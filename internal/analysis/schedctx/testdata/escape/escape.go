// Package escape seeds scheduler-context violations for the schedctx
// analyzer: restricted runtime calls made from raw goroutines and
// time.AfterFunc callbacks, next to compliant calls that must stay silent.
package escape

import (
	"time"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/ult"
)

func rawGoroutines(s *ult.Sched, t *ult.TCB, host machine.Host) {
	go s.Yield() // want `Sched\.Yield .* outside the scheduler's context`
	go func() {
		s.Block()    // want `Sched\.Block .* must be called from the scheduler's context`
		s.Unblock(t) // want `Sched\.Unblock .* must be called from the scheduler's context`
	}()
	go func() {
		host.Idle() // want `Host\.Idle .* must be called from the scheduler's context`
		func() {
			s.Spawn("nested", func() {}) // want `Sched\.Spawn .* must be called from the scheduler's context`
		}()
	}()
	go func() {
		host.Interrupt() // ok: Interrupt is the sanctioned cross-context entry point
	}()
}

func afterFunc(th *core.Thread, m *ult.Mutex) {
	time.AfterFunc(time.Second, func() {
		th.Yield() // want `Thread\.Yield .* time\.AfterFunc callback`
		m.Lock()   // want `Mutex\.Lock .* time\.AfterFunc callback`
		m.Unlock() // want `Mutex\.Unlock .* time\.AfterFunc callback`
	})
	// Direct calls in the same function are fine: context is the caller's.
	th.Yield()
	m.Lock()
	m.Unlock()
}

func commEscape(ep *comm.Endpoint, p *sim.Proc, k *sim.Kernel) {
	go func() {
		ep.Send(comm.Addr{}, 0, 1, 0, nil) // want `Endpoint\.Send .* must be called from the scheduler's context`
		var buf []byte
		ep.Recv(comm.MatchSpec{}, buf) // want `Endpoint\.Recv .* must be called from the scheduler's context`
		p.Advance(10)                  // want `Proc\.Advance .* must be called from the scheduler's context`
		k.At(0, func() {})             // want `Kernel\.At .* must be called from the scheduler's context`
		k.AtOn(p, 0, func() {})        // want `Kernel\.AtOn .* must be called from the scheduler's context`
		p.Signal()                     // ok: Signal is the sim-side interrupt entry point
	}()
}

func parKernelEscape(pk *sim.ParKernel) {
	go func() {
		pk.At(0, func() {})                     // want `ParKernel\.At .* must be called from the scheduler's context`
		pk.Spawn("lp", func(*sim.Proc) {})      // want `ParKernel\.Spawn .* must be called from the scheduler's context`
		pk.SpawnAt(5, "lp", func(*sim.Proc) {}) // want `ParKernel\.SpawnAt .* must be called from the scheduler's context`
		pk.Stop()                               // ok: Stop is the sanctioned atomic cross-context stop request
	}()
}

func threadBody(t *core.Thread) {
	// Restricted calls on the calling thread's own context are the normal
	// case and must not be reported.
	t.Send(core.GlobalID{}, 1, nil)
	t.Recv(core.GlobalID{}, 1, nil)
	t.Process().CreateLocal("child", func(c *core.Thread) { c.Yield() }, nil)
}
