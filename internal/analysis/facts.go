package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"

	"chant/internal/analysis/typeutil"
)

// A Fact is a serializable datum an analyzer attaches to a package-level
// object (a function, usually) so that passes over dependent packages can
// import it. This is the mechanism that makes chantvet interprocedural
// across package boundaries: a pass over chant/internal/util can record
// "WallNow is tainted by time.Now", and the later pass over internal/sim —
// which only sees util through export data — imports that fact when it
// resolves a call to util.WallNow.
//
// Facts must marshal to JSON; the concrete type (always a pointer to a
// struct) identifies the fact kind.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factKey names one fact: the object's package path, its package-relative
// key (typeutil.ObjectKey), and the fact's type name.
type factKey struct {
	pkg, obj, typ string
}

// A FactStore accumulates facts across the passes of one chantvet run. The
// standalone driver shares one in-memory store across all loaded packages;
// the go vet unit driver serializes the store to the unit's .vetx output and
// seeds it from the dependencies' .vetx files, so modular runs compose the
// same way a whole-program run does.
//
// Facts are stored in their serialized form: keying is by (package path,
// object key) strings, so facts attached to a source-checked object are
// found when the same object is reached through export data.
type FactStore struct {
	facts map[factKey]json.RawMessage
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey]json.RawMessage)}
}

// factTypeName names a fact's concrete type, e.g. "ndtaint.Tainted".
func factTypeName(f Fact) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", f), "*")
}

// Export records fact for the object named (pkgPath, objKey), replacing any
// previous fact of the same type.
func (s *FactStore) Export(pkgPath, objKey string, f Fact) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("facts: marshaling %s for %s.%s: %w", factTypeName(f), pkgPath, objKey, err)
	}
	s.facts[factKey{pkgPath, objKey, factTypeName(f)}] = data
	return nil
}

// Import looks up a fact of f's type for the object named (pkgPath, objKey)
// and, when present, unmarshals it into f and reports true.
func (s *FactStore) Import(pkgPath, objKey string, f Fact) bool {
	data, ok := s.facts[factKey{pkgPath, objKey, factTypeName(f)}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, f) == nil
}

// vetxFact is the serialized form of one fact in a .vetx file.
type vetxFact struct {
	Pkg    string          `json:"pkg"`
	Object string          `json:"object"`
	Type   string          `json:"type"`
	Data   json.RawMessage `json:"data"`
}

// vetxFile is the JSON shape chantvet writes for the go command's facts
// output. Like x/tools facts files, it carries the whole accumulated store
// (own package plus re-exported dependency facts), so a unit's single .vetx
// input chain is enough to see through any depth of imports.
type vetxFile struct {
	Version int        `json:"chantvet_facts"`
	Facts   []vetxFact `json:"facts"`
}

// Encode serializes the entire store deterministically: facts are sorted by
// (package, object, type), so identical stores produce identical bytes.
func (s *FactStore) Encode() ([]byte, error) {
	out := vetxFile{Version: 1, Facts: make([]vetxFact, 0, len(s.facts))}
	for k, data := range s.facts {
		out.Facts = append(out.Facts, vetxFact{Pkg: k.pkg, Object: k.obj, Type: k.typ, Data: data})
	}
	sort.Slice(out.Facts, func(i, j int) bool {
		a, b := out.Facts[i], out.Facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(out)
}

// Decode merges the facts serialized in data into the store. Inputs that are
// not chantvet fact files (for example the placeholder bytes written by
// older chantvet builds, or another tool's vetx format) are ignored rather
// than treated as errors: a missing fact only makes the analysis less
// complete, never wrong.
func (s *FactStore) Decode(data []byte) {
	var in vetxFile
	if err := json.Unmarshal(data, &in); err != nil || in.Version != 1 {
		return
	}
	for _, f := range in.Facts {
		s.facts[factKey{f.Pkg, f.Object, f.Type}] = f.Data
	}
}

// ExportObjectFact records fact for obj in the pass's fact store. Analyzers
// call it on objects declared in the pass's own package.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	// Export errors indicate an unmarshalable fact type — a programming
	// error in the analyzer, surfaced loudly.
	if err := p.Facts.Export(obj.Pkg().Path(), typeutil.ObjectKey(obj), f); err != nil {
		panic(err)
	}
}

// ImportObjectFact looks up a fact of f's concrete type previously exported
// for obj — typically by a pass over the dependency package that declares
// obj — and fills f in, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.Facts.Import(obj.Pkg().Path(), typeutil.ObjectKey(obj), f)
}
