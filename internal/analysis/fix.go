package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// flatEdit is a TextEdit resolved to byte offsets within one file.
type flatEdit struct {
	start, end int
	newText    string
}

// ApplyFixes applies every suggested fix carried by diags to the named
// files' contents and returns the rewritten files, keyed by filename. read
// supplies each file's original bytes (os.ReadFile for the chantvet -fix
// driver; the analysistest harness reads fixture sources the same way).
// Overlapping edits are rejected — chantvet's fixes are independent
// insertions and replacements, so overlap indicates an analyzer bug.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, error) {
	byFile := make(map[string][]flatEdit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				pos, end := fset.Position(e.Pos), fset.Position(e.End)
				if pos.Filename == "" || pos.Filename != end.Filename {
					return nil, fmt.Errorf("applyfixes: edit spans files (%s .. %s)", pos, end)
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], flatEdit{
					start:   pos.Offset,
					end:     end.Offset,
					newText: e.NewText,
				})
			}
		}
	}
	out := make(map[string][]byte, len(byFile))
	for name, edits := range byFile {
		src, err := read(name)
		if err != nil {
			return nil, err
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("applyfixes: %s: %w", name, err)
		}
		out[name] = fixed
	}
	return out, nil
}

// applyEdits applies edits to src back to front so earlier offsets stay
// valid.
func applyEdits(src []byte, edits []flatEdit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start > edits[j].start
		}
		return edits[i].end > edits[j].end
	})
	prevStart := len(src) + 1
	for _, e := range edits {
		if e.start < 0 || e.end < e.start || e.end > len(src) {
			return nil, fmt.Errorf("edit range [%d,%d) out of bounds (%d bytes)", e.start, e.end, len(src))
		}
		if e.end > prevStart {
			return nil, fmt.Errorf("overlapping edits at offset %d", e.start)
		}
		prevStart = e.start
		src = append(src[:e.start], append([]byte(e.newText), src[e.end:]...)...)
	}
	return src, nil
}
