package render_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"chant/internal/analysis/load"
	"chant/internal/analysis/registry"
	"chant/internal/analysis/render"
)

// analyze runs the full suite over the ndtaint fixture tree from a fresh
// load, so each call exercises the complete non-deterministic surface:
// package loading, call-graph construction, the taint fixpoint, and
// rendering.
func analyze(t *testing.T) []registry.Finding {
	t.Helper()
	pkgs, err := load.Load("../ndtaint/testdata", "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := registry.RunAll(pkgs, registry.Analyzers(), nil)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return findings
}

func renderAll(t *testing.T, findings []registry.Finding) (jsonOut, textOut, sarifOut []byte) {
	t.Helper()
	var j, x, s bytes.Buffer
	if err := render.JSON(&j, findings); err != nil {
		t.Fatal(err)
	}
	if err := render.Text(&x, findings); err != nil {
		t.Fatal(err)
	}
	if err := render.SARIF(&s, findings, registry.Analyzers()); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), x.Bytes(), s.Bytes()
}

// TestDeterministicOutput asserts two independent end-to-end runs produce
// byte-identical output in every format. This is the property CI's SARIF
// artifact and any diff-based tooling depend on.
func TestDeterministicOutput(t *testing.T) {
	j1, x1, s1 := renderAll(t, analyze(t))
	j2, x2, s2 := renderAll(t, analyze(t))
	if !bytes.Equal(j1, j2) {
		t.Errorf("-json output differs across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
	if !bytes.Equal(x1, x2) {
		t.Errorf("text output differs across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", x1, x2)
	}
	if !bytes.Equal(s1, s2) {
		t.Errorf("SARIF output differs across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
	if len(j1) == 0 || len(x1) == 0 || len(s1) == 0 {
		t.Fatal("fixture produced empty output; determinism check is vacuous")
	}
}

// TestFindingsSorted asserts the findings come back in the documented total
// order: file, line, column, analyzer, message.
func TestFindingsSorted(t *testing.T) {
	findings := analyze(t)
	if len(findings) < 2 {
		t.Fatalf("fixture produced %d findings; need at least 2 to check order", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		pa, pb := a.Position(), b.Position()
		switch {
		case pa.Filename < pb.Filename:
		case pa.Filename > pb.Filename:
			t.Fatalf("findings out of order by file: %s after %s", pb.Filename, pa.Filename)
		case pa.Line > pb.Line:
			t.Fatalf("findings out of order by line in %s: %d after %d", pa.Filename, pb.Line, pa.Line)
		}
	}
}

// TestJSONShape asserts the -json stream parses and carries the documented
// fields.
func TestJSONShape(t *testing.T) {
	j, _, _ := renderAll(t, analyze(t))
	var decoded []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(j, &decoded); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	for i, d := range decoded {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("finding %d missing fields: %+v", i, d)
		}
	}
}

// TestSARIFShape asserts the SARIF log has the fixed 2.1.0 skeleton tools
// like GitHub code scanning require.
func TestSARIFShape(t *testing.T) {
	_, _, s := renderAll(t, analyze(t))
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(s, &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "chantvet" {
		t.Fatalf("SARIF log must hold one chantvet run, got %+v", log.Runs)
	}
	rules := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, res := range log.Runs[0].Results {
		if !rules[res.RuleID] {
			t.Errorf("result references undeclared rule %q", res.RuleID)
		}
	}
	if len(log.Runs[0].Results) == 0 {
		t.Error("fixture tree produced no SARIF results")
	}
}
