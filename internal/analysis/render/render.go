// Package render serializes chantvet findings: the classic vet-style text
// lines, a machine-readable JSON array, and a minimal SARIF 2.1.0 log for
// code-scanning upload in CI. All three formats are deterministic — struct
// (not map) marshaling plus the registry's total finding order mean two runs
// over the same tree produce byte-identical output, which the test suite
// asserts and which keeps CI artifact diffs meaningful.
package render

import (
	"encoding/json"
	"fmt"
	"io"

	"chant/internal/analysis"
	"chant/internal/analysis/registry"
)

// Text writes the classic `file:line:col: analyzer: message` lines.
func Text(w io.Writer, findings []registry.Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s: %s: %s\n", f.Position(), f.Analyzer, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	Analyzer string    `json:"analyzer"`
	Message  string    `json:"message"`
	Fixes    []jsonFix `json:"suggested_fixes,omitempty"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

// jsonEdit locates a replacement by file coordinates, end-exclusive.
type jsonEdit struct {
	File      string `json:"file"`
	StartLine int    `json:"start_line"`
	StartCol  int    `json:"start_column"`
	EndLine   int    `json:"end_line"`
	EndCol    int    `json:"end_column"`
	NewText   string `json:"new_text"`
}

// JSON writes the findings as an indented JSON array (an empty slice, not
// null, when there are none).
func JSON(w io.Writer, findings []registry.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := f.Position()
		jf := jsonFinding{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		for _, fix := range f.SuggestedFixes {
			jfix := jsonFix{Message: fix.Message, Edits: make([]jsonEdit, 0, len(fix.TextEdits))}
			for _, e := range fix.TextEdits {
				start, end := f.Fset.Position(e.Pos), f.Fset.Position(e.End)
				jfix.Edits = append(jfix.Edits, jsonEdit{
					File:      start.Filename,
					StartLine: start.Line,
					StartCol:  start.Column,
					EndLine:   end.Line,
					EndCol:    end.Column,
					NewText:   e.NewText,
				})
			}
			jf.Fixes = append(jf.Fixes, jfix)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// The SARIF types below cover the subset of SARIF 2.1.0 that code-scanning
// consumers require: tool metadata with one reportingDescriptor per
// analyzer, and one result per finding with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID  string `json:"ruleId"`
	Level   string `json:"level"`
	Message struct {
		Text string `json:"text"`
	} `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation struct {
		ArtifactLocation struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

// SARIF writes a SARIF 2.1.0 log with one rule per analyzer and one error-
// level result per finding.
func SARIF(w io.Writer, findings []registry.Finding, analyzers []*analysis.Analyzer) error {
	driver := sarifDriver{
		Name:           "chantvet",
		InformationURI: "https://example.invalid/chant/chantvet",
	}
	for _, a := range analyzers {
		rule := sarifRule{ID: a.Name}
		rule.Desc.Text = a.Doc
		driver.Rules = append(driver.Rules, rule)
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: make([]sarifResult, 0, len(findings))}
	for _, f := range findings {
		pos := f.Position()
		res := sarifResult{RuleID: f.Analyzer, Level: "error"}
		res.Message.Text = f.Message
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = pos.Filename
		loc.PhysicalLocation.Region.StartLine = pos.Line
		loc.PhysicalLocation.Region.StartColumn = pos.Column
		res.Locations = append(res.Locations, loc)
		run.Results = append(run.Results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}
