// Package callgraph builds a type-informed static call graph across every
// package a chantvet driver loaded. Edges come from two resolutions:
//
//   - static calls: the callee *types.Func named directly at the call site
//     (plain functions, methods on concrete receivers);
//   - interface calls: a call through an interface method is resolved against
//     the method sets of every named type declared in the loaded packages,
//     producing one edge per implementation. Chant's interface sets are
//     deliberately small (simKernel, comm.Transport, machine.Host, the
//     polling policies), so this resolution is cheap and precise. Only
//     interfaces declared inside the loaded module are resolved — dispatch
//     through stdlib interfaces (error, io.Writer) stays unresolved rather
//     than fanning out to every implementation in the program.
//
// Nodes are keyed by a load-stable ID (typeutil.FuncID), so an edge whose
// callee was type-checked from export data lands on the same node as the
// callee's own source-checked declaration. Calls inside function literals
// are attributed to the enclosing declared function: for reachability-style
// analyses (ndtaint) a closure runs with its creator's obligations.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"chant/internal/analysis/load"
	"chant/internal/analysis/typeutil"
)

// A Node is one function in the graph.
type Node struct {
	// ID is the load-stable name: "pkgpath.Func" or "pkgpath.Type.Method".
	ID string
	// PkgPath and Key split the ID for fact-store lookups.
	PkgPath string
	Key     string
	// Decl is the function's declaration when it was loaded from source in
	// this run; nil for externals known only through export data.
	Decl *ast.FuncDecl
	// DeclPkg is the loaded package declaring Decl (nil for externals).
	DeclPkg *load.Package
	// Edges are the outgoing calls, in call-site order.
	Edges []Edge
}

// An Edge is one call site.
type Edge struct {
	// Site is the call expression's position.
	Site token.Pos
	// Callee is the resolved target.
	Callee *Node
	// Interface marks an edge resolved through an interface method set
	// rather than named statically.
	Interface bool
}

// A Graph is the call graph over one driver run's loaded packages.
type Graph struct {
	nodes map[string]*Node
	byPkg map[string][]*Node
}

// Node returns the graph node with the given ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// PackageNodes returns the declared functions of one package, in source
// order.
func (g *Graph) PackageNodes(pkgPath string) []*Node { return g.byPkg[pkgPath] }

// NodeFor returns the graph node for fn, or nil if fn was never seen.
func (g *Graph) NodeFor(fn *types.Func) *Node { return g.nodes[typeutil.FuncID(fn)] }

// Build constructs the call graph over pkgs. Test files are excluded, as
// every chantvet analyzer excludes them.
func Build(pkgs []*load.Package) *Graph {
	g := &Graph{nodes: make(map[string]*Node), byPkg: make(map[string][]*Node)}
	b := &builder{g: g}
	b.collectImpls(pkgs)
	for _, pkg := range pkgs {
		b.addPackage(pkg)
	}
	for _, nodes := range g.byPkg {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	}
	return g
}

type builder struct {
	g *Graph
	// impls lists every named type declared in the loaded packages, the
	// candidate set for interface resolution.
	impls []*types.Named
	// loaded is the set of loaded package paths; interface methods are only
	// resolved when their interface is declared in one of them.
	loaded map[string]bool
}

// collectImpls gathers the named types of every loaded package.
func (b *builder) collectImpls(pkgs []*load.Package) {
	b.loaded = make(map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		b.loaded[pkg.PkgPath] = true
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); !isIface {
					b.impls = append(b.impls, named)
				}
			}
		}
	}
	sort.Slice(b.impls, func(i, j int) bool {
		return b.impls[i].Obj().Pkg().Path()+"."+b.impls[i].Obj().Name() <
			b.impls[j].Obj().Pkg().Path()+"."+b.impls[j].Obj().Name()
	})
}

// node interns the graph node for id.
func (b *builder) node(pkgPath, key string) *Node {
	id := pkgPath + "." + key
	if n, ok := b.g.nodes[id]; ok {
		return n
	}
	n := &Node{ID: id, PkgPath: pkgPath, Key: key}
	b.g.nodes[id] = n
	return n
}

// nodeForFunc interns the node for a resolved *types.Func.
func (b *builder) nodeForFunc(fn *types.Func) *Node {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return b.node(pkg, typeutil.ObjectKey(fn))
}

// addPackage creates declared nodes and their edges for one loaded package.
func (b *builder) addPackage(pkg *load.Package) {
	for _, file := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(file.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := b.nodeForFunc(obj)
			n.Decl = fd
			n.DeclPkg = pkg
			b.g.byPkg[pkg.PkgPath] = append(b.g.byPkg[pkg.PkgPath], n)
			b.addEdges(pkg, n, fd.Body)
		}
	}
}

// addEdges walks a declared function's body recording one edge per resolved
// call site.
func (b *builder) addEdges(pkg *load.Package, caller *Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := typeutil.CalleeFunc(pkg.TypesInfo, call); fn != nil {
			if b.isInterfaceCall(pkg, call) {
				b.addInterfaceEdges(pkg, caller, call, fn)
			} else {
				caller.Edges = append(caller.Edges, Edge{Site: call.Pos(), Callee: b.nodeForFunc(fn)})
			}
		}
		return true
	})
}

// isInterfaceCall reports whether call dispatches through an interface
// method.
func (b *builder) isInterfaceCall(pkg *load.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := pkg.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	_, isIface := recv.Underlying().(*types.Interface)
	return isIface
}

// addInterfaceEdges resolves an interface method call against the loaded
// named types, adding one edge per implementation.
func (b *builder) addInterfaceEdges(pkg *load.Package, caller *Node, call *ast.CallExpr, m *types.Func) {
	// Only resolve interfaces declared in the loaded module: fanning
	// error.Error or io.Writer.Write out to every implementation would
	// connect unrelated code.
	if m.Pkg() == nil || !b.loaded[m.Pkg().Path()] {
		return
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	selection := pkg.TypesInfo.Selections[sel]
	iface, ok := selection.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, named := range b.impls {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			caller.Edges = append(caller.Edges, Edge{Site: call.Pos(), Callee: b.nodeForFunc(fn), Interface: true})
		}
	}
}
