package callgraph_test

import (
	"testing"

	"chant/internal/analysis/callgraph"
	"chant/internal/analysis/load"
)

// The ndtaint fixture module doubles as the call-graph fixture: it has a
// static cross-package chain, an interface with two implementations, and an
// external (stdlib) callee.
const fixture = "../ndtaint/testdata"

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkgs, err := load.Load(fixture, "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build(pkgs)
}

func edgeTo(n *callgraph.Node, callee string) *callgraph.Edge {
	for i := range n.Edges {
		if n.Edges[i].Callee.ID == callee {
			return &n.Edges[i]
		}
	}
	return nil
}

func TestStaticEdges(t *testing.T) {
	g := buildFixture(t)
	step := g.Node("chant/internal/sim/kernel.Step")
	if step == nil {
		t.Fatal("no node for kernel.Step")
	}
	if step.Decl == nil {
		t.Error("kernel.Step loaded from source must carry its declaration")
	}
	if edgeTo(step, "chant/internal/util.Indirect") == nil {
		t.Errorf("kernel.Step has no edge to util.Indirect; edges: %v", edgeIDs(step))
	}
	indirect := g.Node("chant/internal/util.Indirect")
	if indirect == nil || edgeTo(indirect, "chant/internal/util.WallNow") == nil {
		t.Error("util.Indirect has no edge to util.WallNow")
	}
}

func TestExternalCallee(t *testing.T) {
	g := buildFixture(t)
	wallNow := g.Node("chant/internal/util.WallNow")
	if wallNow == nil {
		t.Fatal("no node for util.WallNow")
	}
	timeNow := edgeTo(wallNow, "time.Now")
	if timeNow == nil {
		t.Fatalf("util.WallNow has no edge to time.Now; edges: %v", edgeIDs(wallNow))
	}
	if timeNow.Callee.Decl != nil {
		t.Error("stdlib callee must be an external node (no declaration)")
	}
}

func TestInterfaceResolution(t *testing.T) {
	g := buildFixture(t)
	drive := g.Node("chant/internal/sim/kernel.Drive")
	if drive == nil {
		t.Fatal("no node for kernel.Drive")
	}
	for _, impl := range []string{"chant/internal/realnet.TCP.Send", "chant/internal/realnet.Quiet.Send"} {
		e := edgeTo(drive, impl)
		if e == nil {
			t.Errorf("interface call did not resolve to %s; edges: %v", impl, edgeIDs(drive))
			continue
		}
		if !e.Interface {
			t.Errorf("edge to %s not marked as interface-resolved", impl)
		}
	}
	// The static method call in DriveQuiet must NOT be an interface edge.
	quiet := g.Node("chant/internal/sim/kernel.DriveQuiet")
	if e := edgeTo(quiet, "chant/internal/realnet.Quiet.Send"); e == nil || e.Interface {
		t.Error("static method call missing or wrongly marked as interface dispatch")
	}
}

func TestPackageNodesSourceOrder(t *testing.T) {
	g := buildFixture(t)
	nodes := g.PackageNodes("chant/internal/util")
	if len(nodes) != 4 {
		t.Fatalf("util declares 4 functions, got %d", len(nodes))
	}
	want := []string{"WallNow", "Indirect", "Clean", "Sanctioned"}
	for i, n := range nodes {
		if n.Key != want[i] {
			t.Errorf("PackageNodes[%d] = %s, want %s (source order)", i, n.Key, want[i])
		}
	}
}

func edgeIDs(n *callgraph.Node) []string {
	var out []string
	for _, e := range n.Edges {
		out = append(out, e.Callee.ID)
	}
	return out
}
