// Package unitcheck implements the `go vet -vettool` protocol (the one
// golang.org/x/tools/go/analysis/unitchecker speaks) on the standard
// library, so chantvet can run under `go vet -vettool=$(which chantvet)
// ./...`. The go command invokes the tool once per package with a JSON
// config file naming the sources, the import map, export-data files for
// every dependency, and — the facts plumbing — the dependencies' .vetx
// fact files plus the path to write this unit's own. The tool type-checks
// the unit, seeds a fact store from the dependency .vetx files, runs its
// analyzers (whole-program Finish hooks run over the single unit, importing
// cross-package conclusions from the store), writes the accumulated store to
// the .vetx output so dependents compose, prints findings to stderr, and
// exits 2 when it found anything.
package unitcheck

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"chant/internal/analysis"
	"chant/internal/analysis/load"
	"chant/internal/analysis/registry"
)

// Config mirrors the vet config JSON written by the go command (the fields
// chantvet consumes; unknown fields are ignored).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	ModulePath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet config file, printing diagnostics to w. It returns
// the number of diagnostics (the caller exits 2 when nonzero) or an error
// for protocol and type-checking failures.
func Run(w io.Writer, cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("unitcheck: parsing %s: %w", cfgPath, err)
	}

	// Seed the fact store from the dependencies' fact files. Order does not
	// matter (the store is keyed), but iterate sorted for reproducibility of
	// any error behaviour. Unreadable or foreign files are skipped: a
	// missing fact makes the analysis less complete, never wrong.
	facts := analysis.NewFactStore()
	deps := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		deps = append(deps, dep)
	}
	sort.Strings(deps)
	for _, dep := range deps {
		if b, err := os.ReadFile(cfg.PackageVetx[dep]); err == nil {
			facts.Decode(b)
		}
	}

	// The go command requires the facts output to exist on every exit path;
	// write the (possibly still dependency-only) store now and again after
	// the analyzers have contributed their own facts.
	if err := writeVetx(cfg.VetxOutput, facts); err != nil {
		return 0, err
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: load.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("unitcheck: type-checking %s: %w", cfg.ImportPath, err)
	}

	pkg := &load.Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Module: cfg.ModulePath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
	findings, err := registry.RunAll([]*load.Package{pkg}, analyzers, facts)
	if err != nil {
		return 0, err
	}
	if err := writeVetx(cfg.VetxOutput, facts); err != nil {
		return 0, err
	}
	if cfg.VetxOnly {
		// The go command only wanted this unit's facts for a dependent's
		// sake; diagnostics are not printed and do not fail the build here —
		// they reappear when the package is vetted in its own right.
		return 0, nil
	}
	for _, d := range findings {
		fmt.Fprintf(w, "%s: %s: %s\n", d.Position(), d.Analyzer, d.Message)
	}
	return len(findings), nil
}

// writeVetx serializes the fact store to the go command's requested output
// path (a no-op when the config names none).
func writeVetx(path string, facts *analysis.FactStore) error {
	if path == "" {
		return nil
	}
	data, err := facts.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
