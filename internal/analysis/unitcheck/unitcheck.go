// Package unitcheck implements the `go vet -vettool` protocol (the one
// golang.org/x/tools/go/analysis/unitchecker speaks) on the standard
// library, so chantvet can run under `go vet -vettool=$(which chantvet)
// ./...`. The go command invokes the tool once per package with a JSON
// config file naming the sources, the import map, and export-data files for
// every dependency; the tool type-checks the unit, runs its analyzers,
// prints findings to stderr, writes the (empty — chantvet exchanges no
// facts) .vetx output, and exits 2 when it found anything.
package unitcheck

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"chant/internal/analysis"
	"chant/internal/analysis/load"
	"chant/internal/analysis/registry"
)

// Config mirrors the vet config JSON written by the go command (the fields
// chantvet consumes; unknown fields are ignored).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet config file, printing diagnostics to w. It returns
// the number of diagnostics (the caller exits 2 when nonzero) or an error
// for protocol and type-checking failures.
func Run(w io.Writer, cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("unitcheck: parsing %s: %w", cfgPath, err)
	}

	// The go command requires the facts output to exist even for tools that
	// exchange none; write it first so every exit path satisfies that.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("chantvet: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: load.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("unitcheck: type-checking %s: %w", cfg.ImportPath, err)
	}

	pkg := &load.Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
	diags, err := registry.Run(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}
