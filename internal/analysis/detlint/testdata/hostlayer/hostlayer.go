// Package hostlayer is outside the simulation-critical package set: detlint
// must stay silent here even though every nondeterminism source appears.
package hostlayer

import (
	"math/rand"
	"time"
)

var sink any

func unchecked(m map[string]int, emit func(string)) {
	sink = time.Now()
	sink = rand.Intn(10)
	go func() { emit("x") }()
	for k := range m {
		emit(k)
	}
}
