// Package spinfixture seeds spin-loop shapes for detlint's bounded-spin
// check inside a simulation-critical package path (internal/machine/...):
// unbounded atomic busy-wait loops must be flagged, while the sanctioned
// shapes — the counted spin-then-park budget, condition-variable rechecks,
// CAS retry loops — must stay silent.
package spinfixture

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// spinForever is the shape the check exists for: nothing in the loop can
// ever surrender the processor.
func spinForever(flag *atomic.Bool) {
	for !flag.Load() { // want `unbounded spin loop in simulation-critical package`
	}
}

// spinWithGosched still burns the processor forever; yielding the OS thread
// each lap does not bound the wait.
func spinWithGosched(flag *atomic.Bool) {
	for !flag.Load() { // want `unbounded spin loop in simulation-critical package`
		runtime.Gosched()
	}
}

// spinInfiniteBody polls inside a bare for{}; the break is reachable only
// if another processor stores the flag.
func spinInfiniteBody(flag *atomic.Bool) int {
	laps := 0
	for { // want `unbounded spin loop in simulation-critical package`
		if flag.Load() {
			break
		}
		laps++
	}
	return laps
}

// spinPackageAtomics uses the package-level atomic functions rather than
// method calls; same shape, same finding.
func spinPackageAtomics(word *int32) {
	for atomic.LoadInt32(word) == 0 { // want `unbounded spin loop in simulation-critical package`
	}
}

// countedSpin is the sanctioned spin-then-park budget: the loop bounds
// itself by construction, so the caller parks after at most budget laps.
func countedSpin(flag *atomic.Bool, budget int) bool {
	for i := budget; i > 0; i-- {
		if flag.Load() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// condRecheck is the condition-variable wait idiom: Wait parks, so the
// recheck loop never busy-waits.
func condRecheck(flag *atomic.Bool, cond *sync.Cond) {
	for !flag.Load() {
		cond.Wait()
	}
}

// casRetry is a lock-free retry loop: it re-runs only while another
// processor succeeds first, which is forward progress, not waiting.
func casRetry(v *atomic.Int64) {
	for {
		old := v.Load()
		if v.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// drainLoop calls an arbitrary function each lap; the analyzer cannot see
// whether it blocks or makes progress, so it stays silent.
func drainLoop(flag *atomic.Bool, drain func()) {
	for !flag.Load() {
		drain()
	}
}

// sanctioned carries an explicit justification and stays silent.
func sanctioned(flag *atomic.Bool) {
	//chant:allow-nondet fixture: startup handshake, bounded externally by a test timeout
	for !flag.Load() {
	}
}

// walkList has no atomic traffic at all: a pointer-chasing loop (the
// ingress ring's LIFO reversal) is plain computation, not a spin.
type node struct{ next *node }

func walkList(head *node) int {
	n := 0
	for head != nil {
		head = head.next
		n++
	}
	return n
}
