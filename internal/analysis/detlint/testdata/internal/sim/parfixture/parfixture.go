// Package parfixture seeds the shard-worker shapes of the parallel
// conservative kernel for the detlint analyzer: unsanctioned goroutine and
// channel use inside simulation-critical shard code must be flagged, while
// the kernel's sanctioned worker-pool pattern — annotated spawn, one
// blocking receive per loop — must stay silent.
package parfixture

type windowKey struct{ at, seq uint64 }

type shard struct {
	work chan windowKey
	done chan struct{}
}

// badWorkerPool spawns shard workers without the sanctioned annotation:
// a raw goroutine inside the kernel is exactly what detlint exists to
// catch, because an unsynchronized worker could interleave event
// execution nondeterministically.
func badWorkerPool(shards []shard, run func(int, windowKey)) {
	for i := range shards {
		i := i
		go func() { // want `raw go statement in simulation-critical package`
			for k := range shards[i].work {
				run(i, k)
			}
		}()
	}
}

// badDrain merges shard completions through a two-way select: which shard
// reports first depends on the host scheduler, so ordering results this
// way is nondeterministic.
func badDrain(a, b chan windowKey) windowKey {
	select { // want `select with 2 communication cases in simulation-critical package`
	case k := <-a:
		return k
	case k := <-b:
		return k
	}
}

// goodWorkerPool is the sanctioned kernel shape: the spawn carries an
// allow-nondet justification (the barrier protocol makes the interleaving
// invisible), and each worker's loop is a single blocking receive — no
// select, no racing channels — exactly the ParKernel worker.
func goodWorkerPool(shards []shard, run func(int, windowKey)) {
	for i := range shards {
		i := i
		//chant:allow-nondet fixture: barrier-synchronized shard worker; window results are merged deterministically
		go func() {
			for k := range shards[i].work {
				run(i, k)
				shards[i].done <- struct{}{}
			}
		}()
	}
}
