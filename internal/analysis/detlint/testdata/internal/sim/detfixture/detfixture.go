// Package detfixture seeds nondeterminism violations for the detlint
// analyzer inside a simulation-critical package path (internal/sim/...),
// next to deterministic constructs and suppressed sites that must stay
// silent.
package detfixture

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

var sink any

func wallClock() {
	sink = time.Now()            // want `time\.Now in simulation-critical package .* wall clock is nondeterministic`
	time.Sleep(time.Millisecond) // want `time\.Sleep in simulation-critical package`
	var t time.Time
	sink = time.Since(t) // want `time\.Since in simulation-critical package`
	sink = time.Now()    //chant:allow-nondet fixture: sanctioned wall-clock read
	//chant:allow-nondet fixture: a marker alone on the line above also suppresses
	sink = time.Now()
	// A reasonless marker (next line) must NOT suppress the diagnostic.
	//chant:allow-nondet
	sink = time.Now() // want `time\.Now`
}

func globalRand() int {
	n := rand.Intn(10)                 // want `global rand\.Intn in simulation-critical package .* shared PRNG state`
	n += int(rand.Int63())             // want `global rand\.Int63 in simulation-critical package`
	src := rand.New(rand.NewSource(1)) // want `global rand\.New` `global rand\.NewSource`
	return n + src.Intn(10)            // ok: method on an explicitly-seeded instance
}

func rawGoroutine(events chan<- int) {
	go func() { // want `raw go statement in simulation-critical package`
		events <- 1
	}()
}

func mapOrder(counts map[string]int, emit func(string)) []string {
	for name := range counts { // want `range over map with order-sensitive effects .* sort the keys first`
		emit(name)
	}
	// Collecting keys with builtins and sorting is the sanctioned pattern.
	keys := make([]string, 0, len(counts))
	for name := range counts {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	for name := range counts { //chant:allow-nondet fixture: effect is order-insensitive
		emit(name)
	}
	return keys
}

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func pooled() {
	b := bufPool.Get() // want `sync\.Pool\.Get in simulation-critical package .* pool reuse order is scheduler- and GC-dependent`
	bufPool.Put(b)     // want `sync\.Pool\.Put in simulation-critical package`
	//chant:allow-nondet fixture: gated behind Host.Deterministic()
	b = bufPool.Get()
	bufPool.Put(b) //chant:allow-nondet fixture: gated behind Host.Deterministic()
}

// freeList is the sanctioned deterministic recycling shape: a plain LIFO
// under the owner's lock.
type freeList struct{ free []*int }

func (f *freeList) get() *int {
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return x
	}
	return new(int)
}

func selects(a, b chan int) int {
	select { // want `select with 2 communication cases in simulation-critical package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleSelect(a chan int) int {
	// One communication case plus default is deterministic.
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
