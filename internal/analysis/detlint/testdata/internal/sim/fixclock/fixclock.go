// Package fixclock exercises detlint's scheduler-clock suggested fix: a
// wall-clock read in a function with an identifiable clock — a parameter
// with a Now method, or a receiver carrying a host field — is rewritten to
// read that clock instead. Applied in memory, the fixes must reproduce
// fixclock.go.golden byte for byte.
package fixclock

import "time"

type host struct{}

func (host) Now() time.Time { return time.Time{} }

type proc struct{ host host }

// step has the clock as a parameter.
func step(h host) int64 {
	return time.Now().UnixNano() // want `time\.Now in simulation-critical package`
}

// tick reaches the clock through the receiver's host field.
func (p *proc) tick() time.Time {
	return time.Now() // want `time\.Now in simulation-critical package`
}
