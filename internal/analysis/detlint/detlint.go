// Package detlint defines the chantvet analyzer that guards the
// determinism of Chant's simulated Paragon: the paper's tables are
// reproduced on a discrete-event simulator whose runs must be bit-for-bit
// repeatable, so the simulation-critical packages must not consult the wall
// clock, global PRNG state, unordered map iteration with side effects,
// multi-case selects, or raw goroutines. The few legitimate wall-clock and
// goroutine sites (the real-mode host, the TCP transport, Table 1's genuine
// microbenchmark timing) carry a `//chant:allow-nondet <reason>` comment.
//
// Detection lives in the shared nondet package (ndtaint seeds its
// interprocedural taint from the same scanner); detlint contributes the
// scope — which packages the contract binds — and, for wall-clock reads
// with an identifiable scheduler clock in scope, a suggested fix rewriting
// time.Now() to that clock's Now().
package detlint

import (
	"go/ast"

	"chant/internal/analysis"
	"chant/internal/analysis/nondet"
)

// Analyzer flags nondeterminism sources in simulation-critical packages.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "report nondeterminism sources (wall clock, global math/rand, raw " +
		"goroutines, effectful map iteration, multi-case select) and " +
		"unbounded atomic spin loops in Chant's simulation-critical " +
		"packages; suppress legitimate sites with a " +
		"//chant:allow-nondet <reason> comment",
	Run: run,
}

// scope lists the repo-relative package trees whose determinism the paper
// reproductions depend on. A package is in scope when any of these appears
// in its import path (so internal/comm covers internal/comm/tcpnet too).
var scope = []string{
	"internal/sim",
	"internal/ult",
	"internal/core",
	"internal/comm",
	"internal/machine",
	"internal/faults",
	"internal/experiments",
}

// InScope reports whether a package path is simulation-critical.
func InScope(pkgPath string) bool {
	for _, s := range scope {
		if analysis.PathContains(pkgPath, s) || analysis.PathMatches(pkgPath, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTest(file) {
			continue
		}
		for _, decl := range file.Decls {
			report(pass, decl, enclosingFunc(decl))
			checkSpinLoops(pass, decl)
		}
	}
	return nil
}

// enclosingFunc returns decl as a *ast.FuncDecl when it is one (the clock
// fix needs the receiver and parameter lists); nil for var/const/type decls.
func enclosingFunc(decl ast.Decl) *ast.FuncDecl {
	fd, _ := decl.(*ast.FuncDecl)
	return fd
}

// report emits one diagnostic per unsanctioned source under decl, attaching
// the scheduler-clock rewrite where one is derivable.
func report(pass *analysis.Pass, decl ast.Decl, fd *ast.FuncDecl) {
	for _, src := range nondet.Scan(pass, decl) {
		var fixes []analysis.SuggestedFix
		if fix := nondet.ClockFix(pass, src, fd); fix != nil {
			fixes = append(fixes, *fix)
		}
		pass.ReportfFix(src.Pos, fixes, "%s in simulation-critical package %s: %s",
			src.What, pass.Pkg.Path(), src.Why)
	}
}
