// Package detlint defines the chantvet analyzer that guards the
// determinism of Chant's simulated Paragon: the paper's tables are
// reproduced on a discrete-event simulator whose runs must be bit-for-bit
// repeatable, so the simulation-critical packages must not consult the wall
// clock, global PRNG state, unordered map iteration with side effects,
// multi-case selects, or raw goroutines. The few legitimate wall-clock and
// goroutine sites (the real-mode host, the TCP transport, Table 1's genuine
// microbenchmark timing) carry a `//chant:allow-nondet <reason>` comment.
package detlint

import (
	"go/ast"
	"go/types"

	"chant/internal/analysis"
)

// Analyzer flags nondeterminism sources in simulation-critical packages.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "report nondeterminism sources (wall clock, global math/rand, raw " +
		"goroutines, effectful map iteration, multi-case select) in Chant's " +
		"simulation-critical packages; suppress legitimate sites with a " +
		"//chant:allow-nondet <reason> comment",
	Run: run,
}

// scope lists the repo-relative package trees whose determinism the paper
// reproductions depend on. A package is in scope when any of these appears
// in its import path (so internal/comm covers internal/comm/tcpnet too).
var scope = []string{
	"internal/sim",
	"internal/ult",
	"internal/core",
	"internal/comm",
	"internal/machine",
	"internal/faults",
	"internal/experiments",
}

// InScope reports whether a package path is simulation-critical.
func InScope(pkgPath string) bool {
	for _, s := range scope {
		if analysis.PathContains(pkgPath, s) || analysis.PathMatches(pkgPath, s) {
			return true
		}
	}
	return false
}

// wallClock lists the time-package functions whose results differ run to
// run (or that schedule against the wall clock).
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func run(pass *analysis.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTest(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement in simulation-critical package %s: goroutine interleaving is nondeterministic", pass.Pkg.Path())
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads, global math/rand draws, and sync.Pool
// traffic.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if named := analysis.RecvNamed(fn); named != nil {
		checkPoolMethod(pass, call, fn.Name(), named)
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s in simulation-critical package %s: the wall clock is nondeterministic; use the Host/sim clock", fn.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(), "global %s.%s in simulation-critical package %s: shared PRNG state is order-dependent; use sim.RNG with an explicit seed", fn.Pkg().Name(), fn.Name(), pass.Pkg.Path())
	}
}

// checkPoolMethod flags Get and Put on sync.Pool: the pool hands objects
// back in a scheduler- and GC-dependent order, so any observable reuse (a
// recycled buffer's identity, a per-P cache hit vs a fresh allocation)
// varies run to run. Deterministic code wants a plain LIFO freelist;
// real-transport paths gate pooling behind Host.Deterministic() and carry
// the annotation.
func checkPoolMethod(pass *analysis.Pass, call *ast.CallExpr, method string, named *types.Named) {
	if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return
	}
	if method != "Get" && method != "Put" {
		return
	}
	pass.Reportf(call.Pos(), "sync.Pool.%s in simulation-critical package %s: pool reuse order is scheduler- and GC-dependent; use a plain freelist, or gate behind Host.Deterministic()", method, pass.Pkg.Path())
}

// checkRange flags iteration over a map whose body has side effects beyond
// plain reads and builtin calls: Go randomizes map order, so any
// order-sensitive effect (emitting events, sends, non-builtin calls)
// diverges between runs.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var effect ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = n
		case *ast.CallExpr:
			if !isPureBuiltin(pass, n) {
				effect = n
			}
		}
		return true
	})
	if effect != nil {
		pass.Reportf(rng.Pos(), "range over map with order-sensitive effects in simulation-critical package %s: map iteration order is randomized; sort the keys first", pass.Pkg.Path())
	}
}

// isPureBuiltin reports whether a call is one of the builtins whose use in a
// map loop cannot observe iteration order externally (append into a slice
// that is presumably sorted afterwards, len, cap, delete, copy, make, min,
// max). Conversions also qualify.
func isPureBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		// Selector or literal call: a conversion like sim.Time(x) is fine.
		tv, isConv := pass.TypesInfo.Types[call.Fun]
		return isConv && tv.IsType()
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return true
	}
	return false
}

// checkSelect flags selects that choose among multiple ready communications:
// the runtime picks uniformly at random.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select with %d communication cases in simulation-critical package %s: case choice is randomized when several are ready", comm, pass.Pkg.Path())
	}
}
