// The bounded-spin check: the real-mode data plane introduced spin-then-park
// idling, and its contract is that every spin is *bounded* — a counted loop
// that gives up and parks (Host.Idle, sync.Cond.Wait) after a fixed budget.
// An unbounded loop whose body only polls atomics burns the PE, starves the
// cooperative scheduler on small hosts, and — if it ever leaks into a
// simulation path — hangs the virtual clock, so detlint flags the shape
// outright rather than waiting for a hang to diagnose.
package detlint

import (
	"go/ast"
	"strings"

	"chant/internal/analysis"
)

// parkCalls lists method names that surrender the processor: a loop that
// reaches one of these each iteration is a legitimate wait loop (the
// condition-variable recheck idiom), not a busy spin.
var parkCalls = map[string]bool{
	"Wait":       true, // sync.Cond.Wait, WaitGroup.Wait
	"Idle":       true, // machine.Host.Idle
	"WaitSignal": true,
	"Sleep":      true,
	"Lock":       true, // blocking mutex acquisition parks in the runtime
	"Yield":      true, // cooperative scheduler handoff runs other threads
}

// checkSpinLoops flags unbounded pure-atomic spin loops under root.
func checkSpinLoops(pass *analysis.Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if !isUnboundedSpin(pass, loop) {
			return true
		}
		if pass.SuppressedBy(loop.Pos(), analysis.DefaultMarker) {
			// Sanctioned spins (none today) still skip their nested loops.
			return false
		}
		pass.Reportf(loop.Pos(),
			"unbounded spin loop in simulation-critical package %s: "+
				"busy-polling atomics never yields the processor; bound the spin with a "+
				"counted loop and park (Host.Idle, sync.Cond.Wait) when the budget runs out",
			pass.Pkg.Path())
		return false // the finding covers any nested loop too
	})
}

// isUnboundedSpin reports whether loop busy-polls atomic state forever:
//
//   - it is not a counted loop (no init/post bound — `for {}` or `for cond {}`),
//   - its body and condition call into sync/atomic at least once,
//   - every call it makes is a sync/atomic operation (so nothing in the body
//     can block, yield, or make progress on behalf of another thread), and
//   - none of those calls is a CompareAndSwap: a CAS retry loop re-runs only
//     while *another* processor makes progress, which is lock-free forward
//     progress, not waiting.
//
// Any other call — a park primitive, a drain, an arbitrary function whose
// blocking behaviour we cannot see — disqualifies the loop: the check flags
// only loops that provably cannot leave the processor.
func isUnboundedSpin(pass *analysis.Pass, loop *ast.ForStmt) bool {
	if loop.Init != nil && loop.Post != nil {
		return false // counted loop: the spin is bounded by construction
	}
	atomicCalls := 0
	pure := true
	inspect := func(n ast.Node) bool {
		if !pure {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			pure = false // dynamic or unresolvable call: assume it can block
			return false
		}
		if parkCalls[fn.Name()] {
			pure = false
			return false
		}
		switch fn.Pkg().Path() {
		case "sync/atomic":
			if strings.HasPrefix(fn.Name(), "CompareAndSwap") {
				pure = false // lock-free retry loop, not a wait
				return false
			}
			atomicCalls++
		case "runtime":
			if fn.Name() != "Gosched" {
				pure = false
				return false
			}
			// Gosched yields the OS thread but the loop still burns the
			// processor forever; it neither counts nor excuses.
		default:
			pure = false // some other call: could park, drain, or progress
			return false
		}
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, inspect)
	}
	if pure {
		ast.Inspect(loop.Body, inspect)
	}
	return pure && atomicCalls > 0
}
