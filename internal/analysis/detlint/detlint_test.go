package detlint_test

import (
	"testing"

	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer, "./...")
}

// TestClockFix applies the scheduler-clock rewrites in memory and compares
// against the .golden file.
func TestClockFix(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", detlint.Analyzer, "./internal/sim/fixclock")
}
