package detlint_test

import (
	"testing"

	"chant/internal/analysis/analysistest"
	"chant/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer, "./...")
}
