package comm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"chant/internal/sim"
)

// Differential property test: the bucketed matching engine (Matcher) must be
// observationally identical to the seed's linear reference (RefMatcher) on
// every operation stream — same immediate/deferred results, same match
// order, same drops, same probe answers, same queue depths, and identical
// terminal handle states. Any divergence is a bug in the bucketed engine.

// twin is one logical receive posted to both engines.
type twin struct {
	a, b   *RecvHandle // a drives Matcher, b drives RefMatcher
	gone   bool        // removed/failed/completed: no longer posted anywhere
	posted bool
}

// randSpec draws a spec over a small domain so exact hits, wildcard hits,
// and misses all occur frequently.
func randSpec(r *rand.Rand) MatchSpec {
	field := func() int32 {
		if r.Intn(3) == 0 {
			return Any
		}
		return int32(r.Intn(2))
	}
	return MatchSpec{SrcPE: field(), SrcProc: field(), SrcThread: field(), Ctx: field(), Tag: field()}
}

func randHeader(r *rand.Rand) Header {
	f := func() int32 { return int32(r.Intn(2)) }
	return Header{SrcPE: f(), SrcProc: f(), SrcThread: f(), Ctx: f(), Tag: f()}
}

func sameHandleState(x, y *RecvHandle) error {
	if x.Done() != y.Done() {
		return fmt.Errorf("done %v vs %v", x.Done(), y.Done())
	}
	if x.Canceled() != y.Canceled() {
		return fmt.Errorf("canceled %v vs %v", x.Canceled(), y.Canceled())
	}
	if !x.Done() {
		return nil
	}
	if x.Header() != y.Header() {
		return fmt.Errorf("header %+v vs %+v", x.Header(), y.Header())
	}
	if x.Len() != y.Len() {
		return fmt.Errorf("len %d vs %d", x.Len(), y.Len())
	}
	if x.Err() != y.Err() {
		return fmt.Errorf("err %v vs %v", x.Err(), y.Err())
	}
	if x.Status() != y.Status() {
		return fmt.Errorf("status %v vs %v", x.Status(), y.Status())
	}
	if x.CompletedAt() != y.CompletedAt() {
		return fmt.Errorf("completedAt %v vs %v", x.CompletedAt(), y.CompletedAt())
	}
	if !bytes.Equal(x.buf[:x.Len()], y.buf[:y.Len()]) {
		return fmt.Errorf("payload %q vs %q", x.buf[:x.Len()], y.buf[:y.Len()])
	}
	return nil
}

func TestMatcherDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			m := NewMatcher()
			ref := &RefMatcher{}
			if seed%3 == 0 {
				m.SetUnexpectedCap(4)
				ref.UnexpectedCap = 4
			}
			var twins []*twin
			index := map[*RecvHandle]int{} // either engine's handle → twin slot
			now := sim.Time(0)

			// live picks a random still-posted twin, or nil.
			live := func() *twin {
				var cands []*twin
				for _, tw := range twins {
					if tw.posted && !tw.gone && !tw.a.Done() {
						cands = append(cands, tw)
					}
				}
				if len(cands) == 0 {
					return nil
				}
				return cands[r.Intn(len(cands))]
			}

			for op := 0; op < 600; op++ {
				now++
				switch r.Intn(10) {
				case 0, 1, 2: // post a receive
					spec := randSpec(r)
					tw := &twin{
						a: NewRecvHandle(spec, make([]byte, 8)),
						b: NewRecvHandle(spec, make([]byte, 8)),
					}
					ia := m.Post(tw.a, now)
					ib := ref.Post(tw.b, now)
					if ia != ib {
						t.Fatalf("op %d: Post immediate %v vs %v (spec %+v)", op, ia, ib, spec)
					}
					tw.posted = !ia
					tw.gone = ia
					twins = append(twins, tw)
					index[tw.a] = len(twins) - 1
					index[tw.b] = len(twins) - 1
					if ia {
						if err := sameHandleState(tw.a, tw.b); err != nil {
							t.Fatalf("op %d: immediate post diverged: %v", op, err)
						}
					}
				case 3, 4, 5: // deliver a message
					h := randHeader(r)
					payload := []byte(fmt.Sprintf("m%d", op%7))
					ga, da := m.Deliver(&Message{Hdr: h, Data: payload}, now)
					gb, db := ref.Deliver(&Message{Hdr: h, Data: append([]byte(nil), payload...)}, now)
					if da != db {
						t.Fatalf("op %d: Deliver dropped %v vs %v", op, da, db)
					}
					if (ga == nil) != (gb == nil) {
						t.Fatalf("op %d: Deliver matched %v vs %v (hdr %+v)", op, ga != nil, gb != nil, h)
					}
					if ga != nil {
						if index[ga] != index[gb] {
							t.Fatalf("op %d: match order diverged: twin %d vs %d", op, index[ga], index[gb])
						}
						tw := twins[index[ga]]
						tw.gone = true
						if err := sameHandleState(tw.a, tw.b); err != nil {
							t.Fatalf("op %d: delivered handles diverged: %v", op, err)
						}
					}
				case 6: // cancel a posted receive
					if tw := live(); tw != nil {
						ra := m.Remove(tw.a)
						rb := ref.Remove(tw.b)
						if ra != rb {
							t.Fatalf("op %d: Remove %v vs %v", op, ra, rb)
						}
						if ra {
							tw.gone = true
						}
					}
				case 7: // withdraw-and-fail a posted receive
					if tw := live(); tw != nil {
						ra := m.RemoveFailed(tw.a, ErrTimeout, StatusTimedOut, now)
						rb := ref.RemoveFailed(tw.b, ErrTimeout, StatusTimedOut, now)
						if ra != rb {
							t.Fatalf("op %d: RemoveFailed %v vs %v", op, ra, rb)
						}
						if ra {
							tw.gone = true
							if err := sameHandleState(tw.a, tw.b); err != nil {
								t.Fatalf("op %d: failed handles diverged: %v", op, err)
							}
						}
					}
				case 8: // fail everything pinned to a peer
					peer := Addr{PE: int32(r.Intn(2)), Proc: int32(r.Intn(2))}
					na := m.FailPeer(peer, now)
					nb := ref.FailPeer(peer, now)
					if na != nb {
						t.Fatalf("op %d: FailPeer(%v) failed %d vs %d", op, peer, na, nb)
					}
					for _, tw := range twins {
						if tw.posted && !tw.gone && tw.a.Done() {
							tw.gone = true
						}
					}
				case 9: // probe the unexpected queue
					spec := randSpec(r)
					ha, oka := m.FindUnexpected(spec)
					hb, okb := ref.FindUnexpected(spec)
					if oka != okb || ha != hb {
						t.Fatalf("op %d: FindUnexpected (%+v,%v) vs (%+v,%v)", op, ha, oka, hb, okb)
					}
				}
				pa, ua := m.Depths()
				pb, ub := ref.Depths()
				if pa != pb || ua != ub {
					t.Fatalf("op %d: depths (%d,%d) vs (%d,%d)", op, pa, ua, pb, ub)
				}
			}

			// Terminal sweep: every twin ends in an identical state.
			for i, tw := range twins {
				if err := sameHandleState(tw.a, tw.b); err != nil {
					t.Fatalf("twin %d diverged at end: %v", i, err)
				}
			}
		})
	}
}

// Non-overtaking: among posted receives whose specs both accept a message,
// the one posted first must win, even when one is an exact-key bucket entry
// and the other a wildcard — the seq tiebreak crosses the two index classes.
func TestMatcherExactWildcardOrder(t *testing.T) {
	mk := func() (*RecvHandle, *RecvHandle) {
		wild := NewRecvHandle(MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: 7}, make([]byte, 8))
		exact := NewRecvHandle(MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: 7}, make([]byte, 8))
		return wild, exact
	}
	msg := func() *Message {
		return &Message{Hdr: Header{SrcPE: 1, Tag: 7}, Data: []byte("x")}
	}

	// Wildcard posted first wins.
	m := NewMatcher()
	wild, exact := mk()
	m.Post(wild, 0)
	m.Post(exact, 0)
	if got, _ := m.Deliver(msg(), 1); got != wild {
		t.Fatal("earlier wildcard receive was overtaken by a later exact one")
	}

	// Exact posted first wins.
	m = NewMatcher()
	wild, exact = mk()
	m.Post(exact, 0)
	m.Post(wild, 0)
	if got, _ := m.Deliver(msg(), 1); got != exact {
		t.Fatal("earlier exact receive was overtaken by a later wildcard one")
	}
}
