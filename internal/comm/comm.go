// Package comm implements the message-passing communication substrate that
// Chant layers over, providing the Figure-3 capability set of the paper:
// process naming, blocking and nonblocking point-to-point operations with
// completion handles, message polling (msgtest / msgtestany / probe), and
// message headers carrying processor, process, context, and tag fields.
//
// The interface deliberately mirrors the common core of Intel NX and the
// 1993 MPI draft the paper targets:
//
//   - Send is locally blocking (NX csend): it returns once the user buffer
//     may be reused.
//   - Irecv posts a receive and returns a handle; if the message already
//     arrived it is matched against the unexpected queue, which models the
//     system-buffer copy the paper's design otherwise avoids.
//   - Test charges different costs for completed and incomplete operations
//     (on the Paragon, testing an incomplete request required an expensive
//     message-coprocessor interaction).
//   - TestAny is the MPI_TESTANY-style single call over a set of requests
//     whose absence from NX the paper calls out in Section 4.2.
//
// Delivery is transport-neutral: the simulated network (simnet), the
// in-memory network (memnet), and the TCP network (tcpnet) all deliver into
// the same mailbox matching engine.
package comm

import (
	"errors"
	"fmt"

	"chant/internal/sim"
)

// Any is the wildcard value for match fields (source PE, source process,
// context, and tag).
const Any int32 = -1

// Addr names a process: a processing element and a process index within it.
// This is the unit the underlying communication system can address; Chant's
// contribution is routing the last hop to a thread via the Ctx header field.
type Addr struct {
	PE   int32
	Proc int32
}

func (a Addr) String() string { return fmt.Sprintf("pe%d.p%d", a.PE, a.Proc) }

// Header is the message signature used for delivery and matching. Following
// the paper's delivery discussion (Section 3.1), the destination thread
// travels in the header — in the Ctx field (MPI communicator style) or
// packed into Tag (NX/p4 tag-overloading style) — never in the body.
type Header struct {
	SrcPE     int32
	SrcProc   int32
	SrcThread int32 // sending thread's local id, for replies
	DstPE     int32
	DstProc   int32
	Ctx       int32 // destination context: thread id or communicator
	Tag       int32 // user tag
	Size      int32 // payload bytes
	Flags     int32 // delivery flags (FlagSync); never part of matching
}

// FlagSync marks a globally-blocking (synchronous) send: the receiver's
// runtime acknowledges once the matching receive has been observed, and
// only then does the sender's SendSync return — the paper's
// "globally-blocking" degree of blocking.
const FlagSync int32 = 1 << 0

// Src reports the sending process address.
func (h Header) Src() Addr { return Addr{PE: h.SrcPE, Proc: h.SrcProc} }

// Dst reports the destination process address.
func (h Header) Dst() Addr { return Addr{PE: h.DstPE, Proc: h.DstProc} }

// Message is a header plus payload in flight. Data is owned by the message
// once submitted to a transport.
type Message struct {
	Hdr    Header
	Data   []byte
	SentAt sim.Time

	// pooled marks a message drawn from the real-transport recycling pool
	// (pool.go); the mailbox returns it there after its terminal copy.
	pooled bool

	// next links the message into its destination endpoint's real-mode
	// ingress ring (ingress.go) while in flight there. Producers publish it
	// via the ring's atomic head; after take, the draining consumer owns it.
	next *Message
}

// MatchSpec selects which messages a receive accepts. Any field may be the
// wildcard Any. SrcThread matching is the MPI-communicator-style extension
// the paper contrasts with NX: systems whose headers can name threads may
// match on the sending thread directly, while tag-overloading systems must
// leave it Any.
type MatchSpec struct {
	SrcPE     int32
	SrcProc   int32
	SrcThread int32
	Ctx       int32
	Tag       int32
}

// MatchAll accepts every message.
var MatchAll = MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: Any}

// Matches reports whether a message with header h satisfies the spec.
func (s MatchSpec) Matches(h Header) bool {
	return (s.SrcPE == Any || s.SrcPE == h.SrcPE) &&
		(s.SrcProc == Any || s.SrcProc == h.SrcProc) &&
		(s.SrcThread == Any || s.SrcThread == h.SrcThread) &&
		(s.Ctx == Any || s.Ctx == h.Ctx) &&
		(s.Tag == Any || s.Tag == h.Tag)
}

// ErrTruncated reports that an arriving message was larger than the posted
// receive buffer; the payload was truncated to fit.
var ErrTruncated = errors.New("comm: message truncated: receive buffer too small")

// ErrTimeout reports that a deadline-aware wait abandoned a receive before
// any matching message arrived. The receive is withdrawn from the mailbox; a
// message arriving later joins the unexpected queue like any other.
var ErrTimeout = errors.New("comm: receive deadline exceeded")

// ErrPeerDead reports that a receive can never complete because the only
// process it could match against has been declared dead. Peer failure is a
// completion event, not a silent hang: handles pinned to a dead peer finish
// immediately with this error.
var ErrPeerDead = errors.New("comm: peer process declared dead")

// Status classifies how a receive handle reached (or has not reached)
// completion, LCI-style: the handle carries not just "done" but *how* —
// delivered, timed out, or failed by peer death — so callers can branch on
// outcome without decoding errors.
type Status uint8

const (
	// StatusPending: the receive has not completed.
	StatusPending Status = iota
	// StatusDelivered: a matching message was deposited into the buffer.
	StatusDelivered
	// StatusTimedOut: a deadline wait withdrew the receive.
	StatusTimedOut
	// StatusPeerDead: the pinned source process was declared dead.
	StatusPeerDead
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusDelivered:
		return "delivered"
	case StatusTimedOut:
		return "timed-out"
	case StatusPeerDead:
		return "peer-dead"
	}
	return "invalid"
}

// Transport moves a message to its destination process. Implementations
// must treat msg.Data as owned by the message (callers never mutate it after
// submission) and must eventually invoke the destination Endpoint's
// DeliverLocal.
type Transport interface {
	Deliver(msg *Message)
}

// DirectTransport is the optional zero-copy extension of Transport. A
// transport that can reach the destination endpoint synchronously from the
// sending goroutine (memnet always; tcpnet for loopback destinations) offers
// TryDeliverDirect: if a posted receive at the destination already matches
// hdr, the payload is copied straight from data into the waiting thread's
// buffer — no pooled Message, no intermediate copy — and the call reports
// true. On false the sender falls back to the ordinary Deliver path; data is
// only read during the call and is never retained. Real mode only: under a
// deterministic host the fast path is disabled so simulated delivery stays
// bit-identical.
type DirectTransport interface {
	TryDeliverDirect(hdr Header, data []byte) bool
}
