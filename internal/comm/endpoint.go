package comm

import (
	"sync"
	"sync/atomic"

	"chant/internal/check"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// Endpoint is one process's attachment to the communication system. All
// operations charge their modeled costs against the process's Host and
// record events in its Counters, so higher layers (and the experiment
// harness) see NX-like cost behaviour regardless of transport.
//
// Methods other than DeliverLocal must be called from the endpoint's own
// process context (its scheduler or one of its threads). DeliverLocal is
// the transport-side entry point and is safe to call from any context.
type Endpoint struct {
	addr Addr
	host machine.Host
	ctrs *trace.Counters
	tr   Transport
	mb   mailbox

	// tracer, when non-nil, receives endpoint spans (sends, ingress
	// drains, direct deliveries, match-to-observe latency). Each emission
	// site gates on the nil check before reading any clock, so an untraced
	// endpoint pays one compare per operation.
	tracer *trace.Tracer

	// det caches host.Deterministic() (immutable per host). Deterministic
	// endpoints keep the synchronous per-message delivery path so every
	// simulated event stream stays bit-identical; everything below exists for
	// real mode only.
	det bool

	// dtr is tr's zero-copy extension when it offers one, cached so the send
	// hot path pays one nil check instead of a type assertion per message.
	dtr DirectTransport

	// ing is the real-mode MPSC ingress ring: transports enqueue arrivals
	// here and the owning process drains them in batches (see ingress.go).
	ing ingress

	// serial, when set, restores the seed's per-message lock-and-wake
	// delivery and disables the direct path — the benchmark control arm for
	// measuring batched drain against per-message locking. Never set in
	// production paths.
	serial atomic.Bool

	// Ingress instrumentation (real mode only; deliberately kept out of
	// trace.Counters so no simulated snapshot or chaos hash can see it).
	ingressBatches  atomic.Uint64
	ingressMessages atomic.Uint64
	directDelivered atomic.Uint64

	// dead is the set of peers declared failed (by a transport's failure
	// detector or a simulated crash event). Guarded by deadMu because
	// detectors may run on transport-side contexts.
	deadMu sync.Mutex
	dead   map[Addr]bool

	// freeHandles recycles receive handles whose owners provably drop them
	// (the internal blocking-receive paths). Touched only from the
	// endpoint's own process context, so no lock is needed — and LIFO reuse
	// order is deterministic, unlike a sync.Pool.
	freeHandles []*RecvHandle
}

// NewEndpoint creates an endpoint for process addr, charging host and
// counting into ctrs, sending through tr.
func NewEndpoint(addr Addr, host machine.Host, ctrs *trace.Counters, tr Transport) *Endpoint {
	e := &Endpoint{addr: addr, host: host, ctrs: ctrs, tr: tr, det: host.Deterministic()}
	if !e.det {
		e.dtr, _ = tr.(DirectTransport)
	}
	return e
}

// Addr reports the process address of this endpoint.
func (e *Endpoint) Addr() Addr { return e.addr }

// Host reports the execution host this endpoint charges.
func (e *Endpoint) Host() machine.Host { return e.host }

// Counters reports the endpoint's event counters.
func (e *Endpoint) Counters() *trace.Counters { return e.ctrs }

// SetTracer attaches (or, with nil, detaches) a span tracer. Call before
// traffic flows; the endpoint does not synchronize the swap.
func (e *Endpoint) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// SetUnexpectedCap bounds the unexpected-message queue to cap entries; zero
// (the default) leaves it unbounded. Arrivals matching no posted receive
// while the queue is full are dropped and counted in
// Counters.UnexpectedDropped — under fault injection and retry layers a
// bounded queue turns buffer exhaustion into an ordinary countable drop.
func (e *Endpoint) SetUnexpectedCap(cap int) {
	e.mb.mu.Lock()
	defer e.mb.mu.Unlock()
	e.mb.unexpectedCap = cap
}

// MarkPeerDead declares peer failed: every posted receive pinned to it
// completes immediately with ErrPeerDead, and future pinned receives are
// born failed. Safe to call from any context (failure detectors run on
// transport goroutines or simulator events). Idempotent.
func (e *Endpoint) MarkPeerDead(peer Addr) {
	e.MarkPeerDeadAt(peer, e.host.Now())
}

// MarkPeerDeadAt is MarkPeerDead with an explicit failure instant stamped
// into the failed receives. The simulator's crash events use it: the fan-out
// runs at the kernel controller while shard clocks sit anywhere inside the
// conservative window, so the observer's host.Now() would make the failure
// timestamps — and the waiting-thread integral fed from them — depend on
// which kernel ran the machine.
func (e *Endpoint) MarkPeerDeadAt(peer Addr, at sim.Time) {
	e.deadMu.Lock()
	if e.dead[peer] {
		e.deadMu.Unlock()
		return
	}
	if e.dead == nil {
		e.dead = make(map[Addr]bool)
	}
	e.dead[peer] = true
	e.deadMu.Unlock()
	e.ctrs.PeersDead.Add(1)
	if failed := e.mb.failPeer(peer, at); failed > 0 {
		e.ctrs.PeerDeadRecvs.Add(uint64(failed))
	}
	e.host.Interrupt()
}

// MarkPeerAlive clears a peer's dead mark after its recovery (the rejoin
// handshake, or a transport detecting the peer's new incarnation), so
// pinned receives and retries reach it again. It reports whether the peer
// had been marked dead; recoveries are counted in Counters.PeersRecovered.
// Safe to call from any context. Idempotent.
func (e *Endpoint) MarkPeerAlive(peer Addr) bool {
	e.deadMu.Lock()
	was := e.dead[peer]
	if was {
		delete(e.dead, peer)
	}
	e.deadMu.Unlock()
	if was {
		e.ctrs.PeersRecovered.Add(1)
		e.host.Interrupt()
	}
	return was
}

// PeerDead reports whether peer has been declared dead.
func (e *Endpoint) PeerDead(peer Addr) bool {
	e.deadMu.Lock()
	defer e.deadMu.Unlock()
	return e.dead[peer]
}

// Send transmits data to process dst with the given destination context,
// tag, and sending-thread id. It is locally blocking (NX csend): the data
// is copied before return, so the caller may immediately reuse it.
func (e *Endpoint) Send(dst Addr, ctx, tag, srcThread int32, data []byte) {
	e.SendFlags(dst, ctx, tag, srcThread, 0, data)
}

// SendFlags is Send with delivery flags (FlagSync) in the header.
func (e *Endpoint) SendFlags(dst Addr, ctx, tag, srcThread, flags int32, data []byte) {
	var sendBegin sim.Time
	if e.tracer != nil {
		sendBegin = e.host.Now()
	}
	e.host.Charge(e.host.Model().SendOverhead)
	e.ctrs.Sends.Add(1)
	e.ctrs.BytesSent.Add(uint64(len(data)))
	hdr := Header{
		SrcPE:     e.addr.PE,
		SrcProc:   e.addr.Proc,
		SrcThread: srcThread,
		DstPE:     dst.PE,
		DstProc:   dst.Proc,
		Ctx:       ctx,
		Tag:       tag,
		Size:      int32(len(data)),
		Flags:     flags,
	}
	if e.dtr != nil && e.dtr.TryDeliverDirect(hdr, data) {
		// Zero-copy matched receive: the payload went straight from the
		// caller's buffer into the waiting thread's buffer — no pooled
		// Message was ever built. Real mode only (dtr is nil under a
		// deterministic host).
		if e.tracer != nil {
			e.tracer.Span(trace.SpanSend, e.addr.PE, srcThread, sendBegin, e.host.Now(), uint64(len(data)))
		}
		return
	}
	var msg *Message
	if e.det {
		// Simulated transports may hold a message indefinitely or re-deliver
		// it under fault-injected duplication, and pool reuse order is
		// scheduling-dependent: simulation always sends fresh messages.
		msg = &Message{Data: make([]byte, len(data))}
	} else {
		msg = GetPooledMessage(len(data))
	}
	copy(msg.Data, data)
	msg.Hdr = hdr
	msg.SentAt = e.host.Now()
	e.tr.Deliver(msg)
	if e.tracer != nil {
		e.tracer.Span(trace.SpanSend, e.addr.PE, srcThread, sendBegin, e.host.Now(), uint64(len(data)))
	}
}

// Irecv posts a nonblocking receive for a message matching spec, to be
// deposited into buf, and returns its completion handle. If a matching
// message already arrived, the handle is born complete; the copy out of the
// system buffer is charged (this is the extra copy a pre-posted receive
// avoids).
func (e *Endpoint) Irecv(spec MatchSpec, buf []byte) *RecvHandle {
	e.drainIngress() // a ring-resident arrival must be matchable, like any early arrival
	h := e.newHandle(spec, buf)
	if spec.SrcPE != Any && spec.SrcProc != Any &&
		e.PeerDead(Addr{PE: spec.SrcPE, Proc: spec.SrcProc}) {
		// The only process that could satisfy this receive is dead; unless a
		// matching message already arrived before the failure, the handle is
		// born failed rather than left to hang.
		if e.mb.post(h, e.host.Now()) {
			e.ctrs.RecvImmediate.Add(1)
			e.host.Charge(e.host.Model().CopyCost(h.n))
			return h
		}
		if e.mb.removeFailed(h, ErrPeerDead, StatusPeerDead, e.host.Now()) {
			e.ctrs.PeerDeadRecvs.Add(1)
		}
		return h
	}
	if e.mb.post(h, e.host.Now()) {
		e.ctrs.RecvImmediate.Add(1)
		e.host.Charge(e.host.Model().CopyCost(h.n))
	}
	return h
}

// Test is msgtest: it checks a handle for completion, charging the modeled
// hit or miss cost and counting the attempt. The first Test observing
// completion also charges the receive-completion overhead and counts the
// receive.
func (e *Endpoint) Test(h *RecvHandle) bool {
	e.drainIngress()
	e.ctrs.MsgTestCalls.Add(1)
	m := e.host.Model()
	if !h.done.Load() {
		e.ctrs.MsgTestFails.Add(1)
		e.host.Charge(m.MsgTestMiss)
		return false
	}
	e.host.Charge(m.MsgTestHit)
	e.observeCompletion(h)
	return true
}

// TestAny is msgtestany (MPI_TESTANY): one call that scans the outstanding
// handles and reports the index of a completed one, or -1. Its cost is a
// base charge plus a small per-request increment — far cheaper than testing
// each request individually, which is exactly the paper's Section 4.2
// hypothesis about the Scheduler-polls (WQ) algorithm under MPI.
func (e *Endpoint) TestAny(hs []*RecvHandle) int {
	e.drainIngress()
	e.ctrs.TestAnyCalls.Add(1)
	e.ctrs.TestAnyScanned.Add(uint64(len(hs)))
	m := e.host.Model()
	e.host.Charge(m.TestAnyBase + m.TestAnyPer.Scale(float64(len(hs))))
	for i, h := range hs {
		if h.done.Load() {
			e.observeCompletion(h)
			return i
		}
	}
	return -1
}

// Recv is the process-style blocking receive the paper's Table 2 baseline
// uses: it posts the receive and parks the processor until the message is
// deposited, with no polling (the underlying system's blocking crecv).
// It returns the payload length and the matched header.
func (e *Endpoint) Recv(spec MatchSpec, buf []byte) (int, Header, error) {
	h := e.Irecv(spec, buf)
	for !h.done.Load() {
		e.drainIngress()
		if h.done.Load() {
			break
		}
		e.host.Idle()
	}
	e.observeCompletion(h)
	n, hdr, err := h.n, h.hdr, h.err
	// The handle never left this function: recycle it (Reset clears the
	// fields, hence the copies above).
	e.ReleaseHandle(h)
	return n, hdr, err
}

// Wait parks the processor until the given handle completes, without
// polling. It is the blocking complement of Irecv (NX msgwait at process
// level).
func (e *Endpoint) Wait(h *RecvHandle) {
	for !h.done.Load() {
		e.drainIngress()
		if h.done.Load() {
			break
		}
		e.host.Idle()
	}
	e.observeCompletion(h)
}

// Probe reports whether an unexpected message matching spec has arrived,
// without consuming it.
func (e *Endpoint) Probe(spec MatchSpec) (Header, bool) {
	e.drainIngress()
	hdr, ok := e.mb.findUnexpected(spec)
	m := e.host.Model()
	if ok {
		e.host.Charge(m.MsgTestHit)
	} else {
		e.host.Charge(m.MsgTestMiss)
	}
	return hdr, ok
}

// TimeoutRecv withdraws a posted receive and fails it with ErrTimeout,
// atomically with respect to delivery. It reports false — and leaves the
// handle untouched — if the receive already completed (or was canceled),
// so callers that lose the race still observe the real completion.
func (e *Endpoint) TimeoutRecv(h *RecvHandle) bool {
	e.drainIngress() // an already-arrived message must win the race, as it always did
	if !e.mb.removeFailed(h, ErrTimeout, StatusTimedOut, e.host.Now()) {
		return false
	}
	e.ctrs.RecvTimeouts.Add(1)
	return true
}

// TestDeadline is Test with a deadline: past the deadline an incomplete
// receive is withdrawn and failed with ErrTimeout (completion still wins
// any race). It reports whether the handle is done — by delivery, failure,
// or timeout; the handle's Status distinguishes them.
func (e *Endpoint) TestDeadline(h *RecvHandle, deadline sim.Time) bool {
	if e.Test(h) {
		return true
	}
	if e.host.Now() < deadline {
		return false
	}
	if !e.TimeoutRecv(h) {
		// Lost the race: the receive completed while we were timing it out.
		return e.Test(h)
	}
	return true
}

// MsgwaitTimeout waits for the handle with a deadline, spin-testing rather
// than parking: each miss charges the modeled msgtest-miss cost, which
// advances virtual time under simulation and yields the processor on real
// hosts, so the loop always reaches the deadline even if the message never
// comes — the property a parked Idle wait cannot provide once messages can
// be dropped. It returns the handle's error: nil, ErrTruncated, ErrTimeout,
// or ErrPeerDead.
func (e *Endpoint) MsgwaitTimeout(h *RecvHandle, deadline sim.Time) error {
	for {
		if e.Test(h) {
			return h.err
		}
		if e.host.Now() >= deadline {
			if e.TimeoutRecv(h) {
				return ErrTimeout
			}
			if e.Test(h) {
				return h.err
			}
		}
	}
}

// CancelRecv withdraws a posted receive that has not completed, reporting
// whether it was still pending. Used when a thread blocked in a receive is
// canceled.
func (e *Endpoint) CancelRecv(h *RecvHandle) bool {
	e.drainIngress()
	return e.mb.remove(h)
}

// QueueDepths reports the current posted-receive and unexpected-message
// queue lengths, for tests and diagnostics.
func (e *Endpoint) QueueDepths() (posted, unexpected int) {
	e.drainIngress()
	return e.mb.depths()
}

// UnexpectedSnapshot visits every unexpected message in arrival order
// without consuming any — checkpoint capture records the pending queue
// through this. The visitor must copy data it keeps (the buffers belong to
// the mailbox) and must not re-enter the endpoint.
func (e *Endpoint) UnexpectedSnapshot(visit func(hdr Header, data []byte, sentAt sim.Time)) {
	e.drainIngress() // checkpoint capture must see ring-resident in-flight messages
	e.mb.snapshotUnexpected(visit)
}

// observeCompletion charges the one-time receive overhead and counts the
// receive, exactly once per handle.
func (e *Endpoint) observeCompletion(h *RecvHandle) {
	if h.observed {
		return
	}
	h.observed = true
	e.ctrs.Recvs.Add(1)
	e.host.Charge(e.host.Model().RecvOverhead)
	if e.tracer != nil {
		// Match-to-observe latency: the message completed the receive at
		// completedAt; only now did a thread look at the result.
		e.tracer.Span(trace.SpanMatch, e.addr.PE, trace.EndpointTID,
			h.completedAt, e.host.Now(), uint64(h.n))
	}
}

// Observe charges the one-time receive-completion overhead for a handle
// known to be done — the accounting a successful Test performs, exposed for
// polling policies that learn of completions from the drained ready-list
// rather than by testing.
func (e *Endpoint) Observe(h *RecvHandle) { e.observeCompletion(h) }

// TrackCompletions enables the mailbox's completion ready-list: from now on
// every handle this endpoint's mailbox completes (matched, failed, timed
// out) is queued for DrainCompletions. Enabled once by the Scheduler-polls
// (WQ) policies; there is no way to disable it.
func (e *Endpoint) TrackCompletions() { e.mb.track() }

// DrainCompletions appends all handles completed since the last drain to
// buf and returns it. Drained handles may include ones the caller never
// registered (receives completed by other paths); callers filter by their
// own bookkeeping. Must be called from the endpoint's process context.
func (e *Endpoint) DrainCompletions(buf []*RecvHandle) []*RecvHandle {
	e.drainIngress()
	return e.mb.drainCompleted(buf)
}

// ChargeTestAny performs the cost accounting of one TestAny call over n
// handles without scanning anything: the Scheduler-polls (WQAny) policy
// learns completions from the drained ready-list but must charge — and
// count — exactly what the msgtestany it replaces would have.
func (e *Endpoint) ChargeTestAny(n int) {
	e.ctrs.TestAnyCalls.Add(1)
	e.ctrs.TestAnyScanned.Add(uint64(n))
	m := e.host.Model()
	e.host.Charge(m.TestAnyBase + m.TestAnyPer.Scale(float64(n)))
}

// ChargeTestBatch performs the cost accounting of hits successful and
// misses unsuccessful msgtest calls in one bulk charge. Only valid on
// non-deterministic hosts: under simulation each charge is a yield point
// whose position affects what later tests observe, so the per-call Test
// sequence must be preserved there.
func (e *Endpoint) ChargeTestBatch(hits, misses int) {
	if check.Enabled && e.host.Deterministic() {
		check.Failf("comm: ChargeTestBatch on a deterministic host: batching charges reorders simulation yield points")
	}
	e.ctrs.MsgTestCalls.Add(uint64(hits + misses))
	e.ctrs.MsgTestFails.Add(uint64(misses))
	m := e.host.Model()
	e.host.Charge(m.MsgTestHit.Scale(float64(hits)) + m.MsgTestMiss.Scale(float64(misses)))
}

// newHandle draws a recycled receive handle, or allocates one.
func (e *Endpoint) newHandle(spec MatchSpec, buf []byte) *RecvHandle {
	if n := len(e.freeHandles); n > 0 {
		h := e.freeHandles[n-1]
		e.freeHandles[n-1] = nil
		e.freeHandles = e.freeHandles[:n-1]
		h.spec, h.buf = spec, buf
		return h
	}
	return &RecvHandle{spec: spec, buf: buf}
}

// ReleaseHandle returns a terminal (completed or canceled, no longer
// posted) handle for reuse by a later Irecv. Only callers that provably
// hold the last reference may release — the internal blocking-receive
// paths do; user-facing handles are never recycled.
func (e *Endpoint) ReleaseHandle(h *RecvHandle) {
	if check.Enabled {
		if h.entry != nil {
			check.Failf("comm: ReleaseHandle of a still-posted handle (spec %+v)", h.spec)
		}
		if !h.done.Load() && !h.canceled {
			check.Failf("comm: ReleaseHandle of a live handle (spec %+v)", h.spec)
		}
	}
	if h.notified {
		// A completion notification for this handle is still queued on the
		// mailbox ready-list; recycling it now could let a polling policy
		// mistake the stale notification for a fresh registration. Let the
		// garbage collector have it instead.
		return
	}
	h.Reset()
	e.freeHandles = append(e.freeHandles, h)
}

// DeliverLocal is the transport-side delivery entry point. Safe to call
// from any context (another process's goroutine, a simulator event).
//
// Deterministic endpoints match msg synchronously in the mailbox, count an
// early arrival when no receive was posted, and interrupt the host — the
// per-message path every simulated event stream was pinned against. Real
// endpoints instead push onto the MPSC ingress ring: no mailbox lock, and an
// interrupt only on the ring's empty-to-nonempty edge, so a burst costs one
// wakeup and (at the consumer) one lock acquisition instead of one per
// message. The owning process drains the ring from its polling and wait
// paths (drainIngress).
func (e *Endpoint) DeliverLocal(msg *Message) {
	if e.det || e.serial.Load() {
		h, dropped := e.mb.deliver(msg, e.host.Now())
		if dropped {
			e.ctrs.UnexpectedDropped.Add(1)
			return
		}
		if h == nil {
			e.ctrs.EarlyArrivals.Add(1)
		}
		e.host.Interrupt()
		return
	}
	if e.ing.push(msg) {
		e.host.Interrupt()
	}
}

// TryDeliverDirect attempts the zero-copy matched-receive fast path on this
// endpoint: if the mailbox lock is free, the ingress ring is empty (nothing
// to overtake), and a posted receive matches hdr, the payload is copied
// straight from data into the waiting thread's buffer and the host is
// interrupted. data is only read during the call. Safe to call from any
// context; always false on deterministic endpoints and under serial
// delivery.
func (e *Endpoint) TryDeliverDirect(hdr Header, data []byte) bool {
	if e.det || e.serial.Load() {
		return false
	}
	if !e.mb.tryDepositDirect(&e.ing, hdr, data, e.host.Now()) {
		return false
	}
	e.directDelivered.Add(1)
	if e.tracer != nil {
		now := e.host.Now()
		e.tracer.Span(trace.SpanDirectDeliver, e.addr.PE, trace.EndpointTID, now, now, uint64(len(data)))
	}
	e.host.Interrupt()
	return true
}

// drainIngress deposits the ingress ring's backlog into the mailbox in one
// batch. Called from the endpoint's own process context at every point that
// observes receive state (tests, waits, probes, snapshots); a no-op on
// deterministic endpoints and when the ring is empty, so polling hot paths
// pay a single atomic load.
func (e *Endpoint) drainIngress() {
	if e.det || e.ing.empty() {
		return
	}
	var drainBegin sim.Time
	if e.tracer != nil {
		drainBegin = e.host.Now()
	}
	matched, early, dropped := e.mb.depositBatch(&e.ing, e.host.Now())
	n := matched + early + dropped
	if n == 0 {
		return
	}
	e.ingressBatches.Add(1)
	e.ingressMessages.Add(uint64(n))
	if e.tracer != nil {
		e.tracer.Span(trace.SpanIngressDrain, e.addr.PE, trace.EndpointTID,
			drainBegin, e.host.Now(), uint64(n))
	}
	if early > 0 {
		e.ctrs.EarlyArrivals.Add(uint64(early))
	}
	if dropped > 0 {
		e.ctrs.UnexpectedDropped.Add(uint64(dropped))
	}
}

// SetSerialDelivery, when on, restores the seed's per-message delivery
// (mailbox lock + host wakeup per arrival) and disables the zero-copy direct
// path on this endpoint. It exists solely as the control arm for the
// batched-vs-serial benchmarks; flip it only while no traffic is in flight.
func (e *Endpoint) SetSerialDelivery(on bool) {
	e.drainIngress()
	e.serial.Store(on)
}

// IngressStats reports how many ring drains ran, how many messages they
// deposited, and how many sends completed via the zero-copy direct path.
// Always zero on deterministic endpoints.
func (e *Endpoint) IngressStats() (batches, messages, direct uint64) {
	return e.ingressBatches.Load(), e.ingressMessages.Load(), e.directDelivered.Load()
}
