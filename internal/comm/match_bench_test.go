package comm

import (
	"fmt"
	"testing"
)

// Hot-path benchmarks: the bucketed matching engine against the seed's
// linear scan, with many receives outstanding. Each op is one delivery that
// matches a posted receive plus the repost that keeps the population
// steady — the per-message work of a busy server process.

// matchEngine unifies Matcher and RefMatcher for the benchmark driver.
type matchEngine interface {
	DeliverB(msg *Message) *RecvHandle
	PostB(h *RecvHandle)
}

type bucketedEngine struct{ m *Matcher }

func (e bucketedEngine) DeliverB(msg *Message) *RecvHandle { h, _ := e.m.Deliver(msg, 0); return h }
func (e bucketedEngine) PostB(h *RecvHandle)               { e.m.Post(h, 0) }

type linearEngine struct{ m *RefMatcher }

func (e linearEngine) DeliverB(msg *Message) *RecvHandle { h, _ := e.m.Deliver(msg, 0); return h }
func (e linearEngine) PostB(h *RecvHandle)               { e.m.Post(h, 0) }

// benchMatch posts `outstanding` receives (one exact key each; every
// wildEvery-th is a tag-wildcard) and then measures match+repost cycles
// walking the key space.
func benchMatch(b *testing.B, eng matchEngine, outstanding, wildEvery int) {
	b.Helper()
	spec := func(i int) MatchSpec {
		s := MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: int32(i)}
		if wildEvery > 0 && i%wildEvery == 0 {
			s.SrcThread = Any
		}
		return s
	}
	for i := 0; i < outstanding; i++ {
		eng.PostB(NewRecvHandle(spec(i), make([]byte, 8)))
	}
	// One reusable message (always consumed — never buffered as unexpected)
	// and handle recycling via Reset keep allocation out of the measurement:
	// the op is pure match + repost.
	msg := &Message{Data: []byte("ping")}
	// Deterministic LCG key sequence: a cycling key would always match the
	// reference engine's list head and hide its O(n) scan.
	rng := uint32(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng = rng*1664525 + 1013904223
		k := int(rng % uint32(outstanding))
		msg.Hdr = Header{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: int32(k)}
		h := eng.DeliverB(msg)
		if h == nil {
			b.Fatal("delivery missed a posted receive")
		}
		buf := h.buf
		RearmHandle(h, spec(k), buf)
		eng.PostB(h)
	}
}

func BenchmarkHotPathMatchBucketed(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, wild := range []int{0, 16} {
			b.Run(benchMatchName(n, wild), func(b *testing.B) {
				benchMatch(b, bucketedEngine{NewMatcher()}, n, wild)
			})
		}
	}
}

func BenchmarkHotPathMatchLinear(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, wild := range []int{0, 16} {
			b.Run(benchMatchName(n, wild), func(b *testing.B) {
				benchMatch(b, linearEngine{&RefMatcher{}}, n, wild)
			})
		}
	}
}

func benchMatchName(n, wild int) string {
	if wild == 0 {
		return fmt.Sprintf("outstanding=%d", n)
	}
	return fmt.Sprintf("outstanding=%d/wild=%d", n, wild)
}
