// Package simnet is the simulated transport: messages traverse a modeled
// interconnect with latency NetBase + NetPerByte*size (the alpha+beta*n
// model fitted from the paper's Table 2) and are delivered as
// discrete-event callbacks at their arrival times. Because arrival time is
// always send time plus a positive latency, and the kernel executes events
// in global virtual-time order, no message can arrive in a receiver's past
// — the conservative-simulation property the runtime relies on.
//
// The same property makes the network the natural shard boundary for the
// parallel kernel: cross-process latency is at least Model.NetBase, so a
// delivery scheduled from one shard always lands at or beyond the parallel
// kernel's lookahead horizon. Deliveries are scheduled against the sending
// process's own shard kernel (Kernel.AtOn routes them cross-shard through
// the barrier), and order-sensitive fault-plane effects are journaled so
// they replay in the merged global order.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chant/internal/comm"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// Network is a simulated interconnect joining the endpoints of one
// simulation kernel (sequential or parallel).
type Network struct {
	kernel *sim.Kernel
	model  *machine.Model

	// mu guards eps and procs: under the parallel kernel, endpoints attach
	// concurrently from shard workers during the start window, and senders
	// read the maps while others attach. Map contents are identical across
	// runs; only the (unobserved) mutation interleaving varies.
	//chant:allow-nondet registry lock only; protects map access, never event order
	mu    sync.RWMutex
	eps   map[comm.Addr]*comm.Endpoint
	procs map[comm.Addr]*sim.Proc

	// MeshWidth, when positive, arranges processing elements in a 2D mesh
	// of that width (the Paragon's topology): pe i sits at (i mod width,
	// i div width), and each hop beyond the first adds Model.NetPerHop of
	// latency. Zero models a flat (distance-independent) network. Set it
	// before traffic flows.
	MeshWidth int

	// Faults, when non-nil, is the deterministic fault-injection plane the
	// wires consult on every cross-process message: drops, duplicates, delay
	// jitter, partitions, and crash/stall schedules all originate here. Set
	// it before traffic flows. Same-process (loopback) delivery is never
	// faulted — there is no wire to fail.
	Faults *faults.Plan

	delivered atomic.Uint64
}

// New creates a network delivering through kernel with model's latency.
// kernel may be nil when every attached host exposes its own simulation
// process (the parallel kernel's shards); it is the fallback scheduler for
// endpoints on hosts that do not.
func New(kernel *sim.Kernel, model *machine.Model) *Network {
	return &Network{
		kernel: kernel,
		model:  model,
		eps:    make(map[comm.Addr]*comm.Endpoint),
		procs:  make(map[comm.Addr]*sim.Proc),
	}
}

// Delivered counts messages handed to destination endpoints.
func (n *Network) Delivered() uint64 { return n.delivered.Load() }

// NewEndpoint attaches process addr to the network, executing on host and
// counting into ctrs. Attaching the same address twice panics: it would
// make delivery ambiguous. Hosts that expose their simulation process (the
// simulated host does) get deliveries scheduled against that process's own
// kernel, which is what routes traffic between shards of a parallel run.
func (n *Network) NewEndpoint(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("simnet: duplicate endpoint %v", addr))
	}
	n.eps[addr] = ep
	if hp, ok := host.(interface{ Proc() *sim.Proc }); ok {
		if p := hp.Proc(); p != nil {
			n.procs[addr] = p
		}
	}
	return ep
}

// Rebind replaces the endpoint for addr with a fresh one on host — the
// restart path of crash recovery. The old endpoint stays valid for messages
// already bound to it (simnet resolves the destination at send time, so
// pre-crash in-flight traffic lands in the dead incarnation and is lost,
// exactly like a real wire); sends decided after Rebind reach the new one.
// Unlike NewEndpoint, rebinding requires the address to exist already.
// Under the parallel kernel, call only from a controller callback: the
// registry swap must not race a window's sends.
func (n *Network) Rebind(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.eps[addr]; !ok {
		panic(fmt.Sprintf("simnet: rebind of unknown process %v", addr))
	}
	n.eps[addr] = ep
	delete(n.procs, addr)
	if hp, ok := host.(interface{ Proc() *sim.Proc }); ok {
		if p := hp.Proc(); p != nil {
			n.procs[addr] = p
		}
	}
	return ep
}

// Endpoint looks up the endpoint registered for addr, or nil.
func (n *Network) Endpoint(addr comm.Addr) *comm.Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[addr]
}

// Deliver implements comm.Transport: it schedules the message's arrival at
// its destination after the modeled wire latency. Sending to an address
// with no endpoint panics — simulated experiments construct their full
// topology up front, so this is always a harness bug.
func (n *Network) Deliver(msg *comm.Message) {
	src, dst := msg.Hdr.Src(), msg.Hdr.Dst()
	n.mu.RLock()
	ep := n.eps[dst]
	sp, dp := n.procs[src], n.procs[dst]
	srcEp := n.eps[src]
	n.mu.RUnlock()
	if ep == nil {
		panic(fmt.Sprintf("simnet: send to unknown process %v", dst))
	}
	// Schedule against the sending process's shard kernel; fall back to the
	// network-wide kernel for hosts with no simulation process.
	k := n.kernel
	if sp != nil {
		k = sp.Kernel()
	}
	if k == nil {
		panic(fmt.Sprintf("simnet: no kernel to deliver %v -> %v through", src, dst))
	}
	if dst == src {
		latency := n.model.Loopback + n.model.CopyCost(len(msg.Data))
		n.schedule(k, dp, latency, ep, msg)
		return
	}
	latency := n.model.MsgLatency(len(msg.Data))
	if hops := n.hops(msg.Hdr.SrcPE, dst.PE); hops > 1 {
		latency += n.model.NetPerHop.Scale(float64(hops - 1))
	}
	if n.Faults != nil {
		// Decide now (per-link RNG streams are only ever drawn from the
		// sending side, so draw order is deterministic per link), but
		// journal the event-stream records: the witness log is global and
		// order-sensitive, so it must be appended in merged event order.
		d, evs := n.Faults.DecideDeferred(k.Now(), src, dst, len(msg.Data))
		if len(evs) > 0 {
			plan := n.Faults
			k.Journal(func() { plan.Commit(evs) })
		}
		var ctrs *trace.Counters
		if srcEp != nil {
			ctrs = srcEp.Counters()
		}
		if d.Drop {
			if ctrs != nil {
				ctrs.FaultDrops.Add(1)
			}
			return
		}
		if d.Delay > 0 {
			if ctrs != nil {
				ctrs.FaultDelays.Add(1)
			}
			latency += d.Delay
		}
		if d.Duplicate {
			if ctrs != nil {
				ctrs.FaultDups.Add(1)
			}
			dup := &comm.Message{Hdr: msg.Hdr, Data: msg.Data, SentAt: msg.SentAt}
			n.schedule(k, dp, latency+d.DupDelay, ep, dup)
		}
	}
	n.schedule(k, dp, latency, ep, msg)
}

// schedule books one delivery at now+latency on the sending-side kernel k,
// routed to the destination's process (and thereby its shard) when known.
func (n *Network) schedule(k *sim.Kernel, dp *sim.Proc, latency sim.Duration, ep *comm.Endpoint, msg *comm.Message) {
	at := k.Now().Add(latency)
	fn := func() {
		n.delivered.Add(1)
		ep.DeliverLocal(msg)
	}
	if dp != nil {
		k.AtOn(dp, at, fn)
		return
	}
	k.At(at, fn)
}

// hops reports the Manhattan distance between two PEs on the configured
// mesh, or 1 for a flat network (and for same-PE, different-process pairs).
func (n *Network) hops(srcPE, dstPE int32) int {
	if n.MeshWidth <= 0 || srcPE == dstPE {
		return 1
	}
	sx, sy := int(srcPE)%n.MeshWidth, int(srcPE)/n.MeshWidth
	dx, dy := int(dstPE)%n.MeshWidth, int(dstPE)/n.MeshWidth
	d := abs(sx-dx) + abs(sy-dy)
	if d == 0 {
		return 1
	}
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
