// Package simnet is the simulated transport: messages traverse a modeled
// interconnect with latency NetBase + NetPerByte*size (the alpha+beta*n
// model fitted from the paper's Table 2) and are delivered as
// discrete-event callbacks at their arrival times. Because arrival time is
// always send time plus a positive latency, and the kernel executes events
// in global virtual-time order, no message can arrive in a receiver's past
// — the conservative-simulation property the runtime relies on.
package simnet

import (
	"fmt"

	"chant/internal/comm"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// Network is a simulated interconnect joining the endpoints of one
// simulation kernel.
type Network struct {
	kernel *sim.Kernel
	model  *machine.Model
	eps    map[comm.Addr]*comm.Endpoint

	// MeshWidth, when positive, arranges processing elements in a 2D mesh
	// of that width (the Paragon's topology): pe i sits at (i mod width,
	// i div width), and each hop beyond the first adds Model.NetPerHop of
	// latency. Zero models a flat (distance-independent) network. Set it
	// before traffic flows.
	MeshWidth int

	// Faults, when non-nil, is the deterministic fault-injection plane the
	// wires consult on every cross-process message: drops, duplicates, delay
	// jitter, partitions, and crash/stall schedules all originate here. Set
	// it before traffic flows. Same-process (loopback) delivery is never
	// faulted — there is no wire to fail.
	Faults *faults.Plan

	// Delivered counts messages handed to destination endpoints.
	Delivered uint64
}

// New creates a network delivering through kernel with model's latency.
func New(kernel *sim.Kernel, model *machine.Model) *Network {
	return &Network{
		kernel: kernel,
		model:  model,
		eps:    make(map[comm.Addr]*comm.Endpoint),
	}
}

// NewEndpoint attaches process addr to the network, executing on host and
// counting into ctrs. Attaching the same address twice panics: it would
// make delivery ambiguous.
func (n *Network) NewEndpoint(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("simnet: duplicate endpoint %v", addr))
	}
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.eps[addr] = ep
	return ep
}

// Endpoint looks up the endpoint registered for addr, or nil.
func (n *Network) Endpoint(addr comm.Addr) *comm.Endpoint { return n.eps[addr] }

// Deliver implements comm.Transport: it schedules the message's arrival at
// its destination after the modeled wire latency. Sending to an address
// with no endpoint panics — simulated experiments construct their full
// topology up front, so this is always a harness bug.
func (n *Network) Deliver(msg *comm.Message) {
	dst := msg.Hdr.Dst()
	ep := n.eps[dst]
	if ep == nil {
		panic(fmt.Sprintf("simnet: send to unknown process %v", dst))
	}
	var latency sim.Duration
	if dst == msg.Hdr.Src() {
		latency = n.model.Loopback + n.model.CopyCost(len(msg.Data))
	} else {
		latency = n.model.MsgLatency(len(msg.Data))
		if hops := n.hops(msg.Hdr.SrcPE, dst.PE); hops > 1 {
			latency += n.model.NetPerHop.Scale(float64(hops - 1))
		}
		if n.Faults != nil {
			d := n.Faults.Decide(n.kernel.Now(), msg.Hdr.Src(), dst, len(msg.Data))
			ctrs := n.srcCounters(msg.Hdr.Src())
			if d.Drop {
				if ctrs != nil {
					ctrs.FaultDrops.Add(1)
				}
				return
			}
			if d.Delay > 0 {
				if ctrs != nil {
					ctrs.FaultDelays.Add(1)
				}
				latency += d.Delay
			}
			if d.Duplicate {
				if ctrs != nil {
					ctrs.FaultDups.Add(1)
				}
				dup := &comm.Message{Hdr: msg.Hdr, Data: msg.Data, SentAt: msg.SentAt}
				n.kernel.After(latency+d.DupDelay, func() {
					n.Delivered++
					ep.DeliverLocal(dup)
				})
			}
		}
	}
	n.kernel.After(latency, func() {
		n.Delivered++
		ep.DeliverLocal(msg)
	})
}

// srcCounters reports the sending endpoint's counters (nil for a source not
// attached here), so injected faults are charged where they originate.
func (n *Network) srcCounters(src comm.Addr) *trace.Counters {
	if sep := n.eps[src]; sep != nil {
		return sep.Counters()
	}
	return nil
}

// hops reports the Manhattan distance between two PEs on the configured
// mesh, or 1 for a flat network (and for same-PE, different-process pairs).
func (n *Network) hops(srcPE, dstPE int32) int {
	if n.MeshWidth <= 0 || srcPE == dstPE {
		return 1
	}
	sx, sy := int(srcPE)%n.MeshWidth, int(srcPE)/n.MeshWidth
	dx, dy := int(dstPE)%n.MeshWidth, int(dstPE)/n.MeshWidth
	d := abs(sx-dx) + abs(sy-dy)
	if d == 0 {
		return 1
	}
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
