package simnet

import (
	"errors"
	"testing"

	"chant/internal/comm"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// rig builds a kernel, a network, and n endpoints, one PE process each.
// The returned start function spawns the per-PE bodies and runs the kernel.
type rig struct {
	k     *sim.Kernel
	model *machine.Model
	net   *Network
	eps   []*comm.Endpoint
	ctrs  []*trace.Counters
}

func newRig(t *testing.T, n int, model *machine.Model) (*rig, func(bodies ...func(ep *comm.Endpoint))) {
	t.Helper()
	r := &rig{k: sim.NewKernel(), model: model}
	r.net = New(r.k, model)
	start := func(bodies ...func(ep *comm.Endpoint)) {
		if len(bodies) != n {
			t.Fatalf("rig: %d bodies for %d endpoints", len(bodies), n)
		}
		for i, body := range bodies {
			i, body := i, body
			r.k.Spawn("pe", func(p *sim.Proc) {
				host := machine.NewSimHost(p, model)
				ctrs := &trace.Counters{}
				ep := r.net.NewEndpoint(comm.Addr{PE: int32(i), Proc: 0}, host, ctrs)
				r.eps = append(r.eps, ep)
				r.ctrs = append(r.ctrs, ctrs)
				body(ep)
			})
		}
		if err := r.k.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	return r, start
}

func TestSimnetLatencyModel(t *testing.T) {
	model := machine.Paragon1994()
	_, start := newRig(t, 2, model)
	const size = 1024
	var sentAt, gotAt sim.Time
	start(
		func(ep *comm.Endpoint) {
			sentAt = ep.Host().Now()
			ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 7, 0, make([]byte, size))
		},
		func(ep *comm.Endpoint) {
			buf := make([]byte, size)
			n, hdr, err := ep.Recv(comm.MatchAll, buf)
			if err != nil || n != size || hdr.Tag != 7 {
				t.Errorf("recv: n=%d tag=%d err=%v", n, hdr.Tag, err)
			}
			gotAt = ep.Host().Now()
		},
	)
	// Receiver observes the message at send-completion + wire latency,
	// plus its own receive overhead.
	want := sentAt.Add(model.SendOverhead + model.MsgLatency(size) + model.RecvOverhead)
	if gotAt != want {
		t.Fatalf("receive finished at %v, want %v", gotAt, want)
	}
}

func TestSimnetNonOvertaking(t *testing.T) {
	model := machine.Paragon1994()
	_, start := newRig(t, 2, model)
	const n = 20
	var order []byte
	start(
		func(ep *comm.Endpoint) {
			for i := 0; i < n; i++ {
				ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte{byte(i)})
			}
		},
		func(ep *comm.Endpoint) {
			for i := 0; i < n; i++ {
				buf := make([]byte, 1)
				ep.Recv(comm.MatchAll, buf)
				order = append(order, buf[0])
			}
		},
	)
	for i := 0; i < n; i++ {
		if order[i] != byte(i) {
			t.Fatalf("messages overtook: order=%v", order)
		}
	}
}

func TestSimnetBidirectionalExchange(t *testing.T) {
	model := machine.Paragon1994()
	r, start := newRig(t, 2, model)
	const rounds = 50
	body := func(peer int32) func(ep *comm.Endpoint) {
		return func(ep *comm.Endpoint) {
			buf := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				ep.Send(comm.Addr{PE: peer, Proc: 0}, 0, 1, 0, make([]byte, 64))
				ep.Recv(comm.MatchAll, buf)
			}
		}
	}
	start(body(1), body(0))
	for i, c := range r.ctrs {
		if c.Sends.Load() != rounds || c.Recvs.Load() != rounds {
			t.Fatalf("pe%d: sends=%d recvs=%d, want %d each",
				i, c.Sends.Load(), c.Recvs.Load(), rounds)
		}
	}
}

func TestSimnetLoopback(t *testing.T) {
	model := machine.Paragon1994()
	_, start := newRig(t, 1, model)
	var rtt sim.Duration
	start(func(ep *comm.Endpoint) {
		t0 := ep.Host().Now()
		ep.Send(comm.Addr{PE: 0, Proc: 0}, 0, 1, 0, []byte("self"))
		buf := make([]byte, 8)
		ep.Recv(comm.MatchAll, buf)
		rtt = ep.Host().Now().Sub(t0)
	})
	remote := model.MsgLatency(4)
	if rtt <= 0 || sim.Duration(rtt) >= remote {
		t.Fatalf("loopback took %v; want positive and below remote latency %v", rtt, remote)
	}
}

func TestSimnetIrecvBeforeArrivalAvoidsCopy(t *testing.T) {
	model := machine.Paragon1994()
	r, start := newRig(t, 2, model)
	start(
		func(ep *comm.Endpoint) {
			// Delay the send so the receiver's irecv is posted first.
			ep.Host().Charge(10 * sim.Millisecond)
			ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, make([]byte, 128))
		},
		func(ep *comm.Endpoint) {
			h := ep.Irecv(comm.MatchAll, make([]byte, 128))
			ep.Wait(h)
		},
	)
	recvCtrs := r.ctrs[1]
	if recvCtrs.EarlyArrivals.Load() != 0 {
		t.Fatal("pre-posted receive still counted an early arrival")
	}
	if recvCtrs.RecvImmediate.Load() != 0 {
		t.Fatal("pre-posted receive counted as immediate")
	}
}

func TestSimnetUnknownDestinationPanics(t *testing.T) {
	model := machine.Paragon1994()
	_, start := newRig(t, 1, model)
	start(func(ep *comm.Endpoint) {
		defer func() {
			if recover() == nil {
				t.Error("send to unregistered process did not panic")
			}
		}()
		ep.Send(comm.Addr{PE: 99, Proc: 0}, 0, 1, 0, []byte("x"))
	})
}

func TestSimnetDuplicateEndpointPanics(t *testing.T) {
	k := sim.NewKernel()
	model := machine.Paragon1994()
	net := New(k, model)
	k.Spawn("pe", func(p *sim.Proc) {
		host := machine.NewSimHost(p, model)
		net.NewEndpoint(comm.Addr{PE: 0, Proc: 0}, host, &trace.Counters{})
		defer func() {
			if recover() == nil {
				t.Error("duplicate endpoint did not panic")
			}
		}()
		net.NewEndpoint(comm.Addr{PE: 0, Proc: 0}, host, &trace.Counters{})
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestMeshHopLatency(t *testing.T) {
	model := machine.Paragon1994()
	// One-way delivery times on a 3x3 mesh: pe0 -> pe1 is one hop,
	// pe0 -> pe8 is four hops (corner to corner).
	measure := func(dstPE int32) sim.Duration {
		k := sim.NewKernel()
		net := New(k, model)
		net.MeshWidth = 3
		var arrival sim.Time
		var eps []*comm.Endpoint
		var procs []*sim.Proc
		for pe := int32(0); pe < 9; pe++ {
			pe := pe
			procs = append(procs, k.Spawn("pe", func(p *sim.Proc) {
				host := machine.NewSimHost(p, model)
				ep := net.NewEndpoint(comm.Addr{PE: pe, Proc: 0}, host, &trace.Counters{})
				eps = append(eps, ep)
				p.WaitSignal()
				switch pe {
				case 0:
					ep.Send(comm.Addr{PE: dstPE, Proc: 0}, 0, 1, 0, make([]byte, 64))
				case dstPE:
					buf := make([]byte, 64)
					ep.Recv(comm.MatchAll, buf)
					arrival = host.Now()
				}
			}))
		}
		k.At(0, func() {
			for _, p := range procs {
				p.Signal()
			}
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return arrival.Sub(0)
	}
	near := measure(1)
	far := measure(8)
	wantExtra := model.NetPerHop.Scale(3) // 4 hops vs 1 hop
	if got := far - near; got != wantExtra {
		t.Fatalf("corner-to-corner extra latency = %v, want %v", got, wantExtra)
	}
}

func TestMeshHopsFunction(t *testing.T) {
	n := &Network{MeshWidth: 4}
	cases := []struct {
		src, dst int32
		want     int
	}{
		{0, 0, 1},  // same PE: local fabric
		{0, 1, 1},  // adjacent X
		{0, 4, 1},  // adjacent Y
		{0, 5, 2},  // diagonal
		{0, 15, 6}, // corner to corner on 4x4
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := n.hops(c.src, c.dst); got != c.want {
			t.Errorf("hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	flat := &Network{}
	if flat.hops(0, 15) != 1 {
		t.Error("flat network should be distance-independent")
	}
}

func TestSimnetFaultPlanDropAndTimeout(t *testing.T) {
	model := machine.Paragon1994()
	r, start := newRig(t, 2, model)
	r.net.Faults = faults.New(faults.Config{Default: faults.LinkRates{DropProb: 1}}, 11)
	var err error
	start(
		func(ep *comm.Endpoint) {
			ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 7, 0, make([]byte, 64))
		},
		func(ep *comm.Endpoint) {
			h := ep.Irecv(comm.MatchAll, make([]byte, 64))
			err = ep.MsgwaitTimeout(h, ep.Host().Now().Add(50*sim.Millisecond))
		},
	)
	if !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("receive of a dropped message: %v, want ErrTimeout", err)
	}
	if got := r.ctrs[0].FaultDrops.Load(); got != 1 {
		t.Errorf("sender FaultDrops = %d, want 1", got)
	}
	if got := r.net.Faults.Stats().Drops; got != 1 {
		t.Errorf("plan Drops = %d, want 1", got)
	}
}

func TestSimnetFaultPlanDuplicates(t *testing.T) {
	model := machine.Paragon1994()
	r, start := newRig(t, 2, model)
	r.net.Faults = faults.New(faults.Config{
		Default: faults.LinkRates{DupProb: 1, DelayMax: 100 * sim.Microsecond},
	}, 11)
	var copies int
	start(
		func(ep *comm.Endpoint) {
			ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 7, 0, []byte("twin"))
		},
		func(ep *comm.Endpoint) {
			buf := make([]byte, 8)
			for i := 0; i < 2; i++ {
				h := ep.Irecv(comm.MatchAll, buf)
				if ep.MsgwaitTimeout(h, ep.Host().Now().Add(50*sim.Millisecond)) == nil {
					copies++
				}
			}
		},
	)
	if copies != 2 {
		t.Fatalf("received %d copies of a duplicated message, want 2", copies)
	}
	if got := r.ctrs[0].FaultDups.Load(); got != 1 {
		t.Errorf("sender FaultDups = %d, want 1", got)
	}
}

func TestSimnetFaultPlanPartition(t *testing.T) {
	model := machine.Paragon1994()
	r, start := newRig(t, 2, model)
	// The link is cut for the first 10ms of the run, then heals.
	r.net.Faults = faults.New(faults.Config{
		Cuts: []faults.Cut{{A: 0, B: 1, From: 0, To: sim.Time(10 * sim.Millisecond)}},
	}, 11)
	var gotLate bool
	start(
		func(ep *comm.Endpoint) {
			ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte("lost"))
			ep.Host().Charge(20 * sim.Millisecond)
			ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 2, 0, []byte("healed"))
		},
		func(ep *comm.Endpoint) {
			buf := make([]byte, 8)
			h := ep.Irecv(comm.MatchAll, buf)
			gotLate = ep.MsgwaitTimeout(h, ep.Host().Now().Add(sim.Second)) == nil && h.Header().Tag == 2
		},
	)
	if !gotLate {
		t.Fatal("message after the partition healed did not arrive (or the cut one leaked through)")
	}
	if got := r.net.Faults.Stats().PartitionDrops; got != 1 {
		t.Errorf("PartitionDrops = %d, want 1", got)
	}
}

// TestSimnetFaultDelayCharges checks injected delay jitter shows up as
// extra latency on the wire.
func TestSimnetFaultPlanDelay(t *testing.T) {
	model := machine.Paragon1994()
	const extra = 2 * sim.Millisecond
	measure := func(plan *faults.Plan) sim.Time {
		r, start := newRig(t, 2, model)
		r.net.Faults = plan
		var arrival sim.Time
		start(
			func(ep *comm.Endpoint) {
				ep.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, make([]byte, 64))
			},
			func(ep *comm.Endpoint) {
				buf := make([]byte, 64)
				ep.Recv(comm.MatchAll, buf)
				arrival = ep.Host().Now()
			},
		)
		return arrival
	}
	clean := measure(nil)
	delayed := measure(faults.New(faults.Config{
		Default: faults.LinkRates{DelayProb: 1, DelayMax: extra},
	}, 11))
	if delayed <= clean {
		t.Fatalf("delay injection did not slow delivery: clean %v, delayed %v", clean, delayed)
	}
	if delayed.Sub(clean) > extra {
		t.Fatalf("injected delay %v exceeds DelayMax %v", delayed.Sub(clean), extra)
	}
}
