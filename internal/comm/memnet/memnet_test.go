package memnet

import (
	"fmt"
	"sync"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/trace"
)

func newPair(t *testing.T) (*comm.Endpoint, *comm.Endpoint) {
	t.Helper()
	net := New()
	model := machine.Modern()
	a := net.NewEndpoint(comm.Addr{PE: 0, Proc: 0}, machine.NewRealHost(model), &trace.Counters{})
	b := net.NewEndpoint(comm.Addr{PE: 1, Proc: 0}, machine.NewRealHost(model), &trace.Counters{})
	return a, b
}

func TestMemnetBasicSendRecv(t *testing.T) {
	a, b := newPair(t)
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 32)
		n, hdr, err := b.Recv(comm.MatchAll, buf)
		if err != nil {
			t.Error(err)
		}
		done <- fmt.Sprintf("%s/tag%d", buf[:n], hdr.Tag)
	}()
	a.Send(comm.Addr{PE: 1, Proc: 0}, 0, 42, 0, []byte("hello"))
	if got := <-done; got != "hello/tag42" {
		t.Fatalf("got %q", got)
	}
}

func TestMemnetConcurrentTraffic(t *testing.T) {
	a, b := newPair(t)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			a.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte{byte(i)})
		}
	}()
	var sum int
	go func() {
		defer wg.Done()
		buf := make([]byte, 1)
		for i := 0; i < n; i++ {
			b.Recv(comm.MatchAll, buf)
			sum += int(buf[0])
		}
	}()
	wg.Wait()
	want := n * (n - 1) / 2 % 256 // bytes wrap, so compare mod-256 sums
	got := 0
	for i := 0; i < n; i++ {
		got += int(byte(i))
	}
	if sum != got {
		t.Fatalf("sum=%d want=%d", sum, want)
	}
	if b.Counters().Recvs.Load() != n {
		t.Fatalf("recv count = %d, want %d", b.Counters().Recvs.Load(), n)
	}
}

func TestMemnetBidirectionalPingPong(t *testing.T) {
	a, b := newPair(t)
	const rounds = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			a.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte("ping"))
			a.Recv(comm.MatchAll, buf)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			b.Recv(comm.MatchAll, buf)
			b.Send(comm.Addr{PE: 0, Proc: 0}, 0, 1, 0, []byte("pong"))
		}
	}()
	wg.Wait()
}

func TestMemnetUnknownDestinationPanics(t *testing.T) {
	a, _ := newPair(t)
	defer func() {
		if recover() == nil {
			t.Error("send to unknown process did not panic")
		}
	}()
	a.Send(comm.Addr{PE: 9, Proc: 9}, 0, 1, 0, []byte("x"))
}

func TestMemnetEndpointLookup(t *testing.T) {
	net := New()
	model := machine.Modern()
	ep := net.NewEndpoint(comm.Addr{PE: 2, Proc: 3}, machine.NewRealHost(model), &trace.Counters{})
	if net.Endpoint(comm.Addr{PE: 2, Proc: 3}) != ep {
		t.Fatal("lookup failed")
	}
	if net.Endpoint(comm.Addr{PE: 0, Proc: 0}) != nil {
		t.Fatal("lookup of unregistered address returned an endpoint")
	}
}
