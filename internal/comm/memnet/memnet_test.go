package memnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

func newPair(t *testing.T) (*comm.Endpoint, *comm.Endpoint) {
	t.Helper()
	net := New()
	model := machine.Modern()
	a := net.NewEndpoint(comm.Addr{PE: 0, Proc: 0}, machine.NewRealHost(model), &trace.Counters{})
	b := net.NewEndpoint(comm.Addr{PE: 1, Proc: 0}, machine.NewRealHost(model), &trace.Counters{})
	return a, b
}

func TestMemnetBasicSendRecv(t *testing.T) {
	a, b := newPair(t)
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 32)
		n, hdr, err := b.Recv(comm.MatchAll, buf)
		if err != nil {
			t.Error(err)
		}
		done <- fmt.Sprintf("%s/tag%d", buf[:n], hdr.Tag)
	}()
	a.Send(comm.Addr{PE: 1, Proc: 0}, 0, 42, 0, []byte("hello"))
	if got := <-done; got != "hello/tag42" {
		t.Fatalf("got %q", got)
	}
}

func TestMemnetConcurrentTraffic(t *testing.T) {
	a, b := newPair(t)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			a.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte{byte(i)})
		}
	}()
	var sum int
	go func() {
		defer wg.Done()
		buf := make([]byte, 1)
		for i := 0; i < n; i++ {
			b.Recv(comm.MatchAll, buf)
			sum += int(buf[0])
		}
	}()
	wg.Wait()
	want := n * (n - 1) / 2 % 256 // bytes wrap, so compare mod-256 sums
	got := 0
	for i := 0; i < n; i++ {
		got += int(byte(i))
	}
	if sum != got {
		t.Fatalf("sum=%d want=%d", sum, want)
	}
	if b.Counters().Recvs.Load() != n {
		t.Fatalf("recv count = %d, want %d", b.Counters().Recvs.Load(), n)
	}
}

func TestMemnetBidirectionalPingPong(t *testing.T) {
	a, b := newPair(t)
	const rounds = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			a.Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte("ping"))
			a.Recv(comm.MatchAll, buf)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			b.Recv(comm.MatchAll, buf)
			b.Send(comm.Addr{PE: 0, Proc: 0}, 0, 1, 0, []byte("pong"))
		}
	}()
	wg.Wait()
}

func TestMemnetUnknownDestinationPanics(t *testing.T) {
	a, _ := newPair(t)
	defer func() {
		if recover() == nil {
			t.Error("send to unknown process did not panic")
		}
	}()
	a.Send(comm.Addr{PE: 9, Proc: 9}, 0, 1, 0, []byte("x"))
}

// pinnedSpec matches anything from the given process only.
func pinnedSpec(src comm.Addr) comm.MatchSpec {
	return comm.MatchSpec{SrcPE: src.PE, SrcProc: src.Proc, SrcThread: comm.Any, Ctx: comm.Any, Tag: comm.Any}
}

// newPairNet is newPair but also exposing the network, for failure tests.
func newPairNet(t *testing.T) (*Network, *comm.Endpoint, *comm.Endpoint) {
	t.Helper()
	net := New()
	model := machine.Modern()
	a := net.NewEndpoint(comm.Addr{PE: 0, Proc: 0}, machine.NewRealHost(model), &trace.Counters{})
	b := net.NewEndpoint(comm.Addr{PE: 1, Proc: 0}, machine.NewRealHost(model), &trace.Counters{})
	return net, a, b
}

func TestMemnetClosePeerFailsPinnedRecvs(t *testing.T) {
	net, a, _ := newPairNet(t)
	peer := comm.Addr{PE: 1, Proc: 0}
	h := a.Irecv(pinnedSpec(peer), make([]byte, 8))
	net.ClosePeer(peer)
	if !a.Test(h) || !errors.Is(h.Err(), comm.ErrPeerDead) {
		t.Fatalf("posted pinned recv after ClosePeer: done=%v err=%v", h.Done(), h.Err())
	}
	if h.Status() != comm.StatusPeerDead {
		t.Errorf("status = %v, want %v", h.Status(), comm.StatusPeerDead)
	}
	if !a.PeerDead(peer) {
		t.Error("PeerDead not reported")
	}
	// A receive posted after the failure is born failed.
	h2 := a.Irecv(pinnedSpec(peer), nil)
	if !a.Test(h2) || !errors.Is(h2.Err(), comm.ErrPeerDead) {
		t.Errorf("new pinned recv: done=%v err=%v", h2.Done(), h2.Err())
	}
	// MsgwaitTimeout surfaces the death instead of waiting out the deadline.
	h3 := a.Irecv(pinnedSpec(peer), nil)
	if err := a.MsgwaitTimeout(h3, a.Host().Now().Add(sim.Second)); !errors.Is(err, comm.ErrPeerDead) {
		t.Errorf("MsgwaitTimeout on dead peer: %v", err)
	}
	// Sends to the dead peer are discarded and counted, not delivered.
	a.Send(peer, 0, 1, 0, []byte("x"))
	if got := a.Counters().FaultDrops.Load(); got == 0 {
		t.Error("send to dead peer not counted as a fault drop")
	}
	if got := a.Counters().PeersDead.Load(); got != 1 {
		t.Errorf("PeersDead = %d, want 1", got)
	}
}

func TestMemnetReopenPeerRevives(t *testing.T) {
	net, a, b := newPairNet(t)
	peer := comm.Addr{PE: 1, Proc: 0}
	net.ClosePeer(peer)
	if !a.PeerDead(peer) {
		t.Fatal("ClosePeer did not mark the peer dead")
	}
	// While closed, a pinned receive is born failed.
	h := a.Irecv(pinnedSpec(peer), make([]byte, 8))
	if !a.Test(h) || !errors.Is(h.Err(), comm.ErrPeerDead) {
		t.Fatalf("pinned recv against closed peer: done=%v err=%v", h.Done(), h.Err())
	}
	net.ReopenPeer(peer)
	if a.PeerDead(peer) {
		t.Fatal("ReopenPeer left the peer marked dead")
	}
	if got := a.Counters().PeersRecovered.Load(); got != 1 {
		t.Errorf("PeersRecovered = %d, want 1", got)
	}
	// Traffic flows again in both directions.
	buf := make([]byte, 16)
	h2 := a.Irecv(pinnedSpec(peer), buf)
	b.Send(comm.Addr{PE: 0, Proc: 0}, 0, 7, 0, []byte("back"))
	if err := a.MsgwaitTimeout(h2, a.Host().Now().Add(sim.Second)); err != nil {
		t.Fatalf("recv from reopened peer: %v", err)
	}
	if string(buf[:h2.Len()]) != "back" {
		t.Errorf("got %q", buf[:h2.Len()])
	}
	drops := a.Counters().FaultDrops.Load()
	a.Send(peer, 0, 1, 0, []byte("hello again"))
	if got := a.Counters().FaultDrops.Load(); got != drops {
		t.Error("send to reopened peer was still discarded")
	}
	// Reopening an already-open peer is a no-op.
	net.ReopenPeer(peer)
	if got := a.Counters().PeersRecovered.Load(); got != 1 {
		t.Errorf("PeersRecovered after double reopen = %d, want 1", got)
	}
}

func TestMemnetMsgwaitTimeout(t *testing.T) {
	net, a, b := newPairNet(t)
	h := a.Irecv(pinnedSpec(comm.Addr{PE: 1, Proc: 0}), make([]byte, 8))
	err := a.MsgwaitTimeout(h, a.Host().Now().Add(20*sim.Millisecond))
	if !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("MsgwaitTimeout = %v, want ErrTimeout", err)
	}
	if h.Status() != comm.StatusTimedOut {
		t.Errorf("status = %v, want %v", h.Status(), comm.StatusTimedOut)
	}
	if got := a.Counters().RecvTimeouts.Load(); got != 1 {
		t.Errorf("RecvTimeouts = %d, want 1", got)
	}
	// A message that already arrived still wins over peer death: buffered
	// data outlives its sender.
	b.Send(comm.Addr{PE: 0, Proc: 0}, 0, 3, 0, []byte("last words"))
	net.ClosePeer(comm.Addr{PE: 1, Proc: 0})
	buf := make([]byte, 16)
	h2 := a.Irecv(pinnedSpec(comm.Addr{PE: 1, Proc: 0}), buf)
	if err := a.MsgwaitTimeout(h2, a.Host().Now().Add(sim.Second)); err != nil {
		t.Fatalf("buffered message lost to peer death: %v", err)
	}
	if string(buf[:h2.Len()]) != "last words" {
		t.Errorf("got %q", buf[:h2.Len()])
	}
}

func TestMemnetEndpointLookup(t *testing.T) {
	net := New()
	model := machine.Modern()
	ep := net.NewEndpoint(comm.Addr{PE: 2, Proc: 3}, machine.NewRealHost(model), &trace.Counters{})
	if net.Endpoint(comm.Addr{PE: 2, Proc: 3}) != ep {
		t.Fatal("lookup failed")
	}
	if net.Endpoint(comm.Addr{PE: 0, Proc: 0}) != nil {
		t.Fatal("lookup of unregistered address returned an endpoint")
	}
}
