// Package memnet is the in-memory transport for real-time, single-OS-process
// runs: messages are delivered synchronously from the sender's goroutine
// into the destination endpoint's mailbox. It provides the same interface
// and matching semantics as the simulated and TCP transports, so programs
// written against the Chant API run unchanged in all three.
package memnet

import (
	"fmt"
	"sort"
	"sync"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/trace"
)

// Network is an in-memory interconnect between processes hosted in one Go
// program. Unlike simnet, endpoints may be registered concurrently and
// delivery happens immediately (the wall clock is the only latency).
type Network struct {
	mu     sync.RWMutex
	eps    map[comm.Addr]*comm.Endpoint
	closed map[comm.Addr]bool
}

// New creates an empty in-memory network.
func New() *Network {
	return &Network{eps: make(map[comm.Addr]*comm.Endpoint)}
}

// NewEndpoint attaches process addr to the network.
func (n *Network) NewEndpoint(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("memnet: duplicate endpoint %v", addr))
	}
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.eps[addr] = ep
	return ep
}

// Endpoint looks up the endpoint registered for addr, or nil.
func (n *Network) Endpoint(addr comm.Addr) *comm.Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[addr]
}

// ClosePeer declares process addr failed: its messages stop flowing (sends
// to and from it are silently discarded) and every other endpoint marks it
// dead, failing receives pinned to it. This models an abruptly-killed OS
// process for the in-memory machine. Idempotent.
func (n *Network) ClosePeer(addr comm.Addr) {
	n.mu.Lock()
	if n.closed[addr] {
		n.mu.Unlock()
		return
	}
	if n.closed == nil {
		n.closed = make(map[comm.Addr]bool)
	}
	n.closed[addr] = true
	others := make([]*comm.Endpoint, 0, len(n.eps))
	for a, ep := range n.eps {
		if a != addr {
			others = append(others, ep)
		}
	}
	n.mu.Unlock()
	// Notify survivors in address order so failure fan-out is deterministic.
	sort.Slice(others, func(i, j int) bool {
		ai, aj := others[i].Addr(), others[j].Addr()
		if ai.PE != aj.PE {
			return ai.PE < aj.PE
		}
		return ai.Proc < aj.Proc
	})
	for _, ep := range others {
		ep.MarkPeerDead(addr)
	}
}

// ReopenPeer reverses ClosePeer once addr's process has restarted: its
// messages flow again and every other endpoint clears its dead mark for it
// (the rejoin handshake above re-synchronizes protocol state). Idempotent.
func (n *Network) ReopenPeer(addr comm.Addr) {
	n.mu.Lock()
	if !n.closed[addr] {
		n.mu.Unlock()
		return
	}
	delete(n.closed, addr)
	others := make([]*comm.Endpoint, 0, len(n.eps))
	for a, ep := range n.eps {
		if a != addr {
			others = append(others, ep)
		}
	}
	n.mu.Unlock()
	// Notify survivors in address order so recovery fan-out is deterministic.
	sort.Slice(others, func(i, j int) bool {
		ai, aj := others[i].Addr(), others[j].Addr()
		if ai.PE != aj.PE {
			return ai.PE < aj.PE
		}
		return ai.Proc < aj.Proc
	})
	for _, ep := range others {
		ep.MarkPeerAlive(addr)
	}
}

// peerClosed reports whether addr has been closed.
func (n *Network) peerClosed(addr comm.Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.closed[addr]
}

// Deliver implements comm.Transport with immediate synchronous delivery.
// Messages to or from a closed peer are discarded: a dead process neither
// sends nor receives.
func (n *Network) Deliver(msg *comm.Message) {
	if n.peerClosed(msg.Hdr.Dst()) || n.peerClosed(msg.Hdr.Src()) {
		if sep := n.Endpoint(msg.Hdr.Src()); sep != nil {
			sep.Counters().FaultDrops.Add(1)
		}
		comm.ReleaseMessage(msg)
		return
	}
	ep := n.Endpoint(msg.Hdr.Dst())
	if ep == nil {
		panic(fmt.Sprintf("memnet: send to unknown process %v", msg.Hdr.Dst()))
	}
	ep.DeliverLocal(msg)
}

// TryDeliverDirect implements comm.DirectTransport: every memnet destination
// is reachable synchronously from the sender's goroutine, so the zero-copy
// matched-receive fast path is offered whenever both peers are alive. A
// false return (peer closed, unknown destination, lock contended, no posted
// match) sends the caller down the ordinary Deliver path, which also owns
// all fault accounting.
func (n *Network) TryDeliverDirect(hdr comm.Header, data []byte) bool {
	if n.peerClosed(hdr.Dst()) || n.peerClosed(hdr.Src()) {
		return false
	}
	ep := n.Endpoint(hdr.Dst())
	return ep != nil && ep.TryDeliverDirect(hdr, data)
}
