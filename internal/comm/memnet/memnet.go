// Package memnet is the in-memory transport for real-time, single-OS-process
// runs: messages are delivered synchronously from the sender's goroutine
// into the destination endpoint's mailbox. It provides the same interface
// and matching semantics as the simulated and TCP transports, so programs
// written against the Chant API run unchanged in all three.
package memnet

import (
	"fmt"
	"sync"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/trace"
)

// Network is an in-memory interconnect between processes hosted in one Go
// program. Unlike simnet, endpoints may be registered concurrently and
// delivery happens immediately (the wall clock is the only latency).
type Network struct {
	mu  sync.RWMutex
	eps map[comm.Addr]*comm.Endpoint
}

// New creates an empty in-memory network.
func New() *Network {
	return &Network{eps: make(map[comm.Addr]*comm.Endpoint)}
}

// NewEndpoint attaches process addr to the network.
func (n *Network) NewEndpoint(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("memnet: duplicate endpoint %v", addr))
	}
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.eps[addr] = ep
	return ep
}

// Endpoint looks up the endpoint registered for addr, or nil.
func (n *Network) Endpoint(addr comm.Addr) *comm.Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[addr]
}

// Deliver implements comm.Transport with immediate synchronous delivery.
func (n *Network) Deliver(msg *comm.Message) {
	ep := n.Endpoint(msg.Hdr.Dst())
	if ep == nil {
		panic(fmt.Sprintf("memnet: send to unknown process %v", msg.Hdr.Dst()))
	}
	ep.DeliverLocal(msg)
}
