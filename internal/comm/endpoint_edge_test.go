package comm

import (
	"testing"

	"chant/internal/trace"
)

// Edge cases for the endpoint beyond the basic cost-accounting tests.

func TestWaitOnAlreadyCompleteHandle(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	ep.DeliverLocal(&Message{Hdr: Header{Size: 1}, Data: []byte("x")})
	h := ep.Irecv(MatchAll, make([]byte, 4))
	if !h.Done() {
		t.Fatal("handle not born complete")
	}
	ep.Wait(h) // must not call Idle (fakeHost panics on Idle)
	if ctrs.Recvs.Load() != 1 {
		t.Fatal("completion not observed")
	}
}

func TestTestAnyEmptyList(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	if got := ep.TestAny(nil); got != -1 {
		t.Fatalf("TestAny(nil) = %d", got)
	}
	if got := ep.TestAny([]*RecvHandle{}); got != -1 {
		t.Fatalf("TestAny(empty) = %d", got)
	}
}

func TestTestAnyReturnsFirstCompleted(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	h1 := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: 1}, make([]byte, 4))
	h2 := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: 2}, make([]byte, 4))
	h3 := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: 3}, make([]byte, 4))
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 2, Size: 1}, Data: []byte("b")})
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 3, Size: 1}, Data: []byte("c")})
	if got := ep.TestAny([]*RecvHandle{h1, h2, h3}); got != 1 {
		t.Fatalf("TestAny = %d, want 1 (first completed in list order)", got)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	h := ep.Irecv(MatchAll, nil)
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 1}, Data: nil})
	if !h.Done() || h.Len() != 0 || h.Err() != nil {
		t.Fatalf("zero-length delivery: done=%v n=%d err=%v", h.Done(), h.Len(), h.Err())
	}
}

func TestTruncationOnImmediatePath(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	ep.DeliverLocal(&Message{Hdr: Header{Size: 6}, Data: []byte("toobig")})
	h := ep.Irecv(MatchAll, make([]byte, 3))
	if h.Err() != ErrTruncated || h.Len() != 3 {
		t.Fatalf("immediate truncation: n=%d err=%v", h.Len(), h.Err())
	}
}

func TestWildcardRecvPreservesArrivalOrder(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	// Messages from three different sources arrive, then a wildcard
	// receive drains them: FIFO across sources.
	for i := int32(0); i < 3; i++ {
		ep.DeliverLocal(&Message{Hdr: Header{SrcPE: i, Tag: 1, Size: 1}, Data: []byte{byte(i)}})
	}
	for i := int32(0); i < 3; i++ {
		buf := make([]byte, 1)
		h := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: 1}, buf)
		if !h.Done() || h.Header().SrcPE != i {
			t.Fatalf("arrival order broken at %d: src=%d", i, h.Header().SrcPE)
		}
	}
}

func TestCancelCompletedRecvIsNoop(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	h := ep.Irecv(MatchAll, make([]byte, 4))
	ep.DeliverLocal(&Message{Hdr: Header{Size: 1}, Data: []byte("x")})
	if ep.CancelRecv(h) {
		t.Fatal("cancel of completed receive reported pending")
	}
	if h.Canceled() {
		t.Fatal("completed handle marked canceled")
	}
}

func TestProbeDoesNotSeePosted(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	// Probe inspects unexpected messages only: a message consumed by a
	// posted receive never shows up.
	ep.Irecv(MatchAll, make([]byte, 4))
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 5, Size: 1}, Data: []byte("x")})
	if _, ok := ep.Probe(MatchAll); ok {
		t.Fatal("probe matched a message already delivered to a posted receive")
	}
}

func TestSelectiveRecvLeavesOthersBuffered(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 1, Size: 1}, Data: []byte("a")})
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 2, Size: 1}, Data: []byte("b")})
	h := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, SrcThread: Any, Ctx: Any, Tag: 2}, make([]byte, 4))
	if !h.Done() || h.Header().Tag != 2 {
		t.Fatal("selective receive failed")
	}
	if _, unexpected := ep.QueueDepths(); unexpected != 1 {
		t.Fatalf("other message lost: %d buffered", unexpected)
	}
}
