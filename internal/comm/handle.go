package comm

import (
	"sync/atomic"

	"chant/internal/sim"
)

// RecvHandle is the completion handle returned by a nonblocking receive,
// analogous to the handle of NX irecv / MPI_IRECV. The handle becomes done
// when a matching message has been deposited into the user buffer; Test,
// TestAny, and the blocking wait paths observe completion through it.
type RecvHandle struct {
	spec MatchSpec
	buf  []byte

	done atomic.Bool

	// Completion results; written before done is set, valid after done
	// observes true.
	n           int
	hdr         Header
	err         error
	status      Status
	completedAt sim.Time

	// observed records that a completing call already charged the receive
	// overhead and counted the receive, so completion is accounted once no
	// matter how many tests follow.
	observed bool

	// canceled marks a handle removed from its mailbox before completion.
	canceled bool

	// acked latches the synchronous-send acknowledgement so it is sent at
	// most once no matter how many calls observe completion.
	acked bool

	// entry is the handle's node in its mailbox's posted-receive index while
	// posted; nil otherwise. Guarded by the mailbox lock.
	entry *postNode

	// notified marks a completion queued on the mailbox's ready-list and not
	// yet drained. Such a handle must not be recycled: a polling policy
	// would later drain the stale notification and could confuse it with a
	// fresh registration of the reused handle. Written under the mailbox
	// lock before done is set; read by ReleaseHandle after done (endpoint
	// context), cleared by the drain (also endpoint context).
	notified bool
}

// Reset clears the handle for reuse via the endpoint's handle pool. The
// handle must be terminal: completed or canceled, and no longer posted.
func (h *RecvHandle) Reset() {
	h.spec = MatchSpec{}
	h.buf = nil
	h.done.Store(false)
	h.n = 0
	h.hdr = Header{}
	h.err = nil
	h.status = StatusPending
	h.completedAt = 0
	h.observed = false
	h.canceled = false
	h.acked = false
	h.entry = nil
	h.notified = false
}

// NeedsSyncAck reports (and latches) whether this completed receive
// matched a synchronous send that has not yet been acknowledged. The first
// caller gets true and must send the ack; later callers get false.
func (h *RecvHandle) NeedsSyncAck() bool {
	if !h.done.Load() || h.hdr.Flags&FlagSync == 0 || h.acked {
		return false
	}
	h.acked = true
	return true
}

// Spec reports the match specification the receive was posted with.
func (h *RecvHandle) Spec() MatchSpec { return h.spec }

// Done reports whether the receive has completed. It performs no cost
// accounting; use Endpoint.Test for a paper-faithful msgtest.
func (h *RecvHandle) Done() bool { return h.done.Load() }

// Len reports the number of payload bytes deposited. Valid once Done.
func (h *RecvHandle) Len() int { return h.n }

// Header reports the header of the matched message. Valid once Done.
func (h *RecvHandle) Header() Header { return h.hdr }

// Err reports a delivery error such as ErrTruncated, ErrTimeout, or
// ErrPeerDead. Valid once Done.
func (h *RecvHandle) Err() error { return h.err }

// Status reports how the receive completed. StatusPending until Done.
func (h *RecvHandle) Status() Status {
	if !h.done.Load() {
		return StatusPending
	}
	return h.status
}

// CompletedAt reports the virtual time at which the message was deposited.
// Valid once Done.
func (h *RecvHandle) CompletedAt() sim.Time { return h.completedAt }

// Canceled reports whether the receive was canceled before completing.
func (h *RecvHandle) Canceled() bool { return h.canceled }

// complete deposits msg into the handle's buffer and marks it done.
// The caller must hold the owning mailbox's lock.
func (h *RecvHandle) complete(msg *Message, at sim.Time) {
	h.completeDirect(msg.Hdr, msg.Data, at)
}

// completeDirect deposits a payload given as a raw header+bytes pair — the
// zero-copy fast path hands the sender's own buffer here, so no Message is
// ever materialized. data is only read during the call. The caller must hold
// the owning mailbox's lock.
func (h *RecvHandle) completeDirect(hdr Header, data []byte, at sim.Time) {
	h.n = copy(h.buf, data)
	if len(data) > len(h.buf) {
		h.err = ErrTruncated
	}
	h.hdr = hdr
	h.status = StatusDelivered
	h.completedAt = at
	h.done.Store(true)
}

// fail completes the handle unsuccessfully: no payload, the given error and
// status. The handle is pre-observed so failed receives never charge receive
// overhead or count as completed receives. The caller must hold the owning
// mailbox's lock (or own the handle exclusively, as Irecv does for handles
// born failed).
func (h *RecvHandle) fail(err error, status Status, at sim.Time) {
	h.err = err
	h.status = status
	h.completedAt = at
	h.observed = true
	h.done.Store(true)
}
