package comm

import "sync/atomic"

// ingress is the real-mode MPSC ingress ring of one endpoint: transport-side
// producer goroutines (memnet senders, tcpnet reader goroutines) enqueue
// arriving messages here without touching the mailbox's match lock, and the
// receiving process drains the whole backlog in one batch under a single
// lock acquisition. Producers pay one CAS per message; the consumer pays one
// atomic swap per batch — the per-message lock handoff and wakeup that
// dominated the old delivery path are gone.
//
// The structure is an intrusive Treiber stack over Message.next: push links
// the message in LIFO order, and take reverses the chain so the consumer
// deposits in arrival (FIFO) order, preserving the mailbox's per-pair
// non-overtaking guarantee. Only real-mode endpoints use it; deterministic
// (simulated) hosts keep the synchronous delivery path, so no simulated
// event stream can observe the ring.
type ingress struct {
	head atomic.Pointer[Message]
}

// push enqueues msg and reports whether the ring was empty — the
// empty-to-nonempty transition is the producer's cue to interrupt the
// consumer's host (later pushes ride the already-pending wakeup). Safe from
// any goroutine.
func (q *ingress) push(msg *Message) (wasEmpty bool) {
	for {
		old := q.head.Load()
		msg.next = old
		if q.head.CompareAndSwap(old, msg) {
			return old == nil
		}
	}
}

// take detaches the entire backlog in one atomic swap and returns it as a
// FIFO chain linked through Message.next (oldest first), or nil. The caller
// owns every returned message. Must run under the consuming mailbox's lock:
// the zero-copy direct path trusts that an empty ring observed under that
// lock means no taken-but-undeposited message can be in flight.
func (q *ingress) take() *Message {
	top := q.head.Swap(nil)
	var fifo *Message
	for top != nil {
		next := top.next
		top.next = fifo
		fifo = top
		top = next
	}
	return fifo
}

// empty reports whether the ring currently holds no messages.
func (q *ingress) empty() bool { return q.head.Load() == nil }
