package comm

import (
	"testing"

	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// fakeHost is a manual-clock Host for unit-testing endpoint cost accounting
// without a simulation kernel.
type fakeHost struct {
	model      *machine.Model
	now        sim.Time
	charged    sim.Duration
	interrupts int
}

func newFakeHost() *fakeHost { return &fakeHost{model: machine.Paragon1994()} }

func (h *fakeHost) Now() sim.Time { return h.now }
func (h *fakeHost) Charge(d sim.Duration) {
	h.charged += d
	h.now = h.now.Add(d)
}
func (h *fakeHost) Compute(units int64) { h.Charge(sim.Duration(units) * h.model.ComputeUnit) }
func (h *fakeHost) Idle()               { panic("fakeHost cannot idle") }
func (h *fakeHost) Interrupt()          { h.interrupts++ }
func (h *fakeHost) Deterministic() bool { return true }
func (h *fakeHost) Model() *machine.Model {
	return h.model
}

// captureTransport records sent messages instead of delivering them.
type captureTransport struct{ msgs []*Message }

func (tr *captureTransport) Deliver(m *Message) { tr.msgs = append(tr.msgs, m) }

// loopTransport delivers every message straight back to one endpoint.
type loopTransport struct{ ep *Endpoint }

func (tr *loopTransport) Deliver(m *Message) { tr.ep.DeliverLocal(m) }

func TestSendChargesAndCopies(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	tr := &captureTransport{}
	ep := NewEndpoint(Addr{PE: 0, Proc: 0}, host, &ctrs, tr)

	buf := []byte("payload")
	ep.Send(Addr{PE: 1, Proc: 0}, 5, 9, 2, buf)
	if host.charged != host.model.SendOverhead {
		t.Fatalf("charged %v, want SendOverhead %v", host.charged, host.model.SendOverhead)
	}
	if ctrs.Sends.Load() != 1 || ctrs.BytesSent.Load() != 7 {
		t.Fatalf("send counters wrong: %d sends, %d bytes", ctrs.Sends.Load(), ctrs.BytesSent.Load())
	}
	m := tr.msgs[0]
	if m.Hdr.DstPE != 1 || m.Hdr.Ctx != 5 || m.Hdr.Tag != 9 || m.Hdr.SrcThread != 2 || m.Hdr.Size != 7 {
		t.Fatalf("header wrong: %+v", m.Hdr)
	}
	// Locally-blocking semantics: mutating the caller's buffer afterwards
	// must not corrupt the in-flight message.
	buf[0] = 'X'
	if string(m.Data) != "payload" {
		t.Fatalf("in-flight data aliased the sender buffer: %q", m.Data)
	}
}

func TestTestMissAndHitCosts(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})
	lt := &loopTransport{ep: ep}

	h := ep.Irecv(MatchAll, make([]byte, 8))
	host.charged = 0
	if ep.Test(h) {
		t.Fatal("test of pending receive reported done")
	}
	if host.charged != host.model.MsgTestMiss {
		t.Fatalf("miss charged %v, want %v", host.charged, host.model.MsgTestMiss)
	}
	if ctrs.MsgTestCalls.Load() != 1 || ctrs.MsgTestFails.Load() != 1 {
		t.Fatal("miss not counted")
	}

	lt.Deliver(&Message{Hdr: Header{Size: 2}, Data: []byte("ok")})
	if host.interrupts != 1 {
		t.Fatal("delivery did not interrupt the host")
	}
	host.charged = 0
	if !ep.Test(h) {
		t.Fatal("test after delivery reported pending")
	}
	want := host.model.MsgTestHit + host.model.RecvOverhead
	if host.charged != want {
		t.Fatalf("hit charged %v, want %v", host.charged, want)
	}
	if ctrs.Recvs.Load() != 1 {
		t.Fatal("completed receive not counted")
	}

	// Completion overhead must be charged only once.
	host.charged = 0
	ep.Test(h)
	if host.charged != host.model.MsgTestHit {
		t.Fatalf("second test recharged completion: %v", host.charged)
	}
	if ctrs.Recvs.Load() != 1 {
		t.Fatal("receive double-counted")
	}
}

func TestEarlyArrivalChargesCopy(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})

	payload := make([]byte, 1000)
	ep.DeliverLocal(&Message{Hdr: Header{Size: 1000}, Data: payload})
	if ctrs.EarlyArrivals.Load() != 1 {
		t.Fatal("early arrival not counted")
	}
	host.charged = 0
	h := ep.Irecv(MatchAll, make([]byte, 1000))
	if !h.Done() {
		t.Fatal("post against buffered message should complete immediately")
	}
	if ctrs.RecvImmediate.Load() != 1 {
		t.Fatal("immediate receive not counted")
	}
	if host.charged != host.model.CopyCost(1000) {
		t.Fatalf("system-buffer copy charged %v, want %v", host.charged, host.model.CopyCost(1000))
	}
}

func TestTestAny(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})

	h1 := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, Ctx: Any, Tag: 1}, make([]byte, 8))
	h2 := ep.Irecv(MatchSpec{SrcPE: Any, SrcProc: Any, Ctx: Any, Tag: 2}, make([]byte, 8))
	hs := []*RecvHandle{h1, h2}

	host.charged = 0
	if got := ep.TestAny(hs); got != -1 {
		t.Fatalf("TestAny with nothing arrived = %d, want -1", got)
	}
	want := host.model.TestAnyBase + host.model.TestAnyPer.Scale(2)
	if host.charged != want {
		t.Fatalf("TestAny charged %v, want %v", host.charged, want)
	}
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 2, Size: 1}, Data: []byte("x")})
	if got := ep.TestAny(hs); got != 1 {
		t.Fatalf("TestAny = %d, want 1", got)
	}
	if ctrs.TestAnyCalls.Load() != 2 || ctrs.TestAnyScanned.Load() != 4 {
		t.Fatalf("testany counters wrong: %d calls %d scanned",
			ctrs.TestAnyCalls.Load(), ctrs.TestAnyScanned.Load())
	}
}

func TestProbe(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})

	if _, ok := ep.Probe(MatchAll); ok {
		t.Fatal("probe on empty endpoint matched")
	}
	ep.DeliverLocal(&Message{Hdr: Header{Tag: 3, Size: 1}, Data: []byte("x")})
	hdr, ok := ep.Probe(MatchSpec{SrcPE: Any, SrcProc: Any, Ctx: Any, Tag: 3})
	if !ok || hdr.Tag != 3 {
		t.Fatalf("probe failed: ok=%v hdr=%+v", ok, hdr)
	}
}

func TestCancelRecv(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{}, host, &ctrs, &captureTransport{})

	h := ep.Irecv(MatchAll, make([]byte, 8))
	if !ep.CancelRecv(h) {
		t.Fatal("cancel of pending receive failed")
	}
	if posted, _ := ep.QueueDepths(); posted != 0 {
		t.Fatal("canceled receive still posted")
	}
}
