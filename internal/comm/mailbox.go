package comm

import (
	"sync"

	"chant/internal/sim"
)

// mailbox is the matching engine of one endpoint: a list of posted receives
// and a queue of unexpected (early-arrival) messages. Matching is FIFO on
// both sides: an arriving message matches the oldest compatible posted
// receive; a newly posted receive matches the oldest compatible unexpected
// message. Together with transports that preserve per-pair submission order,
// this gives the non-overtaking guarantee message-passing programs expect.
type mailbox struct {
	mu         sync.Mutex
	posted     []*RecvHandle
	unexpected []*Message

	// unexpectedCap, when positive, bounds the unexpected queue: arrivals
	// that match no posted receive once the queue is full are dropped (a
	// countable fault event) instead of growing system buffering without
	// bound.
	unexpectedCap int
}

// deliver matches msg against posted receives. If a receive matches, the
// payload is deposited directly into its user buffer (the no-extra-copy path
// the paper's design is built around) and the handle is returned. Otherwise
// the message joins the unexpected queue — unless the queue is at its cap,
// in which case the message is dropped and dropped reports true.
func (mb *mailbox) deliver(msg *Message, at sim.Time) (h *RecvHandle, dropped bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, h := range mb.posted {
		if h.spec.Matches(msg.Hdr) {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			h.complete(msg, at)
			return h, false
		}
	}
	if mb.unexpectedCap > 0 && len(mb.unexpected) >= mb.unexpectedCap {
		return nil, true
	}
	mb.unexpected = append(mb.unexpected, msg)
	return nil, false
}

// post registers a receive. If an unexpected message already matches, it is
// consumed and deposited immediately (this is the system-buffer-copy path)
// and post reports true.
func (mb *mailbox) post(h *RecvHandle, at sim.Time) (immediate bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, msg := range mb.unexpected {
		if h.spec.Matches(msg.Hdr) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			h.complete(msg, at)
			return true
		}
	}
	mb.posted = append(mb.posted, h)
	return false
}

// remove cancels a posted receive, reporting whether it was still pending.
// A handle that already completed (or was never posted) is left untouched.
func (mb *mailbox) remove(h *RecvHandle) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, p := range mb.posted {
		if p == h {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			h.canceled = true
			return true
		}
	}
	return false
}

// removeFailed withdraws a posted receive and fails it with the given error
// and status, atomically with respect to delivery: exactly one of delivery
// and failure wins. It reports false if the handle was no longer posted
// (it completed, was canceled, or already failed).
func (mb *mailbox) removeFailed(h *RecvHandle, err error, status Status, at sim.Time) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, p := range mb.posted {
		if p == h {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			h.fail(err, status, at)
			return true
		}
	}
	return false
}

// failPeer fails every posted receive that can only be satisfied by the
// given (now dead) peer — those whose spec pins both source fields to it —
// and reports how many it failed. Wildcard receives stay posted: some other
// peer may still satisfy them.
func (mb *mailbox) failPeer(peer Addr, at sim.Time) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	failed := 0
	kept := mb.posted[:0]
	for _, h := range mb.posted {
		if h.spec.SrcPE == peer.PE && h.spec.SrcProc == peer.Proc {
			h.fail(ErrPeerDead, StatusPeerDead, at)
			failed++
		} else {
			kept = append(kept, h)
		}
	}
	mb.posted = kept
	return failed
}

// findUnexpected reports the header of the oldest unexpected message
// matching spec, without consuming it (MPI_Probe-style).
func (mb *mailbox) findUnexpected(spec MatchSpec) (Header, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, msg := range mb.unexpected {
		if spec.Matches(msg.Hdr) {
			return msg.Hdr, true
		}
	}
	return Header{}, false
}

// depths reports queue lengths, for tests and diagnostics.
func (mb *mailbox) depths() (posted, unexpected int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.posted), len(mb.unexpected)
}
