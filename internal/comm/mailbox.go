package comm

import (
	"sync"

	"chant/internal/sim"
)

// mailbox is the matching engine of one endpoint: posted receives on one
// side, unexpected (early-arrival) messages on the other. Matching is FIFO
// on both sides: an arriving message matches the oldest compatible posted
// receive; a newly posted receive matches the oldest compatible unexpected
// message. Together with transports that preserve per-pair submission order,
// this gives the non-overtaking guarantee message-passing programs expect.
//
// The seed matched linearly — every arrival scanned every posted receive —
// which made the paper's hottest event O(outstanding receives). This engine
// buckets both sides by the exact match key (all five header fields a spec
// can pin) and keeps receives with any wildcard field on a side list, so
// the dominant fully-pinned case is O(1) and only genuine wildcards are
// scanned. Every entry also sits on a global list in arrival order, stamped
// with a monotonic sequence number: "oldest compatible" is then the
// minimum-sequence candidate across the exact bucket front and the wildcard
// scan, which is exactly the element the old linear sweep would have
// stopped at. RefMatcher (refmatch.go) preserves the linear algorithm as
// the reference model for the differential property test and benchmarks.
type mailbox struct {
	mu  sync.Mutex
	seq uint64 // arrival stamp shared by posted receives and unexpected messages

	// Posted receives: the global arrival-ordered list (failPeer walks it so
	// failures fire in deterministic post order), exact-spec buckets, and the
	// wildcard side list (specs with any Any field), each arrival-ordered.
	postAll   postList
	postExact map[matchKey]*postList
	postWild  postList
	nPosted   int

	// Unexpected messages: headers are always fully concrete, so every
	// message lives in an exact bucket plus the global arrival-ordered list
	// (which wildcard receives and findUnexpected scan).
	umAll   msgList
	umExact map[matchKey]*msgList
	nUnexp  int

	// unexpectedCap, when positive, bounds the unexpected queue: arrivals
	// that match no posted receive once the queue is full are dropped (a
	// countable fault event) instead of growing system buffering without
	// bound.
	unexpectedCap int

	// completed is the completion ready-list: when tracking is on (the
	// Scheduler-polls (WQ) policies enable it), every handle completed by
	// this mailbox — matched, failed by peer death, or withdrawn by timeout —
	// is appended here for the endpoint to drain, so polling can inspect
	// only completed handles instead of re-testing every outstanding one.
	tracking  bool
	completed []*RecvHandle

	// Node and bucket freelists (plain, under mu — deterministic, unlike
	// sync.Pool). Buckets are recycled because the exact-match maps delete
	// a bucket the moment it empties: without reuse, every post of a
	// fully-pinned receive allocates a fresh bucket on the hot path.
	freePost      *postNode
	freeMsg       *msgNode
	freePostLists []*postList
	freeMsgLists  []*msgList
}

// matchKey is the exact-match signature: the five header fields a MatchSpec
// can pin. A spec with no wildcard fields matches a header iff their keys
// are equal.
type matchKey struct {
	srcPE, srcProc, srcThread, ctx, tag int32
}

func keyOfHeader(h Header) matchKey {
	return matchKey{h.SrcPE, h.SrcProc, h.SrcThread, h.Ctx, h.Tag}
}

// keyOfSpec reports the spec's exact key, or ok=false if any field is a
// wildcard.
func keyOfSpec(s MatchSpec) (matchKey, bool) {
	if s.SrcPE == Any || s.SrcProc == Any || s.SrcThread == Any || s.Ctx == Any || s.Tag == Any {
		return matchKey{}, false
	}
	return matchKey{s.SrcPE, s.SrcProc, s.SrcThread, s.Ctx, s.Tag}, true
}

// Each node is intrusively linked into two lists at once: the global
// arrival-ordered list and its bucket (or the wildcard side list).
const (
	gLink = 0 // global arrival-ordered list
	lLink = 1 // exact-key bucket, or the wildcard side list
)

type postNode struct {
	h    *RecvHandle
	seq  uint64
	wild bool
	key  matchKey // valid when !wild
	prev [2]*postNode
	next [2]*postNode
}

type postList struct{ head, tail *postNode }

func (l *postList) pushBack(link int, n *postNode) {
	n.prev[link], n.next[link] = l.tail, nil
	if l.tail != nil {
		l.tail.next[link] = n
	} else {
		l.head = n
	}
	l.tail = n
}

func (l *postList) remove(link int, n *postNode) {
	if n.prev[link] != nil {
		n.prev[link].next[link] = n.next[link]
	} else {
		l.head = n.next[link]
	}
	if n.next[link] != nil {
		n.next[link].prev[link] = n.prev[link]
	} else {
		l.tail = n.prev[link]
	}
	n.prev[link], n.next[link] = nil, nil
}

type msgNode struct {
	msg  *Message
	seq  uint64
	key  matchKey
	prev [2]*msgNode
	next [2]*msgNode
}

type msgList struct{ head, tail *msgNode }

func (l *msgList) pushBack(link int, n *msgNode) {
	n.prev[link], n.next[link] = l.tail, nil
	if l.tail != nil {
		l.tail.next[link] = n
	} else {
		l.head = n
	}
	l.tail = n
}

func (l *msgList) remove(link int, n *msgNode) {
	if n.prev[link] != nil {
		n.prev[link].next[link] = n.next[link]
	} else {
		l.head = n.next[link]
	}
	if n.next[link] != nil {
		n.next[link].prev[link] = n.prev[link]
	} else {
		l.tail = n.prev[link]
	}
	n.prev[link], n.next[link] = nil, nil
}

// deliver matches msg against posted receives. If a receive matches, the
// payload is deposited directly into its user buffer (the no-extra-copy path
// the paper's design is built around) and the handle is returned. Otherwise
// the message joins the unexpected queue — unless the queue is at its cap,
// in which case the message is dropped and dropped reports true.
func (mb *mailbox) deliver(msg *Message, at sim.Time) (h *RecvHandle, dropped bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.deliverLocked(msg, at)
}

// deliverLocked is deliver's body; the caller holds mb.mu. Batch deposit
// (depositBatch) reuses it so a whole ingress burst lands under one lock
// acquisition.
func (mb *mailbox) deliverLocked(msg *Message, at sim.Time) (h *RecvHandle, dropped bool) {
	if best := mb.matchPostedLocked(msg.Hdr); best != nil {
		h := best.h
		mb.unlinkPost(best)
		mb.freePostNode(best)
		mb.notify(h) // before complete: the notified flag must precede done
		h.complete(msg, at)
		releaseMessage(msg)
		return h, false
	}
	if mb.unexpectedCap > 0 && mb.nUnexp >= mb.unexpectedCap {
		releaseMessage(msg)
		return nil, true
	}
	key := keyOfHeader(msg.Hdr)
	mb.seq++
	n := mb.newMsgNode(msg, key, mb.seq)
	mb.umAll.pushBack(gLink, n)
	mb.msgBucket(key).pushBack(lLink, n)
	mb.nUnexp++
	return nil, false
}

// matchPostedLocked reports the oldest posted receive matching hdr, or nil.
// Caller holds mb.mu and, on a hit, owns unlinking the node.
func (mb *mailbox) matchPostedLocked(hdr Header) *postNode {
	var best *postNode
	if bl := mb.postExact[keyOfHeader(hdr)]; bl != nil {
		best = bl.head
	}
	for n := mb.postWild.head; n != nil; n = n.next[lLink] {
		if best != nil && n.seq > best.seq {
			// The wildcard list is arrival-ordered: nothing past n can be
			// older than the exact-bucket candidate.
			break
		}
		if n.h.spec.Matches(hdr) {
			return n
		}
	}
	return best
}

// depositBatch drains the endpoint's ingress ring into the mailbox under a
// single lock acquisition: each message in the batch runs the ordinary
// deliverLocked match in arrival order. Real mode only; the caller is the
// endpoint's own process.
func (mb *mailbox) depositBatch(q *ingress, at sim.Time) (matched, early, dropped int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for msg := q.take(); msg != nil; {
		next := msg.next
		msg.next = nil
		h, drop := mb.deliverLocked(msg, at)
		switch {
		case drop:
			dropped++
		case h != nil:
			matched++
		default:
			early++
		}
		msg = next
	}
	return matched, early, dropped
}

// tryDepositDirect is the zero-copy matched-receive fast path: called on the
// sending goroutine with the sender's buffer, it completes a posted receive
// by copying data straight into the waiting thread's buffer — no pooled
// Message, no intermediate copy. It declines (reporting false) whenever the
// slow path must run: the lock is contended, the ingress ring holds earlier
// arrivals the deposit must not overtake, or no posted receive matches.
//
// Ordering: the ring is only emptied by take() under this same lock, and a
// producer's own pushes are program-ordered before its direct attempt — so
// an empty ring observed here proves no earlier message from this sender is
// still undeposited. Cross-sender arrival order carries no guarantee in real
// mode, exactly as with per-message delivery.
func (mb *mailbox) tryDepositDirect(q *ingress, hdr Header, data []byte, at sim.Time) bool {
	if !mb.mu.TryLock() {
		return false
	}
	defer mb.mu.Unlock()
	if !q.empty() {
		return false
	}
	best := mb.matchPostedLocked(hdr)
	if best == nil {
		return false
	}
	h := best.h
	mb.unlinkPost(best)
	mb.freePostNode(best)
	mb.notify(h) // before complete: the notified flag must precede done
	h.completeDirect(hdr, data, at)
	return true
}

// post registers a receive. If an unexpected message already matches, it is
// consumed and deposited immediately (this is the system-buffer-copy path)
// and post reports true.
func (mb *mailbox) post(h *RecvHandle, at sim.Time) (immediate bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	key, exact := keyOfSpec(h.spec)
	var n *msgNode
	if exact {
		if ml := mb.umExact[key]; ml != nil {
			n = ml.head
		}
	} else {
		for x := mb.umAll.head; x != nil; x = x.next[gLink] {
			if h.spec.Matches(x.msg.Hdr) {
				n = x
				break
			}
		}
	}
	if n != nil {
		msg := n.msg
		mb.unlinkMsg(n)
		mb.freeMsgNode(n)
		mb.notify(h)
		h.complete(msg, at)
		releaseMessage(msg)
		return true
	}
	mb.seq++
	pn := mb.newPostNode(h, key, !exact, mb.seq)
	h.entry = pn
	mb.postAll.pushBack(gLink, pn)
	if exact {
		mb.postBucket(key).pushBack(lLink, pn)
	} else {
		mb.postWild.pushBack(lLink, pn)
	}
	mb.nPosted++
	return false
}

// remove cancels a posted receive, reporting whether it was still pending.
// A handle that already completed (or was never posted) is left untouched.
func (mb *mailbox) remove(h *RecvHandle) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := h.entry
	if n == nil {
		return false
	}
	mb.unlinkPost(n)
	mb.freePostNode(n)
	h.canceled = true
	return true
}

// removeFailed withdraws a posted receive and fails it with the given error
// and status, atomically with respect to delivery: exactly one of delivery
// and failure wins. It reports false if the handle was no longer posted
// (it completed, was canceled, or already failed).
func (mb *mailbox) removeFailed(h *RecvHandle, err error, status Status, at sim.Time) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := h.entry
	if n == nil {
		return false
	}
	mb.unlinkPost(n)
	mb.freePostNode(n)
	mb.notify(h)
	h.fail(err, status, at)
	return true
}

// failPeer fails every posted receive that can only be satisfied by the
// given (now dead) peer — those whose spec pins both source fields to it —
// and reports how many it failed. Wildcard receives stay posted: some other
// peer may still satisfy them. The walk follows the global list, so
// failures fire in deterministic post order.
func (mb *mailbox) failPeer(peer Addr, at sim.Time) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	failed := 0
	for n := mb.postAll.head; n != nil; {
		next := n.next[gLink]
		if n.h.spec.SrcPE == peer.PE && n.h.spec.SrcProc == peer.Proc {
			h := n.h
			mb.unlinkPost(n)
			mb.freePostNode(n)
			mb.notify(h)
			h.fail(ErrPeerDead, StatusPeerDead, at)
			failed++
		}
		n = next
	}
	return failed
}

// findUnexpected reports the header of the oldest unexpected message
// matching spec, without consuming it (MPI_Probe-style).
func (mb *mailbox) findUnexpected(spec MatchSpec) (Header, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if key, exact := keyOfSpec(spec); exact {
		if ml := mb.umExact[key]; ml != nil {
			return ml.head.msg.Hdr, true
		}
		return Header{}, false
	}
	for n := mb.umAll.head; n != nil; n = n.next[gLink] {
		if spec.Matches(n.msg.Hdr) {
			return n.msg.Hdr, true
		}
	}
	return Header{}, false
}

// snapshotUnexpected visits every unexpected message in arrival order (the
// global list is the queue's deterministic order), consuming nothing. The
// visitor runs under the mailbox lock and must not re-enter it.
func (mb *mailbox) snapshotUnexpected(visit func(hdr Header, data []byte, sentAt sim.Time)) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for n := mb.umAll.head; n != nil; n = n.next[gLink] {
		visit(n.msg.Hdr, n.msg.Data, n.msg.SentAt)
	}
}

// depths reports queue lengths, for tests and diagnostics.
func (mb *mailbox) depths() (posted, unexpected int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.nPosted, mb.nUnexp
}

// track enables the completion ready-list.
func (mb *mailbox) track() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.tracking = true
}

// drainCompleted appends the completion ready-list to buf and clears it,
// releasing each handle's notified latch.
func (mb *mailbox) drainCompleted(buf []*RecvHandle) []*RecvHandle {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, h := range mb.completed {
		h.notified = false
		buf = append(buf, h)
		mb.completed[i] = nil
	}
	mb.completed = mb.completed[:0]
	return buf
}

// notify records a completion on the ready-list, latching the handle
// against pool reuse until the notification is drained. Caller holds mb.mu;
// must run before the handle's done flag is set.
func (mb *mailbox) notify(h *RecvHandle) {
	if mb.tracking {
		h.notified = true
		mb.completed = append(mb.completed, h)
	}
}

// unlinkPost removes a posted node from the global list and its bucket or
// the wildcard list, clearing the handle back-pointer. Caller holds mb.mu.
func (mb *mailbox) unlinkPost(n *postNode) {
	mb.postAll.remove(gLink, n)
	if n.wild {
		mb.postWild.remove(lLink, n)
	} else {
		bl := mb.postExact[n.key]
		bl.remove(lLink, n)
		if bl.head == nil {
			delete(mb.postExact, n.key)
			mb.freePostLists = append(mb.freePostLists, bl)
		}
	}
	n.h.entry = nil
	mb.nPosted--
}

// unlinkMsg removes an unexpected-message node from the global list and its
// bucket. Caller holds mb.mu.
func (mb *mailbox) unlinkMsg(n *msgNode) {
	mb.umAll.remove(gLink, n)
	ml := mb.umExact[n.key]
	ml.remove(lLink, n)
	if ml.head == nil {
		delete(mb.umExact, n.key)
		mb.freeMsgLists = append(mb.freeMsgLists, ml)
	}
	mb.nUnexp--
}

func (mb *mailbox) postBucket(key matchKey) *postList {
	if mb.postExact == nil {
		mb.postExact = make(map[matchKey]*postList)
	}
	bl := mb.postExact[key]
	if bl == nil {
		if n := len(mb.freePostLists); n > 0 {
			bl = mb.freePostLists[n-1]
			mb.freePostLists[n-1] = nil
			mb.freePostLists = mb.freePostLists[:n-1]
		} else {
			bl = &postList{}
		}
		mb.postExact[key] = bl
	}
	return bl
}

func (mb *mailbox) msgBucket(key matchKey) *msgList {
	if mb.umExact == nil {
		mb.umExact = make(map[matchKey]*msgList)
	}
	ml := mb.umExact[key]
	if ml == nil {
		if n := len(mb.freeMsgLists); n > 0 {
			ml = mb.freeMsgLists[n-1]
			mb.freeMsgLists[n-1] = nil
			mb.freeMsgLists = mb.freeMsgLists[:n-1]
		} else {
			ml = &msgList{}
		}
		mb.umExact[key] = ml
	}
	return ml
}

func (mb *mailbox) newPostNode(h *RecvHandle, key matchKey, wild bool, seq uint64) *postNode {
	n := mb.freePost
	if n != nil {
		mb.freePost = n.next[gLink]
		n.next[gLink] = nil
	} else {
		n = &postNode{}
	}
	n.h, n.key, n.wild, n.seq = h, key, wild, seq
	return n
}

func (mb *mailbox) freePostNode(n *postNode) {
	*n = postNode{}
	n.next[gLink] = mb.freePost
	mb.freePost = n
}

func (mb *mailbox) newMsgNode(msg *Message, key matchKey, seq uint64) *msgNode {
	n := mb.freeMsg
	if n != nil {
		mb.freeMsg = n.next[gLink]
		n.next[gLink] = nil
	} else {
		n = &msgNode{}
	}
	n.msg, n.key, n.seq = msg, key, seq
	return n
}

func (mb *mailbox) freeMsgNode(n *msgNode) {
	*n = msgNode{}
	n.next[gLink] = mb.freeMsg
	mb.freeMsg = n
}
