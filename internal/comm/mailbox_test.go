package comm

import (
	"testing"
	"testing/quick"
)

func hdr(srcPE, srcProc, ctx, tag int32) Header {
	return Header{SrcPE: srcPE, SrcProc: srcProc, Ctx: ctx, Tag: tag}
}

func TestMatchSpecExact(t *testing.T) {
	spec := MatchSpec{SrcPE: 1, SrcProc: 2, Ctx: 3, Tag: 4}
	if !spec.Matches(hdr(1, 2, 3, 4)) {
		t.Error("exact header should match")
	}
	for _, h := range []Header{hdr(9, 2, 3, 4), hdr(1, 9, 3, 4), hdr(1, 2, 9, 4), hdr(1, 2, 3, 9)} {
		if spec.Matches(h) {
			t.Errorf("header %+v should not match %+v", h, spec)
		}
	}
}

func TestMatchSpecWildcards(t *testing.T) {
	if !MatchAll.Matches(hdr(7, 8, 9, 10)) {
		t.Error("MatchAll should match anything")
	}
	spec := MatchSpec{SrcPE: Any, SrcProc: Any, Ctx: 5, Tag: Any}
	if !spec.Matches(hdr(0, 0, 5, 99)) {
		t.Error("ctx-only spec should match any source and tag")
	}
	if spec.Matches(hdr(0, 0, 6, 99)) {
		t.Error("ctx-only spec must still filter ctx")
	}
}

// Property: a spec with all wildcards replaced by the header's own values
// always matches, and flipping any one non-wildcard field breaks the match.
func TestMatchSpecProperty(t *testing.T) {
	f := func(pe, proc, ctx, tag int32, mask uint8) bool {
		pe, proc, ctx, tag = pe&0xffff, proc&0xffff, ctx&0xffff, tag&0xffff
		h := hdr(pe, proc, ctx, tag)
		spec := MatchSpec{SrcPE: pe, SrcProc: proc, Ctx: ctx, Tag: tag}
		if mask&1 != 0 {
			spec.SrcPE = Any
		}
		if mask&2 != 0 {
			spec.SrcProc = Any
		}
		if mask&4 != 0 {
			spec.Ctx = Any
		}
		if mask&8 != 0 {
			spec.Tag = Any
		}
		if !spec.Matches(h) {
			return false
		}
		if spec.Tag != Any {
			bad := spec
			bad.Tag = tag + 1
			if bad.Matches(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func msgWith(h Header, payload string) *Message {
	return &Message{Hdr: h, Data: []byte(payload)}
}

func TestMailboxDeliverToPosted(t *testing.T) {
	var mb mailbox
	h := &RecvHandle{spec: MatchAll, buf: make([]byte, 16)}
	if mb.post(h, 0) {
		t.Fatal("post with empty unexpected queue reported immediate")
	}
	got, _ := mb.deliver(msgWith(hdr(1, 0, 2, 3), "hello"), 42)
	if got != h {
		t.Fatal("deliver did not match the posted receive")
	}
	if !h.Done() || string(h.buf[:h.Len()]) != "hello" {
		t.Fatalf("payload not deposited: done=%v data=%q", h.Done(), h.buf[:h.Len()])
	}
	if h.CompletedAt() != 42 {
		t.Fatalf("CompletedAt = %v, want 42", h.CompletedAt())
	}
	if p, u := mb.depths(); p != 0 || u != 0 {
		t.Fatalf("queues not empty: posted=%d unexpected=%d", p, u)
	}
}

func TestMailboxEarlyArrivalThenPost(t *testing.T) {
	var mb mailbox
	if got, _ := mb.deliver(msgWith(hdr(1, 0, 2, 3), "early"), 0); got != nil {
		t.Fatal("deliver with no posted receive should buffer")
	}
	h := &RecvHandle{spec: MatchSpec{SrcPE: 1, SrcProc: 0, Ctx: 2, Tag: 3}, buf: make([]byte, 16)}
	if !mb.post(h, 5) {
		t.Fatal("post should consume the buffered message")
	}
	if string(h.buf[:h.Len()]) != "early" {
		t.Fatalf("got %q", h.buf[:h.Len()])
	}
}

func TestMailboxFIFOAmongUnexpected(t *testing.T) {
	var mb mailbox
	mb.deliver(msgWith(hdr(1, 0, 2, 3), "first"), 0)
	mb.deliver(msgWith(hdr(1, 0, 2, 3), "second"), 1)
	h1 := &RecvHandle{spec: MatchAll, buf: make([]byte, 16)}
	h2 := &RecvHandle{spec: MatchAll, buf: make([]byte, 16)}
	mb.post(h1, 2)
	mb.post(h2, 2)
	if string(h1.buf[:h1.Len()]) != "first" || string(h2.buf[:h2.Len()]) != "second" {
		t.Fatalf("FIFO violated: %q then %q", h1.buf[:h1.Len()], h2.buf[:h2.Len()])
	}
}

func TestMailboxFIFOAmongPosted(t *testing.T) {
	var mb mailbox
	h1 := &RecvHandle{spec: MatchAll, buf: make([]byte, 16)}
	h2 := &RecvHandle{spec: MatchAll, buf: make([]byte, 16)}
	mb.post(h1, 0)
	mb.post(h2, 0)
	mb.deliver(msgWith(hdr(1, 0, 2, 3), "x"), 1)
	if !h1.Done() || h2.Done() {
		t.Fatal("oldest posted receive must match first")
	}
}

func TestMailboxSelectiveMatch(t *testing.T) {
	var mb mailbox
	hTag7 := &RecvHandle{spec: MatchSpec{SrcPE: Any, SrcProc: Any, Ctx: Any, Tag: 7}, buf: make([]byte, 8)}
	hTag9 := &RecvHandle{spec: MatchSpec{SrcPE: Any, SrcProc: Any, Ctx: Any, Tag: 9}, buf: make([]byte, 8)}
	mb.post(hTag7, 0)
	mb.post(hTag9, 0)
	mb.deliver(msgWith(hdr(0, 0, 0, 9), "nine"), 1)
	if hTag7.Done() {
		t.Fatal("tag-7 receive stole a tag-9 message")
	}
	if !hTag9.Done() {
		t.Fatal("tag-9 receive should have matched")
	}
}

func TestMailboxRemove(t *testing.T) {
	var mb mailbox
	h := &RecvHandle{spec: MatchAll, buf: make([]byte, 8)}
	mb.post(h, 0)
	if !mb.remove(h) {
		t.Fatal("remove of pending receive failed")
	}
	if !h.Canceled() {
		t.Fatal("handle not marked canceled")
	}
	if mb.remove(h) {
		t.Fatal("second remove should report not-pending")
	}
	// A message arriving afterwards must be buffered, not matched.
	if got, _ := mb.deliver(msgWith(hdr(0, 0, 0, 0), "x"), 1); got != nil {
		t.Fatal("canceled receive still matched")
	}
}

func TestTruncation(t *testing.T) {
	var mb mailbox
	h := &RecvHandle{spec: MatchAll, buf: make([]byte, 3)}
	mb.post(h, 0)
	mb.deliver(msgWith(hdr(0, 0, 0, 0), "toolong"), 1)
	if h.Err() != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", h.Err())
	}
	if h.Len() != 3 || string(h.buf) != "too" {
		t.Fatalf("truncated payload wrong: n=%d data=%q", h.Len(), h.buf)
	}
}

func TestFindUnexpected(t *testing.T) {
	var mb mailbox
	mb.deliver(msgWith(hdr(3, 1, 5, 7), "x"), 0)
	if _, ok := mb.findUnexpected(MatchSpec{SrcPE: 3, SrcProc: 1, Ctx: 5, Tag: 7}); !ok {
		t.Fatal("probe missed a buffered message")
	}
	if _, ok := mb.findUnexpected(MatchSpec{SrcPE: 4, SrcProc: Any, Ctx: Any, Tag: Any}); ok {
		t.Fatal("probe matched the wrong source")
	}
	// Probe must not consume.
	if _, u := mb.depths(); u != 1 {
		t.Fatal("probe consumed the message")
	}
}

// Property: no message is ever lost or duplicated through any interleaving
// of posts and deliveries with compatible specs.
func TestMailboxConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var mb mailbox
		var handles []*RecvHandle
		delivered := 0
		for _, isPost := range ops {
			if isPost {
				h := &RecvHandle{spec: MatchAll, buf: make([]byte, 8)}
				mb.post(h, 0)
				handles = append(handles, h)
			} else {
				mb.deliver(msgWith(hdr(0, 0, 0, 0), "m"), 0)
				delivered++
			}
		}
		completed := 0
		for _, h := range handles {
			if h.Done() {
				completed++
			}
		}
		posted, unexpected := mb.depths()
		// Every delivered message either completed a handle or waits.
		if completed+unexpected != delivered {
			return false
		}
		// Every posted handle either completed or waits.
		return completed+posted == len(handles) &&
			// One side of the match must always be drained.
			(posted == 0 || unexpected == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
