package tcpnet

import (
	"bufio"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chant/internal/comm"
)

// countingConn is a stub net.Conn that counts Write calls — each Write is
// what a real connection would issue as a syscall, so the count is the
// number of flushes that reached the wire.
type countingConn struct {
	writes atomic.Int32
}

func (c *countingConn) Write(p []byte) (int, error)      { c.writes.Add(1); return len(p), nil }
func (c *countingConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (c *countingConn) Close() error                     { return nil }
func (c *countingConn) LocalAddr() net.Addr              { return nil }
func (c *countingConn) RemoteAddr() net.Addr             { return nil }
func (c *countingConn) SetDeadline(time.Time) error      { return nil }
func (c *countingConn) SetReadDeadline(time.Time) error  { return nil }
func (c *countingConn) SetWriteDeadline(time.Time) error { return nil }

// TestTCPGroupCommitCoalescesFlushes pins the group-commit contract
// deterministically: hold the sender's write lock while a burst of writers
// queues up behind it (each has announced its frame in pending), then
// release. Every writer but the last sees a frame queued behind it and
// skips the flush; the last flushes once. The whole burst must reach the
// conn in exactly one Write.
func TestTCPGroupCommitCoalescesFlushes(t *testing.T) {
	conn := &countingConn{}
	s := &sender{c: conn, w: bufio.NewWriter(conn)}
	const frames = 8

	s.mu.Lock() // stall the burst so every writer announces before any writes
	var wg sync.WaitGroup
	for i := 0; i < frames; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := &comm.Message{Hdr: comm.Header{Tag: 1, Size: 4}, Data: []byte("abcd")}
			if err := s.writeFrame(msg); err != nil {
				t.Error(err)
			}
		}()
	}
	for s.pending.Load() != frames {
		runtime.Gosched()
	}
	s.mu.Unlock()
	wg.Wait()

	if n := conn.writes.Load(); n != 1 {
		t.Fatalf("burst of %d frames issued %d conn writes; want 1 (group commit)", frames, n)
	}
}

// TestTCPBurstAllDelivered drives a concurrent burst of frames through one
// sender connection — the group-commit flush path where most writers skip
// the flush and the last one in the burst flushes for everyone — and checks
// every frame arrives intact, i.e. no frame is left stranded in the
// buffered writer when the burst drains.
func TestTCPBurstAllDelivered(t *testing.T) {
	_, eps := bootMachine(t, 2)
	const senders = 8
	const perSender = 50
	total := senders * perSender

	recvd := make(chan int32, total)
	go func() {
		buf := make([]byte, 64)
		for i := 0; i < total; i++ {
			_, hdr, err := eps[1].Recv(comm.MatchAll, buf)
			if err != nil {
				t.Error(err)
				return
			}
			recvd <- hdr.Tag
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte("burst payload")
			for i := 0; i < perSender; i++ {
				tag := int32(s*perSender + i)
				eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 5, tag, 2, payload)
			}
		}()
	}
	wg.Wait()

	seen := make(map[int32]bool, total)
	deadline := time.After(20 * time.Second)
	for len(seen) < total {
		select {
		case tag := <-recvd:
			if seen[tag] {
				t.Fatalf("tag %d delivered twice", tag)
			}
			seen[tag] = true
		case <-deadline:
			t.Fatalf("timed out: %d/%d frames delivered — a frame is stuck unflushed", len(seen), total)
		}
	}
}

// BenchmarkTCPBurstSend measures burst throughput through one connection:
// concurrent senders saturate the sender lock so the group-commit flush can
// coalesce. Compare against a per-frame flush by reverting writeFrame's
// pending check.
func BenchmarkTCPBurstSend(b *testing.B) {
	_, eps := bootMachine(b, 2)
	const senders = 4
	payload := make([]byte, 256)

	done := make(chan struct{})
	go func() {
		buf := make([]byte, 512)
		for i := 0; i < b.N; i++ {
			if _, _, err := eps[1].Recv(comm.MatchAll, buf); err != nil {
				b.Error(err)
				break
			}
		}
		close(done)
	}()

	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := s; i < b.N; i += senders {
				eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 5, int32(i%1000), 2, payload)
			}
		}()
	}
	wg.Wait()
	<-done
}
