// Package tcpnet is the distributed transport: Chant processes running in
// separate OS processes (or machines) exchange messages over TCP with a
// length-prefixed binary wire format. A rendezvous leader collects every
// process's listen address and broadcasts the peer table, after which data
// flows directly process-to-process over one connection per direction —
// preserving the per-pair FIFO order the mailbox matching relies on.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/trace"
)

// Options configures one process's attachment to the distributed machine.
type Options struct {
	// Self is this process's Chant address.
	Self comm.Addr
	// Rendezvous is the leader's host:port.
	Rendezvous string
	// Lead makes this process host the rendezvous (exactly one process
	// must lead; by convention pe0.p0).
	Lead bool
	// Procs is the total number of processes in the machine (the leader
	// waits for all of them).
	Procs int
	// ListenAddr is this process's data-plane listen address
	// (default "127.0.0.1:0").
	ListenAddr string
	// DialTimeout bounds rendezvous and peer dials (default 10s).
	DialTimeout time.Duration
	// Cancel, when non-nil, aborts the rendezvous retry loop early when
	// closed (context-style cancellation for callers that give up before
	// the dial deadline).
	Cancel <-chan struct{}
	// MaxFrameSize bounds one wire frame (header + payload). The reader
	// drops any connection announcing a larger frame — a corrupt or hostile
	// length prefix must not drive allocation — and the sender refuses to
	// emit one. Default 64 MiB.
	MaxFrameSize int
	// Heartbeat, when positive, enables failure detection: the node sends a
	// control frame to every peer at this interval, and a peer silent for
	// heartbeatMisses intervals is declared dead — its pinned receives fail
	// with ErrPeerDead instead of hanging. Zero disables detection.
	Heartbeat time.Duration
	// Epoch is this process's incarnation number, carried in every heartbeat
	// frame: 0 for a first run, higher after a crash recovery. A heartbeat
	// from a peer this node had declared dead proves the peer is back (same
	// epoch: the detector was premature; higher epoch: the peer restarted),
	// so the dead mark is cleared and its redial backoff reset.
	Epoch uint32
}

func (o Options) withDefaults() Options {
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.MaxFrameSize == 0 {
		o.MaxFrameSize = 64 << 20
	}
	return o
}

// Node is one OS process's endpoint registry plus its TCP machinery. It
// implements comm.Transport for the endpoints created through it.
type Node struct {
	self     comm.Addr
	ln       net.Listener
	peers    map[comm.Addr]string // every process's data listen address
	maxFrame uint32
	hb       time.Duration
	epoch    uint32

	mu         sync.Mutex
	eps        map[comm.Addr]*comm.Endpoint
	conns      map[string]*sender
	inbound    map[net.Conn]struct{}
	lastSeen   map[comm.Addr]time.Time
	dead       map[comm.Addr]bool
	backoffs   map[comm.Addr]*backoffState
	peerEpochs map[comm.Addr]uint32
	closed     bool

	hbStop chan struct{}
	wg     sync.WaitGroup
}

// sender is one outbound connection with a write lock (frames must not
// interleave).
type sender struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer

	// pending counts writers that have announced a frame but not yet
	// written it (group commit): whoever drains the burst last flushes
	// once, so back-to-back sends share a syscall instead of paying one
	// flush per frame.
	pending atomic.Int32
}

// regMsg is the rendezvous control-plane message.
type regMsg struct {
	PE, Proc int32
	Data     string // data-plane listen address
}

// tableMsg broadcasts the completed peer table.
type tableMsg struct {
	Peers []regMsg
}

// wireHeaderLen is the fixed encoded header size: nine int32 fields.
const wireHeaderLen = 36

// hbTag marks a heartbeat control frame. User tags are non-negative and the
// runtime's reserved tags are positive, so no data frame can collide.
const hbTag int32 = -0x4842 // "HB"

// heartbeatMisses is how many silent heartbeat intervals declare a peer
// dead.
const heartbeatMisses = 3

// Redial policy: a failed send retries with doubling backoff before the
// peer is declared dead and the message dropped.
const (
	maxRedials     = 4
	redialBackoff0 = 5 * time.Millisecond
	redialBackoffM = 500 * time.Millisecond
)

// backoffState is one peer's redial pacing. It persists across Deliver
// calls — a peer that keeps failing is approached ever more slowly — and is
// reset the moment the peer proves alive (any frame from it, heartbeat or
// data), so a recovered peer is re-approached at full speed instead of at
// whatever crawl the outage ratcheted the backoff up to.
type backoffState struct {
	cur, initial, max time.Duration
}

func newBackoffState() *backoffState {
	return &backoffState{cur: redialBackoff0, initial: redialBackoff0, max: redialBackoffM}
}

// next reports the current pause and doubles it for the next failure,
// saturating at max.
func (b *backoffState) next() time.Duration {
	d := b.cur
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
	return d
}

// reset drops the pause back to its initial value.
func (b *backoffState) reset() { b.cur = b.initial }

// ErrFrameTooLarge reports a message exceeding Options.MaxFrameSize.
var ErrFrameTooLarge = errors.New("tcpnet: frame exceeds MaxFrameSize")

// Bootstrap joins (or leads) the machine's rendezvous and returns a Node
// ready to create endpoints. It blocks until every process has registered.
func Bootstrap(o Options) (*Node, error) {
	o = o.withDefaults()
	ln, err := net.Listen("tcp", o.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: data listen: %w", err)
	}
	n := &Node{
		self:       o.Self,
		ln:         ln,
		maxFrame:   uint32(o.MaxFrameSize),
		hb:         o.Heartbeat,
		epoch:      o.Epoch,
		eps:        make(map[comm.Addr]*comm.Endpoint),
		conns:      make(map[string]*sender),
		inbound:    make(map[net.Conn]struct{}),
		lastSeen:   make(map[comm.Addr]time.Time),
		dead:       make(map[comm.Addr]bool),
		backoffs:   make(map[comm.Addr]*backoffState),
		peerEpochs: make(map[comm.Addr]uint32),
		hbStop:     make(chan struct{}),
	}
	if o.Lead {
		n.peers, err = lead(o, ln.Addr().String())
	} else {
		n.peers, err = join(o, ln.Addr().String())
	}
	if err != nil {
		ln.Close()
		return nil, err
	}
	n.wg.Add(1)
	// Real transport: inbound TCP frames arrive preemptively by nature.
	//chant:allow-nondet real network I/O goroutine
	go n.acceptLoop()
	if n.hb > 0 {
		// Every peer starts its silence clock at bootstrap, so a peer that
		// dies before ever speaking is still detected.
		//chant:allow-nondet wall-clock failure-detection baseline
		now := time.Now()
		n.mu.Lock()
		for a := range n.peers {
			n.lastSeen[a] = now
		}
		n.mu.Unlock()
		n.wg.Add(1)
		//chant:allow-nondet real-time heartbeat goroutine
		go n.heartbeatLoop()
	}
	return n, nil
}

// lead runs the rendezvous: collect Procs registrations (including our
// own), then send everyone the table.
func lead(o Options, dataAddr string) (map[comm.Addr]string, error) {
	ctl, err := net.Listen("tcp", o.Rendezvous)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rendezvous listen: %w", err)
	}
	defer ctl.Close()

	table := []regMsg{{PE: o.Self.PE, Proc: o.Self.Proc, Data: dataAddr}}
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for len(table) < o.Procs {
		c, err := ctl.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcpnet: rendezvous accept: %w", err)
		}
		conns = append(conns, c)
		var reg regMsg
		if err := json.NewDecoder(c).Decode(&reg); err != nil {
			return nil, fmt.Errorf("tcpnet: bad registration: %w", err)
		}
		table = append(table, reg)
	}
	msg := tableMsg{Peers: table}
	for _, c := range conns {
		if err := json.NewEncoder(c).Encode(msg); err != nil {
			return nil, fmt.Errorf("tcpnet: table broadcast: %w", err)
		}
	}
	return tableToMap(table)
}

// join registers with the leader and waits for the table. The leader may
// not be listening yet, so the dial retries until the deadline passes or
// o.Cancel closes; the deadline is fixed once up front and every retry
// measures the single remaining budget with time.Until.
func join(o Options, dataAddr string) (map[comm.Addr]string, error) {
	// The wall clock is sanctioned here: rendezvous talks to real TCP
	// peers in other OS processes, outside any simulation clock.
	//chant:allow-nondet real TCP rendezvous deadline
	deadline := time.Now().Add(o.DialTimeout)
	var c net.Conn
	var lastErr error
	for {
		//chant:allow-nondet real TCP rendezvous deadline
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline exceeded")
			}
			return nil, fmt.Errorf("tcpnet: rendezvous dial: %w", lastErr)
		}
		c, lastErr = net.DialTimeout("tcp", o.Rendezvous, remaining)
		if lastErr == nil {
			break
		}
		// Leader may not be up yet: pace the retry, but wake early on
		// cancellation.
		//chant:allow-nondet real-time retry pacing against a TCP peer
		retry := time.NewTimer(50 * time.Millisecond)
		//chant:allow-nondet cancellation races real I/O by design
		select {
		case <-retry.C:
		case <-o.Cancel:
			retry.Stop()
			return nil, fmt.Errorf("tcpnet: rendezvous dial canceled: %w", lastErr)
		}
	}
	defer c.Close()
	reg := regMsg{PE: o.Self.PE, Proc: o.Self.Proc, Data: dataAddr}
	if err := json.NewEncoder(c).Encode(reg); err != nil {
		return nil, fmt.Errorf("tcpnet: register: %w", err)
	}
	var msg tableMsg
	if err := json.NewDecoder(c).Decode(&msg); err != nil {
		return nil, fmt.Errorf("tcpnet: table receive: %w", err)
	}
	return tableToMap(msg.Peers)
}

func tableToMap(table []regMsg) (map[comm.Addr]string, error) {
	m := make(map[comm.Addr]string, len(table))
	for _, r := range table {
		a := comm.Addr{PE: r.PE, Proc: r.Proc}
		if _, dup := m[a]; dup {
			return nil, fmt.Errorf("tcpnet: duplicate process %v at rendezvous", a)
		}
		m[a] = r.Data
	}
	return m, nil
}

// NewEndpoint attaches a local Chant process to the node.
func (n *Node) NewEndpoint(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("tcpnet: duplicate endpoint %v", addr))
	}
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.eps[addr] = ep
	return ep
}

// Peers reports the full process table discovered at rendezvous.
func (n *Node) Peers() map[comm.Addr]string {
	out := make(map[comm.Addr]string, len(n.peers))
	for k, v := range n.peers {
		out[k] = v
	}
	return out
}

// Deliver implements comm.Transport: local destinations are delivered
// directly; remote ones are framed onto the destination's connection. A
// failed send redials with bounded backoff; once the redial budget is
// exhausted the peer is declared dead and the message dropped — the wire is
// lossy by contract now, and recovery belongs to the retry layers above.
func (n *Node) Deliver(msg *comm.Message) {
	dst := msg.Hdr.Dst()
	n.mu.Lock()
	ep := n.eps[dst]
	dead := n.dead[dst]
	n.mu.Unlock()
	if ep != nil {
		ep.DeliverLocal(msg)
		return
	}
	if dead {
		comm.ReleaseMessage(msg)
		return // dead peers receive nothing
	}
	addr, ok := n.peers[dst]
	if !ok {
		panic(fmt.Sprintf("tcpnet: send to unknown process %v", dst))
	}
	n.deliverRemote(msg, dst, addr)
}

// TryDeliverDirect implements comm.DirectTransport for loopback
// destinations: a message addressed to an endpoint hosted on this node can
// skip framing entirely and attempt the zero-copy matched receive. Remote
// destinations report false and take the framed Deliver path.
func (n *Node) TryDeliverDirect(hdr comm.Header, data []byte) bool {
	n.mu.Lock()
	ep := n.eps[hdr.Dst()]
	n.mu.Unlock()
	return ep != nil && ep.TryDeliverDirect(hdr, data)
}

// deliverRemote frames msg onto dst's connection, redialing with bounded
// backoff on failure.
func (n *Node) deliverRemote(msg *comm.Message, dst comm.Addr, addr string) {
	if uint32(wireHeaderLen+len(msg.Data)) > n.maxFrame {
		panic(fmt.Sprintf("tcpnet: send to %v: %v (%d bytes)", dst, ErrFrameTooLarge, len(msg.Data)))
	}
	for attempt := 0; ; attempt++ {
		s, err := n.senderFor(addr)
		if err == nil {
			if err = s.writeFrame(msg); err == nil {
				comm.ReleaseMessage(msg) // frame is flushed; recycle the buffer
				return
			}
			// The connection is wedged; drop it so the next attempt dials
			// fresh.
			n.dropSender(addr, s)
		}
		if n.isClosed() || attempt >= maxRedials {
			n.markPeerDead(dst)
			comm.ReleaseMessage(msg)
			return
		}
		// Pacing a redial against a real TCP peer is inherently wall-clock.
		// The pause is per-peer state that keeps doubling across Deliver
		// calls and only resets when the peer proves alive — see noteAlive.
		//chant:allow-nondet real-time redial backoff
		time.Sleep(n.nextBackoff(dst))
	}
}

// nextBackoff reports the peer's current redial pause and advances its
// doubling schedule.
func (n *Node) nextBackoff(peer comm.Addr) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	b := n.backoffs[peer]
	if b == nil {
		b = newBackoffState()
		n.backoffs[peer] = b
	}
	return b.next()
}

// isClosed reports whether Close has begun.
func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// dropSender discards a wedged outbound connection so the next send redials,
// unless another sender already replaced it.
func (n *Node) dropSender(addr string, s *sender) {
	n.mu.Lock()
	if n.conns[addr] == s {
		delete(n.conns, addr)
	}
	n.mu.Unlock()
	s.c.Close()
}

// markPeerDead declares peer failed: future sends to it are dropped and
// every local endpoint fails its pinned receives. Idempotent; safe from any
// goroutine.
func (n *Node) markPeerDead(peer comm.Addr) {
	n.mu.Lock()
	if n.dead[peer] || n.closed {
		n.mu.Unlock()
		return
	}
	n.dead[peer] = true
	eps := make([]*comm.Endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	// Notify local endpoints in address order so fan-out is deterministic.
	sort.Slice(eps, func(i, j int) bool {
		ai, aj := eps[i].Addr(), eps[j].Addr()
		if ai.PE != aj.PE {
			return ai.PE < aj.PE
		}
		return ai.Proc < aj.Proc
	})
	for _, ep := range eps {
		ep.MarkPeerDead(peer)
	}
}

// PeerDead reports whether the node has declared peer failed.
func (n *Node) PeerDead(peer comm.Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dead[peer]
}

// PeerEpoch reports the highest incarnation number heard from peer in a
// heartbeat (zero before any heartbeat arrives).
func (n *Node) PeerEpoch(peer comm.Addr) uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peerEpochs[peer]
}

// notePeerEpoch records a heartbeat's incarnation number and, when the peer
// had been declared dead, revives it: a heartbeat is proof of life whatever
// its epoch. Reviving clears the dead mark, resets the redial backoff, and
// tells every local endpoint (failing-over receives resume matching).
func (n *Node) notePeerEpoch(peer comm.Addr, epoch uint32) {
	n.mu.Lock()
	if epoch > n.peerEpochs[peer] {
		n.peerEpochs[peer] = epoch
	}
	if !n.dead[peer] || n.closed {
		n.mu.Unlock()
		return
	}
	delete(n.dead, peer)
	if b := n.backoffs[peer]; b != nil {
		b.reset()
	}
	eps := make([]*comm.Endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	// Notify local endpoints in address order so fan-out is deterministic.
	sort.Slice(eps, func(i, j int) bool {
		ai, aj := eps[i].Addr(), eps[j].Addr()
		if ai.PE != aj.PE {
			return ai.PE < aj.PE
		}
		return ai.Proc < aj.Proc
	})
	for _, ep := range eps {
		ep.MarkPeerAlive(peer)
	}
}

// senderFor returns (dialing if necessary) the outbound connection to a
// peer's data address.
func (n *Node) senderFor(addr string) (*sender, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("tcpnet: node closed")
	}
	if s, ok := n.conns[addr]; ok {
		return s, nil
	}
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	s := &sender{c: c, w: bufio.NewWriter(c)}
	n.conns[addr] = s
	return s, nil
}

// writeFrame encodes one message and flushes with group commit: the frame
// is announced (pending) before taking the write lock, and after writing,
// the flush is skipped when another writer is already queued behind us —
// that writer (or the last of the burst) will flush for everyone. A burst
// of back-to-back sends thus coalesces into one syscall. The wire contract
// is lossy (peers heartbeat and retry), so deferring a flush to the next
// writer on its error path loses nothing that matters.
func (s *sender) writeFrame(msg *comm.Message) error {
	s.pending.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	var hdr [4 + wireHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(wireHeaderLen+len(msg.Data)))
	putHeader(hdr[4:], msg.Hdr)
	if _, err := s.w.Write(hdr[:]); err != nil {
		s.pending.Add(-1)
		return err
	}
	if _, err := s.w.Write(msg.Data); err != nil {
		s.pending.Add(-1)
		return err
	}
	if s.pending.Add(-1) > 0 {
		// Another frame is queued right behind this one; let its writer
		// flush the shared buffer once for the whole burst.
		return nil
	}
	return s.w.Flush()
}

func putHeader(b []byte, h comm.Header) {
	fields := [9]int32{h.SrcPE, h.SrcProc, h.SrcThread, h.DstPE, h.DstProc, h.Ctx, h.Tag, h.Size, h.Flags}
	for i, f := range fields {
		binary.BigEndian.PutUint32(b[i*4:], uint32(f))
	}
}

func getHeader(b []byte) comm.Header {
	f := func(i int) int32 { return int32(binary.BigEndian.Uint32(b[i*4:])) }
	return comm.Header{
		SrcPE: f(0), SrcProc: f(1), SrcThread: f(2),
		DstPE: f(3), DstProc: f(4), Ctx: f(5), Tag: f(6), Size: f(7), Flags: f(8),
	}
}

// heartbeatLoop periodically pings every peer and declares dead any peer
// silent for heartbeatMisses intervals. Liveness is credited per source
// address: any frame (data or heartbeat) from a peer refreshes it.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	// The failure detector is wall-clock by nature: it bounds real silence
	// on a real wire.
	//chant:allow-nondet real-time heartbeat ticker
	tick := time.NewTicker(n.hb)
	defer tick.Stop()
	for {
		//chant:allow-nondet heartbeat period races shutdown by design
		select {
		case <-n.hbStop:
			return
		case <-tick.C:
		}
		//chant:allow-nondet wall-clock failure detection
		now := time.Now()
		for _, peer := range n.sortedPeers() {
			n.mu.Lock()
			dead := n.dead[peer]
			last := n.lastSeen[peer]
			n.mu.Unlock()
			if dead {
				continue
			}
			if now.Sub(last) > time.Duration(heartbeatMisses)*n.hb {
				n.markPeerDead(peer)
				continue
			}
			n.sendHeartbeat(peer)
		}
	}
}

// sortedPeers reports every remote peer address in deterministic order.
func (n *Node) sortedPeers() []comm.Addr {
	out := make([]comm.Addr, 0, len(n.peers))
	for a := range n.peers {
		if a != n.self {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PE != out[j].PE {
			return out[i].PE < out[j].PE
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// sendHeartbeat emits one control frame to peer, best-effort: a failure
// here simply leaves the peer's silence clock running.
func (n *Node) sendHeartbeat(peer comm.Addr) {
	addr, ok := n.peers[peer]
	if !ok {
		return
	}
	s, err := n.senderFor(addr)
	if err != nil {
		return
	}
	hb := &comm.Message{Hdr: comm.Header{
		SrcPE: n.self.PE, SrcProc: n.self.Proc,
		DstPE: peer.PE, DstProc: peer.Proc,
		Ctx: int32(n.epoch), // incarnation travels in the control frame
		Tag: hbTag,
	}}
	if err := s.writeFrame(hb); err != nil {
		n.dropSender(addr, s)
	}
}

// noteAlive credits a frame from peer: its silence clock restarts and its
// redial backoff resets. The reset is the other half of the persistent
// backoff in Deliver — without it, one bad spell would ratchet a peer's
// redial pause up to the cap forever, throttling sends to a peer that has
// long since answered a heartbeat.
func (n *Node) noteAlive(peer comm.Addr) {
	//chant:allow-nondet wall-clock failure detection
	now := time.Now()
	n.mu.Lock()
	if b := n.backoffs[peer]; b != nil {
		b.reset()
	}
	if n.hb > 0 {
		n.lastSeen[peer] = now
	}
	n.mu.Unlock()
}

// acceptLoop receives inbound connections; each gets a reader goroutine.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.inbound[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		//chant:allow-nondet real network I/O goroutine
		go n.readLoop(c)
	}
}

// readLoop decodes frames from one inbound connection and delivers them to
// the addressed local endpoint.
func (n *Node) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
	}()
	r := bufio.NewReaderSize(c, readBufSize(n.maxFrame))
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return // peer closed
		}
		frameLen := binary.BigEndian.Uint32(lenBuf[:])
		if frameLen < wireHeaderLen || frameLen > n.maxFrame {
			// A corrupt (or hostile) length prefix must not drive
			// allocation: fail the connection cleanly instead.
			return
		}
		var hdrBuf [wireHeaderLen]byte
		if _, err := io.ReadFull(r, hdrBuf[:]); err != nil {
			return
		}
		hdr := getHeader(hdrBuf[:])
		n.noteAlive(hdr.Src())
		payload := int(frameLen) - wireHeaderLen
		if hdr.Tag == hbTag {
			if payload > 0 {
				if _, err := io.CopyN(io.Discard, r, int64(payload)); err != nil {
					return
				}
			}
			// The heartbeat's Ctx field carries the sender's incarnation; a
			// heartbeat from a peer this node declared dead is the rejoin
			// signal (higher epoch: the peer restarted; same epoch: the
			// detector was premature).
			n.notePeerEpoch(hdr.Src(), uint32(hdr.Ctx))
			continue // heartbeat control frame; liveness is its payload
		}
		n.mu.Lock()
		ep := n.eps[hdr.Dst()]
		n.mu.Unlock()
		if ep == nil {
			if payload > 0 {
				if _, err := io.CopyN(io.Discard, r, int64(payload)); err != nil {
					return
				}
			}
			continue // no such local endpoint; drop (like NX)
		}
		if r.Buffered() >= payload {
			// The whole payload already sits in the read buffer: offer it to
			// a matching posted receive in place — no pooled message, no
			// extra copy. The guard matters: TryDeliverDirect runs with the
			// destination's mailbox lock held on a miss path, so it must
			// never be reachable from a blocking socket read.
			b, err := r.Peek(payload)
			if err != nil {
				return
			}
			if ep.TryDeliverDirect(hdr, b) {
				if _, err := r.Discard(payload); err != nil {
					return
				}
				continue
			}
		}
		// Inbound payloads come from the message pool: a steady-state
		// receiver recycles its buffers instead of allocating per frame.
		msg := comm.GetPooledMessage(payload)
		if _, err := io.ReadFull(r, msg.Data); err != nil {
			comm.ReleaseMessage(msg)
			return
		}
		msg.Hdr = hdr
		ep.DeliverLocal(msg)
	}
}

// Read-buffer sizing for inbound connections. The seed used bufio's 4 KiB
// default, so any frame beyond that straddled buffer refills and the
// zero-copy receive path could never see a whole payload in place. The
// buffer is sized to hold one maximal frame, clamped to a sane ceiling so a
// permissive MaxFrameSize (the 64 MiB default) does not pin megabytes per
// connection.
const (
	minReadBuf = 4 << 10
	maxReadBuf = 1 << 20
)

func readBufSize(maxFrame uint32) int {
	n := int(maxFrame) + 4 // length prefix + largest frame
	if n < minReadBuf {
		return minReadBuf
	}
	if n > maxReadBuf {
		return maxReadBuf
	}
	return n
}

// Close shuts the node down: the listener, all connections, and the reader
// goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.hbStop)
	conns := n.conns
	n.conns = map[string]*sender{}
	var inbound []net.Conn
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()
	err := n.ln.Close()
	// Teardown is order-insensitive: each Close is independent.
	//chant:allow-nondet connection teardown order does not matter
	for _, s := range conns {
		s.c.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	n.wg.Wait()
	return err
}
