// Package tcpnet is the distributed transport: Chant processes running in
// separate OS processes (or machines) exchange messages over TCP with a
// length-prefixed binary wire format. A rendezvous leader collects every
// process's listen address and broadcasts the peer table, after which data
// flows directly process-to-process over one connection per direction —
// preserving the per-pair FIFO order the mailbox matching relies on.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/trace"
)

// Options configures one process's attachment to the distributed machine.
type Options struct {
	// Self is this process's Chant address.
	Self comm.Addr
	// Rendezvous is the leader's host:port.
	Rendezvous string
	// Lead makes this process host the rendezvous (exactly one process
	// must lead; by convention pe0.p0).
	Lead bool
	// Procs is the total number of processes in the machine (the leader
	// waits for all of them).
	Procs int
	// ListenAddr is this process's data-plane listen address
	// (default "127.0.0.1:0").
	ListenAddr string
	// DialTimeout bounds rendezvous and peer dials (default 10s).
	DialTimeout time.Duration
	// Cancel, when non-nil, aborts the rendezvous retry loop early when
	// closed (context-style cancellation for callers that give up before
	// the dial deadline).
	Cancel <-chan struct{}
}

func (o Options) withDefaults() Options {
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	return o
}

// Node is one OS process's endpoint registry plus its TCP machinery. It
// implements comm.Transport for the endpoints created through it.
type Node struct {
	self  comm.Addr
	ln    net.Listener
	peers map[comm.Addr]string // every process's data listen address

	mu      sync.Mutex
	eps     map[comm.Addr]*comm.Endpoint
	conns   map[string]*sender
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

// sender is one outbound connection with a write lock (frames must not
// interleave).
type sender struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// regMsg is the rendezvous control-plane message.
type regMsg struct {
	PE, Proc int32
	Data     string // data-plane listen address
}

// tableMsg broadcasts the completed peer table.
type tableMsg struct {
	Peers []regMsg
}

// wireHeaderLen is the fixed encoded header size: nine int32 fields.
const wireHeaderLen = 36

// maxFrame bounds a frame so a corrupt length prefix cannot allocate
// unbounded memory.
const maxFrame = 64 << 20

// Bootstrap joins (or leads) the machine's rendezvous and returns a Node
// ready to create endpoints. It blocks until every process has registered.
func Bootstrap(o Options) (*Node, error) {
	o = o.withDefaults()
	ln, err := net.Listen("tcp", o.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: data listen: %w", err)
	}
	n := &Node{
		self:    o.Self,
		ln:      ln,
		eps:     make(map[comm.Addr]*comm.Endpoint),
		conns:   make(map[string]*sender),
		inbound: make(map[net.Conn]struct{}),
	}
	if o.Lead {
		n.peers, err = lead(o, ln.Addr().String())
	} else {
		n.peers, err = join(o, ln.Addr().String())
	}
	if err != nil {
		ln.Close()
		return nil, err
	}
	n.wg.Add(1)
	// Real transport: inbound TCP frames arrive preemptively by nature.
	//chant:allow-nondet real network I/O goroutine
	go n.acceptLoop()
	return n, nil
}

// lead runs the rendezvous: collect Procs registrations (including our
// own), then send everyone the table.
func lead(o Options, dataAddr string) (map[comm.Addr]string, error) {
	ctl, err := net.Listen("tcp", o.Rendezvous)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rendezvous listen: %w", err)
	}
	defer ctl.Close()

	table := []regMsg{{PE: o.Self.PE, Proc: o.Self.Proc, Data: dataAddr}}
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for len(table) < o.Procs {
		c, err := ctl.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcpnet: rendezvous accept: %w", err)
		}
		conns = append(conns, c)
		var reg regMsg
		if err := json.NewDecoder(c).Decode(&reg); err != nil {
			return nil, fmt.Errorf("tcpnet: bad registration: %w", err)
		}
		table = append(table, reg)
	}
	msg := tableMsg{Peers: table}
	for _, c := range conns {
		if err := json.NewEncoder(c).Encode(msg); err != nil {
			return nil, fmt.Errorf("tcpnet: table broadcast: %w", err)
		}
	}
	return tableToMap(table)
}

// join registers with the leader and waits for the table. The leader may
// not be listening yet, so the dial retries until the deadline passes or
// o.Cancel closes; the deadline is fixed once up front and every retry
// measures the single remaining budget with time.Until.
func join(o Options, dataAddr string) (map[comm.Addr]string, error) {
	// The wall clock is sanctioned here: rendezvous talks to real TCP
	// peers in other OS processes, outside any simulation clock.
	//chant:allow-nondet real TCP rendezvous deadline
	deadline := time.Now().Add(o.DialTimeout)
	var c net.Conn
	var lastErr error
	for {
		//chant:allow-nondet real TCP rendezvous deadline
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = errors.New("deadline exceeded")
			}
			return nil, fmt.Errorf("tcpnet: rendezvous dial: %w", lastErr)
		}
		c, lastErr = net.DialTimeout("tcp", o.Rendezvous, remaining)
		if lastErr == nil {
			break
		}
		// Leader may not be up yet: pace the retry, but wake early on
		// cancellation.
		//chant:allow-nondet real-time retry pacing against a TCP peer
		retry := time.NewTimer(50 * time.Millisecond)
		//chant:allow-nondet cancellation races real I/O by design
		select {
		case <-retry.C:
		case <-o.Cancel:
			retry.Stop()
			return nil, fmt.Errorf("tcpnet: rendezvous dial canceled: %w", lastErr)
		}
	}
	defer c.Close()
	reg := regMsg{PE: o.Self.PE, Proc: o.Self.Proc, Data: dataAddr}
	if err := json.NewEncoder(c).Encode(reg); err != nil {
		return nil, fmt.Errorf("tcpnet: register: %w", err)
	}
	var msg tableMsg
	if err := json.NewDecoder(c).Decode(&msg); err != nil {
		return nil, fmt.Errorf("tcpnet: table receive: %w", err)
	}
	return tableToMap(msg.Peers)
}

func tableToMap(table []regMsg) (map[comm.Addr]string, error) {
	m := make(map[comm.Addr]string, len(table))
	for _, r := range table {
		a := comm.Addr{PE: r.PE, Proc: r.Proc}
		if _, dup := m[a]; dup {
			return nil, fmt.Errorf("tcpnet: duplicate process %v at rendezvous", a)
		}
		m[a] = r.Data
	}
	return m, nil
}

// NewEndpoint attaches a local Chant process to the node.
func (n *Node) NewEndpoint(addr comm.Addr, host machine.Host, ctrs *trace.Counters) *comm.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("tcpnet: duplicate endpoint %v", addr))
	}
	ep := comm.NewEndpoint(addr, host, ctrs, n)
	n.eps[addr] = ep
	return ep
}

// Peers reports the full process table discovered at rendezvous.
func (n *Node) Peers() map[comm.Addr]string {
	out := make(map[comm.Addr]string, len(n.peers))
	for k, v := range n.peers {
		out[k] = v
	}
	return out
}

// Deliver implements comm.Transport: local destinations are delivered
// directly; remote ones are framed onto the destination's connection.
func (n *Node) Deliver(msg *comm.Message) {
	dst := msg.Hdr.Dst()
	n.mu.Lock()
	ep := n.eps[dst]
	n.mu.Unlock()
	if ep != nil {
		ep.DeliverLocal(msg)
		return
	}
	addr, ok := n.peers[dst]
	if !ok {
		panic(fmt.Sprintf("tcpnet: send to unknown process %v", dst))
	}
	s, err := n.senderFor(addr)
	if err != nil {
		panic(fmt.Sprintf("tcpnet: connect to %v (%s): %v", dst, addr, err))
	}
	if err := s.writeFrame(msg); err != nil {
		panic(fmt.Sprintf("tcpnet: send to %v: %v", dst, err))
	}
}

// senderFor returns (dialing if necessary) the outbound connection to a
// peer's data address.
func (n *Node) senderFor(addr string) (*sender, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("tcpnet: node closed")
	}
	if s, ok := n.conns[addr]; ok {
		return s, nil
	}
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	s := &sender{c: c, w: bufio.NewWriter(c)}
	n.conns[addr] = s
	return s, nil
}

// writeFrame encodes and flushes one message.
func (s *sender) writeFrame(msg *comm.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hdr [4 + wireHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(wireHeaderLen+len(msg.Data)))
	putHeader(hdr[4:], msg.Hdr)
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(msg.Data); err != nil {
		return err
	}
	return s.w.Flush()
}

func putHeader(b []byte, h comm.Header) {
	fields := [9]int32{h.SrcPE, h.SrcProc, h.SrcThread, h.DstPE, h.DstProc, h.Ctx, h.Tag, h.Size, h.Flags}
	for i, f := range fields {
		binary.BigEndian.PutUint32(b[i*4:], uint32(f))
	}
}

func getHeader(b []byte) comm.Header {
	f := func(i int) int32 { return int32(binary.BigEndian.Uint32(b[i*4:])) }
	return comm.Header{
		SrcPE: f(0), SrcProc: f(1), SrcThread: f(2),
		DstPE: f(3), DstProc: f(4), Ctx: f(5), Tag: f(6), Size: f(7), Flags: f(8),
	}
}

// acceptLoop receives inbound connections; each gets a reader goroutine.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.inbound[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		//chant:allow-nondet real network I/O goroutine
		go n.readLoop(c)
	}
}

// readLoop decodes frames from one inbound connection and delivers them to
// the addressed local endpoint.
func (n *Node) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return // peer closed
		}
		frameLen := binary.BigEndian.Uint32(lenBuf[:])
		if frameLen < wireHeaderLen || frameLen > maxFrame {
			return // corrupt stream
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return
		}
		hdr := getHeader(frame)
		data := frame[wireHeaderLen:]
		n.mu.Lock()
		ep := n.eps[hdr.Dst()]
		n.mu.Unlock()
		if ep == nil {
			continue // no such local endpoint; drop (like NX)
		}
		ep.DeliverLocal(&comm.Message{Hdr: hdr, Data: data})
	}
}

// Close shuts the node down: the listener, all connections, and the reader
// goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := n.conns
	n.conns = map[string]*sender{}
	var inbound []net.Conn
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()
	err := n.ln.Close()
	// Teardown is order-insensitive: each Close is independent.
	//chant:allow-nondet connection teardown order does not matter
	for _, s := range conns {
		s.c.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	n.wg.Wait()
	return err
}
