package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/trace"
)

// freeRendezvous picks an ephemeral rendezvous address by binding and
// immediately releasing a port. (A race with other processes is possible
// in principle; these tests run alone in CI.)
func freeRendezvous(t testing.TB) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// bootMachine starts procs nodes joined at one rendezvous, with one
// endpoint each, and returns them with a cleanup.
func bootMachine(t testing.TB, procs int) ([]*Node, []*comm.Endpoint) {
	t.Helper()
	rendezvous := freeRendezvous(t)
	nodes := make([]*Node, procs)
	eps := make([]*comm.Endpoint, procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := Bootstrap(Options{
				Self:       comm.Addr{PE: int32(i), Proc: 0},
				Rendezvous: rendezvous,
				Lead:       i == 0,
				Procs:      procs,
			})
			if err != nil {
				errs[i] = err
				return
			}
			nodes[i] = n
			eps[i] = n.NewEndpoint(comm.Addr{PE: int32(i), Proc: 0},
				machine.NewRealHost(machine.Modern()), &trace.Counters{})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d bootstrap: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return nodes, eps
}

func TestBootstrapDiscoversAllPeers(t *testing.T) {
	nodes, _ := bootMachine(t, 3)
	for i, n := range nodes {
		if got := len(n.Peers()); got != 3 {
			t.Errorf("node %d sees %d peers, want 3", i, got)
		}
	}
}

func TestSendRecvOverTCP(t *testing.T) {
	_, eps := bootMachine(t, 2)
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 64)
		n, hdr, err := eps[1].Recv(comm.MatchAll, buf)
		if err != nil {
			t.Error(err)
		}
		done <- fmt.Sprintf("%s tag=%d src=%d", buf[:n], hdr.Tag, hdr.SrcPE)
	}()
	eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 5, 9, 2, []byte("across the wire"))
	select {
	case got := <-done:
		if got != "across the wire tag=9 src=0" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out")
	}
}

func TestTCPNonOvertaking(t *testing.T) {
	_, eps := bootMachine(t, 2)
	const n = 200
	done := make(chan bool, 1)
	go func() {
		buf := make([]byte, 4)
		for i := 0; i < n; i++ {
			eps[1].Recv(comm.MatchAll, buf)
			if int(buf[0]) != i%256 {
				t.Errorf("message %d arrived out of order (got %d)", i, buf[0])
				done <- false
				return
			}
		}
		done <- true
	}()
	for i := 0; i < n; i++ {
		eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte{byte(i % 256)})
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("timed out")
	}
}

func TestTCPLargeMessage(t *testing.T) {
	_, eps := bootMachine(t, 2)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan bool, 1)
	go func() {
		buf := make([]byte, len(payload))
		n, _, err := eps[1].Recv(comm.MatchAll, buf)
		if err != nil || n != len(payload) {
			t.Errorf("recv n=%d err=%v", n, err)
		}
		for i := range buf {
			if buf[i] != byte(i*31) {
				t.Errorf("payload corrupt at %d", i)
				break
			}
		}
		done <- true
	}()
	eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, payload)
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("timed out")
	}
}

func TestTCPBidirectional(t *testing.T) {
	_, eps := bootMachine(t, 2)
	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, []byte("ping"))
			eps[0].Recv(comm.MatchAll, buf)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			eps[1].Recv(comm.MatchAll, buf)
			eps[1].Send(comm.Addr{PE: 0, Proc: 0}, 0, 2, 0, []byte("pong"))
		}
	}()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("ping-pong deadlocked")
	}
}

func TestHeaderWireRoundtrip(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i, j int32) bool {
		hdr := comm.Header{SrcPE: a, SrcProc: b, SrcThread: c, DstPE: d, DstProc: e, Ctx: g, Tag: h, Size: i, Flags: j}
		var buf [wireHeaderLen]byte
		putHeader(buf[:], hdr)
		return getHeader(buf[:]) == hdr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	nodes, _ := bootMachine(t, 2)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSendToUnknownPanics(t *testing.T) {
	_, eps := bootMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("send to process outside the table did not panic")
		}
	}()
	eps[0].Send(comm.Addr{PE: 9, Proc: 9}, 0, 1, 0, []byte("x"))
}

func TestLoopbackThroughNode(t *testing.T) {
	_, eps := bootMachine(t, 2)
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 8)
		eps[0].Recv(comm.MatchAll, buf)
		close(done)
	}()
	eps[0].Send(comm.Addr{PE: 0, Proc: 0}, 0, 1, 0, []byte("self"))
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loopback lost")
	}
}

// bootWithOptions is bootMachine with per-node option tweaks applied on top
// of the defaults.
func bootWithOptions(t *testing.T, procs int, tweak func(o *Options)) ([]*Node, []*comm.Endpoint) {
	t.Helper()
	rendezvous := freeRendezvous(t)
	nodes := make([]*Node, procs)
	eps := make([]*comm.Endpoint, procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := Options{
				Self:       comm.Addr{PE: int32(i), Proc: 0},
				Rendezvous: rendezvous,
				Lead:       i == 0,
				Procs:      procs,
			}
			if tweak != nil {
				tweak(&o)
			}
			n, err := Bootstrap(o)
			if err != nil {
				errs[i] = err
				return
			}
			nodes[i] = n
			eps[i] = n.NewEndpoint(comm.Addr{PE: int32(i), Proc: 0},
				machine.NewRealHost(machine.Modern()), &trace.Counters{})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d bootstrap: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return nodes, eps
}

func TestTCPHeartbeatDetectsKilledPeer(t *testing.T) {
	nodes, eps := bootWithOptions(t, 2, func(o *Options) {
		o.Heartbeat = 25 * time.Millisecond
	})
	peer := comm.Addr{PE: 1, Proc: 0}
	// Post a receive pinned to the peer, then kill it.
	spec := comm.MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: comm.Any, Ctx: comm.Any, Tag: comm.Any}
	h := eps[0].Irecv(spec, make([]byte, 8))
	nodes[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for !nodes[0].PeerDead(peer) {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat failure detector never declared the killed peer dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !eps[0].Test(h) || !errors.Is(h.Err(), comm.ErrPeerDead) {
		t.Fatalf("pinned receive after peer death: done=%v err=%v", h.Done(), h.Err())
	}
	if !eps[0].PeerDead(peer) {
		t.Error("endpoint did not record the dead peer")
	}
	// Sends to the dead peer are now silently discarded, not panics.
	eps[0].Send(peer, 0, 1, 0, []byte("into the void"))
	if got := eps[0].Counters().PeersDead.Load(); got != 1 {
		t.Errorf("PeersDead = %d, want 1", got)
	}
}

func TestTCPHeartbeatKeepsLivePeerAlive(t *testing.T) {
	nodes, _ := bootWithOptions(t, 2, func(o *Options) {
		o.Heartbeat = 20 * time.Millisecond
	})
	// Well past several miss windows, an idle but live peer must not be
	// declared dead — its heartbeats keep it fresh.
	time.Sleep(300 * time.Millisecond)
	if nodes[0].PeerDead(comm.Addr{PE: 1, Proc: 0}) || nodes[1].PeerDead(comm.Addr{PE: 0, Proc: 0}) {
		t.Fatal("live idle peer declared dead")
	}
}

func TestBackoffStateDoublesAndResets(t *testing.T) {
	// Deterministic check of the redial pacing: the pause doubles per
	// failure, saturates at the cap, and reset() — driven by noteAlive when
	// the peer proves alive — drops it back to the initial value. The old
	// behaviour (never resetting) meant one outage throttled a peer forever.
	b := newBackoffState()
	want := redialBackoff0
	for i := 0; i < 12; i++ {
		got := b.next()
		if got != want {
			t.Fatalf("pause %d = %v, want %v", i, got, want)
		}
		if want *= 2; want > redialBackoffM {
			want = redialBackoffM
		}
	}
	if b.cur != redialBackoffM {
		t.Fatalf("backoff did not saturate: %v", b.cur)
	}
	b.reset()
	if got := b.next(); got != redialBackoff0 {
		t.Fatalf("pause after reset = %v, want %v", got, redialBackoff0)
	}
}

func TestNoteAliveResetsBackoff(t *testing.T) {
	nodes, _ := bootMachine(t, 2)
	peer := comm.Addr{PE: 1, Proc: 0}
	// Ratchet the peer's backoff up as a string of failed deliveries would.
	for i := 0; i < 10; i++ {
		nodes[0].nextBackoff(peer)
	}
	nodes[0].mu.Lock()
	ratcheted := nodes[0].backoffs[peer].cur
	nodes[0].mu.Unlock()
	if ratcheted != redialBackoffM {
		t.Fatalf("backoff after 10 failures = %v, want the %v cap", ratcheted, redialBackoffM)
	}
	nodes[0].noteAlive(peer)
	if got := nodes[0].nextBackoff(peer); got != redialBackoff0 {
		t.Fatalf("backoff after the peer proved alive = %v, want %v", got, redialBackoff0)
	}
}

func TestTCPHeartbeatRejoinRevivesDeadPeer(t *testing.T) {
	nodes, eps := bootWithOptions(t, 2, func(o *Options) {
		o.Heartbeat = 20 * time.Millisecond
		if o.Self.PE == 1 {
			o.Epoch = 3 // the "restarted" incarnation
		}
	})
	peer := comm.Addr{PE: 1, Proc: 0}
	// Declare the peer dead locally (a premature or outdated verdict — the
	// peer's process is in fact up and heartbeating).
	nodes[0].markPeerDead(peer)
	if !nodes[0].PeerDead(peer) || !eps[0].PeerDead(peer) {
		t.Fatal("markPeerDead did not take")
	}
	// The peer's next heartbeat is the rejoin signal: the dead mark clears
	// on node and endpoint, and its epoch is recorded.
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].PeerDead(peer) {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat from a live peer never cleared the dead mark")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if eps[0].PeerDead(peer) {
		t.Error("endpoint dead mark survived the rejoin")
	}
	if got := eps[0].Counters().PeersRecovered.Load(); got != 1 {
		t.Errorf("PeersRecovered = %d, want 1", got)
	}
	if got := nodes[0].PeerEpoch(peer); got != 3 {
		t.Errorf("PeerEpoch = %d, want 3", got)
	}
	// Traffic flows again: a pinned receive completes normally.
	done := make(chan error, 1)
	go func() {
		spec := comm.MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: comm.Any, Ctx: comm.Any, Tag: comm.Any}
		h := eps[0].Irecv(spec, make([]byte, 8))
		eps[0].Wait(h)
		done <- h.Err()
	}()
	eps[1].Send(comm.Addr{PE: 0, Proc: 0}, 0, 1, 0, []byte("rejoined"))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recv from rejoined peer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("message from rejoined peer never arrived")
	}
}

func TestReadBufSizeClamps(t *testing.T) {
	cases := []struct {
		maxFrame uint32
		want     int
	}{
		{0, minReadBuf},              // degenerate config still gets a sane buffer
		{1024, minReadBuf},           // small frames clamp up to the floor
		{minReadBuf - 4, minReadBuf}, // exactly at the floor after the prefix
		{64 << 10, 64<<10 + 4},       // one maximal frame plus its length prefix
		{64 << 20, maxReadBuf},       // permissive default clamps to the ceiling
		{^uint32(0), maxReadBuf},     // overflow-adjacent input stays clamped
		{maxReadBuf - 4, maxReadBuf}, // largest un-clamped value
		{maxReadBuf - 3, maxReadBuf}, // first value past the ceiling
	}
	for _, c := range cases {
		if got := readBufSize(c.maxFrame); got != c.want {
			t.Errorf("readBufSize(%d) = %d, want %d", c.maxFrame, got, c.want)
		}
	}
}

// TestTCPFrameSizesAroundReadBuffer walks payload sizes straddling the old
// fixed 4 KiB bufio default and the sized read buffer, so both the in-buffer
// zero-copy path (Peek + TryDeliverDirect) and the straddling pooled
// fallback are exercised, in order, on one connection.
func TestTCPFrameSizesAroundReadBuffer(t *testing.T) {
	_, eps := bootWithOptions(t, 2, func(o *Options) {
		o.MaxFrameSize = 64 << 10
	})
	sizes := []int{1, 4095, 4096, 4097, 8192, 16384, 60 << 10}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		for i, size := range sizes {
			n, hdr, err := eps[1].Recv(comm.MatchAll, buf)
			if err != nil {
				done <- fmt.Errorf("recv %d: %v", i, err)
				return
			}
			if n != size || hdr.Tag != int32(i) {
				done <- fmt.Errorf("message %d: n=%d tag=%d, want n=%d tag=%d", i, n, hdr.Tag, size, i)
				return
			}
			for j := 0; j < n; j++ {
				if buf[j] != byte(j*7+i) {
					done <- fmt.Errorf("message %d corrupt at byte %d", i, j)
					return
				}
			}
		}
		done <- nil
	}()
	for i, size := range sizes {
		payload := make([]byte, size)
		for j := range payload {
			payload[j] = byte(j*7 + i)
		}
		eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 0, int32(i), 0, payload)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("timed out")
	}
}

// TestTCPLargeFrameToPostedReceive pre-posts a receive for a frame larger
// than the old 4 KiB read buffer, the shape the zero-copy Peek path was
// built for, and checks the payload lands intact in the posted buffer.
func TestTCPLargeFrameToPostedReceive(t *testing.T) {
	_, eps := bootWithOptions(t, 2, func(o *Options) {
		o.MaxFrameSize = 128 << 10
	})
	const size = 64 << 10
	buf := make([]byte, size)
	spec := comm.MatchSpec{SrcPE: 0, SrcProc: 0, SrcThread: comm.Any, Ctx: comm.Any, Tag: 42}
	h := eps[1].Irecv(spec, buf)
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}
	eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 0, 42, 0, payload)
	done := make(chan struct{})
	go func() {
		eps[1].Wait(h)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("posted large receive never completed")
	}
	if h.Err() != nil || h.Len() != size {
		t.Fatalf("len=%d err=%v", h.Len(), h.Err())
	}
	for i := range buf {
		if buf[i] != byte(i*13+5) {
			t.Fatalf("payload corrupt at %d", i)
		}
	}
}

func TestTCPOversizeFramePanics(t *testing.T) {
	_, eps := bootWithOptions(t, 2, func(o *Options) {
		o.MaxFrameSize = 4096
	})
	defer func() {
		if recover() == nil {
			t.Error("oversize send did not panic")
		}
	}()
	eps[0].Send(comm.Addr{PE: 1, Proc: 0}, 0, 1, 0, make([]byte, 8192))
}
