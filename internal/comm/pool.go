package comm

import "sync"

// Message recycling for the real (wall-clock) transports. On memnet and
// tcpnet every send and every arrival allocated a fresh Message plus
// payload buffer; at ping-pong rates that garbage dominates the profile.
// Messages drawn from the pool carry pooled=true and are returned at their
// terminal-copy point — the mailbox releases them after depositing into the
// user buffer (match, immediate post, or drop-at-cap), and tcpnet releases
// its send-side message after serializing the frame.
//
// sync.Pool reuse order is scheduling-dependent, so pooling is strictly a
// real-mode optimization: SendFlags only draws from the pool when the host
// is non-deterministic, simulated transports may re-deliver the same
// *Message under fault-injected duplication, and releaseMessage is a no-op
// for the unpooled messages simulation uses. The determinism witness
// (TestChaosSoak) and detlint's sync.Pool check hold this line.

//chant:allow-nondet message pool serves real transports only; sim messages never enter it
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// getMessage draws a recycled message, marked for release at its
// terminal-copy point.
func getMessage() *Message {
	//chant:allow-nondet message pool serves real transports only
	m := msgPool.Get().(*Message)
	m.pooled = true
	return m
}

// releaseMessage returns a pooled message for reuse; a no-op for messages
// allocated outside the pool (everything simulation sends).
func releaseMessage(m *Message) {
	if !m.pooled {
		return
	}
	m.pooled = false
	m.Hdr = Header{}
	m.Data = m.Data[:0]
	m.SentAt = 0
	m.next = nil
	//chant:allow-nondet message pool serves real transports only
	msgPool.Put(m)
}

// sizeData resizes m.Data to n bytes, reusing capacity when possible.
func (m *Message) sizeData(n int) {
	if cap(m.Data) >= n {
		m.Data = m.Data[:n]
	} else {
		m.Data = make([]byte, n)
	}
}

// GetPooledMessage returns a recycled message with Data sized to n bytes,
// for a real transport's receive path; the mailbox releases it after the
// deposit copy.
func GetPooledMessage(n int) *Message {
	m := getMessage()
	m.sizeData(n)
	return m
}

// ReleaseMessage returns a pooled message for reuse, for transports that
// finish with a message outside the mailbox (tcpnet's sender releases the
// submitted message once the frame is serialized). No-op for unpooled
// messages.
func ReleaseMessage(m *Message) { releaseMessage(m) }
