package comm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// realFakeHost is a manual-clock Host reporting Deterministic()==false, so
// endpoint unit tests can exercise the real-mode data plane (ingress ring,
// batched drain, zero-copy direct path) without a wall-clock runtime.
type realFakeHost struct {
	model *machine.Model
	now   sim.Time

	mu         sync.Mutex
	interrupts int
}

func newRealFakeHost() *realFakeHost { return &realFakeHost{model: machine.Modern()} }

func (h *realFakeHost) Now() sim.Time         { return h.now }
func (h *realFakeHost) Charge(d sim.Duration) {}
func (h *realFakeHost) Compute(units int64)   {}
func (h *realFakeHost) Idle()                 { panic("realFakeHost cannot idle") }
func (h *realFakeHost) Interrupt() {
	h.mu.Lock()
	h.interrupts++
	h.mu.Unlock()
}
func (h *realFakeHost) Interrupts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.interrupts
}
func (h *realFakeHost) Model() *machine.Model { return h.model }
func (h *realFakeHost) Deterministic() bool   { return false }

func newRealEndpoint() (*Endpoint, *realFakeHost) {
	host := newRealFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{PE: 0, Proc: 0}, host, &ctrs, &captureTransport{})
	return ep, host
}

func hdrFrom(srcPE, tag int32) Header {
	return Header{SrcPE: srcPE, SrcProc: 0, SrcThread: 0, DstPE: 0, DstProc: 0, Ctx: 0, Tag: tag}
}

// TestIngressFIFOPerProducer hammers the raw ring from several producers and
// checks that take() preserves each producer's push order and loses nothing.
func TestIngressFIFOPerProducer(t *testing.T) {
	const producers, perProducer = 8, 500
	var q ingress
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m := &Message{Hdr: Header{SrcPE: int32(p), Tag: int32(i)}}
				q.push(m)
			}
		}()
	}
	wg.Wait()
	lastSeen := make([]int32, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	total := 0
	for msg := q.take(); msg != nil; msg = msg.next {
		p := msg.Hdr.SrcPE
		if msg.Hdr.Tag <= lastSeen[p] {
			t.Fatalf("producer %d reordered: tag %d after %d", p, msg.Hdr.Tag, lastSeen[p])
		}
		lastSeen[p] = msg.Hdr.Tag
		total++
	}
	if total != producers*perProducer {
		t.Fatalf("drained %d messages, want %d", total, producers*perProducer)
	}
	if !q.empty() {
		t.Fatal("ring not empty after take")
	}
}

// TestIngressBatchedDrain checks that a burst of real-mode deliveries is
// deposited in one batch by the next receive-side operation, with one
// interrupt for the whole burst.
func TestIngressBatchedDrain(t *testing.T) {
	ep, host := newRealEndpoint()
	const burst = 16
	for i := 0; i < burst; i++ {
		m := &Message{Hdr: hdrFrom(1, int32(i))}
		m.Data = []byte(fmt.Sprintf("m%d", i))
		ep.DeliverLocal(m)
	}
	if got := host.Interrupts(); got != 1 {
		t.Fatalf("burst of %d raised %d interrupts, want 1 (empty-to-nonempty edge only)", burst, got)
	}
	if ep.Counters().EarlyArrivals.Load() != 0 {
		t.Fatal("early arrivals counted before any drain")
	}
	// Any receive-side operation drains the whole backlog in one batch.
	if _, unexp := ep.QueueDepths(); unexp != burst {
		t.Fatalf("unexpected queue after drain: %d, want %d", unexp, burst)
	}
	batches, msgs, _ := ep.IngressStats()
	if batches != 1 || msgs != burst {
		t.Fatalf("ingress stats: %d batches / %d messages, want 1 / %d", batches, msgs, burst)
	}
	if got := ep.Counters().EarlyArrivals.Load(); got != burst {
		t.Fatalf("early arrivals after drain: %d, want %d", got, burst)
	}
	// FIFO through the ring: the unexpected queue holds the burst in push
	// order.
	var tags []int32
	ep.UnexpectedSnapshot(func(hdr Header, data []byte, _ sim.Time) {
		tags = append(tags, hdr.Tag)
	})
	for i, tag := range tags {
		if tag != int32(i) {
			t.Fatalf("unexpected queue out of order: position %d holds tag %d", i, tag)
		}
	}
}

// TestDirectDeliverZeroCopy checks the matched-receive fast path: with a
// posted receive, TryDeliverDirect completes it from the caller's buffer
// without any Message, and the stats record the direct delivery.
func TestDirectDeliverZeroCopy(t *testing.T) {
	ep, host := newRealEndpoint()
	buf := make([]byte, 16)
	h := ep.Irecv(MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: 7}, buf)
	payload := []byte("hello")
	if !ep.TryDeliverDirect(hdrFrom(1, 7), payload) {
		t.Fatal("direct delivery declined with a matching receive posted")
	}
	if !h.Done() {
		t.Fatal("handle not done after direct delivery")
	}
	if !bytes.Equal(buf[:h.Len()], payload) {
		t.Fatalf("deposited %q, want %q", buf[:h.Len()], payload)
	}
	if _, _, direct := ep.IngressStats(); direct != 1 {
		t.Fatalf("direct count %d, want 1", direct)
	}
	if host.Interrupts() != 1 {
		t.Fatalf("interrupts %d, want 1", host.Interrupts())
	}
	// Without a matching posted receive the fast path declines — the message
	// must take the ordinary path so it can join the unexpected queue.
	if ep.TryDeliverDirect(hdrFrom(1, 99), payload) {
		t.Fatal("direct delivery accepted with no matching receive")
	}
}

// TestDirectRespectsRingOrder checks the non-overtaking guard: while earlier
// arrivals sit undrained in the ingress ring, the direct path must decline,
// or a sender's second message could complete a receive before its first.
func TestDirectRespectsRingOrder(t *testing.T) {
	ep, _ := newRealEndpoint()
	buf := make([]byte, 16)
	ep.Irecv(MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: Any}, buf)
	// First message from the same sender is still in the ring (the consumer
	// has not drained)...
	first := &Message{Hdr: hdrFrom(1, 1), Data: []byte("first")}
	ep.ing.push(first)
	// ...so the sender's second message must not jump the queue.
	if ep.TryDeliverDirect(hdrFrom(1, 2), []byte("second")) {
		t.Fatal("direct delivery overtook a ring-resident message")
	}
	ep.drainIngress()
	var tags []int32
	ep.UnexpectedSnapshot(func(hdr Header, _ []byte, _ sim.Time) { tags = append(tags, hdr.Tag) })
	if len(tags) != 0 {
		t.Fatalf("unexpected queue %v; the posted wildcard receive should have matched the first message", tags)
	}
}

// TestSerialDeliveryKnob checks the benchmark control arm: under serial
// delivery every message takes the per-message mailbox path (ring untouched)
// and the direct path declines.
func TestSerialDeliveryKnob(t *testing.T) {
	ep, host := newRealEndpoint()
	ep.SetSerialDelivery(true)
	buf := make([]byte, 16)
	ep.Irecv(MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: 7}, buf)
	if ep.TryDeliverDirect(hdrFrom(1, 7), []byte("x")) {
		t.Fatal("direct delivery accepted under serial mode")
	}
	for i := 0; i < 4; i++ {
		ep.DeliverLocal(&Message{Hdr: hdrFrom(1, int32(100+i)), Data: []byte("y")})
	}
	if got := host.Interrupts(); got != 4 {
		t.Fatalf("serial mode raised %d interrupts for 4 messages, want 4", got)
	}
	batches, msgs, direct := ep.IngressStats()
	if batches != 0 || msgs != 0 || direct != 0 {
		t.Fatalf("serial mode touched the ring: stats %d/%d/%d", batches, msgs, direct)
	}
}

// TestDeterministicEndpointBypassesRing checks the sim-isolation invariant:
// a deterministic endpoint delivers synchronously and never touches the
// ingress ring or the direct path, so simulated event streams cannot see
// either.
func TestDeterministicEndpointBypassesRing(t *testing.T) {
	host := newFakeHost()
	var ctrs trace.Counters
	ep := NewEndpoint(Addr{PE: 0, Proc: 0}, host, &ctrs, &captureTransport{})
	if ep.TryDeliverDirect(hdrFrom(1, 7), []byte("x")) {
		t.Fatal("direct delivery accepted on a deterministic endpoint")
	}
	ep.DeliverLocal(&Message{Hdr: hdrFrom(1, 1), Data: []byte("x")})
	if host.interrupts != 1 {
		t.Fatalf("deterministic delivery raised %d interrupts, want 1 (synchronous path)", host.interrupts)
	}
	if batches, msgs, direct := ep.IngressStats(); batches != 0 || msgs != 0 || direct != 0 {
		t.Fatalf("deterministic endpoint touched the ring: stats %d/%d/%d", batches, msgs, direct)
	}
	if ctrs.EarlyArrivals.Load() != 1 {
		t.Fatal("early arrival not counted synchronously on the deterministic path")
	}
}

// TestDirectTruncationAndSyncFlag checks that the zero-copy deposit keeps
// complete()'s semantics: truncation to the posted buffer is reported, and
// the FlagSync acknowledgement latch still works.
func TestDirectTruncationAndSyncFlag(t *testing.T) {
	ep, _ := newRealEndpoint()
	buf := make([]byte, 3)
	h := ep.Irecv(MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: 7}, buf)
	hdr := hdrFrom(1, 7)
	hdr.Flags = FlagSync
	if !ep.TryDeliverDirect(hdr, []byte("hello")) {
		t.Fatal("direct delivery declined")
	}
	if h.Err() != ErrTruncated {
		t.Fatalf("err %v, want ErrTruncated", h.Err())
	}
	if string(buf) != "hel" {
		t.Fatalf("buffer %q, want %q", buf, "hel")
	}
	if !h.NeedsSyncAck() {
		t.Fatal("sync send not flagged for acknowledgement")
	}
	if h.NeedsSyncAck() {
		t.Fatal("sync ack latch fired twice")
	}
}
