package comm

import "chant/internal/sim"

// This file keeps two thin faces over the matching engines for tests and
// benchmarks: Matcher exposes the production bucketed mailbox standalone
// (no endpoint, no cost accounting), and RefMatcher preserves the seed's
// linear algorithm verbatim as the reference model. The differential
// property test drives both with the same operation stream and asserts
// identical match results; BenchmarkHotPathMatch* measures one against the
// other.

// NewRecvHandle creates a bare receive handle bound to no endpoint, for
// driving a Matcher or RefMatcher directly.
func NewRecvHandle(spec MatchSpec, buf []byte) *RecvHandle {
	return &RecvHandle{spec: spec, buf: buf}
}

// RearmHandle resets a terminal bare handle and re-initializes it for
// another post, so matcher benchmarks can measure match cost without a
// handle allocation per operation. Only for handles made by NewRecvHandle;
// endpoint-owned handles are recycled through ReleaseHandle.
func RearmHandle(h *RecvHandle, spec MatchSpec, buf []byte) {
	h.Reset()
	h.spec, h.buf = spec, buf
}

// Matcher is the production bucketed matching engine, standalone.
type Matcher struct{ mb mailbox }

// NewMatcher creates an empty bucketed matcher.
func NewMatcher() *Matcher { return &Matcher{} }

// SetUnexpectedCap bounds the unexpected queue (zero = unbounded).
func (m *Matcher) SetUnexpectedCap(cap int) { m.mb.unexpectedCap = cap }

// Deliver matches msg against posted receives; see mailbox.deliver.
func (m *Matcher) Deliver(msg *Message, at sim.Time) (*RecvHandle, bool) {
	return m.mb.deliver(msg, at)
}

// Post registers a receive; see mailbox.post.
func (m *Matcher) Post(h *RecvHandle, at sim.Time) bool { return m.mb.post(h, at) }

// Remove cancels a posted receive; see mailbox.remove.
func (m *Matcher) Remove(h *RecvHandle) bool { return m.mb.remove(h) }

// RemoveFailed withdraws and fails a posted receive; see
// mailbox.removeFailed.
func (m *Matcher) RemoveFailed(h *RecvHandle, err error, status Status, at sim.Time) bool {
	return m.mb.removeFailed(h, err, status, at)
}

// FailPeer fails every receive pinned to peer; see mailbox.failPeer.
func (m *Matcher) FailPeer(peer Addr, at sim.Time) int { return m.mb.failPeer(peer, at) }

// FindUnexpected probes the unexpected queue; see mailbox.findUnexpected.
func (m *Matcher) FindUnexpected(spec MatchSpec) (Header, bool) {
	return m.mb.findUnexpected(spec)
}

// Depths reports queue lengths.
func (m *Matcher) Depths() (posted, unexpected int) { return m.mb.depths() }

// RefMatcher is the seed's linear matching engine: every operation scans a
// flat slice. Semantics are identical to Matcher by construction — the
// property test in mailbox_test.go enforces it.
type RefMatcher struct {
	posted        []*RecvHandle
	unexpected    []*Message
	UnexpectedCap int
}

// Deliver matches msg against posted receives with a linear scan.
func (mb *RefMatcher) Deliver(msg *Message, at sim.Time) (*RecvHandle, bool) {
	for i, h := range mb.posted {
		if h.spec.Matches(msg.Hdr) {
			copy(mb.posted[i:], mb.posted[i+1:])
			mb.posted[len(mb.posted)-1] = nil
			mb.posted = mb.posted[:len(mb.posted)-1]
			h.complete(msg, at)
			return h, false
		}
	}
	if mb.UnexpectedCap > 0 && len(mb.unexpected) >= mb.UnexpectedCap {
		return nil, true
	}
	mb.unexpected = append(mb.unexpected, msg)
	return nil, false
}

// Post registers a receive, consuming the oldest matching unexpected
// message if one exists.
func (mb *RefMatcher) Post(h *RecvHandle, at sim.Time) bool {
	for i, msg := range mb.unexpected {
		if h.spec.Matches(msg.Hdr) {
			copy(mb.unexpected[i:], mb.unexpected[i+1:])
			mb.unexpected[len(mb.unexpected)-1] = nil
			mb.unexpected = mb.unexpected[:len(mb.unexpected)-1]
			h.complete(msg, at)
			return true
		}
	}
	mb.posted = append(mb.posted, h)
	return false
}

// Remove cancels a posted receive.
func (mb *RefMatcher) Remove(h *RecvHandle) bool {
	for i, p := range mb.posted {
		if p == h {
			copy(mb.posted[i:], mb.posted[i+1:])
			mb.posted[len(mb.posted)-1] = nil
			mb.posted = mb.posted[:len(mb.posted)-1]
			h.canceled = true
			return true
		}
	}
	return false
}

// RemoveFailed withdraws and fails a posted receive.
func (mb *RefMatcher) RemoveFailed(h *RecvHandle, err error, status Status, at sim.Time) bool {
	for i, p := range mb.posted {
		if p == h {
			copy(mb.posted[i:], mb.posted[i+1:])
			mb.posted[len(mb.posted)-1] = nil
			mb.posted = mb.posted[:len(mb.posted)-1]
			h.fail(err, status, at)
			return true
		}
	}
	return false
}

// FailPeer fails every posted receive pinned to peer, in post order.
func (mb *RefMatcher) FailPeer(peer Addr, at sim.Time) int {
	failed := 0
	kept := mb.posted[:0]
	for _, h := range mb.posted {
		if h.spec.SrcPE == peer.PE && h.spec.SrcProc == peer.Proc {
			h.fail(ErrPeerDead, StatusPeerDead, at)
			failed++
		} else {
			kept = append(kept, h)
		}
	}
	for i := len(kept); i < len(mb.posted); i++ {
		mb.posted[i] = nil
	}
	mb.posted = kept
	return failed
}

// FindUnexpected probes for the oldest matching unexpected message.
func (mb *RefMatcher) FindUnexpected(spec MatchSpec) (Header, bool) {
	for _, msg := range mb.unexpected {
		if spec.Matches(msg.Hdr) {
			return msg.Hdr, true
		}
	}
	return Header{}, false
}

// Depths reports queue lengths.
func (mb *RefMatcher) Depths() (posted, unexpected int) {
	return len(mb.posted), len(mb.unexpected)
}
