package machine

import (
	"errors"
	"fmt"

	"chant/internal/sim"
)

// Calibration utilities: the Paragon1994 model's wire curve was fitted
// from the paper's Table 2 with exactly this least-squares routine, kept
// here so the fit is reproducible and so users can calibrate models
// against their own measurements.

// Sample is one (message size, one-way time) measurement.
type Sample struct {
	SizeBytes int
	Time      sim.Duration
}

// ErrFit reports a degenerate calibration input.
var ErrFit = errors.New("machine: cannot fit latency model")

// FitWire least-squares fits time = base + perByte*size to the samples and
// returns the coefficients. It requires at least two samples with distinct
// sizes and rejects fits with a non-positive base or slope (which would
// let simulated messages arrive in the past).
func FitWire(samples []Sample) (base sim.Duration, perByteNs float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("%w: need >= 2 samples, got %d", ErrFit, len(samples))
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		x := float64(s.SizeBytes)
		y := float64(s.Time)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(samples))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("%w: all samples have the same size", ErrFit)
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	if slope <= 0 || intercept <= 0 {
		return 0, 0, fmt.Errorf("%w: non-positive coefficients (base %.1fns, %.3fns/B)",
			ErrFit, intercept, slope)
	}
	return sim.Duration(intercept + 0.5), slope, nil
}

// Calibrated returns a copy of m with its wire curve replaced by a fit of
// the samples, with the end-host overheads (send + receive) subtracted
// from the fitted base.
func (m *Model) Calibrated(name string, samples []Sample) (*Model, error) {
	base, perByte, err := FitWire(samples)
	if err != nil {
		return nil, err
	}
	out := *m
	out.Name = name
	wire := base - sim.Duration(m.SendOverhead) - sim.Duration(m.RecvOverhead)
	if wire <= 0 {
		return nil, fmt.Errorf("%w: fitted base %v below end-host overheads", ErrFit, base)
	}
	out.NetBase = wire
	out.NetPerByteNs = perByte
	return &out, nil
}
