// Package machine defines the cost model of the simulated multicomputer and
// the Host abstraction through which the runtime consumes time, so the same
// scheduler and messaging code runs against either the discrete-event
// simulator (deterministic virtual time) or the real clock.
//
// The paper evaluated Chant on an Intel Paragon using the NX message-passing
// library. We do not have a Paragon; instead the Paragon1994 model is
// calibrated from the paper's own measurements (Table 2 gives the wire cost
// curve; Tables 3-5 constrain the msgtest, context-switch, and compute-unit
// costs). Event *counts* produced by the runtime are independent of this
// model; only reported times depend on it.
package machine

import "chant/internal/sim"

// Model holds the per-operation costs of one machine configuration. All
// costs are virtual durations charged through a Host.
type Model struct {
	Name string

	// Communication costs.
	NetBase      sim.Duration // per-message wire latency (the alpha in alpha+beta*n)
	NetPerByteNs float64      // per-byte wire cost in nanoseconds (the beta)
	NetPerHop    sim.Duration // extra latency per mesh hop beyond the first (2D-mesh networks)
	Loopback     sim.Duration // base latency for a message to the sender's own process
	SendOverhead sim.Duration // CPU time consumed posting a send
	RecvOverhead sim.Duration // CPU time consumed completing a matched receive
	MsgTestHit   sim.Duration // msgtest finding the message already arrived
	MsgTestMiss  sim.Duration // msgtest finding the operation incomplete
	TestAnyBase  sim.Duration // base cost of a single msgtestany call
	TestAnyPer   sim.Duration // incremental msgtestany cost per outstanding request

	// Thread costs.
	FullSwitch    sim.Duration // complete context switch (save + restore)
	PartialSwitch sim.Duration // TCB inspection without restoring context
	YieldNoSwitch sim.Duration // yield that returns immediately (no other ready thread)
	ThreadCreate  sim.Duration // local thread creation
	ComputeUnit   sim.Duration // one unit of application compute(n)

	// Chant-layer costs.
	HeaderPack     sim.Duration // packing/unpacking the global thread name in the header
	RegisterPoll   sim.Duration // registering a request with the scheduler (WQ policy)
	RSRDispatch    sim.Duration // decoding a remote service request and selecting its handler
	CopyPerByteNs  float64      // memory-copy cost, used by the body-embedding delivery ablation
	IdleRecheckGap sim.Duration // pacing of idle-loop rechecks when nothing is runnable
}

// MsgLatency reports the wire time for an n-byte message: NetBase + beta*n.
func (m *Model) MsgLatency(n int) sim.Duration {
	return m.NetBase + sim.Duration(m.NetPerByteNs*float64(n)+0.5)
}

// CopyCost reports the cost of copying n bytes of message body.
func (m *Model) CopyCost(n int) sim.Duration {
	return sim.Duration(m.CopyPerByteNs*float64(n) + 0.5)
}

// Paragon1994 returns the cost model calibrated against the paper's Intel
// Paragon / NX measurements:
//
//   - The process-based message time in Table 2 is linear in message size:
//     time(n) = 342.8us + 0.3167us/B * n (fits rows 1024..16384 within ~8%).
//     We split the intercept into send overhead, wire base latency, and
//     receive overhead.
//   - The Scheduler-polls-(WQ) penalty in Tables 3-5 is roughly constant per
//     message and attributes ~120us to each failed msgtest (NX required a
//     message-coprocessor interaction per test).
//   - The alpha=10^5 rows of Table 3 put the compute unit near 38ns.
//   - Context-switch costs follow Table 1's user-level thread packages
//     (tens of microseconds on early-90s hardware).
func Paragon1994() *Model {
	return &Model{
		Name:         "paragon-1994",
		NetBase:      223 * sim.Microsecond,
		NetPerByteNs: 316.7,
		NetPerHop:    2 * sim.Microsecond,
		Loopback:     15 * sim.Microsecond,
		SendOverhead: 60 * sim.Microsecond,
		RecvOverhead: 60 * sim.Microsecond,
		MsgTestHit:   15 * sim.Microsecond,
		MsgTestMiss:  120 * sim.Microsecond,
		TestAnyBase:  60 * sim.Microsecond,
		TestAnyPer:   5 * sim.Microsecond,

		FullSwitch:    60 * sim.Microsecond,
		PartialSwitch: 15 * sim.Microsecond,
		YieldNoSwitch: 3 * sim.Microsecond,
		ThreadCreate:  250 * sim.Microsecond,
		ComputeUnit:   38, // nanoseconds

		HeaderPack:     10 * sim.Microsecond,
		RegisterPoll:   8 * sim.Microsecond,
		RSRDispatch:    25 * sim.Microsecond,
		CopyPerByteNs:  20,
		IdleRecheckGap: 30 * sim.Microsecond,
	}
}

// Modern returns a cost model resembling a contemporary cluster node
// (RDMA-class network, sub-microsecond user-level switches). Used to show
// how the paper's conclusions shift when msgtest is no longer expensive.
func Modern() *Model {
	return &Model{
		Name:         "modern",
		NetBase:      2 * sim.Microsecond,
		NetPerByteNs: 0.1, // ~10 GB/s
		NetPerHop:    100 * sim.Nanosecond,
		Loopback:     200 * sim.Nanosecond,
		SendOverhead: 300 * sim.Nanosecond,
		RecvOverhead: 300 * sim.Nanosecond,
		MsgTestHit:   50 * sim.Nanosecond,
		MsgTestMiss:  80 * sim.Nanosecond,
		TestAnyBase:  100 * sim.Nanosecond,
		TestAnyPer:   20 * sim.Nanosecond,

		FullSwitch:    200 * sim.Nanosecond,
		PartialSwitch: 60 * sim.Nanosecond,
		YieldNoSwitch: 30 * sim.Nanosecond,
		ThreadCreate:  1 * sim.Microsecond,
		ComputeUnit:   1,

		HeaderPack:     80 * sim.Nanosecond,
		RegisterPoll:   60 * sim.Nanosecond,
		RSRDispatch:    200 * sim.Nanosecond,
		CopyPerByteNs:  0.05,
		IdleRecheckGap: 500 * sim.Nanosecond,
	}
}
