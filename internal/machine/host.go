package machine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chant/internal/sim"
)

// Host is the execution substrate of one simulated processing element (or,
// in real mode, one OS-level scheduling domain). The thread scheduler and
// communication layers consume time exclusively through a Host, which lets
// identical runtime code execute under the discrete-event simulator or
// against the wall clock.
//
// Charge consumes CPU time on the hosting processor. Compute consumes
// application work in model compute units. Idle parks the processor until
// Interrupt is called (message arrival, wakeup). Interrupt is the only
// method that may be invoked from outside the processor's own execution.
type Host interface {
	// Now reports the processor-local current time.
	Now() sim.Time
	// Charge consumes d of CPU time (runtime overhead: switches, tests, ...).
	Charge(d sim.Duration)
	// Compute consumes units of application work.
	Compute(units int64)
	// Idle parks until Interrupt is called. Interrupts are coalesced: an
	// Interrupt delivered while runnable satisfies the next Idle.
	Idle()
	// Interrupt wakes the processor from Idle (or satisfies the next Idle).
	Interrupt()
	// Model reports the cost model this host charges against.
	Model() *Model
	// Deterministic reports whether this host's runs must be bit-for-bit
	// repeatable (the discrete-event simulator) or merely correct (the wall
	// clock). Optimizations whose effects depend on scheduling order —
	// allocation pooling, batched cost charging — are gated off when true.
	Deterministic() bool
}

// SimHost runs a processing element inside the discrete-event simulator:
// Charge advances the PE's virtual clock, Idle parks the sim process, and
// Interrupt signals it. All methods except Interrupt must be invoked from
// the (single) goroutine currently animating the PE's sim process.
//
// Under the parallel kernel (sim.ParKernel) the PE's process belongs to one
// shard, and "the goroutine animating it" is that shard's worker for the
// duration of a window — still exactly one goroutine at a time, so the
// contract is unchanged. Now reads the shard-local clock while a window
// runs and the kernel-global clock between windows; Interrupt delegates to
// Proc.Signal, whose wake is scheduled through the owning kernel and thus
// lands in the deterministic merged event order regardless of which shard
// (or the controller) raised it.
type SimHost struct {
	proc  *sim.Proc
	model *Model
}

// NewSimHost wraps a simulation process as a Host charging against model.
func NewSimHost(proc *sim.Proc, model *Model) *SimHost {
	return &SimHost{proc: proc, model: model}
}

// Proc exposes the underlying simulation process (used by the simulated
// network to schedule deliveries against the right kernel).
func (h *SimHost) Proc() *sim.Proc { return h.proc }

func (h *SimHost) Now() sim.Time         { return h.proc.Now() }
func (h *SimHost) Charge(d sim.Duration) { h.proc.Advance(d) }
func (h *SimHost) Compute(units int64) {
	h.proc.Advance(sim.Duration(units) * h.model.ComputeUnit)
}
func (h *SimHost) Idle()               { h.proc.WaitSignal() }
func (h *SimHost) Interrupt()          { h.proc.Signal() }
func (h *SimHost) Model() *Model       { return h.model }
func (h *SimHost) Deterministic() bool { return true }

// RealHost runs against the wall clock: Charge is free (real operations
// carry their real cost), Compute spins for the requested work, and
// Idle/Interrupt combine a bounded spin phase with a condition-variable
// park, so a wakeup that lands within microseconds — the common case on the
// batched ingress path — is caught without a futex round trip, while a
// genuinely idle processor still sleeps instead of burning CPU.
type RealHost struct {
	model *Model
	start time.Time

	// spin is Idle's budget of pre-park wakeup checks (each a signal load
	// plus an OS yield). Set before the machine runs; never mutated
	// concurrently with Idle.
	spin int

	mu   sync.Mutex
	cond *sync.Cond

	// signal is the sticky interrupt latch. Producers publish it with a
	// lock-free Swap so the delivery fast path never touches mu when an
	// interrupt is already pending; the spin phase consumes it lock-free,
	// and the park phase re-checks it under mu so no wakeup is lost.
	signal atomic.Bool
}

// DefaultSpinBudget is the number of wakeup checks Idle performs before
// parking when no budget has been configured. Each miss yields the OS
// scheduler, so the spin phase costs a few microseconds of politeness, not a
// core.
const DefaultSpinBudget = 256

// NewRealHost returns a Host that reports wall-clock time relative to its
// creation.
func NewRealHost(model *Model) *RealHost {
	// RealHost *is* the sanctioned wall-clock boundary: every other
	// package reads time through a Host so that only this one touches it.
	//chant:allow-nondet RealHost is the wall-clock abstraction itself
	h := &RealHost{model: model, start: time.Now(), spin: DefaultSpinBudget}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// SetSpinBudget sets how many times Idle re-checks for a pending interrupt
// (yielding between checks) before parking; zero or negative parks
// immediately. Must be called before the machine runs — it is not
// synchronized against Idle.
func (h *RealHost) SetSpinBudget(n int) {
	if n < 0 {
		n = 0
	}
	h.spin = n
}

func (h *RealHost) Now() sim.Time {
	//chant:allow-nondet RealHost is the wall-clock abstraction itself
	return sim.Time(time.Since(h.start).Nanoseconds())
}

// Charge consumes no modeled time in real mode (real operations take real
// time), but yields the OS scheduler so cooperative spin loops — a
// scheduler partial-switch polling cycle, a thread-polls yield loop — stay
// polite on machines with few cores.
func (h *RealHost) Charge(d sim.Duration) {
	if d > 0 {
		runtime.Gosched()
	}
}

// Compute spins for approximately units iterations of trivial work so real
// and simulated workloads have comparable structure.
func (h *RealHost) Compute(units int64) {
	var acc uint64 = 0x9E3779B9
	for i := int64(0); i < units; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
	}
	computeSink = acc
}

// computeSink defeats dead-code elimination of the Compute spin loop.
var computeSink uint64

func (h *RealHost) Idle() {
	// Spin-then-park: consume an interrupt lock-free within the budget
	// (counted, so detlint's unbounded-busy-wait check holds), then fall
	// back to the condition variable.
	for i := h.spin; i > 0; i-- {
		if h.signal.Load() {
			h.signal.Store(false)
			return
		}
		runtime.Gosched()
	}
	h.mu.Lock()
	for !h.signal.Load() {
		h.cond.Wait()
	}
	h.signal.Store(false)
	h.mu.Unlock()
}

func (h *RealHost) Interrupt() {
	if h.signal.Swap(true) {
		// Already pending: a spinner or parked waiter will consume it, and
		// whoever set it first has signaled the condition variable.
		return
	}
	h.mu.Lock()
	h.cond.Signal()
	h.mu.Unlock()
}

func (h *RealHost) Model() *Model { return h.model }

func (h *RealHost) Deterministic() bool { return false }
