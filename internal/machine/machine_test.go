package machine

import (
	"testing"
	"testing/quick"

	"chant/internal/sim"
)

func TestParagonLatencyMatchesTable2Fit(t *testing.T) {
	m := Paragon1994()
	// End-to-end process message time = send + wire + recv; compare with the
	// linear fit of the paper's Table 2 "Process" column.
	cases := []struct {
		size    int
		paperUs float64
		tolPct  float64
	}{
		{1024, 667.1, 5},
		{2048, 917.0, 10},
		{4096, 1639.3, 5},
		{8192, 2873.5, 5},
		{16384, 5531.8, 5},
	}
	for _, c := range cases {
		got := (m.SendOverhead + m.MsgLatency(c.size) + m.RecvOverhead).Micros()
		diff := (got - c.paperUs) / c.paperUs * 100
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tolPct {
			t.Errorf("size %d: modeled %.1fus vs paper %.1fus (%.1f%% > %.1f%%)",
				c.size, got, c.paperUs, diff, c.tolPct)
		}
	}
}

func TestMsgLatencyMonotonic(t *testing.T) {
	m := Paragon1994()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.MsgLatency(x) <= m.MsgLatency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostOrderingInvariants(t *testing.T) {
	for _, m := range []*Model{Paragon1994(), Modern()} {
		if m.PartialSwitch >= m.FullSwitch {
			t.Errorf("%s: partial switch must be cheaper than full switch", m.Name)
		}
		if m.YieldNoSwitch >= m.PartialSwitch {
			t.Errorf("%s: no-switch yield must be cheaper than partial switch", m.Name)
		}
		if m.MsgTestHit > m.MsgTestMiss {
			t.Errorf("%s: a hit test should not cost more than a miss", m.Name)
		}
		if m.NetBase <= 0 {
			t.Errorf("%s: zero wire latency would let messages arrive in the past", m.Name)
		}
	}
}

func TestCopyCost(t *testing.T) {
	m := Paragon1994()
	if m.CopyCost(0) != 0 {
		t.Error("copying zero bytes should be free")
	}
	if got := m.CopyCost(1000); got != sim.Duration(20000) {
		t.Errorf("CopyCost(1000) = %v, want 20us", got)
	}
}

func TestSimHostChargesVirtualTime(t *testing.T) {
	k := sim.NewKernel()
	model := Paragon1994()
	var elapsed sim.Duration
	k.Spawn("pe", func(p *sim.Proc) {
		h := NewSimHost(p, model)
		start := h.Now()
		h.Charge(5 * sim.Microsecond)
		h.Compute(1000) // 1000 * 38ns = 38us
		elapsed = h.Now().Sub(start)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := 5*sim.Microsecond + 38*sim.Microsecond
	if elapsed != want {
		t.Fatalf("elapsed %v, want %v", elapsed, want)
	}
}

func TestSimHostIdleInterrupt(t *testing.T) {
	k := sim.NewKernel()
	model := Paragon1994()
	var wokenAt sim.Time
	var h *SimHost
	k.Spawn("pe", func(p *sim.Proc) {
		h = NewSimHost(p, model)
		h.Idle()
		wokenAt = h.Now()
	})
	k.At(77*sim.Time(sim.Microsecond), func() { h.Interrupt() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if wokenAt != sim.Time(77*sim.Microsecond) {
		t.Fatalf("woken at %v, want 77us", wokenAt)
	}
}

func TestRealHostIdleInterrupt(t *testing.T) {
	h := NewRealHost(Modern())
	done := make(chan struct{})
	go func() {
		h.Idle()
		close(done)
	}()
	h.Interrupt()
	<-done // must not hang
}

func TestRealHostInterruptCoalesces(t *testing.T) {
	h := NewRealHost(Modern())
	h.Interrupt() // before Idle: must satisfy the next Idle
	done := make(chan struct{})
	go func() {
		h.Idle()
		close(done)
	}()
	<-done
}

func TestRealHostClockAdvances(t *testing.T) {
	h := NewRealHost(Modern())
	a := h.Now()
	h.Compute(100000)
	b := h.Now()
	if b < a {
		t.Fatal("real clock went backwards")
	}
}
