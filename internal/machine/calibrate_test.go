package machine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"chant/internal/sim"
)

func TestFitWireExact(t *testing.T) {
	// Points generated from a known line must be recovered exactly.
	base := 250 * sim.Microsecond
	perByte := 300.0 // ns/B
	var samples []Sample
	for _, size := range []int{512, 1024, 4096, 16384} {
		samples = append(samples, Sample{
			SizeBytes: size,
			Time:      base + sim.Duration(perByte*float64(size)),
		})
	}
	gotBase, gotPerByte, err := FitWire(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(gotBase-base)) > 2 {
		t.Errorf("base = %v, want %v", gotBase, base)
	}
	if math.Abs(gotPerByte-perByte) > 0.01 {
		t.Errorf("perByte = %v, want %v", gotPerByte, perByte)
	}
}

func TestFitWireRecoversPaperTable2(t *testing.T) {
	// The paper's Table 2 "Process" column, as used to calibrate
	// Paragon1994: the fit must land near the model's constants.
	paper := []struct {
		size int
		us   float64
	}{
		{1024, 667.1}, {2048, 917.0}, {4096, 1639.3}, {8192, 2873.5}, {16384, 5531.8},
	}
	var samples []Sample
	for _, p := range paper {
		samples = append(samples, Sample{SizeBytes: p.size, Time: sim.Duration(p.us * 1000)})
	}
	base, perByte, err := FitWire(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The model anchors the 1024 and 16384 endpoints exactly, while least
	// squares balances all five points (the paper's 2048 measurement sits
	// below the line), so the two calibrations differ by a few dozen
	// microseconds of base.
	m := Paragon1994()
	modelBase := m.SendOverhead + m.NetBase + m.RecvOverhead
	if math.Abs(base.Micros()-modelBase.Micros()) > 45 {
		t.Errorf("fitted base %.1fus far from model %.1fus", base.Micros(), modelBase.Micros())
	}
	if math.Abs(perByte-m.NetPerByteNs) > 12 {
		t.Errorf("fitted %.1f ns/B far from model %.1f", perByte, m.NetPerByteNs)
	}
}

func TestFitWireErrors(t *testing.T) {
	if _, _, err := FitWire(nil); !errors.Is(err, ErrFit) {
		t.Error("empty input accepted")
	}
	if _, _, err := FitWire([]Sample{{1024, 100}}); !errors.Is(err, ErrFit) {
		t.Error("single sample accepted")
	}
	same := []Sample{{1024, 100}, {1024, 200}}
	if _, _, err := FitWire(same); !errors.Is(err, ErrFit) {
		t.Error("degenerate sizes accepted")
	}
	negSlope := []Sample{{1024, sim.Duration(2000)}, {4096, sim.Duration(1000)}}
	if _, _, err := FitWire(negSlope); !errors.Is(err, ErrFit) {
		t.Error("negative slope accepted")
	}
}

// Property: fitting points generated from any positive line recovers it.
func TestFitWireProperty(t *testing.T) {
	f := func(baseUS uint16, perByteTenths uint8) bool {
		base := sim.Duration(int64(baseUS)+1) * sim.Microsecond
		perByte := float64(perByteTenths)/10 + 0.1
		var samples []Sample
		for _, size := range []int{128, 1024, 9000, 30000} {
			samples = append(samples, Sample{size, base + sim.Duration(perByte*float64(size))})
		}
		gotBase, gotPerByte, err := FitWire(samples)
		if err != nil {
			return false
		}
		return math.Abs(float64(gotBase-base)) < 10 && math.Abs(gotPerByte-perByte) < 0.02
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCalibratedModel(t *testing.T) {
	m := Paragon1994()
	samples := []Sample{
		{1024, sim.Duration(900 * 1000)},
		{4096, sim.Duration(1800 * 1000)},
		{16384, sim.Duration(5400 * 1000)},
	}
	c, err := m.Calibrated("my-machine", samples)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "my-machine" {
		t.Errorf("name = %q", c.Name)
	}
	if c.NetBase <= 0 || c.NetPerByteNs <= 0 {
		t.Errorf("bad coefficients: %v, %v", c.NetBase, c.NetPerByteNs)
	}
	// The original model must be untouched.
	if m.Name != "paragon-1994" {
		t.Error("calibration mutated the source model")
	}
	// End-to-end time under the calibrated model tracks the samples.
	for _, s := range samples {
		got := c.SendOverhead + c.MsgLatency(s.SizeBytes) + c.RecvOverhead
		rel := math.Abs(float64(got-s.Time)) / float64(s.Time)
		if rel > 0.10 {
			t.Errorf("size %d: modeled %v vs sample %v (%.0f%%)", s.SizeBytes, got, s.Time, rel*100)
		}
	}
}

func TestCalibratedRejectsTinyBase(t *testing.T) {
	m := Paragon1994()
	// A base below the model's end-host overheads cannot yield a positive
	// wire latency.
	samples := []Sample{
		{1024, 50 * sim.Duration(sim.Microsecond)},
		{4096, 60 * sim.Duration(sim.Microsecond)},
	}
	if _, err := m.Calibrated("bad", samples); !errors.Is(err, ErrFit) {
		t.Errorf("err = %v, want ErrFit", err)
	}
}
