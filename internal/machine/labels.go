package machine

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// WithPprofLabels runs fn on the current goroutine with pprof labels
// identifying which processing element it serves, which polling policy it
// runs, and what phase of execution it is in. CPU profiles taken from a
// real-mode run (chantrun -metrics-addr, chantbench -cpuprofile) can then
// be sliced per PE or per policy in pprof's tag views instead of showing
// one undifferentiated pile of scheduler frames.
//
// Real mode only: sim-mode execution is single-goroutine and virtual-time,
// so wall-clock profiles of it are not meaningful. The labels live for the
// duration of fn and are inherited by any goroutine fn starts.
func WithPprofLabels(pe int, policy, phase string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(
		"pe", strconv.Itoa(pe),
		"policy", policy,
		"phase", phase,
	), func(context.Context) { fn() })
}
