package recovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"chant/internal/comm"
)

// ErrNoCheckpoint reports a lookup for a process with no stored checkpoint.
var ErrNoCheckpoint = errors.New("recovery: no checkpoint stored")

// Store is a versioned checkpoint archive. Versions count from 1 per process
// address; Put appends, reads never mutate. Implementations round-trip
// through the canonical encoding, so what Latest returns is exactly what a
// cold restart would decode from storage.
type Store interface {
	// Put archives cp (normalized and encoded) and returns its version.
	Put(cp *Checkpoint) (version int, err error)
	// Get decodes the given version for addr. It returns ErrNoCheckpoint if
	// that version does not exist.
	Get(addr comm.Addr, version int) (*Checkpoint, error)
	// Latest decodes the newest version for addr, reporting its number. It
	// returns ErrNoCheckpoint if the process never checkpointed.
	Latest(addr comm.Addr) (*Checkpoint, int, error)
}

// MemStore is the in-memory Store used by simulated runtimes: encoded blobs
// held per address, safe for concurrent use (processes of one simulation
// share it).
type MemStore struct {
	mu    sync.Mutex
	blobs map[comm.Addr][][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[comm.Addr][][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(cp *Checkpoint) (int, error) {
	cp.Normalize()
	blob := Encode(cp)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[cp.Addr] = append(s.blobs[cp.Addr], blob)
	return len(s.blobs[cp.Addr]), nil
}

// Get implements Store.
func (s *MemStore) Get(addr comm.Addr, version int) (*Checkpoint, error) {
	s.mu.Lock()
	vs := s.blobs[addr]
	var blob []byte
	if version >= 1 && version <= len(vs) {
		blob = vs[version-1]
	}
	s.mu.Unlock()
	if blob == nil {
		return nil, fmt.Errorf("%w: %v version %d", ErrNoCheckpoint, addr, version)
	}
	return Decode(blob)
}

// Latest implements Store.
func (s *MemStore) Latest(addr comm.Addr) (*Checkpoint, int, error) {
	s.mu.Lock()
	vs := s.blobs[addr]
	n := len(vs)
	var blob []byte
	if n > 0 {
		blob = vs[n-1]
	}
	s.mu.Unlock()
	if blob == nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoCheckpoint, addr)
	}
	cp, err := Decode(blob)
	return cp, n, err
}

// DirStore is the on-disk Store: one file per checkpoint version under a
// directory, named pe<PE>.p<Proc>.v<version>.ckpt. File contents are the
// canonical encoding, so archives are comparable byte-for-byte across runs.
type DirStore struct {
	dir string

	mu       sync.Mutex
	versions map[comm.Addr]int // highest version written or discovered
}

// NewDirStore opens (creating if needed) an on-disk store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &DirStore{dir: dir, versions: make(map[comm.Addr]int)}
	return s, nil
}

func (s *DirStore) path(addr comm.Addr, version int) string {
	return filepath.Join(s.dir, fmt.Sprintf("pe%d.p%d.v%06d.ckpt", addr.PE, addr.Proc, version))
}

// latestVersion reports the highest version on disk for addr (0 if none),
// preferring the cached high-water mark. Caller holds s.mu.
func (s *DirStore) latestVersion(addr comm.Addr) int {
	if v, ok := s.versions[addr]; ok {
		return v
	}
	v := 0
	for {
		if _, err := os.Stat(s.path(addr, v+1)); err != nil {
			break
		}
		v++
	}
	s.versions[addr] = v
	return v
}

// Put implements Store.
func (s *DirStore) Put(cp *Checkpoint) (int, error) {
	cp.Normalize()
	blob := Encode(cp)
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.latestVersion(cp.Addr) + 1
	// Write-then-rename so a torn write never masquerades as a checkpoint.
	tmp := s.path(cp.Addr, v) + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, s.path(cp.Addr, v)); err != nil {
		return 0, err
	}
	s.versions[cp.Addr] = v
	return v, nil
}

// Get implements Store.
func (s *DirStore) Get(addr comm.Addr, version int) (*Checkpoint, error) {
	blob, err := os.ReadFile(s.path(addr, version))
	if err != nil {
		return nil, fmt.Errorf("%w: %v version %d", ErrNoCheckpoint, addr, version)
	}
	return Decode(blob)
}

// Latest implements Store.
func (s *DirStore) Latest(addr comm.Addr) (*Checkpoint, int, error) {
	s.mu.Lock()
	v := s.latestVersion(addr)
	s.mu.Unlock()
	if v == 0 {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoCheckpoint, addr)
	}
	cp, err := s.Get(addr, v)
	return cp, v, err
}
