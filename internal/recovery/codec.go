package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"chant/internal/comm"
	"chant/internal/sim"
	"chant/internal/trace"
)

// The wire format: a 4-byte magic, a format version byte, then every
// checkpoint field in declaration order as fixed-width little-endian values.
// Variable-length sections are length-prefixed with uint32 counts. There is
// no compression and no map in sight: the same Checkpoint value always
// yields the same bytes, which the determinism test pins.

const codecMagic = "CKP\x01"

// ErrCorrupt reports a checkpoint blob that does not decode.
var ErrCorrupt = errors.New("recovery: corrupt checkpoint encoding")

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte) { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}
func (e *encoder) str(v string) { e.bytes([]byte(v)) }

func (e *encoder) addr(a comm.Addr) { e.i32(a.PE); e.i32(a.Proc) }

func (e *encoder) header(h comm.Header) {
	e.i32(h.SrcPE)
	e.i32(h.SrcProc)
	e.i32(h.SrcThread)
	e.i32(h.DstPE)
	e.i32(h.DstProc)
	e.i32(h.Ctx)
	e.i32(h.Tag)
	e.i32(h.Size)
	e.i32(h.Flags)
}

func (e *encoder) msg(m CapturedMessage) {
	e.header(m.Hdr)
	e.bytes(m.Data)
	e.i64(int64(m.SentAt))
}

type decoder struct {
	buf []byte
	off int
	bad bool
}

func (d *decoder) take(n int) []byte {
	if d.bad || d.off+n > len(d.buf) {
		d.bad = true
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *decoder) bool() bool { return d.u8() != 0 }
func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.bad || n < 0 || d.off+n > len(d.buf) {
		d.bad = true
		return nil
	}
	if n == 0 { // keep nil/empty round-trip exact
		return nil
	}
	out := make([]byte, n)
	copy(out, d.take(n))
	return out
}
func (d *decoder) str() string { return string(d.bytes()) }

// count reads a section length, bounding it by the bytes remaining so a
// corrupt count cannot force a huge allocation.
func (d *decoder) count(minPer int) int {
	n := int(d.u32())
	if d.bad || n < 0 || n*minPer > len(d.buf)-d.off {
		d.bad = true
		return 0
	}
	return n
}

func (d *decoder) addr() comm.Addr { return comm.Addr{PE: d.i32(), Proc: d.i32()} }

func (d *decoder) header() comm.Header {
	return comm.Header{
		SrcPE:     d.i32(),
		SrcProc:   d.i32(),
		SrcThread: d.i32(),
		DstPE:     d.i32(),
		DstProc:   d.i32(),
		Ctx:       d.i32(),
		Tag:       d.i32(),
		Size:      d.i32(),
		Flags:     d.i32(),
	}
}

func (d *decoder) msg() CapturedMessage {
	return CapturedMessage{Hdr: d.header(), Data: d.bytes(), SentAt: sim.Time(d.i64())}
}

// encodeSnapshot writes every trace.Snapshot field in declaration order. A
// reflection test keeps this list complete when counters are added.
func (e *encoder) snapshot(s trace.Snapshot) {
	for _, v := range []uint64{
		s.FullSwitches, s.PartialSwitches, s.Yields, s.YieldsNoSwitch, s.IdleEntries,
		s.ThreadsCreated,
		s.Sends, s.Recvs, s.RecvImmediate, s.EarlyArrivals, s.BytesSent,
		s.MsgTestCalls, s.MsgTestFails, s.TestAnyCalls, s.TestAnyScanned,
		s.RSRRequests, s.RSRSent,
		s.NullsSent,
		s.FaultDrops, s.FaultDups, s.FaultDelays, s.UnexpectedDropped,
		s.RecvTimeouts, s.PeerDeadRecvs, s.PeersDead,
		s.RSRRetries, s.RSRTimeouts, s.RSRDupsServed,
		s.Checkpoints, s.InFlightLogged, s.Restarts,
		s.InFlightReplayed, s.RejoinsServed, s.PeersRecovered,
	} {
		e.u64(v)
	}
	e.f64(s.AvgWaiting)
	e.i64(int64(s.MaxWaiting))
}

func (d *decoder) snapshot() trace.Snapshot {
	var s trace.Snapshot
	for _, p := range []*uint64{
		&s.FullSwitches, &s.PartialSwitches, &s.Yields, &s.YieldsNoSwitch, &s.IdleEntries,
		&s.ThreadsCreated,
		&s.Sends, &s.Recvs, &s.RecvImmediate, &s.EarlyArrivals, &s.BytesSent,
		&s.MsgTestCalls, &s.MsgTestFails, &s.TestAnyCalls, &s.TestAnyScanned,
		&s.RSRRequests, &s.RSRSent,
		&s.NullsSent,
		&s.FaultDrops, &s.FaultDups, &s.FaultDelays, &s.UnexpectedDropped,
		&s.RecvTimeouts, &s.PeerDeadRecvs, &s.PeersDead,
		&s.RSRRetries, &s.RSRTimeouts, &s.RSRDupsServed,
		&s.Checkpoints, &s.InFlightLogged, &s.Restarts,
		&s.InFlightReplayed, &s.RejoinsServed, &s.PeersRecovered,
	} {
		*p = d.u64()
	}
	s.AvgWaiting = d.f64()
	s.MaxWaiting = int(d.i64())
	return s
}

// Encode serializes cp to its canonical byte form. Encoding the same value
// twice yields identical bytes.
func Encode(cp *Checkpoint) []byte {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.buf = append(e.buf, codecMagic...)
	e.addr(cp.Addr)
	e.u32(cp.Epoch)
	e.i64(int64(cp.At))
	e.u32(uint32(len(cp.Handlers)))
	for _, id := range cp.Handlers {
		e.i32(id)
	}
	e.i32(cp.NextReq)
	e.u32(uint32(len(cp.Dedup)))
	for _, r := range cp.Dedup {
		e.i32(r.SrcPE)
		e.i32(r.SrcProc)
		e.i32(r.SrcThread)
		e.u32(r.Epoch)
		e.u32(r.Seq)
		e.i32(r.ReplyTag)
		e.bool(r.HasReply)
		e.bytes(r.Reply)
	}
	e.u32(uint32(len(cp.Shared)))
	for _, s := range cp.Shared {
		e.str(s.Name)
		e.bytes(s.Value)
		e.i64(s.Version)
		e.bool(s.Valid)
		e.bool(s.Home)
		e.u32(uint32(len(s.Directory)))
		for _, a := range s.Directory {
			e.addr(a)
		}
	}
	e.u32(uint32(len(cp.Unexpected)))
	for _, m := range cp.Unexpected {
		e.msg(m)
	}
	e.u32(uint32(len(cp.InFlight)))
	for _, m := range cp.InFlight {
		e.msg(m)
	}
	e.snapshot(cp.Counters)
	return e.buf
}

// Decode parses a checkpoint from its canonical byte form.
func Decode(buf []byte) (*Checkpoint, error) {
	if len(buf) < len(codecMagic) || string(buf[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d := &decoder{buf: buf, off: len(codecMagic)}
	cp := &Checkpoint{}
	cp.Addr = d.addr()
	cp.Epoch = d.u32()
	cp.At = sim.Time(d.i64())
	if n := d.count(4); n > 0 {
		cp.Handlers = make([]int32, n)
		for i := range cp.Handlers {
			cp.Handlers[i] = d.i32()
		}
	}
	cp.NextReq = d.i32()
	if n := d.count(4*4 + 4 + 1 + 4); n > 0 {
		cp.Dedup = make([]DedupState, n)
		for i := range cp.Dedup {
			r := &cp.Dedup[i]
			r.SrcPE = d.i32()
			r.SrcProc = d.i32()
			r.SrcThread = d.i32()
			r.Epoch = d.u32()
			r.Seq = d.u32()
			r.ReplyTag = d.i32()
			r.HasReply = d.bool()
			r.Reply = d.bytes()
		}
	}
	if n := d.count(4 + 4 + 8 + 2 + 4); n > 0 {
		cp.Shared = make([]SharedState, n)
		for i := range cp.Shared {
			s := &cp.Shared[i]
			s.Name = d.str()
			s.Value = d.bytes()
			s.Version = d.i64()
			s.Valid = d.bool()
			s.Home = d.bool()
			if m := d.count(8); m > 0 {
				s.Directory = make([]comm.Addr, m)
				for j := range s.Directory {
					s.Directory[j] = d.addr()
				}
			}
		}
	}
	const msgMin = 9*4 + 4 + 8
	if n := d.count(msgMin); n > 0 {
		cp.Unexpected = make([]CapturedMessage, n)
		for i := range cp.Unexpected {
			cp.Unexpected[i] = d.msg()
		}
	}
	if n := d.count(msgMin); n > 0 {
		cp.InFlight = make([]CapturedMessage, n)
		for i := range cp.InFlight {
			cp.InFlight[i] = d.msg()
		}
	}
	cp.Counters = d.snapshot()
	if d.bad {
		return nil, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, d.off)
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf)-d.off)
	}
	return cp, nil
}
