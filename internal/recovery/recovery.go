// Package recovery is the crash-recovery data plane: coordinated checkpoints
// of a Chant process, their byte-deterministic serialization, versioned
// checkpoint stores, and the marker bookkeeping of the snapshot protocol.
//
// The protocol is the classic marker-based coordinated snapshot (Chandy and
// Lamport's algorithm) run over the runtime's remote-service-request layer:
// an initiator captures its own state and floods a marker to every peer on
// the reserved RSR system tag; a process receiving its first marker captures
// its state at that instant and floods markers itself; messages arriving on
// a channel after the local capture but before that channel's marker are the
// channel's in-flight content and are appended to the checkpoint's log. The
// runtime (internal/core) drives the message exchange; this package owns the
// per-process protocol state (Recorder), what a snapshot contains
// (Checkpoint), and how it is stored (Store).
//
// Everything here is deterministic: slices are kept in canonical orders
// (addresses by (PE, Proc), dedup records by source thread, names sorted),
// no maps are iterated, and the encoding writes fixed-width little-endian
// fields in a fixed order — the same checkpoint always serializes to the
// same bytes, which is what lets differential tests compare snapshots across
// runs bitwise.
package recovery

import (
	"sort"

	"chant/internal/comm"
	"chant/internal/sim"
	"chant/internal/trace"
)

// CapturedMessage is one message recorded in a checkpoint: either an entry
// of the unexpected queue at capture time, or an in-flight message recorded
// between marker arrivals. On restore it is re-delivered into the restarted
// endpoint's mailbox in its original arrival order.
type CapturedMessage struct {
	Hdr    comm.Header
	Data   []byte
	SentAt sim.Time
}

// DedupState is one entry of the RSR idempotency cache: the latest request
// (epoch, sequence) seen from one client thread and, when already sent, the
// cached reply wire. Restoring these is what preserves exactly-once Call
// semantics across a restart — a client retry straddling the outage is
// answered from the cache instead of re-running the handler.
type DedupState struct {
	SrcPE, SrcProc, SrcThread int32
	Epoch                     uint32
	Seq                       uint32
	ReplyTag                  int32
	HasReply                  bool
	Reply                     []byte
}

// SharedState is one shared-variable entry: the local cache (or, at the
// home, the authoritative value) plus the home-side directory of cachers.
type SharedState struct {
	Name      string
	Value     []byte
	Version   int64
	Valid     bool
	Home      bool
	Directory []comm.Addr // sorted by (PE, Proc); home entries only
}

// Checkpoint is everything a restarted process needs to resume serving:
// which handlers were registered (ids only — code is re-registered by the
// runtime and validated against this list), shared-variable state, the RSR
// dedup cache and client sequence counter, the pending unexpected-queue
// contents, the trace counters, and the in-flight messages recorded by the
// marker protocol. Thread stacks are deliberately absent: a restored process
// resumes as a server (handlers plus re-delivered messages), not mid-main.
type Checkpoint struct {
	Addr       comm.Addr
	Epoch      uint32 // the epoch this checkpoint was captured in
	At         sim.Time
	Handlers   []int32 // sorted registered handler ids
	NextReq    int32   // RSR client sequence counter
	Dedup      []DedupState
	Shared     []SharedState
	Unexpected []CapturedMessage
	InFlight   []CapturedMessage
	Counters   trace.Snapshot
}

// Normalize sorts the order-canonical sections in place: dedup records by
// source thread, shared entries by name (directories by address), handler
// ids ascending. Capture paths that build the sections from map walks call
// it before storing so identical states serialize identically.
func (cp *Checkpoint) Normalize() {
	sort.Slice(cp.Handlers, func(i, j int) bool { return cp.Handlers[i] < cp.Handlers[j] })
	sort.Slice(cp.Dedup, func(i, j int) bool {
		a, b := cp.Dedup[i], cp.Dedup[j]
		if a.SrcPE != b.SrcPE {
			return a.SrcPE < b.SrcPE
		}
		if a.SrcProc != b.SrcProc {
			return a.SrcProc < b.SrcProc
		}
		return a.SrcThread < b.SrcThread
	})
	sort.Slice(cp.Shared, func(i, j int) bool { return cp.Shared[i].Name < cp.Shared[j].Name })
	for i := range cp.Shared {
		d := cp.Shared[i].Directory
		sort.Slice(d, func(a, b int) bool {
			if d[a].PE != d[b].PE {
				return d[a].PE < d[b].PE
			}
			return d[a].Proc < d[b].Proc
		})
	}
}

// Recorder tracks one coordinated snapshot in progress at one process: which
// incoming channels are still being recorded (their marker has not arrived)
// and the in-flight messages logged so far. It is driven from the process's
// own scheduler context and needs no locking.
type Recorder struct {
	id       uint32
	pending  map[comm.Addr]bool
	npending int
	inflight []CapturedMessage
}

// NewRecorder starts recording a snapshot with the given id over the given
// incoming channels (every peer process of the topology). Channels whose
// marker already arrived are marked done with MarkerFrom.
func NewRecorder(id uint32, channels []comm.Addr) *Recorder {
	r := &Recorder{id: id, pending: make(map[comm.Addr]bool, len(channels))}
	for _, a := range channels {
		if !r.pending[a] {
			r.pending[a] = true
			r.npending++
		}
	}
	return r
}

// ID reports the snapshot id this recorder belongs to.
func (r *Recorder) ID() uint32 { return r.id }

// MarkerFrom records the marker's arrival on the channel from src, closing
// that channel's recording window. It reports whether the snapshot is now
// complete (markers received on every channel). Duplicate markers (the
// protocol's reliable flooding retries them) are idempotent.
func (r *Recorder) MarkerFrom(src comm.Addr) (done bool) {
	if r.pending[src] {
		delete(r.pending, src)
		r.npending--
	}
	return r.npending == 0
}

// Recording reports whether the channel from src is still inside its
// recording window.
func (r *Recorder) Recording(src comm.Addr) bool { return r.pending[src] }

// Record logs one in-flight message if its source channel is still
// recording, reporting whether it was logged. The payload is copied: the
// caller's buffer is typically reused for the next request.
func (r *Recorder) Record(hdr comm.Header, data []byte, sentAt sim.Time) bool {
	src := comm.Addr{PE: hdr.SrcPE, Proc: hdr.SrcProc}
	if !r.pending[src] {
		return false
	}
	r.inflight = append(r.inflight, CapturedMessage{
		Hdr:    hdr,
		Data:   append([]byte(nil), data...),
		SentAt: sentAt,
	})
	return true
}

// Done reports whether every channel's marker has arrived.
func (r *Recorder) Done() bool { return r.npending == 0 }

// InFlight returns the recorded in-flight messages in arrival order.
func (r *Recorder) InFlight() []CapturedMessage { return r.inflight }
