package recovery

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"chant/internal/comm"
	"chant/internal/sim"
	"chant/internal/trace"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Addr:     comm.Addr{PE: 2, Proc: 1},
		Epoch:    3,
		At:       sim.Time(12345),
		Handlers: []int32{7, -6, 1, -9},
		NextReq:  42,
		Dedup: []DedupState{
			{SrcPE: 1, SrcProc: 0, SrcThread: 5, Epoch: 2, Seq: 9, ReplyTag: -0x3F00, HasReply: true, Reply: []byte("cached")},
			{SrcPE: 0, SrcProc: 0, SrcThread: 2, Epoch: 3, Seq: 1, ReplyTag: -0x3F01},
		},
		Shared: []SharedState{
			{Name: "zeta", Value: []byte{1, 2, 3}, Version: 4, Valid: true},
			{Name: "alpha", Value: []byte{9}, Version: 7, Valid: true, Home: true,
				Directory: []comm.Addr{{PE: 3, Proc: 0}, {PE: 1, Proc: 0}}},
		},
		Unexpected: []CapturedMessage{
			{Hdr: comm.Header{SrcPE: 1, DstPE: 2, Tag: 10, Size: 2}, Data: []byte("hi"), SentAt: 100},
		},
		InFlight: []CapturedMessage{
			{Hdr: comm.Header{SrcPE: 0, DstPE: 2, Tag: 11, Size: 3}, Data: []byte("abc"), SentAt: 110},
			{Hdr: comm.Header{SrcPE: 3, DstPE: 2, Tag: 12}, SentAt: 115},
		},
		Counters: trace.Snapshot{Sends: 17, Recvs: 16, Checkpoints: 1, AvgWaiting: 1.5, MaxWaiting: 4},
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := sampleCheckpoint()
	a.Normalize()
	first := Encode(a)
	second := Encode(a)
	if !bytes.Equal(first, second) {
		t.Fatal("encoding the same checkpoint twice produced different bytes")
	}

	// A semantically identical checkpoint built in a different section order
	// normalizes to the same bytes.
	b := sampleCheckpoint()
	b.Handlers = []int32{-9, 1, -6, 7}
	b.Dedup[0], b.Dedup[1] = b.Dedup[1], b.Dedup[0]
	b.Shared[0], b.Shared[1] = b.Shared[1], b.Shared[0]
	b.Normalize()
	if !bytes.Equal(first, Encode(b)) {
		t.Fatal("normalized encodings of equivalent checkpoints differ")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	cp.Normalize()
	blob := Encode(cp)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
	}
	// Re-encoding the decoded value reproduces the blob exactly.
	if !bytes.Equal(blob, Encode(got)) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	cp := sampleCheckpoint()
	cp.Normalize()
	blob := Encode(cp)

	if _, err := Decode([]byte("nope")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	if _, err := Decode(blob[:len(blob)-5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: got %v, want ErrCorrupt", err)
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
	// Corrupt a section count deep inside: must error, not crash or OOM.
	mangled := append([]byte(nil), blob...)
	mangled[len(codecMagic)+8+4+8] = 0xFF // handler count low byte
	if _, err := Decode(mangled); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mangled count: got %v, want ErrCorrupt", err)
	}
}

// TestSnapshotCodecComplete fills every field of trace.Snapshot with a
// distinct value via reflection and asserts the codec carries all of them.
// Adding a counter without extending the codec field lists fails here.
func TestSnapshotCodecComplete(t *testing.T) {
	var s trace.Snapshot
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(1000 + i))
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.25)
		case reflect.Int:
			f.SetInt(int64(2000 + i))
		default:
			t.Fatalf("trace.Snapshot field %s has unhandled kind %v; extend the recovery codec and this test", v.Type().Field(i).Name, f.Kind())
		}
	}
	cp := &Checkpoint{Counters: s}
	got, err := Decode(Encode(cp))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Counters != s {
		t.Fatalf("snapshot codec dropped fields:\n got %+v\nwant %+v", got.Counters, s)
	}
}

func TestRecorder(t *testing.T) {
	p0 := comm.Addr{PE: 0, Proc: 0}
	p2 := comm.Addr{PE: 2, Proc: 0}
	r := NewRecorder(7, []comm.Addr{p0, p2, p0}) // duplicate channel collapses
	if r.ID() != 7 {
		t.Fatalf("ID = %d, want 7", r.ID())
	}
	if r.Done() {
		t.Fatal("fresh recorder reports done")
	}
	if !r.Recording(p0) || !r.Recording(p2) {
		t.Fatal("channels not recording at start")
	}

	h0 := comm.Header{SrcPE: 0, SrcProc: 0, Tag: 5, Size: 1}
	buf := []byte{0xAA}
	if !r.Record(h0, buf, 10) {
		t.Fatal("message on recording channel not logged")
	}
	buf[0] = 0xBB // caller reuses the buffer; the log must hold a copy
	if r.InFlight()[0].Data[0] != 0xAA {
		t.Fatal("recorded payload aliases the caller's buffer")
	}

	if done := r.MarkerFrom(p0); done {
		t.Fatal("done after first of two markers")
	}
	if r.Record(h0, []byte{1}, 11) {
		t.Fatal("message logged after its channel's marker")
	}
	if done := r.MarkerFrom(p0); done { // duplicate marker is idempotent
		t.Fatal("duplicate marker completed the snapshot")
	}
	if done := r.MarkerFrom(p2); !done {
		t.Fatal("snapshot not done after last marker")
	}
	if !r.Done() {
		t.Fatal("Done disagrees with MarkerFrom")
	}
	if len(r.InFlight()) != 1 {
		t.Fatalf("in-flight log has %d entries, want 1", len(r.InFlight()))
	}
}

func TestMemStoreVersioning(t *testing.T) {
	testStoreVersioning(t, NewMemStore())
}

func TestDirStoreVersioning(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	testStoreVersioning(t, s)

	// A fresh DirStore over the same directory rediscovers the versions.
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatalf("NewDirStore reopen: %v", err)
	}
	cp, v, err := s2.Latest(comm.Addr{PE: 2, Proc: 1})
	if err != nil || v != 2 {
		t.Fatalf("reopened Latest: version %d, err %v; want 2, nil", v, err)
	}
	if cp.Epoch != 4 {
		t.Fatalf("reopened Latest epoch = %d, want 4", cp.Epoch)
	}
}

func testStoreVersioning(t *testing.T, s Store) {
	t.Helper()
	addr := comm.Addr{PE: 2, Proc: 1}

	if _, _, err := s.Latest(addr); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty store: %v, want ErrNoCheckpoint", err)
	}
	if _, err := s.Get(addr, 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Get on empty store: %v, want ErrNoCheckpoint", err)
	}

	cp1 := sampleCheckpoint()
	if v, err := s.Put(cp1); err != nil || v != 1 {
		t.Fatalf("first Put: version %d, err %v; want 1, nil", v, err)
	}
	cp2 := sampleCheckpoint()
	cp2.Epoch = 4
	if v, err := s.Put(cp2); err != nil || v != 2 {
		t.Fatalf("second Put: version %d, err %v; want 2, nil", v, err)
	}

	got1, err := s.Get(addr, 1)
	if err != nil || got1.Epoch != 3 {
		t.Fatalf("Get v1: epoch %d, err %v; want 3, nil", got1.Epoch, err)
	}
	latest, v, err := s.Latest(addr)
	if err != nil || v != 2 || latest.Epoch != 4 {
		t.Fatalf("Latest: version %d, epoch %d, err %v; want 2, 4, nil", v, latest.Epoch, err)
	}
	// Other addresses are independent.
	if _, _, err := s.Latest(comm.Addr{PE: 9, Proc: 0}); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest for foreign addr: %v, want ErrNoCheckpoint", err)
	}
}
