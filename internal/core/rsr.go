package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chant/internal/comm"
	"chant/internal/ult"
)

// The remote-service-request layer (paper Section 3.2): messages whose
// destination thread is not expecting them are routed to a dedicated
// server thread, which repeatedly posts a nonblocking receive for any RSR
// message, waits under the normal polling policy (so no interrupts are
// ever required — Figure 7), assumes a higher scheduling priority when a
// request arrives, decodes the handler id from the request, and invokes
// the registered handler.

// Handler services one remote request. It runs on the server thread; a
// handler that must block should call ctx.DeferReply, hand the work to a
// spawned thread, and have that thread call ctx.Reply, so the server can
// keep serving.
type Handler func(ctx *RSRContext) ([]byte, error)

// RSRContext carries one request through its handler.
type RSRContext struct {
	Proc *Process
	// Src is the requesting thread's global identity.
	Src GlobalID
	// Req is the request payload. Valid only until the handler returns;
	// deferred repliers must copy what they need.
	Req []byte

	wantReply bool
	replyTag  int32
	deferred  bool
	replied   bool
}

// DeferReply tells the server not to reply when the handler returns;
// the handler (or a thread it spawned) must call Reply itself.
func (c *RSRContext) DeferReply() { c.deferred = true }

// Reply sends the response for a deferred request. Calling it twice, or
// for a request that wanted no reply, panics.
func (c *RSRContext) Reply(data []byte, err error) {
	if !c.wantReply {
		if err == nil {
			panic("core: Reply to a notification (no reply wanted)")
		}
		return // errors on notifications are dropped, as with NX
	}
	if c.replied {
		panic("core: duplicate RSR reply")
	}
	c.replied = true
	payload := encodeReply(data, err)
	srcThread := serverLocalID
	if cur := c.Proc.sched.Current(); cur != nil {
		srcThread = cur.ID()
	}
	if sendErr := c.Proc.send(srcThread, c.Src, c.replyTag, payload); sendErr != nil {
		panic("core: RSR reply send failed: " + sendErr.Error())
	}
}

// RegisterHandler binds a user handler id (>= 0) to fn for this process.
// Handlers must be registered before requests arrive (normally in main
// before any Call targets this process).
func (p *Process) RegisterHandler(id int32, fn Handler) {
	if id < 0 {
		panic("core: user RSR handler ids must be >= 0")
	}
	p.handlers[id] = fn
}

// Errors of the RSR layer.
var (
	// ErrNoHandler reports a request for an unregistered handler id.
	ErrNoHandler = errors.New("core: no such RSR handler")
	// ErrRSRTooLarge reports a request exceeding Config.MaxRSR.
	ErrRSRTooLarge = errors.New("core: remote service request too large")
	// ErrRemote wraps an error string returned by a remote handler.
	ErrRemote = errors.New("core: remote error")
)

// rsrHeaderLen is the request envelope: handler id, flags, reply tag.
const rsrHeaderLen = 9

const rsrFlagWantReply = 1

// Call issues a remote service request to process dst and blocks until the
// reply arrives (the remote-procedure-call shape of Section 3.2). The
// reply payload is written into replyBuf; Call returns its length. The
// reply receive is posted before the request is sent, so the response is
// never an unexpected message.
func (t *Thread) Call(dst comm.Addr, handler int32, req, replyBuf []byte) (int, error) {
	t.mustCurrent("Call")
	p := t.proc
	if !p.rt.validAddr(dst) {
		return 0, fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	if len(req)+rsrHeaderLen > p.cfg.MaxRSR {
		return 0, fmt.Errorf("%w: %d bytes", ErrRSRTooLarge, len(req))
	}
	p.nextReq++
	replyTag := tagReplyBase + p.nextReq%tagReplySpan

	// Pre-post the reply receive (no-extra-copy path).
	spec, err := p.recvSpec(t.gid.Thread, GlobalID{PE: dst.PE, Proc: dst.Proc, Thread: AnyField}, replyTag)
	if err != nil {
		return 0, err
	}
	// The reply carries a 1-byte status prefix.
	wire := make([]byte, len(replyBuf)+1+256)
	h := p.ep.Irecv(spec, wire)

	if err := p.sendRSR(t.gid.Thread, dst, handler, rsrFlagWantReply, replyTag, req); err != nil {
		p.ep.CancelRecv(h)
		return 0, err
	}
	p.Counters().RSRSent.Add(1)
	p.policy.Wait(h, noBoost)
	data, remoteErr := decodeReply(wire[:h.Len()])
	if remoteErr != nil {
		return 0, remoteErr
	}
	if len(data) > len(replyBuf) {
		return 0, comm.ErrTruncated
	}
	return copy(replyBuf, data), nil
}

// Notify issues a one-way remote service request: no reply is awaited.
func (t *Thread) Notify(dst comm.Addr, handler int32, req []byte) error {
	t.mustCurrent("Notify")
	p := t.proc
	if !p.rt.validAddr(dst) {
		return fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	if len(req)+rsrHeaderLen > p.cfg.MaxRSR {
		return fmt.Errorf("%w: %d bytes", ErrRSRTooLarge, len(req))
	}
	if err := p.sendRSR(t.gid.Thread, dst, handler, 0, 0, req); err != nil {
		return err
	}
	p.Counters().RSRSent.Add(1)
	return nil
}

// sendRSR transmits one request envelope to dst's server thread.
func (p *Process) sendRSR(srcThread int32, dst comm.Addr, handler int32, flags byte, replyTag int32, req []byte) error {
	payload := make([]byte, rsrHeaderLen+len(req))
	binary.LittleEndian.PutUint32(payload[0:], uint32(handler))
	payload[4] = flags
	binary.LittleEndian.PutUint32(payload[5:], uint32(replyTag))
	copy(payload[rsrHeaderLen:], req)
	return p.send(srcThread, GlobalID{PE: dst.PE, Proc: dst.Proc, Thread: serverLocalID}, tagRSRRequest, payload)
}

// startServer creates the server thread (Figure 7). It must be the first
// thread created after main so it owns the well-known local id.
func (p *Process) startServer() {
	p.server = p.CreateLocal("chant-server", func(t *Thread) {
		host := p.ep.Host()
		m := host.Model()
		buf := make([]byte, p.cfg.MaxRSR)
		for {
			// Drop back to normal priority while awaiting the next request.
			t.tcb.SetPriority(0)
			spec, err := p.recvSpec(serverLocalID, AnyThread, tagRSRRequest)
			if err != nil {
				panic("core: server recv spec: " + err.Error())
			}
			h := p.ep.Irecv(spec, buf)
			// The boost: when the request is noticed by the scheduler, the
			// server jumps to the head of the line. A negative configured
			// priority disables it.
			boost := p.cfg.ServerPriority
			if boost < 0 {
				boost = noBoost
			}
			p.policy.Wait(h, boost)
			host.Charge(m.RSRDispatch)
			p.Counters().RSRRequests.Add(1)
			p.serveOne(h.Header(), buf[:h.Len()])
		}
	}, ult.SpawnOpts{Daemon: true})
	if p.server.gid.Thread != serverLocalID {
		panic(fmt.Sprintf("core: server thread got id %d, want %d (created too late)",
			p.server.gid.Thread, serverLocalID))
	}
}

// serveOne decodes and dispatches a single request.
func (p *Process) serveOne(hdr comm.Header, payload []byte) {
	if len(payload) < rsrHeaderLen {
		return // malformed; drop
	}
	ctx := &RSRContext{
		Proc:      p,
		Src:       GlobalID{PE: hdr.SrcPE, Proc: hdr.SrcProc, Thread: hdr.SrcThread},
		Req:       payload[rsrHeaderLen:],
		wantReply: payload[4]&rsrFlagWantReply != 0,
		replyTag:  int32(binary.LittleEndian.Uint32(payload[5:])),
	}
	handler := p.handlers[int32(binary.LittleEndian.Uint32(payload[0:]))]
	if handler == nil {
		if ctx.wantReply {
			ctx.Reply(nil, ErrNoHandler)
		}
		return
	}
	data, err := handler(ctx)
	if ctx.wantReply && !ctx.deferred && !ctx.replied {
		ctx.Reply(data, err)
	}
}

// encodeReply frames a reply as [status byte][data | error string].
func encodeReply(data []byte, err error) []byte {
	if err != nil {
		msg := err.Error()
		out := make([]byte, 1+len(msg))
		out[0] = 1
		copy(out[1:], msg)
		return out
	}
	out := make([]byte, 1+len(data))
	copy(out[1:], data)
	return out
}

// decodeReply unframes a reply, converting a remote error string back into
// an error wrapping ErrRemote.
func decodeReply(wire []byte) ([]byte, error) {
	if len(wire) < 1 {
		return nil, fmt.Errorf("%w: empty reply", ErrRemote)
	}
	if wire[0] != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, wire[1:])
	}
	return wire[1:], nil
}
