package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chant/internal/comm"
	"chant/internal/sim"
	"chant/internal/trace"
	"chant/internal/ult"
)

// The remote-service-request layer (paper Section 3.2): messages whose
// destination thread is not expecting them are routed to a dedicated
// server thread, which repeatedly posts a nonblocking receive for any RSR
// message, waits under the normal polling policy (so no interrupts are
// ever required — Figure 7), assumes a higher scheduling priority when a
// request arrives, decodes the handler id from the request, and invokes
// the registered handler.

// Handler services one remote request. It runs on the server thread; a
// handler that must block should call ctx.DeferReply, hand the work to a
// spawned thread, and have that thread call ctx.Reply, so the server can
// keep serving.
type Handler func(ctx *RSRContext) ([]byte, error)

// RSRContext carries one request through its handler.
type RSRContext struct {
	Proc *Process
	// Src is the requesting thread's global identity.
	Src GlobalID
	// Req is the request payload. Valid only until the handler returns;
	// deferred repliers must copy what they need.
	Req []byte

	wantReply bool
	replyTag  int32
	seq       uint32
	epoch     uint32
	deferred  bool
	replied   bool
}

// rsrDedup is the per-source idempotency record: the most recent request
// (epoch, sequence) seen from one client thread and, once sent, its reply.
// A retried request with the same sequence is answered from the cache
// instead of re-running the handler — the property that makes timeouts plus
// resends safe for non-idempotent handlers like create. The epoch orders
// request streams across client restarts (a restarted client's sequence
// counter may restart too).
type rsrDedup struct {
	epoch    uint32
	seq      uint32
	replyTag int32
	reply    []byte // cached reply wire; nil while a deferred reply is pending
}

// rsrVerdict classifies an incoming call against its source's dedup record.
type rsrVerdict int

const (
	rsrFresh rsrVerdict = iota // new request: record it and run the handler
	rsrDup                     // retransmission of the latest request: replay the cache
	rsrStale                   // older than the latest request: drop silently
)

// admitRSR is the epoch-aware dedup rule. A request from a higher epoch than
// the record is always fresh — the client restarted, and its post-restart
// stream supersedes everything before (even if its restored sequence counter
// re-covers old numbers). One from a lower epoch is always stale. Within an
// epoch, sequence comparison decides as before (serial-number arithmetic, so
// wraparound is harmless).
func admitRSR(rec *rsrDedup, epoch, seq uint32) rsrVerdict {
	if rec == nil {
		return rsrFresh
	}
	if epoch != rec.epoch {
		if int32(epoch-rec.epoch) > 0 {
			return rsrFresh
		}
		return rsrStale
	}
	switch {
	case seq == rec.seq:
		return rsrDup
	case int32(seq-rec.seq) < 0:
		return rsrStale
	}
	return rsrFresh
}

// DeferReply tells the server not to reply when the handler returns;
// the handler (or a thread it spawned) must call Reply itself.
func (c *RSRContext) DeferReply() { c.deferred = true }

// Reply sends the response for a deferred request. Calling it twice, or
// for a request that wanted no reply, panics.
func (c *RSRContext) Reply(data []byte, err error) {
	if !c.wantReply {
		if err == nil {
			panic("core: Reply to a notification (no reply wanted)")
		}
		return // errors on notifications are dropped, as with NX
	}
	if c.replied {
		panic("core: duplicate RSR reply")
	}
	c.replied = true
	payload := encodeReply(c.seq, data, err)
	// Cache the reply for idempotent retry — but only while this request is
	// still the source's latest (a deferred reply may land after the client
	// has moved on).
	if rec := c.Proc.rsrSeen[c.Src]; rec != nil && rec.epoch == c.epoch && rec.seq == c.seq {
		rec.reply = payload
	}
	srcThread := serverLocalID
	if cur := c.Proc.sched.Current(); cur != nil {
		srcThread = cur.ID()
	}
	if sendErr := c.Proc.send(srcThread, c.Src, c.replyTag, payload); sendErr != nil {
		panic("core: RSR reply send failed: " + sendErr.Error())
	}
}

// RegisterHandler binds a user handler id (>= 0) to fn for this process.
// Handlers must be registered before requests arrive (normally in main
// before any Call targets this process).
func (p *Process) RegisterHandler(id int32, fn Handler) {
	if id < 0 {
		panic("core: user RSR handler ids must be >= 0")
	}
	p.handlers[id] = fn
}

// Errors of the RSR layer.
var (
	// ErrNoHandler reports a request for an unregistered handler id.
	ErrNoHandler = errors.New("core: no such RSR handler")
	// ErrRSRTooLarge reports a request exceeding Config.MaxRSR.
	ErrRSRTooLarge = errors.New("core: remote service request too large")
	// ErrRemote wraps an error string returned by a remote handler.
	ErrRemote = errors.New("core: remote error")
	// ErrRSRTimeout reports a Call that exhausted its retry budget without
	// ever seeing a reply (Config.RSRTimeout / RSRRetries).
	ErrRSRTimeout = errors.New("core: remote service request timed out")
)

// rsrHeaderLen is the request envelope: handler id, flags, reply tag,
// sequence number, sender epoch.
const rsrHeaderLen = 17

// rsrReplyPrefix is the reply envelope before the status byte: the echoed
// request sequence, which lets a client discard stale replies matched by a
// reused reply tag.
const rsrReplyPrefix = 4

const rsrFlagWantReply = 1

// Call issues a remote service request to process dst and blocks until the
// reply arrives (the remote-procedure-call shape of Section 3.2). The
// reply payload is written into replyBuf; Call returns its length. The
// reply receive is posted before the request is sent, so the response is
// never an unexpected message.
//
// When Config.RSRTimeout is set, Call becomes a stop-and-wait reliable
// request: an attempt whose reply does not arrive in time is resent (same
// sequence number, so the server deduplicates) up to Config.RSRRetries
// times, after which Call returns ErrRSRTimeout. A destination declared
// dead surfaces as comm.ErrPeerDead.
func (t *Thread) Call(dst comm.Addr, handler int32, req, replyBuf []byte) (int, error) {
	t.mustCurrent("Call")
	p := t.proc
	if !p.rt.validAddr(dst) {
		return 0, fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	if len(req)+rsrHeaderLen > p.cfg.MaxRSR {
		return 0, fmt.Errorf("%w: %d bytes", ErrRSRTooLarge, len(req))
	}
	if tr := p.cfg.Tracer; tr != nil {
		// One span per Call, issue to decoded reply (or terminal error),
		// covering retries and rejoin waits. RSR is control plane, so the
		// deferred closure is off every data hot path.
		callBegin := p.ep.Host().Now()
		defer func() {
			tr.Span(trace.SpanRSRCall, p.addr.PE, t.gid.Thread,
				callBegin, p.ep.Host().Now(), uint64(uint32(handler)))
		}()
	}
	p.nextReq++
	replyTag := tagReplyBase + p.nextReq%tagReplySpan
	seq := uint32(p.nextReq)

	// Pre-post the reply receive (no-extra-copy path).
	spec, err := p.recvSpec(t.gid.Thread, GlobalID{PE: dst.PE, Proc: dst.Proc, Thread: AnyField}, replyTag)
	if err != nil {
		return 0, err
	}
	// The reply carries a sequence + status prefix.
	wire := make([]byte, len(replyBuf)+rsrReplyPrefix+1+256)
	h := p.ep.Irecv(spec, wire)

	if err := p.sendRSR(t.gid.Thread, dst, handler, rsrFlagWantReply, replyTag, seq, req); err != nil {
		p.ep.CancelRecv(h)
		p.ep.ReleaseHandle(h)
		return 0, err
	}
	p.Counters().RSRSent.Add(1)

	if p.cfg.RSRTimeout <= 0 {
		// Reliable-network path: block until the reply arrives.
		p.policy.Wait(h, noBoost)
	} else {
		host := p.ep.Host()
		backoff := p.cfg.RSRBackoff
		var rejoinDeadline sim.Time
		for attempt := 0; ; {
			werr := p.waitDeadline(h, host.Now().Add(p.cfg.RSRTimeout))
			if werr == nil {
				// A reused reply tag can match a stale reply from an earlier,
				// abandoned Call; the echoed sequence exposes it. Repost and
				// keep waiting — the stale bytes are simply overwritten.
				if h.Len() >= rsrReplyPrefix && binary.LittleEndian.Uint32(wire[0:]) != seq {
					p.ep.ReleaseHandle(h)
					h = p.ep.Irecv(spec, wire)
					continue
				}
				break
			}
			if errors.Is(werr, comm.ErrPeerDead) {
				if p.cfg.RejoinWait <= 0 {
					p.ep.ReleaseHandle(h)
					return 0, werr
				}
				if rejoinDeadline == 0 {
					rejoinDeadline = host.Now().Add(p.cfg.RejoinWait)
				}
				if host.Now() >= rejoinDeadline {
					p.ep.ReleaseHandle(h)
					return 0, werr
				}
				// The peer may be restarting (crash recovery): the born-failed
				// handle completed instantly, so burn one timeout of compute to
				// advance time, then repost and resend the same sequence — the
				// rejoined peer's restored dedup cache keeps this exactly-once.
				// Waiting out a rejoin does not consume the retry budget. The
				// yield is essential: the peer's rejoin announcement arrives as
				// a request to this process's server thread, which must get the
				// processor to serve it and clear the dead mark.
				host.Charge(p.cfg.RSRTimeout)
				t.Yield()
				p.ep.ReleaseHandle(h)
				h = p.ep.Irecv(spec, wire)
				if err := p.sendRSR(t.gid.Thread, dst, handler, rsrFlagWantReply, replyTag, seq, req); err != nil {
					p.ep.CancelRecv(h)
					p.ep.ReleaseHandle(h)
					return 0, err
				}
				continue
			}
			if attempt >= p.cfg.RSRRetries {
				p.Counters().RSRTimeouts.Add(1)
				p.ep.ReleaseHandle(h)
				return 0, fmt.Errorf("%w: handler %d at %v after %d attempts",
					ErrRSRTimeout, handler, dst, attempt+1)
			}
			attempt++
			p.Counters().RSRRetries.Add(1)
			if backoff > 0 {
				host.Charge(backoff)
				backoff *= 2
			}
			p.ep.ReleaseHandle(h)
			h = p.ep.Irecv(spec, wire)
			if err := p.sendRSR(t.gid.Thread, dst, handler, rsrFlagWantReply, replyTag, seq, req); err != nil {
				p.ep.CancelRecv(h)
				p.ep.ReleaseHandle(h)
				return 0, err
			}
		}
	}
	n := h.Len()
	p.ep.ReleaseHandle(h) // the reply lives in wire; h never escapes Call
	data, remoteErr := decodeReply(wire[rsrReplyPrefix:n])
	if remoteErr != nil {
		return 0, remoteErr
	}
	if len(data) > len(replyBuf) {
		return 0, comm.ErrTruncated
	}
	return copy(replyBuf, data), nil
}

// Notify issues a one-way remote service request: no reply is awaited.
func (t *Thread) Notify(dst comm.Addr, handler int32, req []byte) error {
	t.mustCurrent("Notify")
	p := t.proc
	if !p.rt.validAddr(dst) {
		return fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	if len(req)+rsrHeaderLen > p.cfg.MaxRSR {
		return fmt.Errorf("%w: %d bytes", ErrRSRTooLarge, len(req))
	}
	if err := p.sendRSR(t.gid.Thread, dst, handler, 0, 0, 0, req); err != nil {
		return err
	}
	p.Counters().RSRSent.Add(1)
	return nil
}

// sendRSR transmits one request envelope to dst's server thread. seq is 0
// for notifications; calls carry their per-client sequence for idempotent
// retry.
func (p *Process) sendRSR(srcThread int32, dst comm.Addr, handler int32, flags byte, replyTag int32, seq uint32, req []byte) error {
	payload := make([]byte, rsrHeaderLen+len(req))
	binary.LittleEndian.PutUint32(payload[0:], uint32(handler))
	payload[4] = flags
	binary.LittleEndian.PutUint32(payload[5:], uint32(replyTag))
	binary.LittleEndian.PutUint32(payload[9:], seq)
	binary.LittleEndian.PutUint32(payload[13:], p.epoch)
	copy(payload[rsrHeaderLen:], req)
	return p.send(srcThread, GlobalID{PE: dst.PE, Proc: dst.Proc, Thread: serverLocalID}, tagRSRRequest, payload)
}

// startServer creates the server thread (Figure 7). It must be the first
// thread created after main so it owns the well-known local id.
func (p *Process) startServer() {
	p.server = p.CreateLocal("chant-server", func(t *Thread) {
		host := p.ep.Host()
		m := host.Model()
		buf := make([]byte, p.cfg.MaxRSR)
		for {
			// Drop back to normal priority while awaiting the next request.
			t.tcb.SetPriority(0)
			spec, err := p.recvSpec(serverLocalID, AnyThread, tagRSRRequest)
			if err != nil {
				panic("core: server recv spec: " + err.Error())
			}
			h := p.ep.Irecv(spec, buf)
			// The boost: when the request is noticed by the scheduler, the
			// server jumps to the head of the line. A negative configured
			// priority disables it.
			boost := p.cfg.ServerPriority
			if boost < 0 {
				boost = noBoost
			}
			p.policy.Wait(h, boost)
			var serveBegin sim.Time
			tr := p.cfg.Tracer
			if tr != nil {
				serveBegin = host.Now()
			}
			host.Charge(m.RSRDispatch)
			p.Counters().RSRRequests.Add(1)
			hdr, n := h.Header(), h.Len()
			p.ep.ReleaseHandle(h)
			p.serveOne(hdr, buf[:n])
			if tr != nil {
				var harg uint64
				if n >= 4 {
					harg = uint64(binary.LittleEndian.Uint32(buf[0:]))
				}
				tr.Span(trace.SpanRSRServe, p.addr.PE, serverLocalID,
					serveBegin, host.Now(), harg)
			}
		}
	}, ult.SpawnOpts{Daemon: true})
	if p.server.gid.Thread != serverLocalID {
		panic(fmt.Sprintf("core: server thread got id %d, want %d (created too late)",
			p.server.gid.Thread, serverLocalID))
	}
}

// serveOne decodes and dispatches a single request.
func (p *Process) serveOne(hdr comm.Header, payload []byte) {
	if len(payload) < rsrHeaderLen {
		return // malformed; drop
	}
	// An open coordinated snapshot logs requests arriving on channels whose
	// marker has not come yet — the channel's in-flight content.
	p.recordInFlight(hdr, payload)
	src := GlobalID{PE: hdr.SrcPE, Proc: hdr.SrcProc, Thread: hdr.SrcThread}
	ctx := &RSRContext{
		Proc:      p,
		Src:       src,
		Req:       payload[rsrHeaderLen:],
		wantReply: payload[4]&rsrFlagWantReply != 0,
		replyTag:  int32(binary.LittleEndian.Uint32(payload[5:])),
		seq:       binary.LittleEndian.Uint32(payload[9:]),
		epoch:     binary.LittleEndian.Uint32(payload[13:]),
	}
	if ctx.wantReply && ctx.seq != 0 {
		rec := p.rsrSeen[src]
		switch admitRSR(rec, ctx.epoch, ctx.seq) {
		case rsrDup:
			// Retransmission of the request being (or already) served:
			// replay the cached reply rather than re-running the handler.
			// If the reply is still pending (deferred), drop — the
			// client's next resend will find the cache filled.
			p.Counters().RSRDupsServed.Add(1)
			if rec.reply != nil {
				srcThread := serverLocalID
				if cur := p.sched.Current(); cur != nil {
					srcThread = cur.ID()
				}
				_ = p.send(srcThread, src, rec.replyTag, rec.reply)
			}
			return
		case rsrStale:
			return // straggler from an abandoned earlier Call or epoch; drop
		}
		p.rsrSeen[src] = &rsrDedup{epoch: ctx.epoch, seq: ctx.seq, replyTag: ctx.replyTag}
	}
	handler := p.handlers[int32(binary.LittleEndian.Uint32(payload[0:]))]
	if handler == nil {
		if ctx.wantReply {
			ctx.Reply(nil, ErrNoHandler)
		}
		return
	}
	data, err := handler(ctx)
	if ctx.wantReply && !ctx.deferred && !ctx.replied {
		ctx.Reply(data, err)
	}
}

// encodeReply frames a reply as [seq][status byte][data | error string].
func encodeReply(seq uint32, data []byte, err error) []byte {
	if err != nil {
		msg := err.Error()
		out := make([]byte, rsrReplyPrefix+1+len(msg))
		binary.LittleEndian.PutUint32(out[0:], seq)
		out[rsrReplyPrefix] = 1
		copy(out[rsrReplyPrefix+1:], msg)
		return out
	}
	out := make([]byte, rsrReplyPrefix+1+len(data))
	binary.LittleEndian.PutUint32(out[0:], seq)
	copy(out[rsrReplyPrefix+1:], data)
	return out
}

// decodeReply unframes a reply, converting a remote error string back into
// an error wrapping ErrRemote.
func decodeReply(wire []byte) ([]byte, error) {
	if len(wire) < 1 {
		return nil, fmt.Errorf("%w: empty reply", ErrRemote)
	}
	if wire[0] != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, wire[1:])
	}
	return wire[1:], nil
}
