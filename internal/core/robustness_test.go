package core

import (
	"errors"
	"testing"

	"chant/internal/comm"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/ult"
)

// robustCfg is the baseline fault-tolerant configuration: short timeouts so
// tests converge quickly in virtual time.
func robustCfg() Config {
	return Config{
		Policy:     SchedulerPollsPS,
		Delivery:   DeliverCtx,
		RSRTimeout: 10 * sim.Millisecond,
		RSRRetries: 8,
		RSRBackoff: 100 * sim.Microsecond,
		TermGrace:  10 * sim.Millisecond,
	}
}

func TestCallRetriesThroughDrops(t *testing.T) {
	// A quarter of the messages on every link disappear; the stop-and-wait
	// retry layer must still complete every Call, exactly once per sequence.
	plan := faults.New(faults.Config{Default: faults.LinkRates{DropProb: 0.25}}, 5)
	cfg := robustCfg()
	cfg.RSRRetries = 16
	cfg.Faults = plan
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	var served int
	rt.RegisterHandler(7, func(ctx *RSRContext) ([]byte, error) {
		served++
		return []byte("pong"), nil
	})
	res, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			buf := make([]byte, 8)
			for i := 0; i < 10; i++ {
				n, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 7, []byte("ping"), buf)
				if err != nil {
					t.Errorf("call %d: %v", i, err)
					return
				}
				if string(buf[:n]) != "pong" {
					t.Errorf("call %d: got %q", i, buf[:n])
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if served != 10 {
		t.Errorf("handler ran %d times for 10 calls: dedup broken", served)
	}
	if plan.Stats().Drops == 0 {
		t.Error("fault plan dropped nothing at 25% loss")
	}
	if res.Total.RSRRetries == 0 {
		t.Error("no retries recorded under 25% loss")
	}
}

func TestCallTimesOutOnTotalLoss(t *testing.T) {
	// Requests toward PE1 always vanish; the Call must give up with
	// ErrRSRTimeout after its retry budget, not hang.
	plan := faults.New(faults.Config{
		PerLink: map[faults.Link]faults.LinkRates{
			{SrcPE: 0, DstPE: 1}: {DropProb: 1},
		},
	}, 5)
	cfg := robustCfg()
	cfg.RSRRetries = 2
	cfg.Faults = plan
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	rt.RegisterHandler(7, func(ctx *RSRContext) ([]byte, error) { return nil, nil })
	var callErr error
	res, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			_, callErr = th.Call(comm.Addr{PE: 1, Proc: 0}, 7, []byte("x"), make([]byte, 8))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(callErr, ErrRSRTimeout) {
		t.Fatalf("Call on a black-holed link: %v, want ErrRSRTimeout", callErr)
	}
	if res.Total.RSRTimeouts != 1 {
		t.Errorf("RSRTimeouts = %d, want 1", res.Total.RSRTimeouts)
	}
	if res.Total.RSRRetries != 2 {
		t.Errorf("RSRRetries = %d, want 2", res.Total.RSRRetries)
	}
}

func TestCrashedPEIsDetected(t *testing.T) {
	// PE1 dies mid-run. PE0's calls to it must start failing with
	// ErrPeerDead (not ErrRSRTimeout forever), the run must still
	// terminate, and the dead scheduler must report ErrKilled.
	plan := faults.New(faults.Config{
		Crashes: []faults.Crash{{PE: 1, At: sim.Time(50 * sim.Millisecond)}},
	}, 5)
	cfg := robustCfg()
	cfg.Faults = plan
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	rt.RegisterHandler(7, func(ctx *RSRContext) ([]byte, error) { return []byte("ok"), nil })
	var firstErr error
	var okCalls int
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			buf := make([]byte, 8)
			for i := 0; i < 1000; i++ {
				if _, cerr := th.Call(comm.Addr{PE: 1, Proc: 0}, 7, []byte("x"), buf); cerr != nil {
					firstErr = cerr
					return
				}
				okCalls++
			}
		},
		{PE: 1, Proc: 0}: func(th *Thread) {
			// Spin forever; the crash is what stops this PE.
			for {
				th.Yield()
			}
		},
	})
	if !errors.Is(err, ult.ErrKilled) {
		t.Fatalf("run error %v does not report the killed PE", err)
	}
	if okCalls == 0 {
		t.Error("no calls succeeded before the crash")
	}
	if !errors.Is(firstErr, comm.ErrPeerDead) {
		t.Fatalf("call to crashed PE failed with %v, want ErrPeerDead", firstErr)
	}
}

func TestMsgwaitTimeoutExpires(t *testing.T) {
	cfg := robustCfg()
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	var gotErr error
	var waited sim.Duration
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			host := th.Process().Endpoint().Host()
			// Nobody ever sends tag 9.
			h, ierr := th.Irecv(GlobalID{PE: 1, Proc: 0, Thread: AnyField}, 9, make([]byte, 8))
			if ierr != nil {
				panic(ierr)
			}
			t0 := host.Now()
			gotErr = th.MsgwaitTimeout(h, 20*sim.Millisecond)
			waited = host.Now().Sub(t0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, comm.ErrTimeout) {
		t.Fatalf("MsgwaitTimeout = %v, want ErrTimeout", gotErr)
	}
	if waited < 20*sim.Millisecond {
		t.Errorf("returned after %v, before the 20ms deadline", waited)
	}
}

func TestMsgwaitTimeoutDelivers(t *testing.T) {
	cfg := robustCfg()
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	var got string
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			buf := make([]byte, 16)
			h, ierr := th.Irecv(GlobalID{PE: 1, Proc: 0, Thread: 0}, 9, buf)
			if ierr != nil {
				panic(ierr)
			}
			if werr := th.MsgwaitTimeout(h, sim.Second); werr != nil {
				panic(werr)
			}
			got = string(buf[:h.Len()])
		},
		{PE: 1, Proc: 0}: func(th *Thread) {
			if serr := th.Send(GlobalID{PE: 0, Proc: 0, Thread: 0}, 9, []byte("on time")); serr != nil {
				panic(serr)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "on time" {
		t.Fatalf("got %q", got)
	}
}

func TestUnexpectedQueueCapDropsOverflow(t *testing.T) {
	// One PE sending to itself keeps the termination handshake (and its
	// own unexpected traffic) out of the accounting.
	cfg := robustCfg()
	cfg.MaxUnexpected = 4
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	res, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			// Ten messages nobody is receiving, against a cap of four.
			for i := 0; i < 10; i++ {
				if serr := th.Send(GlobalID{PE: 0, Proc: 0, Thread: 0}, 3, []byte{byte(i)}); serr != nil {
					panic(serr)
				}
			}
			th.Process().Endpoint().Host().Charge(10 * sim.Millisecond)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Total.UnexpectedDropped; got != 6 {
		t.Errorf("UnexpectedDropped = %d, want 6", got)
	}
}
