package core

import (
	"encoding/binary"
	"fmt"

	"chant/internal/comm"
	"chant/internal/sim"
	"chant/internal/ult"
)

// bodyPrefixLen is the size of the routing prefix prepended to message
// bodies in DeliverBody mode: destination thread, source thread, user tag,
// and delivery flags.
const bodyPrefixLen = 16

// Send transmits data to the global thread dst with the given user tag
// (pthread_chanter_send). It is locally blocking: on return, data may be
// reused by the caller.
func (t *Thread) Send(dst GlobalID, tag int32, data []byte) error {
	t.mustCurrent("Send")
	if err := checkUserTag(tag); err != nil {
		return err
	}
	if !t.proc.rt.validAddr(dst.Addr()) {
		return fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	return t.proc.send(t.gid.Thread, dst, tag, data)
}

// SendSync is the globally-blocking send: it returns only after the
// destination thread has observed the matching receive (the paper's
// stronger "degree of blocking"). The acknowledgement is carried by the
// receiver's runtime automatically.
func (t *Thread) SendSync(dst GlobalID, tag int32, data []byte) error {
	t.mustCurrent("SendSync")
	if err := checkUserTag(tag); err != nil {
		return err
	}
	if !t.proc.rt.validAddr(dst.Addr()) {
		return fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	// Pre-post the ack receive so it is never an unexpected message.
	spec, err := t.proc.recvSpec(t.gid.Thread, dst, tagSyncAck)
	if err != nil {
		return err
	}
	ack := t.proc.ep.Irecv(spec, nil)
	if err := t.proc.sendFlags(t.gid.Thread, dst, tag, comm.FlagSync, data); err != nil {
		t.proc.ep.CancelRecv(ack)
		t.proc.ep.ReleaseHandle(ack)
		return err
	}
	t.proc.policy.Wait(ack, noBoost)
	t.proc.ep.ReleaseHandle(ack)
	return nil
}

// maybeSyncAck sends the synchronous-send acknowledgement for a completed
// receive, exactly once per handle.
func (p *Process) maybeSyncAck(me int32, h *comm.RecvHandle) {
	if h == nil || !h.NeedsSyncAck() {
		return
	}
	hdr := h.Header()
	src := GlobalID{PE: hdr.SrcPE, Proc: hdr.SrcProc, Thread: hdr.SrcThread}
	if err := p.send(me, src, tagSyncAck, nil); err != nil {
		panic("core: sync ack send: " + err.Error())
	}
}

// send is the mode-dispatching transmit path shared by user sends and
// internal (RSR, handshake) traffic.
func (p *Process) send(srcThread int32, dst GlobalID, tag int32, data []byte) error {
	return p.sendFlags(srcThread, dst, tag, 0, data)
}

func (p *Process) sendFlags(srcThread int32, dst GlobalID, tag, flags int32, data []byte) error {
	host := p.ep.Host()
	m := host.Model()
	host.Charge(m.HeaderPack)
	switch p.cfg.Delivery {
	case DeliverCtx:
		p.ep.SendFlags(dst.Addr(), dst.Thread, tag, srcThread, flags, data)
	case DeliverTagPack:
		if dst.Thread > maxPackedThread {
			return fmt.Errorf("%w: thread %d", ErrThreadRange, dst.Thread)
		}
		p.ep.SendFlags(dst.Addr(), 0, packTag(dst.Thread, tag), srcThread, flags, data)
	case DeliverBody:
		if len(data) > p.cfg.MaxBodyMsg {
			return fmt.Errorf("core: message of %d bytes exceeds body-mode maximum %d",
				len(data), p.cfg.MaxBodyMsg)
		}
		// Copy on the sending side "to insert the thread id" — the cost
		// the paper's header-based designs avoid.
		host.Charge(m.CopyCost(len(data)))
		wrapped := make([]byte, bodyPrefixLen+len(data))
		binary.LittleEndian.PutUint32(wrapped[0:], uint32(dst.Thread))
		binary.LittleEndian.PutUint32(wrapped[4:], uint32(srcThread))
		binary.LittleEndian.PutUint32(wrapped[8:], uint32(tag))
		binary.LittleEndian.PutUint32(wrapped[12:], uint32(flags))
		copy(wrapped[bodyPrefixLen:], data)
		p.ep.Send(dst.Addr(), 0, tagBodyWire, srcThread, wrapped)
	}
	return nil
}

// recvSpec builds the comm-layer match specification that routes a message
// for local thread me, from source thread src, with user tag tag, under the
// process's delivery mode.
func (p *Process) recvSpec(me int32, src GlobalID, tag int32) (comm.MatchSpec, error) {
	switch p.cfg.Delivery {
	case DeliverCtx, DeliverBody:
		// In body mode the dispatcher reconstructs full headers, so
		// receives match exactly as in ctx mode.
		return comm.MatchSpec{
			SrcPE:     src.PE,
			SrcProc:   src.Proc,
			SrcThread: src.Thread,
			Ctx:       me,
			Tag:       tag,
		}, nil
	case DeliverTagPack:
		if tag == AnyField {
			return comm.MatchSpec{}, fmt.Errorf(
				"%w: tag wildcard is not expressible when the thread id overloads the tag field", ErrBadTag)
		}
		if me > maxPackedThread {
			return comm.MatchSpec{}, fmt.Errorf("%w: thread %d", ErrThreadRange, me)
		}
		// Source-thread selection is lost: the header's only thread slot
		// carries the destination.
		return comm.MatchSpec{
			SrcPE:     src.PE,
			SrcProc:   src.Proc,
			SrcThread: comm.Any,
			Ctx:       comm.Any,
			Tag:       packTag(me, tag),
		}, nil
	}
	panic("core: unknown delivery mode")
}

// Irecv posts a nonblocking receive for a message from src with tag into
// buf and returns the completion handle (pthread_chanter_irecv). src fields
// and tag may be AnyField where the delivery mode permits.
func (t *Thread) Irecv(src GlobalID, tag int32, buf []byte) (*comm.RecvHandle, error) {
	t.mustCurrent("Irecv")
	if tag != AnyField {
		if err := checkUserTag(tag); err != nil {
			return nil, err
		}
	}
	spec, err := t.proc.recvSpec(t.gid.Thread, src, tag)
	if err != nil {
		return nil, err
	}
	host := t.proc.ep.Host()
	host.Charge(host.Model().HeaderPack)
	h := t.proc.ep.Irecv(spec, buf)
	t.proc.maybeSyncAck(t.gid.Thread, h)
	return h, nil
}

// Msgtest checks a nonblocking receive for completion
// (pthread_chanter_msgtest).
func (t *Thread) Msgtest(h *comm.RecvHandle) bool {
	t.mustCurrent("Msgtest")
	done := t.proc.ep.Test(h)
	if done {
		t.proc.maybeSyncAck(t.gid.Thread, h)
	}
	return done
}

// Msgwait blocks the calling thread until the receive completes, under the
// process's polling policy (pthread_chanter_msgwait).
func (t *Thread) Msgwait(h *comm.RecvHandle) {
	t.mustCurrent("Msgwait")
	t.proc.policy.Wait(h, noBoost)
	t.proc.maybeSyncAck(t.gid.Thread, h)
}

// MsgwaitTimeout blocks until the receive completes or timeout elapses.
// On expiry the receive is withdrawn and comm.ErrTimeout returned; a pinned
// source process declared dead surfaces as comm.ErrPeerDead. A nil return
// means the message arrived (h.Len/h.Header are valid).
func (t *Thread) MsgwaitTimeout(h *comm.RecvHandle, timeout sim.Duration) error {
	t.mustCurrent("MsgwaitTimeout")
	p := t.proc
	err := p.waitDeadline(h, p.ep.Host().Now().Add(timeout))
	if err == nil {
		p.maybeSyncAck(t.gid.Thread, h)
	}
	return err
}

// waitDeadline blocks the calling thread until h completes or the host
// clock reaches deadline. Unlike policy.Wait it must keep testing rather
// than park: when the awaited message was dropped by the network, no
// arrival will ever wake the waiter. Every missed test charges the
// cost model (and advances the real clock), so the deadline is reached in
// finitely many steps in both execution modes.
func (p *Process) waitDeadline(h *comm.RecvHandle, deadline sim.Time) error {
	if p.ep.Test(h) {
		return h.Err()
	}
	host := p.ep.Host()
	t := p.sched.Current()
	end := waitAccounting(p.ep, h)
	defer end()
	t.SetOnCancel(func() { p.ep.CancelRecv(h) })
	defer t.SetOnCancel(nil)
	for {
		p.sched.Yield()
		if p.ep.Test(h) {
			return h.Err()
		}
		if host.Now() >= deadline {
			if p.ep.TimeoutRecv(h) {
				return comm.ErrTimeout
			}
			// The message beat the withdrawal: the handle completed between
			// the last test and the timeout attempt.
			p.ep.Test(h)
			return h.Err()
		}
	}
}

// Recv blocks until a message from src with tag arrives in buf
// (pthread_chanter_recv). It returns the payload length and the sender's
// global identity.
func (t *Thread) Recv(src GlobalID, tag int32, buf []byte) (int, GlobalID, error) {
	h, err := t.Irecv(src, tag, buf)
	if err != nil {
		return 0, GlobalID{}, err
	}
	t.proc.policy.Wait(h, noBoost)
	t.proc.maybeSyncAck(t.gid.Thread, h)
	hdr := h.Header()
	from := GlobalID{PE: hdr.SrcPE, Proc: hdr.SrcProc, Thread: hdr.SrcThread}
	n, err := h.Len(), h.Err()
	t.proc.ep.ReleaseHandle(h) // h never escapes a blocking Recv
	return n, from, err
}

// recvInternal is the blocking receive used by runtime-internal traffic
// (termination handshake); it bypasses user-tag validation.
func (p *Process) recvInternal(t *Thread, src GlobalID, tag int32, buf []byte) (int, comm.Header) {
	spec, err := p.recvSpec(t.gid.Thread, src, tag)
	if err != nil {
		panic("core: internal recv spec: " + err.Error())
	}
	h := p.ep.Irecv(spec, buf)
	p.policy.Wait(h, noBoost)
	n, hdr := h.Len(), h.Header()
	p.ep.ReleaseHandle(h)
	return n, hdr
}

// startDispatcher creates the body-mode dispatcher: the "intermediate
// thread [that must] receive all incoming messages, decode the body, and
// forward the remaining message to the proper thread" — the design the
// paper rejects because of its copies, implemented here so the delivery
// ablation can measure exactly that cost.
func (p *Process) startDispatcher() {
	p.CreateLocal("chant-dispatch", func(t *Thread) {
		host := p.ep.Host()
		m := host.Model()
		buf := make([]byte, p.cfg.MaxBodyMsg+bodyPrefixLen)
		spec := comm.MatchSpec{
			SrcPE:     comm.Any,
			SrcProc:   comm.Any,
			SrcThread: comm.Any,
			Ctx:       comm.Any,
			Tag:       tagBodyWire,
		}
		for {
			h := p.ep.Irecv(spec, buf)
			p.policy.Wait(h, noBoost)
			n := h.Len()
			hdr := h.Header()
			p.ep.ReleaseHandle(h)
			if n < bodyPrefixLen {
				continue // malformed; drop
			}
			dstThread := int32(binary.LittleEndian.Uint32(buf[0:]))
			srcThread := int32(binary.LittleEndian.Uint32(buf[4:]))
			origTag := int32(binary.LittleEndian.Uint32(buf[8:]))
			origFlags := int32(binary.LittleEndian.Uint32(buf[12:]))
			// Copy on the receiving side "to extract the thread id".
			payload := make([]byte, n-bodyPrefixLen)
			copy(payload, buf[bodyPrefixLen:n])
			host.Charge(m.CopyCost(len(payload)))
			p.ep.DeliverLocal(&comm.Message{
				Hdr: comm.Header{
					SrcPE:     hdr.SrcPE,
					SrcProc:   hdr.SrcProc,
					SrcThread: srcThread,
					DstPE:     p.addr.PE,
					DstProc:   p.addr.Proc,
					Ctx:       dstThread,
					Tag:       origTag,
					Size:      int32(len(payload)),
					Flags:     origFlags,
				},
				Data:   payload,
				SentAt: host.Now(),
			})
		}
	}, ult.SpawnOpts{Daemon: true})
}
