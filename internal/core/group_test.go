package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
)

// groupFixture runs body on every member of a group of n threads spread
// round-robin across 2 PEs (worker k lives on PE k%2 with local id
// k/2 + 1). body receives the member's own group handle and rank.
func groupFixture(t *testing.T, cfg Config, n int, body func(g *Group, th *Thread, rank int)) {
	t.Helper()
	// Worker local ids start after main (0) and, in body mode, the
	// dispatcher daemon.
	base := int32(1)
	if cfg.Delivery == DeliverBody {
		base = 2
	}
	if !cfg.DisableServer {
		base++
	}
	members := make([]GlobalID, n)
	for k := 0; k < n; k++ {
		members[k] = GlobalID{PE: int32(k % 2), Proc: 0, Thread: int32(k/2) + base}
	}
	mk := func(pe int32) MainFunc {
		return func(th *Thread) {
			var locals []*Thread
			for k := 0; k < n; k++ {
				if int32(k%2) != pe {
					continue
				}
				rank := k
				locals = append(locals, th.proc.CreateLocal(fmt.Sprintf("m%d", rank), func(me *Thread) {
					g, err := NewGroup(members, 0x1000)
					if err != nil {
						t.Error(err)
						return
					}
					if g.Rank(me.ID()) != rank {
						t.Errorf("member %v got rank %d, want %d", me.ID(), g.Rank(me.ID()), rank)
						return
					}
					body(g, me, rank)
				}, defaultSpawn()))
			}
			for _, lt := range locals {
				if _, err := th.JoinLocal(lt); err != nil {
					t.Error(err)
				}
			}
		}
	}
	runSim2(t, cfg, mk(0), mk(1))
}

func TestGroupBroadcast(t *testing.T) {
	for _, mode := range allDeliveries {
		for _, n := range []int{1, 2, 3, 5, 8, 9} {
			mode, n := mode, n
			t.Run(fmt.Sprintf("%v/n=%d", mode, n), func(t *testing.T) {
				cfg := Config{Policy: SchedulerPollsPS, Delivery: mode, DisableServer: true}
				root := n / 2
				payload := []byte("broadcast payload")
				groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
					buf := make([]byte, len(payload))
					if rank == root {
						copy(buf, payload)
					}
					got, err := g.Broadcast(th, root, buf)
					if err != nil {
						t.Errorf("rank %d: %v", rank, err)
						return
					}
					if got != len(payload) || !bytes.Equal(buf, payload) {
						t.Errorf("rank %d received %q", rank, buf[:got])
					}
				})
			})
		}
	}
}

func TestGroupReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 12} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			cfg := Config{Policy: ThreadPolls, DisableServer: true}
			want := int64(n * (n + 1) / 2)
			groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
				got, err := g.ReduceInt64(th, 0, OpSum, int64(rank)+1)
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				if rank == 0 && got != want {
					t.Errorf("root sum = %d, want %d", got, want)
				}
			})
		})
	}
}

func TestGroupReduceMinMax(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsWQ, DisableServer: true}
	const n = 6
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		v := int64((rank*37)%11 - 5)
		mn, err := g.ReduceInt64(th, 0, OpMin, v)
		if err != nil {
			t.Errorf("min: %v", err)
		}
		mx, err := g.ReduceInt64(th, 0, OpMax, v)
		if err != nil {
			t.Errorf("max: %v", err)
		}
		if rank == 0 {
			wantMn, wantMx := int64(1<<62), int64(-1<<62)
			for k := 0; k < n; k++ {
				kv := int64((k*37)%11 - 5)
				if kv < wantMn {
					wantMn = kv
				}
				if kv > wantMx {
					wantMx = kv
				}
			}
			if mn != wantMn || mx != wantMx {
				t.Errorf("min/max = %d/%d, want %d/%d", mn, mx, wantMn, wantMx)
			}
		}
	})
}

func TestGroupBarrierSynchronizes(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	const n = 8
	var entered atomic.Int32
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		// Stagger arrivals so a broken barrier would be caught.
		th.proc.ep.Host().Compute(int64(rank) * 50_000)
		entered.Add(1)
		if err := g.Barrier(th); err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		if got := entered.Load(); got != n {
			t.Errorf("rank %d passed the barrier with only %d of %d entered", rank, got, n)
		}
	})
}

func TestGroupGather(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	const n = 7
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		val := []byte(fmt.Sprintf("rank-%d", rank))
		out, err := g.Gather(th, 2, val, 32)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		if rank != 2 {
			if out != nil {
				t.Errorf("non-root got %v", out)
			}
			return
		}
		for k, got := range out {
			if string(got) != fmt.Sprintf("rank-%d", k) {
				t.Errorf("slot %d = %q", k, got)
			}
		}
	})
}

func TestGroupAllReduce(t *testing.T) {
	cfg := Config{Policy: ThreadPolls, DisableServer: true}
	const n = 5
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		got, err := g.AllReduceInt64(th, OpSum, int64(rank))
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		if want := int64(n * (n - 1) / 2); got != want {
			t.Errorf("rank %d allreduce = %d, want %d", rank, got, want)
		}
	})
}

func TestGroupConsecutiveCollectivesDoNotInterfere(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	const n = 4
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		for round := 0; round < 10; round++ {
			got, err := g.AllReduceInt64(th, OpSum, int64(round))
			if err != nil {
				t.Errorf("round %d rank %d: %v", round, rank, err)
				return
			}
			if want := int64(round * n); got != want {
				t.Errorf("round %d rank %d: %d, want %d", round, rank, got, want)
			}
		}
	})
}

func TestGroupValidation(t *testing.T) {
	members := []GlobalID{{PE: 0, Proc: 0, Thread: 1}, {PE: 1, Proc: 0, Thread: 1}}
	if _, err := NewGroup(nil, 0); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewGroup(members, TagReserved); !errors.Is(err, ErrBadTag) {
		t.Error("tag window outside user space accepted")
	}
	if _, err := NewGroup(append(members, members[0]), 0); err == nil {
		t.Error("duplicate member accepted")
	}
	g, err := NewGroup(members, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 || g.Member(1) != members[1] {
		t.Error("accessors broken")
	}
	if g.Rank(GlobalID{PE: 9}) != -1 {
		t.Error("non-member rank not -1")
	}
}

func TestGroupNonMemberRejected(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			g, err := NewGroup([]GlobalID{{PE: 0, Proc: 0, Thread: 99}}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Barrier(th); err == nil {
				t.Error("non-member barrier accepted")
			}
			if _, err := g.Broadcast(th, 5, nil); err == nil {
				t.Error("non-member broadcast accepted")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupScatter(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	const n = 5
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		var values [][]byte
		if rank == 1 { // root
			for r := 0; r < n; r++ {
				values = append(values, []byte(fmt.Sprintf("piece-%d", r)))
			}
		}
		buf := make([]byte, 16)
		got, err := g.Scatter(th, 1, values, buf)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		if want := fmt.Sprintf("piece-%d", rank); string(buf[:got]) != want {
			t.Errorf("rank %d scattered %q, want %q", rank, buf[:got], want)
		}
	})
}

func TestGroupScatterWrongCount(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			g, err := NewGroup([]GlobalID{th.ID()}, 0x1000)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.Scatter(th, 0, [][]byte{{1}, {2}}, make([]byte, 4)); err == nil {
				t.Error("wrong value count accepted")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupAllGather(t *testing.T) {
	cfg := Config{Policy: ThreadPolls, DisableServer: true}
	const n = 6
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		out, err := g.AllGather(th, []byte(fmt.Sprintf("v%d", rank)), 8)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		if len(out) != n {
			t.Errorf("rank %d got %d values", rank, len(out))
			return
		}
		for r, v := range out {
			if string(v) != fmt.Sprintf("v%d", r) {
				t.Errorf("rank %d slot %d = %q", rank, r, v)
			}
		}
	})
}

func TestGroupAllGatherEmptyValues(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsWQ, DisableServer: true}
	const n = 3
	groupFixture(t, cfg, n, func(g *Group, th *Thread, rank int) {
		out, err := g.AllGather(th, nil, 4)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		for r, v := range out {
			if len(v) != 0 {
				t.Errorf("rank %d slot %d nonempty: %q", rank, r, v)
			}
		}
	})
}
