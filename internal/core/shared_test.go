package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
)

func TestSharedHomeFastPath(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1},
		Config{Policy: SchedulerPollsPS}, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			v, err := th.proc.NewShared("x", comm.Addr{PE: 0, Proc: 0}, []byte("init"))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 16)
			n, err := v.Read(th, buf)
			if err != nil || string(buf[:n]) != "init" {
				t.Errorf("read = (%q, %v)", buf[:n], err)
			}
			if err := v.Write(th, []byte("updated")); err != nil {
				t.Errorf("write: %v", err)
			}
			n, err = v.Read(th, buf)
			if err != nil || string(buf[:n]) != "updated" {
				t.Errorf("read after write = (%q, %v)", buf[:n], err)
			}
			if v.Version() != 2 {
				t.Errorf("version = %d, want 2", v.Version())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedRemoteReadCaches(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsWQ}
	home := comm.Addr{PE: 1, Proc: 0}
	runSim2(t, cfg,
		func(th *Thread) {
			v, err := th.proc.NewShared("data", home, nil)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 32)
			n, err := v.Read(th, buf)
			if err != nil || string(buf[:n]) != "authoritative" {
				t.Errorf("first read = (%q, %v)", buf[:n], err)
			}
			if !v.CachedLocally() {
				t.Error("value not cached after read")
			}
			before := th.proc.Counters().RSRSent.Load()
			for i := 0; i < 5; i++ {
				if _, err := v.Read(th, buf); err != nil {
					t.Error(err)
				}
			}
			if got := th.proc.Counters().RSRSent.Load(); got != before {
				t.Errorf("cached reads issued %d RSRs", got-before)
			}
		},
		func(th *Thread) {
			if _, err := th.proc.NewShared("data", home, []byte("authoritative")); err != nil {
				t.Fatal(err)
			}
			// Home must outlive the reader's fetches; the termination
			// handshake guarantees it.
		},
	)
}

func TestSharedWriteInvalidatesCaches(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	home := comm.Addr{PE: 0, Proc: 0}
	runSim2(t, cfg,
		func(th *Thread) { // home + writer
			v, err := th.proc.NewShared("cfg", home, []byte("v1"))
			if err != nil {
				t.Fatal(err)
			}
			// Wait for the reader to signal that it cached v1.
			buf := make([]byte, 8)
			th.Recv(AnyThread, 9, buf)
			if err := v.Write(th, []byte("v2")); err != nil {
				t.Errorf("write: %v", err)
			}
			// Tell the reader to re-read.
			th.Send(GlobalID{PE: 1, Proc: 0, Thread: 0}, 9, []byte("go"))
		},
		func(th *Thread) { // remote reader
			v, err := th.proc.NewShared("cfg", home, nil)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			n, err := v.Read(th, buf)
			if err != nil || string(buf[:n]) != "v1" {
				t.Errorf("initial read = (%q, %v)", buf[:n], err)
			}
			th.Send(GlobalID{PE: 0, Proc: 0, Thread: 0}, 9, []byte("cached"))
			th.Recv(AnyThread, 9, buf)
			// The write has completed, so the cache must have been
			// invalidated and this read must fetch v2.
			if v.CachedLocally() {
				t.Error("cache still valid after remote write completed")
			}
			n, err = v.Read(th, buf)
			if err != nil || string(buf[:n]) != "v2" {
				t.Errorf("read after invalidation = (%q, %v)", buf[:n], err)
			}
		},
	)
}

func TestSharedRemoteWrite(t *testing.T) {
	cfg := Config{Policy: ThreadPolls}
	home := comm.Addr{PE: 1, Proc: 0}
	runSim2(t, cfg,
		func(th *Thread) { // remote writer
			v, err := th.proc.NewShared("w", home, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := v.Write(th, []byte("from-afar")); err != nil {
				t.Errorf("remote write: %v", err)
			}
			buf := make([]byte, 16)
			n, err := v.Read(th, buf)
			if err != nil || string(buf[:n]) != "from-afar" {
				t.Errorf("read back = (%q, %v)", buf[:n], err)
			}
		},
		func(th *Thread) {
			if _, err := th.proc.NewShared("w", home, []byte("old")); err != nil {
				t.Fatal(err)
			}
		},
	)
}

func TestSharedConcurrentWritersSerialized(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	home := comm.Addr{PE: 0, Proc: 0}
	const writesPerSide = 8
	finalVersion := int64(0)
	runSim2(t, cfg,
		func(th *Thread) {
			v, err := th.proc.NewShared("ctr", home, []byte{0})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < writesPerSide; i++ {
				if err := v.Write(th, []byte{byte(i)}); err != nil {
					t.Errorf("home write %d: %v", i, err)
				}
			}
			// Synchronize: wait until the peer reports done, then read the
			// version at home.
			buf := make([]byte, 4)
			th.Recv(AnyThread, 9, buf)
			finalVersion = v.Version()
		},
		func(th *Thread) {
			v, err := th.proc.NewShared("ctr", home, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < writesPerSide; i++ {
				if err := v.Write(th, []byte{byte(100 + i)}); err != nil {
					t.Errorf("remote write %d: %v", i, err)
				}
			}
			th.Send(GlobalID{PE: 0, Proc: 0, Thread: 0}, 9, []byte("done"))
		},
	)
	// Initial install is version 1; every write bumps exactly once.
	if want := int64(1 + 2*writesPerSide); finalVersion != want {
		t.Fatalf("final version = %d, want %d (lost or duplicated writes)", finalVersion, want)
	}
}

func TestSharedManyReadersOneWriter(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	home := comm.Addr{PE: 0, Proc: 0}
	const rounds = 5
	runSim2(t, cfg,
		func(th *Thread) { // home: writes rounds versions, paced by acks
			v, err := th.proc.NewShared("seq", home, encodeInt64(0))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 4)
			for r := int64(1); r <= rounds; r++ {
				if err := v.Write(th, encodeInt64(r)); err != nil {
					t.Error(err)
				}
				th.Send(GlobalID{PE: 1, Proc: 0, Thread: 0}, 9, []byte("w"))
				th.Recv(AnyThread, 9, buf)
			}
		},
		func(th *Thread) { // reader: after each write ack, must see >= that round
			v, err := th.proc.NewShared("seq", home, nil)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			ack := make([]byte, 4)
			for r := int64(1); r <= rounds; r++ {
				th.Recv(AnyThread, 9, ack)
				n, err := v.Read(th, buf)
				if err != nil || n != 8 {
					t.Errorf("round %d: read (%d, %v)", r, n, err)
					continue
				}
				got := int64(binary.LittleEndian.Uint64(buf))
				if got < r {
					t.Errorf("round %d: stale value %d read after write completed", r, got)
				}
				th.Send(GlobalID{PE: 0, Proc: 0, Thread: 0}, 9, []byte("ok"))
			}
		},
	)
}

func TestSharedErrors(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			if _, err := th.proc.NewShared("bad", comm.Addr{PE: 9, Proc: 9}, nil); !errors.Is(err, ErrBadTarget) {
				t.Errorf("bad home: %v", err)
			}
			if _, err := th.proc.NewShared("dup", comm.Addr{PE: 0, Proc: 0}, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := th.proc.NewShared("dup", comm.Addr{PE: 0, Proc: 0}, nil); err == nil {
				t.Error("duplicate creation accepted")
			}
			// Access to a variable whose home never created it.
			v, err := th.proc.NewShared("ghost", comm.Addr{PE: 1, Proc: 0}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := v.Read(th, make([]byte, 8)); !errors.Is(err, ErrRemote) {
				t.Errorf("ghost read: %v", err)
			}
			if err := v.Write(th, []byte("x")); !errors.Is(err, ErrRemote) {
				t.Errorf("ghost write: %v", err)
			}
		},
		nil,
	)
}

func TestSharedReadTruncation(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1},
		Config{Policy: SchedulerPollsPS}, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			v, _ := th.proc.NewShared("big", comm.Addr{PE: 0, Proc: 0}, []byte("0123456789"))
			buf := make([]byte, 4)
			n, err := v.Read(th, buf)
			if !errors.Is(err, comm.ErrTruncated) || n != 4 {
				t.Errorf("truncated read = (%d, %v)", n, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedManyVariables(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsWQ}
	runSim2(t, cfg,
		func(th *Thread) {
			// Several variables homed on each side; all readable everywhere.
			var mine, theirs []*SharedVar
			for i := 0; i < 4; i++ {
				v, err := th.proc.NewShared(fmt.Sprintf("pe0-%d", i), comm.Addr{PE: 0, Proc: 0},
					[]byte{byte(i)})
				if err != nil {
					t.Fatal(err)
				}
				mine = append(mine, v)
			}
			// Let pe1 install its variables before we fetch them.
			buf := make([]byte, 4)
			th.Recv(AnyThread, 9, buf)
			for i := 0; i < 4; i++ {
				v, err := th.proc.NewShared(fmt.Sprintf("pe1-%d", i), comm.Addr{PE: 1, Proc: 0}, nil)
				if err != nil {
					t.Fatal(err)
				}
				theirs = append(theirs, v)
			}
			for i, v := range theirs {
				n, err := v.Read(th, buf)
				if err != nil || n != 1 || buf[0] != byte(10+i) {
					t.Errorf("pe1-%d read = (%v, %v, %v)", i, n, buf[0], err)
				}
			}
			_ = mine
		},
		func(th *Thread) {
			for i := 0; i < 4; i++ {
				if _, err := th.proc.NewShared(fmt.Sprintf("pe1-%d", i), comm.Addr{PE: 1, Proc: 0},
					[]byte{byte(10 + i)}); err != nil {
					t.Fatal(err)
				}
			}
			th.Send(GlobalID{PE: 0, Proc: 0, Thread: 0}, 9, []byte("up"))
		},
	)
}
