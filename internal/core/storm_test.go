package core

import (
	"fmt"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/sim"
)

// TestMessageStormConservation drives a randomized (but seeded) traffic
// pattern across every polling policy and asserts the global conservation
// property: every message sent is received exactly once, with the right
// payload total, and the runtime terminates cleanly. This is the
// integration-level complement of the mailbox conservation property test.
func TestMessageStormConservation(t *testing.T) {
	const (
		pes        = 3
		sendersPer = 4
		msgsEach   = 20
	)
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			rt := NewSimRuntime(Topology{PEs: pes, ProcsPerPE: 1},
				Config{Policy: pol, DisableServer: true}, machine.Paragon1994())

			// Each PE hosts one sink (local id 1) and sendersPer senders.
			// Every sender sprays msgsEach messages at seeded-random sinks;
			// each message carries a unique value. Sinks sum what they get.
			totalMsgs := pes * sendersPer * msgsEach
			sinkSums := make([]uint64, pes)
			sinkCounts := make([]int, pes)
			expectedPerSink := make([]uint64, pes)
			expectedCount := make([]int, pes)

			// Precompute the traffic pattern so sinks know how much to expect.
			rng := sim.NewRNG(12345)
			type planned struct {
				srcPE, senderIdx int
				dstPE            int
				value            uint32
			}
			var plan []planned
			v := uint32(1)
			for pe := 0; pe < pes; pe++ {
				for s := 0; s < sendersPer; s++ {
					for m := 0; m < msgsEach; m++ {
						dst := rng.Intn(pes)
						plan = append(plan, planned{pe, s, dst, v})
						expectedPerSink[dst] += uint64(v)
						expectedCount[dst]++
						v++
					}
				}
			}

			mains := map[comm.Addr]MainFunc{}
			for pe := 0; pe < pes; pe++ {
				pe := pe
				mains[comm.Addr{PE: int32(pe), Proc: 0}] = func(th *Thread) {
					sink := th.proc.CreateLocal("sink", func(me *Thread) {
						buf := make([]byte, 8)
						for i := 0; i < expectedCount[pe]; i++ {
							n, _, err := me.Recv(AnyThread, 3, buf)
							if err != nil || n != 4 {
								t.Errorf("pe%d sink: n=%d err=%v", pe, n, err)
								return
							}
							sinkSums[pe] += uint64(uint32(buf[0]) | uint32(buf[1])<<8 |
								uint32(buf[2])<<16 | uint32(buf[3])<<24)
							sinkCounts[pe]++
						}
					}, defaultSpawn())
					var senders []*Thread
					for s := 0; s < sendersPer; s++ {
						s := s
						senders = append(senders, th.proc.CreateLocal(fmt.Sprintf("src%d", s), func(me *Thread) {
							host := me.proc.ep.Host()
							for _, pl := range plan {
								if pl.srcPE != pe || pl.senderIdx != s {
									continue
								}
								host.Compute(int64(pl.value%7) * 500)
								msg := []byte{byte(pl.value), byte(pl.value >> 8),
									byte(pl.value >> 16), byte(pl.value >> 24)}
								// Sinks are local id 1 everywhere.
								if err := me.Send(GlobalID{PE: int32(pl.dstPE), Proc: 0, Thread: 1}, 3, msg); err != nil {
									t.Errorf("send: %v", err)
									return
								}
							}
						}, defaultSpawn()))
					}
					for _, w := range append(senders, sink) {
						if _, err := th.JoinLocal(w); err != nil {
							t.Error(err)
						}
					}
				}
			}
			res, err := rt.Run(mains)
			if err != nil {
				t.Fatal(err)
			}
			gotMsgs := 0
			for pe := 0; pe < pes; pe++ {
				gotMsgs += sinkCounts[pe]
				if sinkSums[pe] != expectedPerSink[pe] {
					t.Errorf("pe%d sink sum = %d, want %d", pe, sinkSums[pe], expectedPerSink[pe])
				}
			}
			if gotMsgs != totalMsgs {
				t.Errorf("received %d of %d messages", gotMsgs, totalMsgs)
			}
			if res.Total.Recvs < uint64(totalMsgs) {
				t.Errorf("counter says %d receives for %d messages", res.Total.Recvs, totalMsgs)
			}
		})
	}
}

// TestSchedulerFuzz drives each process's thread population through a
// seeded-random sequence of spawns, yields, sends, receives, cancels, and
// joins, asserting only global invariants: the machine terminates, nothing
// deadlocks, no thread leaks in the registry, and the runtime's counters
// are self-consistent.
func TestSchedulerFuzz(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99, 1234} {
		for _, pol := range []PolicyKind{ThreadPolls, SchedulerPollsPS, SchedulerPollsWQ} {
			seed, pol := seed, pol
			t.Run(fmt.Sprintf("%v/seed=%d", pol, seed), func(t *testing.T) {
				rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1},
					Config{Policy: pol, DisableServer: true}, machine.Paragon1994())
				mk := func(pe int32) MainFunc {
					return func(th *Thread) {
						rng := sim.NewRNG(seed + uint64(pe))
						p := th.proc
						host := p.ep.Host()
						var kids []*Thread
						// A partner pair on each PE exchanges messages so
						// receives always have matching sends: chatter(k)
						// on pe exchanges with chatter(k) on 1-pe.
						for k := 0; k < 3; k++ {
							k := k
							kids = append(kids, p.CreateLocal(fmt.Sprintf("chat%d", k), func(me *Thread) {
								peer := GlobalID{PE: 1 - pe, Proc: 0, Thread: me.ID().Thread}
								buf := make([]byte, 16)
								for i := 0; i < 10; i++ {
									host.Compute(int64(rng.Intn(2000)))
									if err := me.Send(peer, 1, []byte("m")); err != nil {
										t.Error(err)
										return
									}
									if _, _, err := me.Recv(peer, 1, buf); err != nil {
										t.Error(err)
										return
									}
									if rng.Intn(3) == 0 {
										me.Yield()
									}
								}
							}, defaultSpawn()))
						}
						// Churn: spawn-and-join or spawn-and-cancel workers.
						for i := 0; i < 15; i++ {
							switch rng.Intn(3) {
							case 0:
								w := p.CreateLocal("churn", func(me *Thread) {
									host.Compute(int64(rng.Intn(500)))
								}, defaultSpawn())
								th.JoinLocal(w)
							case 1:
								w := p.CreateLocal("churn-cancel", func(me *Thread) {
									for {
										me.Yield()
									}
								}, defaultSpawn())
								th.Yield()
								th.CancelLocal(w)
								th.JoinLocal(w)
							case 2:
								th.Yield()
								host.Compute(int64(rng.Intn(1000)))
							}
						}
						for _, k := range kids {
							if _, err := th.JoinLocal(k); err != nil {
								t.Error(err)
							}
						}
						// Registry hygiene: every joined thread is gone; only
						// main remains.
						if got := len(p.threads); got != 1 {
							t.Errorf("pe%d: %d registry entries remain, want 1", pe, got)
						}
					}
				}
				res, err := rt.Run(map[comm.Addr]MainFunc{
					{PE: 0, Proc: 0}: mk(0),
					{PE: 1, Proc: 0}: mk(1),
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Total.Sends == 0 || res.Total.Recvs == 0 {
					t.Error("fuzz run moved no messages")
				}
			})
		}
	}
}
