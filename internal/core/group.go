package core

import (
	"encoding/binary"
	"fmt"
)

// Group is an ordered set of global threads participating in collective
// operations. The paper's Figure 3 lists process-group management among
// the required communication-package capabilities; Chant lifts groups to
// thread granularity, which is what its intended clients (task-parallel
// HPF, shared data abstractions) coordinate between.
//
// Every member must construct its own Group handle with the identical
// member list and tag base, and all members must invoke the same
// collectives in the same order (the usual MPI-style requirement); a
// per-handle sequence number then keeps consecutive collectives from
// interfering. Collectives use exact tags and exact member addressing, so
// they work under every delivery mode, including tag overloading.
type Group struct {
	members []GlobalID
	rank    map[GlobalID]int
	tagBase int32
	seq     int32
}

// groupTagWindow is the number of consecutive tags a group consumes from
// its base; sequence numbers wrap within it.
const groupTagWindow = 256

// groupLevelTags is the per-collective tag block: tree algorithms tag each
// level distinctly so that, under tag-overload delivery (where
// source-thread selection is unavailable), partials from different
// children in the same process can never cross-match.
const groupLevelTags = 32

// NewGroup builds a group handle over members (identical order at every
// member). tagBase reserves [tagBase, tagBase+groupTagWindow) of the user
// tag space for this group's traffic.
func NewGroup(members []GlobalID, tagBase int32) (*Group, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: empty group")
	}
	if tagBase < 0 || tagBase+groupTagWindow > TagReserved {
		return nil, fmt.Errorf("%w: group tag window [%d,%d) outside user tag space",
			ErrBadTag, tagBase, tagBase+groupTagWindow)
	}
	g := &Group{
		members: append([]GlobalID(nil), members...),
		rank:    make(map[GlobalID]int, len(members)),
		tagBase: tagBase,
	}
	for i, m := range members {
		if _, dup := g.rank[m]; dup {
			return nil, fmt.Errorf("core: duplicate group member %v", m)
		}
		g.rank[m] = i
	}
	return g, nil
}

// Size reports the number of members.
func (g *Group) Size() int { return len(g.members) }

// Member reports the global id at the given rank.
func (g *Group) Member(rank int) GlobalID { return g.members[rank] }

// Rank reports a member's position, or -1 if id is not a member.
func (g *Group) Rank(id GlobalID) int {
	if r, ok := g.rank[id]; ok {
		return r
	}
	return -1
}

// nextTag advances the collective sequence and returns the base of its
// tag block; level i of a tree algorithm uses base+i.
func (g *Group) nextTag() int32 {
	blocks := int32(groupTagWindow / groupLevelTags)
	base := g.tagBase + (g.seq%blocks)*groupLevelTags
	g.seq++
	return base
}

// levelOf reports the tree level (bit index) of a power-of-two mask.
func levelOf(mask int) int32 {
	l := int32(0)
	for mask > 1 {
		mask >>= 1
		l++
	}
	return l
}

// callerRank validates that t is a member and returns its rank.
func (g *Group) callerRank(t *Thread) (int, error) {
	r := g.Rank(t.ID())
	if r < 0 {
		return 0, fmt.Errorf("core: thread %v is not a member of this group", t.ID())
	}
	return r, nil
}

// Broadcast distributes root's buf to every member (binomial tree). All
// members pass a buffer of the same length; on non-roots it receives the
// payload. It returns the payload length.
func (g *Group) Broadcast(t *Thread, root int, buf []byte) (int, error) {
	rank, err := g.callerRank(t)
	if err != nil {
		return 0, err
	}
	if root < 0 || root >= g.Size() {
		return 0, fmt.Errorf("core: broadcast root %d out of range", root)
	}
	tag := g.nextTag()
	size := g.Size()
	rel := (rank - root + size) % size
	n := len(buf)

	// Receive from the parent (the member that differs in the lowest set
	// bit of our relative rank).
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (rel - mask + root) % size
			got, _, err := t.Recv(g.members[src], tag+levelOf(mask), buf)
			if err != nil {
				return 0, err
			}
			n = got
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel&^(mask-1) == rel && rel+mask < size { // rel's low bits below mask are zero
			dst := (rel + mask + root) % size
			if err := t.Send(g.members[dst], tag+levelOf(mask), buf[:n]); err != nil {
				return 0, err
			}
		}
		mask >>= 1
	}
	return n, nil
}

// ReduceFunc combines two partial values into one (it must be associative
// and commutative). The returned slice may alias either input.
type ReduceFunc func(a, b []byte) []byte

// Reduce combines every member's value at root (binomial tree). Only the
// root's returned slice is meaningful; other members receive nil.
func (g *Group) Reduce(t *Thread, root int, op ReduceFunc, value []byte, maxPartial int) ([]byte, error) {
	rank, err := g.callerRank(t)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= g.Size() {
		return nil, fmt.Errorf("core: reduce root %d out of range", root)
	}
	tag := g.nextTag()
	size := g.Size()
	rel := (rank - root + size) % size

	acc := append([]byte(nil), value...)
	buf := make([]byte, maxPartial)
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % size
			if err := t.Send(g.members[dst], tag+levelOf(mask), acc); err != nil {
				return nil, err
			}
			return nil, nil // partial handed upward; done
		}
		if rel+mask < size {
			src := (rel + mask + root) % size
			n, _, err := t.Recv(g.members[src], tag+levelOf(mask), buf)
			if err != nil {
				return nil, err
			}
			acc = op(acc, buf[:n])
		}
	}
	return acc, nil
}

// Barrier blocks until every member has entered it (a zero-byte reduce to
// rank 0 followed by a zero-byte broadcast).
func (g *Group) Barrier(t *Thread) error {
	if _, err := g.Reduce(t, 0, func(a, b []byte) []byte { return a }, nil, 1); err != nil {
		return err
	}
	_, err := g.Broadcast(t, 0, []byte{})
	return err
}

// Gather collects every member's value at root, ordered by rank. Only the
// root's returned slice is meaningful. Each value must be at most
// maxPartial bytes.
func (g *Group) Gather(t *Thread, root int, value []byte, maxPartial int) ([][]byte, error) {
	rank, err := g.callerRank(t)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= g.Size() {
		return nil, fmt.Errorf("core: gather root %d out of range", root)
	}
	tag := g.nextTag()
	if rank != root {
		return nil, t.Send(g.members[root], tag, value)
	}
	out := make([][]byte, g.Size())
	out[root] = append([]byte(nil), value...)
	buf := make([]byte, maxPartial)
	for i := 0; i < g.Size()-1; i++ {
		// Receive from anyone and slot by the sender's identity, so no
		// source-selective matching is needed (tag-overload compatible).
		n, from, err := t.Recv(AnyThread, tag, buf)
		if err != nil {
			return nil, err
		}
		r := g.Rank(from)
		if r < 0 {
			return nil, fmt.Errorf("core: gather received from non-member %v", from)
		}
		if out[r] != nil {
			return nil, fmt.Errorf("core: gather received twice from rank %d", r)
		}
		out[r] = append([]byte(nil), buf[:n]...)
	}
	return out, nil
}

// --- int64 conveniences ---

// Int64Op names a built-in reduction on int64 values.
type Int64Op int

// Built-in reductions.
const (
	OpSum Int64Op = iota
	OpMin
	OpMax
)

func (op Int64Op) apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	panic("core: unknown Int64Op")
}

func encodeInt64(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeInt64(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("core: malformed int64 partial (%d bytes)", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// ReduceInt64 reduces one int64 per member at root. Non-roots receive 0.
func (g *Group) ReduceInt64(t *Thread, root int, op Int64Op, value int64) (int64, error) {
	res, err := g.Reduce(t, root, func(a, b []byte) []byte {
		x, err1 := decodeInt64(a)
		y, err2 := decodeInt64(b)
		if err1 != nil || err2 != nil {
			return a // malformed partials surface as a wrong root value
		}
		return encodeInt64(op.apply(x, y))
	}, encodeInt64(value), 8)
	if err != nil || res == nil {
		return 0, err
	}
	return decodeInt64(res)
}

// AllReduceInt64 reduces at rank 0 and broadcasts the result to everyone.
func (g *Group) AllReduceInt64(t *Thread, op Int64Op, value int64) (int64, error) {
	res, err := g.ReduceInt64(t, 0, op, value)
	if err != nil {
		return 0, err
	}
	buf := encodeInt64(res)
	if _, err := g.Broadcast(t, 0, buf); err != nil {
		return 0, err
	}
	return decodeInt64(buf)
}

// Scatter distributes one per-member value from root: values[r] goes to
// rank r (only the root's values argument is read). Every member receives
// into buf and gets back the received length.
func (g *Group) Scatter(t *Thread, root int, values [][]byte, buf []byte) (int, error) {
	rank, err := g.callerRank(t)
	if err != nil {
		return 0, err
	}
	if root < 0 || root >= g.Size() {
		return 0, fmt.Errorf("core: scatter root %d out of range", root)
	}
	tag := g.nextTag()
	if rank == root {
		if len(values) != g.Size() {
			return 0, fmt.Errorf("core: scatter needs %d values, got %d", g.Size(), len(values))
		}
		for r, v := range values {
			if r == root {
				continue
			}
			if err := t.Send(g.members[r], tag, v); err != nil {
				return 0, err
			}
		}
		return copy(buf, values[root]), nil
	}
	n, _, err := t.Recv(g.members[root], tag, buf)
	return n, err
}

// AllGather collects every member's value at every member, ordered by
// rank: a gather to rank 0 followed by a broadcast of the packed result.
// Each value must be at most maxPartial bytes.
func (g *Group) AllGather(t *Thread, value []byte, maxPartial int) ([][]byte, error) {
	if _, err := g.callerRank(t); err != nil {
		return nil, err
	}
	gathered, err := g.Gather(t, 0, value, maxPartial)
	if err != nil {
		return nil, err
	}
	// Pack at the root: [count u16] then per value [len u16][bytes].
	var packed []byte
	if gathered != nil {
		packed = make([]byte, 2, 2+g.Size()*(2+maxPartial))
		binary.LittleEndian.PutUint16(packed, uint16(len(gathered)))
		for _, v := range gathered {
			var l [2]byte
			binary.LittleEndian.PutUint16(l[:], uint16(len(v)))
			packed = append(packed, l[:]...)
			packed = append(packed, v...)
		}
	} else {
		packed = make([]byte, 2+g.Size()*(2+maxPartial))
	}
	n, err := g.Broadcast(t, 0, packed)
	if err != nil {
		return nil, err
	}
	packed = packed[:n]
	if len(packed) < 2 {
		return nil, fmt.Errorf("core: malformed allgather pack")
	}
	count := int(binary.LittleEndian.Uint16(packed))
	out := make([][]byte, 0, count)
	off := 2
	for i := 0; i < count; i++ {
		if off+2 > len(packed) {
			return nil, fmt.Errorf("core: truncated allgather pack")
		}
		l := int(binary.LittleEndian.Uint16(packed[off:]))
		off += 2
		if off+l > len(packed) {
			return nil, fmt.Errorf("core: truncated allgather value")
		}
		out = append(out, append([]byte(nil), packed[off:off+l]...))
		off += l
	}
	return out, nil
}
