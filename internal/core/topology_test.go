package core

import (
	"fmt"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
)

// Tests for machine shapes beyond the paper's 2x1: several processes per
// PE, processes without mains, and larger meshes.

func TestMultipleProcessesPerPE(t *testing.T) {
	// 2 PEs x 2 processes: intra-PE and inter-PE process pairs both talk.
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 2},
		Config{Policy: SchedulerPollsPS, DisableServer: true}, machine.Paragon1994())
	received := map[string]string{}
	mains := map[comm.Addr]MainFunc{}
	for pe := int32(0); pe < 2; pe++ {
		for pr := int32(0); pr < 2; pr++ {
			pe, pr := pe, pr
			mains[comm.Addr{PE: pe, Proc: pr}] = func(th *Thread) {
				// Each process sends to the "next" process in (pe, proc)
				// order and receives from the previous.
				nextPE, nextPr := pe, pr+1
				if nextPr == 2 {
					nextPE, nextPr = (pe+1)%2, 0
				}
				msg := fmt.Sprintf("from %d.%d", pe, pr)
				if err := th.Send(GlobalID{PE: nextPE, Proc: nextPr, Thread: 0}, 1, []byte(msg)); err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 32)
				n, from, err := th.Recv(AnyThread, 1, buf)
				if err != nil {
					t.Error(err)
					return
				}
				received[fmt.Sprintf("%d.%d", pe, pr)] = fmt.Sprintf("%s (src %v)", buf[:n], from)
			}
		}
	}
	if _, err := rt.Run(mains); err != nil {
		t.Fatal(err)
	}
	if len(received) != 4 {
		t.Fatalf("only %d processes received", len(received))
	}
	if got := received["0.1"]; got != "from 0.0 (src pe0.p0.t0)" {
		t.Errorf("0.1 received %q", got)
	}
	if got := received["0.0"]; got != "from 1.1 (src pe1.p1.t0)" {
		t.Errorf("0.0 received %q", got)
	}
}

func TestProcessWithoutMainServesRSRs(t *testing.T) {
	// pe1 has no main at all: it must come up, serve remote creates and
	// calls, and shut down when the coordinator releases it.
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1},
		Config{Policy: SchedulerPollsWQ}, machine.Paragon1994())
	rt.Register("echo-len", func(th *Thread, arg []byte) {
		th.Exit(int64(len(arg)))
	})
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			if err := th.Ping(comm.Addr{PE: 1, Proc: 0}); err != nil {
				t.Errorf("ping of main-less process: %v", err)
			}
			id, err := th.Create(1, 0, "echo-len", []byte("12345"), CreateOpts{})
			if err != nil {
				t.Errorf("create on main-less process: %v", err)
				return
			}
			v, err := th.Join(id)
			if err != nil || v != int64(5) {
				t.Errorf("join = (%v, %v)", v, err)
			}
		},
		// {PE: 1}: intentionally absent.
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargerMesh(t *testing.T) {
	// A 4-PE all-to-all: every process sends one message to every other
	// and receives PEs-1 messages. Exercises the coordinator handshake at
	// larger scale.
	const pes = 4
	rt := NewSimRuntime(Topology{PEs: pes, ProcsPerPE: 1},
		Config{Policy: ThreadPolls, DisableServer: true}, machine.Paragon1994())
	got := make([]int, pes)
	mains := map[comm.Addr]MainFunc{}
	for pe := int32(0); pe < pes; pe++ {
		pe := pe
		mains[comm.Addr{PE: pe, Proc: 0}] = func(th *Thread) {
			for other := int32(0); other < pes; other++ {
				if other == pe {
					continue
				}
				if err := th.Send(GlobalID{PE: other, Proc: 0, Thread: 0}, 1, []byte{byte(pe)}); err != nil {
					t.Error(err)
				}
			}
			buf := make([]byte, 4)
			for i := 0; i < pes-1; i++ {
				if _, _, err := th.Recv(AnyThread, 1, buf); err != nil {
					t.Error(err)
				}
				got[pe]++
			}
		}
	}
	if _, err := rt.Run(mains); err != nil {
		t.Fatal(err)
	}
	for pe, n := range got {
		if n != pes-1 {
			t.Errorf("pe%d received %d of %d", pe, n, pes-1)
		}
	}
}

func TestSingleProcessMachine(t *testing.T) {
	// Degenerate topology: one process, loopback messaging, no handshake.
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1},
		Config{Policy: SchedulerPollsPS, DisableServer: true}, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			partner := th.proc.CreateLocal("partner", func(me *Thread) {
				buf := make([]byte, 8)
				_, from, err := me.Recv(AnyThread, 1, buf)
				if err != nil {
					t.Error(err)
					return
				}
				me.Send(from, 2, []byte("back"))
			}, defaultSpawn())
			if err := th.Send(partner.ID(), 1, []byte("hi")); err != nil {
				t.Error(err)
			}
			buf := make([]byte, 8)
			if _, _, err := th.Recv(partner.ID(), 2, buf); err != nil {
				t.Error(err)
			}
			th.JoinLocal(partner)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-PE topology accepted")
		}
	}()
	NewSimRuntime(Topology{PEs: 0, ProcsPerPE: 1}, Config{}, machine.Paragon1994())
}

func TestMainForInvalidAddrRejected(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1}, Config{}, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 7, Proc: 0}: func(th *Thread) {},
	})
	if err == nil {
		t.Fatal("main for nonexistent process accepted")
	}
}

func TestTopologyAddrs(t *testing.T) {
	topo := Topology{PEs: 2, ProcsPerPE: 3}
	addrs := topo.Addrs()
	if len(addrs) != 6 {
		t.Fatalf("got %d addrs", len(addrs))
	}
	if addrs[0] != (comm.Addr{PE: 0, Proc: 0}) || addrs[5] != (comm.Addr{PE: 1, Proc: 2}) {
		t.Fatalf("addr order wrong: %v", addrs)
	}
}
