package core

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"chant/internal/comm"
	"chant/internal/comm/tcpnet"
	"chant/internal/machine"
	"chant/internal/trace"
)

// TestDistributedOverTCP runs a two-process Chant machine where each
// process has its own Runtime and tcpnet Node — the same isolation two OS
// processes would have — and exercises p2p messaging, RSR, and remote
// create/join across real TCP.
func TestDistributedOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rendezvous := l.Addr().String()
	l.Close()

	topo := Topology{PEs: 2, ProcsPerPE: 1}
	cfg := Config{Policy: SchedulerPollsPS, Delivery: DeliverCtx}

	newProc := func(pe int32, lead bool) (*tcpnet.Node, *comm.Endpoint, *Runtime, error) {
		node, err := tcpnet.Bootstrap(tcpnet.Options{
			Self:       comm.Addr{PE: pe, Proc: 0},
			Rendezvous: rendezvous,
			Lead:       lead,
			Procs:      2,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		ep := node.NewEndpoint(comm.Addr{PE: pe, Proc: 0},
			machine.NewRealHost(machine.Modern()), &trace.Counters{})
		rt := NewDistRuntime(topo, cfg, machine.Modern())
		rt.Register("squarer", func(th *Thread, arg []byte) {
			out := make([]byte, len(arg))
			for i, b := range arg {
				out[i] = b * b
			}
			th.Exit(out)
		})
		return node, ep, rt, nil
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	var echoed []byte

	wg.Add(2)
	go func() { // coordinator: pe0
		defer wg.Done()
		node, ep, rt, err := newProc(0, true)
		if err != nil {
			errs[0] = err
			return
		}
		defer node.Close()
		_, errs[0] = rt.RunOne(comm.Addr{PE: 0, Proc: 0}, ep, func(th *Thread) {
			// p2p across OS-process boundary.
			if err := th.Send(GlobalID{PE: 1, Proc: 0, Thread: 0}, 1, []byte("tcp hello")); err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 64)
			n, _, err := th.Recv(GlobalID{PE: 1, Proc: 0, Thread: 0}, 2, buf)
			if err != nil {
				t.Error(err)
				return
			}
			echoed = append([]byte(nil), buf[:n]...)

			// Remote create + join across the boundary.
			remote, err := th.Create(1, 0, "squarer", []byte{2, 3, 4}, CreateOpts{})
			if err != nil {
				t.Errorf("remote create over tcp: %v", err)
				return
			}
			v, err := th.Join(remote)
			if err != nil {
				t.Errorf("remote join over tcp: %v", err)
				return
			}
			if got, ok := v.([]byte); !ok || !bytes.Equal(got, []byte{4, 9, 16}) {
				t.Errorf("join value %v", v)
			}
		})
	}()
	go func() { // worker: pe1
		defer wg.Done()
		node, ep, rt, err := newProc(1, false)
		if err != nil {
			errs[1] = err
			return
		}
		defer node.Close()
		_, errs[1] = rt.RunOne(comm.Addr{PE: 1, Proc: 0}, ep, func(th *Thread) {
			buf := make([]byte, 64)
			n, from, err := th.Recv(AnyThread, 1, buf)
			if err != nil {
				t.Error(err)
				return
			}
			if err := th.Send(from, 2, append([]byte("echo:"), buf[:n]...)); err != nil {
				t.Error(err)
			}
		})
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("distributed machine did not terminate")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	if string(echoed) != "echo:tcp hello" {
		t.Fatalf("echoed = %q", echoed)
	}
}
