package core

import (
	"errors"
	"fmt"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/sim"
)

func TestRSRManyConcurrentCallers(t *testing.T) {
	// Several threads on pe0 issue overlapping Calls to pe1; every reply
	// must route back to exactly its caller (reply tags + Ctx routing).
	cfg := Config{Policy: SchedulerPollsPS}
	const callers = 8
	const callsEach = 10
	runSim2(t, cfg,
		func(th *Thread) {
			var ws []*Thread
			for c := 0; c < callers; c++ {
				c := c
				ws = append(ws, th.proc.CreateLocal(fmt.Sprintf("caller%d", c), func(me *Thread) {
					var reply [8]byte
					for i := 0; i < callsEach; i++ {
						req := []byte{byte(c), byte(i)}
						n, err := me.Call(comm.Addr{PE: 1, Proc: 0}, 1, req, reply[:])
						if err != nil {
							t.Errorf("caller %d call %d: %v", c, i, err)
							return
						}
						if n != 2 || reply[0] != byte(c)+1 || reply[1] != byte(i)+1 {
							t.Errorf("caller %d call %d: got %v", c, i, reply[:n])
							return
						}
					}
				}, defaultSpawn()))
			}
			for _, w := range ws {
				th.JoinLocal(w)
			}
		},
		func(th *Thread) {
			th.proc.RegisterHandler(1, func(ctx *RSRContext) ([]byte, error) {
				return []byte{ctx.Req[0] + 1, ctx.Req[1] + 1}, nil
			})
		},
	)
}

func TestRSRReplyTagWraparound(t *testing.T) {
	// Force the per-process request counter past the reply-tag window to
	// verify tags recycle safely for sequential calls.
	cfg := Config{Policy: ThreadPolls}
	runSim2(t, cfg,
		func(th *Thread) {
			th.proc.nextReq = tagReplySpan - 3 // a few calls below the wrap
			var reply [4]byte
			for i := 0; i < 6; i++ {
				if _, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 1, []byte{byte(i)}, reply[:]); err != nil {
					t.Errorf("call %d across tag wrap: %v", i, err)
				}
				if reply[0] != byte(i) {
					t.Errorf("call %d: echoed %d", i, reply[0])
				}
			}
		},
		func(th *Thread) {
			th.proc.RegisterHandler(1, func(ctx *RSRContext) ([]byte, error) {
				return ctx.Req, nil
			})
		},
	)
}

func TestRSRTooLarge(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, MaxRSR: 128}
	runSim2(t, cfg,
		func(th *Thread) {
			big := make([]byte, 256)
			if _, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 1, big, nil); !errors.Is(err, ErrRSRTooLarge) {
				t.Errorf("oversized call: %v", err)
			}
			if err := th.Notify(comm.Addr{PE: 1, Proc: 0}, 1, big); !errors.Is(err, ErrRSRTooLarge) {
				t.Errorf("oversized notify: %v", err)
			}
		},
		nil,
	)
}

func TestRSRBadTargets(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			if _, err := th.Call(comm.Addr{PE: 7, Proc: 0}, 1, nil, nil); !errors.Is(err, ErrBadTarget) {
				t.Errorf("call to bad target: %v", err)
			}
			if err := th.Notify(comm.Addr{PE: 7, Proc: 0}, 1, nil); !errors.Is(err, ErrBadTarget) {
				t.Errorf("notify to bad target: %v", err)
			}
		},
		nil,
	)
}

func TestRegisterHandlerValidation(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			defer func() {
				if recover() == nil {
					t.Error("negative handler id accepted")
				}
			}()
			th.proc.RegisterHandler(-5, func(ctx *RSRContext) ([]byte, error) { return nil, nil })
		},
		nil,
	)
}

func TestHandlerErrorWrapsRemote(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsWQ}
	runSim2(t, cfg,
		func(th *Thread) {
			_, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 1, nil, nil)
			if !errors.Is(err, ErrRemote) {
				t.Errorf("err = %v, want ErrRemote", err)
			}
			if err == nil || !contains(err.Error(), "deliberate failure") {
				t.Errorf("remote error text lost: %v", err)
			}
		},
		func(th *Thread) {
			th.proc.RegisterHandler(1, func(ctx *RSRContext) ([]byte, error) {
				return nil, errors.New("deliberate failure")
			})
		},
	)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// measureRSRLatency runs one Call against a PE crowded with compute
// threads and reports the virtual round-trip time under the given server
// priority configuration.
func measureRSRLatency(t *testing.T, serverPrio int) sim.Duration {
	t.Helper()
	cfg := Config{Policy: SchedulerPollsWQ, ServerPriority: serverPrio}
	var rtt sim.Duration
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			host := th.proc.ep.Host()
			host.Charge(50 * sim.Millisecond) // let pe1's crowd get going
			t0 := host.Now()
			if err := th.Ping(comm.Addr{PE: 1, Proc: 0}); err != nil {
				t.Error(err)
			}
			rtt = host.Now().Sub(t0)
			// Release pe1's crowd.
			th.Send(GlobalID{PE: 1, Proc: 0, Thread: 0}, 9, []byte("stop"))
		},
		{PE: 1, Proc: 0}: func(th *Thread) {
			stop := false
			var crowd []*Thread
			for i := 0; i < 6; i++ {
				crowd = append(crowd, th.proc.CreateLocal("crowd", func(me *Thread) {
					host := me.proc.ep.Host()
					for !stop {
						host.Compute(60_000) // ~2.3ms per quantum
						me.Yield()
					}
				}, defaultSpawn()))
			}
			buf := make([]byte, 8)
			th.Recv(AnyThread, 9, buf)
			stop = true
			for _, c := range crowd {
				th.JoinLocal(c)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rtt
}

func TestServerPriorityBoostCutsLatency(t *testing.T) {
	boosted := measureRSRLatency(t, 5)
	unboosted := measureRSRLatency(t, -1)
	// With the boost, the server runs at the scheduling point right after
	// its message is noticed; without it, the request waits behind the
	// whole compute crowd. The paper's rationale, quantified.
	if boosted >= unboosted {
		t.Fatalf("boost did not help: boosted %.2fms vs unboosted %.2fms",
			boosted.Millis(), unboosted.Millis())
	}
}

func TestDeferReplyMisuse(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			var reply [8]byte
			if _, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 1, nil, reply[:]); err != nil {
				t.Errorf("deferred double-reply call: %v", err)
			}
		},
		func(th *Thread) {
			th.proc.RegisterHandler(1, func(ctx *RSRContext) ([]byte, error) {
				ctx.DeferReply()
				ctx.Reply([]byte("once"), nil)
				defer func() {
					if recover() == nil {
						t.Error("duplicate Reply did not panic")
					}
				}()
				ctx.Reply([]byte("twice"), nil)
				return nil, nil
			})
		},
	)
}

func TestServerThreadIsDaemonAndWellKnown(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			srv := th.proc.server
			if srv == nil {
				t.Fatal("no server thread")
			}
			if srv.ID().Thread != serverLocalID {
				t.Errorf("server id %d, want %d", srv.ID().Thread, serverLocalID)
			}
			if !srv.tcb.Daemon() {
				t.Error("server thread is not a daemon")
			}
		},
		nil,
	)
}
