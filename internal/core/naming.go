// Package core implements Chant itself: the talking-threads runtime layered
// over the ult thread package and the comm message-passing library, exactly
// as Figure 4 of the paper draws it:
//
//	point-to-point message passing among global threads   (p2p.go, policy.go)
//	remote service requests via a server thread            (rsr.go)
//	global thread operations built on RSRs                 (global.go)
//	a pthreads-style interface                              (the chant package)
//
// The three design problems of Section 3.1 map onto this package directly:
// naming (GlobalID 3-tuples, this file), delivery (thread names travel in
// the message header — the Ctx field, a packed tag, or, for the ablation
// the paper rejects, the body), and polling (the pluggable policies of
// policy.go: Thread polls, Scheduler polls (PS), Scheduler polls (WQ), and
// the WQ/testany variant the paper hypothesizes about for MPI).
package core

import (
	"errors"
	"fmt"

	"chant/internal/comm"
)

// GlobalID names a thread anywhere in the machine: the paper's
// pthread_chanter_t 3-tuple of processing element, process, and local
// thread identifier.
type GlobalID struct {
	PE     int32
	Proc   int32
	Thread int32
}

// AnyField is the wildcard value for GlobalID fields and tags.
const AnyField int32 = -1

// AnyThread matches a message from any thread anywhere.
var AnyThread = GlobalID{PE: AnyField, Proc: AnyField, Thread: AnyField}

// Addr reports the process part of the global name.
func (g GlobalID) Addr() comm.Addr { return comm.Addr{PE: g.PE, Proc: g.Proc} }

// Equal reports whether two global identifiers name the same thread
// (pthread_chanter_equal).
func (g GlobalID) Equal(o GlobalID) bool { return g == o }

func (g GlobalID) String() string {
	return fmt.Sprintf("pe%d.p%d.t%d", g.PE, g.Proc, g.Thread)
}

// DeliveryMode selects where the destination thread identifier travels,
// following the Section 3.1 delivery discussion.
type DeliveryMode int

const (
	// DeliverCtx carries the thread id in a dedicated header context field,
	// the way MPI's communicator mechanism permits. Full source-thread
	// matching is available.
	DeliverCtx DeliveryMode = iota
	// DeliverTagPack overloads the user tag field, NX/p4 style: the
	// destination thread id occupies the high bits and the user tag the low
	// TagBits bits. Tag space is halved and source-thread selection and tag
	// wildcards are unavailable — the costs the paper accepts for such
	// systems.
	DeliverTagPack
	// DeliverBody places the thread id in the message body, forcing an
	// intermediate dispatcher thread to receive, decode, and forward every
	// message with extra copies on both sides. The paper rejects this
	// design; it is implemented for the delivery ablation.
	DeliverBody
)

func (m DeliveryMode) String() string {
	switch m {
	case DeliverCtx:
		return "ctx"
	case DeliverTagPack:
		return "tagpack"
	case DeliverBody:
		return "body"
	}
	return "invalid"
}

// tagBits is the number of low bits left for the user tag in
// DeliverTagPack mode ("reducing the number of tags allowed, typically to
// half the number of bits").
const tagBits = 16

// maxPackedThread is the largest thread id representable in a packed tag.
const maxPackedThread = (1 << 14) - 1

// Reserved tag values (all modes). User tags must stay below TagReserved.
const (
	// TagReserved is the first reserved tag value; user tags are
	// [0, TagReserved).
	TagReserved int32 = 0xC000
	// tagRSRRequest marks remote-service-request messages to the server
	// thread.
	tagRSRRequest int32 = 0xFFF0
	// tagDone and tagRelease implement the runtime's termination handshake.
	tagDone    int32 = 0xFFE0
	tagRelease int32 = 0xFFE1
	// tagSyncAck acknowledges globally-blocking sends (SendSync).
	tagSyncAck int32 = 0xFFE2
	// tagReplyBase..tagReplyBase+tagReplySpan is the RSR reply-tag window.
	tagReplyBase int32 = 0xC000
	tagReplySpan int32 = 0x1FF0
	// tagBodyWire marks body-mode wire messages awaiting dispatch. It is
	// negative so it can never collide with a user or reserved tag.
	tagBodyWire int32 = -2
)

// serverLocalID is the well-known local id of the server thread: the
// process main is thread 0 and the server is always created first, as
// thread 1.
const serverLocalID int32 = 1

// Errors reported by naming and delivery validation.
var (
	// ErrBadTag reports a user tag outside [0, TagReserved) or a tag
	// wildcard in a mode that cannot express one.
	ErrBadTag = errors.New("core: invalid user tag for this delivery mode")
	// ErrThreadRange reports a thread id too large to pack into a tag.
	ErrThreadRange = errors.New("core: thread id exceeds packed-tag range")
	// ErrBadTarget reports an operation aimed at a process that does not
	// exist in the topology.
	ErrBadTarget = errors.New("core: no such processing element or process")
)

// packTag combines a destination thread id and user tag into a single
// overloaded tag value.
func packTag(thread, tag int32) int32 {
	return thread<<tagBits | tag
}

// unpackTag splits an overloaded tag value.
func unpackTag(packed int32) (thread, tag int32) {
	return packed >> tagBits, packed & ((1 << tagBits) - 1)
}

// checkUserTag validates a user-supplied tag for sending. Wildcards are
// never valid on the send side.
func checkUserTag(tag int32) error {
	if tag < 0 || tag >= TagReserved {
		return fmt.Errorf("%w: tag %d not in [0, %d)", ErrBadTag, tag, TagReserved)
	}
	return nil
}
