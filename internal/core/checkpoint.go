package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"chant/internal/comm"
	"chant/internal/comm/simnet"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/sim"
	"chant/internal/trace"
	"chant/internal/ult"
)

// Coordinated checkpoints and crash recovery. The snapshot protocol is the
// classic marker-based coordinated snapshot run over the RSR layer: an
// initiator captures its own state and floods a marker RSR to every peer;
// a process receiving its first marker for a snapshot captures at that
// instant and floods markers itself; RSR requests arriving on a channel
// between the local capture and that channel's marker are the channel's
// in-flight content and are logged into the checkpoint. Markers travel as
// ordinary reliable Calls (retried, deduplicated), so lossy networks do not
// stall the snapshot.
//
// The captured state is what internal/recovery.Checkpoint holds: handler
// ids, shared-variable state, the epoch-aware RSR dedup cache, the pending
// unexpected queue, the trace counters, and the logged in-flight messages.
// Thread stacks are not captured: a restored process resumes as a server
// (its handlers plus the re-delivered messages), optionally running a
// restart main — see Runtime.OnRestart.

// Builtin handler ids of the recovery protocol (continuing the negative
// builtin id space after hChanBind).
const (
	hMarker int32 = -10
	hRejoin int32 = -11
)

// Errors of the checkpoint layer.
var (
	// ErrNoCheckpointStore reports a Checkpoint call on a machine configured
	// without a Config.CheckpointStore.
	ErrNoCheckpointStore = errors.New("core: no checkpoint store configured")
	// ErrSnapshotBusy reports a Checkpoint call while a coordinated snapshot
	// is already in progress at this process.
	ErrSnapshotBusy = errors.New("core: a coordinated snapshot is already in progress")
)

// snapState is one coordinated snapshot in progress at one process: the
// locally captured checkpoint awaiting its in-flight log, and the marker
// bookkeeping. Touched only from the process's own scheduler context.
type snapState struct {
	rec *recovery.Recorder
	cp  *recovery.Checkpoint
}

// Checkpoint initiates a coordinated snapshot of the whole machine from the
// calling thread and blocks until this process's part of it is complete
// (its own state captured, markers received on every channel) and archived
// in Config.CheckpointStore. Channels from peers declared dead are excused
// rather than awaited forever.
func (t *Thread) Checkpoint() error {
	t.mustCurrent("Checkpoint")
	p := t.proc
	if p.cfg.CheckpointStore == nil {
		return ErrNoCheckpointStore
	}
	if p.snap != nil {
		return ErrSnapshotBusy
	}
	p.snapCount++
	id := uint32(p.addr.PE)<<24 | uint32(p.addr.Proc)<<16 | p.snapCount&0xFFFF
	p.beginSnapshot(id)
	if p.snap == nil {
		return nil // single-process machine: done at capture
	}
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], id)
	for _, a := range p.peerAddrs() {
		// Best effort: a dead peer's channel is excused below.
		_, _ = t.Call(a, hMarker, req[:], nil)
	}
	host := p.ep.Host()
	miss := host.Model().MsgTestMiss
	for p.snap != nil && p.snap.rec.ID() == id {
		for _, a := range p.peerAddrs() {
			if p.snap.rec.Recording(a) && p.ep.PeerDead(a) && p.snap.rec.MarkerFrom(a) {
				p.finishSnapshot()
				break
			}
		}
		if p.snap == nil || p.snap.rec.ID() != id {
			break
		}
		// The outstanding markers arrive as requests to our server thread;
		// charge a test miss per spin so virtual time always advances.
		host.Charge(miss)
		t.Yield()
	}
	return nil
}

// RejoinedAt reports when this process's rejoin handshake finished (zero
// unless the process was restored from a checkpoint).
func (p *Process) RejoinedAt() sim.Time { return p.rejoinedAt }

// Epoch reports the process incarnation number (zero for a first run).
func (p *Process) Epoch() uint32 { return p.epoch }

// peerAddrs enumerates every other process of the topology in canonical
// (PE, Proc) order — the snapshot protocol's channel set.
func (p *Process) peerAddrs() []comm.Addr {
	addrs := p.rt.topo.Addrs()
	out := make([]comm.Addr, 0, len(addrs)-1)
	for _, a := range addrs {
		if a != p.addr {
			out = append(out, a)
		}
	}
	return out
}

// beginSnapshot captures this process's state and opens the recording
// windows. Runs synchronously on the capturing thread (the server thread
// for marker-triggered captures): the capture performs no yields, so the
// snapshot is a consistent instant of the cooperative schedule.
func (p *Process) beginSnapshot(id uint32) {
	var capBegin sim.Time
	tr := p.cfg.Tracer
	if tr != nil {
		capBegin = p.ep.Host().Now()
	}
	p.snap = &snapState{rec: recovery.NewRecorder(id, p.peerAddrs()), cp: p.captureCheckpoint()}
	if tr != nil {
		// The capture itself, not the whole recording window: the windows
		// stay open until every peer's marker arrives, which is RSR traffic
		// already covered by rsr-serve spans.
		tr.Span(trace.SpanCheckpoint, p.addr.PE, trace.EndpointTID,
			capBegin, p.ep.Host().Now(), uint64(id))
	}
	if p.snap.rec.Done() {
		p.finishSnapshot()
	}
}

// finishSnapshot attaches the in-flight log and archives the checkpoint.
func (p *Process) finishSnapshot() {
	snap := p.snap
	p.snap = nil
	snap.cp.InFlight = snap.rec.InFlight()
	if _, err := p.cfg.CheckpointStore.Put(snap.cp); err != nil {
		panic("core: checkpoint store: " + err.Error())
	}
	p.Counters().Checkpoints.Add(1)
}

// captureCheckpoint copies everything a restart needs out of the live
// process. Map walks feed slices that Normalize puts in canonical order, so
// identical states serialize identically.
func (p *Process) captureCheckpoint() *recovery.Checkpoint {
	host := p.ep.Host()
	cp := &recovery.Checkpoint{
		Addr:    p.addr,
		Epoch:   p.epoch,
		At:      host.Now(),
		NextReq: p.nextReq,
	}
	for id := range p.handlers {
		cp.Handlers = append(cp.Handlers, id)
	}
	for gid, rec := range p.rsrSeen {
		d := recovery.DedupState{
			SrcPE:     gid.PE,
			SrcProc:   gid.Proc,
			SrcThread: gid.Thread,
			Epoch:     rec.epoch,
			Seq:       rec.seq,
			ReplyTag:  rec.replyTag,
		}
		if rec.reply != nil {
			d.HasReply = true
			d.Reply = append([]byte(nil), rec.reply...)
		}
		cp.Dedup = append(cp.Dedup, d)
	}
	for name, e := range p.shared {
		s := recovery.SharedState{
			Name:    name,
			Value:   append([]byte(nil), e.value...),
			Version: e.version,
			Valid:   e.valid,
			Home:    e.home,
		}
		for a := range e.directory {
			s.Directory = append(s.Directory, a)
		}
		cp.Shared = append(cp.Shared, s)
	}
	p.ep.UnexpectedSnapshot(func(hdr comm.Header, data []byte, sentAt sim.Time) {
		cp.Unexpected = append(cp.Unexpected, recovery.CapturedMessage{
			Hdr:    hdr,
			Data:   append([]byte(nil), data...),
			SentAt: sentAt,
		})
	})
	cp.Counters = p.Counters().Snap(host.Now())
	cp.Normalize()
	return cp
}

// recordInFlight logs one arrived RSR request into the open snapshot when
// its source channel is still recording. Marker and rejoin traffic is
// protocol, not application state, and is never logged.
func (p *Process) recordInFlight(hdr comm.Header, payload []byte) {
	if p.snap == nil || len(payload) < rsrHeaderLen {
		return
	}
	if id := int32(binary.LittleEndian.Uint32(payload[0:])); id == hMarker || id == hRejoin {
		return
	}
	if p.snap.rec.Record(hdr, payload, p.ep.Host().Now()) {
		p.Counters().InFlightLogged.Add(1)
	}
}

// registerRecoveryHandlers installs the snapshot marker and rejoin
// handlers on every process.
func (p *Process) registerRecoveryHandlers() {
	p.handlers[hMarker] = func(ctx *RSRContext) ([]byte, error) {
		if len(ctx.Req) < 4 {
			return nil, errors.New("core: malformed snapshot marker")
		}
		if p.cfg.CheckpointStore == nil {
			return nil, ErrNoCheckpointStore
		}
		id := binary.LittleEndian.Uint32(ctx.Req)
		src := ctx.Src.Addr()
		if p.snap == nil || p.snap.rec.ID() != id {
			// First marker of this snapshot: capture here and now, then
			// flood markers from a proxy thread (the flood Calls block; the
			// server must keep serving — markers included). A stale snapshot
			// still open from an abandoned earlier id is superseded.
			p.beginSnapshot(id)
			req := append([]byte(nil), ctx.Req[:4]...)
			proxy := p.CreateLocal("ckpt-flood", func(ft *Thread) {
				for _, a := range p.peerAddrs() {
					_, _ = ft.Call(a, hMarker, req, nil) // dead peers excused by initiator
				}
			}, ult.SpawnOpts{})
			proxy.Detach()
		}
		if p.snap != nil && p.snap.rec.ID() == id && p.snap.rec.MarkerFrom(src) {
			p.finishSnapshot()
		}
		return nil, nil
	}

	p.handlers[hRejoin] = func(ctx *RSRContext) ([]byte, error) {
		src := ctx.Src.Addr()
		// Flush dedup records of the peer's earlier incarnations: the
		// epoch comparison would reject them anyway, but dropping them keeps
		// the cache from accumulating one entry per pre-crash client thread.
		stale := make([]GlobalID, 0)
		//chant:allow-nondet collection only; keys are sorted before any effect
		for gid, rec := range p.rsrSeen {
			if gid.Addr() == src && int32(ctx.epoch-rec.epoch) > 0 {
				stale = append(stale, gid)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i].Thread < stale[j].Thread })
		for _, gid := range stale {
			delete(p.rsrSeen, gid)
		}
		p.ep.MarkPeerAlive(src)
		p.Counters().RejoinsServed.Add(1)
		return nil, nil
	}
}

// --- Restore and restart ---

// nextEpoch hands out the next incarnation number for addr: one past both
// the checkpoint's epoch and any epoch this runtime already issued, so
// epochs stay strictly monotonic even when a restart reads a stale (or no)
// checkpoint.
func (rt *Runtime) nextEpoch(addr comm.Addr, cpEpoch uint32) uint32 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e := rt.epochs[addr]
	if cpEpoch > e {
		e = cpEpoch
	}
	e++
	rt.epochs[addr] = e
	return e
}

// Restore builds a process at cp.Addr from a checkpoint: handlers are
// re-registered (and validated against the checkpoint's handler list), the
// RSR dedup cache, sequence counter, shared-variable state, and trace
// counters are restored, the epoch is bumped past the checkpoint's, and the
// checkpoint's pending and in-flight messages are re-delivered into the new
// endpoint's mailbox — the server thread consumes them once the process
// runs, with the restored dedup cache suppressing anything already served
// (exactly-once across the restart).
func (rt *Runtime) Restore(cp *recovery.Checkpoint, host machine.Host, ctrs *trace.Counters, ep *comm.Endpoint) (*Process, error) {
	addr := cp.Addr
	if !rt.validAddr(addr) {
		return nil, fmt.Errorf("%w: checkpoint for %v", ErrBadTarget, addr)
	}
	var restoreBegin sim.Time
	if tr := rt.cfg.Tracer; tr != nil {
		restoreBegin = host.Now()
		defer func() {
			tr.Span(trace.SpanRestore, addr.PE, trace.EndpointTID,
				restoreBegin, host.Now(), uint64(cp.Epoch))
		}()
	}
	p := newProcess(rt, addr, host, ctrs, ep, rt.cfg)
	for _, id := range cp.Handlers {
		if p.handlers[id] == nil {
			return nil, fmt.Errorf("core: checkpoint for %v names handler %d, which is not registered in this runtime", addr, id)
		}
	}
	p.epoch = rt.nextEpoch(addr, cp.Epoch)
	p.nextReq = cp.NextReq
	for i := range cp.Dedup {
		d := &cp.Dedup[i]
		rec := &rsrDedup{epoch: d.Epoch, seq: d.Seq, replyTag: d.ReplyTag}
		if d.HasReply {
			rec.reply = append([]byte(nil), d.Reply...)
		}
		p.rsrSeen[GlobalID{PE: d.SrcPE, Proc: d.SrcProc, Thread: d.SrcThread}] = rec
	}
	if len(cp.Shared) > 0 {
		p.shared = make(map[string]*sharedEntry, len(cp.Shared))
		for i := range cp.Shared {
			s := &cp.Shared[i]
			e := &sharedEntry{
				value:   append([]byte(nil), s.Value...),
				version: s.Version,
				valid:   s.Valid,
				home:    s.Home,
			}
			if s.Home {
				e.directory = make(map[comm.Addr]struct{}, len(s.Directory))
				for _, a := range s.Directory {
					e.directory[a] = struct{}{}
				}
				e.writeLock = ult.NewMutex(p.sched)
			}
			p.shared[s.Name] = e
		}
	}
	ctrs.Preload(cp.Counters)
	ctrs.Restarts.Add(1)
	rt.mu.Lock()
	rt.procs[addr] = p
	rt.mu.Unlock()
	// Re-deliver the checkpoint's message log before any thread runs: first
	// the queue pending at capture, then the recorded in-flight messages, in
	// their original arrival orders.
	for _, m := range cp.Unexpected {
		ep.DeliverLocal(capturedToMessage(m))
	}
	for _, m := range cp.InFlight {
		ep.DeliverLocal(capturedToMessage(m))
	}
	ctrs.InFlightReplayed.Add(uint64(len(cp.InFlight)))
	return p, nil
}

// capturedToMessage rebuilds a deliverable message from its checkpoint
// record. The payload is copied: a restore may be replayed from the same
// checkpoint more than once.
func capturedToMessage(m recovery.CapturedMessage) *comm.Message {
	return &comm.Message{
		Hdr:    m.Hdr,
		Data:   append([]byte(nil), m.Data...),
		SentAt: m.SentAt,
	}
}

// OnRestart installs a main to run on addr after a crash recovery, once
// the process is restored and has rejoined its peers. Without one, a
// restored process just serves requests until the machine's termination
// handshake releases it. Must be called before Run.
func (rt *Runtime) OnRestart(addr comm.Addr, main MainFunc) {
	if !rt.validAddr(addr) {
		panic(fmt.Sprintf("core: OnRestart for %v: no such process", addr))
	}
	rt.restartMains[addr] = main
}

// rejoinPeers announces this process's new incarnation to every peer (the
// epoch travels in the RSR envelope): each peer flushes the old
// incarnation's dedup state and clears its dead mark, unblocking Calls that
// were waiting out the outage (Config.RejoinWait). Best effort: peers that
// are themselves dead are skipped by the Call failure path.
func (rt *Runtime) rejoinPeers(t *Thread) {
	p := t.proc
	for _, a := range p.peerAddrs() {
		_, _ = t.Call(a, hRejoin, nil, nil)
	}
	p.rejoinedAt = p.ep.Host().Now()
}

// restartMain is the main body of a restored process: the rejoin handshake,
// then the user's restart main, if any.
func (rt *Runtime) restartMain(addr comm.Addr) MainFunc {
	userMain := rt.restartMains[addr]
	return func(t *Thread) {
		rt.rejoinPeers(t)
		if userMain != nil {
			userMain(t)
		}
	}
}

// noteRunErr records a process main's error, excusing the ult.ErrKilled a
// scheduled crash inflicts on a PE that is going to recover (its restarted
// incarnation reports its own errors).
func (rt *Runtime) noteRunErr(perr []error, i int, addr comm.Addr, err error) {
	if err == nil {
		return
	}
	if rt.willRecover[addr] && errors.Is(err, ult.ErrKilled) {
		return
	}
	perr[i] = fmt.Errorf("%v: %w", addr, err)
}

// restoreSim builds the restarted process for addr: from the latest
// checkpoint when the store has one, cold (fresh state, bumped epoch)
// otherwise.
func (rt *Runtime) restoreSim(addr comm.Addr, host machine.Host, ctrs *trace.Counters, ep *comm.Endpoint) (*Process, error) {
	if rt.cfg.CheckpointStore != nil {
		cp, _, err := rt.cfg.CheckpointStore.Latest(addr)
		if err == nil {
			return rt.Restore(cp, host, ctrs, ep)
		}
		if !errors.Is(err, recovery.ErrNoCheckpoint) {
			return nil, err
		}
	}
	p := newProcess(rt, addr, host, ctrs, ep, rt.cfg)
	p.epoch = rt.nextEpoch(addr, 0)
	ctrs.Restarts.Add(1)
	rt.mu.Lock()
	rt.procs[addr] = p
	rt.mu.Unlock()
	return p, nil
}

// restartPE restarts every process of a crashed PE at the scheduled
// recovery instant. It runs as a kernel callback — under the parallel
// kernel that is controller time, between windows — so the network
// registry swap (simnet.Rebind) cannot race a window's sends: the new
// endpoints and shard processes are installed before any event runs.
// Messages that were bound to the dead incarnation's endpoint stay with it
// and are lost, exactly like traffic in a real wire when its host dies;
// the RSR retry layer re-covers them.
func (rt *Runtime) restartPE(kernel simKernel, net *simnet.Network, pe int32, perr []error) {
	for i, addr := range rt.topo.Addrs() {
		if addr.PE != pe {
			continue
		}
		i, addr := i, addr
		var host *machine.SimHost
		var ep *comm.Endpoint
		ctrs := &trace.Counters{}
		sp := kernel.Spawn(addr.String(), func(p *sim.Proc) {
			proc, err := rt.restoreSim(addr, host, ctrs, ep)
			if err != nil {
				perr[i] = fmt.Errorf("%v: restart: %w", addr, err)
				return
			}
			if err := proc.run(rt.wrapMain(addr, rt.restartMain(addr))); err != nil {
				rt.noteRunErr(perr, i, addr, err)
			}
		})
		// The proc body only runs once the next event window opens; binding
		// the host and endpoint here, at controller time, keeps the registry
		// deterministic for every send decided after the restart instant.
		host = machine.NewSimHost(sp, rt.model)
		ep = net.Rebind(addr, host, ctrs)
	}
}
