package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"

	"chant/internal/comm/memnet"
	"chant/internal/comm/simnet"
)

// Topology describes the machine: PEs processing elements with ProcsPerPE
// processes each (the paper's experiments use 2 PEs with one process each).
type Topology struct {
	PEs        int
	ProcsPerPE int
}

// Addrs enumerates every process address in the topology, in (pe, proc)
// order.
func (t Topology) Addrs() []comm.Addr {
	out := make([]comm.Addr, 0, t.PEs*t.ProcsPerPE)
	for pe := 0; pe < t.PEs; pe++ {
		for pr := 0; pr < t.ProcsPerPE; pr++ {
			out = append(out, comm.Addr{PE: int32(pe), Proc: int32(pr)})
		}
	}
	return out
}

// MainFunc is a process main body.
type MainFunc func(t *Thread)

// Result reports what a finished run observed.
type Result struct {
	// VirtualEnd is the final simulation clock (zero in real mode).
	VirtualEnd sim.Time
	// PerProc holds each process's counter snapshot at the end of the run.
	PerProc map[comm.Addr]trace.Snapshot
	// Total sums the per-process snapshots.
	Total trace.Snapshot
	// SimWindows and SimInlineWindows report the parallel kernel's
	// execution-window counts (zero on the sequential kernel and in real
	// mode): total barrier-synchronized windows, and the subset the
	// controller ran inline because the window was single-shard or
	// predicted tiny. Diagnostics only — they never affect results.
	SimWindows uint64
	// SimInlineWindows is the inline subset of SimWindows.
	SimInlineWindows uint64
}

// Runtime builds and runs one Chant machine. Create it with NewSimRuntime
// (deterministic virtual time over the simulated interconnect) or
// NewRealRuntime (wall-clock over the in-memory transport), Register any
// thread functions remote creates will name, then call Run.
type Runtime struct {
	topo  Topology
	cfg   Config
	model *machine.Model
	real  bool

	funcs    map[string]ThreadFunc
	handlers map[int32]Handler

	// restartMains holds per-address mains for restored processes
	// (OnRestart); willRecover marks addresses whose scheduled crash has a
	// recovery, so their kill is not reported as a run error. Both are fixed
	// before Run.
	restartMains map[comm.Addr]MainFunc
	willRecover  map[comm.Addr]bool

	mu    sync.Mutex
	procs map[comm.Addr]*Process
	// epochs is the high-water incarnation number issued per address
	// (see nextEpoch).
	epochs map[comm.Addr]uint32
}

// NewSimRuntime creates a runtime whose processes execute in virtual time
// on a simulated multicomputer with the given cost model.
func NewSimRuntime(topo Topology, cfg Config, model *machine.Model) *Runtime {
	return newRuntime(topo, cfg, model, false)
}

// NewRealRuntime creates a runtime whose processes execute on goroutines
// against the wall clock, joined by the in-memory transport. The
// configuration is forced to IdleBlock so idle schedulers do not spin.
func NewRealRuntime(topo Topology, cfg Config, model *machine.Model) *Runtime {
	cfg.IdleBlock = true
	return newRuntime(topo, cfg, model, true)
}

// NewDistRuntime creates a runtime for one process of a machine whose
// other processes live in other OS processes (connected by a transport
// such as tcpnet). Register thread functions as usual — every process of
// the machine must register the same names — then call RunOne with this
// process's endpoint.
func NewDistRuntime(topo Topology, cfg Config, model *machine.Model) *Runtime {
	cfg.IdleBlock = true
	return newRuntime(topo, cfg, model, true)
}

// RunOne runs the single local process of a distributed machine: addr is
// this process's identity, ep its transport attachment (its Host is used
// for execution). The runtime's termination handshake spans OS processes,
// so every process's server thread stays available until the coordinator
// (pe0.p0) has seen every main finish.
func (rt *Runtime) RunOne(addr comm.Addr, ep *comm.Endpoint, main MainFunc) (trace.Snapshot, error) {
	if !rt.validAddr(addr) {
		return trace.Snapshot{}, fmt.Errorf("%w: %v", ErrBadTarget, addr)
	}
	proc := newProcess(rt, addr, ep.Host(), ep.Counters(), ep, rt.cfg)
	rt.mu.Lock()
	rt.procs[addr] = proc
	rt.mu.Unlock()
	var err error
	machine.WithPprofLabels(int(addr.PE), rt.cfg.Policy.String(), "run", func() {
		err = proc.run(rt.wrapMain(addr, main))
	})
	return ep.Counters().Snap(ep.Host().Now()), err
}

func newRuntime(topo Topology, cfg Config, model *machine.Model, real bool) *Runtime {
	if topo.PEs <= 0 || topo.ProcsPerPE <= 0 {
		panic("core: topology must have at least one PE and one process")
	}
	return &Runtime{
		topo:         topo,
		cfg:          cfg.withDefaults(),
		model:        model,
		real:         real,
		funcs:        make(map[string]ThreadFunc),
		handlers:     make(map[int32]Handler),
		restartMains: make(map[comm.Addr]MainFunc),
		willRecover:  make(map[comm.Addr]bool),
		procs:        make(map[comm.Addr]*Process),
		epochs:       make(map[comm.Addr]uint32),
	}
}

// Register binds name to fn for Create calls. All registrations must
// precede Run (names must agree across all processes, as with any RPC
// registry).
func (rt *Runtime) Register(name string, fn ThreadFunc) {
	if _, dup := rt.funcs[name]; dup {
		panic(fmt.Sprintf("core: duplicate thread function %q", name))
	}
	rt.funcs[name] = fn
}

func (rt *Runtime) lookupFunc(name string) ThreadFunc { return rt.funcs[name] }

// RegisterHandler binds a user RSR handler id (>= 0) to fn on every process
// of the machine, before any main runs — so no Call can race a handler
// registration happening inside a remote main. All registrations must
// precede Run.
func (rt *Runtime) RegisterHandler(id int32, fn Handler) {
	if id < 0 {
		panic("core: user RSR handler ids must be >= 0")
	}
	if _, dup := rt.handlers[id]; dup {
		panic(fmt.Sprintf("core: duplicate RSR handler %d", id))
	}
	rt.handlers[id] = fn
}

// Topology reports the machine shape.
func (rt *Runtime) Topology() Topology { return rt.topo }

// Config reports the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Process reports the process running at addr (valid during and after Run).
func (rt *Runtime) Process(addr comm.Addr) *Process {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.procs[addr]
}

func (rt *Runtime) validAddr(a comm.Addr) bool {
	return a.PE >= 0 && int(a.PE) < rt.topo.PEs &&
		a.Proc >= 0 && int(a.Proc) < rt.topo.ProcsPerPE
}

// sortAddrs orders process addresses by (PE, Proc), the canonical
// enumeration order used everywhere map-keyed process sets are walked.
func sortAddrs(addrs []comm.Addr) {
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].PE != addrs[j].PE {
			return addrs[i].PE < addrs[j].PE
		}
		return addrs[i].Proc < addrs[j].Proc
	})
}

// coordinator is the process that collects done-notifications and releases
// the machine at shutdown.
func (rt *Runtime) coordinator() comm.Addr { return comm.Addr{PE: 0, Proc: 0} }

// Run executes the given mains (indexed by process address; processes
// without a main still serve requests until released) and returns the
// aggregated result. Run may be called once per Runtime.
func (rt *Runtime) Run(mains map[comm.Addr]MainFunc) (*Result, error) {
	// Validate in address order so the reported address is deterministic
	// when several mains are misaddressed (map order varies run to run).
	given := make([]comm.Addr, 0, len(mains))
	for a := range mains {
		given = append(given, a)
	}
	sortAddrs(given)
	for _, a := range given {
		if !rt.validAddr(a) {
			return nil, fmt.Errorf("%w: main for %v", ErrBadTarget, a)
		}
	}
	if rt.real {
		return rt.runReal(mains)
	}
	return rt.runSim(mains)
}

// wrapMain appends the termination handshake to a process main: every
// non-coordinator sends "done" to the coordinator's main thread after its
// own main returns and then blocks for "release"; the coordinator collects
// all dones and broadcasts releases. This keeps every process's server
// thread available until the whole machine has finished its work.
func (rt *Runtime) wrapMain(addr comm.Addr, userMain MainFunc) MainFunc {
	return func(t *Thread) {
		if userMain != nil {
			userMain(t)
		}
		n := rt.topo.PEs * rt.topo.ProcsPerPE
		if n == 1 {
			return
		}
		if rt.cfg.TermGrace > 0 {
			rt.gracefulHandshake(addr, t)
			return
		}
		p := t.proc
		coord := rt.coordinator()
		if addr == coord {
			var buf [1]byte
			for i := 0; i < n-1; i++ {
				p.recvInternal(t, AnyThread, tagDone, buf[:])
			}
			for _, a := range rt.topo.Addrs() {
				if a == coord {
					continue
				}
				if err := p.send(t.gid.Thread, GlobalID{PE: a.PE, Proc: a.Proc, Thread: 0}, tagRelease, nil); err != nil {
					panic("core: release send: " + err.Error())
				}
			}
			return
		}
		if err := p.send(t.gid.Thread, GlobalID{PE: coord.PE, Proc: coord.Proc, Thread: 0}, tagDone, nil); err != nil {
			panic("core: done send: " + err.Error())
		}
		var buf [1]byte
		p.recvInternal(t, GlobalID{PE: coord.PE, Proc: coord.Proc, Thread: 0}, tagRelease, buf[:])
	}
}

const (
	// termMaxAttempts bounds how many times a non-coordinator resends its
	// done-notification before giving up on an unreachable coordinator.
	termMaxAttempts = 8
	// termMaxIdleRounds is how many consecutive empty grace windows the
	// coordinator tolerates before excusing processes it has not heard from.
	termMaxIdleRounds = 4
)

// gracefulHandshake is the fault-tolerant termination handshake, enabled by
// Config.TermGrace: done and release messages are resent when a grace
// window passes without progress, and both sides excuse peers declared dead
// instead of blocking forever on a message that will never come.
func (rt *Runtime) gracefulHandshake(addr comm.Addr, t *Thread) {
	p := t.proc
	coord := rt.coordinator()
	grace := rt.cfg.TermGrace
	host := p.ep.Host()
	var buf [1]byte

	if addr != coord {
		coordID := GlobalID{PE: coord.PE, Proc: coord.Proc, Thread: 0}
		for attempt := 0; attempt < termMaxAttempts; attempt++ {
			// Post the release receive before (re)sending done, so the
			// release is never unexpected.
			spec, err := p.recvSpec(t.gid.Thread, coordID, tagRelease)
			if err != nil {
				panic("core: internal recv spec: " + err.Error())
			}
			h := p.ep.Irecv(spec, buf[:])
			if err := p.send(t.gid.Thread, coordID, tagDone, nil); err != nil {
				p.ep.CancelRecv(h)
				p.ep.ReleaseHandle(h)
				return
			}
			werr := p.waitDeadline(h, host.Now().Add(grace))
			// waitDeadline leaves the handle terminal on every path
			// (completed, or withdrawn by TimeoutRecv), and it never left
			// this function: recycle it.
			p.ep.ReleaseHandle(h)
			if werr == nil || errors.Is(werr, comm.ErrPeerDead) {
				return // released, or the coordinator died: shut down
			}
			// Grace window expired: the done or the release was lost; resend.
		}
		return // coordinator unreachable after all attempts; shut down anyway
	}

	// Coordinator: collect one done from every other process — deduplicating
	// resends, excusing the dead — then broadcast releases.
	others := make([]comm.Addr, 0, rt.topo.PEs*rt.topo.ProcsPerPE-1)
	for _, a := range rt.topo.Addrs() {
		if a != coord {
			others = append(others, a)
		}
	}
	seen := make(map[comm.Addr]bool, len(others))
	heard := 0
	idle := 0
	for heard < len(others) && idle < termMaxIdleRounds {
		spec, err := p.recvSpec(t.gid.Thread, AnyThread, tagDone)
		if err != nil {
			panic("core: internal recv spec: " + err.Error())
		}
		h := p.ep.Irecv(spec, buf[:])
		werr := p.waitDeadline(h, host.Now().Add(grace))
		if werr != nil {
			p.ep.ReleaseHandle(h)
			// Empty window: excuse peers meanwhile declared dead, count the
			// round toward giving up on silent survivors.
			for _, a := range others {
				if !seen[a] && p.ep.PeerDead(a) {
					seen[a] = true
					heard++
				}
			}
			idle++
			continue
		}
		idle = 0
		hdr := h.Header()
		p.ep.ReleaseHandle(h)
		from := comm.Addr{PE: hdr.SrcPE, Proc: hdr.SrcProc}
		if !seen[from] {
			seen[from] = true
			heard++
		}
	}
	for _, a := range others {
		_ = p.send(t.gid.Thread, GlobalID{PE: a.PE, Proc: a.Proc, Thread: 0}, tagRelease, nil)
	}
	// Linger briefly answering duplicate dones, so a process whose release
	// was dropped (and which therefore resent its done) is not stranded.
	for round := 0; round < 2; round++ {
		spec, err := p.recvSpec(t.gid.Thread, AnyThread, tagDone)
		if err != nil {
			return
		}
		h := p.ep.Irecv(spec, buf[:])
		if p.waitDeadline(h, host.Now().Add(grace)) != nil {
			p.ep.ReleaseHandle(h)
			return
		}
		hdr := h.Header()
		p.ep.ReleaseHandle(h)
		_ = p.send(t.gid.Thread, GlobalID{PE: hdr.SrcPE, Proc: hdr.SrcProc, Thread: 0}, tagRelease, nil)
	}
}

// simKernel is the simulator surface runSim drives. Both the sequential
// reference kernel and the parallel conservative kernel implement it; the
// parallel one reproduces the sequential event stream bit for bit, so the
// choice is purely a wall-clock matter.
type simKernel interface {
	Spawn(name string, fn func(*sim.Proc)) *sim.Proc
	At(t sim.Time, fn func())
	Run(deadline sim.Time) error
	Now() sim.Time
}

// runSim executes the machine on the discrete-event simulator. Processes
// first register their endpoints (so no send can target a missing
// endpoint), rendezvous at virtual time zero, then run their mains. With
// Config.SimShards ≥ 2 the simulation runs on the parallel conservative
// kernel, one simulated PE process per shard slot, with Model.NetBase as
// the lookahead window.
func (rt *Runtime) runSim(mains map[comm.Addr]MainFunc) (*Result, error) {
	var kernel simKernel
	var net *simnet.Network
	if n := rt.cfg.SimShards; n > 1 {
		if rt.model.NetBase <= 0 {
			return nil, fmt.Errorf("core: SimShards=%d needs Model.NetBase > 0: the network base latency is the parallel kernel's conservative lookahead", n)
		}
		kernel = sim.NewParKernel(n, rt.model.NetBase)
		// Every simulated host exposes its own shard process; the network
		// needs no fallback kernel.
		net = simnet.New(nil, rt.model)
	} else {
		k := sim.NewKernel()
		kernel = k
		net = simnet.New(k, rt.model)
	}
	net.MeshWidth = rt.cfg.MeshWidth
	addrs := rt.topo.Addrs()

	// One error slot per process: mains may finish concurrently on shard
	// workers, so each writes only its own index.
	perr := make([]error, len(addrs))
	var ready []*sim.Proc
	for i, addr := range addrs {
		i, addr := i, addr
		sp := kernel.Spawn(addr.String(), func(p *sim.Proc) {
			host := machine.NewSimHost(p, rt.model)
			ctrs := &trace.Counters{}
			ep := net.NewEndpoint(addr, host, ctrs)
			proc := newProcess(rt, addr, host, ctrs, ep, rt.cfg)
			rt.mu.Lock()
			rt.procs[addr] = proc
			rt.mu.Unlock()
			p.WaitSignal() // rendezvous: all endpoints registered
			if err := proc.run(rt.wrapMain(addr, mains[addr])); err != nil {
				rt.noteRunErr(perr, i, addr, err)
			}
		})
		ready = append(ready, sp)
	}
	kernel.At(0, func() {
		for _, sp := range ready {
			sp.Signal()
		}
	})
	net.Faults = rt.cfg.Faults
	if rt.cfg.Faults != nil {
		plan := rt.cfg.Faults
		for _, c := range plan.Crashes() {
			c := c
			kernel.At(c.At, func() {
				rt.crashPE(c.PE, c.At)
				plan.WitnessCrash(c.PE, c.At, c.RestartAfter)
			})
			if c.RestartAfter <= 0 {
				continue
			}
			for _, a := range addrs {
				if a.PE == c.PE {
					rt.willRecover[a] = true
				}
			}
			recoverAt := c.At.Add(c.RestartAfter)
			kernel.At(recoverAt, func() {
				plan.WitnessRecover(c.PE, recoverAt)
				rt.restartPE(kernel, net, c.PE, perr)
			})
		}
	}
	if err := kernel.Run(0); err != nil {
		return nil, err
	}
	res := rt.collect(kernel.Now())
	if pk, ok := kernel.(*sim.ParKernel); ok {
		res.SimWindows = pk.Windows
		res.SimInlineWindows = pk.InlineWindows
	}
	return res, errors.Join(perr...)
}

// crashPE simulates the failure of a whole processing element at the
// scheduled instant: every scheduler on the PE is killed (its run returns
// ult.ErrKilled), and every surviving process is told the dead addresses so
// receives pinned to them fail over to comm.ErrPeerDead instead of hanging.
// It runs as a kernel callback, outside any process, walking the sorted
// address list for a deterministic kill and notification order. The failure
// instant is stamped explicitly (MarkPeerDeadAt): on the parallel kernel
// the fan-out executes at the controller while survivor shards' clocks sit
// anywhere inside the conservative window, and the stamped time feeds the
// waiting-thread integral, which must not depend on the kernel.
func (rt *Runtime) crashPE(pe int32, at sim.Time) {
	addrs := rt.topo.Addrs()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, a := range addrs {
		if a.PE != pe {
			continue
		}
		if p := rt.procs[a]; p != nil {
			p.sched.Kill()
		}
	}
	for _, a := range addrs {
		if a.PE == pe {
			continue
		}
		p := rt.procs[a]
		if p == nil {
			continue
		}
		for _, dead := range addrs {
			if dead.PE == pe {
				p.ep.MarkPeerDeadAt(dead, at)
			}
		}
	}
}

// runReal executes the machine on goroutines over the in-memory transport.
func (rt *Runtime) runReal(mains map[comm.Addr]MainFunc) (*Result, error) {
	net := memnet.New()
	addrs := rt.topo.Addrs()
	// Construct every process before any goroutine starts, so endpoints
	// all exist before the first send.
	for _, addr := range addrs {
		host := machine.NewRealHost(rt.model)
		if rt.cfg.SpinBudget != 0 {
			host.SetSpinBudget(rt.cfg.SpinBudget)
		}
		ctrs := &trace.Counters{}
		ep := net.NewEndpoint(addr, host, ctrs)
		rt.procs[addr] = newProcess(rt, addr, host, ctrs, ep, rt.cfg)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(addrs))
	for i, addr := range addrs {
		i, addr := i, addr
		wg.Add(1)
		// Real mode is preemptive by definition: one OS-scheduled
		// goroutine per process, like one kernel thread per PE.
		//chant:allow-nondet real-mode processes run preemptively
		go func() {
			defer wg.Done()
			proc := rt.procs[addr]
			machine.WithPprofLabels(int(addr.PE), rt.cfg.Policy.String(), "run", func() {
				if err := proc.run(rt.wrapMain(addr, mains[addr])); err != nil {
					errs[i] = fmt.Errorf("%v: %w", addr, err)
				}
			})
		}()
	}
	wg.Wait()
	res := rt.collect(0)
	return res, errors.Join(errs...)
}

// collect snapshots every process's counters.
func (rt *Runtime) collect(end sim.Time) *Result {
	res := &Result{
		VirtualEnd: end,
		PerProc:    make(map[comm.Addr]trace.Snapshot),
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	keys := make([]comm.Addr, 0, len(rt.procs))
	for a := range rt.procs {
		keys = append(keys, a)
	}
	sortAddrs(keys)
	for _, a := range keys {
		snap := rt.procs[a].Counters().Snap(end)
		res.PerProc[a] = snap
		res.Total.Add(snap)
	}
	return res
}
