package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func TestPackTagRoundtrip(t *testing.T) {
	f := func(thread, tag int32) bool {
		thread &= maxPackedThread
		tag &= (1 << tagBits) - 1
		gotThread, gotTag := unpackTag(packTag(thread, tag))
		return gotThread == thread && gotTag == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackTagDistinct(t *testing.T) {
	// Distinct (thread, tag) pairs must map to distinct packed values —
	// the whole point of overloading without ambiguity.
	seen := map[int32][2]int32{}
	for thread := int32(0); thread < 40; thread++ {
		for tag := int32(0); tag < 40; tag++ {
			p := packTag(thread, tag)
			if prev, dup := seen[p]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both pack to %d",
					thread, tag, prev[0], prev[1], p)
			}
			seen[p] = [2]int32{thread, tag}
		}
	}
}

func TestInternalTagsFitPackedRange(t *testing.T) {
	// Every reserved tag must survive packing with any representable
	// thread id, or internal traffic would corrupt in tagpack mode.
	for _, tag := range []int32{tagRSRRequest, tagDone, tagRelease, tagReplyBase, tagReplyBase + tagReplySpan - 1} {
		if tag < 0 || tag >= 1<<tagBits {
			t.Errorf("reserved tag %#x does not fit in %d tag bits", tag, tagBits)
		}
		gotThread, gotTag := unpackTag(packTag(maxPackedThread, tag))
		if gotThread != maxPackedThread || gotTag != tag {
			t.Errorf("reserved tag %#x corrupted by packing", tag)
		}
	}
	if tagReplyBase+tagReplySpan > tagRSRRequest {
		t.Error("reply-tag window overlaps the RSR request tag")
	}
	if tagReplyBase+tagReplySpan > tagDone {
		t.Error("reply-tag window overlaps the handshake tags")
	}
}

func TestCheckUserTag(t *testing.T) {
	for _, tag := range []int32{0, 1, TagReserved - 1} {
		if err := checkUserTag(tag); err != nil {
			t.Errorf("valid tag %d rejected: %v", tag, err)
		}
	}
	for _, tag := range []int32{-1, -100, TagReserved, tagRSRRequest, 1 << 30} {
		if err := checkUserTag(tag); !errors.Is(err, ErrBadTag) {
			t.Errorf("invalid tag %d accepted (err=%v)", tag, err)
		}
	}
}

func TestGlobalIDEqualAndString(t *testing.T) {
	a := GlobalID{PE: 1, Proc: 2, Thread: 3}
	if !a.Equal(GlobalID{PE: 1, Proc: 2, Thread: 3}) {
		t.Error("equal ids not equal")
	}
	if a.Equal(GlobalID{PE: 1, Proc: 2, Thread: 4}) {
		t.Error("different ids equal")
	}
	if a.String() != "pe1.p2.t3" {
		t.Errorf("String = %q", a.String())
	}
	if a.Addr().PE != 1 || a.Addr().Proc != 2 {
		t.Errorf("Addr = %v", a.Addr())
	}
}

func TestCreateCodecRoundtrip(t *testing.T) {
	f := func(name string, arg []byte, detached bool, prio int16) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		opts := CreateOpts{Detached: detached, Priority: int(prio)}
		gotName, gotArg, gotOpts, err := decodeCreate(encodeCreate(name, arg, opts))
		if err != nil {
			return false
		}
		if gotName != name || gotOpts != opts {
			return false
		}
		if len(gotArg) != len(arg) {
			return false
		}
		for i := range arg {
			if gotArg[i] != arg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateCodecRejectsMalformed(t *testing.T) {
	if _, _, _, err := decodeCreate(nil); err == nil {
		t.Error("nil request accepted")
	}
	if _, _, _, err := decodeCreate([]byte{0, 0, 0, 0, 0}); err == nil {
		t.Error("short request accepted")
	}
	// Name length pointing past the buffer.
	bad := encodeCreate("abcdef", nil, CreateOpts{})
	bad[5] = 0xFF
	bad[6] = 0xFF
	if _, _, _, err := decodeCreate(bad); err == nil {
		t.Error("oversized name length accepted")
	}
}

func TestJoinValueCodec(t *testing.T) {
	cases := []any{nil, []byte{1, 2, 3}, []byte{}, "hello", "", int64(-42), 7}
	for _, v := range cases {
		got, err := decodeJoinValue(encodeJoinValue(v))
		if err != nil {
			t.Errorf("%v: %v", v, err)
			continue
		}
		switch want := v.(type) {
		case nil:
			if got != nil {
				t.Errorf("nil decoded as %v", got)
			}
		case []byte:
			g, ok := got.([]byte)
			if !ok || len(g) != len(want) {
				t.Errorf("%v decoded as %v", v, got)
			}
		case string:
			if got != want {
				t.Errorf("%q decoded as %v", want, got)
			}
		case int:
			if got != int64(want) {
				t.Errorf("%d decoded as %v", want, got)
			}
		case int64:
			if got != want {
				t.Errorf("%d decoded as %v", want, got)
			}
		}
	}
	// Unmarshalable types cross as their string rendering.
	if got, err := decodeJoinValue(encodeJoinValue(3.14)); err != nil || got != "3.14" {
		t.Errorf("float crossed as (%v, %v)", got, err)
	}
	if _, err := decodeJoinValue(nil); err == nil {
		t.Error("empty join value accepted")
	}
	if _, err := decodeJoinValue([]byte{99}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReplyCodec(t *testing.T) {
	if data, err := decodeReply(encodeReply(7, []byte("ok"), nil)[rsrReplyPrefix:]); err != nil || string(data) != "ok" {
		t.Errorf("success reply: (%q, %v)", data, err)
	}
	if _, err := decodeReply(encodeReply(7, nil, errors.New("boom"))[rsrReplyPrefix:]); !errors.Is(err, ErrRemote) {
		t.Errorf("error reply: %v", err)
	}
	if _, err := decodeReply(nil); !errors.Is(err, ErrRemote) {
		t.Errorf("empty reply: %v", err)
	}
	if wire := encodeReply(0xDEADBEEF, []byte("x"), nil); binary.LittleEndian.Uint32(wire) != 0xDEADBEEF {
		t.Errorf("reply does not echo the request sequence: % x", wire[:rsrReplyPrefix])
	}
}
