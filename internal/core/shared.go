package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chant/internal/comm"
	"chant/internal/ult"
)

// Shared data abstractions (paper Sections 1 and 3.2): the intro names
// "shared data abstractions" as a system Chant is to support, and Section
// 3.2 lists "processing system requests necessary to keep global state
// up-to-date (coherence management)" among the remote-service-request
// uses. SharedVar implements exactly that: an owner-based distributed
// variable with read caching and write invalidation, whose protocol
// messages are RSRs served by the server thread.
//
// Protocol: each variable has a home process holding the authoritative
// value and a directory of caching processes. A read misses its local
// cache at most once per invalidation: it fetches from home (registering
// in the directory) and caches. A write is sent to home, which serializes
// writers per variable, invalidates every cached copy (awaiting
// acknowledgements from each cacher's server thread), installs the new
// value, and only then acknowledges the writer — so after Write returns,
// no process can read the old value.

// Builtin handler ids for the coherence protocol.
const (
	hSharedFetch int32 = -6
	hSharedStore int32 = -7
	hSharedInval int32 = -8
)

// ErrNoShared reports access to a shared variable whose home has not
// created it.
var ErrNoShared = errors.New("core: no such shared variable at its home")

// sharedEntry is one process's state for one variable.
type sharedEntry struct {
	value   []byte
	version int64
	valid   bool // cache validity (true always at home)

	// Home-only state.
	home      bool
	directory map[comm.Addr]struct{}
	writeLock *ult.Mutex // serializes writers at home
}

// SharedVar is a handle to a distributed shared variable. Every process
// that uses the variable creates its own handle with NewShared; the home
// process must create it (installing the initial value) before any other
// process accesses it.
type SharedVar struct {
	p    *Process
	name string
	home comm.Addr
}

// NewShared creates this process's handle for the named variable homed at
// home. If this process is the home, init becomes the authoritative value.
func (p *Process) NewShared(name string, home comm.Addr, init []byte) (*SharedVar, error) {
	if !p.rt.validAddr(home) {
		return nil, fmt.Errorf("%w: shared home %v", ErrBadTarget, home)
	}
	if p.shared == nil {
		p.shared = make(map[string]*sharedEntry)
	}
	if _, dup := p.shared[name]; dup {
		return nil, fmt.Errorf("core: shared variable %q already created here", name)
	}
	e := &sharedEntry{}
	if home == p.addr {
		e.home = true
		e.valid = true
		e.value = append([]byte(nil), init...)
		e.version = 1
		e.directory = make(map[comm.Addr]struct{})
		e.writeLock = ult.NewMutex(p.sched)
	}
	p.shared[name] = e
	return &SharedVar{p: p, name: name, home: home}, nil
}

// Name reports the variable's global name.
func (v *SharedVar) Name() string { return v.name }

// Home reports the owning process.
func (v *SharedVar) Home() comm.Addr { return v.home }

// Version reports the locally known version (0 if never read).
func (v *SharedVar) Version() int64 { return v.p.shared[v.name].version }

// CachedLocally reports whether a read would be satisfied without
// communication.
func (v *SharedVar) CachedLocally() bool { return v.p.shared[v.name].valid }

// Read copies the variable's current value into buf, fetching (and
// caching) from home on a cold or invalidated cache. It returns the value
// length.
func (v *SharedVar) Read(t *Thread, buf []byte) (int, error) {
	t.mustCurrent("SharedVar.Read")
	e := v.p.shared[v.name]
	if !e.valid {
		// Miss: fetch from home via RSR (remote fetch, Section 3.2).
		reply := make([]byte, 8+len(buf))
		n, err := t.Call(v.home, hSharedFetch, []byte(v.name), reply)
		if err != nil {
			return 0, err
		}
		if n < 8 {
			return 0, fmt.Errorf("core: malformed shared fetch reply (%d bytes)", n)
		}
		e.version = int64(binary.LittleEndian.Uint64(reply))
		e.value = append(e.value[:0], reply[8:n]...)
		e.valid = true
	}
	n := copy(buf, e.value)
	if n < len(e.value) {
		return n, comm.ErrTruncated
	}
	return n, nil
}

// Write installs data as the variable's new value, invalidating every
// cached copy before returning.
func (v *SharedVar) Write(t *Thread, data []byte) error {
	t.mustCurrent("SharedVar.Write")
	if v.home == v.p.addr {
		return v.p.sharedStoreLocal(t, v.name, data, v.p.addr)
	}
	req := make([]byte, 2+len(v.name)+len(data))
	binary.LittleEndian.PutUint16(req, uint16(len(v.name)))
	copy(req[2:], v.name)
	copy(req[2+len(v.name):], data)
	if _, err := t.Call(v.home, hSharedStore, req, nil); err != nil {
		return err
	}
	// Our own copy is now stale unless the store handler refreshed us; be
	// conservative and drop it (the next read re-fetches).
	e := v.p.shared[v.name]
	e.valid = false
	return nil
}

// sharedStoreLocal performs the home side of a write on behalf of writer.
// It must run on a thread that may block (a home-process thread or a
// store-proxy thread), never on the server thread itself.
func (p *Process) sharedStoreLocal(t *Thread, name string, data []byte, writer comm.Addr) error {
	e := p.shared[name]
	if e == nil || !e.home {
		return fmt.Errorf("%w: %q", ErrNoShared, name)
	}
	e.writeLock.Lock()
	defer e.writeLock.Unlock()
	// Invalidate every cached copy, awaiting acknowledgement so that no
	// stale read survives this write's completion. The directory is walked
	// in address order: invalidation RSRs land in the event stream, and map
	// order would make simulated runs diverge (detlint flags the raw loop).
	cachers := make([]comm.Addr, 0, len(e.directory))
	for addr := range e.directory {
		cachers = append(cachers, addr)
	}
	sortAddrs(cachers)
	for _, addr := range cachers {
		if addr == writer {
			continue // the writer's copy is handled by the writer itself
		}
		if _, err := t.Call(addr, hSharedInval, []byte(name), nil); err != nil {
			return fmt.Errorf("core: invalidate %q at %v: %w", name, addr, err)
		}
	}
	e.directory = make(map[comm.Addr]struct{})
	e.value = append(e.value[:0], data...)
	e.version++
	return nil
}

// registerSharedHandlers installs the coherence protocol's RSR handlers.
func (p *Process) registerSharedHandlers() {
	p.handlers[hSharedFetch] = func(ctx *RSRContext) ([]byte, error) {
		name := string(ctx.Req)
		e := p.shared[name]
		if e == nil || !e.home {
			return nil, fmt.Errorf("%w: %q", ErrNoShared, name)
		}
		e.directory[ctx.Src.Addr()] = struct{}{}
		reply := make([]byte, 8+len(e.value))
		binary.LittleEndian.PutUint64(reply, uint64(e.version))
		copy(reply[8:], e.value)
		return reply, nil
	}

	p.handlers[hSharedStore] = func(ctx *RSRContext) ([]byte, error) {
		if len(ctx.Req) < 2 {
			return nil, errors.New("core: malformed shared store")
		}
		nameLen := int(binary.LittleEndian.Uint16(ctx.Req))
		if 2+nameLen > len(ctx.Req) {
			return nil, errors.New("core: malformed shared store name")
		}
		name := string(ctx.Req[2 : 2+nameLen])
		data := append([]byte(nil), ctx.Req[2+nameLen:]...)
		writer := ctx.Src.Addr()
		if e := p.shared[name]; e == nil || !e.home {
			return nil, fmt.Errorf("%w: %q", ErrNoShared, name)
		}
		// Invalidation blocks on remote acknowledgements, so hand the
		// store to a proxy thread and defer the reply (the same pattern
		// as remote join).
		ctx.DeferReply()
		proxy := p.CreateLocal("store-proxy", func(proxyT *Thread) {
			ctx.Reply(nil, p.sharedStoreLocal(proxyT, name, data, writer))
		}, ult.SpawnOpts{})
		proxy.Detach()
		return nil, nil
	}

	p.handlers[hSharedInval] = func(ctx *RSRContext) ([]byte, error) {
		if e := p.shared[string(ctx.Req)]; e != nil && !e.home {
			e.valid = false
		}
		return nil, nil
	}
}
