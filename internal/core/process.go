package core

import (
	"errors"
	"fmt"
	"sort"

	"chant/internal/comm"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/sim"
	"chant/internal/trace"
	"chant/internal/ult"
)

// Config selects how a Chant machine behaves.
type Config struct {
	// Policy is the message-polling scheduling algorithm (Section 4.2).
	Policy PolicyKind
	// Delivery is where destination thread names travel (Section 3.1).
	Delivery DeliveryMode
	// DisableServer omits the RSR server thread. The paper's point-to-point
	// experiments (Section 4) run on the bottom layer only, with no server
	// thread polling alongside the workload; the experiment harness sets
	// this to match.
	DisableServer bool
	// ServerPriority is the priority the server thread assumes when a
	// request arrives (default 5; computation threads run at 0). A
	// negative value disables the boost, leaving the server to compete
	// FIFO with computation threads — measurably worse request latency
	// (see the boost test), which is why the paper boosts.
	ServerPriority int
	// MaxRSR bounds the size of a remote service request message
	// (default 64 KiB).
	MaxRSR int
	// MaxBodyMsg bounds message size in DeliverBody mode, where the
	// dispatcher must receive into a maximal buffer (default 64 KiB).
	MaxBodyMsg int
	// IdleBlock parks idle schedulers on host interrupts instead of
	// busy-polling; real-mode runtimes enable it.
	IdleBlock bool
	// SpinBudget tunes the real host's spin-then-park idle policy: an idle
	// processor re-checks for a pending interrupt that many times (yielding
	// between checks) before parking on the OS. Zero keeps
	// machine.DefaultSpinBudget; negative disables spinning (park
	// immediately, the pre-spin behaviour). Only real-mode runtimes observe
	// it — simulated hosts have no spin phase at all.
	SpinBudget int
	// MeshWidth, when positive, arranges simulated PEs in a 2D mesh of
	// that width (the Paragon's topology): messages pay Model.NetPerHop
	// for each hop beyond the first. Zero models a flat network. Only the
	// simulated transport observes it.
	MeshWidth int
	// EventLogSize, when positive, attaches a trace.Log retaining that
	// many scheduler events to every process, retrievable afterwards via
	// Process.EventLog. The determinism self-test compares these streams
	// across runs; debugging sessions dump them.
	EventLogSize int
	// SimShards, when at least 2, runs the simulation on the parallel
	// conservative kernel with that many shards: simulated PEs are
	// partitioned across shard event heaps executed concurrently on host
	// cores in bounded-lag windows of Model.NetBase (the conservative
	// lookahead — no cross-PE effect can land sooner than the network base
	// latency). Results are bit-identical to the sequential kernel. Zero or
	// one keeps the sequential reference kernel. Requires Model.NetBase > 0;
	// only simulated runtimes observe it.
	SimShards int

	// --- Robustness (fault tolerance) ---

	// RSRTimeout, when positive, bounds each attempt of a remote service
	// Call: a reply not arriving within the timeout triggers an idempotent
	// resend (up to RSRRetries), after which Call returns ErrRSRTimeout.
	// Zero keeps the paper's reliable-network behaviour: Call blocks until
	// the reply arrives.
	RSRTimeout sim.Duration
	// RSRRetries is how many resends follow a timed-out Call attempt.
	RSRRetries int
	// RSRBackoff, when positive, is the extra compute charged before each
	// resend, doubling per attempt (bounded exponential backoff).
	RSRBackoff sim.Duration
	// TermGrace, when positive, makes the distributed termination handshake
	// fault-tolerant: done/release messages are resent on timeout, and the
	// coordinator excuses processes declared dead rather than waiting for
	// them forever. Zero keeps the reliable handshake.
	TermGrace sim.Duration
	// MaxUnexpected, when positive, caps each endpoint's unexpected-message
	// queue; arrivals beyond the cap are dropped and counted
	// (trace.Counters.UnexpectedDropped). Zero leaves it unbounded.
	MaxUnexpected int
	// Faults, when non-nil, is the fault-injection plan the simulated
	// transport applies to every wire and the runtime consults for
	// scheduled PE crashes. Only simulated runtimes observe it.
	Faults *faults.Plan

	// --- Recovery (coordinated checkpoints and restart) ---

	// CheckpointStore, when non-nil, enables coordinated checkpointing: it
	// is where captured snapshots are archived and where a restarting
	// process reads its latest checkpoint from. Simulated topologies share
	// one recovery.NewMemStore() across all processes.
	CheckpointStore recovery.Store
	// --- Observability ---

	// Tracer, when non-nil, receives spans from every layer of each
	// process: scheduler occupancy and blocked intervals, endpoint sends
	// and drains, RSR calls and serves, recovery brackets. Simulated
	// runtimes should attach trace.NewTracer (the deterministic ordered
	// store); real-mode runtimes trace.NewFlightTracer (lock-free per-PE
	// rings). Nil — the default — disables span collection: every
	// instrumentation site reduces to one pointer compare.
	Tracer *trace.Tracer
	// Metrics, when non-nil, gets every process's live Counters registered
	// under its address label for /metrics scrapes. A restarted process
	// re-registers under the same label, replacing its previous life (the
	// restored counters already carry the pre-crash history via Preload).
	Metrics *trace.Registry

	// RejoinWait, when positive, makes a timed-out Call wait out a dead
	// peer for up to this long before surfacing comm.ErrPeerDead: each
	// round charges one RSRTimeout of compute and resends the request with
	// its original sequence, so a peer that crashes and rejoins within the
	// window still serves the call exactly once (its restored epoch-aware
	// dedup cache suppresses anything it already served). Zero fails Calls
	// to dead peers immediately. Only meaningful with RSRTimeout set.
	RejoinWait sim.Duration
}

func (c Config) withDefaults() Config {
	if c.ServerPriority == 0 {
		c.ServerPriority = 5
	}
	if c.MaxRSR == 0 {
		c.MaxRSR = 64 << 10
	}
	if c.MaxBodyMsg == 0 {
		c.MaxBodyMsg = 64 << 10
	}
	return c
}

// Process is one Chant process: a scheduler full of threads attached to a
// communication endpoint, able to talk to threads of any other process.
type Process struct {
	rt     *Runtime
	addr   comm.Addr
	sched  *ult.Sched
	ep     *comm.Endpoint
	cfg    Config
	policy policy

	threads map[int32]*Thread
	server  *Thread

	handlers map[int32]Handler
	nextReq  int32
	rsrSeen  map[GlobalID]*rsrDedup
	shared   map[string]*sharedEntry
	channels map[int32]*chanState
	nextChan int32

	// epoch is the process incarnation number carried in every RSR envelope:
	// 0 for a first run, bumped on every restart from a checkpoint. Peers use
	// it to order request streams across this process's restarts.
	epoch uint32
	// snap is the coordinated snapshot currently in progress, nil otherwise;
	// snapCount numbers the snapshots this process initiated.
	snap      *snapState
	snapCount uint32
	// rejoinedAt, on a restored process, is when the rejoin handshake
	// finished (for recovery-latency measurements).
	rejoinedAt sim.Time
}

// Thread is a chanter: a global thread handle combining the local TCB with
// its global name. Methods on Thread are the Chant interface for the
// calling thread.
type Thread struct {
	proc *Process
	tcb  *ult.TCB
	gid  GlobalID
}

// newProcess wires a process together. The runtime calls it once per
// (pe, proc) before running mains.
func newProcess(rt *Runtime, addr comm.Addr, host machine.Host, ctrs *trace.Counters, ep *comm.Endpoint, cfg Config) *Process {
	var evlog *trace.Log
	if cfg.EventLogSize > 0 {
		evlog = trace.NewLog(cfg.EventLogSize)
	}
	sched := ult.NewSched(host, ctrs, ult.Options{
		Name:      addr.String(),
		EventLog:  evlog,
		IdleBlock: cfg.IdleBlock,
		Tracer:    cfg.Tracer,
		PE:        addr.PE,
	})
	p := &Process{
		rt:       rt,
		addr:     addr,
		sched:    sched,
		ep:       ep,
		cfg:      cfg,
		threads:  make(map[int32]*Thread),
		handlers: make(map[int32]Handler),
		rsrSeen:  make(map[GlobalID]*rsrDedup),
	}
	if cfg.MaxUnexpected > 0 {
		ep.SetUnexpectedCap(cfg.MaxUnexpected)
	}
	if cfg.Tracer != nil {
		ep.SetTracer(cfg.Tracer)
	}
	// Register (or, after a restart, re-register) the live counters for
	// metrics scrapes. Registry.Register is nil-receiver safe.
	cfg.Metrics.Register(addr.String(), ctrs)
	p.policy = newPolicy(cfg.Policy, sched, ep)
	p.registerBuiltinHandlers()
	p.registerSharedHandlers()
	p.registerChannelHandlers()
	p.registerRecoveryHandlers()
	// Runtime-level handlers are installed before any main runs, so no Call
	// can race a handler registration happening inside a remote main.
	ids := make([]int32, 0, len(rt.handlers))
	for id := range rt.handlers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.RegisterHandler(id, rt.handlers[id])
	}
	return p
}

// Addr reports the process address.
func (p *Process) Addr() comm.Addr { return p.addr }

// Sched exposes the process scheduler (for tests and the public API).
func (p *Process) Sched() *ult.Sched { return p.sched }

// Endpoint exposes the process communication endpoint.
func (p *Process) Endpoint() *comm.Endpoint { return p.ep }

// Counters reports the process's event counters.
func (p *Process) Counters() *trace.Counters { return p.sched.Counters() }

// EventLog reports the process's scheduler event log (nil unless
// Config.EventLogSize was positive).
func (p *Process) EventLog() *trace.Log { return p.sched.EventLog() }

// run executes main as thread 0, with the server thread (unless disabled)
// and, in body-delivery mode, the dispatcher thread created first.
func (p *Process) run(main func(t *Thread)) error {
	return p.sched.Run(func() {
		t := p.adopt(p.sched.Current())
		if !p.cfg.DisableServer {
			p.startServer()
		}
		if p.cfg.Delivery == DeliverBody {
			p.startDispatcher()
		}
		main(t)
	})
}

// adopt wraps a TCB as a global thread and registers it.
func (p *Process) adopt(tcb *ult.TCB) *Thread {
	t := &Thread{
		proc: p,
		tcb:  tcb,
		gid:  GlobalID{PE: p.addr.PE, Proc: p.addr.Proc, Thread: tcb.ID()},
	}
	p.threads[tcb.ID()] = t
	return t
}

// CreateLocal creates a thread in this process running fn and returns its
// handle. The new thread is registered under its global name. Following
// pthread semantics, the registry entry persists after exit until the
// thread is joined, so joins (including remote joins) never race with
// completion; detached threads are unregistered as soon as they finish.
func (p *Process) CreateLocal(name string, fn func(t *Thread), opts ult.SpawnOpts) *Thread {
	var t *Thread
	tcb := p.sched.SpawnWith(name, func() {
		defer func() {
			if t.tcb.Detached() {
				delete(p.threads, t.gid.Thread)
			}
		}()
		fn(t)
	}, opts)
	t = p.adopt(tcb)
	return t
}

// unregister removes a finished thread from the registry (after a
// successful join, or a detach of an already-finished thread).
func (p *Process) unregister(t *Thread) { delete(p.threads, t.gid.Thread) }

// Lookup finds a live local thread by local id.
func (p *Process) Lookup(local int32) (*Thread, bool) {
	t, ok := p.threads[local]
	return t, ok
}

// --- Thread identity operations (Appendix A) ---

// ID reports the thread's global identifier (pthread_chanter_self).
func (t *Thread) ID() GlobalID { return t.gid }

// PE reports the processing element (pthread_chanter_pe).
func (t *Thread) PE() int32 { return t.gid.PE }

// Proc reports the process id (pthread_chanter_process).
func (t *Thread) Proc() int32 { return t.gid.Proc }

// TCB reports the local thread underneath the global name
// (pthread_chanter_pthread): all purely-local operations — thread-local
// data, priorities, synchronization — are performed on it.
func (t *Thread) TCB() *ult.TCB { return t.tcb }

// Process reports the owning Chant process.
func (t *Thread) Process() *Process { return t.proc }

// Yield gives up the processor (pthread_chanter_yield).
func (t *Thread) Yield() { t.proc.sched.Yield() }

// Exit terminates the calling thread with value (pthread_chanter_exit).
func (t *Thread) Exit(value any) { t.proc.sched.Exit(value) }

// Detach marks the thread so its storage is reclaimed on exit
// (pthread_chanter_detach).
func (t *Thread) Detach() { t.tcb.Detach() }

// JoinLocal joins a thread in the same process (the local fast path of
// pthread_chanter_join). A completed join reclaims the target's registry
// entry.
func (t *Thread) JoinLocal(target *Thread) (any, error) {
	v, err := t.proc.sched.Join(target.tcb)
	if err == nil || errors.Is(err, ult.ErrCanceled) {
		t.proc.unregister(target)
	}
	return v, err
}

// CancelLocal cancels a thread in the same process (the local fast path of
// pthread_chanter_cancel).
func (t *Thread) CancelLocal(target *Thread) { t.proc.sched.Cancel(target.tcb) }

// mustCurrent asserts that t is the thread running on its scheduler; all
// communication calls are made by the calling thread itself.
func (t *Thread) mustCurrent(op string) {
	if t.proc.sched.Current() != t.tcb {
		panic(fmt.Sprintf("core: %s called on thread %v from a different thread", op, t.gid))
	}
}
