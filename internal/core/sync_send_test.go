package core

import (
	"fmt"
	"testing"

	"chant/internal/sim"
)

// Tests for the globally-blocking send (the paper's stronger "degree of
// blocking"): SendSync must not return before the receiver has observed
// the matching receive.

func TestSendSyncBlocksUntilReceived(t *testing.T) {
	for _, pol := range allPolicies {
		for _, mode := range allDeliveries {
			pol, mode := pol, mode
			t.Run(fmt.Sprintf("%v/%v", pol, mode), func(t *testing.T) {
				cfg := Config{Policy: pol, Delivery: mode, DisableServer: true}
				var sendDone, recvDone sim.Time
				runSim2(t, cfg,
					func(th *Thread) {
						host := th.proc.ep.Host()
						if err := th.SendSync(gid(1, 0, 0), 5, []byte("handshake")); err != nil {
							t.Errorf("sendsync: %v", err)
							return
						}
						sendDone = host.Now()
					},
					func(th *Thread) {
						host := th.proc.ep.Host()
						// Delay before receiving: a locally-blocking send
						// would have returned long ago; SendSync must still
						// be waiting.
						host.Charge(20 * sim.Millisecond)
						buf := make([]byte, 16)
						n, _, err := th.Recv(gid(0, 0, 0), 5, buf)
						if err != nil || string(buf[:n]) != "handshake" {
							t.Errorf("recv: %q err=%v", buf[:n], err)
						}
						recvDone = host.Now()
					},
				)
				if sendDone <= sim.Time(20*sim.Millisecond) {
					t.Errorf("SendSync returned at %v, before the receiver's 20ms delay elapsed", sendDone)
				}
				if sendDone < recvDone {
					// The ack travels one wire latency after the receive is
					// observed, so the sender finishes after the receiver.
					t.Errorf("SendSync finished at %v, before the receive at %v", sendDone, recvDone)
				}
			})
		}
	}
}

func TestSendSyncEarlyArrivalAcksAtPost(t *testing.T) {
	// Message arrives before the receive is posted; the ack must fire when
	// the receive is posted (Irecv immediate path).
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			if err := th.SendSync(gid(1, 0, 0), 5, []byte("early")); err != nil {
				t.Errorf("sendsync: %v", err)
			}
		},
		func(th *Thread) {
			host := th.proc.ep.Host()
			host.Charge(10 * sim.Millisecond) // let the message land first
			buf := make([]byte, 8)
			h, err := th.Irecv(gid(0, 0, 0), 5, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !h.Done() {
				t.Error("message not buffered before post")
			}
		},
	)
}

func TestSendSyncAckExactlyOnce(t *testing.T) {
	// Repeated Msgtest observations of one completed receive must not send
	// duplicate acks (a second ack would match a later SendSync's pre-posted
	// ack receive and break its blocking semantics).
	cfg := Config{Policy: ThreadPolls, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			for i := 0; i < 2; i++ {
				if err := th.SendSync(gid(1, 0, 0), 5, []byte{byte(i)}); err != nil {
					t.Errorf("sendsync %d: %v", i, err)
				}
			}
			// Both rounds completing proves ack pairing stayed one-to-one.
		},
		func(th *Thread) {
			for i := 0; i < 2; i++ {
				buf := make([]byte, 4)
				h, err := th.Irecv(gid(0, 0, 0), 5, buf)
				if err != nil {
					t.Fatal(err)
				}
				th.Msgwait(h)
				// Re-test the completed handle several times.
				for k := 0; k < 3; k++ {
					if !th.Msgtest(h) {
						t.Error("completed handle tested false")
					}
				}
			}
		},
	)
}

func TestSendSyncValidation(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			if err := th.SendSync(gid(9, 0, 0), 1, nil); err == nil {
				t.Error("bad target accepted")
			}
			if err := th.SendSync(gid(1, 0, 0), TagReserved, nil); err == nil {
				t.Error("reserved tag accepted")
			}
		},
		nil,
	)
}

func TestSendSyncManyPairs(t *testing.T) {
	// Several thread pairs doing synchronized exchanges concurrently: acks
	// must pair correctly per (sender, receiver) couple.
	cfg := Config{Policy: SchedulerPollsWQ, DisableServer: true}
	const workers = 4
	mk := func(pe int32) MainFunc {
		return func(th *Thread) {
			var ws []*Thread
			for w := 0; w < workers; w++ {
				ws = append(ws, th.proc.CreateLocal(fmt.Sprintf("w%d", w), func(me *Thread) {
					peer := gid(1-pe, 0, me.ID().Thread)
					buf := make([]byte, 8)
					for i := 0; i < 5; i++ {
						if pe == 0 {
							if err := me.SendSync(peer, 2, []byte("s")); err != nil {
								t.Errorf("sendsync: %v", err)
								return
							}
							me.Recv(peer, 3, buf)
						} else {
							me.Recv(peer, 2, buf)
							if err := me.SendSync(peer, 3, []byte("r")); err != nil {
								t.Errorf("sendsync back: %v", err)
								return
							}
						}
					}
				}, defaultSpawn()))
			}
			for _, w := range ws {
				th.JoinLocal(w)
			}
		}
	}
	runSim2(t, cfg, mk(0), mk(1))
}
