package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/ult"
)

// allPolicies and allDeliveries drive the cross-product tests: every paper
// polling algorithm against every delivery design.
var allPolicies = []PolicyKind{ThreadPolls, SchedulerPollsPS, SchedulerPollsWQ, SchedulerPollsWQAny}
var allDeliveries = []DeliveryMode{DeliverCtx, DeliverTagPack, DeliverBody}

// runSim2 runs mains on a 2-PE simulated machine and fails the test on
// runtime error.
func runSim2(t *testing.T, cfg Config, main0, main1 MainFunc) *Result {
	t.Helper()
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	res, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: main0,
		{PE: 1, Proc: 0}: main1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func gid(pe, proc, thread int32) GlobalID { return GlobalID{PE: pe, Proc: proc, Thread: thread} }

func TestP2PAcrossPoliciesAndModes(t *testing.T) {
	for _, pol := range allPolicies {
		for _, mode := range allDeliveries {
			pol, mode := pol, mode
			t.Run(fmt.Sprintf("%v/%v", pol, mode), func(t *testing.T) {
				cfg := Config{Policy: pol, Delivery: mode, DisableServer: true}
				got := ""
				runSim2(t, cfg,
					func(th *Thread) {
						if err := th.Send(gid(1, 0, 0), 7, []byte("hello chant")); err != nil {
							t.Error(err)
						}
						buf := make([]byte, 64)
						n, from, err := th.Recv(gid(1, 0, 0), 8, buf)
						if err != nil {
							t.Error(err)
						}
						if from != gid(1, 0, 0) {
							t.Errorf("reply from %v", from)
						}
						got = string(buf[:n])
					},
					func(th *Thread) {
						buf := make([]byte, 64)
						n, from, err := th.Recv(gid(0, 0, 0), 7, buf)
						if err != nil || string(buf[:n]) != "hello chant" {
							t.Errorf("recv: n=%d err=%v", n, err)
						}
						if from != gid(0, 0, 0) {
							t.Errorf("message from %v", from)
						}
						if err := th.Send(gid(0, 0, 0), 8, []byte("echo:"+string(buf[:n]))); err != nil {
							t.Error(err)
						}
					},
				)
				if got != "echo:hello chant" {
					t.Fatalf("round trip got %q", got)
				}
			})
		}
	}
}

func TestManyThreadsExchange(t *testing.T) {
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{Policy: pol, Delivery: DeliverCtx, DisableServer: true}
			const workers = 6
			received := make([]int, workers)
			mkMain := func(pe int32, record bool) MainFunc {
				return func(th *Thread) {
					var locals []*Thread
					for w := 0; w < workers; w++ {
						w := w
						lt := th.proc.CreateLocal(fmt.Sprintf("w%d", w), func(me *Thread) {
							peer := gid(1-pe, 0, me.ID().Thread)
							payload := []byte{byte(w)}
							for iter := 0; iter < 5; iter++ {
								if err := me.Send(peer, 3, payload); err != nil {
									t.Error(err)
									return
								}
								buf := make([]byte, 4)
								n, _, err := me.Recv(peer, 3, buf)
								if err != nil || n != 1 {
									t.Errorf("recv: n=%d err=%v", n, err)
									return
								}
								if record {
									received[w]++
								}
							}
						}, defaultSpawn())
						locals = append(locals, lt)
					}
					for _, lt := range locals {
						if _, err := th.JoinLocal(lt); err != nil {
							t.Error(err)
						}
					}
				}
			}
			runSim2(t, cfg, mkMain(0, true), mkMain(1, false))
			for w, n := range received {
				if n != 5 {
					t.Fatalf("worker %d exchanged %d of 5", w, n)
				}
			}
		})
	}
}

func defaultSpawn() ult.SpawnOpts { return ult.SpawnOpts{} }

func TestSourceThreadSelectivityCtxMode(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, Delivery: DeliverCtx, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			// Two sender threads on pe0; receiver selects by source thread.
			a := th.proc.CreateLocal("a", func(me *Thread) {
				me.Send(gid(1, 0, 0), 5, []byte("from-a"))
			}, defaultSpawn())
			b := th.proc.CreateLocal("b", func(me *Thread) {
				me.Send(gid(1, 0, 0), 5, []byte("from-b"))
			}, defaultSpawn())
			th.JoinLocal(a)
			th.JoinLocal(b)
		},
		func(th *Thread) {
			// Request b's message first even though a's likely arrives first.
			buf := make([]byte, 16)
			// Thread ids: main=0, server absent, so a=1, b=2 on pe0.
			n, from, err := th.Recv(gid(0, 0, 2), 5, buf)
			if err != nil || string(buf[:n]) != "from-b" {
				t.Errorf("selective recv got %q (from %v, err %v)", buf[:n], from, err)
			}
			n, _, err = th.Recv(gid(0, 0, 1), 5, buf)
			if err != nil || string(buf[:n]) != "from-a" {
				t.Errorf("second recv got %q (err %v)", buf[:n], err)
			}
		},
	)
}

func TestTagWildcardRejectedInTagPack(t *testing.T) {
	cfg := Config{Policy: ThreadPolls, Delivery: DeliverTagPack, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			if _, err := th.Irecv(AnyThread, AnyField, make([]byte, 8)); !errors.Is(err, ErrBadTag) {
				t.Errorf("tag wildcard in tagpack mode: err = %v, want ErrBadTag", err)
			}
		},
		nil,
	)
}

func TestBadUserTagRejected(t *testing.T) {
	cfg := Config{Policy: ThreadPolls, Delivery: DeliverCtx, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			if err := th.Send(gid(1, 0, 0), TagReserved, []byte("x")); !errors.Is(err, ErrBadTag) {
				t.Errorf("reserved tag: err = %v", err)
			}
			if err := th.Send(gid(1, 0, 0), -3, []byte("x")); !errors.Is(err, ErrBadTag) {
				t.Errorf("negative tag: err = %v", err)
			}
			if err := th.Send(gid(9, 9, 0), 1, []byte("x")); !errors.Is(err, ErrBadTarget) {
				t.Errorf("bad target: err = %v", err)
			}
		},
		nil,
	)
}

func TestIrecvMsgtestMsgwait(t *testing.T) {
	cfg := Config{Policy: ThreadPolls, Delivery: DeliverCtx, DisableServer: true}
	runSim2(t, cfg,
		func(th *Thread) {
			buf := make([]byte, 16)
			h, err := th.Irecv(gid(1, 0, 0), 2, buf)
			if err != nil {
				t.Fatal(err)
			}
			if th.Msgtest(h) {
				t.Error("msgtest true before any send")
			}
			th.Send(gid(1, 0, 0), 1, []byte("go"))
			th.Msgwait(h)
			if !h.Done() || string(buf[:h.Len()]) != "pong" {
				t.Errorf("after msgwait: %q", buf[:h.Len()])
			}
			// msgtest on completed handle is true.
			if !th.Msgtest(h) {
				t.Error("msgtest false after completion")
			}
		},
		func(th *Thread) {
			buf := make([]byte, 16)
			th.Recv(gid(0, 0, 0), 1, buf)
			th.Send(gid(0, 0, 0), 2, []byte("pong"))
		},
	)
}

func TestRSRPingAndUserHandler(t *testing.T) {
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{Policy: pol, Delivery: DeliverCtx}
			runSim2(t, cfg,
				func(th *Thread) {
					if err := th.Ping(comm.Addr{PE: 1, Proc: 0}); err != nil {
						t.Errorf("ping: %v", err)
					}
					var reply [32]byte
					n, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 1, []byte("abc"), reply[:])
					if err != nil {
						t.Errorf("call: %v", err)
					} else if string(reply[:n]) != "ABC!" {
						t.Errorf("call reply %q", reply[:n])
					}
					if _, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 99, nil, reply[:]); !errors.Is(err, ErrRemote) {
						t.Errorf("unknown handler err = %v", err)
					}
				},
				func(th *Thread) {
					th.proc.RegisterHandler(1, func(ctx *RSRContext) ([]byte, error) {
						return append(bytes.ToUpper(ctx.Req), '!'), nil
					})
					// Serve until released by the termination handshake.
				},
			)
		})
	}
}

func TestRSRNotify(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, Delivery: DeliverCtx}
	got := 0
	runSim2(t, cfg,
		func(th *Thread) {
			for i := 0; i < 3; i++ {
				if err := th.Notify(comm.Addr{PE: 1, Proc: 0}, 2, []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			}
			// Give the notifications time to be served before release.
			var reply [8]byte
			if _, err := th.Call(comm.Addr{PE: 1, Proc: 0}, 3, nil, reply[:]); err != nil {
				t.Error(err)
			}
			if reply[0] != 3 {
				t.Errorf("served %d notifications, want 3", reply[0])
			}
		},
		func(th *Thread) {
			th.proc.RegisterHandler(2, func(ctx *RSRContext) ([]byte, error) {
				got++
				return nil, nil
			})
			th.proc.RegisterHandler(3, func(ctx *RSRContext) ([]byte, error) {
				return []byte{byte(got)}, nil
			})
		},
	)
}

func TestRemoteCreateJoin(t *testing.T) {
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1},
				Config{Policy: pol, Delivery: DeliverCtx}, machine.Paragon1994())
			rt.Register("double", func(th *Thread, arg []byte) {
				out := make([]byte, len(arg))
				for i, b := range arg {
					out[i] = b * 2
				}
				th.Exit(out)
			})
			_, err := rt.Run(map[comm.Addr]MainFunc{
				{PE: 0, Proc: 0}: func(th *Thread) {
					remote, err := th.Create(1, 0, "double", []byte{1, 2, 3}, CreateOpts{})
					if err != nil {
						t.Errorf("create: %v", err)
						return
					}
					if remote.PE != 1 || remote.Proc != 0 {
						t.Errorf("remote id %v", remote)
					}
					v, err := th.Join(remote)
					if err != nil {
						t.Errorf("join: %v", err)
						return
					}
					if got, ok := v.([]byte); !ok || !bytes.Equal(got, []byte{2, 4, 6}) {
						t.Errorf("join value %v", v)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLocalCreateViaGlobalAPI(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1},
		Config{Policy: ThreadPolls, Delivery: DeliverCtx}, machine.Paragon1994())
	rt.Register("answer", func(th *Thread, arg []byte) { th.Exit(int64(42)) })
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			local, err := th.Create(0, 0, "answer", nil, CreateOpts{})
			if err != nil {
				t.Errorf("local create: %v", err)
				return
			}
			v, err := th.Join(local)
			if err != nil || v != int64(42) {
				t.Errorf("join = (%v, %v)", v, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateUnknownFunc(t *testing.T) {
	cfg := Config{Policy: ThreadPolls, Delivery: DeliverCtx}
	runSim2(t, cfg,
		func(th *Thread) {
			if _, err := th.Create(1, 0, "nope", nil, CreateOpts{}); err == nil {
				t.Error("create of unregistered function succeeded")
			}
		},
		nil,
	)
}

func TestRemoteCancel(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1},
		Config{Policy: SchedulerPollsWQ, Delivery: DeliverCtx}, machine.Paragon1994())
	rt.Register("waiter", func(th *Thread, arg []byte) {
		// Blocks forever on a message that never comes; must die by cancel.
		buf := make([]byte, 8)
		th.Recv(AnyThread, 9, buf)
		th.Exit("finished") // unreachable
	})
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			remote, err := th.Create(1, 0, "waiter", nil, CreateOpts{})
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if err := th.Cancel(remote); err != nil {
				t.Errorf("cancel: %v", err)
			}
			if _, err := th.Join(remote); err == nil {
				t.Error("join of canceled thread reported success")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteDetach(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS, Delivery: DeliverCtx}
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	rt.Register("quick", func(th *Thread, arg []byte) {})
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			remote, err := th.Create(1, 0, "quick", nil, CreateOpts{})
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if err := th.DetachGlobal(remote); err != nil {
				// The thread may already have finished; both outcomes are
				// acceptable for a detach race, but an unknown-thread error
				// is the only legitimate failure.
				if !errors.Is(err, ErrRemote) {
					t.Errorf("detach: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCancelThreadBlockedInRecv(t *testing.T) {
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{Policy: pol, Delivery: DeliverCtx, DisableServer: true}
			runSim2(t, cfg,
				func(th *Thread) {
					victim := th.proc.CreateLocal("victim", func(me *Thread) {
						buf := make([]byte, 8)
						me.Recv(AnyThread, 4, buf) // never satisfied
					}, defaultSpawn())
					th.Yield() // let the victim block
					th.CancelLocal(victim)
					if _, err := th.JoinLocal(victim); err == nil {
						t.Error("join of canceled receiver succeeded")
					}
					// The endpoint must not retain the canceled posted recv.
					posted, _ := th.proc.Endpoint().QueueDepths()
					if posted != 0 {
						t.Errorf("%d receives still posted after cancel", posted)
					}
				},
				nil,
			)
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		cfg := Config{Policy: SchedulerPollsWQ, Delivery: DeliverCtx, DisableServer: true}
		res := runSim2(t, cfg,
			func(th *Thread) {
				for i := 0; i < 20; i++ {
					th.Send(gid(1, 0, 0), 1, make([]byte, 256))
					buf := make([]byte, 256)
					th.Recv(gid(1, 0, 0), 1, buf)
				}
			},
			func(th *Thread) {
				buf := make([]byte, 256)
				for i := 0; i < 20; i++ {
					th.Recv(gid(0, 0, 0), 1, buf)
					th.Send(gid(0, 0, 0), 1, make([]byte, 256))
				}
			},
		)
		return res.Total.MsgTestCalls, res.Total.FullSwitches
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 || s1 != s2 {
		t.Fatalf("nondeterministic counters: (%d,%d) vs (%d,%d)", m1, s1, m2, s2)
	}
}

func TestRealRuntimeSmoke(t *testing.T) {
	for _, pol := range []PolicyKind{ThreadPolls, SchedulerPollsPS, SchedulerPollsWQ} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			rt := NewRealRuntime(Topology{PEs: 2, ProcsPerPE: 1},
				Config{Policy: pol, Delivery: DeliverCtx}, machine.Modern())
			rt.Register("echoer", func(th *Thread, arg []byte) {
				buf := make([]byte, 64)
				n, from, err := th.Recv(AnyThread, 1, buf)
				if err == nil {
					th.Send(from, 2, buf[:n])
				}
			})
			_, err := rt.Run(map[comm.Addr]MainFunc{
				{PE: 0, Proc: 0}: func(th *Thread) {
					remote, err := th.Create(1, 0, "echoer", nil, CreateOpts{})
					if err != nil {
						t.Errorf("create: %v", err)
						return
					}
					th.Send(remote, 1, []byte("real mode"))
					buf := make([]byte, 64)
					n, _, err := th.Recv(remote, 2, buf)
					if err != nil || string(buf[:n]) != "real mode" {
						t.Errorf("echo: %q err=%v", buf[:n], err)
					}
					if _, err := th.Join(remote); err != nil {
						t.Errorf("join: %v", err)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWaitingThreadsCounted(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsWQ, Delivery: DeliverCtx, DisableServer: true}
	res := runSim2(t, cfg,
		func(th *Thread) {
			buf := make([]byte, 8)
			th.Recv(gid(1, 0, 0), 1, buf) // waits ~10ms of virtual time
		},
		func(th *Thread) {
			th.proc.Endpoint().Host().Charge(10_000_000) // 10ms head start
			th.Send(gid(0, 0, 0), 1, []byte("x"))
		},
	)
	if res.Total.MaxWaiting < 1 {
		t.Fatal("no waiting thread recorded")
	}
	if res.Total.AvgWaiting <= 0 {
		t.Fatal("zero average waiting threads despite a long wait")
	}
}

func TestPolicyCountShapes(t *testing.T) {
	// The qualitative count relationships the paper reports: WQ performs
	// far more msgtests than PS; WQ performs the fewest full switches of
	// the scheduler-driven policies; TP performs the most switches.
	counts := map[PolicyKind](*Result){}
	for _, pol := range []PolicyKind{ThreadPolls, SchedulerPollsPS, SchedulerPollsWQ} {
		cfg := Config{Policy: pol, Delivery: DeliverCtx, DisableServer: true}
		mk := func(pe int32) MainFunc {
			return func(th *Thread) {
				const workers = 6
				var ws []*Thread
				for w := 0; w < workers; w++ {
					w := w
					ws = append(ws, th.proc.CreateLocal("w", func(me *Thread) {
						// Shifted pairing de-synchronizes the queues, as in
						// the experiments package's Table-3 workload.
						sendTo := gid(1-pe, 0, (int32(w)+1)%workers+1)
						recvFrom := gid(1-pe, 0, (int32(w)+workers-1)%workers+1)
						buf := make([]byte, 4096)
						out := make([]byte, 4096)
						for i := 0; i < 25; i++ {
							me.proc.ep.Host().Compute(1000)
							me.Send(sendTo, 1, out)
							me.proc.ep.Host().Compute(100)
							me.Recv(recvFrom, 1, buf)
						}
					}, defaultSpawn()))
				}
				for _, w := range ws {
					th.JoinLocal(w)
				}
			}
		}
		counts[pol] = runSim2(t, cfg, mk(0), mk(1))
	}
	tp, ps, wq := counts[ThreadPolls].Total, counts[SchedulerPollsPS].Total, counts[SchedulerPollsWQ].Total
	if wq.MsgTestCalls <= 2*ps.MsgTestCalls {
		t.Errorf("WQ msgtests (%d) not clearly above PS (%d)", wq.MsgTestCalls, ps.MsgTestCalls)
	}
	if tp.FullSwitches <= wq.FullSwitches {
		t.Errorf("TP full switches (%d) not above WQ (%d)", tp.FullSwitches, wq.FullSwitches)
	}
	if ps.PartialSwitches == 0 {
		t.Error("PS recorded no partial switches")
	}
	// The paper's Table-3 shapes at full experiment scale are asserted by
	// the experiments package; this is a smoke-level sanity check.
}
