package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chant/internal/comm"
)

// Channels: a Fortran-M / NewThreads-style port abstraction built on top
// of Chant's primitives. The paper contrasts Chant's direct global naming
// with NewThreads, where "messages are sent to ports, and a port can be
// mapped into any thread on any node" via a global name server. This file
// shows that the port model is a thin layer over talking threads: the
// channel's creating process acts as the name broker (an RSR service),
// data flows directly thread-to-thread once both ports are bound, a
// credit protocol provides flow control, and the receive port can be
// handed off to another thread mid-stream.
//
// A Channel value is a plain descriptor: ship it to the two endpoint
// threads (in a create argument or a message), then call BindSend on one
// and BindRecv on the other. BindRecv registers and returns immediately;
// BindSend blocks until the receiver has registered (the broker defers its
// RSR reply). Binding receive sides before send sides therefore stays
// deadlock-free on arbitrary port graphs, cycles included.
type Channel struct {
	// Home is the broker process (where Open was called).
	Home comm.Addr
	// ID distinguishes channels created at the same home.
	ID int32
	// Capacity is the flow-control window in messages.
	Capacity int32
	// TagBase reserves four user tags for this channel's traffic:
	// data, control, control-reply, and takeover.
	TagBase int32
}

// Per-channel tag offsets.
const (
	chTagData     = 0
	chTagCtl      = 1
	chTagCtlReply = 2
	chTagTakeover = 3
	chTagCount    = 4
)

// Control-message kinds (first byte of a control payload).
const (
	chCtlCredit byte = iota
	chCtlPause
	chCtlResume
)

// Broker handler ids.
const (
	hChanBind int32 = -9
)

// Channel binding roles.
const (
	chRoleSend byte = iota
	chRoleRecv
)

// chanState is the broker's record of one channel.
type chanState struct {
	send, recv     GlobalID
	sendOK, recvOK bool
	waitSend       *RSRContext // deferred sender bind awaiting the receiver
	capacity       int32
}

// OpenChannel creates a channel descriptor brokered by the calling
// thread's process. capacity is the flow-control window; tagBase reserves
// [tagBase, tagBase+4) of this channel's user tag space.
func OpenChannel(t *Thread, capacity, tagBase int32) (Channel, error) {
	t.mustCurrent("OpenChannel")
	if capacity <= 0 {
		return Channel{}, fmt.Errorf("core: channel capacity must be positive")
	}
	if tagBase < 0 || tagBase+chTagCount > TagReserved {
		return Channel{}, fmt.Errorf("%w: channel tags [%d,%d) outside user space",
			ErrBadTag, tagBase, tagBase+chTagCount)
	}
	p := t.proc
	if p.channels == nil {
		p.channels = make(map[int32]*chanState)
	}
	id := p.nextChan
	p.nextChan++
	p.channels[id] = &chanState{capacity: capacity}
	return Channel{Home: p.addr, ID: id, Capacity: capacity, TagBase: tagBase}, nil
}

// Encode serializes the descriptor for shipping to endpoint threads.
func (c Channel) Encode() []byte {
	out := make([]byte, 20)
	binary.LittleEndian.PutUint32(out[0:], uint32(c.Home.PE))
	binary.LittleEndian.PutUint32(out[4:], uint32(c.Home.Proc))
	binary.LittleEndian.PutUint32(out[8:], uint32(c.ID))
	binary.LittleEndian.PutUint32(out[12:], uint32(c.Capacity))
	binary.LittleEndian.PutUint32(out[16:], uint32(c.TagBase))
	return out
}

// DecodeChannel reverses Encode.
func DecodeChannel(b []byte) (Channel, error) {
	if len(b) != 20 {
		return Channel{}, fmt.Errorf("core: malformed channel descriptor (%d bytes)", len(b))
	}
	f := func(i int) int32 { return int32(binary.LittleEndian.Uint32(b[i:])) }
	return Channel{
		Home:     comm.Addr{PE: f(0), Proc: f(4)},
		ID:       f(8),
		Capacity: f(12),
		TagBase:  f(16),
	}, nil
}

// registerChannelHandlers installs the broker's RSR handler.
func (p *Process) registerChannelHandlers() {
	p.handlers[hChanBind] = func(ctx *RSRContext) ([]byte, error) {
		if len(ctx.Req) != 17 {
			return nil, errors.New("core: malformed channel bind")
		}
		id := int32(binary.LittleEndian.Uint32(ctx.Req[0:]))
		role := ctx.Req[4]
		holder := GlobalID{
			PE:     int32(binary.LittleEndian.Uint32(ctx.Req[5:])),
			Proc:   int32(binary.LittleEndian.Uint32(ctx.Req[9:])),
			Thread: int32(binary.LittleEndian.Uint32(ctx.Req[13:])),
		}
		st := p.channels[id]
		if st == nil {
			return nil, fmt.Errorf("core: no such channel %d at %v", id, p.addr)
		}
		reply := func(peer GlobalID) []byte {
			out := make([]byte, 12)
			binary.LittleEndian.PutUint32(out[0:], uint32(peer.PE))
			binary.LittleEndian.PutUint32(out[4:], uint32(peer.Proc))
			binary.LittleEndian.PutUint32(out[8:], uint32(peer.Thread))
			return out
		}
		switch role {
		case chRoleRecv:
			// Receive-side registration never blocks: the receiver can
			// match data by tag without knowing the sender, and learns the
			// sender's identity from the first message header. Replying
			// immediately keeps arbitrary bind orders (including cyclic LP
			// graphs) deadlock-free. The reply carries the sender if
			// already known, zeros otherwise.
			st.recv, st.recvOK = holder, true
			if w := st.waitSend; w != nil {
				st.waitSend = nil
				w.Reply(reply(st.recv), nil)
			}
			if st.sendOK {
				return reply(st.send), nil
			}
			return reply(GlobalID{}), nil
		case chRoleSend:
			// The sender must know the receive holder before its first
			// message; defer until the receiver registers.
			st.send, st.sendOK = holder, true
			if st.recvOK {
				return reply(st.recv), nil
			}
			ctx.DeferReply()
			st.waitSend = ctx
			return nil, nil
		default:
			return nil, errors.New("core: bad channel role")
		}
	}
}

// bind registers holder for role at the channel's home and returns the
// peer's identity, blocking until both sides have bound.
func (c Channel) bind(t *Thread, role byte) (GlobalID, error) {
	req := make([]byte, 17)
	binary.LittleEndian.PutUint32(req[0:], uint32(c.ID))
	req[4] = role
	me := t.ID()
	binary.LittleEndian.PutUint32(req[5:], uint32(me.PE))
	binary.LittleEndian.PutUint32(req[9:], uint32(me.Proc))
	binary.LittleEndian.PutUint32(req[13:], uint32(me.Thread))
	var reply [12]byte
	n, err := t.Call(c.Home, hChanBind, req, reply[:])
	if err != nil {
		return GlobalID{}, err
	}
	if n != 12 {
		return GlobalID{}, fmt.Errorf("core: malformed channel bind reply (%d bytes)", n)
	}
	return GlobalID{
		PE:     int32(binary.LittleEndian.Uint32(reply[0:])),
		Proc:   int32(binary.LittleEndian.Uint32(reply[4:])),
		Thread: int32(binary.LittleEndian.Uint32(reply[8:])),
	}, nil
}

// SendPort is the sending end of a channel, owned by one thread.
type SendPort struct {
	ch      Channel
	t       *Thread
	peer    GlobalID // current receive holder
	credits int32
}

// RecvPort is the receiving end of a channel, owned by one thread.
type RecvPort struct {
	ch         Channel
	t          *Thread
	peer       GlobalID // the sender (learned lazily from traffic)
	peerKnown  bool
	uncredited int32 // consumed messages not yet credited back
}

// BindSend attaches the calling thread as the channel's sender. It blocks
// until the receiver has bound too.
func (c Channel) BindSend(t *Thread) (*SendPort, error) {
	t.mustCurrent("BindSend")
	peer, err := c.bind(t, chRoleSend)
	if err != nil {
		return nil, err
	}
	return &SendPort{ch: c, t: t, peer: peer, credits: c.Capacity}, nil
}

// BindRecv attaches the calling thread as the channel's receiver. It
// registers with the broker and returns immediately; if the sender is not
// yet known, its identity is learned from the first message received.
func (c Channel) BindRecv(t *Thread) (*RecvPort, error) {
	t.mustCurrent("BindRecv")
	peer, err := c.bind(t, chRoleRecv)
	if err != nil {
		return nil, err
	}
	rp := &RecvPort{ch: c, t: t, peer: peer}
	if peer == (GlobalID{}) {
		rp.peerKnown = false
	} else {
		rp.peerKnown = true
	}
	return rp, nil
}

func (c Channel) tag(off int32) int32 { return c.TagBase + off }

// Send transmits data down the channel, blocking when the flow-control
// window is exhausted until the receiver grants more credit. It also
// services control traffic (pause/resume for receive-port handoff).
func (s *SendPort) Send(data []byte) error {
	s.t.mustCurrent("SendPort.Send")
	// Service any pending control message (pause) before sending.
	if _, pending := s.t.proc.ep.Probe(mustSpec(s.t, AnyThread, s.ch.tag(chTagCtl))); pending {
		if err := s.handleControl(true); err != nil {
			return err
		}
	}
	for s.credits == 0 {
		if err := s.handleControl(false); err != nil {
			return err
		}
	}
	s.credits--
	return s.t.Send(s.peer, s.ch.tag(chTagData), data)
}

// handleControl receives and processes one control message. nonBlocking
// only applies to intent: the message is known to be present when true.
func (s *SendPort) handleControl(known bool) error {
	buf := make([]byte, 24)
	n, _, err := s.t.Recv(AnyThread, s.ch.tag(chTagCtl), buf)
	if err != nil {
		return err
	}
	if n < 1 {
		return errors.New("core: empty channel control message")
	}
	switch buf[0] {
	case chCtlCredit:
		if n < 5 {
			return errors.New("core: malformed credit")
		}
		s.credits += int32(binary.LittleEndian.Uint32(buf[1:]))
		return nil
	case chCtlPause:
		// Report how many messages are unaccounted for, then wait for the
		// resume that carries the new receive holder.
		var rep [4]byte
		binary.LittleEndian.PutUint32(rep[:], uint32(s.ch.Capacity-s.credits))
		if err := s.t.Send(s.peer, s.ch.tag(chTagCtlReply), rep[:]); err != nil {
			return err
		}
		for {
			n, _, err := s.t.Recv(AnyThread, s.ch.tag(chTagCtl), buf)
			if err != nil {
				return err
			}
			if n >= 13 && buf[0] == chCtlResume {
				s.peer = GlobalID{
					PE:     int32(binary.LittleEndian.Uint32(buf[1:])),
					Proc:   int32(binary.LittleEndian.Uint32(buf[5:])),
					Thread: int32(binary.LittleEndian.Uint32(buf[9:])),
				}
				s.credits = s.ch.Capacity
				return nil
			}
			// Credits racing with the handoff are superseded by the
			// resume's full window; ignore them.
		}
	default:
		return fmt.Errorf("core: unknown channel control kind %d", buf[0])
	}
}

// SendUnflowed transmits a message outside the flow-control window: no
// credit is consumed, so it can never block on an inattentive receiver —
// and conversely nothing bounds how many such messages may queue at the
// destination. Intended for protocol traffic a layer above the channel
// (shutdown markers, clock announcements) whose volume that layer bounds
// itself; cyclic channel graphs must use it for any message a blocked
// peer may need to make progress, or credit exhaustion can deadlock the
// cycle.
func (s *SendPort) SendUnflowed(data []byte) error {
	s.t.mustCurrent("SendPort.SendUnflowed")
	return s.t.Send(s.peer, s.ch.tag(chTagData), data)
}

// Recv delivers the next channel message into buf, granting credit back to
// the sender as the window half-empties. Matching is by the channel's data
// tag; the sender's identity (needed for credit grants) is taken from the
// message headers.
func (r *RecvPort) Recv(buf []byte) (int, error) {
	r.t.mustCurrent("RecvPort.Recv")
	n, from, err := r.t.Recv(AnyThread, r.ch.tag(chTagData), buf)
	if err != nil {
		return n, err
	}
	if !r.peerKnown {
		r.peer, r.peerKnown = from, true
	}
	r.uncredited++
	if r.uncredited >= r.ch.Capacity/2 || r.uncredited == r.ch.Capacity {
		if err := r.grant(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// grant returns accumulated credit to the sender.
func (r *RecvPort) grant() error {
	if r.uncredited == 0 || !r.peerKnown {
		return nil
	}
	msg := make([]byte, 5)
	msg[0] = chCtlCredit
	binary.LittleEndian.PutUint32(msg[1:], uint32(r.uncredited))
	r.uncredited = 0
	return r.t.Send(r.peer, r.ch.tag(chTagCtl), msg)
}

// Handoff transfers the receive port to successor (which must call
// AcceptRecv). The protocol pauses the sender, drains every in-flight
// message into limbo storage, re-registers the new holder with the broker,
// ships the port state (and drained messages) to the successor, and
// resumes the sender toward the new holder.
func (r *RecvPort) Handoff(successor GlobalID) error {
	r.t.mustCurrent("RecvPort.Handoff")
	if !r.peerKnown {
		return errors.New("core: cannot hand off a channel before any message has arrived (sender unknown)")
	}
	t := r.t
	// Pause the sender.
	if err := t.Send(r.peer, r.ch.tag(chTagCtl), []byte{chCtlPause}); err != nil {
		return err
	}
	var rep [4]byte
	n, _, err := t.Recv(r.peer, r.ch.tag(chTagCtlReply), rep[:])
	if err != nil {
		return err
	}
	if n != 4 {
		return errors.New("core: malformed pause reply")
	}
	outstanding := int32(binary.LittleEndian.Uint32(rep[:])) - r.uncredited
	// Drain in-flight data messages.
	drained := make([][]byte, 0, outstanding)
	buf := make([]byte, 64<<10)
	for i := int32(0); i < outstanding; i++ {
		n, _, err := t.Recv(r.peer, r.ch.tag(chTagData), buf)
		if err != nil {
			return err
		}
		drained = append(drained, append([]byte(nil), buf[:n]...))
	}
	// Re-register the new holder with the broker.
	req := make([]byte, 17)
	binary.LittleEndian.PutUint32(req[0:], uint32(r.ch.ID))
	req[4] = chRoleRecv
	binary.LittleEndian.PutUint32(req[5:], uint32(successor.PE))
	binary.LittleEndian.PutUint32(req[9:], uint32(successor.Proc))
	binary.LittleEndian.PutUint32(req[13:], uint32(successor.Thread))
	var bindReply [12]byte
	if _, err := t.Call(r.ch.Home, hChanBind, req, bindReply[:]); err != nil {
		return err
	}
	// Ship the takeover: sender identity, count, then the drained messages.
	tk := make([]byte, 16)
	binary.LittleEndian.PutUint32(tk[0:], uint32(r.peer.PE))
	binary.LittleEndian.PutUint32(tk[4:], uint32(r.peer.Proc))
	binary.LittleEndian.PutUint32(tk[8:], uint32(r.peer.Thread))
	binary.LittleEndian.PutUint32(tk[12:], uint32(len(drained)))
	if err := t.Send(successor, r.ch.tag(chTagTakeover), tk); err != nil {
		return err
	}
	for _, m := range drained {
		if err := t.Send(successor, r.ch.tag(chTagTakeover), m); err != nil {
			return err
		}
	}
	// Resume the sender toward the new holder.
	rs := make([]byte, 13)
	rs[0] = chCtlResume
	binary.LittleEndian.PutUint32(rs[1:], uint32(successor.PE))
	binary.LittleEndian.PutUint32(rs[5:], uint32(successor.Proc))
	binary.LittleEndian.PutUint32(rs[9:], uint32(successor.Thread))
	if err := t.Send(r.peer, r.ch.tag(chTagCtl), rs); err != nil {
		return err
	}
	r.t = nil // the port is dead in this thread
	return nil
}

// AcceptRecv receives a handed-off receive port in the successor thread.
// Messages drained during the handoff are replayed before new traffic.
func (c Channel) AcceptRecv(t *Thread) (*RecvPort, [][]byte, error) {
	t.mustCurrent("AcceptRecv")
	var tk [16]byte
	n, from, err := t.Recv(AnyThread, c.tag(chTagTakeover), tk[:])
	if err != nil {
		return nil, nil, err
	}
	if n != 16 {
		return nil, nil, errors.New("core: malformed channel takeover")
	}
	peer := GlobalID{
		PE:     int32(binary.LittleEndian.Uint32(tk[0:])),
		Proc:   int32(binary.LittleEndian.Uint32(tk[4:])),
		Thread: int32(binary.LittleEndian.Uint32(tk[8:])),
	}
	count := int(binary.LittleEndian.Uint32(tk[12:]))
	pending := make([][]byte, 0, count)
	buf := make([]byte, 64<<10)
	for i := 0; i < count; i++ {
		n, _, err := t.Recv(from, c.tag(chTagTakeover), buf)
		if err != nil {
			return nil, nil, err
		}
		pending = append(pending, append([]byte(nil), buf[:n]...))
	}
	return &RecvPort{ch: c, t: t, peer: peer}, pending, nil
}

// mustSpec builds a recv spec, panicking on impossible inputs (internal
// channel traffic always uses exact tags).
func mustSpec(t *Thread, src GlobalID, tag int32) comm.MatchSpec {
	spec, err := t.proc.recvSpec(t.ID().Thread, src, tag)
	if err != nil {
		panic("core: channel spec: " + err.Error())
	}
	return spec
}
