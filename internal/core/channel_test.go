package core

import (
	"errors"
	"fmt"
	"testing"

	"chant/internal/comm"
	"chant/internal/machine"
	"chant/internal/sim"
)

func TestChannelDescriptorCodec(t *testing.T) {
	c := Channel{Home: comm.Addr{PE: 3, Proc: 1}, ID: 42, Capacity: 16, TagBase: 0x2000}
	got, err := DecodeChannel(c.Encode())
	if err != nil || got != c {
		t.Fatalf("roundtrip = (%+v, %v)", got, err)
	}
	if _, err := DecodeChannel([]byte{1, 2, 3}); err == nil {
		t.Fatal("short descriptor accepted")
	}
}

func TestChannelBasicStream(t *testing.T) {
	for _, pol := range allPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{Policy: pol}
			const msgs = 25 // more than the window: forces credit traffic
			runSim2(t, cfg,
				func(th *Thread) { // home + sender
					ch, err := OpenChannel(th, 4, 0x2000)
					if err != nil {
						t.Fatal(err)
					}
					// Ship the descriptor to the receiver thread on pe1.
					if err := th.Send(gid(1, 0, 0), 1, ch.Encode()); err != nil {
						t.Fatal(err)
					}
					sp, err := ch.BindSend(th)
					if err != nil {
						t.Fatalf("bind send: %v", err)
					}
					for i := 0; i < msgs; i++ {
						if err := sp.Send([]byte{byte(i)}); err != nil {
							t.Fatalf("send %d: %v", i, err)
						}
					}
				},
				func(th *Thread) {
					buf := make([]byte, 32)
					n, _, err := th.Recv(gid(0, 0, 0), 1, buf)
					if err != nil {
						t.Fatal(err)
					}
					ch, err := DecodeChannel(buf[:n])
					if err != nil {
						t.Fatal(err)
					}
					rp, err := ch.BindRecv(th)
					if err != nil {
						t.Fatalf("bind recv: %v", err)
					}
					for i := 0; i < msgs; i++ {
						n, err := rp.Recv(buf)
						if err != nil || n != 1 || buf[0] != byte(i) {
							t.Fatalf("recv %d: n=%d v=%d err=%v", i, n, buf[0], err)
						}
					}
				},
			)
		})
	}
}

func TestChannelFlowControlBlocksSender(t *testing.T) {
	// With window 2 and a receiver that waits 30 virtual ms before
	// draining, a sender pushing 10 messages must take at least that long.
	cfg := Config{Policy: SchedulerPollsPS}
	var senderDone sim.Time
	runSim2(t, cfg,
		func(th *Thread) {
			ch, err := OpenChannel(th, 2, 0x2000)
			if err != nil {
				t.Fatal(err)
			}
			th.Send(gid(1, 0, 0), 1, ch.Encode())
			sp, err := ch.BindSend(th)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := sp.Send([]byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			senderDone = th.proc.ep.Host().Now()
		},
		func(th *Thread) {
			buf := make([]byte, 32)
			n, _, err := th.Recv(gid(0, 0, 0), 1, buf)
			if err != nil {
				t.Fatal(err)
			}
			ch, _ := DecodeChannel(buf[:n])
			rp, err := ch.BindRecv(th)
			if err != nil {
				t.Fatal(err)
			}
			th.proc.ep.Host().Charge(30 * sim.Millisecond)
			for i := 0; i < 10; i++ {
				if _, err := rp.Recv(buf); err != nil {
					t.Fatal(err)
				}
			}
		},
	)
	if senderDone < sim.Time(30*sim.Millisecond) {
		t.Fatalf("sender finished at %v despite window 2 and a 30ms-stalled receiver", senderDone)
	}
}

func TestChannelHandoff(t *testing.T) {
	// The receive port moves from one thread to another (on a different
	// PE) mid-stream; no message may be lost or reordered.
	cfg := Config{Policy: SchedulerPollsWQ}
	const total = 20
	var got []byte
	runSim2(t, cfg,
		func(th *Thread) { // home + sender
			ch, err := OpenChannel(th, 4, 0x2000)
			if err != nil {
				t.Fatal(err)
			}
			th.Send(gid(1, 0, 0), 1, ch.Encode())
			sp, err := ch.BindSend(th)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < total; i++ {
				if err := sp.Send([]byte{byte(i)}); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
		},
		func(th *Thread) { // first receiver; hands off to a local successor
			buf := make([]byte, 32)
			n, _, err := th.Recv(gid(0, 0, 0), 1, buf)
			if err != nil {
				t.Fatal(err)
			}
			ch, _ := DecodeChannel(buf[:n])

			successor := th.proc.CreateLocal("successor", func(me *Thread) {
				rp, pending, err := ch.AcceptRecv(me)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				for _, m := range pending {
					got = append(got, m...)
				}
				rbuf := make([]byte, 32)
				for len(got) < total {
					n, err := rp.Recv(rbuf)
					if err != nil {
						t.Errorf("successor recv: %v", err)
						return
					}
					got = append(got, rbuf[:n]...)
				}
			}, defaultSpawn())

			rp, err := ch.BindRecv(th)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 7; i++ {
				n, err := rp.Recv(buf)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				got = append(got, buf[:n]...)
			}
			if err := rp.Handoff(successor.ID()); err != nil {
				t.Fatalf("handoff: %v", err)
			}
			th.JoinLocal(successor)
		},
	)
	if len(got) != total {
		t.Fatalf("received %d of %d", len(got), total)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("stream broken at %d: %v", i, got)
		}
	}
}

func TestChannelHandoffAcrossPEs(t *testing.T) {
	// Successor lives on the sending PE itself: the port crosses the
	// machine and traffic becomes loopback.
	cfg := Config{Policy: SchedulerPollsPS}
	const total = 12
	received := 0
	runSim2(t, cfg,
		func(th *Thread) { // home + sender + eventual receiver
			ch, err := OpenChannel(th, 3, 0x2000)
			if err != nil {
				t.Fatal(err)
			}
			successor := th.proc.CreateLocal("successor", func(me *Thread) {
				rp, pending, err := ch.AcceptRecv(me)
				if err != nil {
					t.Errorf("accept: %v", err)
					return
				}
				received += len(pending)
				buf := make([]byte, 32)
				for received < total {
					if _, err := rp.Recv(buf); err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					received++
				}
			}, defaultSpawn())
			th.Send(gid(1, 0, 0), 1, append(ch.Encode(), byte(successor.ID().Thread)))
			sp, err := ch.BindSend(th)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < total; i++ {
				if err := sp.Send([]byte{byte(i)}); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			th.JoinLocal(successor)
		},
		func(th *Thread) {
			buf := make([]byte, 32)
			n, _, err := th.Recv(gid(0, 0, 0), 1, buf)
			if err != nil {
				t.Fatal(err)
			}
			ch, _ := DecodeChannel(buf[:n-1])
			successor := gid(0, 0, int32(buf[n-1]))
			rp, err := ch.BindRecv(th)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := rp.Recv(buf); err != nil {
					t.Fatal(err)
				}
				received++
			}
			if err := rp.Handoff(successor); err != nil {
				t.Fatalf("handoff: %v", err)
			}
		},
	)
	if received != total {
		t.Fatalf("received %d of %d across the handoff", received, total)
	}
}

func TestChannelValidation(t *testing.T) {
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			if _, err := OpenChannel(th, 0, 0x2000); err == nil {
				t.Error("zero capacity accepted")
			}
			if _, err := OpenChannel(th, 4, TagReserved); !errors.Is(err, ErrBadTag) {
				t.Error("tag window outside user space accepted")
			}
			// Bind against a nonexistent channel id.
			bogus := Channel{Home: comm.Addr{PE: 1, Proc: 0}, ID: 999, Capacity: 4, TagBase: 0x2000}
			if _, err := bogus.BindSend(th); !errors.Is(err, ErrRemote) {
				t.Errorf("bind to missing channel: %v", err)
			}
		},
		nil,
	)
}

func TestManyChannels(t *testing.T) {
	// Several channels between the same pair of threads, interleaved.
	cfg := Config{Policy: ThreadPolls}
	const nch = 3
	runSim2(t, cfg,
		func(th *Thread) {
			var sps []*SendPort
			for i := 0; i < nch; i++ {
				ch, err := OpenChannel(th, 2, 0x2000+int32(i)*chTagCount)
				if err != nil {
					t.Fatal(err)
				}
				th.Send(gid(1, 0, 0), 1, ch.Encode())
				sp, err := ch.BindSend(th)
				if err != nil {
					t.Fatal(err)
				}
				sps = append(sps, sp)
			}
			for round := 0; round < 6; round++ {
				for i, sp := range sps {
					if err := sp.Send([]byte{byte(i*100 + round)}); err != nil {
						t.Fatal(err)
					}
				}
			}
		},
		func(th *Thread) {
			buf := make([]byte, 32)
			var rps []*RecvPort
			for i := 0; i < nch; i++ {
				n, _, err := th.Recv(gid(0, 0, 0), 1, buf)
				if err != nil {
					t.Fatal(err)
				}
				ch, _ := DecodeChannel(buf[:n])
				rp, err := ch.BindRecv(th)
				if err != nil {
					t.Fatal(err)
				}
				rps = append(rps, rp)
			}
			for round := 0; round < 6; round++ {
				for i, rp := range rps {
					n, err := rp.Recv(buf)
					if err != nil || n != 1 || buf[0] != byte(i*100+round) {
						t.Fatalf("ch%d round %d: n=%d v=%d err=%v", i, round, n, buf[0], err)
					}
				}
			}
		},
	)
}

func TestChannelBindRendezvousOrderIndependent(t *testing.T) {
	// Receiver binds long before the sender: the broker must defer its
	// reply, not fail.
	cfg := Config{Policy: SchedulerPollsPS}
	runSim2(t, cfg,
		func(th *Thread) {
			ch, err := OpenChannel(th, 2, 0x2000)
			if err != nil {
				t.Fatal(err)
			}
			th.Send(gid(1, 0, 0), 1, ch.Encode())
			// Delay our own bind well past the receiver's.
			th.proc.ep.Host().Charge(20 * sim.Millisecond)
			sp, err := ch.BindSend(th)
			if err != nil {
				t.Fatal(err)
			}
			if err := sp.Send([]byte("late binder")); err != nil {
				t.Fatal(err)
			}
		},
		func(th *Thread) {
			buf := make([]byte, 32)
			n, _, err := th.Recv(gid(0, 0, 0), 1, buf)
			if err != nil {
				t.Fatal(err)
			}
			ch, _ := DecodeChannel(buf[:n])
			rp, err := ch.BindRecv(th) // blocks ~20ms until the sender binds
			if err != nil {
				t.Fatal(err)
			}
			if n, err := rp.Recv(buf); err != nil || string(buf[:n]) != "late binder" {
				t.Fatalf("recv: %q err=%v", buf[:n], err)
			}
		},
	)
}

func TestChannelIDsDistinct(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1},
		Config{Policy: SchedulerPollsPS}, machine.Paragon1994())
	_, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			seen := map[int32]bool{}
			for i := 0; i < 5; i++ {
				ch, err := OpenChannel(th, 1, 0x2000)
				if err != nil {
					t.Fatal(err)
				}
				if seen[ch.ID] {
					t.Fatalf("duplicate channel id %d", ch.ID)
				}
				seen[ch.ID] = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
