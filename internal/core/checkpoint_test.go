package core

import (
	"errors"
	"testing"

	"chant/internal/comm"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/sim"
)

func TestAdmitRSR(t *testing.T) {
	rec := &rsrDedup{epoch: 1, seq: 5}
	cases := []struct {
		name       string
		rec        *rsrDedup
		epoch, seq uint32
		want       rsrVerdict
	}{
		{"no record", nil, 0, 1, rsrFresh},
		{"same epoch, newer seq", rec, 1, 6, rsrFresh},
		{"same epoch, same seq", rec, 1, 5, rsrDup},
		{"same epoch, older seq", rec, 1, 4, rsrStale},
		{"same epoch, seq wraparound", &rsrDedup{epoch: 1, seq: 1<<32 - 2}, 1, 3, rsrFresh},
		{"same epoch, half-space ahead is behind", rec, 1, 5 + 1<<31 + 1, rsrStale},
		// The restart cases: a restored client's sequence counter may
		// re-cover old numbers, so the epoch dominates the comparison.
		{"higher epoch, older seq", rec, 2, 1, rsrFresh},
		{"higher epoch, same seq", rec, 2, 5, rsrFresh},
		{"lower epoch, newer seq", rec, 0, 9, rsrStale},
		{"lower epoch, same seq", rec, 0, 5, rsrStale},
	}
	for _, c := range cases {
		if got := admitRSR(c.rec, c.epoch, c.seq); got != c.want {
			t.Errorf("%s: admitRSR = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEpochDedupStraddlingRestart(t *testing.T) {
	// The exactly-once scenario a restart must preserve: a client's retry of
	// a request the server already answered (cached reply restored from the
	// checkpoint) must be suppressed, while the client's post-restart epoch
	// supersedes everything — even sequence numbers it already used.
	rec := &rsrDedup{epoch: 0, seq: 9, replyTag: 1, reply: []byte("cached")}
	if got := admitRSR(rec, 0, 9); got != rsrDup {
		t.Errorf("duplicate retry straddling the server restart: %v, want rsrDup", got)
	}
	if got := admitRSR(rec, 0, 3); got != rsrStale {
		t.Errorf("pre-checkpoint straggler: %v, want rsrStale", got)
	}
	if got := admitRSR(rec, 1, 9); got != rsrFresh {
		t.Errorf("restarted client reusing a sequence: %v, want rsrFresh", got)
	}
}

func TestCheckpointSingleProcess(t *testing.T) {
	store := recovery.NewMemStore()
	cfg := robustCfg()
	cfg.CheckpointStore = store
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	res, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			if cerr := th.Checkpoint(); cerr != nil {
				t.Errorf("Checkpoint: %v", cerr)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", res.Total.Checkpoints)
	}
	cp, v, lerr := store.Latest(comm.Addr{PE: 0, Proc: 0})
	if lerr != nil || v != 1 {
		t.Fatalf("Latest: version %d, err %v", v, lerr)
	}
	if cp.Epoch != 0 || len(cp.Handlers) == 0 {
		t.Errorf("checkpoint epoch %d, %d handlers; want epoch 0 and builtin handlers", cp.Epoch, len(cp.Handlers))
	}
}

func TestCheckpointWithoutStoreFails(t *testing.T) {
	rt := NewSimRuntime(Topology{PEs: 1, ProcsPerPE: 1}, robustCfg(), machine.Paragon1994())
	var cerr error
	if _, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) { cerr = th.Checkpoint() },
	}); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(cerr, ErrNoCheckpointStore) {
		t.Fatalf("Checkpoint without a store: %v, want ErrNoCheckpointStore", cerr)
	}
}

func TestCrashRecoverRejoin(t *testing.T) {
	// The full cycle: PE0 checkpoints the machine mid-workload, PE1 crashes
	// and restarts from its checkpoint, rejoins, and every one of PE0's
	// calls — including the ones straddling the outage — completes.
	plan := faults.New(faults.Config{
		Crashes: []faults.Crash{{
			PE:           1,
			At:           sim.Time(50 * sim.Millisecond),
			RestartAfter: 20 * sim.Millisecond,
		}},
	}, 5)
	store := recovery.NewMemStore()
	cfg := robustCfg()
	cfg.Faults = plan
	cfg.CheckpointStore = store
	cfg.RejoinWait = 200 * sim.Millisecond
	rt := NewSimRuntime(Topology{PEs: 2, ProcsPerPE: 1}, cfg, machine.Paragon1994())
	rt.RegisterHandler(7, func(ctx *RSRContext) ([]byte, error) {
		return append([]byte("ok:"), ctx.Req...), nil
	})
	restarted := false
	rt.OnRestart(comm.Addr{PE: 1, Proc: 0}, func(th *Thread) { restarted = true })

	const calls = 30
	callErrs := 0
	res, err := rt.Run(map[comm.Addr]MainFunc{
		{PE: 0, Proc: 0}: func(th *Thread) {
			host := th.Process().Endpoint().Host()
			buf := make([]byte, 16)
			for i := 0; i < calls; i++ {
				if i == 5 {
					if cerr := th.Checkpoint(); cerr != nil {
						t.Errorf("Checkpoint: %v", cerr)
					}
				}
				if _, cerr := th.Call(comm.Addr{PE: 1, Proc: 0}, 7, []byte{byte(i)}, buf); cerr != nil {
					t.Errorf("call %d: %v", i, cerr)
					callErrs++
				}
				host.Charge(2 * sim.Millisecond)
			}
		},
		{PE: 1, Proc: 0}: func(th *Thread) {
			for { // serve until crashed; the restart main takes over after
				th.Yield()
			}
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if callErrs != 0 {
		t.Fatalf("%d of %d calls failed across the crash", callErrs, calls)
	}
	if !restarted {
		t.Error("restart main never ran")
	}
	if res.Total.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Total.Restarts)
	}
	if res.Total.Checkpoints == 0 {
		t.Error("no checkpoint captured")
	}
	if res.Total.RejoinsServed == 0 {
		t.Error("no rejoin served: the restarted PE never announced itself")
	}
	if res.Total.PeersRecovered == 0 {
		t.Error("no peer recovery recorded at the survivors")
	}
	if st := plan.Stats(); st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("witness stats: %d crashes, %d recoveries; want 1 and 1", st.Crashes, st.Recoveries)
	}
	p1 := rt.Process(comm.Addr{PE: 1, Proc: 0})
	if p1.Epoch() != 1 {
		t.Errorf("restored PE1 epoch = %d, want 1", p1.Epoch())
	}
	if p1.RejoinedAt() == 0 {
		t.Error("restored PE1 never recorded its rejoin time")
	}
	if _, v, lerr := store.Latest(comm.Addr{PE: 1, Proc: 0}); lerr != nil || v != 1 {
		t.Errorf("PE1 checkpoint: version %d, err %v; want 1, nil", v, lerr)
	}
}
