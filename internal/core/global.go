package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"chant/internal/comm"
	"chant/internal/ult"
)

// Global thread operations (paper Section 3.3): primitives affected by
// global identifiers — create, join, cancel, detach — handle remote targets
// by sending a remote service request to the target process, "similar to
// how Unix creates a process on a remote machine". Local targets take the
// local fast path directly.

// Builtin handler ids (negative; user ids are >= 0).
const (
	hCreate int32 = -1
	hJoin   int32 = -2
	hCancel int32 = -3
	hDetach int32 = -4
	hPing   int32 = -5
)

// ThreadFunc is a registered thread body that remote creates can name.
// Code cannot travel between address spaces, so — as in every RPC system —
// both sides agree on names bound via Runtime.Register.
type ThreadFunc func(t *Thread, arg []byte)

// CreateOpts configures remote or local creation through Create.
type CreateOpts struct {
	// Priority for the new thread (default 0).
	Priority int
	// Detached marks the thread detached at birth.
	Detached bool
}

// ErrNoFunc reports a Create naming an unregistered thread function.
var ErrNoFunc = errors.New("core: no registered thread function with that name")

// ErrNoThread reports a global operation on a thread id that is not alive
// in its process.
var ErrNoThread = errors.New("core: no such thread")

// Create creates a thread running the registered function name with arg in
// the given processing element and process, which may be the caller's own
// (pthread_chanter_create; "which may be LOCAL"). It returns the new
// thread's global identifier.
func (t *Thread) Create(pe, proc int32, name string, arg []byte, opts CreateOpts) (GlobalID, error) {
	t.mustCurrent("Create")
	dst := comm.Addr{PE: pe, Proc: proc}
	if !t.proc.rt.validAddr(dst) {
		return GlobalID{}, fmt.Errorf("%w: %v", ErrBadTarget, dst)
	}
	if dst == t.proc.addr {
		nt, err := t.proc.createByName(name, arg, opts)
		if err != nil {
			return GlobalID{}, err
		}
		return nt.gid, nil
	}
	req := encodeCreate(name, arg, opts)
	var reply [4]byte
	n, err := t.Call(dst, hCreate, req, reply[:])
	if err != nil {
		return GlobalID{}, err
	}
	if n != 4 {
		return GlobalID{}, fmt.Errorf("core: malformed create reply (%d bytes)", n)
	}
	local := int32(binary.LittleEndian.Uint32(reply[:]))
	return GlobalID{PE: pe, Proc: proc, Thread: local}, nil
}

// Join blocks until the thread named target exits and returns its exit
// value (pthread_chanter_join). Values crossing address spaces are limited
// to []byte, string, integers, and nil; remote joins of other types return
// their string rendering.
func (t *Thread) Join(target GlobalID) (any, error) {
	t.mustCurrent("Join")
	if target.Addr() == t.proc.addr {
		lt, ok := t.proc.Lookup(target.Thread)
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrNoThread, target)
		}
		return t.JoinLocal(lt)
	}
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], uint32(target.Thread))
	reply := make([]byte, t.proc.cfg.MaxRSR)
	n, err := t.Call(target.Addr(), hJoin, req[:], reply)
	if err != nil {
		return nil, err
	}
	return decodeJoinValue(reply[:n])
}

// Cancel requests that the thread named target exit as if it had called
// Exit (pthread_chanter_cancel).
func (t *Thread) Cancel(target GlobalID) error {
	t.mustCurrent("Cancel")
	if target.Addr() == t.proc.addr {
		lt, ok := t.proc.Lookup(target.Thread)
		if !ok {
			return nil // already gone: cancel of a finished thread is a no-op
		}
		t.proc.sched.Cancel(lt.tcb)
		return nil
	}
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], uint32(target.Thread))
	_, err := t.Call(target.Addr(), hCancel, req[:], nil)
	return err
}

// DetachGlobal marks the thread named target detached
// (pthread_chanter_detach for an arbitrary global thread).
func (t *Thread) DetachGlobal(target GlobalID) error {
	t.mustCurrent("DetachGlobal")
	if target.Addr() == t.proc.addr {
		lt, ok := t.proc.Lookup(target.Thread)
		if !ok {
			return fmt.Errorf("%w: %v", ErrNoThread, target)
		}
		lt.tcb.Detach()
		if lt.tcb.State() == ult.Done {
			t.proc.unregister(lt)
		}
		return nil
	}
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], uint32(target.Thread))
	_, err := t.Call(target.Addr(), hDetach, req[:], nil)
	return err
}

// Ping round-trips an empty request through dst's server thread; useful for
// liveness checks and as the minimal RSR cost probe.
func (t *Thread) Ping(dst comm.Addr) error {
	t.mustCurrent("Ping")
	_, err := t.Call(dst, hPing, nil, nil)
	return err
}

// createByName runs the local side of Create.
func (p *Process) createByName(name string, arg []byte, opts CreateOpts) (*Thread, error) {
	fn := p.rt.lookupFunc(name)
	if fn == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoFunc, name)
	}
	argCopy := make([]byte, len(arg))
	copy(argCopy, arg)
	nt := p.CreateLocal(name, func(t *Thread) { fn(t, argCopy) }, ult.SpawnOpts{Priority: opts.Priority})
	if opts.Detached {
		nt.tcb.Detach()
	}
	return nt, nil
}

// registerBuiltinHandlers installs the global-operation handlers every
// process serves.
func (p *Process) registerBuiltinHandlers() {
	p.handlers[hPing] = func(ctx *RSRContext) ([]byte, error) { return nil, nil }

	p.handlers[hCreate] = func(ctx *RSRContext) ([]byte, error) {
		name, arg, opts, err := decodeCreate(ctx.Req)
		if err != nil {
			return nil, err
		}
		nt, err := p.createByName(name, arg, opts)
		if err != nil {
			return nil, err
		}
		var reply [4]byte
		binary.LittleEndian.PutUint32(reply[:], uint32(nt.gid.Thread))
		return reply[:], nil
	}

	p.handlers[hJoin] = func(ctx *RSRContext) ([]byte, error) {
		local := int32(binary.LittleEndian.Uint32(ctx.Req))
		lt, ok := p.Lookup(local)
		if !ok {
			return nil, fmt.Errorf("%w: thread %d", ErrNoThread, local)
		}
		// Joining blocks, and the server must keep serving: hand the join
		// to a proxy thread and defer the reply (paper Section 3.3).
		ctx.DeferReply()
		proxy := p.CreateLocal("join-proxy", func(proxy *Thread) {
			v, err := proxy.JoinLocal(lt)
			if err != nil {
				ctx.Reply(nil, err)
				return
			}
			ctx.Reply(encodeJoinValue(v), nil)
		}, ult.SpawnOpts{})
		proxy.Detach()
		return nil, nil
	}

	p.handlers[hCancel] = func(ctx *RSRContext) ([]byte, error) {
		local := int32(binary.LittleEndian.Uint32(ctx.Req))
		if lt, ok := p.Lookup(local); ok {
			p.sched.Cancel(lt.tcb)
		}
		return nil, nil
	}

	p.handlers[hDetach] = func(ctx *RSRContext) ([]byte, error) {
		local := int32(binary.LittleEndian.Uint32(ctx.Req))
		lt, ok := p.Lookup(local)
		if !ok {
			return nil, fmt.Errorf("%w: thread %d", ErrNoThread, local)
		}
		lt.tcb.Detach()
		if lt.tcb.State() == ult.Done {
			p.unregister(lt)
		}
		return nil, nil
	}
}

// --- wire encodings ---

func encodeCreate(name string, arg []byte, opts CreateOpts) []byte {
	out := make([]byte, 7+len(name)+len(arg))
	if opts.Detached {
		out[0] = 1
	}
	binary.LittleEndian.PutUint32(out[1:], uint32(int32(opts.Priority)))
	binary.LittleEndian.PutUint16(out[5:], uint16(len(name)))
	copy(out[7:], name)
	copy(out[7+len(name):], arg)
	return out
}

func decodeCreate(req []byte) (name string, arg []byte, opts CreateOpts, err error) {
	if len(req) < 7 {
		return "", nil, opts, errors.New("core: malformed create request")
	}
	opts.Detached = req[0] == 1
	opts.Priority = int(int32(binary.LittleEndian.Uint32(req[1:])))
	nameLen := int(binary.LittleEndian.Uint16(req[5:]))
	if 7+nameLen > len(req) {
		return "", nil, opts, errors.New("core: malformed create request name")
	}
	return string(req[7 : 7+nameLen]), req[7+nameLen:], opts, nil
}

// Join-value wire format: one kind byte then the payload.
const (
	jvNil byte = iota
	jvBytes
	jvString
	jvInt64
)

func encodeJoinValue(v any) []byte {
	switch x := v.(type) {
	case nil:
		return []byte{jvNil}
	case []byte:
		return append([]byte{jvBytes}, x...)
	case string:
		return append([]byte{jvString}, x...)
	case int:
		var out [9]byte
		out[0] = jvInt64
		binary.LittleEndian.PutUint64(out[1:], uint64(int64(x)))
		return out[:]
	case int64:
		var out [9]byte
		out[0] = jvInt64
		binary.LittleEndian.PutUint64(out[1:], uint64(x))
		return out[:]
	default:
		return append([]byte{jvString}, fmt.Sprint(x)...)
	}
}

func decodeJoinValue(wire []byte) (any, error) {
	if len(wire) == 0 {
		return nil, errors.New("core: empty join value")
	}
	body := wire[1:]
	switch wire[0] {
	case jvNil:
		return nil, nil
	case jvBytes:
		out := make([]byte, len(body))
		copy(out, body)
		return out, nil
	case jvString:
		return string(body), nil
	case jvInt64:
		if len(body) != 8 {
			return nil, errors.New("core: malformed int64 join value")
		}
		return int64(binary.LittleEndian.Uint64(body)), nil
	}
	return nil, errors.New("core: unknown join value kind")
}
