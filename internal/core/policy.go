package core

import (
	"math"

	"chant/internal/comm"
	"chant/internal/ult"
)

// PolicyKind names one of the message-polling scheduling algorithms the
// paper measures in Section 4.2.
type PolicyKind int

const (
	// ThreadPolls: the waiting thread stays on the ready queue and tests
	// its own request each time it is rescheduled (Figure 5). Works with
	// any thread package.
	ThreadPolls PolicyKind = iota
	// SchedulerPollsPS: the request lives in the waiting thread's TCB; the
	// scheduler tests it during a partial context switch and only restores
	// the thread when the message has arrived. Fastest, but requires a
	// modifiable scheduler.
	SchedulerPollsPS
	// SchedulerPollsWQ: waiting threads move to a blocked queue and the
	// scheduler walks the whole outstanding-request list, testing each
	// request in turn, at every scheduling point (Figure 6).
	SchedulerPollsWQ
	// SchedulerPollsWQAny: the WQ algorithm "as originally intended" — a
	// single msgtestany call per scheduling point instead of one test per
	// request. This is the paper's Section 4.2 hypothesis about running WQ
	// over MPI's MPI_TESTANY.
	SchedulerPollsWQAny
)

func (k PolicyKind) String() string {
	switch k {
	case ThreadPolls:
		return "thread-polls"
	case SchedulerPollsPS:
		return "scheduler-polls-ps"
	case SchedulerPollsWQ:
		return "scheduler-polls-wq"
	case SchedulerPollsWQAny:
		return "scheduler-polls-wq-any"
	}
	return "invalid"
}

// noBoost disables the priority boost on wait completion.
const noBoost = math.MinInt

// policy is the strategy object behind every blocking receive: Wait parks
// the calling thread until h completes, under the policy's polling rules.
// boostTo, unless noBoost, is a priority assigned to the thread the moment
// its message is noticed — the paper's server-thread boost ("assumes a
// higher scheduling priority ... ensuring that it is scheduled at the next
// context switch point").
type policy interface {
	Kind() PolicyKind
	Wait(h *comm.RecvHandle, boostTo int)
	// external reports whether the policy holds outstanding requests that
	// an arriving message could complete (used for idle/deadlock decisions).
	external() bool
}

func newPolicy(kind PolicyKind, sched *ult.Sched, ep *comm.Endpoint) policy {
	switch kind {
	case ThreadPolls:
		return &tpPolicy{sched: sched, ep: ep}
	case SchedulerPollsPS:
		return &psPolicy{sched: sched, ep: ep}
	case SchedulerPollsWQ, SchedulerPollsWQAny:
		p := &wqPolicy{
			sched:      sched,
			ep:         ep,
			useTestAny: kind == SchedulerPollsWQAny,
			det:        ep.Host().Deterministic(),
			index:      make(map[*comm.RecvHandle]*wqEntry),
		}
		// The completion ready-list replaces scanning in every mode except
		// WQ-under-simulation, where the exact per-entry msgtest sequence
		// (each a yield point) must be preserved for bit-identical runs.
		p.tracking = p.useTestAny || !p.det
		if p.tracking {
			ep.TrackCompletions()
		}
		sched.SetPreSchedule(p.preSchedule)
		sched.SetExternalWaiters(p.external)
		return p
	}
	panic("core: unknown polling policy")
}

// waitAccounting brackets a wait with the Figure-13 waiting-thread
// integrator, robustly against cancellation unwinds. The wait ends when
// the request stops being outstanding — the message's arrival time — not
// when the thread resumes, matching the paper's "threads waiting on
// outstanding receive requests".
func waitAccounting(ep *comm.Endpoint, h *comm.RecvHandle) func() {
	beginWait(ep)
	return func() { endWait(ep, h) }
}

// beginWait/endWait are waitAccounting split into a plain call pair, so the
// policies' hot wait paths can bracket a wait with `beginWait(ep)` and
// `defer endWait(ep, h)` — no closure allocation per blocking receive.
func beginWait(ep *comm.Endpoint) {
	ep.Counters().WaitBegin(ep.Host().Now())
}

func endWait(ep *comm.Endpoint, h *comm.RecvHandle) {
	at := ep.Host().Now()
	if h.Done() && h.CompletedAt() < at {
		at = h.CompletedAt()
	}
	ep.Counters().WaitEndAt(at)
}

// tpPolicy is Thread polls (Figure 5): test, and while incomplete, yield
// and test again on every reschedule.
type tpPolicy struct {
	sched *ult.Sched
	ep    *comm.Endpoint
}

func (p *tpPolicy) Kind() PolicyKind { return ThreadPolls }

func (p *tpPolicy) external() bool { return false }

func (p *tpPolicy) Wait(h *comm.RecvHandle, boostTo int) {
	if p.ep.Test(h) {
		return
	}
	t := p.sched.Current()
	w := tpBox(p, t)
	w.h = h
	beginWait(p.ep)
	defer endWait(p.ep, h)
	t.SetOnCancel(w.cancel)
	for {
		p.sched.Yield()
		if p.ep.Test(h) {
			break
		}
	}
	t.SetOnCancel(nil)
	w.h = nil
	// The thread is already running when it notices completion, so the
	// boost is moot under Thread polls.
}

// tpWait is the thread's reusable Thread-polls wait state: the cancel hook
// is materialized once per thread (see ult.TCB.WaitBox) instead of a fresh
// closure per blocking receive.
type tpWait struct {
	p      *tpPolicy
	h      *comm.RecvHandle
	cancel func()
}

func tpBox(p *tpPolicy, t *ult.TCB) *tpWait {
	if w, ok := t.WaitBox.(*tpWait); ok && w.p == p {
		return w
	}
	w := &tpWait{p: p}
	w.cancel = func() { w.p.ep.CancelRecv(w.h) }
	t.WaitBox = w
	return w
}

// psPolicy is Scheduler polls (PS): the pending request is stored in the
// TCB and the scheduler tests it during a partial switch, restoring the
// thread's context only when its message has arrived.
type psPolicy struct {
	sched *ult.Sched
	ep    *comm.Endpoint
}

func (p *psPolicy) Kind() PolicyKind { return SchedulerPollsPS }

func (p *psPolicy) external() bool { return false }

func (p *psPolicy) Wait(h *comm.RecvHandle, boostTo int) {
	if h.Done() {
		// Already arrived when the receive was posted: no polling needed
		// and no msgtest consumed (the completion is visible in the TCB).
		p.ep.Wait(h)
		return
	}
	t := p.sched.Current()
	w := psBox(p, t)
	w.h, w.boostTo = h, boostTo
	beginWait(p.ep)
	defer endWait(p.ep, h)
	t.SetOnCancel(w.cancel)
	t.Pending = w.pending
	p.sched.Yield()
	t.SetOnCancel(nil)
	w.h = nil
}

// psWait is the thread's reusable Scheduler-polls (PS) wait state: the
// pending check the scheduler runs at partial switches and the cancel hook
// are materialized once per thread (see ult.TCB.WaitBox) instead of fresh
// closures per blocking receive.
type psWait struct {
	p       *psPolicy
	t       *ult.TCB
	h       *comm.RecvHandle
	boostTo int
	pending func() bool
	cancel  func()
}

func psBox(p *psPolicy, t *ult.TCB) *psWait {
	if w, ok := t.WaitBox.(*psWait); ok && w.p == p {
		return w
	}
	w := &psWait{p: p, t: t}
	w.pending = func() bool {
		if !w.p.ep.Test(w.h) {
			return false
		}
		if w.boostTo != noBoost {
			w.t.SetPriority(w.boostTo)
		}
		return true
	}
	w.cancel = func() { w.p.ep.CancelRecv(w.h) }
	t.WaitBox = w
	return w
}

// wqEntry is one outstanding request on the Scheduler-polls (WQ) list: an
// intrusive doubly-linked node so completion and cancellation unlink in
// O(1), stamped with a registration sequence number (the paper's algorithm
// scans — and therefore completes — in registration order).
type wqEntry struct {
	h       *comm.RecvHandle
	t       *ult.TCB
	boostTo int
	seq     uint64
	done    bool // drained from the ready-list, awaiting completion (WQAny)
	prev    *wqEntry
	next    *wqEntry
}

// wqPolicy is Scheduler polls (WQ): waiting threads block on a queue of
// polling requests that the scheduler examines at every scheduling point —
// testing each request in turn (NX style), or with one msgtestany call
// (MPI style) when useTestAny is set.
//
// The seed re-tested every outstanding request at every scheduling point,
// O(waiters) per point even when nothing had arrived. This version learns
// completions from the endpoint's ready-list (DrainCompletions), so a
// scheduling point inspects only handles that actually completed. The cost
// model is unaffected: simulated msgtest/msgtestany *charges* are issued
// exactly as the algorithm prescribes — per entry under WQ, one call per
// point under WQAny — so the paper's Tables 3–5 counts are unchanged. The
// one mode that still tests each handle for real is WQ under simulation,
// where each charge is a yield point and the delivery interleaving it
// induces is part of the bit-identical determinism witness.
type wqPolicy struct {
	sched      *ult.Sched
	ep         *comm.Endpoint
	useTestAny bool
	det        bool // deterministic host: preserve exact charge interleaving
	tracking   bool // ready-list draining enabled

	head, tail *wqEntry
	index      map[*comm.RecvHandle]*wqEntry
	count      int
	seq        uint64

	// doneList holds drained-but-not-yet-completed entries: WQAny completes
	// one request per scheduling point (as msgtestany reports one), so the
	// rest must stay discoverable across calls.
	doneList []*wqEntry
	drain    []*comm.RecvHandle // reusable DrainCompletions buffer
	free     *wqEntry           // entry freelist
}

func (p *wqPolicy) Kind() PolicyKind {
	if p.useTestAny {
		return SchedulerPollsWQAny
	}
	return SchedulerPollsWQ
}

func (p *wqPolicy) external() bool { return p.count > 0 }

func (p *wqPolicy) Wait(h *comm.RecvHandle, boostTo int) {
	if p.ep.Test(h) {
		return
	}
	host := p.ep.Host()
	host.Charge(host.Model().RegisterPoll)
	t := p.sched.Current()
	e := p.newEntry(h, t, boostTo)
	p.pushBack(e)
	p.index[h] = e
	w := wqBox(p, t)
	w.h = h
	beginWait(p.ep)
	defer endWait(p.ep, h)
	t.SetOnCancel(w.cancel)
	p.sched.Block()
	t.SetOnCancel(nil)
	w.h = nil
}

// wqWait is the thread's reusable Scheduler-polls (WQ) wait state: the
// cancel hook is materialized once per thread (see ult.TCB.WaitBox) instead
// of a fresh closure per blocking receive.
type wqWait struct {
	p      *wqPolicy
	t      *ult.TCB
	h      *comm.RecvHandle
	cancel func()
}

func wqBox(p *wqPolicy, t *ult.TCB) *wqWait {
	if w, ok := t.WaitBox.(*wqWait); ok && w.p == p {
		return w
	}
	w := &wqWait{p: p, t: t}
	w.cancel = func() {
		w.p.removeEntry(w.h, w.t)
		w.p.ep.CancelRecv(w.h)
	}
	t.WaitBox = w
	return w
}

// preSchedule is the scheduling-point walk installed on the scheduler.
func (p *wqPolicy) preSchedule() {
	if p.count == 0 {
		if p.tracking {
			// Nothing registered, but completions from unregistered receives
			// (first-test hits, probes, timeouts) still queue on the
			// ready-list: drain and discard to keep it bounded.
			p.drainDone()
		}
		return
	}
	switch {
	case p.useTestAny:
		p.scanAny()
	case p.det:
		p.scanExact()
	default:
		p.scanBatch()
	}
}

// scanExact is WQ under simulation: test every outstanding request in turn,
// as the paper describes for systems without msgtestany ("all outstanding
// messages are checked at each context switch"). Each Test charges — and
// under simulation, yields — individually; a delivery landing during one
// charge is visible to the tests that follow, which is why this sequence
// cannot be batched without changing the witness.
func (p *wqPolicy) scanExact() {
	for e := p.head; e != nil; {
		next := e.next
		if p.ep.Test(e.h) {
			p.completeEntry(e)
		}
		e = next
	}
}

// scanBatch is WQ on a real host: learn completions from the drained
// ready-list, then issue the same counters and charges the per-entry test
// loop would have — n msgtest calls, misses for the still-pending ones —
// in one bulk charge (real-mode Charge has no yield semantics to preserve).
func (p *wqPolicy) scanBatch() {
	p.drainDone()
	n := p.count
	hits := len(p.doneList)
	p.ep.ChargeTestBatch(hits, n-hits)
	for i, e := range p.doneList {
		p.ep.Observe(e.h)
		p.completeEntry(e)
		p.doneList[i] = nil
	}
	p.doneList = p.doneList[:0]
}

// scanAny is WQAny in both modes: one msgtestany charge over the current
// list, then complete the registration-order-first completed request, as
// MPI_TESTANY would have reported. The charge is issued before the drain:
// under simulation the charge advances virtual time, and a delivery landing
// during it was visible to the old post-charge scan — by drain time it is
// on the ready-list, so the drain sees exactly the same done-set.
func (p *wqPolicy) scanAny() {
	p.ep.ChargeTestAny(p.count)
	p.drainDone()
	if len(p.doneList) == 0 {
		return
	}
	bi := 0
	for i, e := range p.doneList[1:] {
		if e.seq < p.doneList[bi].seq {
			bi = i + 1
		}
	}
	e := p.doneList[bi]
	last := len(p.doneList) - 1
	p.doneList[bi] = p.doneList[last]
	p.doneList[last] = nil
	p.doneList = p.doneList[:last]
	p.ep.Observe(e.h)
	p.completeEntry(e)
}

// drainDone pulls completion notifications from the endpoint and marks the
// corresponding registered entries done. Handles not in the index belong to
// receives that completed outside the polling list and are ignored.
func (p *wqPolicy) drainDone() {
	p.drain = p.ep.DrainCompletions(p.drain[:0])
	for i, h := range p.drain {
		if e := p.index[h]; e != nil && !e.done {
			e.done = true
			p.doneList = append(p.doneList, e)
		}
		p.drain[i] = nil
	}
}

// completeEntry unlinks e and readies its thread, applying any boost. The
// caller is responsible for e's doneList slot, if any.
func (p *wqPolicy) completeEntry(e *wqEntry) {
	t, boostTo := e.t, e.boostTo
	p.unlink(e)
	p.freeEntry(e)
	if boostTo != noBoost {
		t.SetPriority(boostTo)
	}
	p.sched.Unblock(t)
}

// removeEntry drops the entry registered for h by t, if still present
// (cancellation path).
func (p *wqPolicy) removeEntry(h *comm.RecvHandle, t *ult.TCB) {
	e := p.index[h]
	if e == nil || e.t != t {
		return
	}
	if e.done {
		for i, d := range p.doneList {
			if d == e {
				last := len(p.doneList) - 1
				p.doneList[i] = p.doneList[last]
				p.doneList[last] = nil
				p.doneList = p.doneList[:last]
				break
			}
		}
	}
	p.unlink(e)
	p.freeEntry(e)
}

func (p *wqPolicy) pushBack(e *wqEntry) {
	e.prev = p.tail
	if p.tail != nil {
		p.tail.next = e
	} else {
		p.head = e
	}
	p.tail = e
	p.count++
}

func (p *wqPolicy) unlink(e *wqEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(p.index, e.h)
	p.count--
}

func (p *wqPolicy) newEntry(h *comm.RecvHandle, t *ult.TCB, boostTo int) *wqEntry {
	e := p.free
	if e != nil {
		p.free = e.next
		e.next = nil
	} else {
		e = &wqEntry{}
	}
	p.seq++
	e.h, e.t, e.boostTo, e.seq, e.done = h, t, boostTo, p.seq, false
	return e
}

func (p *wqPolicy) freeEntry(e *wqEntry) {
	*e = wqEntry{}
	e.next = p.free
	p.free = e
}
