package core

import (
	"math"

	"chant/internal/comm"
	"chant/internal/ult"
)

// PolicyKind names one of the message-polling scheduling algorithms the
// paper measures in Section 4.2.
type PolicyKind int

const (
	// ThreadPolls: the waiting thread stays on the ready queue and tests
	// its own request each time it is rescheduled (Figure 5). Works with
	// any thread package.
	ThreadPolls PolicyKind = iota
	// SchedulerPollsPS: the request lives in the waiting thread's TCB; the
	// scheduler tests it during a partial context switch and only restores
	// the thread when the message has arrived. Fastest, but requires a
	// modifiable scheduler.
	SchedulerPollsPS
	// SchedulerPollsWQ: waiting threads move to a blocked queue and the
	// scheduler walks the whole outstanding-request list, testing each
	// request in turn, at every scheduling point (Figure 6).
	SchedulerPollsWQ
	// SchedulerPollsWQAny: the WQ algorithm "as originally intended" — a
	// single msgtestany call per scheduling point instead of one test per
	// request. This is the paper's Section 4.2 hypothesis about running WQ
	// over MPI's MPI_TESTANY.
	SchedulerPollsWQAny
)

func (k PolicyKind) String() string {
	switch k {
	case ThreadPolls:
		return "thread-polls"
	case SchedulerPollsPS:
		return "scheduler-polls-ps"
	case SchedulerPollsWQ:
		return "scheduler-polls-wq"
	case SchedulerPollsWQAny:
		return "scheduler-polls-wq-any"
	}
	return "invalid"
}

// noBoost disables the priority boost on wait completion.
const noBoost = math.MinInt

// policy is the strategy object behind every blocking receive: Wait parks
// the calling thread until h completes, under the policy's polling rules.
// boostTo, unless noBoost, is a priority assigned to the thread the moment
// its message is noticed — the paper's server-thread boost ("assumes a
// higher scheduling priority ... ensuring that it is scheduled at the next
// context switch point").
type policy interface {
	Kind() PolicyKind
	Wait(h *comm.RecvHandle, boostTo int)
	// external reports whether the policy holds outstanding requests that
	// an arriving message could complete (used for idle/deadlock decisions).
	external() bool
}

func newPolicy(kind PolicyKind, sched *ult.Sched, ep *comm.Endpoint) policy {
	switch kind {
	case ThreadPolls:
		return &tpPolicy{sched: sched, ep: ep}
	case SchedulerPollsPS:
		return &psPolicy{sched: sched, ep: ep}
	case SchedulerPollsWQ, SchedulerPollsWQAny:
		p := &wqPolicy{sched: sched, ep: ep, useTestAny: kind == SchedulerPollsWQAny}
		sched.SetPreSchedule(p.preSchedule)
		sched.SetExternalWaiters(p.external)
		return p
	}
	panic("core: unknown polling policy")
}

// waitAccounting brackets a wait with the Figure-13 waiting-thread
// integrator, robustly against cancellation unwinds. The wait ends when
// the request stops being outstanding — the message's arrival time — not
// when the thread resumes, matching the paper's "threads waiting on
// outstanding receive requests".
func waitAccounting(ep *comm.Endpoint, h *comm.RecvHandle) func() {
	ctrs := ep.Counters()
	ctrs.WaitBegin(ep.Host().Now())
	return func() {
		at := ep.Host().Now()
		if h.Done() && h.CompletedAt() < at {
			at = h.CompletedAt()
		}
		ctrs.WaitEndAt(at)
	}
}

// tpPolicy is Thread polls (Figure 5): test, and while incomplete, yield
// and test again on every reschedule.
type tpPolicy struct {
	sched *ult.Sched
	ep    *comm.Endpoint
}

func (p *tpPolicy) Kind() PolicyKind { return ThreadPolls }

func (p *tpPolicy) external() bool { return false }

func (p *tpPolicy) Wait(h *comm.RecvHandle, boostTo int) {
	if p.ep.Test(h) {
		return
	}
	t := p.sched.Current()
	end := waitAccounting(p.ep, h)
	defer end()
	t.SetOnCancel(func() { p.ep.CancelRecv(h) })
	for {
		p.sched.Yield()
		if p.ep.Test(h) {
			break
		}
	}
	t.SetOnCancel(nil)
	// The thread is already running when it notices completion, so the
	// boost is moot under Thread polls.
}

// psPolicy is Scheduler polls (PS): the pending request is stored in the
// TCB and the scheduler tests it during a partial switch, restoring the
// thread's context only when its message has arrived.
type psPolicy struct {
	sched *ult.Sched
	ep    *comm.Endpoint
}

func (p *psPolicy) Kind() PolicyKind { return SchedulerPollsPS }

func (p *psPolicy) external() bool { return false }

func (p *psPolicy) Wait(h *comm.RecvHandle, boostTo int) {
	if h.Done() {
		// Already arrived when the receive was posted: no polling needed
		// and no msgtest consumed (the completion is visible in the TCB).
		p.ep.Wait(h)
		return
	}
	t := p.sched.Current()
	end := waitAccounting(p.ep, h)
	defer end()
	t.SetOnCancel(func() { p.ep.CancelRecv(h) })
	t.Pending = func() bool {
		if !p.ep.Test(h) {
			return false
		}
		if boostTo != noBoost {
			t.SetPriority(boostTo)
		}
		return true
	}
	p.sched.Yield()
	t.SetOnCancel(nil)
}

// wqEntry is one outstanding request on the Scheduler-polls (WQ) list.
type wqEntry struct {
	h       *comm.RecvHandle
	t       *ult.TCB
	boostTo int
}

// wqPolicy is Scheduler polls (WQ): waiting threads block on a queue of
// polling requests that the scheduler examines at every scheduling point —
// testing each request in turn (NX style), or with one msgtestany call
// (MPI style) when useTestAny is set.
type wqPolicy struct {
	sched      *ult.Sched
	ep         *comm.Endpoint
	entries    []wqEntry
	scratch    []*comm.RecvHandle // reused handle slice for TestAny
	useTestAny bool
}

func (p *wqPolicy) Kind() PolicyKind {
	if p.useTestAny {
		return SchedulerPollsWQAny
	}
	return SchedulerPollsWQ
}

func (p *wqPolicy) external() bool { return len(p.entries) > 0 }

func (p *wqPolicy) Wait(h *comm.RecvHandle, boostTo int) {
	if p.ep.Test(h) {
		return
	}
	host := p.ep.Host()
	host.Charge(host.Model().RegisterPoll)
	t := p.sched.Current()
	p.entries = append(p.entries, wqEntry{h: h, t: t, boostTo: boostTo})
	end := waitAccounting(p.ep, h)
	defer end()
	t.SetOnCancel(func() {
		p.removeThread(t)
		p.ep.CancelRecv(h)
	})
	p.sched.Block()
	t.SetOnCancel(nil)
}

// preSchedule is the scheduling-point walk installed on the scheduler.
func (p *wqPolicy) preSchedule() {
	if len(p.entries) == 0 {
		return
	}
	if p.useTestAny {
		p.scratch = p.scratch[:0]
		for _, e := range p.entries {
			p.scratch = append(p.scratch, e.h)
		}
		idx := p.ep.TestAny(p.scratch)
		if idx >= 0 {
			p.complete(idx)
		}
		return
	}
	// Test every outstanding request in turn, as the paper describes for
	// systems without msgtestany: "all outstanding messages are checked at
	// each context switch".
	i := 0
	for i < len(p.entries) {
		if p.ep.Test(p.entries[i].h) {
			p.complete(i)
			continue // the next entry shifted into slot i
		}
		i++
	}
}

// complete removes entry i and readies its thread, applying any boost.
func (p *wqPolicy) complete(i int) {
	e := p.entries[i]
	p.entries = append(p.entries[:i], p.entries[i+1:]...)
	if e.boostTo != noBoost {
		e.t.SetPriority(e.boostTo)
	}
	p.sched.Unblock(e.t)
}

// removeThread drops any entry belonging to t (cancellation path).
func (p *wqPolicy) removeThread(t *ult.TCB) {
	for i, e := range p.entries {
		if e.t == t {
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
			return
		}
	}
}
