package faults

import (
	"reflect"
	"testing"
	"testing/quick"

	"chant/internal/comm"
	"chant/internal/sim"
)

func lossyCfg() Config {
	return Config{
		Default: LinkRates{
			DropProb:  0.2,
			DupProb:   0.1,
			DelayProb: 0.3,
			DelayMax:  400 * sim.Microsecond,
		},
	}
}

// replay feeds a fixed message schedule through a fresh plan and returns
// the recorded event stream.
func replay(cfg Config, seed uint64, msgs int) []Event {
	p := New(cfg, seed)
	now := sim.Time(0)
	for i := 0; i < msgs; i++ {
		src := comm.Addr{PE: int32(i % 3), Proc: 0}
		dst := comm.Addr{PE: int32((i + 1) % 3), Proc: 0}
		p.Decide(now, src, dst, 64+i)
		now = now.Add(10 * sim.Microsecond)
	}
	return p.Events()
}

// TestFaultStreamDeterministic is the satellite determinism property: for
// any seed, an identical message schedule produces an identical
// drop/delay/duplicate event stream across two independent plans.
func TestFaultStreamDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		return reflect.DeepEqual(replay(lossyCfg(), seed, 200), replay(lossyCfg(), seed, 200))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultStreamVariesWithSeed(t *testing.T) {
	if reflect.DeepEqual(replay(lossyCfg(), 1, 500), replay(lossyCfg(), 2, 500)) {
		t.Fatal("different seeds produced identical 500-message fault streams")
	}
}

func TestLinkStreamsIndependent(t *testing.T) {
	// The same draw index on different links must not be correlated: decide
	// 100 messages on each of two links and compare the decision kinds.
	p := New(lossyCfg(), 42)
	a := comm.Addr{PE: 0, Proc: 0}
	b := comm.Addr{PE: 1, Proc: 0}
	c := comm.Addr{PE: 2, Proc: 0}
	same := 0
	for i := 0; i < 100; i++ {
		d1 := p.Decide(sim.Time(i), a, b, 64)
		d2 := p.Decide(sim.Time(i), a, c, 64)
		if d1.Drop == d2.Drop && d1.Duplicate == d2.Duplicate && (d1.Delay > 0) == (d2.Delay > 0) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("links a->b and a->c made identical decisions for 100 messages")
	}
}

func TestPartitionDropsEverything(t *testing.T) {
	cfg := Config{Cuts: []Cut{{A: 0, B: 1, From: 10, To: 20}}}
	p := New(cfg, 7)
	a := comm.Addr{PE: 0, Proc: 0}
	b := comm.Addr{PE: 1, Proc: 0}
	if d := p.Decide(5, a, b, 8); d.Drop {
		t.Error("message before the cut window was dropped")
	}
	if d := p.Decide(15, a, b, 8); !d.Drop || d.Kind != KindPartition {
		t.Errorf("message inside the cut window survived: %+v", d)
	}
	if d := p.Decide(15, b, a, 8); !d.Drop {
		t.Error("cut is not bidirectional")
	}
	if d := p.Decide(25, a, b, 8); d.Drop {
		t.Error("message after the cut window was dropped")
	}
	if got := p.Stats().PartitionDrops; got != 2 {
		t.Errorf("PartitionDrops = %d, want 2", got)
	}
}

func TestCrashDropsAfterInstant(t *testing.T) {
	cfg := Config{Crashes: []Crash{{PE: 1, At: 100}}}
	p := New(cfg, 7)
	a := comm.Addr{PE: 0, Proc: 0}
	b := comm.Addr{PE: 1, Proc: 0}
	if d := p.Decide(50, a, b, 8); d.Drop {
		t.Error("message before the crash was dropped")
	}
	if d := p.Decide(150, a, b, 8); !d.Drop || d.Kind != KindCrash {
		t.Errorf("message to the crashed PE survived: %+v", d)
	}
	if !p.DeadAt(1, 150) || p.DeadAt(1, 50) || p.DeadAt(0, 150) {
		t.Error("DeadAt wrong")
	}
	crashes := p.Crashes()
	if len(crashes) != 1 || crashes[0].PE != 1 || crashes[0].At != 100 {
		t.Errorf("Crashes() = %+v", crashes)
	}
}

func TestStallDelaysWithoutDropping(t *testing.T) {
	cfg := Config{Stalls: []Stall{{PE: 1, From: 0, To: 1000}}}
	p := New(cfg, 7)
	d := p.Decide(500, comm.Addr{PE: 0}, comm.Addr{PE: 1}, 8)
	if d.Drop || d.Delay <= 0 || d.Kind != KindStall {
		t.Errorf("stalled delivery: %+v", d)
	}
	// Delivery is pushed past the stall window's end.
	if got := sim.Time(500).Add(d.Delay); got < 1000 {
		t.Errorf("delivery at %v, before stall end", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	events := replay(lossyCfg(), 99, 400)
	p := New(lossyCfg(), 99)
	now := sim.Time(0)
	for i := 0; i < 400; i++ {
		src := comm.Addr{PE: int32(i % 3), Proc: 0}
		dst := comm.Addr{PE: int32((i + 1) % 3), Proc: 0}
		p.Decide(now, src, dst, 64+i)
		now = now.Add(10 * sim.Microsecond)
	}
	st := p.Stats()
	if st.Messages != 400 {
		t.Errorf("Messages = %d, want 400", st.Messages)
	}
	if st.Drops == 0 || st.Dups == 0 || st.Delays == 0 {
		t.Errorf("expected all fault kinds at these rates: %+v", st)
	}
	var drops, dups, delays uint64
	for _, e := range events {
		switch e.Kind {
		case KindDrop:
			drops++
		case KindDup:
			dups++
		case KindDelay:
			delays++
		}
	}
	if drops != st.Drops || dups != st.Dups || delays != st.Delays {
		t.Errorf("event stream (%d/%d/%d) disagrees with stats %+v", drops, dups, delays, st)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestCrashIntervalWithRestart(t *testing.T) {
	cfg := Config{Crashes: []Crash{{PE: 1, At: 100, RestartAfter: 50}}}
	p := New(cfg, 7)
	a := comm.Addr{PE: 0, Proc: 0}
	b := comm.Addr{PE: 1, Proc: 0}
	if p.DeadAt(1, 99) {
		t.Error("dead before the crash instant")
	}
	if !p.DeadAt(1, 100) || !p.DeadAt(1, 149) {
		t.Error("not dead inside the outage window")
	}
	if p.DeadAt(1, 150) || p.DeadAt(1, 1000) {
		t.Error("still dead at or after the recovery instant")
	}
	if d := p.Decide(120, a, b, 8); !d.Drop || d.Kind != KindCrash {
		t.Errorf("message during the outage survived: %+v", d)
	}
	if d := p.Decide(200, a, b, 8); d.Drop {
		t.Errorf("message after recovery was dropped: %+v", d)
	}
	crashes := p.Crashes()
	if len(crashes) != 1 || crashes[0].RestartAfter != 50 {
		t.Errorf("Crashes() lost the recover time: %+v", crashes)
	}
}

func TestWitnessCrashRecoverPairs(t *testing.T) {
	p := New(Config{}, 7)
	p.WitnessCrash(2, 100, 50)
	p.WitnessRecover(2, 150)
	evs := p.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d witness events, want 2", len(evs))
	}
	c, r := evs[0], evs[1]
	if c.Kind != KindCrash || c.At != 100 || c.Delay != 50 || c.Src.PE != 2 {
		t.Errorf("crash event = %+v", c)
	}
	if r.Kind != KindRecover || r.At != 150 || r.Src.PE != 2 {
		t.Errorf("recover event = %+v", r)
	}
	if c.Seq != 1 || r.Seq != 2 {
		t.Errorf("witness events out of sequence: %d, %d", c.Seq, r.Seq)
	}
	st := p.Stats()
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}
