// Package faults is the deterministic fault-injection plane: a seeded,
// schedulable description of everything that can go wrong on the wire —
// message drop, duplication, delay jitter (and therefore reordering), link
// partition, and processing-element crash or stall — that transports consult
// on every delivery. All randomness flows from per-link xorshift streams
// derived from one seed, so a given seed and schedule produce exactly the
// same fault event sequence on every run: chaos experiments are as
// reproducible as the fault-free ones, which is what lets the soak test
// assert bitwise determinism under 5% message loss.
//
// The plan is purely decision-making: it never touches the clock, spawns no
// goroutines, and iterates no maps, so it stays inside the detlint
// determinism envelope without annotations. Transports own the mechanics
// (actually dropping, re-scheduling, failing handles); the plan only answers
// "what happens to this message?" and records what it answered.
package faults

import (
	"fmt"
	"sort"
	"sync"

	"chant/internal/comm"
	"chant/internal/sim"
)

// Kind labels one injected fault event.
type Kind uint8

const (
	// KindDrop is a message silently discarded by the injector.
	KindDrop Kind = iota
	// KindDup is a message delivered twice.
	KindDup
	// KindDelay is a message delivered late by a jittered amount.
	KindDelay
	// KindPartition is a message discarded because its link is cut.
	KindPartition
	// KindCrash is a message discarded because an end PE is dead.
	KindCrash
	// KindStall is a message held until a stalled PE resumes.
	KindStall
	// KindRecover is a PE coming back after a crash with a RestartAfter
	// delay. It is a witness-stream event, never a message decision.
	KindRecover
)

func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDup:
		return "dup"
	case KindDelay:
		return "delay"
	case KindPartition:
		return "partition"
	case KindCrash:
		return "crash"
	case KindStall:
		return "stall"
	case KindRecover:
		return "recover"
	}
	return "invalid"
}

// Link names a directed PE-to-PE wire. Fault streams are per-link so the
// decision sequence for one link depends only on that link's traffic order,
// never on how traffic interleaves across links.
type Link struct {
	SrcPE, DstPE int32
}

// LinkRates are the stochastic fault probabilities for one link.
type LinkRates struct {
	// DropProb is the probability a message is discarded.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayProb is the probability a message receives extra latency drawn
	// uniformly from (0, DelayMax]. Delay jitter is also the reordering
	// mechanism: two back-to-back messages whose jitters invert their
	// arrival order are reordered on the wire.
	DelayProb float64
	// DelayMax bounds the injected extra latency.
	DelayMax sim.Duration
}

// Cut severs the (bidirectional) pair of links between PEs A and B over
// [From, To). A zero To cuts forever.
type Cut struct {
	A, B     int32
	From, To sim.Time
}

func (c Cut) active(now sim.Time) bool {
	return now >= c.From && (c.To == 0 || now < c.To)
}

// Crash kills PE at virtual time At: every message to or from it during the
// outage is discarded, and runtimes that consult the plan cancel its threads.
// A positive RestartAfter schedules recovery: the PE is dead only over
// [At, At+RestartAfter), after which a consulting runtime restarts it (from
// its latest checkpoint, when one exists). Zero keeps the crash permanent.
type Crash struct {
	PE           int32
	At           sim.Time
	RestartAfter sim.Duration
}

// deadAt reports whether this crash keeps pe dead at time now.
func (c Crash) deadAt(pe int32, now sim.Time) bool {
	if c.PE != pe || now < c.At {
		return false
	}
	return c.RestartAfter <= 0 || now < c.At.Add(c.RestartAfter)
}

// Stall freezes PE's wires over [From, To): messages touching it are held
// and delivered only after the stall ends (plus their normal latency).
type Stall struct {
	PE       int32
	From, To sim.Time
}

// Config is a complete fault schedule.
type Config struct {
	// Default applies to every link without a PerLink override.
	Default LinkRates
	// PerLink overrides rates for specific directed links.
	PerLink map[Link]LinkRates
	// Cuts are the scheduled partitions.
	Cuts []Cut
	// Crashes are the scheduled PE failures.
	Crashes []Crash
	// Stalls are the scheduled PE stall windows.
	Stalls []Stall
}

// Decision is the plan's answer for one message.
type Decision struct {
	// Drop discards the message entirely (Kind says why).
	Drop bool
	// Kind labels the fault when Drop is set or a delay was injected.
	Kind Kind
	// Delay is extra latency to add before delivery (stall or jitter).
	Delay sim.Duration
	// Duplicate requests a second delivery, DupDelay after the first.
	Duplicate bool
	// DupDelay separates the duplicate from the original so the two copies
	// are distinguishable events in the schedule.
	DupDelay sim.Duration
}

// Event is one recorded fault, in decision order. The event stream is the
// determinism witness: two runs with the same seed and schedule must
// produce identical streams.
type Event struct {
	Seq      uint64
	At       sim.Time
	Src, Dst comm.Addr
	Kind     Kind
	Delay    sim.Duration
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %v %v->%v %v +%v", e.Seq, e.At, e.Src, e.Dst, e.Kind, e.Delay)
}

// Stats summarizes a plan's injected faults. New fields append only — the
// chaos invariance hashes fold the whole struct in, so existing fields (and
// their order) are part of the pinned behaviour.
type Stats struct {
	Messages       uint64 // messages the plan decided on
	Drops          uint64 // stochastic drops
	Dups           uint64
	Delays         uint64
	PartitionDrops uint64
	CrashDrops     uint64
	StallDelays    uint64
	Crashes        uint64 // witnessed PE crash events
	Recoveries     uint64 // witnessed PE recover events
}

// linkState is one link's private decision stream.
type linkState struct {
	rng *sim.RNG
}

// Plan is an instantiated fault schedule. It is safe for concurrent use
// (real-time transports may deliver from several goroutines); under the
// single-threaded simulation kernel the lock is uncontended.
type Plan struct {
	cfg  Config
	seed uint64

	mu     sync.Mutex
	links  map[Link]*linkState
	events []Event
	seq    uint64
	stats  Stats
}

// New instantiates cfg under seed. The same (cfg, seed) pair always yields
// a plan making identical decisions for identical per-link traffic.
func New(cfg Config, seed uint64) *Plan {
	return &Plan{cfg: cfg, seed: seed, links: make(map[Link]*linkState)}
}

// Seed reports the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// rates reports the effective rates for a link.
func (p *Plan) rates(l Link) LinkRates {
	if r, ok := p.cfg.PerLink[l]; ok {
		return r
	}
	return p.cfg.Default
}

// linkStream returns (creating on first use) the link's decision stream.
// The stream seed mixes the plan seed with the link name via splitmix-style
// constants so adjacent links decorrelate.
func (p *Plan) linkStream(l Link) *linkState {
	if s, ok := p.links[l]; ok {
		return s
	}
	h := p.seed
	h ^= uint64(uint32(l.SrcPE)) * 0x9E3779B97F4A7C15
	h ^= uint64(uint32(l.DstPE)) * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	s := &linkState{rng: sim.NewRNG(h | 1)}
	p.links[l] = s
	return s
}

// DeadAt reports whether pe is down at virtual time now: at or past a
// scheduled crash and, when the crash carries a RestartAfter delay, before
// its recovery instant. A crash without RestartAfter is permanent.
func (p *Plan) DeadAt(pe int32, now sim.Time) bool {
	for _, c := range p.cfg.Crashes {
		if c.deadAt(pe, now) {
			return true
		}
	}
	return false
}

// CutAt reports whether the (a, b) pair is partitioned at time now.
func (p *Plan) CutAt(a, b int32, now sim.Time) bool {
	for _, c := range p.cfg.Cuts {
		if ((c.A == a && c.B == b) || (c.A == b && c.B == a)) && c.active(now) {
			return true
		}
	}
	return false
}

// stallUntil reports the latest stall end covering pe at now (zero if none).
func (p *Plan) stallUntil(pe int32, now sim.Time) sim.Time {
	var until sim.Time
	for _, s := range p.cfg.Stalls {
		if s.PE == pe && now >= s.From && now < s.To && s.To > until {
			until = s.To
		}
	}
	return until
}

// Crashes reports the crash schedule sorted by time (then PE), the order a
// runtime should arm its crash events in. Each entry carries its recover
// time as Crash.RestartAfter (zero for a permanent crash).
func (p *Plan) Crashes() []Crash {
	out := make([]Crash, len(p.cfg.Crashes))
	copy(out, p.cfg.Crashes)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].PE < out[j].PE
	})
	return out
}

// Decide answers what happens to a message from src to dst of the given
// size at virtual time now, recording the fault events immediately. Exactly
// three random draws are consumed per stochastic decision regardless of
// outcome, so a link's stream stays aligned whatever earlier messages
// suffered.
func (p *Plan) Decide(now sim.Time, src, dst comm.Addr, size int) Decision {
	d, evs := p.DecideDeferred(now, src, dst, size)
	p.Commit(evs)
	return d
}

// DecideDeferred is Decide split from its event-stream side effect: it makes
// the (per-link deterministic) decision now but returns the would-be fault
// events unsequenced instead of recording them. The caller passes them to
// Commit in global event order — under the parallel simulation kernel that
// means through Kernel.Journal, so the witness stream is appended in the
// merged order and stays bit-identical to a sequential run. Stats update
// immediately; they are order-independent sums.
func (p *Plan) DecideDeferred(now sim.Time, src, dst comm.Addr, size int) (Decision, []Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Messages++

	var evs []Event
	note := func(k Kind, delay sim.Duration) {
		evs = append(evs, Event{At: now, Src: src, Dst: dst, Kind: k, Delay: delay})
	}

	// Deterministic schedule faults take priority over stochastic ones and
	// consume no randomness.
	if p.DeadAt(src.PE, now) || p.DeadAt(dst.PE, now) {
		p.stats.CrashDrops++
		note(KindCrash, 0)
		return Decision{Drop: true, Kind: KindCrash}, evs
	}
	if p.CutAt(src.PE, dst.PE, now) {
		p.stats.PartitionDrops++
		note(KindPartition, 0)
		return Decision{Drop: true, Kind: KindPartition}, evs
	}

	var d Decision
	if until := p.stallUntil(src.PE, now); until > now {
		d.Delay += until.Sub(now)
	}
	if until := p.stallUntil(dst.PE, now); until > now {
		if s := until.Sub(now); s > d.Delay {
			d.Delay = s
		}
	}
	if d.Delay > 0 {
		d.Kind = KindStall
		p.stats.StallDelays++
		note(KindStall, d.Delay)
	}

	r := p.rates(Link{SrcPE: src.PE, DstPE: dst.PE})
	s := p.linkStream(Link{SrcPE: src.PE, DstPE: dst.PE})
	uDrop := s.rng.Float64()
	uDup := s.rng.Float64()
	uDelay := s.rng.Float64()

	if r.DropProb > 0 && uDrop < r.DropProb {
		p.stats.Drops++
		note(KindDrop, 0)
		return Decision{Drop: true, Kind: KindDrop}, evs
	}
	if r.DupProb > 0 && uDup < r.DupProb {
		d.Duplicate = true
		// Reuse the delay draw to place the duplicate: a fraction of
		// DelayMax, floored at one nanosecond so the copies never tie.
		d.DupDelay = sim.Duration(float64(max64(int64(r.DelayMax), 1))*uDelay) + 1
		p.stats.Dups++
		note(KindDup, d.DupDelay)
	}
	if r.DelayProb > 0 && r.DelayMax > 0 && uDelay < r.DelayProb {
		extra := sim.Duration(float64(r.DelayMax)*uDrop) + 1
		d.Delay += extra
		if d.Kind != KindStall {
			d.Kind = KindDelay
		}
		p.stats.Delays++
		note(KindDelay, extra)
	}
	return d, evs
}

// WitnessCrash records a PE crash on the witness stream at the instant the
// runtime executes it. The event's Delay field carries the recover time
// (RestartAfter; zero for a permanent crash), so crash/recover pairs are
// readable from the stream alone. Call it in global event order — runtimes
// call it from the crash's own kernel callback, which is globally ordered
// under both the sequential and the parallel kernel.
func (p *Plan) WitnessCrash(pe int32, at sim.Time, restartAfter sim.Duration) {
	a := comm.Addr{PE: pe, Proc: -1}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Crashes++
	p.seq++
	p.events = append(p.events, Event{Seq: p.seq, At: at, Src: a, Dst: a, Kind: KindCrash, Delay: restartAfter})
}

// WitnessRecover records a PE recovery on the witness stream, pairing the
// crash event that scheduled it. Same ordering contract as WitnessCrash.
func (p *Plan) WitnessRecover(pe int32, at sim.Time) {
	a := comm.Addr{PE: pe, Proc: -1}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Recoveries++
	p.seq++
	p.events = append(p.events, Event{Seq: p.seq, At: at, Src: a, Dst: a, Kind: KindRecover})
}

// Commit appends events returned by DecideDeferred to the witness stream,
// assigning their global sequence numbers. Call it in global event order.
func (p *Plan) Commit(evs []Event) {
	if len(evs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range evs {
		p.seq++
		e.Seq = p.seq
		p.events = append(p.events, e)
	}
}

// Events snapshots the recorded fault event stream.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Stats snapshots the fault counts.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
