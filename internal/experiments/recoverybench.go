// Recovery cost measurements: what the crash-recovery subsystem costs when
// nothing crashes (coordinated-snapshot markers riding the normal RSR
// traffic), what a checkpoint capture costs, and how long a restarted PE
// takes from its restart instant to a completed rejoin handshake. Simulated
// figures are deterministic (the same virtual clocks the invariance tests
// pin); the encode figure is wall-clock, measuring the codec implementation
// like the hot-path suite.
package experiments

import (
	"fmt"
	"time"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/sim"
)

// RecoveryResult is the BENCH_recovery.json payload.
type RecoveryResult struct {
	PEs     int `json:"pes"`
	Workers int `json:"workers_per_pe"`
	Iters   int `json:"iters"`

	// Steady-state marker overhead: the same workload with and without one
	// machine-wide coordinated checkpoint, no crash.
	BaselineVirtualMS   float64 `json:"baseline_virtual_ms"`
	CheckpointVirtualMS float64 `json:"checkpoint_virtual_ms"`
	MarkerOverheadPct   float64 `json:"marker_overhead_pct"`

	// Capture cost: virtual time the initiating thread spends inside
	// Checkpoint() — marker flood, in-flight recording, capture, archive —
	// and the byte size of the archived checkpoints.
	CaptureVirtualUS    float64 `json:"capture_virtual_us"`
	CheckpointBytesPE0  int     `json:"checkpoint_bytes_pe0"`
	CheckpointBytesPE1  int     `json:"checkpoint_bytes_pe1"`
	EncodeNsPerSnapshot float64 `json:"encode_ns_per_snapshot"`

	// Restart-to-rejoin latency: virtual time from the crashed PE's restart
	// instant (crash time + restart delay) until its rejoin handshake
	// completed (Process.RejoinedAt), and the whole-run cost of the outage.
	RejoinLatencyVirtualUS float64 `json:"rejoin_latency_virtual_us"`
	CrashRunVirtualMS      float64 `json:"crash_run_virtual_ms"`
	RestartEpoch           uint32  `json:"restart_epoch"`
}

// recoveryBenchRun executes the two-PE echo workload once. With checkpoint
// set, worker 0 initiates a coordinated snapshot mid-workload; with crash
// set, PE1 additionally crashes after the snapshot and restarts from it.
func recoveryBenchRun(checkpoint, crash bool) (res *core.Result, store *recovery.MemStore, captureUS float64, rt *core.Runtime, err error) {
	const (
		workers = 4
		iters   = 20
		handler = int32(9)
		crashAt = sim.Time(40 * sim.Millisecond)
		restart = 10 * sim.Millisecond
	)
	fcfg := faults.Config{}
	if crash {
		fcfg.Crashes = []faults.Crash{{PE: 1, At: crashAt, RestartAfter: restart}}
	}
	plan := faults.New(fcfg, 1)
	store = recovery.NewMemStore()
	ccfg := core.Config{
		Delivery:   core.DeliverCtx,
		RSRTimeout: 10 * sim.Millisecond,
		RSRRetries: 8,
		RSRBackoff: 100 * sim.Microsecond,
		TermGrace:  10 * sim.Millisecond,
		Faults:     plan,
	}
	if checkpoint {
		ccfg.CheckpointStore = store
		ccfg.RejoinWait = 300 * sim.Millisecond
	}
	rt = core.NewSimRuntime(core.Topology{PEs: 2, ProcsPerPE: 1}, ccfg, machine.Paragon1994())
	rt.RegisterHandler(handler, func(ctx *core.RSRContext) ([]byte, error) {
		return ctx.Req, nil
	})
	mk := func(pe int32) core.MainFunc {
		return func(t *core.Thread) {
			peer := comm.Addr{PE: pe ^ 1, Proc: 0}
			var ws []*core.Thread
			for w := 0; w < workers; w++ {
				w := w
				ws = append(ws, t.Process().CreateLocal(fmt.Sprintf("rb%d", w), func(me *core.Thread) {
					host := me.Process().Endpoint().Host()
					req := make([]byte, 256)
					reply := make([]byte, 256)
					for i := 0; i < iters; i++ {
						host.Compute(500)
						if checkpoint && pe == 0 && w == 0 && i == iters/4 {
							t0 := host.Now()
							if err := me.Checkpoint(); err != nil {
								panic(err)
							}
							captureUS = host.Now().Sub(t0).Micros()
						}
						req[0], req[1] = byte(w), byte(i)
						if _, err := me.Call(peer, handler, req, reply); err != nil {
							panic(err)
						}
						host.Compute(200)
					}
				}, defaultSpawnOpts()))
			}
			for _, w := range ws {
				if _, err := t.JoinLocal(w); err != nil {
					panic(err)
				}
			}
		}
	}
	mains := map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: mk(0),
		{PE: 1, Proc: 0}: mk(1),
	}
	res, err = rt.Run(mains)
	return res, store, captureUS, rt, err
}

// RunRecovery produces the BENCH_recovery.json measurements.
func RunRecovery() RecoveryResult {
	out := RecoveryResult{PEs: 2, Workers: 4, Iters: 20}

	base, _, _, _, err := recoveryBenchRun(false, false)
	if err != nil {
		panic(err)
	}
	out.BaselineVirtualMS = base.VirtualEnd.Millis()

	ck, store, captureUS, _, err := recoveryBenchRun(true, false)
	if err != nil {
		panic(err)
	}
	out.CheckpointVirtualMS = ck.VirtualEnd.Millis()
	out.MarkerOverheadPct = 100 * (out.CheckpointVirtualMS - out.BaselineVirtualMS) / out.BaselineVirtualMS
	out.CaptureVirtualUS = captureUS
	for pe := int32(0); pe < 2; pe++ {
		cp, _, err := store.Latest(comm.Addr{PE: pe, Proc: 0})
		if err != nil {
			panic(err)
		}
		n := len(recovery.Encode(cp))
		if pe == 0 {
			out.CheckpointBytesPE0 = n
		} else {
			out.CheckpointBytesPE1 = n
		}
	}

	// Wall-clock codec cost on PE1's real captured checkpoint.
	cp1, _, err := store.Latest(comm.Addr{PE: 1, Proc: 0})
	if err != nil {
		panic(err)
	}
	const reps = 2000
	//chant:allow-nondet wall-clock benchmark timing
	start := time.Now()
	for i := 0; i < reps; i++ {
		recovery.Encode(cp1)
	}
	//chant:allow-nondet wall-clock benchmark timing
	out.EncodeNsPerSnapshot = float64(time.Since(start).Nanoseconds()) / reps

	cr, _, _, rt, err := recoveryBenchRun(true, true)
	if err != nil {
		panic(err)
	}
	out.CrashRunVirtualMS = cr.VirtualEnd.Millis()
	p1 := rt.Process(comm.Addr{PE: 1, Proc: 0})
	restartAt := sim.Time(40*sim.Millisecond + 10*sim.Millisecond)
	out.RejoinLatencyVirtualUS = p1.RejoinedAt().Sub(restartAt).Micros()
	out.RestartEpoch = p1.Epoch()
	return out
}
