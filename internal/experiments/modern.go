package experiments

import (
	"chant/internal/core"
	"chant/internal/machine"
)

// RunModernContrast re-runs the beta=100 polling sweep on the Modern cost
// model (RDMA-class wire, nanosecond-scale msgtest). The paper's central
// cost asymmetry — an expensive per-request msgtest — disappears on such
// hardware, so the three policies converge: the 1994 conclusion that WQ is
// unusable is an artifact of NX-era testing costs, while the PS-beats-TP
// ordering (partial vs. full switch) persists at much smaller margins.
func RunModernContrast() PollingSweep {
	base := StandardPollingBase
	base.Model = machine.Modern()
	return RunPollingSweep(100, nil, base)
}

// ModernContrastRatios summarizes a modern-model sweep as WQ/PS and TP/PS
// time ratios per alpha, the quantities to compare against the Paragon
// model's.
func ModernContrastRatios(s PollingSweep) (wqOverPS, tpOverPS []float64) {
	ps := s.Rows[core.SchedulerPollsPS]
	wq := s.Rows[core.SchedulerPollsWQ]
	tp := s.Rows[core.ThreadPolls]
	for i := range s.Alphas {
		wqOverPS = append(wqOverPS, wq[i].TimeMS/ps[i].TimeMS)
		tpOverPS = append(tpOverPS, tp[i].TimeMS/ps[i].TimeMS)
	}
	return wqOverPS, tpOverPS
}
