package experiments

import (
	"io"

	"chant/internal/trace"
)

// tracedSpanLimit bounds one traced Table-3 cell. The default cell
// (12 workers x 100 iterations x 2 PEs) emits a few hundred thousand
// spans; a million-span ceiling keeps the worst case bounded without
// truncating the standard workload.
const tracedSpanLimit = 1 << 20

// WritePollingTrace runs one cell of the Table-3 polling experiment with
// span tracing enabled and writes the result as Chrome trace_event JSON
// (loadable at ui.perfetto.dev). The run is fully simulated: timestamps
// are virtual nanoseconds, so the trace is byte-for-byte reproducible for
// a fixed config and seed. It returns the measured row alongside the
// number of spans written and any write error.
func WritePollingTrace(w io.Writer, cfg PollingConfig) (PollingRow, int, error) {
	tr := trace.NewTracer(tracedSpanLimit)
	cfg.Tracer = tr
	row := RunPolling(cfg)
	spans := tr.Snapshot()
	if err := trace.ExportTraceJSON(w, spans); err != nil {
		return row, 0, err
	}
	return row, len(spans), nil
}
