package experiments

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/trace"
	"chant/internal/ult"
)

// determinismRun is everything one simulated run observes: the aggregate
// result, every process's scheduler event stream, and the order thread-local
// destructors fired. Two runs of the same workload must produce identical
// values — that is the determinism guarantee the paper's experiment tables
// rest on, and the one detlint polices statically.
type determinismRun struct {
	VirtualEnd  float64
	Total       trace.Snapshot
	PerProc     map[comm.Addr]trace.Snapshot
	Events      map[comm.Addr][]trace.Event
	Destructors []string
}

// runDeterminismWorkload exercises the machinery where nondeterminism once
// hid: a 4-PE ring exchanging messages, a shared variable whose writes
// invalidate multiple cached copies (directory walk order), and workers with
// several thread-locals carrying destructors (destructor run order).
func runDeterminismWorkload(t *testing.T) determinismRun {
	t.Helper()
	topo := core.Topology{PEs: 4, ProcsPerPE: 1}
	rt := core.NewSimRuntime(topo,
		core.Config{Policy: core.SchedulerPollsPS, Delivery: core.DeliverCtx, EventLogSize: 1 << 14},
		machine.Paragon1994())
	addrs := topo.Addrs()
	n := len(addrs)
	var destructors []string

	const tagTok = 41
	mk := func(idx int) core.MainFunc {
		return func(th *core.Thread) {
			v, err := th.Process().NewShared("x", addrs[0], make([]byte, 8))
			if err != nil {
				panic(err)
			}
			next := addrs[(idx+1)%n]
			prev := addrs[(idx-1+n)%n]
			nextG := core.GlobalID{PE: next.PE, Proc: next.Proc, Thread: 0}
			prevG := core.GlobalID{PE: prev.PE, Proc: prev.Proc, Thread: 0}
			tok := make([]byte, 8)
			// Ring barrier: nobody touches the shared variable until the
			// token proves its home has created it.
			if idx == 0 {
				if err := th.Send(nextG, tagTok, tok); err != nil {
					panic(err)
				}
				if _, _, err := th.Recv(prevG, tagTok, tok); err != nil {
					panic(err)
				}
			} else {
				if _, _, err := th.Recv(prevG, tagTok, tok); err != nil {
					panic(err)
				}
				if err := th.Send(nextG, tagTok, tok); err != nil {
					panic(err)
				}
			}
			buf := make([]byte, 8)
			for r := 0; r < 3; r++ {
				binary.LittleEndian.PutUint64(buf, uint64(idx*10+r))
				if err := v.Write(th, buf); err != nil {
					panic(err)
				}
				if _, err := v.Read(th, buf); err != nil {
					panic(err)
				}
			}
			// Workers with several destructor-bearing thread-locals: their
			// cleanup order must not depend on map iteration.
			var ws []*core.Thread
			for w := 0; w < 2; w++ {
				idx, w := idx, w
				ws = append(ws, th.Process().CreateLocal(fmt.Sprintf("w%d", w), func(me *core.Thread) {
					tcb := me.Process().Sched().Current()
					for _, name := range []string{"alpha", "beta", "gamma"} {
						name := name
						key := ult.NewKey(name, func(any) {
							destructors = append(destructors, fmt.Sprintf("pe%d/w%d:%s", idx, w, name))
						})
						tcb.SetLocal(key, name)
					}
				}, ult.SpawnOpts{}))
			}
			for _, w := range ws {
				if _, err := th.JoinLocal(w); err != nil {
					panic(err)
				}
			}
		}
	}

	mains := make(map[comm.Addr]core.MainFunc, n)
	for i, a := range addrs {
		mains[a] = mk(i)
	}
	res, err := rt.Run(mains)
	if err != nil {
		t.Fatal(err)
	}
	out := determinismRun{
		VirtualEnd:  res.VirtualEnd.Micros(),
		Total:       res.Total,
		PerProc:     res.PerProc,
		Events:      make(map[comm.Addr][]trace.Event, n),
		Destructors: destructors,
	}
	for _, a := range addrs {
		out.Events[a] = rt.Process(a).EventLog().Snapshot()
	}
	return out
}

// TestSimRunsAreDeterministic runs the workload twice and asserts the runs
// are indistinguishable: same virtual end time, same counters, and the same
// scheduler event stream on every PE, event for event.
func TestSimRunsAreDeterministic(t *testing.T) {
	first := runDeterminismWorkload(t)
	second := runDeterminismWorkload(t)
	if first.VirtualEnd != second.VirtualEnd {
		t.Errorf("virtual end diverged: %.3fus vs %.3fus", first.VirtualEnd, second.VirtualEnd)
	}
	if !reflect.DeepEqual(first.Total, second.Total) {
		t.Errorf("total counters diverged:\nrun1: %+v\nrun2: %+v", first.Total, second.Total)
	}
	if !reflect.DeepEqual(first.PerProc, second.PerProc) {
		t.Errorf("per-process counters diverged")
	}
	if !reflect.DeepEqual(first.Destructors, second.Destructors) {
		t.Errorf("thread-local destructor order diverged:\nrun1: %v\nrun2: %v", first.Destructors, second.Destructors)
	}
	for addr, ev1 := range first.Events {
		ev2 := second.Events[addr]
		if len(ev1) != len(ev2) {
			t.Errorf("%v: event stream length diverged: %d vs %d", addr, len(ev1), len(ev2))
			continue
		}
		for i := range ev1 {
			if ev1[i] != ev2[i] {
				t.Errorf("%v: event %d diverged: %+v vs %+v", addr, i, ev1[i], ev2[i])
				break
			}
		}
	}
}

// TestTable2Deterministic runs a trimmed Table 2 twice: the paper
// reproduction itself must be bit-identical across runs.
func TestTable2Deterministic(t *testing.T) {
	cfg := Table2Config{Rounds: 40, Warmup: 2, Sizes: []int{0, 1024}}
	first := RunTable2(cfg)
	second := RunTable2(cfg)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("Table 2 rows diverged across identical runs:\nrun1: %+v\nrun2: %+v", first, second)
	}
}
