// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) against the Chant runtime on the simulated
// Paragon, and runs the ablations DESIGN.md calls out. Each experiment
// returns structured rows and can render itself as an aligned text table,
// an ASCII chart (for the figures), or a Markdown section for
// EXPERIMENTS.md, always next to the paper's published values.
package experiments

// This file embeds the paper's published numbers, used for side-by-side
// comparison in every report.

// PaperTable1Row is one thread package from the paper's Table 1
// (measurements on a Sun SparcStation 10).
type PaperTable1Row struct {
	Package  string
	CreateUS float64
	SwitchUS float64
}

// PaperTable1 is the paper's Table 1.
var PaperTable1 = []PaperTable1Row{
	{"cthreads", 423, 81},
	{"REX", 230, 60},
	{"pthreads (Mueller)", 1300, 29},
	{"Sun LWP", 400, 25},
	{"Quickthreads", 440, 21},
}

// Table2Sizes are the message sizes of Table 2 / Figure 8, in bytes.
var Table2Sizes = []int{1024, 2048, 4096, 8192, 16384}

// PaperTable2Row is one row of the paper's Table 2: average time per
// message (microseconds) for the raw process-based exchange and the two
// Chant thread configurations, with overheads relative to the process case.
type PaperTable2Row struct {
	Size      int
	ProcessUS float64
	TPUS      float64
	TPOverPct float64
	SPUS      float64
	SPOverPct float64
}

// PaperTable2 is the paper's Table 2.
var PaperTable2 = []PaperTable2Row{
	{1024, 667.1, 710.8, 6.4, 773.7, 15.9},
	{2048, 917.0, 973.2, 6.1, 1126.5, 22.8},
	{4096, 1639.3, 1701.2, 3.8, 1828.8, 11.5},
	{8192, 2873.5, 2998.8, 4.3, 3130.8, 8.9},
	{16384, 5531.8, 5624.8, 1.7, 5689.0, 2.9},
}

// PollingAlphas are the alpha values of Tables 3-5 and Figures 10-13.
var PollingAlphas = []int64{100, 1000, 10000, 100000}

// PaperPollingCell is one (policy, alpha) cell of Tables 3-5: total time
// (ms), complete context switches, and msgtest calls attempted.
type PaperPollingCell struct {
	TimeMS  float64
	CtxSw   uint64
	MsgTest uint64
}

// PaperPollingTable maps policy name -> per-alpha cells for one beta.
type PaperPollingTable map[string][]PaperPollingCell

// PaperTable3 is the paper's Table 3 (beta = 100).
var PaperTable3 = PaperPollingTable{
	"thread-polls": {
		{2730, 6655, 2662}, {2860, 6655, 2693}, {4000, 7029, 3057}, {7260, 7977, 3975},
	},
	"scheduler-polls-ps": {
		{2413, 5580, 2011}, {2515, 5630, 2010}, {3660, 5579, 2535}, {6815, 5649, 3723},
	},
	"scheduler-polls-wq": {
		{5950, 5488, 11817}, {6090, 5489, 11942}, {6123, 5509, 11875}, {9990, 5534, 13238},
	},
}

// PaperTable4 is the paper's Table 4 (beta = 1000).
var PaperTable4 = PaperPollingTable{
	"thread-polls": {
		{6765, 6945, 2909}, {6960, 6888, 2837}, {8000, 6950, 2887}, {10980, 7246, 3239},
	},
	"scheduler-polls-ps": {
		{6480, 5514, 2415}, {6660, 5523, 2564}, {7670, 5530, 2311}, {10560, 5537, 2532},
	},
	"scheduler-polls-wq": {
		{10065, 5485, 12323}, {10262, 5508, 13496}, {11350, 5512, 12676}, {14100, 5532, 12405},
	},
}

// PaperTable5 is the paper's Table 5 (beta = 0).
var PaperTable5 = PaperPollingTable{
	"thread-polls": {
		{3290, 5792, 3578}, {3460, 5864, 4646}, {4570, 6100, 4887}, {7805, 7206, 5977},
	},
	"scheduler-polls-ps": {
		{2715, 3628, 3514}, {2725, 3622, 3550}, {3980, 3608, 4335}, {7343, 3630, 6631},
	},
	"scheduler-polls-wq": {
		{4940, 3130, 9845}, {5120, 3174, 10000}, {6080, 3110, 10310}, {9263, 3144, 13024},
	},
}

// PaperFig13 holds the average number of waiting threads read (to roughly
// one decimal) from the paper's Figure 13 for beta = 100. These values are
// approximate; the figure has no table.
var PaperFig13 = map[string][]float64{
	"thread-polls":       {2.6, 2.6, 3.0, 4.3},
	"scheduler-polls-ps": {2.2, 2.3, 2.7, 4.0},
	"scheduler-polls-wq": {2.4, 2.5, 2.9, 4.4},
}

// PaperBetaFor maps each polling table to its beta value.
var PaperBetaFor = map[string]int64{"table3": 100, "table4": 1000, "table5": 0}
