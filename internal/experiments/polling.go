package experiments

import (
	"fmt"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
)

// PollingConfig parameterizes the Section 4.2 scheduling experiment: two
// processing elements, Workers threads per PE, each running Iters
// iterations of the Figure-9 loop
//
//	compute(alpha); send(); compute(beta); recv();
//
// Thread w sends to thread (w+Shift) mod Workers on the other PE and
// receives from thread (w-Shift) mod Workers. The shift offsets each pair's
// position in the two ready queues, de-synchronizing the PEs the way real
// startup skew did on the Paragon; Shift=0 runs the perfectly symmetric
// (lockstep) version. JitterPct adds deterministic, seeded variance to the
// compute phases.
type PollingConfig struct {
	Workers   int
	Iters     int
	Alpha     int64
	Beta      int64
	MsgSize   int
	Shift     int32
	JitterPct int64
	Seed      uint64
	Policy    core.PolicyKind
	Model     *machine.Model

	// Pairs replicates the two-PE workload across independent PE pairs (PE
	// 2p talks to PE 2p+1), scaling the topology to 2*Pairs simulated PEs
	// for host-parallelism experiments. Default 1: the paper's two-PE
	// machine.
	Pairs int
	// Shards, when at least 2, runs the simulation on the parallel
	// conservative kernel with that many shards (core.Config.SimShards).
	// Zero keeps the sequential reference kernel.
	Shards int

	// Tracer, when non-nil, records spans from every layer of the run
	// (scheduler occupancy, sends, matches, RSR) for Perfetto export. Nil
	// costs one pointer compare per emission site.
	Tracer *trace.Tracer
}

func (c PollingConfig) withDefaults() PollingConfig {
	if c.Workers == 0 {
		c.Workers = 12
	}
	if c.Pairs == 0 {
		c.Pairs = 1
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.MsgSize == 0 {
		c.MsgSize = 4096
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Model == nil {
		c.Model = machine.Paragon1994()
	}
	return c
}

// PollingRow is one measured cell of Tables 3-5: the columns the paper
// reports (Time, CtxSw, msgtest) plus the extra observability our runtime
// provides (partial switches, failed tests, Figure-13 average waiting).
type PollingRow struct {
	Policy       core.PolicyKind
	Alpha        int64
	Beta         int64
	TimeMS       float64
	CtxSw        uint64
	MsgTest      uint64
	PartialSw    uint64
	MsgTestFails uint64
	TestAnyCalls uint64
	AvgWaiting   float64
}

// SimStats carries parallel-kernel diagnostics for one run: how many
// execution windows the kernel drove and how many it ran inline. Kept out
// of PollingRow so row equality still means "the simulated results
// matched" regardless of kernel.
type SimStats struct {
	Windows       uint64
	InlineWindows uint64
}

// RunPolling executes one cell of the polling experiment.
func RunPolling(cfg PollingConfig) PollingRow {
	row, _ := RunPollingStats(cfg)
	return row
}

// RunPollingStats is RunPolling plus the kernel's window diagnostics.
func RunPollingStats(cfg PollingConfig) (PollingRow, SimStats) {
	cfg = cfg.withDefaults()
	rt := core.NewSimRuntime(core.Topology{PEs: 2 * cfg.Pairs, ProcsPerPE: 1},
		core.Config{Policy: cfg.Policy, Delivery: core.DeliverCtx, DisableServer: true,
			SimShards: cfg.Shards, Tracer: cfg.Tracer},
		cfg.Model)
	workers := int32(cfg.Workers)
	mk := func(pe int32) core.MainFunc {
		return func(t *core.Thread) {
			var ws []*core.Thread
			for w := int32(0); w < workers; w++ {
				w := w
				ws = append(ws, t.Process().CreateLocal(fmt.Sprintf("w%d", w), func(me *core.Thread) {
					rng := sim.NewRNG(cfg.Seed + uint64(pe)*1009 + uint64(w) + 1)
					jitter := func(n int64) int64 {
						if cfg.JitterPct == 0 || n == 0 {
							return n
						}
						span := n * cfg.JitterPct / 100
						if span < 2 {
							span = 2
						}
						return n - span/2 + int64(rng.Uint64()%uint64(span+1))
					}
					// Worker local ids start at 1 (main is 0). The peer is
					// the pair partner: PE 2p+1 for 2p and vice versa (for
					// the default single pair, exactly "the other PE").
					sendTo := core.GlobalID{PE: pe ^ 1, Proc: 0, Thread: (w+cfg.Shift)%workers + 1}
					recvFrom := core.GlobalID{PE: pe ^ 1, Proc: 0, Thread: (w-cfg.Shift+workers)%workers + 1}
					host := me.Process().Endpoint().Host()
					out := make([]byte, cfg.MsgSize)
					buf := make([]byte, cfg.MsgSize)
					for i := 0; i < cfg.Iters; i++ {
						host.Compute(jitter(cfg.Alpha))
						if err := me.Send(sendTo, 1, out); err != nil {
							panic(err)
						}
						host.Compute(jitter(cfg.Beta))
						if _, _, err := me.Recv(recvFrom, 1, buf); err != nil {
							panic(err)
						}
					}
				}, defaultSpawnOpts()))
			}
			for _, w := range ws {
				if _, err := t.JoinLocal(w); err != nil {
					panic(err)
				}
			}
		}
	}
	mains := make(map[comm.Addr]core.MainFunc, 2*cfg.Pairs)
	for pe := int32(0); pe < int32(2*cfg.Pairs); pe++ {
		mains[comm.Addr{PE: pe, Proc: 0}] = mk(pe)
	}
	res, err := rt.Run(mains)
	if err != nil {
		panic("experiments: polling run: " + err.Error())
	}
	stats := SimStats{Windows: res.SimWindows, InlineWindows: res.SimInlineWindows}
	return PollingRow{
		Policy:       cfg.Policy,
		Alpha:        cfg.Alpha,
		Beta:         cfg.Beta,
		TimeMS:       res.VirtualEnd.Millis(),
		CtxSw:        res.Total.FullSwitches,
		MsgTest:      res.Total.MsgTestCalls,
		PartialSw:    res.Total.PartialSwitches,
		MsgTestFails: res.Total.MsgTestFails,
		TestAnyCalls: res.Total.TestAnyCalls,
		AvgWaiting:   res.Total.AvgWaiting,
	}, stats
}

// PollingSweep holds one full polling table: rows for every (policy, alpha)
// pair at a fixed beta.
type PollingSweep struct {
	Beta     int64
	Alphas   []int64
	Policies []core.PolicyKind
	// Rows indexed [policy][alphaIdx].
	Rows map[core.PolicyKind][]PollingRow
}

// StandardPolicies are the three algorithms of Tables 3-5.
var StandardPolicies = []core.PolicyKind{
	core.ThreadPolls, core.SchedulerPollsPS, core.SchedulerPollsWQ,
}

// RunPollingSweep reproduces one of Tables 3-5 (pick beta: 100, 1000, 0)
// together with the corresponding figures' series.
func RunPollingSweep(beta int64, policies []core.PolicyKind, base PollingConfig) PollingSweep {
	if policies == nil {
		policies = StandardPolicies
	}
	sweep := PollingSweep{
		Beta:     beta,
		Alphas:   PollingAlphas,
		Policies: policies,
		Rows:     make(map[core.PolicyKind][]PollingRow),
	}
	for _, pol := range policies {
		for _, alpha := range PollingAlphas {
			cfg := base
			cfg.Policy = pol
			cfg.Alpha = alpha
			cfg.Beta = beta
			sweep.Rows[pol] = append(sweep.Rows[pol], RunPolling(cfg))
		}
	}
	return sweep
}

// StandardPollingBase is the canonical workload parameterization used for
// the headline reproduction: 12 threads per PE, 100 iterations, 4 KiB
// messages, shift-1 pairing, deterministic compute.
var StandardPollingBase = PollingConfig{
	Workers: 12,
	Iters:   100,
	MsgSize: 4096,
	Shift:   1,
}
