package experiments

import (
	"fmt"
	"math"
	"strings"

	"chant/internal/core"
)

// Rendering helpers: aligned text tables for every experiment, ASCII bar
// charts standing in for the paper's figures, and Markdown variants for
// EXPERIMENTS.md.

// renderTable lays out rows under headers. In markdown mode it emits a
// GitHub pipe table; otherwise fixed-width columns.
func renderTable(headers []string, rows [][]string, markdown bool) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		if markdown {
			b.WriteString("|")
			for i, c := range cells {
				fmt.Fprintf(&b, " %-*s |", widths[i], c)
			}
			b.WriteString("\n")
			return
		}
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	if markdown {
		b.WriteString("|")
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2) + "|")
		}
		b.WriteString("\n")
	} else {
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one line of an ASCII chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders horizontal log-scaled bars, one group per x label — a
// terminal stand-in for the paper's log-log figures.
func Chart(title string, xlabels []string, series []Series, unit string) string {
	const width = 46
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v > 0 {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		lo, hi = 1, 10
	}
	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		f := (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		return 1 + int(f*float64(width-1)+0.5)
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (log scale)\n", title)
	for xi, xl := range xlabels {
		fmt.Fprintf(&b, "%s:\n", xl)
		for _, s := range series {
			v := s.Values[xi]
			fmt.Fprintf(&b, "  %-*s %-*s %.1f%s\n", nameW, s.Name,
				width+1, strings.Repeat("#", scale(v)), v, unit)
		}
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func u(v uint64) string   { return fmt.Sprintf("%d", v) }

// FormatTable1 renders the thread-package microbenchmarks next to the
// paper's Table 1.
func FormatTable1(r Table1Result, markdown bool) string {
	headers := []string{"Thread package", "Create (us)", "Switch (us)"}
	rows := [][]string{}
	for _, p := range PaperTable1 {
		rows = append(rows, []string{p.Package + " (paper, Sparc10)", f1(p.CreateUS), f1(p.SwitchUS)})
	}
	rows = append(rows, []string{"chant/ult (this host)", f2(r.CreateUS), f2(r.SwitchUS)})
	return renderTable(headers, rows, markdown)
}

// FormatTable2 renders measured Table 2 rows beside the paper's values.
func FormatTable2(rows []Table2Row, markdown bool) string {
	headers := []string{"Size", "Process us", "TP us", "TP ovr%", "SP us", "SP ovr%",
		"paper Proc", "paper TP%", "paper SP%"}
	out := [][]string{}
	for i, r := range rows {
		var pProc, pTP, pSP string
		if i < len(PaperTable2) && PaperTable2[i].Size == r.Size {
			p := PaperTable2[i]
			pProc, pTP, pSP = f1(p.ProcessUS), f1(p.TPOverPct), f1(p.SPOverPct)
		}
		out = append(out, []string{
			fmt.Sprint(r.Size), f1(r.ProcessUS), f1(r.TPUS), f1(r.TPOverPct),
			f1(r.SPUS), f1(r.SPOverPct), pProc, pTP, pSP,
		})
	}
	return renderTable(headers, out, markdown)
}

// FormatFig8 renders the Figure-8 chart from Table 2 rows.
func FormatFig8(rows []Table2Row) string {
	xl := make([]string, len(rows))
	proc := Series{Name: "process"}
	tp := Series{Name: "thread (thread polls)"}
	sp := Series{Name: "thread (scheduler polls)"}
	for i, r := range rows {
		xl[i] = fmt.Sprintf("%d bytes", r.Size)
		proc.Values = append(proc.Values, r.ProcessUS)
		tp.Values = append(tp.Values, r.TPUS)
		sp.Values = append(sp.Values, r.SPUS)
	}
	return Chart("Figure 8: time per message (us)", xl, []Series{proc, tp, sp}, "us")
}

// policyLabel maps policies to the paper's row labels.
func policyLabel(k core.PolicyKind) string {
	switch k {
	case core.ThreadPolls:
		return "Thread polls"
	case core.SchedulerPollsPS:
		return "Scheduler polls (PS)"
	case core.SchedulerPollsWQ:
		return "Scheduler polls (WQ)"
	case core.SchedulerPollsWQAny:
		return "Scheduler polls (WQ/testany)"
	}
	return k.String()
}

// FormatPollingSweep renders one of Tables 3-5 beside the paper's values.
func FormatPollingSweep(s PollingSweep, paper PaperPollingTable, markdown bool) string {
	headers := []string{"alpha", "policy", "Time ms", "CtxSw", "msgtest", "avg wait",
		"paper ms", "paper CtxSw", "paper msgtest"}
	rows := [][]string{}
	for ai, alpha := range s.Alphas {
		for _, pol := range s.Policies {
			r := s.Rows[pol][ai]
			var pT, pC, pM string
			if cells, ok := paper[pol.String()]; ok && ai < len(cells) {
				pT, pC, pM = f1(cells[ai].TimeMS), u(cells[ai].CtxSw), u(cells[ai].MsgTest)
			}
			rows = append(rows, []string{
				fmt.Sprint(alpha), policyLabel(pol), f1(r.TimeMS), u(r.CtxSw), u(r.MsgTest),
				f2(r.AvgWaiting), pT, pC, pM,
			})
		}
	}
	return renderTable(headers, rows, markdown)
}

// FormatPollingChart renders one metric of a sweep as a figure-style chart
// (metric: "time", "ctxsw", "msgtest", or "waiting" — Figures 10-13).
func FormatPollingChart(s PollingSweep, metric, title, unit string) string {
	xl := make([]string, len(s.Alphas))
	for i, a := range s.Alphas {
		xl[i] = fmt.Sprintf("alpha=%d", a)
	}
	var series []Series
	for _, pol := range s.Policies {
		sr := Series{Name: policyLabel(pol)}
		for _, r := range s.Rows[pol] {
			var v float64
			switch metric {
			case "time":
				v = r.TimeMS
			case "ctxsw":
				v = float64(r.CtxSw)
			case "msgtest":
				v = float64(r.MsgTest)
			case "waiting":
				v = r.AvgWaiting
			default:
				panic("experiments: unknown chart metric " + metric)
			}
			sr.Values = append(sr.Values, v)
		}
		series = append(series, sr)
	}
	return Chart(title, xl, series, unit)
}

// FormatAblationFastPath renders ablation B.
func FormatAblationFastPath(rows []AblationFastPathRow, markdown bool) string {
	headers := []string{"Size", "Process us", "1-thread TP us", "ovr%", "contended TP us", "ovr%"}
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Size), f1(r.ProcessUS), f1(r.SingleUS), f1(r.SinglePct),
			f1(r.ContendedUS), f1(r.ContendedPct),
		})
	}
	return renderTable(headers, out, markdown)
}

// FormatAblationDelivery renders ablation C.
func FormatAblationDelivery(rows []AblationDeliveryRow, markdown bool) string {
	headers := []string{"Size", "ctx us", "tagpack us", "body us", "body penalty %"}
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Size), f1(r.CtxUS), f1(r.TagPackUS), f1(r.BodyUS), f1(r.BodyPenaltyPct),
		})
	}
	return renderTable(headers, out, markdown)
}
