package experiments

import (
	"time"

	"chant/internal/machine"
	"chant/internal/trace"
	"chant/internal/ult"
)

// Table1Result reports this library's analog of the paper's Table 1: the
// real (wall-clock) cost of thread creation and of a complete context
// switch in the ult package, measured on the host running the benchmark.
// The paper's SparcStation-10 numbers are printed alongside for context.
type Table1Result struct {
	CreateUS float64
	SwitchUS float64
}

// benchModel is an all-zero cost model so Charge calls do not perturb the
// wall-clock microbenchmarks.
var benchModel = &machine.Model{Name: "bench-zero"}

// RunTable1 measures thread create and context-switch times over iters
// operations each.
func RunTable1(iters int) Table1Result {
	if iters <= 0 {
		iters = 20000
	}
	var res Table1Result

	// Creation: spawn iters threads; each must also run (and be reaped) so
	// the measurement covers a usable thread, like the paper's.
	{
		host := machine.NewRealHost(benchModel)
		s := ult.NewSched(host, &trace.Counters{}, ult.Options{Name: "bench-create", IdleBlock: true})
		// Table 1 is a real-mode microbenchmark: measuring wall time is
		// the whole point, exactly like the paper's timings.
		//chant:allow-nondet Table 1 measures real elapsed time
		start := time.Now()
		err := s.Run(func() {
			for i := 0; i < iters; i++ {
				s.Spawn("t", func() {})
			}
		})
		if err != nil {
			panic(err)
		}
		//chant:allow-nondet Table 1 measures real elapsed time
		res.CreateUS = float64(time.Since(start).Microseconds()) / float64(iters)
	}

	// Switching: two threads yield back and forth; every yield is one
	// complete context switch (save caller, restore peer).
	{
		host := machine.NewRealHost(benchModel)
		s := ult.NewSched(host, &trace.Counters{}, ult.Options{Name: "bench-switch", IdleBlock: true})
		var elapsed time.Duration
		var switches uint64
		err := s.Run(func() {
			yielder := func() {
				for i := 0; i < iters; i++ {
					s.Yield()
				}
			}
			a := s.Spawn("a", yielder)
			b := s.Spawn("b", yielder)
			before := s.Counters().FullSwitches.Load()
			//chant:allow-nondet Table 1 measures real elapsed time
			start := time.Now()
			s.Join(a)
			s.Join(b)
			//chant:allow-nondet Table 1 measures real elapsed time
			elapsed = time.Since(start)
			switches = s.Counters().FullSwitches.Load() - before
		})
		if err != nil {
			panic(err)
		}
		if switches == 0 {
			switches = 1
		}
		res.SwitchUS = float64(elapsed.Microseconds()) / float64(switches)
	}
	return res
}
