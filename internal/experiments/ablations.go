package experiments

import (
	"chant/internal/core"
	"chant/internal/ult"
)

// defaultSpawnOpts is the plain worker-thread spawn configuration.
func defaultSpawnOpts() ult.SpawnOpts { return ult.SpawnOpts{} }

// --- Ablation A: msgtestany (the paper's Section 4.2 hypothesis) ---

// RunAblationTestAny re-runs the beta=100 polling sweep comparing the
// Scheduler-polls (WQ) algorithm as measured in the paper (one msgtest per
// outstanding request, NX style) against the algorithm "as originally
// intended": a single msgtestany call per scheduling point, as MPI's
// MPI_TESTANY allows. The paper writes: "For systems that could implement
// this algorithm as originally intended ... we expect the relative
// performance of this algorithm to change. We hope to test this hypothesis
// on a future version of Chant using the MPI communication system."
// This runs that test.
func RunAblationTestAny() PollingSweep {
	return RunPollingSweep(100,
		[]core.PolicyKind{core.SchedulerPollsWQ, core.SchedulerPollsWQAny, core.SchedulerPollsPS},
		StandardPollingBase)
}

// --- Ablation B: the single-thread yield fast path (Section 4.1 note) ---

// AblationFastPathRow compares Thread-polls per-message time with exactly
// one thread per PE (yield returns without a context switch) against the
// same exchange with a spinning second thread (every failed poll pays a
// full switch). The paper: "the overhead ... is low (about 15%), but ...
// can be halved by avoiding a context switch when only a single thread
// exists on a processing element."
type AblationFastPathRow struct {
	Size         int
	ProcessUS    float64
	SingleUS     float64 // one thread per PE: fast-path yields
	SinglePct    float64
	ContendedUS  float64 // with a spinner: real switches on every poll
	ContendedPct float64
}

// RunAblationFastPath measures the fast-path ablation. Two spinners per PE
// make every poll pay a pair of context switches. Because the simulation
// is deterministic, individual sizes show phase effects (the poll grid
// aligns differently with each arrival time); compare mean overheads.
func RunAblationFastPath() []AblationFastPathRow {
	single := RunTable2(Table2Config{})
	contended := RunTable2(Table2Config{ExtraThreads: 2})
	rows := make([]AblationFastPathRow, len(single))
	for i := range single {
		rows[i] = AblationFastPathRow{
			Size:         single[i].Size,
			ProcessUS:    single[i].ProcessUS,
			SingleUS:     single[i].TPUS,
			SinglePct:    single[i].TPOverPct,
			ContendedUS:  contended[i].TPUS,
			ContendedPct: contended[i].TPOverPct,
		}
	}
	return rows
}

// --- Ablation C: where the thread id travels (Section 3.1 delivery) ---

// AblationDeliveryRow compares per-message time across the three delivery
// designs the paper discusses: the MPI-style context field, NX/p4-style
// tag overloading, and the body-embedding design the paper rejects because
// it forces an intermediate thread and copies on both sides.
type AblationDeliveryRow struct {
	Size      int
	CtxUS     float64
	TagPackUS float64
	BodyUS    float64
	// BodyPenaltyPct is body-mode overhead relative to ctx mode.
	BodyPenaltyPct float64
}

// RunAblationDelivery measures the delivery ablation with the
// Scheduler-polls (PS) policy.
func RunAblationDelivery() []AblationDeliveryRow {
	cfg := Table2Config{}.withDefaults()
	rows := make([]AblationDeliveryRow, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		ctx := threadExchange(cfg, size, core.SchedulerPollsPS, core.DeliverCtx)
		tag := threadExchange(cfg, size, core.SchedulerPollsPS, core.DeliverTagPack)
		body := threadExchange(cfg, size, core.SchedulerPollsPS, core.DeliverBody)
		rows = append(rows, AblationDeliveryRow{
			Size:           size,
			CtxUS:          ctx,
			TagPackUS:      tag,
			BodyUS:         body,
			BodyPenaltyPct: (body - ctx) / ctx * 100,
		})
	}
	return rows
}
