package experiments

import (
	"reflect"
	"testing"
)

// TestChaosSoak is the acceptance test of the fault-injection plane: the
// Table 3 workload shape, rebuilt on the retrying RSR layer, must complete
// under >= 5% injected message loss (plus duplication and delay jitter) —
// and two runs with the same fault seed must be indistinguishable: the
// same injected fault stream, the same scheduler event streams, the same
// counters, the same virtual end time.
func TestChaosSoak(t *testing.T) {
	cfg := ChaosConfig{}
	if testing.Short() {
		cfg.Workers = 4
		cfg.Iters = 10
	}
	first, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("chaos run 1 did not complete: %v", err)
	}
	second, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("chaos run 2 did not complete: %v", err)
	}

	t.Logf("chaos: %.3fms virtual, faults %+v, sends=%d retries=%d dups-served=%d",
		first.TimeMS, first.Faults, first.Total.Sends, first.Total.RSRRetries,
		first.Total.RSRDupsServed)

	// The workload actually suffered: messages were dropped and retried.
	if first.Faults.Drops == 0 {
		t.Error("no drops injected at a 5% drop rate")
	}
	if first.Faults.Dups == 0 && first.Faults.Delays == 0 {
		t.Error("no duplicates or delays injected")
	}
	if first.Total.RSRRetries == 0 {
		t.Error("workload completed without a single retry under injected loss")
	}
	if first.Total.RSRTimeouts != 0 {
		t.Errorf("%d calls exhausted their retry budget", first.Total.RSRTimeouts)
	}
	if first.Total.FaultDrops != first.Faults.Drops {
		t.Errorf("transport counted %d fault drops, plan %d",
			first.Total.FaultDrops, first.Faults.Drops)
	}

	// Bitwise determinism for a fixed fault seed.
	if first.TimeMS != second.TimeMS {
		t.Errorf("virtual end diverged: %.3fms vs %.3fms", first.TimeMS, second.TimeMS)
	}
	if !reflect.DeepEqual(first.Faults, second.Faults) {
		t.Errorf("fault stats diverged:\nrun1: %+v\nrun2: %+v", first.Faults, second.Faults)
	}
	if len(first.FaultEvents) != len(second.FaultEvents) {
		t.Fatalf("fault event stream length diverged: %d vs %d",
			len(first.FaultEvents), len(second.FaultEvents))
	}
	for i := range first.FaultEvents {
		if first.FaultEvents[i] != second.FaultEvents[i] {
			t.Errorf("fault event %d diverged: %v vs %v",
				i, first.FaultEvents[i], second.FaultEvents[i])
			break
		}
	}
	if !reflect.DeepEqual(first.Total, second.Total) {
		t.Errorf("counters diverged:\nrun1: %+v\nrun2: %+v", first.Total, second.Total)
	}
	for addr, ev1 := range first.Events {
		ev2 := second.Events[addr]
		if len(ev1) != len(ev2) {
			t.Errorf("%v: scheduler event stream length diverged: %d vs %d", addr, len(ev1), len(ev2))
			continue
		}
		for i := range ev1 {
			if ev1[i] != ev2[i] {
				t.Errorf("%v: scheduler event %d diverged: %+v vs %+v", addr, i, ev1[i], ev2[i])
				break
			}
		}
	}
}

// TestChaosSeedMatters: different fault seeds must produce different fault
// streams — the plan is seeded, not hard-wired.
func TestChaosSeedMatters(t *testing.T) {
	a, err := RunChaos(ChaosConfig{Workers: 2, Iters: 5, FaultSeed: 101})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Workers: 2, Iters: 5, FaultSeed: 202})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.FaultEvents, b.FaultEvents) {
		t.Fatal("different fault seeds produced identical fault streams")
	}
}
