package experiments

import (
	"encoding/binary"
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
)

// The real-mode data plane (MPSC ingress ring, batched drain, zero-copy
// direct receive) is real-mode-only mechanism: the deterministic simulation
// must deliver through the original synchronous path, or the polling and
// chaos goldens above would silently re-pin. These tests witness the
// isolation from both sides.

// TestSimPathsNeverTouchIngressRing runs a cross-PE workload on the
// simulated machine and asserts no endpoint's ingress ring or direct path
// ever fired: the deterministic delivery path must be byte-identical to the
// pre-ring implementation.
func TestSimPathsNeverTouchIngressRing(t *testing.T) {
	topo := core.Topology{PEs: 2, ProcsPerPE: 1}
	rt := core.NewSimRuntime(topo, core.Config{Policy: core.SchedulerPollsPS},
		machine.Paragon1994())
	const rounds = 100
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(th *core.Thread) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			buf, out := make([]byte, 32), make([]byte, 32)
			for i := 0; i < rounds; i++ {
				th.Send(peer, 1, out)
				th.Recv(peer, 1, buf)
			}
		},
		{PE: 1, Proc: 0}: func(th *core.Thread) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf, out := make([]byte, 32), make([]byte, 32)
			for i := 0; i < rounds; i++ {
				th.Recv(peer, 1, buf)
				th.Send(peer, 1, out)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range topo.Addrs() {
		batches, msgs, direct := rt.Process(addr).Endpoint().IngressStats()
		if batches != 0 || msgs != 0 || direct != 0 {
			t.Errorf("sim endpoint %v touched the real-mode data plane: %d batches, %d ring messages, %d direct",
				addr, batches, msgs, direct)
		}
	}
}

// runRealFanIn runs a 3-sender fan-in on a real-mode machine, serial or
// batched, verifying per-sender FIFO at the receiver and returning an
// order-insensitive checksum of everything received plus the number of
// deliveries that used the real-mode data plane (ingress ring or zero-copy
// direct path).
func runRealFanIn(t *testing.T, serial bool) (checksum uint64, planeMsgs uint64) {
	t.Helper()
	const senders, perSender, window = 3, 200, 32
	rt := core.NewRealRuntime(core.Topology{PEs: senders + 1, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	mains := map[comm.Addr]core.MainFunc{}
	mains[comm.Addr{PE: 0, Proc: 0}] = func(th *core.Thread) {
		if serial {
			th.Process().Endpoint().SetSerialDelivery(true)
		}
		for s := 1; s <= senders; s++ {
			th.Send(core.GlobalID{PE: int32(s), Proc: 0, Thread: 0}, 2, []byte{1})
		}
		buf := make([]byte, 16)
		got := make([]int, senders+1)
		for i := 0; i < senders*perSender; i++ {
			n, from, err := th.Recv(core.AnyThread, 1, buf)
			if err != nil {
				t.Error(err)
				return
			}
			if n != 8 {
				t.Errorf("message %d: %d bytes, want 8", i, n)
				return
			}
			sender := binary.LittleEndian.Uint32(buf)
			seq := binary.LittleEndian.Uint32(buf[4:])
			if int32(sender) != from.PE {
				t.Errorf("payload claims sender %d but header says %d", sender, from.PE)
				return
			}
			if int(seq) != got[from.PE] {
				t.Errorf("sender %d: seq %d arrived after %d deliveries (per-pair FIFO broken)",
					from.PE, seq, got[from.PE])
				return
			}
			got[from.PE]++
			checksum += uint64(sender)<<32 ^ uint64(seq)*2654435761
			if got[from.PE]%window == 0 {
				th.Send(from, 3, []byte{1})
			}
		}
		_, ring, direct := th.Process().Endpoint().IngressStats()
		planeMsgs = ring + direct
	}
	for s := 1; s <= senders; s++ {
		s := s
		mains[comm.Addr{PE: int32(s), Proc: 0}] = func(th *core.Thread) {
			recv := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			ack := make([]byte, 4)
			out := make([]byte, 8)
			if _, _, err := th.Recv(core.AnyThread, 2, ack); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSender; i++ {
				binary.LittleEndian.PutUint32(out, uint32(s))
				binary.LittleEndian.PutUint32(out[4:], uint32(i))
				th.Send(recv, 1, out)
				if (i+1)%window == 0 {
					if _, _, err := th.Recv(core.AnyThread, 3, ack); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}
	}
	if _, err := rt.Run(mains); err != nil {
		t.Fatal(err)
	}
	return checksum, planeMsgs
}

// TestRealRingSerialEquivalence runs the same multi-producer fan-in through
// the batched data plane and through the serial per-message path: both arms
// must deliver exactly the same messages with per-sender FIFO intact (the
// ring and direct path are mechanism changes, not semantics changes), and
// the ingress stats must show that the knob actually selected different
// paths.
func TestRealRingSerialEquivalence(t *testing.T) {
	batchedSum, batchedPlane := runRealFanIn(t, false)
	serialSum, serialPlane := runRealFanIn(t, true)
	if batchedSum != serialSum {
		t.Errorf("checksum differs: batched %#x vs serial %#x", batchedSum, serialSum)
	}
	if batchedPlane == 0 {
		t.Error("batched arm never used the ring or direct path; the equivalence test is vacuous")
	}
	if serialPlane != 0 {
		t.Errorf("serial arm moved %d messages through the data plane; the knob did not take", serialPlane)
	}
}
