package experiments

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/sim"
)

// recoverySoakConfig is the crash-recovery extension of the pinned chaos
// soak: four PEs (two pairs) under the lossy network, a machine-wide
// coordinated checkpoint mid-workload, PE1 crashed and restarted from it,
// surviving callers waiting out the outage.
func recoverySoakConfig() ChaosConfig {
	return ChaosConfig{
		Workers:        4,
		Iters:          10,
		Pairs:          2,
		CrashPE:        1,
		CrashAt:        sim.Time(30 * sim.Millisecond),
		RestartAfter:   10 * sim.Millisecond,
		RejoinWait:     300 * sim.Millisecond,
		CheckpointIter: 2,
	}
}

// soakShards reports the kernel shard counts the recovery soak sweeps:
// {0, 4} (sequential reference plus four parallel shards) unless
// CHANT_RECOVERY_SHARDS overrides the list (the CI recovery-soak job also
// runs {1, 4}).
func soakShards(t *testing.T) []int {
	env := os.Getenv("CHANT_RECOVERY_SHARDS")
	if env == "" {
		return []int{0, 4}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			t.Fatalf("CHANT_RECOVERY_SHARDS: %v", err)
		}
		out = append(out, n)
	}
	return out
}

// TestChaosRecoverySoak runs the crash+recover chaos soak three times at
// each kernel shard count: every run must complete (all surviving calls
// succeed through the outage), actually exercise the recovery path, and
// produce the bit-identical behaviour hash — checkpoint capture, restart,
// rejoin, and replay are as deterministic as the rest of the simulator.
func TestChaosRecoverySoak(t *testing.T) {
	var want uint64
	first := true
	for run := 0; run < 3; run++ {
		for _, shards := range soakShards(t) {
			cfg := recoverySoakConfig()
			cfg.Shards = shards
			r, err := RunChaos(cfg)
			if err != nil {
				t.Fatalf("run %d shards=%d: %v", run, shards, err)
			}
			if r.Total.Restarts != 1 {
				t.Fatalf("run %d shards=%d: Restarts = %d, want 1", run, shards, r.Total.Restarts)
			}
			if r.Total.Checkpoints == 0 || r.Total.RejoinsServed == 0 || r.Total.PeersRecovered == 0 {
				t.Fatalf("run %d shards=%d: recovery path not exercised: checkpoints=%d rejoins=%d recovered=%d",
					run, shards, r.Total.Checkpoints, r.Total.RejoinsServed, r.Total.PeersRecovered)
			}
			if st := r.Faults; st.Crashes != 1 || st.Recoveries != 1 {
				t.Fatalf("run %d shards=%d: witness: %d crashes, %d recoveries", run, shards, st.Crashes, st.Recoveries)
			}
			h := hashChaos(r)
			if first {
				want = h
				first = false
				continue
			}
			if h != want {
				t.Errorf("run %d shards=%d: behaviour hash %#x diverged from first run's %#x (time=%.6f sends=%d replayed=%d)",
					run, shards, h, want, r.TimeMS, r.Total.Sends, r.Total.InFlightReplayed)
			}
		}
	}
}

// --- Differential reply-stream check ---

// diffTranscript is what one client worker observed: the ordered reply
// payload prefix of every call it made.
type diffTranscript [][2]byte

// runDiffWorkload runs a 2-PE machine where PE0's workers call PE1's echo
// handler and record every reply, over the lossy network seeded with seed.
// With crash set, PE1 crashes mid-workload and restarts from the
// coordinated checkpoint taken a few iterations earlier; without, it runs
// undisturbed. Returns each worker's reply transcript.
func runDiffWorkload(t *testing.T, seed uint64, crash bool) []diffTranscript {
	t.Helper()
	const (
		workers = 4
		iters   = 12
		handler = int32(7)
	)
	fcfg := faults.Config{
		Default: faults.LinkRates{DropProb: 0.05, DupProb: 0.05, DelayProb: 0.10, DelayMax: 500 * sim.Microsecond},
	}
	if crash {
		fcfg.Crashes = []faults.Crash{{PE: 1, At: sim.Time(25 * sim.Millisecond), RestartAfter: 10 * sim.Millisecond}}
	}
	plan := faults.New(fcfg, seed)
	rt := core.NewSimRuntime(core.Topology{PEs: 2, ProcsPerPE: 1}, core.Config{
		Delivery:        core.DeliverCtx,
		RSRTimeout:      10 * sim.Millisecond,
		RSRRetries:      12,
		RSRBackoff:      100 * sim.Microsecond,
		TermGrace:       10 * sim.Millisecond,
		Faults:          plan,
		CheckpointStore: recovery.NewMemStore(),
		RejoinWait:      300 * sim.Millisecond,
	}, machine.Paragon1994())
	rt.RegisterHandler(handler, func(ctx *core.RSRContext) ([]byte, error) {
		return ctx.Req, nil
	})
	out := make([]diffTranscript, workers)
	mains := map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(th *core.Thread) {
			var ws []*core.Thread
			for w := 0; w < workers; w++ {
				w := w
				ws = append(ws, th.Process().CreateLocal(fmt.Sprintf("dw%d", w), func(me *core.Thread) {
					host := me.Process().Endpoint().Host()
					req := make([]byte, 64)
					reply := make([]byte, 64)
					for i := 0; i < iters; i++ {
						host.Compute(500)
						if w == 0 && i == 3 {
							if err := me.Checkpoint(); err != nil {
								panic(err)
							}
						}
						req[0], req[1] = byte(w), byte(i)
						if _, err := me.Call(comm.Addr{PE: 1, Proc: 0}, handler, req, reply); err != nil {
							panic(fmt.Sprintf("seed %d crash=%v w%d i%d: %v", seed, crash, w, i, err))
						}
						out[w] = append(out[w], [2]byte{reply[0], reply[1]})
						host.Compute(200)
					}
				}, defaultSpawnOpts()))
			}
			for _, w := range ws {
				if _, err := th.JoinLocal(w); err != nil {
					panic(err)
				}
			}
		},
	}
	if _, err := rt.Run(mains); err != nil {
		t.Fatalf("seed %d crash=%v: %v", seed, crash, err)
	}
	return out
}

// TestRecoveryReplyStreamDifferential is the exactly-once differential: for
// ten fault seeds, the reply stream every client worker observes from a
// server that crashed, restored its checkpoint (dedup cache and logged
// in-flight requests included), and rejoined must be identical to the stream
// a never-crashed server produces — no reply lost, duplicated, reordered,
// or leaked from the dead incarnation.
func TestRecoveryReplyStreamDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		ref := runDiffWorkload(t, seed, false)
		got := runDiffWorkload(t, seed, true)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("seed %d: reply stream with crash+recovery diverged from never-crashed reference", seed)
		}
	}
}
