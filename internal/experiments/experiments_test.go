package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"chant/internal/core"
)

// Shared sweep results: the full polling sweeps are the expensive part of
// this suite, so they are computed once and shared across assertions.
var (
	sweepOnce sync.Once
	sweeps    map[int64]PollingSweep
)

func getSweeps(t *testing.T) map[int64]PollingSweep {
	t.Helper()
	sweepOnce.Do(func() {
		sweeps = map[int64]PollingSweep{}
		for _, beta := range []int64{100, 1000, 0} {
			sweeps[beta] = RunPollingSweep(beta, nil, StandardPollingBase)
		}
	})
	return sweeps
}

func TestTable2MatchesPaperShape(t *testing.T) {
	rows := RunTable2(Table2Config{Rounds: 300})
	if len(rows) != len(PaperTable2) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		paper := PaperTable2[i]
		// The process baseline is what the cost model is calibrated
		// against; it must track the paper closely.
		if rel := math.Abs(r.ProcessUS-paper.ProcessUS) / paper.ProcessUS; rel > 0.10 {
			t.Errorf("size %d: process %.1fus deviates %.0f%% from paper %.1fus",
				r.Size, r.ProcessUS, rel*100, paper.ProcessUS)
		}
		// Thread-based messaging costs more than raw, but not much more.
		if r.TPOverPct <= 0 || r.TPOverPct > 30 {
			t.Errorf("size %d: TP overhead %.1f%% outside (0,30]", r.Size, r.TPOverPct)
		}
		if r.SPOverPct <= r.TPOverPct {
			t.Errorf("size %d: SP overhead %.1f%% not above TP %.1f%% (SP forces a switch per message)",
				r.Size, r.SPOverPct, r.TPOverPct)
		}
		if r.SPOverPct > 40 {
			t.Errorf("size %d: SP overhead %.1f%% implausibly high", r.Size, r.SPOverPct)
		}
	}
	// Overhead percentage shrinks as messages grow (Figure 8's converging
	// curves): compare first and last rows.
	if rows[len(rows)-1].TPOverPct >= rows[0].TPOverPct {
		t.Errorf("TP overhead did not shrink with size: %.1f%% -> %.1f%%",
			rows[0].TPOverPct, rows[len(rows)-1].TPOverPct)
	}
	// Times grow monotonically with size for every configuration.
	for i := 1; i < len(rows); i++ {
		if rows[i].ProcessUS <= rows[i-1].ProcessUS ||
			rows[i].TPUS <= rows[i-1].TPUS || rows[i].SPUS <= rows[i-1].SPUS {
			t.Errorf("per-message time not increasing at size %d", rows[i].Size)
		}
	}
}

// assertPollingShape checks the paper's Section 4.2 conclusions on one
// sweep. The alpha=100000 cell is excluded from count assertions: at that
// scale the deterministic workload enters a pipelined regime where most
// receives complete at post time (see EXPERIMENTS.md).
func assertPollingShape(t *testing.T, s PollingSweep) {
	t.Helper()
	tp, ps, wq := s.Rows[core.ThreadPolls], s.Rows[core.SchedulerPollsPS], s.Rows[core.SchedulerPollsWQ]
	for i := range s.Alphas {
		// Conclusion 1: "the Scheduler polls (PS) algorithm yields the
		// lowest running times of the three approaches."
		if !(ps[i].TimeMS < tp[i].TimeMS && ps[i].TimeMS < wq[i].TimeMS) {
			t.Errorf("alpha=%d: PS %.0fms not fastest (TP %.0f, WQ %.0f)",
				s.Alphas[i], ps[i].TimeMS, tp[i].TimeMS, wq[i].TimeMS)
		}
		// Conclusion 2: "the Scheduler polls (WQ) algorithm performs much
		// worse than the other two."
		if wq[i].TimeMS <= tp[i].TimeMS {
			t.Errorf("alpha=%d: WQ %.0fms not slowest (TP %.0f)", s.Alphas[i], wq[i].TimeMS, tp[i].TimeMS)
		}
		// Times grow with alpha.
		if i > 0 {
			for _, rows := range []([]PollingRow){tp, ps, wq} {
				if rows[i].TimeMS <= rows[i-1].TimeMS {
					t.Errorf("time not increasing in alpha at %d (%v)", s.Alphas[i], rows[i].Policy)
				}
			}
		}
		if i == len(s.Alphas)-1 {
			continue // count metrics excluded at alpha=100000
		}
		// Conclusion 3: WQ "performs far more msgtest calls than the
		// other two algorithms, accounting for its degraded performance."
		if wq[i].MsgTest < 3*tp[i].MsgTest/2 || wq[i].MsgTest < 3*ps[i].MsgTest {
			t.Errorf("alpha=%d: WQ msgtests %d not far above TP %d / PS %d",
				s.Alphas[i], wq[i].MsgTest, tp[i].MsgTest, ps[i].MsgTest)
		}
		// Conclusion 4: WQ "does achieve the lowest number of context
		// switches of the three methods, since threads are only switched
		// when they are ready to run"; Thread polls pays the most.
		if !(wq[i].CtxSw <= ps[i].CtxSw && ps[i].CtxSw < tp[i].CtxSw) {
			t.Errorf("alpha=%d: switch ordering WQ(%d) <= PS(%d) < TP(%d) violated",
				s.Alphas[i], wq[i].CtxSw, ps[i].CtxSw, tp[i].CtxSw)
		}
		// PS's advantage comes from partial switches replacing full ones.
		if ps[i].PartialSw == 0 {
			t.Errorf("alpha=%d: PS did no partial switches", s.Alphas[i])
		}
		if tp[i].PartialSw != 0 || wq[i].PartialSw != 0 {
			t.Errorf("alpha=%d: TP/WQ recorded partial switches", s.Alphas[i])
		}
	}
}

func TestTable3Shape(t *testing.T) { assertPollingShape(t, getSweeps(t)[100]) }
func TestTable4Shape(t *testing.T) { assertPollingShape(t, getSweeps(t)[1000]) }
func TestTable5Shape(t *testing.T) { assertPollingShape(t, getSweeps(t)[0]) }

func TestPollingRatiosNearPaper(t *testing.T) {
	// Beyond orderings: the WQ/PS time ratio at beta=100 should be
	// paper-scale (the paper has 2.47 at alpha=100 shrinking to 1.47 at
	// alpha=100000; we accept a generous band around that trajectory).
	s := getSweeps(t)[100]
	ps, wq := s.Rows[core.SchedulerPollsPS], s.Rows[core.SchedulerPollsWQ]
	first := wq[0].TimeMS / ps[0].TimeMS
	last := wq[3].TimeMS / ps[3].TimeMS
	if first < 1.8 || first > 3.2 {
		t.Errorf("WQ/PS ratio at alpha=100 is %.2f, want near paper's 2.47", first)
	}
	if last > first {
		t.Errorf("WQ/PS ratio grew with alpha (%.2f -> %.2f); paper converges", first, last)
	}
	if last > 1.6 {
		t.Errorf("WQ/PS ratio at alpha=100000 is %.2f, want converged like paper's 1.47", last)
	}
	// Thread polls stays within ~50% of PS everywhere (paper: ~10% average).
	tp := s.Rows[core.ThreadPolls]
	for i := range s.Alphas {
		if ratio := tp[i].TimeMS / ps[i].TimeMS; ratio > 1.5 {
			t.Errorf("alpha=%d: TP/PS ratio %.2f too large", s.Alphas[i], ratio)
		}
	}
}

func TestFig13WaitingThreads(t *testing.T) {
	// Average waiting threads must be positive and bounded by the thread
	// population, for every policy and alpha (Figure 13 plots 2-4.5 on the
	// paper's hardware).
	for beta, s := range getSweeps(t) {
		for _, pol := range s.Policies {
			for i, r := range s.Rows[pol] {
				limit := float64(2 * StandardPollingBase.Workers)
				if r.AvgWaiting <= 0 || r.AvgWaiting > limit {
					t.Errorf("beta=%d alpha=%d %v: avg waiting %.2f outside (0,%.0f]",
						beta, s.Alphas[i], pol, r.AvgWaiting, limit)
				}
			}
		}
	}
}

func TestAblationTestAny(t *testing.T) {
	s := RunAblationTestAny()
	wq := s.Rows[core.SchedulerPollsWQ]
	any := s.Rows[core.SchedulerPollsWQAny]
	for i, alpha := range s.Alphas {
		// The paper's hypothesis: with a single msgtestany call per
		// scheduling point, WQ's relative performance changes — the
		// per-request testing cost disappears.
		if any[i].TimeMS >= wq[i].TimeMS {
			t.Errorf("alpha=%d: WQ/testany %.0fms not faster than WQ %.0fms",
				alpha, any[i].TimeMS, wq[i].TimeMS)
		}
		if any[i].MsgTest >= wq[i].MsgTest/2 {
			t.Errorf("alpha=%d: testany variant still made %d msgtest calls (WQ %d)",
				alpha, any[i].MsgTest, wq[i].MsgTest)
		}
		if any[i].TestAnyCalls == 0 {
			t.Errorf("alpha=%d: testany variant made no testany calls", alpha)
		}
	}
}

func TestAblationFastPath(t *testing.T) {
	rows := RunAblationFastPath()
	var singleMean, contendedMean float64
	for _, r := range rows {
		singleMean += r.SinglePct
		contendedMean += r.ContendedPct
	}
	singleMean /= float64(len(rows))
	contendedMean /= float64(len(rows))
	// With spinning threads, every poll costs real context switches, so the
	// mean overhead must clearly exceed the single-thread fast path's (the
	// paper: the worst-case overhead "can be halved by avoiding a context
	// switch when only a single thread exists on a processing element").
	// Per-size values show deterministic phase effects; compare means.
	if contendedMean <= 1.5*singleMean {
		t.Errorf("contended mean overhead %.1f%% not clearly above single-thread %.1f%%",
			contendedMean, singleMean)
	}
}

func TestAblationDelivery(t *testing.T) {
	rows := RunAblationDelivery()
	for _, r := range rows {
		// Body embedding pays the intermediate thread and two copies: the
		// design the paper rejects must measure strictly worse.
		if r.BodyUS <= r.CtxUS {
			t.Errorf("size %d: body mode %.1fus not above ctx %.1fus", r.Size, r.BodyUS, r.CtxUS)
		}
		// Tag packing differs from ctx only by header formatting: same cost
		// within 2%.
		if rel := math.Abs(r.TagPackUS-r.CtxUS) / r.CtxUS; rel > 0.02 {
			t.Errorf("size %d: tagpack %.1fus deviates %.1f%% from ctx %.1fus",
				r.Size, r.TagPackUS, rel*100, r.CtxUS)
		}
	}
	// The penalty grows with size (copies are per-byte).
	if rows[len(rows)-1].BodyUS-rows[len(rows)-1].CtxUS <= rows[0].BodyUS-rows[0].CtxUS {
		t.Error("body-mode absolute penalty did not grow with message size")
	}
}

func TestTable1Plausible(t *testing.T) {
	r := RunTable1(3000)
	if r.CreateUS <= 0 || r.CreateUS > 1000 {
		t.Errorf("create time %.2fus implausible", r.CreateUS)
	}
	if r.SwitchUS <= 0 || r.SwitchUS > 1000 {
		t.Errorf("switch time %.2fus implausible", r.SwitchUS)
	}
}

func TestSweepDeterminism(t *testing.T) {
	cfg := StandardPollingBase
	cfg.Alpha = 1000
	cfg.Beta = 100
	cfg.Policy = core.SchedulerPollsWQ
	a := RunPolling(cfg)
	b := RunPolling(cfg)
	if a != b {
		t.Fatalf("polling run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestRenderers(t *testing.T) {
	rows := RunTable2(Table2Config{Rounds: 50, Sizes: []int{1024, 4096}})
	txt := FormatTable2(rows, false)
	if !strings.Contains(txt, "1024") || !strings.Contains(txt, "paper") {
		t.Errorf("text table missing content:\n%s", txt)
	}
	md := FormatTable2(rows, true)
	if !strings.Contains(md, "|") || !strings.Contains(md, "---") {
		t.Errorf("markdown table malformed:\n%s", md)
	}
	fig := FormatFig8(rows)
	if !strings.Contains(fig, "#") || !strings.Contains(fig, "Figure 8") {
		t.Errorf("figure chart malformed:\n%s", fig)
	}
	s := getSweeps(t)[100]
	for _, metric := range []string{"time", "ctxsw", "msgtest", "waiting"} {
		out := FormatPollingChart(s, metric, "Figure", "x")
		if !strings.Contains(out, "alpha=100") {
			t.Errorf("chart for %s missing labels", metric)
		}
	}
	if out := FormatPollingSweep(s, PaperTable3, false); !strings.Contains(out, "Scheduler polls (PS)") {
		t.Errorf("sweep table missing policy label:\n%s", out)
	}
	if out := FormatTable1(RunTable1(500), false); !strings.Contains(out, "Quickthreads") {
		t.Errorf("table 1 missing paper rows:\n%s", out)
	}
	if out := FormatAblationFastPath(RunAblationFastPath(), false); out == "" {
		t.Error("fast-path ablation rendered empty")
	}
	if out := FormatAblationDelivery(RunAblationDelivery(), false); out == "" {
		t.Error("delivery ablation rendered empty")
	}
}

func TestChartHandlesDegenerateInput(t *testing.T) {
	out := Chart("flat", []string{"x"}, []Series{{Name: "s", Values: []float64{5}}}, "u")
	if !strings.Contains(out, "flat") {
		t.Error("degenerate chart broke")
	}
	out = Chart("zero", []string{"x"}, []Series{{Name: "s", Values: []float64{0}}}, "u")
	if !strings.Contains(out, "zero") {
		t.Error("zero-value chart broke")
	}
}

func TestModernContrast(t *testing.T) {
	// On modern hardware the msgtest asymmetry vanishes: every policy's
	// time lands within a few percent of PS (the paper's WQ condemnation
	// is an NX-era artifact), and the ordering PS <= TP still holds.
	s := RunModernContrast()
	wqOverPS, tpOverPS := ModernContrastRatios(s)
	for i := range s.Alphas {
		if wqOverPS[i] > 1.25 {
			t.Errorf("alpha=%d: modern WQ/PS = %.2f, want near 1", s.Alphas[i], wqOverPS[i])
		}
		if tpOverPS[i] > 1.25 {
			t.Errorf("alpha=%d: modern TP/PS = %.2f, want near 1", s.Alphas[i], tpOverPS[i])
		}
		if tpOverPS[i] < 0.8 || wqOverPS[i] < 0.8 {
			t.Errorf("alpha=%d: implausible ratios WQ %.2f TP %.2f", s.Alphas[i], wqOverPS[i], tpOverPS[i])
		}
	}
}

func TestScalingAblation(t *testing.T) {
	rows := RunScaling(nil)
	perPolicy := map[core.PolicyKind][]ScalingRow{}
	for _, r := range rows {
		perPolicy[r.Policy] = append(perPolicy[r.Policy], r)
	}
	wq := perPolicy[core.SchedulerPollsWQ]
	ps := perPolicy[core.SchedulerPollsPS]
	any := perPolicy[core.SchedulerPollsWQAny]
	for i := range ScalingWorkerCounts {
		// WQ tests far more per message than PS at every population, and
		// the testany variant stays cheap.
		if wq[i].TestPerMsg < 2*ps[i].TestPerMsg {
			t.Errorf("workers=%d: WQ %.2f tests/msg not well above PS %.2f",
				wq[i].Workers, wq[i].TestPerMsg, ps[i].TestPerMsg)
		}
		if any[i].TestPerMsg > ps[i].TestPerMsg {
			t.Errorf("workers=%d: testany %.2f tests/msg above PS %.2f",
				any[i].Workers, any[i].TestPerMsg, ps[i].TestPerMsg)
		}
		// Per-message time: WQ pays more than PS everywhere.
		if wq[i].USPerMsg <= ps[i].USPerMsg {
			t.Errorf("workers=%d: WQ %.1fus/msg not above PS %.1f",
				wq[i].Workers, wq[i].USPerMsg, ps[i].USPerMsg)
		}
	}
	// PS per-message cost is roughly flat in population (within 2.5x over a
	// 6x population growth), confirming O(1) work per scheduling decision.
	first, last := ps[0].USPerMsg, ps[len(ps)-1].USPerMsg
	if last > 2.5*first {
		t.Errorf("PS us/msg grew %.1f -> %.1f across populations", first, last)
	}
	if out := FormatScaling(rows, false); !strings.Contains(out, "threads/PE") {
		t.Error("scaling table malformed")
	}
}
