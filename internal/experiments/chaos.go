package experiments

import (
	"fmt"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/faults"
	"chant/internal/machine"
	"chant/internal/recovery"
	"chant/internal/sim"
	"chant/internal/trace"
)

// chaosEchoHandler is the RSR handler id the chaos workload calls: it
// echoes the request payload back, so every iteration is one full
// request/reply round trip through the retry layer.
const chaosEchoHandler int32 = 100

// ChaosConfig parameterizes the chaos soak: the Table 3 workload shape —
// two PEs of workers alternating compute and communication — rebuilt on
// the remote-service-request retry layer and run over a simulated network
// that drops, duplicates, and delays messages according to a seeded fault
// plan. The soak demonstrates the robustness claim: the workload completes
// under injected faults, and identically so for a fixed fault seed.
type ChaosConfig struct {
	Workers int
	Iters   int
	Alpha   int64
	Beta    int64
	MsgSize int

	// Fault plan: uniform rates on every cross-PE link.
	DropProb  float64
	DupProb   float64
	DelayProb float64
	DelayMax  sim.Duration
	FaultSeed uint64

	// Retry layer.
	RSRTimeout sim.Duration
	RSRRetries int
	RSRBackoff sim.Duration
	TermGrace  sim.Duration

	Policy core.PolicyKind
	Model  *machine.Model

	// Pairs replicates the two-PE soak across independent PE pairs (PE 2p
	// calls PE 2p+1 and back), scaling the topology to 2*Pairs simulated
	// PEs. Default 1: the standard two-PE soak.
	Pairs int
	// Shards, when at least 2, runs the soak on the parallel conservative
	// kernel with that many shards (core.Config.SimShards). Zero keeps the
	// sequential reference kernel.
	Shards int

	// Recovery extension (enabled by CrashAt > 0): CrashPE crashes at
	// CrashAt and restarts RestartAfter later from the coordinated
	// checkpoint that PE0's first worker initiates at its CheckpointIter-th
	// iteration; surviving workers wait out the outage for up to RejoinWait
	// per call instead of failing. The soak then exercises the whole
	// recovery path — marker flood, capture, in-flight logging, restore,
	// rejoin, epoch-aware dedup — under the same lossy network.
	CrashPE        int32
	CrashAt        sim.Time
	RestartAfter   sim.Duration
	RejoinWait     sim.Duration
	CheckpointIter int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Workers == 0 {
		c.Workers = 6
	}
	if c.Pairs == 0 {
		c.Pairs = 1
	}
	if c.Iters == 0 {
		c.Iters = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 200
	}
	if c.Beta == 0 {
		c.Beta = 100
	}
	if c.MsgSize == 0 {
		c.MsgSize = 256
	}
	if c.DropProb == 0 {
		c.DropProb = 0.05
	}
	if c.DupProb == 0 {
		c.DupProb = 0.02
	}
	if c.DelayProb == 0 {
		c.DelayProb = 0.10
	}
	if c.DelayMax == 0 {
		c.DelayMax = 500 * sim.Microsecond
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 0xC0FFEE
	}
	if c.RSRTimeout == 0 {
		c.RSRTimeout = 10 * sim.Millisecond
	}
	if c.RSRRetries == 0 {
		c.RSRRetries = 12
	}
	if c.RSRBackoff == 0 {
		c.RSRBackoff = 100 * sim.Microsecond
	}
	if c.TermGrace == 0 {
		c.TermGrace = 10 * sim.Millisecond
	}
	if c.Model == nil {
		c.Model = machine.Paragon1994()
	}
	if c.CrashAt > 0 {
		if c.RestartAfter == 0 {
			c.RestartAfter = 10 * sim.Millisecond
		}
		if c.RejoinWait == 0 {
			c.RejoinWait = 200 * sim.Millisecond
		}
		if c.CheckpointIter == 0 {
			c.CheckpointIter = c.Iters / 4
		}
	}
	return c
}

// ChaosResult is everything one chaos run observed — enough to both assert
// completion under faults and compare two runs bit for bit.
type ChaosResult struct {
	TimeMS float64
	Total  trace.Snapshot
	// Faults is the injection plan's own accounting.
	Faults faults.Stats
	// FaultEvents is the ordered stream of injected fault decisions — the
	// determinism witness for the fault plane itself.
	FaultEvents []faults.Event
	// Events is each process's scheduler event stream.
	Events map[comm.Addr][]trace.Event
}

// RunChaos executes the chaos soak once and reports what happened.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	fcfg := faults.Config{
		Default: faults.LinkRates{
			DropProb:  cfg.DropProb,
			DupProb:   cfg.DupProb,
			DelayProb: cfg.DelayProb,
			DelayMax:  cfg.DelayMax,
		},
	}
	if cfg.CrashAt > 0 {
		fcfg.Crashes = []faults.Crash{{PE: cfg.CrashPE, At: cfg.CrashAt, RestartAfter: cfg.RestartAfter}}
	}
	plan := faults.New(fcfg, cfg.FaultSeed)

	topo := core.Topology{PEs: 2 * cfg.Pairs, ProcsPerPE: 1}
	ccfg := core.Config{
		Policy:        cfg.Policy,
		Delivery:      core.DeliverCtx,
		EventLogSize:  1 << 15,
		RSRTimeout:    cfg.RSRTimeout,
		RSRRetries:    cfg.RSRRetries,
		RSRBackoff:    cfg.RSRBackoff,
		TermGrace:     cfg.TermGrace,
		MaxUnexpected: 1024,
		Faults:        plan,
		SimShards:     cfg.Shards,
	}
	if cfg.CrashAt > 0 {
		ccfg.CheckpointStore = recovery.NewMemStore()
		ccfg.RejoinWait = cfg.RejoinWait
	}
	rt := core.NewSimRuntime(topo, ccfg, cfg.Model)
	rt.RegisterHandler(chaosEchoHandler, func(ctx *core.RSRContext) ([]byte, error) {
		return ctx.Req, nil
	})

	workers := cfg.Workers
	mk := func(pe int32) core.MainFunc {
		return func(t *core.Thread) {
			// The peer is the pair partner: PE 2p+1 for 2p and vice versa.
			peer := comm.Addr{PE: pe ^ 1, Proc: 0}
			var ws []*core.Thread
			for w := 0; w < workers; w++ {
				w := w
				ws = append(ws, t.Process().CreateLocal(fmt.Sprintf("w%d", w), func(me *core.Thread) {
					host := me.Process().Endpoint().Host()
					req := make([]byte, cfg.MsgSize)
					reply := make([]byte, cfg.MsgSize)
					for i := 0; i < cfg.Iters; i++ {
						host.Compute(cfg.Alpha)
						if cfg.CrashAt > 0 && pe == 0 && w == 0 && i == cfg.CheckpointIter {
							// The recovery soak's coordinated snapshot: one
							// initiator, machine-wide marker flood, every
							// process archives its checkpoint mid-workload.
							if err := me.Checkpoint(); err != nil {
								panic(fmt.Sprintf("chaos: checkpoint: %v", err))
							}
						}
						req[0] = byte(w)
						req[1] = byte(i)
						n, err := me.Call(peer, chaosEchoHandler, req, reply)
						if err != nil {
							panic(fmt.Sprintf("chaos: pe%d w%d iter %d: %v", pe, w, i, err))
						}
						if n != cfg.MsgSize || reply[0] != byte(w) || reply[1] != byte(i) {
							panic(fmt.Sprintf("chaos: pe%d w%d iter %d: corrupted echo (%d bytes)", pe, w, i, n))
						}
						host.Compute(cfg.Beta)
					}
				}, defaultSpawnOpts()))
			}
			for _, w := range ws {
				if _, err := t.JoinLocal(w); err != nil {
					panic(err)
				}
			}
		}
	}
	mains := make(map[comm.Addr]core.MainFunc, 2*cfg.Pairs)
	for pe := int32(0); pe < int32(2*cfg.Pairs); pe++ {
		mains[comm.Addr{PE: pe, Proc: 0}] = mk(pe)
	}
	res, err := rt.Run(mains)
	if err != nil {
		return ChaosResult{}, err
	}
	out := ChaosResult{
		TimeMS:      res.VirtualEnd.Millis(),
		Total:       res.Total,
		Faults:      plan.Stats(),
		FaultEvents: plan.Events(),
		Events:      make(map[comm.Addr][]trace.Event),
	}
	for _, a := range topo.Addrs() {
		out.Events[a] = rt.Process(a).EventLog().Snapshot()
	}
	return out, nil
}
