package experiments

import (
	"fmt"

	"chant/internal/core"
)

// Ablation E: how the polling policies scale with the thread population.
// The Scheduler-polls (WQ) walk tests *every* outstanding request at every
// scheduling point, so its per-message cost grows with the number of
// waiting threads, while PS inspects exactly one TCB per partial switch
// and the testany variant pays one call regardless of list length. This
// sweep quantifies the structural reason WQ loses in Tables 3-5.

// ScalingRow is one (policy, workers) measurement, normalized per message.
type ScalingRow struct {
	Policy     core.PolicyKind
	Workers    int
	TimeMS     float64
	MsgTest    uint64
	Messages   uint64
	TestPerMsg float64
	USPerMsg   float64
}

// ScalingWorkerCounts is the sweep's thread-population axis.
var ScalingWorkerCounts = []int{8, 12, 16, 24, 32}

// RunScaling sweeps thread count for the given policies at alpha=1000,
// beta=100.
func RunScaling(policies []core.PolicyKind) []ScalingRow {
	if policies == nil {
		policies = []core.PolicyKind{
			core.SchedulerPollsPS, core.SchedulerPollsWQ, core.SchedulerPollsWQAny,
		}
	}
	var rows []ScalingRow
	for _, pol := range policies {
		for _, workers := range ScalingWorkerCounts {
			cfg := StandardPollingBase
			cfg.Policy = pol
			cfg.Alpha = 1000
			cfg.Beta = 100
			cfg.Workers = workers
			r := RunPolling(cfg)
			messages := uint64(2 * workers * cfg.Iters)
			rows = append(rows, ScalingRow{
				Policy:     pol,
				Workers:    workers,
				TimeMS:     r.TimeMS,
				MsgTest:    r.MsgTest,
				Messages:   messages,
				TestPerMsg: float64(r.MsgTest) / float64(messages),
				USPerMsg:   r.TimeMS * 1000 / float64(messages),
			})
		}
	}
	return rows
}

// FormatScaling renders the sweep.
func FormatScaling(rows []ScalingRow, markdown bool) string {
	headers := []string{"policy", "threads/PE", "time ms", "msgtest", "msgtest/msg", "us/msg"}
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			policyLabel(r.Policy), fmt.Sprint(r.Workers), f1(r.TimeMS),
			u(r.MsgTest), f2(r.TestPerMsg), f1(r.USPerMsg),
		})
	}
	return renderTable(headers, out, markdown)
}
