// Real-mode data-plane measurements: the MPSC ingress ring, batched drain,
// and zero-copy matched receive, measured as a user would feel them — wall
// clock and heap allocations on real-mode machines over the in-memory
// transport. Like the hot-path suite these measure the implementation, not
// the simulated machine, so they live behind chantbench -exp real -json
// (BENCH_real.json) rather than in the paper tables.
package experiments

import (
	"runtime"
	"time"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
)

// RealRow is one polling policy's ping-pong figures.
type RealRow struct {
	Policy           string  `json:"policy"`
	PingPongNsOp     float64 `json:"pingpong_ns_op"`
	PingPongAllocsOp float64 `json:"pingpong_allocs_op"`
}

// MultiProducerRow compares the batched ingress drain against the serial
// per-message mailbox path with Senders producer PEs flooding one receiver.
// An op is one round: the receiver absorbing one message from each sender.
type MultiProducerRow struct {
	Senders     int     `json:"senders"`
	BatchedNsOp float64 `json:"batched_ns_op"`
	SerialNsOp  float64 `json:"serial_ns_op"`
	// Speedup is serial/batched wall time; meaningful only on multicore
	// hosts, where producers actually contend.
	Speedup float64 `json:"speedup_batched_vs_serial"`
	// AvgBatch is messages deposited per mailbox acquisition on the batched
	// arm — the figure the ring exists to raise above 1.
	AvgBatch float64 `json:"avg_batch"`
}

// RealResult is the BENCH_real.json payload.
type RealResult struct {
	// HostCores is runtime.NumCPU(): real-mode latency and contention
	// figures are only comparable across hosts with similar core counts.
	HostCores int       `json:"host_cores"`
	Rows      []RealRow `json:"rows"`

	// DirectShare is the fraction of ping-pong deliveries (PS policy) that
	// took the zero-copy matched-receive path instead of a pooled message.
	DirectShare float64 `json:"direct_share"`

	// Streaming: one-way 4 KiB message flood under a credit window.
	StreamMsgsPerSec float64 `json:"stream_msgs_per_sec"`
	StreamMBPerSec   float64 `json:"stream_mb_per_sec"`

	MultiProducer []MultiProducerRow `json:"multi_producer"`

	// Gate figures for chantbench -baseline: the best (lowest) ping-pong
	// latency across policies and the lowest allocation count.
	BestPingPongNsOp float64 `json:"best_pingpong_ns_op"`
	MinAllocsOp      float64 `json:"min_allocs_op"`
}

const realStreamMsgSize = 4096

// realPingPong runs rounds round trips on a 2-PE real-mode machine under
// one polling policy, reporting wall ns and heap allocations per round trip
// plus the share of deliveries that took the zero-copy direct path.
func realPingPong(policy core.PolicyKind, rounds int) (nsOp, allocsOp, directShare float64) {
	rt := core.NewRealRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: policy}, machine.Modern())
	var direct, ringMsgs uint64
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//chant:allow-nondet wall-clock benchmark timing
	start := time.Now()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			buf, out := make([]byte, 64), make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				t.Recv(peer, 1, buf)
			}
		},
		{PE: 1, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf, out := make([]byte, 64), make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Recv(peer, 1, buf)
				t.Send(peer, 1, out)
			}
			_, ringMsgs, direct = t.Process().Endpoint().IngressStats()
		},
	})
	//chant:allow-nondet wall-clock benchmark timing
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		panic(err)
	}
	if total := direct + ringMsgs; total > 0 {
		directShare = float64(direct) / float64(total)
	}
	return float64(elapsed.Nanoseconds()) / float64(rounds),
		float64(m1.Mallocs-m0.Mallocs) / float64(rounds), directShare
}

// realMultiProducer floods one receiver PE from senders peer PEs under a
// credit window, serial or batched, and reports wall ns per round (one
// message from each sender) plus the mean ingress batch size.
func realMultiProducer(senders, rounds int, serial bool) (nsPerRound, avgBatch float64) {
	const window = 32
	rt := core.NewRealRuntime(core.Topology{PEs: senders + 1, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	var batches, msgs uint64
	mains := map[comm.Addr]core.MainFunc{}
	mains[comm.Addr{PE: 0, Proc: 0}] = func(t *core.Thread) {
		if serial {
			t.Process().Endpoint().SetSerialDelivery(true)
		}
		for s := 1; s <= senders; s++ {
			t.Send(core.GlobalID{PE: int32(s), Proc: 0, Thread: 0}, 2, []byte{1})
		}
		buf := make([]byte, 16)
		got := make([]int, senders+1)
		for i := 0; i < senders*rounds; i++ {
			_, from, err := t.Recv(core.AnyThread, 1, buf)
			if err != nil {
				panic(err)
			}
			got[from.PE]++
			if got[from.PE]%window == 0 {
				t.Send(from, 3, []byte{1})
			}
		}
		batches, msgs, _ = t.Process().Endpoint().IngressStats()
	}
	for s := 1; s <= senders; s++ {
		mains[comm.Addr{PE: int32(s), Proc: 0}] = func(t *core.Thread) {
			recv := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			ack, out := make([]byte, 4), make([]byte, 16)
			if _, _, err := t.Recv(core.AnyThread, 2, ack); err != nil {
				panic(err)
			}
			for i := 0; i < rounds; i++ {
				t.Send(recv, 1, out)
				if (i+1)%window == 0 {
					if _, _, err := t.Recv(core.AnyThread, 3, ack); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	//chant:allow-nondet wall-clock benchmark timing
	start := time.Now()
	if _, err := rt.Run(mains); err != nil {
		panic(err)
	}
	//chant:allow-nondet wall-clock benchmark timing
	elapsed := time.Since(start)
	if batches > 0 {
		avgBatch = float64(msgs) / float64(batches)
	}
	return float64(elapsed.Nanoseconds()) / float64(rounds), avgBatch
}

// realStreaming floods rounds 4 KiB messages one way under a credit window
// and reports messages and megabytes per second.
func realStreaming(rounds int) (msgsPerSec, mbPerSec float64) {
	const window = 32
	rt := core.NewRealRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS, DisableServer: true}, machine.Modern())
	//chant:allow-nondet wall-clock benchmark timing
	start := time.Now()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			out, ack := make([]byte, realStreamMsgSize), make([]byte, 4)
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				if (i+1)%window == 0 {
					t.Recv(peer, 3, ack)
				}
			}
		},
		{PE: 1, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf := make([]byte, realStreamMsgSize)
			for i := 0; i < rounds; i++ {
				if _, _, err := t.Recv(core.AnyThread, 1, buf); err != nil {
					panic(err)
				}
				if (i+1)%window == 0 {
					t.Send(peer, 3, []byte{1})
				}
			}
		},
	})
	//chant:allow-nondet wall-clock benchmark timing
	elapsed := time.Since(start)
	if err != nil {
		panic(err)
	}
	secs := elapsed.Seconds()
	return float64(rounds) / secs,
		float64(rounds) * realStreamMsgSize / (1 << 20) / secs
}

// RunReal produces the BENCH_real.json measurements.
func RunReal() RealResult {
	res := RealResult{HostCores: runtime.NumCPU()}
	const pingRounds = 20000
	for _, pol := range []core.PolicyKind{
		core.ThreadPolls, core.SchedulerPollsPS, core.SchedulerPollsWQ,
	} {
		ns, allocs, share := realPingPong(pol, pingRounds)
		res.Rows = append(res.Rows, RealRow{
			Policy: pol.String(), PingPongNsOp: ns, PingPongAllocsOp: allocs,
		})
		if pol == core.SchedulerPollsPS {
			res.DirectShare = share
		}
		if res.BestPingPongNsOp == 0 || ns < res.BestPingPongNsOp {
			res.BestPingPongNsOp = ns
		}
		if len(res.Rows) == 1 || allocs < res.MinAllocsOp {
			res.MinAllocsOp = allocs
		}
	}
	res.StreamMsgsPerSec, res.StreamMBPerSec = realStreaming(50000)
	for _, senders := range []int{2, 4} {
		const rounds = 10000
		batched, avgBatch := realMultiProducer(senders, rounds, false)
		serial, _ := realMultiProducer(senders, rounds, true)
		res.MultiProducer = append(res.MultiProducer, MultiProducerRow{
			Senders:     senders,
			BatchedNsOp: batched,
			SerialNsOp:  serial,
			Speedup:     serial / batched,
			AvgBatch:    avgBatch,
		})
	}
	return res
}
