package experiments

import (
	"chant/internal/comm"
	"chant/internal/comm/simnet"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/sim"
	"chant/internal/trace"
	"chant/internal/ult"
)

// Table2Config parameterizes the point-to-point overhead experiment
// (paper Section 4.1): a tight message exchange between two processing
// elements, measured per message, for the raw communication layer and for
// Chant threads under two polling configurations.
type Table2Config struct {
	// Rounds is the number of message exchanges measured per size (the
	// paper used 100,000; the simulated averages converge long before
	// that).
	Rounds int
	// Warmup exchanges run before timing starts.
	Warmup int
	// Sizes are the message sizes in bytes (default Table2Sizes).
	Sizes []int
	// Model is the machine cost model (default Paragon1994).
	Model *machine.Model
	// ExtraThreads adds spinning compute threads per PE to the
	// thread-based configurations (0 reproduces Table 2; >0 defeats the
	// single-thread yield fast path, for the fast-path ablation).
	ExtraThreads int
}

func (c Table2Config) withDefaults() Table2Config {
	if c.Rounds == 0 {
		c.Rounds = 500
	}
	if c.Warmup == 0 {
		c.Warmup = 8
	}
	if len(c.Sizes) == 0 {
		c.Sizes = Table2Sizes
	}
	if c.Model == nil {
		c.Model = machine.Paragon1994()
	}
	return c
}

// Table2Row is one measured row: average time per message in microseconds
// for each configuration, plus thread overheads relative to the process
// baseline.
type Table2Row struct {
	Size      int
	ProcessUS float64
	TPUS      float64
	TPOverPct float64
	SPUS      float64
	SPOverPct float64
}

// RunTable2 reproduces Table 2 / Figure 8.
func RunTable2(cfg Table2Config) []Table2Row {
	cfg = cfg.withDefaults()
	rows := make([]Table2Row, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		procUS := processExchange(cfg, size)
		tpUS := threadExchange(cfg, size, core.ThreadPolls, core.DeliverCtx)
		spUS := threadExchange(cfg, size, core.SchedulerPollsWQ, core.DeliverCtx)
		rows = append(rows, Table2Row{
			Size:      size,
			ProcessUS: procUS,
			TPUS:      tpUS,
			TPOverPct: (tpUS - procUS) / procUS * 100,
			SPUS:      spUS,
			SPOverPct: (spUS - procUS) / procUS * 100,
		})
	}
	return rows
}

// processExchange measures the raw communication layer: two processes,
// NX-style blocking send/recv, no threads (the paper's "Process" column).
// It returns the average one-way message time in microseconds.
func processExchange(cfg Table2Config, size int) float64 {
	kernel := sim.NewKernel()
	net := simnet.New(kernel, cfg.Model)
	a := comm.Addr{PE: 0, Proc: 0}
	b := comm.Addr{PE: 1, Proc: 0}
	var elapsed sim.Duration
	var ready []*sim.Proc
	spawn := func(addr comm.Addr, body func(ep *comm.Endpoint)) {
		ready = append(ready, kernel.Spawn(addr.String(), func(p *sim.Proc) {
			host := machine.NewSimHost(p, cfg.Model)
			ep := net.NewEndpoint(addr, host, &trace.Counters{})
			p.WaitSignal() // both endpoints registered
			body(ep)
		}))
	}
	spawn(a, func(ep *comm.Endpoint) {
		buf := make([]byte, size)
		out := make([]byte, size)
		for i := 0; i < cfg.Warmup; i++ {
			ep.Send(b, 0, 1, 0, out)
			ep.Recv(comm.MatchAll, buf)
		}
		t0 := ep.Host().Now()
		for i := 0; i < cfg.Rounds; i++ {
			ep.Send(b, 0, 1, 0, out)
			ep.Recv(comm.MatchAll, buf)
		}
		elapsed = ep.Host().Now().Sub(t0)
	})
	spawn(b, func(ep *comm.Endpoint) {
		buf := make([]byte, size)
		out := make([]byte, size)
		for i := 0; i < cfg.Warmup+cfg.Rounds; i++ {
			ep.Recv(comm.MatchAll, buf)
			ep.Send(a, 0, 1, 0, out)
		}
	})
	kernel.At(0, func() {
		for _, p := range ready {
			p.Signal()
		}
	})
	if err := kernel.Run(0); err != nil {
		panic("experiments: table2 process run: " + err.Error())
	}
	// Each round is two messages (there and back).
	return elapsed.Micros() / float64(2*cfg.Rounds)
}

// threadExchange measures the same exchange between two Chant threads (one
// per PE plus optional spinner threads), under the given polling policy.
// The paper's Thread (TP) column is ThreadPolls; Thread (SP) is the
// Figure-6 scheduler-polling configuration, which forces a context switch
// per message received.
func threadExchange(cfg Table2Config, size int, policy core.PolicyKind, mode core.DeliveryMode) float64 {
	rt := core.NewSimRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: policy, Delivery: mode, DisableServer: true},
		cfg.Model)
	var elapsed sim.Duration
	peMain := func(pe int32) core.MainFunc {
		return func(t *core.Thread) {
			for i := 0; i < cfg.ExtraThreads; i++ {
				t.Process().CreateLocal("spin", func(me *core.Thread) {
					host := me.Process().Endpoint().Host()
					for {
						host.Compute(100)
						me.Yield()
					}
				}, ult.SpawnOpts{Daemon: true})
			}
			peer := core.GlobalID{PE: 1 - pe, Proc: 0, Thread: 0}
			buf := make([]byte, size)
			out := make([]byte, size)
			if pe == 0 {
				for i := 0; i < cfg.Warmup; i++ {
					t.Send(peer, 1, out)
					t.Recv(peer, 1, buf)
				}
				t0 := t.Process().Endpoint().Host().Now()
				for i := 0; i < cfg.Rounds; i++ {
					t.Send(peer, 1, out)
					t.Recv(peer, 1, buf)
				}
				elapsed = t.Process().Endpoint().Host().Now().Sub(t0)
			} else {
				for i := 0; i < cfg.Warmup+cfg.Rounds; i++ {
					t.Recv(peer, 1, buf)
					t.Send(peer, 1, out)
				}
			}
		}
	}
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: peMain(0),
		{PE: 1, Proc: 0}: peMain(1),
	})
	if err != nil {
		panic("experiments: table2 thread run: " + err.Error())
	}
	return elapsed.Micros() / float64(2*cfg.Rounds)
}
