// Parallel-kernel scaling measurements: the same ≥32-PE workload (replicated
// Table 3 polling pairs) run on the sequential reference kernel and on the
// parallel conservative kernel across GOMAXPROCS levels. Like the hot-path
// suite these are wall-clock numbers measuring the implementation, not the
// simulated machine — the simulated results are asserted bit-identical
// between the two kernels, here and in the invariance tests.
package experiments

import (
	"runtime"
	"time"

	"chant/internal/core"
)

// ParallelRow is one GOMAXPROCS level of the scaling sweep.
type ParallelRow struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// EffectiveProcs is runtime.GOMAXPROCS(0) as the row actually ran —
	// recorded so the JSON is self-describing on hosts where the requested
	// level exceeds the core count (host_cores says what the silicon can
	// deliver; this says what the scheduler was told).
	EffectiveProcs int `json:"effective_gomaxprocs"`
	Shards         int     `json:"shards"`
	WallMS         float64 `json:"wall_ms"`
	// Speedup is sequential wall time over this row's wall time.
	Speedup float64 `json:"speedup_vs_sequential"`
	// Windows is the number of execution windows the kernel drove;
	// InlineWindows is the subset the controller ran inline (single-shard
	// or predicted-tiny windows that skip the fan-out and barrier).
	Windows       uint64 `json:"windows"`
	InlineWindows uint64 `json:"inline_windows"`
	// AllocsPerWindow is whole-run heap allocations divided by windows,
	// measured on a separate instrumented run. It amortizes one-time setup
	// (processes, endpoints, message buffers) over the window count, so it
	// stays above zero even though steady-state windows allocate nothing —
	// sim.TestParKernelSteadyStateZeroAlloc asserts the exact-zero half.
	AllocsPerWindow float64 `json:"allocs_per_window"`
	// Identical reports whether the row's simulated results (all counters
	// and the virtual end time) matched the sequential run bit for bit.
	Identical bool `json:"identical"`
}

// ParallelResult is the BENCH_parallel.json payload.
type ParallelResult struct {
	PEs     int `json:"pes"`
	Workers int `json:"workers_per_pe"`
	Iters   int `json:"iters"`
	Shards  int `json:"shards"`
	// HostCores is runtime.NumCPU(), recorded once: the physical
	// parallelism available, against which the per-row effective GOMAXPROCS
	// should be read.
	HostCores int           `json:"host_cores"`
	SeqWallMS float64       `json:"sequential_wall_ms"`
	Rows      []ParallelRow `json:"rows"`
	// BestSpeedup is the best parallel speedup across rows whose GOMAXPROCS
	// does not exceed the host's cores (what the multicore acceptance
	// figure and the CI regression gate read).
	BestSpeedup float64 `json:"best_speedup"`
}

// parallelBenchBase is the benchmark workload: 32 simulated PEs (16
// replicated Table 3 pairs) of polling workers.
func parallelBenchBase() PollingConfig {
	return PollingConfig{
		Workers: 8, Iters: 60, MsgSize: 1024, Shift: 1,
		Alpha: 1000, Beta: 100, Pairs: 16,
		Policy: core.SchedulerPollsWQ,
	}
}

// timePolling runs cfg reps times and reports the fastest wall clock along
// with the (identical across reps — the kernels are deterministic) row and
// kernel stats.
func timePolling(cfg PollingConfig, reps int) (PollingRow, SimStats, float64) {
	var row PollingRow
	var stats SimStats
	best := 0.0
	for r := 0; r < reps; r++ {
		//chant:allow-nondet wall-clock benchmark timing
		start := time.Now()
		row, stats = RunPollingStats(cfg)
		//chant:allow-nondet wall-clock benchmark timing
		wall := float64(time.Since(start).Nanoseconds()) / 1e6
		if r == 0 || wall < best {
			best = wall
		}
	}
	return row, stats, best
}

// allocsPerWindow measures one instrumented (untimed) run of cfg and
// reports whole-run heap allocations per execution window.
func allocsPerWindow(cfg PollingConfig) float64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	_, stats := RunPollingStats(cfg)
	runtime.ReadMemStats(&m1)
	if stats.Windows == 0 {
		return 0
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(stats.Windows)
}

// ParallelBenchGOMAXPROCS are the host-parallelism levels the sweep times.
var ParallelBenchGOMAXPROCS = []int{1, 2, 4, 8}

// RunParallel produces the BENCH_parallel.json measurements: sequential vs
// parallel wall clock on the 32-PE workload across GOMAXPROCS, asserting
// result identity as it goes.
func RunParallel() ParallelResult {
	const reps = 3
	const shards = 8
	base := parallelBenchBase()
	res := ParallelResult{
		PEs:       2 * base.Pairs,
		Workers:   base.Workers,
		Iters:     base.Iters,
		Shards:    shards,
		HostCores: runtime.NumCPU(),
	}
	seqRow, _, seqWall := timePolling(base, reps)
	res.SeqWallMS = seqWall

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, gmp := range ParallelBenchGOMAXPROCS {
		runtime.GOMAXPROCS(gmp)
		cfg := base
		cfg.Shards = shards
		row, stats, wall := timePolling(cfg, reps)
		speedup := seqWall / wall
		res.Rows = append(res.Rows, ParallelRow{
			GOMAXPROCS:      gmp,
			EffectiveProcs:  runtime.GOMAXPROCS(0),
			Shards:          shards,
			WallMS:          wall,
			Speedup:         speedup,
			Windows:         stats.Windows,
			InlineWindows:   stats.InlineWindows,
			AllocsPerWindow: allocsPerWindow(cfg),
			Identical:       row == seqRow,
		})
		if gmp <= res.HostCores && speedup > res.BestSpeedup {
			res.BestSpeedup = speedup
		}
	}
	return res
}
