package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
)

// Event-count invariance witnesses. The constant-time hot paths (indexed
// ready queue, bucketed mailbox, ready-list polling, allocation pooling) are
// pure mechanism: they must not change WHAT the simulation computes, only
// how fast the real clock gets there. These goldens were captured from the
// seed's linear implementations; every row and hash below must stay
// bit-identical forever. A divergence means a hot-path "optimization" (or
// any later change) silently altered scheduling or matching order.

type pollingGolden struct {
	policy  core.PolicyKind
	alpha   int64
	ctxSw   uint64
	partial uint64
	msgTest uint64
	fails   uint64
	testAny uint64
	timeMS  float64
}

var pollingGoldens = []pollingGolden{
	{core.ThreadPolls, 1000, 560, 0, 1031, 549, 0, 99.565000},
	{core.ThreadPolls, 100000, 84, 0, 557, 75, 0, 964.031800},
	{core.SchedulerPollsPS, 1000, 502, 551, 551, 69, 0, 73.162000},
	{core.SchedulerPollsPS, 100000, 84, 77, 77, 15, 0, 957.857800},
	{core.SchedulerPollsWQ, 1000, 502, 0, 1453, 971, 0, 125.205000},
	{core.SchedulerPollsWQ, 100000, 92, 0, 997, 515, 0, 991.105800},
	{core.SchedulerPollsWQAny, 1000, 504, 0, 482, 482, 496, 109.605000},
	{core.SchedulerPollsWQAny, 100000, 92, 0, 482, 62, 100, 967.765800},
}

// hashChaos folds one chaos run's complete observable behaviour — final
// virtual clock, counters, fault record, and every per-process event stream
// in deterministic address order — into one FNV-1a word. The counters enter
// as Snapshot's %+v text, so adding a counter field (even one that stays
// zero here) re-pins the goldens; the individual figures in the error
// message distinguish a real behaviour change from such a re-pin.
func hashChaos(r ChaosResult) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "time=%.6f total=%+v faults=%+v\n", r.TimeMS, r.Total, r.Faults)
	for _, ev := range r.FaultEvents {
		fmt.Fprintf(h, "fault %+v\n", ev)
	}
	addrs := make([]comm.Addr, 0, len(r.Events))
	for a := range r.Events {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].PE != addrs[j].PE {
			return addrs[i].PE < addrs[j].PE
		}
		return addrs[i].Proc < addrs[j].Proc
	})
	for _, a := range addrs {
		for _, ev := range r.Events[a] {
			fmt.Fprintf(h, "%v %+v\n", a, ev)
		}
	}
	return h.Sum64()
}

// TestPollingEventInvariance pins every polling policy's context-switch,
// partial-switch, msgtest, and virtual-time figures (the inputs to the
// paper's Tables 2–5 and Figures 8–13) to the pre-optimization goldens.
func TestPollingEventInvariance(t *testing.T) {
	base := PollingConfig{Workers: 8, Iters: 30, MsgSize: 1024, Shift: 1}
	for _, g := range pollingGoldens {
		cfg := base
		cfg.Policy = g.policy
		cfg.Alpha = g.alpha
		cfg.Beta = 100
		row := RunPolling(cfg)
		if row.CtxSw != g.ctxSw || row.PartialSw != g.partial ||
			row.MsgTest != g.msgTest || row.MsgTestFails != g.fails ||
			row.TestAnyCalls != g.testAny || row.TimeMS != g.timeMS {
			t.Errorf("%s alpha=%d diverged from golden:\n got ctxsw=%d partial=%d msgtest=%d fails=%d testany=%d time=%.6f\nwant ctxsw=%d partial=%d msgtest=%d fails=%d testany=%d time=%.6f",
				g.policy, g.alpha,
				row.CtxSw, row.PartialSw, row.MsgTest, row.MsgTestFails, row.TestAnyCalls, row.TimeMS,
				g.ctxSw, g.partial, g.msgTest, g.fails, g.testAny, g.timeMS)
		}
	}
}

// TestChaosEventInvariance pins the complete fault-injection event streams
// (default and SchedulerPollsWQ policies) to the pre-optimization hashes:
// every send, retry, fault, and observation must replay byte-identically.
func TestChaosEventInvariance(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Workers: 4, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Re-pinned (from 0xae1d6a6af03a0108 / 0x1f652a152330d9b0) when crash
	// recovery extended the RSR request envelope with the sender's epoch
	// (rsrHeaderLen 13 -> 17): every request frame is four bytes longer, so
	// simulated message latencies — and with them the whole event stream —
	// shift. The recovery counters added to trace.Snapshot also enter the
	// hash text (all zero in this faults-only soak).
	if got := hashChaos(r); got != 0x64aefb9bc7bc6787 {
		t.Errorf("chaos stream hash = %#x, want 0x64aefb9bc7bc6787 (time=%.6f sends=%d retries=%d faultevents=%d)",
			got, r.TimeMS, r.Total.Sends, r.Total.RSRRetries, len(r.FaultEvents))
	}
	rwq, err := RunChaos(ChaosConfig{Workers: 4, Iters: 10, Policy: core.SchedulerPollsWQ})
	if err != nil {
		t.Fatal(err)
	}
	if got := hashChaos(rwq); got != 0x3285942fa943b5a4 {
		t.Errorf("chaos-wq stream hash = %#x, want 0x3285942fa943b5a4 (time=%.6f sends=%d retries=%d faultevents=%d)",
			got, rwq.TimeMS, rwq.Total.Sends, rwq.Total.RSRRetries, len(rwq.FaultEvents))
	}
}

// --- Parallel-kernel differential invariance ---
//
// The parallel conservative kernel must be pure mechanism, exactly like the
// hot paths above: same event streams, same counters, same virtual clock,
// only the host wall-clock changes. The tests below run the pinned Table
// 2–5 golden rows and the chaos soak hashes on the parallel kernel across
// shard counts and GOMAXPROCS values (including GOMAXPROCS=1, where the
// shard workers interleave on one core and any synchronization-order
// dependence would surface differently than at 8).

// parallelGOMAXPROCS are the host-parallelism levels every differential
// check runs at.
var parallelGOMAXPROCS = []int{1, 4, 8}

// withGOMAXPROCS runs fn at each parallelism level, restoring the previous
// setting afterwards.
func withGOMAXPROCS(t *testing.T, fn func(gmp int)) {
	t.Helper()
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, gmp := range parallelGOMAXPROCS {
		runtime.GOMAXPROCS(gmp)
		fn(gmp)
	}
}

// TestParallelPollingInvariance runs the pinned polling golden rows on the
// parallel kernel: every counter and the virtual end time must match the
// sequential goldens bit for bit at every shard count and GOMAXPROCS.
func TestParallelPollingInvariance(t *testing.T) {
	base := PollingConfig{Workers: 8, Iters: 30, MsgSize: 1024, Shift: 1}
	withGOMAXPROCS(t, func(gmp int) {
		for _, shards := range []int{2, 4} {
			if testing.Short() && shards != 2 {
				continue
			}
			for _, g := range pollingGoldens {
				if testing.Short() && g.alpha != 1000 {
					continue
				}
				cfg := base
				cfg.Policy = g.policy
				cfg.Alpha = g.alpha
				cfg.Beta = 100
				cfg.Shards = shards
				row := RunPolling(cfg)
				if row.CtxSw != g.ctxSw || row.PartialSw != g.partial ||
					row.MsgTest != g.msgTest || row.MsgTestFails != g.fails ||
					row.TestAnyCalls != g.testAny || row.TimeMS != g.timeMS {
					t.Errorf("gomaxprocs=%d shards=%d %s alpha=%d diverged from sequential golden:\n got ctxsw=%d partial=%d msgtest=%d fails=%d testany=%d time=%.6f\nwant ctxsw=%d partial=%d msgtest=%d fails=%d testany=%d time=%.6f",
						gmp, shards, g.policy, g.alpha,
						row.CtxSw, row.PartialSw, row.MsgTest, row.MsgTestFails, row.TestAnyCalls, row.TimeMS,
						g.ctxSw, g.partial, g.msgTest, g.fails, g.testAny, g.timeMS)
				}
			}
		}
	})
}

// TestParallelChaosInvariance runs the pinned chaos soaks — full fault
// plane, RSR retries, termination handshake — on the parallel kernel and
// requires the complete behaviour hash (counters, fault event stream,
// per-process scheduler event streams) to equal the sequential goldens.
func TestParallelChaosInvariance(t *testing.T) {
	goldens := []struct {
		cfg  ChaosConfig
		want uint64
	}{
		// Same hashes as TestChaosEventInvariance, re-pinned with it when the
		// RSR envelope grew the sender-epoch field (see the comment there).
		{ChaosConfig{Workers: 4, Iters: 10}, 0x64aefb9bc7bc6787},
		{ChaosConfig{Workers: 4, Iters: 10, Policy: core.SchedulerPollsWQ}, 0x3285942fa943b5a4},
	}
	withGOMAXPROCS(t, func(gmp int) {
		for gi, g := range goldens {
			if testing.Short() && gi > 0 {
				continue
			}
			cfg := g.cfg
			cfg.Shards = 2
			r, err := RunChaos(cfg)
			if err != nil {
				t.Fatalf("gomaxprocs=%d golden %d: parallel chaos run failed: %v", gmp, gi, err)
			}
			if got := hashChaos(r); got != g.want {
				t.Errorf("gomaxprocs=%d golden %d: parallel chaos stream hash = %#x, want %#x (time=%.6f sends=%d retries=%d faultevents=%d)",
					gmp, gi, got, g.want, r.TimeMS, r.Total.Sends, r.Total.RSRRetries, len(r.FaultEvents))
			}
		}
	})
}

// TestParallelLargeTopologyInvariance compares sequential and parallel runs
// of a 32-PE polling workload (16 replicated Table 3 pairs) — the benchmark
// shape — across shard counts that do and do not divide the PE count.
func TestParallelLargeTopologyInvariance(t *testing.T) {
	base := PollingConfig{Workers: 4, Iters: 15, MsgSize: 1024, Shift: 1,
		Alpha: 1000, Beta: 100, Pairs: 16, Policy: core.SchedulerPollsWQ}
	want := RunPolling(base)
	withGOMAXPROCS(t, func(gmp int) {
		for _, shards := range []int{2, 5, 8} {
			if testing.Short() && shards != 8 {
				continue
			}
			cfg := base
			cfg.Shards = shards
			got := RunPolling(cfg)
			if got != want {
				t.Errorf("gomaxprocs=%d shards=%d: 32-PE run diverged from sequential:\n got %+v\nwant %+v", gmp, shards, got, want)
			}
		}
	})
}
