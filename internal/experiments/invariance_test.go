package experiments

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"chant/internal/comm"
	"chant/internal/core"
)

// Event-count invariance witnesses. The constant-time hot paths (indexed
// ready queue, bucketed mailbox, ready-list polling, allocation pooling) are
// pure mechanism: they must not change WHAT the simulation computes, only
// how fast the real clock gets there. These goldens were captured from the
// seed's linear implementations; every row and hash below must stay
// bit-identical forever. A divergence means a hot-path "optimization" (or
// any later change) silently altered scheduling or matching order.

type pollingGolden struct {
	policy  core.PolicyKind
	alpha   int64
	ctxSw   uint64
	partial uint64
	msgTest uint64
	fails   uint64
	testAny uint64
	timeMS  float64
}

var pollingGoldens = []pollingGolden{
	{core.ThreadPolls, 1000, 560, 0, 1031, 549, 0, 99.565000},
	{core.ThreadPolls, 100000, 84, 0, 557, 75, 0, 964.031800},
	{core.SchedulerPollsPS, 1000, 502, 551, 551, 69, 0, 73.162000},
	{core.SchedulerPollsPS, 100000, 84, 77, 77, 15, 0, 957.857800},
	{core.SchedulerPollsWQ, 1000, 502, 0, 1453, 971, 0, 125.205000},
	{core.SchedulerPollsWQ, 100000, 92, 0, 997, 515, 0, 991.105800},
	{core.SchedulerPollsWQAny, 1000, 504, 0, 482, 482, 496, 109.605000},
	{core.SchedulerPollsWQAny, 100000, 92, 0, 482, 62, 100, 967.765800},
}

// hashChaos folds one chaos run's complete observable behaviour — final
// virtual clock, counters, fault record, and every per-process event stream
// in deterministic address order — into one FNV-1a word.
func hashChaos(r ChaosResult) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "time=%.6f total=%+v faults=%+v\n", r.TimeMS, r.Total, r.Faults)
	for _, ev := range r.FaultEvents {
		fmt.Fprintf(h, "fault %+v\n", ev)
	}
	addrs := make([]comm.Addr, 0, len(r.Events))
	for a := range r.Events {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].PE != addrs[j].PE {
			return addrs[i].PE < addrs[j].PE
		}
		return addrs[i].Proc < addrs[j].Proc
	})
	for _, a := range addrs {
		for _, ev := range r.Events[a] {
			fmt.Fprintf(h, "%v %+v\n", a, ev)
		}
	}
	return h.Sum64()
}

// TestPollingEventInvariance pins every polling policy's context-switch,
// partial-switch, msgtest, and virtual-time figures (the inputs to the
// paper's Tables 2–5 and Figures 8–13) to the pre-optimization goldens.
func TestPollingEventInvariance(t *testing.T) {
	base := PollingConfig{Workers: 8, Iters: 30, MsgSize: 1024, Shift: 1}
	for _, g := range pollingGoldens {
		cfg := base
		cfg.Policy = g.policy
		cfg.Alpha = g.alpha
		cfg.Beta = 100
		row := RunPolling(cfg)
		if row.CtxSw != g.ctxSw || row.PartialSw != g.partial ||
			row.MsgTest != g.msgTest || row.MsgTestFails != g.fails ||
			row.TestAnyCalls != g.testAny || row.TimeMS != g.timeMS {
			t.Errorf("%s alpha=%d diverged from golden:\n got ctxsw=%d partial=%d msgtest=%d fails=%d testany=%d time=%.6f\nwant ctxsw=%d partial=%d msgtest=%d fails=%d testany=%d time=%.6f",
				g.policy, g.alpha,
				row.CtxSw, row.PartialSw, row.MsgTest, row.MsgTestFails, row.TestAnyCalls, row.TimeMS,
				g.ctxSw, g.partial, g.msgTest, g.fails, g.testAny, g.timeMS)
		}
	}
}

// TestChaosEventInvariance pins the complete fault-injection event streams
// (default and SchedulerPollsWQ policies) to the pre-optimization hashes:
// every send, retry, fault, and observation must replay byte-identically.
func TestChaosEventInvariance(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Workers: 4, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := hashChaos(r); got != 0xf8ed5269ba846c02 {
		t.Errorf("chaos stream hash = %#x, want 0xf8ed5269ba846c02 (time=%.6f sends=%d retries=%d faultevents=%d)",
			got, r.TimeMS, r.Total.Sends, r.Total.RSRRetries, len(r.FaultEvents))
	}
	rwq, err := RunChaos(ChaosConfig{Workers: 4, Iters: 10, Policy: core.SchedulerPollsWQ})
	if err != nil {
		t.Fatal(err)
	}
	if got := hashChaos(rwq); got != 0x331ee3cc114f8d22 {
		t.Errorf("chaos-wq stream hash = %#x, want 0x331ee3cc114f8d22 (time=%.6f sends=%d retries=%d faultevents=%d)",
			got, rwq.TimeMS, rwq.Total.Sends, rwq.Total.RSRRetries, len(rwq.FaultEvents))
	}
}
