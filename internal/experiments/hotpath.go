// Hot-path A/B measurements: the constant-time structures introduced for
// the scheduler and mailbox, timed against the seed's linear reference
// implementations (which are kept alive precisely for this comparison), and
// a real-transport ping-pong that exercises the allocation pools. These are
// wall-clock numbers — unlike every other experiment in this package they
// measure the implementation, not the simulated machine — so they live
// behind chantbench -json and the BenchmarkHotPath* suite rather than in
// the paper tables.
package experiments

import (
	"runtime"
	"time"

	"chant/internal/comm"
	"chant/internal/core"
	"chant/internal/machine"
	"chant/internal/ult"
)

// HotPathResult is the BENCH_hotpath.json payload.
type HotPathResult struct {
	// Ready-queue churn: one pop+push cycle at a steady 1000-thread
	// population (the per-decision work of pickReady).
	QueueIndexedNsOp float64 `json:"queue_indexed_ns_op"`
	QueueLinearNsOp  float64 `json:"queue_linear_ns_op"`
	QueueSpeedup     float64 `json:"queue_speedup"`

	// Mailbox matching: one delivery+repost cycle against 1000 outstanding
	// receives with pseudo-random keys.
	MatchBucketedNsOp float64 `json:"match_bucketed_ns_op"`
	MatchLinearNsOp   float64 `json:"match_linear_ns_op"`
	MatchSpeedup      float64 `json:"match_speedup"`

	// Real-transport (memnet) ping-pong round trip, message+handle pools
	// active: wall ns and heap allocations per round trip.
	PingPongNsOp     float64 `json:"pingpong_ns_op"`
	PingPongAllocsOp float64 `json:"pingpong_allocs_op"`
}

const hotPathPopulation = 1000

// wallNsPerOp times op in batches until ~40ms have accumulated.
func wallNsPerOp(batch int, op func()) float64 {
	for i := 0; i < batch; i++ {
		op() // warm-up: fault in buckets, grow rings
	}
	var total time.Duration
	ops := 0
	for total < 40*time.Millisecond {
		//chant:allow-nondet wall-clock benchmark timing
		start := time.Now()
		for i := 0; i < batch; i++ {
			op()
		}
		//chant:allow-nondet wall-clock benchmark timing
		total += time.Since(start)
		ops += batch
	}
	return float64(total.Nanoseconds()) / float64(ops)
}

type readyQueue interface {
	Push(*ult.TCB)
	Pop() *ult.TCB
}

func queueChurnNs(q readyQueue) float64 {
	for i := 0; i < hotPathPopulation; i++ {
		q.Push(ult.NewBenchTCB(int32(i), i%8))
	}
	return wallNsPerOp(4096, func() { q.Push(q.Pop()) })
}

type matcher interface {
	Deliver(msg *comm.Message) *comm.RecvHandle
	Post(h *comm.RecvHandle)
}

type bucketedMatcher struct{ m *comm.Matcher }

func (e bucketedMatcher) Deliver(msg *comm.Message) *comm.RecvHandle {
	h, _ := e.m.Deliver(msg, 0)
	return h
}
func (e bucketedMatcher) Post(h *comm.RecvHandle) { e.m.Post(h, 0) }

type linearMatcher struct{ m *comm.RefMatcher }

func (e linearMatcher) Deliver(msg *comm.Message) *comm.RecvHandle {
	h, _ := e.m.Deliver(msg, 0)
	return h
}
func (e linearMatcher) Post(h *comm.RecvHandle) { e.m.Post(h, 0) }

func matchChurnNs(eng matcher) float64 {
	spec := func(k int) comm.MatchSpec {
		return comm.MatchSpec{SrcPE: 1, SrcProc: 0, SrcThread: 0, Ctx: 0, Tag: int32(k)}
	}
	for i := 0; i < hotPathPopulation; i++ {
		eng.Post(comm.NewRecvHandle(spec(i), make([]byte, 8)))
	}
	msg := &comm.Message{Data: []byte("ping")}
	buf := make([]byte, 8)
	rng := uint32(12345) // LCG keys; a cyclic key would hide the linear scan
	return wallNsPerOp(1024, func() {
		rng = rng*1664525 + 1013904223
		k := int(rng % uint32(hotPathPopulation))
		msg.Hdr = comm.Header{SrcPE: 1, Tag: int32(k)}
		h := eng.Deliver(msg)
		comm.RearmHandle(h, spec(k), buf)
		eng.Post(h)
	})
}

// pingPong runs rounds round trips on a 2-PE real-mode machine and reports
// wall ns and heap allocations per round trip. The figure includes machine
// setup/teardown amortized over the rounds, so use enough rounds.
func pingPong(rounds int) (nsOp, allocsOp float64) {
	rt := core.NewRealRuntime(core.Topology{PEs: 2, ProcsPerPE: 1},
		core.Config{Policy: core.SchedulerPollsPS}, machine.Modern())
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//chant:allow-nondet wall-clock benchmark timing
	start := time.Now()
	_, err := rt.Run(map[comm.Addr]core.MainFunc{
		{PE: 0, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 1, Proc: 0, Thread: 0}
			buf, out := make([]byte, 64), make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Send(peer, 1, out)
				t.Recv(peer, 1, buf)
			}
		},
		{PE: 1, Proc: 0}: func(t *core.Thread) {
			peer := core.GlobalID{PE: 0, Proc: 0, Thread: 0}
			buf, out := make([]byte, 64), make([]byte, 64)
			for i := 0; i < rounds; i++ {
				t.Recv(peer, 1, buf)
				t.Send(peer, 1, out)
			}
		},
	})
	//chant:allow-nondet wall-clock benchmark timing
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		panic(err)
	}
	return float64(elapsed.Nanoseconds()) / float64(rounds),
		float64(m1.Mallocs-m0.Mallocs) / float64(rounds)
}

// RunHotPath produces the BENCH_hotpath.json measurements.
func RunHotPath() HotPathResult {
	var r HotPathResult
	r.QueueIndexedNsOp = queueChurnNs(&ult.ReadyQueue{})
	r.QueueLinearNsOp = queueChurnNs(&ult.LinearQueue{})
	r.QueueSpeedup = r.QueueLinearNsOp / r.QueueIndexedNsOp
	r.MatchBucketedNsOp = matchChurnNs(bucketedMatcher{comm.NewMatcher()})
	r.MatchLinearNsOp = matchChurnNs(linearMatcher{&comm.RefMatcher{}})
	r.MatchSpeedup = r.MatchLinearNsOp / r.MatchBucketedNsOp
	r.PingPongNsOp, r.PingPongAllocsOp = pingPong(20000)
	return r
}
