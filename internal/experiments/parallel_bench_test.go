package experiments

import (
	"runtime"
	"testing"
)

// TestParallelBench smoke-tests the scaling sweep: every row must be
// bit-identical to the sequential run regardless of host size, and on hosts
// with at least four cores the best parallel configuration must actually be
// faster (the BENCH_parallel.json acceptance figure is ≥1.5x; the test
// keeps a noise margin). Smaller hosts skip the speedup assertion — a
// one-core machine cannot exhibit parallel speedup by construction.
func TestParallelBench(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark; skipped in short mode")
	}
	r := RunParallel()
	for _, row := range r.Rows {
		if !row.Identical {
			t.Errorf("GOMAXPROCS=%d shards=%d: parallel results diverged from sequential", row.GOMAXPROCS, row.Shards)
		}
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d cores; the speedup assertion needs at least 4", runtime.NumCPU())
	}
	if r.BestSpeedup < 1.2 {
		t.Errorf("best parallel speedup %.2fx on a %d-core host; expected clear speedup (artifact target ≥1.5x)", r.BestSpeedup, r.HostCores)
	}
}
