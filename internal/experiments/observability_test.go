package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"chant/internal/core"
)

// smallTraceCell is a deliberately tiny Table-3 cell so the golden
// determinism test stays fast while still exercising every span-emitting
// layer (scheduler, comm, polling policy).
func smallTraceCell() PollingConfig {
	return PollingConfig{
		Workers: 4,
		Iters:   8,
		Alpha:   50,
		Beta:    100,
		MsgSize: 256,
		Seed:    7,
		Policy:  core.SchedulerPollsPS,
	}
}

// TestWritePollingTraceDeterministic runs the same traced cell twice and
// requires byte-identical JSON: the sim is deterministic, timestamps are
// virtual, and the exporter sorts spans canonically, so any divergence is
// a bug in one of those three.
func TestWritePollingTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	rowA, nA, err := WritePollingTrace(&a, smallTraceCell())
	if err != nil {
		t.Fatalf("first traced run: %v", err)
	}
	rowB, nB, err := WritePollingTrace(&b, smallTraceCell())
	if err != nil {
		t.Fatalf("second traced run: %v", err)
	}
	if nA == 0 {
		t.Fatal("traced run emitted zero spans")
	}
	if nA != nB {
		t.Fatalf("span counts differ across identical runs: %d vs %d", nA, nB)
	}
	if rowA != rowB {
		t.Fatalf("measured rows differ across identical runs:\n%+v\n%+v", rowA, rowB)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace JSON not byte-deterministic (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestWritePollingTraceValidJSON checks the exported trace parses as
// Chrome trace_event JSON with both metadata and complete events present.
func TestWritePollingTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := WritePollingTrace(&buf, smallTraceCell()); err != nil {
		t.Fatalf("WritePollingTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var meta, complete int
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			names[ev.Name] = true
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta == 0 || complete == 0 {
		t.Fatalf("want both metadata and complete events, got M=%d X=%d", meta, complete)
	}
	// The polling workload must at least show scheduler occupancy and
	// message sends; PS also parks threads, producing blocked intervals.
	for _, want := range []string{"run", "send", "blocked"} {
		if !names[want] {
			t.Fatalf("no %q spans in traced polling run (saw %v)", want, names)
		}
	}
}
