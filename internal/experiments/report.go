package experiments

import (
	"fmt"
	"strings"
)

// FullReport runs every experiment and renders the complete
// paper-vs-measured report. With markdown set it produces the document
// stored as EXPERIMENTS.md; otherwise a terminal rendering with ASCII
// figures.
func FullReport(markdown bool) string {
	var b strings.Builder
	h := func(level int, title string) {
		if markdown {
			fmt.Fprintf(&b, "\n%s %s\n\n", strings.Repeat("#", level), title)
		} else {
			fmt.Fprintf(&b, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
		}
	}
	p := func(text string) {
		b.WriteString(text)
		b.WriteString("\n")
	}
	// chart output is preformatted text; fence it in markdown.
	chart := func(s string) {
		if markdown {
			b.WriteString("```\n" + s + "```\n")
		} else {
			b.WriteString(s)
		}
	}
	// tables render natively in both modes (pipe tables in markdown).
	table := func(s string) { b.WriteString(s) }

	if markdown {
		p("# Chant-Go: paper-vs-measured")
		p("")
		p("Reproduction of the evaluation in *On the Design of Chant: A Talking")
		p("Threads Package* (Haines, Cronk, Mehrotra; SC 1994). Simulated runs use")
		p("the `paragon-1994` cost model, calibrated from the paper's own Table 2")
		p("(wire curve) and Tables 3–5 (msgtest / switch / compute-unit costs).")
		p("Event counts are exact properties of the scheduler and messaging logic;")
		p("reported times are virtual. Every simulated section is deterministic and")
		p("regenerates identically via `chantbench -report -md`; only Table 1")
		p("measures the machine running the report, so it varies with the host.")
	}

	h(2, "Table 1 — thread package operations")
	p(wrap("The paper's Table 1 lists create/switch costs of five contemporary "+
		"thread packages on a SparcStation 10. Our analog measures the ult "+
		"package's real costs on the machine running this report. Goroutine-backed "+
		"cooperative threads land in the same order of magnitude as the 1990s "+
		"user-level packages (microseconds), with creation cheaper than the "+
		"paper's packages because stacks are lazily grown by the Go runtime.", markdown))
	table(FormatTable1(RunTable1(8000), markdown))

	t2 := RunTable2(Table2Config{})
	h(2, "Table 2 — thread-based point-to-point overhead")
	p(wrap("Two PEs exchange messages: the raw communication layer (Process) vs. "+
		"Chant threads that poll for themselves (TP) vs. scheduler polling that "+
		"forces a context switch per message (SP). Paper conclusions reproduced: "+
		"thread overhead is small, TP < SP at every size, and overhead shrinks as "+
		"message size grows. The Process column matches the paper within the "+
		"calibration tolerance (<10%, exact at the fit's anchor sizes). Measured "+
		"TP overhead is somewhat higher than the paper's at 1 KiB (13% vs 6.4%) "+
		"because the simulated poll grid quantizes the arrival-to-notice delay.", markdown))
	table(FormatTable2(t2, markdown))

	h(2, "Figure 8 — execution times for native and thread-based communication")
	chart(FormatFig8(t2))

	sweeps := map[int64]PollingSweep{}
	for _, beta := range []int64{100, 1000, 0} {
		sweeps[beta] = RunPollingSweep(beta, nil, StandardPollingBase)
	}

	pollingNote := wrap("Workload: 2 PEs, 12 threads each, 100 iterations of "+
		"{compute(alpha); send; compute(beta); recv} (paper Figure 9), 4 KiB "+
		"messages, thread w paired with thread w+1 (mod 12) on the other PE — the "+
		"paper does not publish its message size or pairing; these were chosen so "+
		"the ready-queue/latency interplay matches the published dynamics. Paper "+
		"conclusions reproduced: Scheduler-polls (PS) is fastest everywhere; "+
		"Thread-polls is a close second (paper: ~10% worse; measured: 2–43% "+
		"depending on alpha); Scheduler-polls (WQ) is much worse, and its excess "+
		"is exactly its msgtest volume; WQ performs the fewest complete context "+
		"switches and Thread-polls the most; all three converge as alpha grows. "+
		"Deviation: at alpha=100000 the deterministic workload pipelines (most "+
		"receives complete at post time), so switch counts drop instead of "+
		"staying flat; time ratios still converge as in the paper.", markdown)

	h(2, "Table 3 — polling algorithms, beta = 100")
	p(pollingNote)
	table(FormatPollingSweep(sweeps[100], PaperTable3, markdown))

	h(2, "Figure 10 — execution times (beta = 100)")
	chart(FormatPollingChart(sweeps[100], "time", "Figure 10: execution time", "ms"))
	h(2, "Figure 11 — complete context switches (beta = 100)")
	chart(FormatPollingChart(sweeps[100], "ctxsw", "Figure 11: context switches", ""))
	h(2, "Figure 12 — msgtest calls (beta = 100)")
	chart(FormatPollingChart(sweeps[100], "msgtest", "Figure 12: msgtest calls", ""))
	h(2, "Figure 13 — average waiting threads (beta = 100)")
	p(wrap("The paper reads 2–4.5 average waiting threads off this figure, rising "+
		"with alpha. Measured averages sit in the same few-threads band at small "+
		"alpha; the trend with alpha differs (see EXPERIMENTS.md commentary): in "+
		"a deterministic simulation the outstanding-receive window tracks the "+
		"wire latency rather than the drift between PEs, so waiting shrinks "+
		"relative to iteration time until the pipelined regime flips it upward.", markdown))
	chart(FormatPollingChart(sweeps[100], "waiting", "Figure 13: average waiting threads", ""))

	h(2, "Table 4 — polling algorithms, beta = 1000")
	table(FormatPollingSweep(sweeps[1000], PaperTable4, markdown))

	h(2, "Table 5 — polling algorithms, beta = 0")
	table(FormatPollingSweep(sweeps[0], PaperTable5, markdown))

	h(2, "Ablation A — WQ with msgtestany (the paper's MPI hypothesis)")
	p(wrap("Section 4.2: \"For systems that could implement this algorithm as "+
		"originally intended, with a single msgtestany call rather than a test "+
		"for each individual message, we expect the relative performance of this "+
		"algorithm to change. We hope to test this hypothesis on a future version "+
		"of Chant using the MPI communication system.\" Tested here: one "+
		"msgtestany per scheduling point collapses WQ's testing cost and brings "+
		"it to within a few percent of PS — the hypothesis holds.", markdown))
	table(FormatPollingSweep(RunAblationTestAny(), PaperTable3, markdown))

	h(2, "Ablation B — the single-thread yield fast path")
	p(wrap("Section 4.1/5: the worst-case thread overhead \"can be halved by "+
		"avoiding a context switch when only a single thread exists on a "+
		"processing element.\" With spinning threads added, every poll pays real "+
		"switches and mean overhead rises well above the single-thread fast "+
		"path's. (Individual sizes show deterministic phase effects; compare "+
		"means.)", markdown))
	table(FormatAblationFastPath(RunAblationFastPath(), markdown))

	h(2, "Ablation C — where the thread id travels (delivery designs)")
	p(wrap("Section 3.1 argues the thread name must ride in the message header, "+
		"not the body: body embedding forces an intermediate thread plus copies "+
		"on both sides. Measured: header modes (ctx field, packed tag) cost the "+
		"same, while body embedding adds a per-byte penalty that grows with "+
		"message size — the quantitative case for the design the paper chose.", markdown))
	table(FormatAblationDelivery(RunAblationDelivery(), markdown))

	h(2, "Ablation E — polling cost vs thread population")
	p(wrap("The Scheduler-polls (WQ) walk tests every outstanding request at "+
		"every scheduling point, so its testing volume scales with the waiting "+
		"population while PS inspects one TCB per partial switch and the "+
		"testany variant pays a single call regardless of list length. "+
		"Per-message cost: WQ stays well above PS at every population; the "+
		"testany variant closes most of the gap.", markdown))
	table(FormatScaling(RunScaling(nil), markdown))

	h(2, "Contrast — the polling experiment on modern hardware")
	p(wrap("The same workload under the Modern cost model (RDMA-class wire, "+
		"nanosecond msgtest): the NX-era cost asymmetry that condemned WQ "+
		"disappears, and all three policies land within a few percent of each "+
		"other — the paper's policy ranking is a property of 1994 testing "+
		"costs, while its architectural conclusions (header-carried names, "+
		"interrupt-free server thread) are not.", markdown))
	table(FormatPollingSweep(RunModernContrast(), nil, markdown))

	return b.String()
}

// wrap reflows text to ~78 columns for the terminal; markdown mode leaves
// a single paragraph line for the renderer to wrap.
func wrap(text string, markdown bool) string {
	if markdown {
		return text
	}
	words := strings.Fields(text)
	var b strings.Builder
	col := 0
	for _, w := range words {
		if col+len(w)+1 > 78 {
			b.WriteString("\n")
			col = 0
		} else if col > 0 {
			b.WriteString(" ")
			col++
		}
		b.WriteString(w)
		col += len(w)
	}
	return b.String()
}
