//go:build chantdebug

package check

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// goid parses the current goroutine's id out of its stack header. It is
// slow and officially discouraged, which is exactly why it lives behind the
// chantdebug build tag: debug builds trade speed for catching the
// wrong-goroutine bugs the Go runtime gives no other handle on.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// The header reads "goroutine 123 [running]:".
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseInt(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	Failf("check: cannot parse goroutine id from %q", buf[:n])
	return 0
}

// Owner is a scheduling-domain ownership token. A cooperative domain (an
// ult scheduler and its threads) spans many goroutines but only one may run
// at a time; the token records which. The running side releases the token
// before every coroutine handoff and the resuming side acquires it after,
// so channel synchronization orders every access. Assert then catches calls
// entering the domain from any goroutine that was never handed the token.
//
// The zero Owner is valid and unowned. The mutex exists so that the misuse
// being detected — a foreign goroutine racing the domain — reads consistent
// state and fails cleanly under -race rather than as a data race.
type Owner struct {
	mu   sync.Mutex
	gid  int64 // owning goroutine, 0 while unowned
	name string
}

// Acquire takes the token for the current goroutine, panicking if another
// goroutine holds it (two sides of a handoff both believing they run).
func (o *Owner) Acquire(name string) {
	g := goid()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.gid != 0 && o.gid != g {
		Failf("check: %s acquiring ownership on goroutine %d, but goroutine %d (%s) still holds it", name, g, o.gid, o.name)
	}
	o.gid, o.name = g, name
}

// Release gives the token up before a handoff, panicking if the caller is
// not the owner.
func (o *Owner) Release() {
	g := goid()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.gid != 0 && o.gid != g {
		Failf("check: goroutine %d releasing ownership held by goroutine %d (%s)", g, o.gid, o.name)
	}
	o.gid, o.name = 0, ""
}

// Assert panics unless the current goroutine holds the token or the token
// is unowned (the domain is not running — setup calls before Run are
// legitimate).
func (o *Owner) Assert(op string) {
	g := goid()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.gid != 0 && o.gid != g {
		Failf("check: %s called from goroutine %d outside the scheduling domain owned by goroutine %d (%s)", op, g, o.gid, o.name)
	}
}
