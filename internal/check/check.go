// Package check is Chant's runtime invariant checker: the dynamic
// counterpart to the static chantvet analyzers. Built normally it compiles
// to nothing — Enabled is a false constant and every hook is an inlinable
// empty method — but built with -tags chantdebug it arms:
//
//   - an Owner token per cooperative scheduling domain (one per ult.Sched),
//     transferred at every coroutine handoff, so any API call arriving from
//     a goroutine outside the domain panics at the call instead of
//     corrupting scheduler state later;
//   - accounting audits in the ult.Sched run loop, cross-checking the
//     cached ready/blocked/live counts against the ground truth of thread
//     states every scheduling iteration;
//   - a monotonic-time audit on the simulation kernel's event heap.
//
// Violations panic through Failf with a diagnostic dump, because an
// invariant breach means later behaviour is undefined — there is nothing
// sensible to return.
package check

import "fmt"

// Failf reports an invariant violation: it panics with the formatted
// message. Callers include whatever state dump makes the violation
// diagnosable; Go's panic output supplies the goroutine stacks.
func Failf(format string, args ...any) {
	panic("chant invariant violated: " + fmt.Sprintf(format, args...))
}
