//go:build chantdebug

package check_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"chant/internal/check"
)

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), substr) {
			t.Fatalf("expected panic containing %q, got %v", substr, r)
		}
	}()
	fn()
	t.Fatalf("no panic; expected one containing %q", substr)
}

func TestOwnerSameGoroutineLifecycle(t *testing.T) {
	var o check.Owner
	o.Assert("pre") // unowned: setup calls are legitimate
	o.Acquire("a")
	o.Assert("held")
	o.Release()
	o.Assert("post")
}

func TestOwnerAssertFromForeignGoroutine(t *testing.T) {
	var o check.Owner
	o.Acquire("domain")
	defer o.Release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		expectPanic(t, "outside the scheduling domain", func() { o.Assert("op") })
	}()
	wg.Wait()
}

func TestOwnerDoubleAcquireAcrossGoroutines(t *testing.T) {
	var o check.Owner
	o.Acquire("first")
	defer o.Release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		expectPanic(t, "still holds it", func() { o.Acquire("second") })
	}()
	wg.Wait()
}

func TestOwnerForeignRelease(t *testing.T) {
	var o check.Owner
	o.Acquire("holder")
	defer o.Release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		expectPanic(t, "releasing ownership held by", func() { o.Release() })
	}()
	wg.Wait()
}

// TestOwnerHandoff mirrors how the scheduler transfers the token across a
// coroutine handoff: release before the channel send, acquire after the
// receive.
func TestOwnerHandoff(t *testing.T) {
	var o check.Owner
	o.Acquire("side-a")
	ping, pong := make(chan struct{}), make(chan struct{})
	go func() {
		<-ping
		o.Acquire("side-b")
		o.Assert("work on b")
		o.Release()
		pong <- struct{}{}
	}()
	o.Release()
	ping <- struct{}{}
	<-pong
	o.Acquire("side-a again")
	o.Assert("work on a")
	o.Release()
}
