//go:build !chantdebug

package check

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Owner is inert without the chantdebug build tag: an empty struct whose
// methods inline to nothing. Call sites guard any argument computation with
// `if check.Enabled` so release builds pay nothing at all.
type Owner struct{}

// Acquire is a no-op in release builds.
func (*Owner) Acquire(string) {}

// Release is a no-op in release builds.
func (*Owner) Release() {}

// Assert is a no-op in release builds.
func (*Owner) Assert(string) {}
