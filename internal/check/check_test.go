package check_test

import (
	"strings"
	"testing"

	"chant/internal/check"
)

// TestFailfPanics runs in every build mode: Failf is the one hook that is
// never compiled out, since Enabled-guarded call sites are its only users.
func TestFailfPanics(t *testing.T) {
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.HasPrefix(s, "chant invariant violated: boom 7") {
			t.Fatalf("Failf panicked with %v", r)
		}
	}()
	check.Failf("boom %d", 7)
	t.Fatal("Failf returned")
}
