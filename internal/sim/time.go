// Package sim provides a deterministic, sequential discrete-event simulation
// kernel used to model a distributed-memory multicomputer (the paper's Intel
// Paragon). The kernel maintains a virtual clock and an event heap, and runs
// coroutine-style processes one at a time in global virtual-time order, so a
// run is exactly reproducible given the same inputs.
//
// The kernel is intentionally minimal: events, processes with explicit time
// advancement, park/signal for idle waiting, and a seedable random number
// generator. Higher layers (the machine model, the simulated network, the
// user-level thread scheduler) are built on these primitives.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Nanosecond resolution lets cost models express sub-microsecond
// per-byte costs without rounding error.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports d as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Scale returns d scaled by the dimensionless factor f, rounded to the
// nearest nanosecond.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}

// String formats a virtual time in microseconds, the unit used throughout
// the paper's tables.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// String formats a duration in microseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Micros()) }
