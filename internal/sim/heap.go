package sim

// event is a scheduled occurrence in virtual time. Exactly one of fn or proc
// is set: fn is a kernel callback run inline; proc is a process to resume.
type event struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically (FIFO)
	fn   func()
	proc *Proc
}

// eventKey is an event's global position: events execute in ascending
// (at, seq) order. Sequence numbers start at 1, so a key with seq 0 sorts
// before every real event at the same instant — the parallel kernel uses
// such keys as exclusive window bounds.
type eventKey struct {
	at  Time
	seq uint64
}

func (k eventKey) less(o eventKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	return k.seq < o.seq
}

// eventHeap is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than using container/heap to avoid interface boxing on the hot path;
// the simulator pushes and pops one event per virtual-time step.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	if h.ev[i].at != h.ev[j].at {
		return h.ev[i].at < h.ev[j].at
	}
	return h.ev[i].seq < h.ev[j].seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev[last] = event{} // clear references for the garbage collector
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// peekTime reports the virtual time of the earliest event. It must not be
// called on an empty heap.
func (h *eventHeap) peekTime() Time { return h.ev[0].at }

// peekKey reports the (time, seq) key of the earliest event. It must not be
// called on an empty heap.
//
// There is deliberately no bulk-rewrite/re-heapify operation: the parallel
// kernel holds insertions that outlive their window out of the heap and
// pushes them at the barrier already resolved, so keys in a heap are never
// rewritten in place.
func (h *eventHeap) peekKey() eventKey { return eventKey{h.ev[0].at, h.ev[0].seq} }
