package sim

import (
	"fmt"
	"math"

	"chant/internal/check"
)

// The window barrier merge.
//
// After a window, each active shard holds a log of the events it executed,
// in order; the controller must interleave those logs into the global
// sequential order and assign true sequence numbers to every in-window
// insertion in that order. Three strategies produce the identical stream:
//
//   - a single-shard replay when only one shard executed anything (no
//     interleaving to compute — the common case for sparse workloads);
//   - a loser-tree k-way merge, O(total × log shards) comparisons, the
//     production path when several shards ran;
//   - the original selection scan, O(total × shards), retained as the
//     reference the differential merge tests replay against (the
//     Matcher/RefMatcher pattern).
//
// Provisional-key resolution folds into tree replay: a leaf's key is
// computed when its record becomes the shard's merge head, at which point
// the inserter — an earlier record of the same log — has already been
// merged and its resolution recorded.

// sentinelKey sorts after every real event key; it marks an exhausted
// merge leaf.
var sentinelKey = eventKey{at: Time(math.MaxInt64), seq: ^uint64(0)}

// recordKey resolves one log record's execution key to its true (time, seq)
// position. It reports false only when the key is provisional and its
// inserter has not been merged yet — impossible while the shard log order
// invariant holds.
func (sh *shardState) recordKey(r *execRecord) (eventKey, bool) {
	seq := r.seq
	if seq >= provBase {
		n := seq &^ provBase
		if n > uint64(len(sh.resolve)) || sh.resolve[n-1] == 0 {
			return eventKey{}, false
		}
		seq = sh.resolve[n-1]
	}
	return eventKey{r.at, seq}, true
}

// applyRecord performs the barrier-side half of one merged record, shared by
// every merge strategy: it assigns true sequence numbers to the record's
// insertions in order, records provisional resolutions, pushes held-back
// local insertions and cross-shard insertions under their true seqs, and
// replays the journal. It clears the record's references but keeps the
// slice capacity for the next window.
func (pk *ParKernel) applyRecord(sh *shardState, r *execRecord, bound eventKey) {
	for i := range r.ins {
		ins := &r.ins[i]
		g := pk.nextSeq()
		if ins.prov != 0 {
			n := ins.prov &^ provBase
			for uint64(len(sh.resolve)) < n {
				sh.resolve = append(sh.resolve, 0)
			}
			sh.resolve[n-1] = g
			if ins.held {
				// The targeted rewrite: the event never entered the heap
				// under its provisional key, so instead of scanning and
				// re-heapifying the shard heap the barrier pushes it once,
				// already resolved — one O(log n) sift per held event.
				ins.tk.heap.push(event{at: ins.at, seq: g, fn: ins.fn, proc: ins.proc})
			}
			continue
		}
		if ins.at < bound.at {
			panic(fmt.Sprintf("sim: lookahead violation: cross-shard event at %v lands inside the window ending at %v; cross-shard effects must pay at least alpha=%v", ins.at, bound.at, pk.alpha))
		}
		ins.tk.heap.push(event{at: ins.at, seq: g, fn: ins.fn, proc: ins.proc})
	}
	for _, fn := range r.jrn {
		fn()
	}
	clear(r.ins)
	r.ins = r.ins[:0]
	clear(r.jrn)
	r.jrn = r.jrn[:0]
}

// merge is the window barrier: it interleaves the shard execution logs into
// the global sequential order, applying each record (sequence assignment,
// held and cross-shard pushes, journal replay) as it is merged, then resets
// the window state and advances the global clock. Runs single-threaded on
// the controller.
func (pk *ParKernel) merge(bound eventKey) {
	shards := pk.shards
	total, nactive, last := 0, 0, -1
	for _, si := range pk.active {
		if n := len(shards[si].shard.log); n > 0 {
			total += n
			nactive++
			last = si
		}
	}
	pk.lastTotal = total

	switch {
	case total == 0:
		// Deadline-capped window with nothing below the bound; no state to
		// fold back.
	case pk.refMerge:
		pk.mergeSelect(bound, total)
	case nactive == 1:
		// One shard ran: the merged order is its log order verbatim.
		sh := shards[last].shard
		for i := range sh.log {
			pk.applyRecord(sh, &sh.log[i], bound)
		}
	default:
		pk.mergeTree(bound, total)
	}
	pk.Events += uint64(total)

	for _, si := range pk.active {
		s := shards[si]
		sh := s.shard
		if check.Enabled {
			// Held-back insertion bookkeeping means no provisional key can
			// survive in a heap past the barrier; verify in debug builds.
			for i := range s.heap.ev {
				if s.heap.ev[i].seq >= provBase {
					check.Failf("sim: provisional event key survived the barrier in shard %d's heap", si)
				}
			}
		}
		sh.log = sh.log[:0]
		sh.provSeq = 0
		sh.resolve = sh.resolve[:0]
		if s.now > pk.now {
			pk.now = s.now
		}
	}
}

// mergeSelect is the retained reference merge: per merged record, a linear
// scan selects the shard whose resolved head key is globally smallest —
// O(total × shards). The loser tree must reproduce its merged order exactly;
// the differential merge tests in merge_test.go replay random windows
// through both.
func (pk *ParKernel) mergeSelect(bound eventKey, total int) {
	shards := pk.shards
	ptr := pk.lt.ptr
	for i := range ptr {
		ptr[i] = 0
	}
	for merged := 0; merged < total; merged++ {
		best := -1
		var bestKey eventKey
		for si, s := range shards {
			sh := s.shard
			if ptr[si] >= len(sh.log) {
				continue
			}
			k, ok := sh.recordKey(&sh.log[ptr[si]])
			if !ok {
				// Unreachable while the shard log order invariant holds;
				// skipping an unresolved head can only stall, caught below.
				continue
			}
			if best < 0 || k.less(bestKey) {
				best, bestKey = si, k
			}
		}
		if best < 0 {
			panic("sim: parallel barrier merge stalled on an unresolved provisional event; shard log order invariant broken")
		}
		sh := shards[best].shard
		pk.applyRecord(sh, &sh.log[ptr[best]], bound)
		ptr[best]++
	}
}

// loserTree is the k-way merge state, kernel-owned and reused across
// windows. Leaves are shard indices (padded to a power of two with
// exhausted sentinels); each internal node remembers the loser of the match
// played there, and node[0] holds the overall winner — so replacing the
// winner's key replays exactly one root-to-leaf path: O(log shards)
// comparisons per merged record.
type loserTree struct {
	m    int        // leaf count: power of two ≥ max(shards, 2)
	node []int32    // node[1..m-1] losers, node[0] the winner (leaf indices)
	key  []eventKey // current resolved head key per leaf
	ptr  []int      // next unmerged record per shard
}

// init sizes the tree for nshards leaves; called once at kernel creation.
func (lt *loserTree) init(nshards int) {
	m := 2
	for m < nshards {
		m *= 2
	}
	lt.m = m
	lt.node = make([]int32, m)
	lt.key = make([]eventKey, m)
	lt.ptr = make([]int, nshards)
}

// leafKey computes leaf si's current key: its shard's resolved head-record
// key, or the sentinel once the log is exhausted. An unresolved head is an
// invariant violation — the merge has stalled.
func (lt *loserTree) leafKey(shards []*Kernel, si int) eventKey {
	sh := shards[si].shard
	if lt.ptr[si] >= len(sh.log) {
		return sentinelKey
	}
	k, ok := sh.recordKey(&sh.log[lt.ptr[si]])
	if !ok {
		panic("sim: parallel barrier merge stalled on an unresolved provisional event; shard log order invariant broken")
	}
	return k
}

// build plays every leaf up the tree: losers stay at the internal nodes,
// and the subtree winner propagates to the parent. Ties go to the lower
// leaf index, matching the reference scan's first-strictly-smaller rule.
func (lt *loserTree) build(n int) int32 {
	if n >= lt.m {
		return int32(n - lt.m)
	}
	a := lt.build(2 * n)
	b := lt.build(2*n + 1)
	if lt.key[b].less(lt.key[a]) {
		lt.node[n] = a
		return b
	}
	lt.node[n] = b
	return a
}

// replay re-runs the matches on leaf w's path to the root after its key
// changed, leaving the new overall winner at node[0].
func (lt *loserTree) replay(w int) {
	winner := int32(w)
	for n := (lt.m + w) / 2; n >= 1; n /= 2 {
		if lt.key[lt.node[n]].less(lt.key[winner]) {
			lt.node[n], winner = winner, lt.node[n]
		}
	}
	lt.node[0] = winner
}

// mergeTree merges the shard logs with the loser tree: O(log shards)
// comparisons per record instead of the reference scan's O(shards).
// Provisional-key resolution folds into replay — a leaf's key is computed
// exactly when its record becomes the merge head, after its inserter (an
// earlier record of the same log) has been applied.
func (pk *ParKernel) mergeTree(bound eventKey, total int) {
	lt := &pk.lt
	shards := pk.shards
	for i := range lt.key {
		if i < len(shards) {
			lt.ptr[i] = 0
			lt.key[i] = lt.leafKey(shards, i)
		} else {
			lt.key[i] = sentinelKey
		}
	}
	lt.node[0] = lt.build(1)
	for merged := 0; merged < total; merged++ {
		w := int(lt.node[0])
		if lt.key[w] == sentinelKey {
			panic("sim: parallel barrier merge stalled on an unresolved provisional event; shard log order invariant broken")
		}
		sh := shards[w].shard
		pk.applyRecord(sh, &sh.log[lt.ptr[w]], bound)
		lt.ptr[w]++
		lt.key[w] = lt.leafKey(shards, w)
		lt.replay(w)
	}
}
