package sim

import "testing"

func TestSpawnAtFutureTime(t *testing.T) {
	k := NewKernel()
	var startedAt Time
	k.SpawnAt(500, "late", func(p *Proc) {
		startedAt = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if startedAt != 500 {
		t.Fatalf("started at %v, want 500", startedAt)
	}
}

func TestStopFromProcess(t *testing.T) {
	k := NewKernel()
	reached := false
	k.Spawn("stopper", func(p *Proc) {
		p.Advance(10)
		k.Stop()
	})
	k.At(1000, func() { reached = true })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("event after Stop ran")
	}
	if k.Now() != 10 {
		t.Fatalf("clock = %v, want 10", k.Now())
	}
}

func TestEventsCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.At(Time(i), func() {})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if k.Events != 5 {
		t.Fatalf("Events = %d, want 5", k.Events)
	}
}

func TestRunResumableAfterDeadline(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(100, func() { fired = append(fired, 100) })
	k.At(300, func() { fired = append(fired, 300) })
	if err := k.Run(200); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("after first window: %v", fired)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 300 {
		t.Fatalf("after second window: %v", fired)
	}
}

func TestProcDoneAndName(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("worker", func(p *Proc) { p.Advance(5) })
	if p.Name() != "worker" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Done() {
		t.Fatal("done before running")
	}
	if p.Kernel() != k {
		t.Fatal("Kernel accessor broken")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("not done after running")
	}
}

func TestSignalStormCoalesces(t *testing.T) {
	k := NewKernel()
	wakeups := 0
	p := k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.WaitSignal()
			wakeups++
		}
	})
	// Many signals at one instant must not queue up individually: the
	// first wakes the sleeper, the rest coalesce into at most one pending
	// hint, so the third WaitSignal blocks until the later signal.
	k.At(10, func() {
		for i := 0; i < 10; i++ {
			p.Signal()
		}
	})
	k.At(20, func() { p.Signal() })
	k.At(30, func() { p.Signal() })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if wakeups != 3 {
		t.Fatalf("wakeups = %d, want 3", wakeups)
	}
}

func TestTwoKernelsIndependent(t *testing.T) {
	// Kernels must not share state: interleaved construction and runs.
	k1, k2 := NewKernel(), NewKernel()
	var t1, t2 Time
	k1.Spawn("a", func(p *Proc) { p.Advance(100); t1 = p.Now() })
	k2.Spawn("b", func(p *Proc) { p.Advance(200); t2 = p.Now() })
	if err := k1.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if t1 != 100 || t2 != 200 {
		t.Fatalf("cross-kernel interference: %v, %v", t1, t2)
	}
	if k1.Now() == k2.Now() {
		t.Fatal("kernels share a clock")
	}
}
