//go:build chantdebug

package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestAdvanceOutsideRunningProcPanics proves the chantdebug context assert:
// advancing another process's clock (only the running process may advance)
// panics instead of corrupting the event order.
func TestAdvanceOutsideRunningProcPanics(t *testing.T) {
	k := NewKernel()
	caught := make(chan any, 1)
	victim := k.Spawn("victim", func(p *Proc) { p.WaitSignal() })
	k.Spawn("attacker", func(p *Proc) {
		defer func() { caught <- recover() }()
		victim.Advance(5)
	})
	k.At(1, func() { victim.Signal() }) // let the victim finish cleanly
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	r := <-caught
	if r == nil || !strings.Contains(fmt.Sprint(r), "only the currently running process") {
		t.Fatalf("cross-proc Advance did not trip the check; recovered %v", r)
	}
}

// TestHeapMonotonicAuditCatchesPastEvent plants a corrupt heap entry behind
// At's guard and proves the kernel's monotonic-time audit refuses to run
// time backwards.
func TestHeapMonotonicAuditCatchesPastEvent(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		// Bypass At's past-event guard, simulating a corrupted heap.
		k.seq++
		k.heap.push(event{at: 5, seq: k.seq, fn: func() {}})
	})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "went backwards") {
			t.Fatalf("backwards event did not trip the audit; recovered %v", r)
		}
	}()
	k.Run(0)
	t.Fatal("Run returned despite a backwards event")
}
