package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"chant/internal/check"
)

// The parallel conservative kernel.
//
// ParKernel partitions processes across several shard Kernels and executes
// them concurrently in bounded-lag windows. The cost model makes this safe:
// every cross-PE interaction crosses the simulated wire with latency at
// least Model.NetBase (alpha), so within a window [T, T+alpha) nothing one
// shard does can take effect on another — a conservative lookahead in the
// Chandy-Misra-Bryant sense, applied to the simulator itself.
//
// The hard requirement is bit-identical replay of the sequential kernel,
// which breaks time ties by *global insertion order* (the seq counter).
// Shards executing concurrently cannot know their global insertion numbers,
// so the kernel reconstructs them:
//
//   - In-window insertions get a provisional key provBase|n from a per-shard
//     counter. provBase exceeds every true sequence number, which is correct
//     locally: an event inserted during the window has a larger true seq
//     than every event that predates the window.
//   - An in-window insertion enters its shard's heap immediately only when
//     it lands inside the window and must still execute in it. Insertions at
//     or past the bound are held in the window log and pushed at the barrier
//     under their true seqs, so the heap never holds a provisional key at a
//     barrier and nothing needs rewriting in place (see merge.go).
//   - Each shard logs the events it executed, in order, with the insertions
//     each one performed. A shard's log order equals the sequential global
//     order restricted to that shard (induction: insertions are performed by
//     executing events, and within one shard provisional counters grow in
//     exactly the order the sequential kernel would have assigned seqs).
//   - At the barrier the controller k-way merges the shard logs by resolved
//     (time, seq) key, assigning true global seqs to every insertion in
//     merged order — reconstructing precisely the sequence the sequential
//     kernel's single seq counter would have produced. A provisional head is
//     always resolvable: its inserter is an earlier record of the same
//     shard's log, hence already merged.
//   - Cross-shard insertions (simnet deliveries) are pushed into the target
//     shard's heap with their true seqs; any such event inside the closing
//     window is a lookahead violation and panics. Journaled side effects
//     (fault-plane event records) replay in merged order.
//
// Controller callbacks (ParKernel.At: the time-0 rendezvous, scheduled
// crashes) run single-threaded between windows; a pending callback's
// (time, seq) key caps the window bound so callbacks interleave with shard
// events exactly as sequentially, even mid-instant.
//
// The execution strategy is adaptive, the results are not: a window whose
// events all live on one shard, or that is predicted tiny, runs inline on
// the controller goroutine instead of paying the work/done fan-out — the
// two strategies execute the same events against the same state, so the
// choice is purely a wall-clock matter.
const provBase uint64 = 1 << 63

// inlineEventThreshold is the inline-window heuristic: when the previous
// window executed fewer than this many events per currently active shard,
// the fan-out's fixed cost (two channel operations plus a goroutine wakeup
// per shard) is predicted to exceed the parallel win and the controller
// runs the window inline. Only wall-clock time depends on the estimate
// being right.
const inlineEventThreshold = 16

// insEntry records one insertion performed by an in-window event.
type insEntry struct {
	tk   *Kernel // destination shard kernel
	at   Time
	prov uint64 // provisional key when the insertion was shard-local, else 0
	// held marks a shard-local insertion landing at or past the window
	// bound: it was kept out of the heap and is pushed at the barrier under
	// its true seq.
	held bool
	fn   func()
	proc *Proc
}

// execRecord logs one event a shard executed during the current window.
type execRecord struct {
	at  Time
	seq uint64 // key the shard executed under: true seq or provisional key
	ins []insEntry
	jrn []func()
}

// shardState is the per-shard window bookkeeping hanging off a shard Kernel.
type shardState struct {
	pk      *ParKernel
	id      int
	active  bool     // true while the shard's worker executes a window
	bound   eventKey // exclusive key bound of the window being executed
	provSeq uint64
	log     []execRecord
	resolve []uint64 // provisional counter (1-based) -> true global seq
}

func (sh *shardState) cur() *execRecord { return &sh.log[len(sh.log)-1] }

// appendRecord extends the window log by one record. Slots freed by a
// previous window's reset keep their ins/jrn backing arrays, so a
// steady-state window reuses them instead of allocating.
func (sh *shardState) appendRecord(at Time, seq uint64) {
	if n := len(sh.log); n < cap(sh.log) {
		sh.log = sh.log[:n+1]
		r := &sh.log[n]
		r.at, r.seq = at, seq
		r.ins = r.ins[:0]
		r.jrn = r.jrn[:0]
		return
	}
	sh.log = append(sh.log, execRecord{at: at, seq: seq})
}

// insertLocal handles an insertion into the shard's own heap.
func (sh *shardState) insertLocal(k *Kernel, t Time, fn func(), p *Proc) {
	if !sh.active {
		// Controller phase: the global order is known immediately.
		k.heap.push(event{at: t, seq: sh.pk.nextSeq(), fn: fn, proc: p})
		return
	}
	sh.provSeq++
	key := provBase | sh.provSeq
	r := sh.cur()
	if t < sh.bound.at {
		// Executes within this window: the heap needs it now, under its
		// provisional key (which orders it correctly against everything the
		// shard can still pop: after every pre-window seq at its instant,
		// and among this window's own insertions in provisional order).
		k.heap.push(event{at: t, seq: key, fn: fn, proc: p})
		r.ins = append(r.ins, insEntry{tk: k, at: t, prov: key, fn: fn, proc: p})
		return
	}
	// Lands at or past the bound, so it cannot execute in this window (when
	// the bound is capped by a controller callback, the callback's seq
	// predates the window and every provisional resolution exceeds it).
	// Hold it out of the heap; the barrier pushes it with its true seq —
	// the targeted alternative to rewriting heap keys in place.
	r.ins = append(r.ins, insEntry{tk: k, at: t, prov: key, held: true, fn: fn, proc: p})
}

// insertRemote handles an insertion aimed at another shard's heap.
func (sh *shardState) insertRemote(tk *Kernel, t Time, fn func(), p *Proc) {
	if !sh.active {
		tk.heap.push(event{at: t, seq: sh.pk.nextSeq(), fn: fn, proc: p})
		return
	}
	r := sh.cur()
	r.ins = append(r.ins, insEntry{tk: tk, at: t, fn: fn, proc: p})
}

// ParKernel drives a set of shard Kernels through bounded-lag windows. It
// implements the same Spawn/At/Run/Now surface as Kernel, so the runtime can
// use either interchangeably.
type ParKernel struct {
	alpha  Duration
	now    Time
	gseq   uint64
	shards []*Kernel
	procs  []*Proc // global spawn order, for the deadlock report
	cbs    eventHeap
	next   int // round-robin spawn cursor

	running bool
	stopped atomic.Bool // latched from any shard; read between windows

	// The worker pool is started lazily by the first fanned-out window and
	// torn down when Run returns; a run whose windows all inline never pays
	// for it.
	work []chan eventKey
	done chan struct{}

	// Window-loop scratch, kernel-owned and reused so a steady-state window
	// allocates nothing.
	active    []int // shard indices with work below the current bound
	lastTotal int   // events the previous window executed (inline heuristic)
	serial    bool  // GOMAXPROCS was 1 at Run: fan-out can never win
	lt        loserTree

	// refMerge forces the retained selection-scan reference merge instead
	// of the loser tree; the differential merge tests flip it.
	refMerge bool

	// Events counts every event dispatched across all shards plus controller
	// callbacks, for diagnostics. Matches the sequential kernel's count.
	Events uint64

	// Windows counts execution windows, for diagnostics.
	Windows uint64

	// InlineWindows counts the windows the controller ran inline on its own
	// goroutine — single-shard or predicted-tiny windows that skip the
	// work/done fan-out and barrier entirely.
	InlineWindows uint64
}

// NewParKernel returns a parallel kernel with nshards shard kernels and the
// given conservative lookahead. alpha must be positive: it is the promise
// that no in-window action affects another shard sooner than alpha, which
// for Chant is the network base latency Model.NetBase.
func NewParKernel(nshards int, alpha Duration) *ParKernel {
	if nshards < 1 {
		panic("sim: NewParKernel needs at least one shard")
	}
	if alpha <= 0 {
		panic("sim: NewParKernel needs a positive lookahead")
	}
	pk := &ParKernel{
		alpha:  alpha,
		shards: make([]*Kernel, nshards),
		active: make([]int, 0, nshards),
	}
	for i := range pk.shards {
		k := NewKernel()
		k.shard = &shardState{pk: pk, id: i}
		pk.shards[i] = k
	}
	pk.lt.init(nshards)
	return pk
}

// Shards reports the number of shard kernels.
func (pk *ParKernel) Shards() int { return len(pk.shards) }

// Now reports the current global virtual time.
func (pk *ParKernel) Now() Time { return pk.now }

// nextSeq allocates the next true global sequence number. Sequence numbers
// start at 1, exactly like the sequential kernel's.
func (pk *ParKernel) nextSeq() uint64 {
	pk.gseq++
	return pk.gseq
}

// Spawn creates a process on the next shard (round-robin), scheduled to
// start at the current virtual time.
func (pk *ParKernel) Spawn(name string, fn func(*Proc)) *Proc {
	return pk.SpawnAt(pk.now, name, fn)
}

// SpawnAt creates a process on the next shard (round-robin), starting at
// virtual time t. Spawning is a controller-phase operation: call it before
// Run or from a controller callback, never from inside a running process.
func (pk *ParKernel) SpawnAt(t Time, name string, fn func(*Proc)) *Proc {
	k := pk.shards[pk.next%len(pk.shards)]
	pk.next++
	p := &Proc{
		k:      k,
		name:   name,
		fn:     fn,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	pk.procs = append(pk.procs, p)
	k.scheduleProc(p, t)
	return p
}

// At schedules a controller callback at virtual time t. Controller callbacks
// run single-threaded between windows, in global (time, seq) order relative
// to every shard event — they are for simulation control (the start
// rendezvous, scheduled crashes), not for per-process work.
func (pk *ParKernel) At(t Time, fn func()) {
	if t < pk.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, pk.now))
	}
	pk.cbs.push(event{at: t, seq: pk.nextSeq(), fn: fn})
}

// Stop halts the run loop at the next window barrier.
func (pk *ParKernel) Stop() { pk.stopped.Store(true) }

// Run executes events until none remain, the deadline passes, or Stop is
// called, mirroring Kernel.Run including its deadline and deadlock
// semantics. A deadline of 0 means no deadline.
func (pk *ParKernel) Run(deadline Time) error {
	if pk.running {
		panic("sim: ParKernel.Run called reentrantly")
	}
	pk.running = true
	pk.stopped.Store(false)
	pk.lastTotal = 0
	// A 1-proc host cannot overlap shard execution, so every window inlines;
	// the read is host configuration, not simulation state — both strategies
	// produce the same event stream bit for bit.
	pk.serial = runtime.GOMAXPROCS(0) == 1
	defer func() {
		pk.running = false
		pk.stopWorkers()
	}()

	for !pk.stopped.Load() {
		// Find the globally earliest pending work: shard events vs
		// controller callbacks.
		have := false
		var min eventKey
		for _, s := range pk.shards {
			if s.heap.Len() == 0 {
				continue
			}
			if k := s.heap.peekKey(); !have || k.less(min) {
				min, have = k, true
			}
		}
		if pk.cbs.Len() > 0 {
			if ck := pk.cbs.peekKey(); !have || ck.less(min) {
				// A controller callback is globally next: run it inline.
				if deadline != 0 && ck.at > deadline {
					pk.now = deadline
					return nil
				}
				e := pk.cbs.pop()
				pk.now = e.at
				pk.Events++
				e.fn()
				continue
			}
		}
		if !have {
			break
		}
		if deadline != 0 && min.at > deadline {
			pk.now = deadline
			return nil
		}

		// The window executes every event with key strictly below bound:
		// the lookahead horizon, capped by the next controller callback
		// (seq and all, so same-instant interleaving matches the sequential
		// kernel) and by the deadline.
		bound := eventKey{at: min.at.Add(pk.alpha)}
		if pk.cbs.Len() > 0 {
			if ck := pk.cbs.peekKey(); ck.less(bound) {
				bound = ck
			}
		}
		if deadline != 0 {
			if dk := (eventKey{at: deadline.Add(1)}); dk.less(bound) {
				bound = dk
			}
		}

		pk.Windows++
		pk.runWindow(bound)
	}
	if pk.stopped.Load() {
		return nil
	}
	for _, p := range pk.procs {
		if p.state != procDone {
			return fmt.Errorf("%w (process %q is %s at %v)", ErrDeadlock, p.name, p.state, pk.now)
		}
	}
	return nil
}

// selectActive collects (into kernel-owned scratch) the shards with pending
// work below bound — the only shards the window can touch, since cross-shard
// effects land at or past the bound by the lookahead promise.
func (pk *ParKernel) selectActive(bound eventKey) []int {
	act := pk.active[:0]
	for i, s := range pk.shards {
		if s.heap.Len() > 0 && s.heap.peekKey().less(bound) {
			act = append(act, i)
		}
	}
	pk.active = act
	return act
}

// runWindow executes one window below bound: selects the shards with
// pending work, runs them inline or fans out to the worker pool, and merges
// at the barrier.
func (pk *ParKernel) runWindow(bound eventKey) {
	act := pk.selectActive(bound)
	if pk.serial || len(act) <= 1 || pk.lastTotal < len(act)*inlineEventThreshold {
		pk.InlineWindows++
		for _, i := range act {
			pk.shards[i].runShardWindow(bound)
		}
	} else {
		pk.dispatch(bound, act)
	}
	pk.merge(bound)
}

// dispatch fans the window out to the worker pool (started on first use)
// and joins the barrier.
func (pk *ParKernel) dispatch(bound eventKey, act []int) {
	if pk.work == nil {
		pk.startWorkers()
	}
	for _, i := range act {
		pk.work[i] <- bound
	}
	for range act {
		<-pk.done
	}
}

// startWorkers launches one persistent worker goroutine per shard. All
// synchronization is strict channel handoff: the controller owns every
// shard's state between windows, a worker owns its shard's state while
// executing one, and the work/done sends order those regimes.
// Nondeterministic interleaving never touches simulation state — divergence
// would trip the differential goldens.
func (pk *ParKernel) startWorkers() {
	pk.work = make([]chan eventKey, len(pk.shards))
	if pk.done == nil {
		pk.done = make(chan struct{}, len(pk.shards))
	}
	for i := range pk.shards {
		pk.work[i] = make(chan eventKey, 1)
		//chant:allow-nondet shard worker pool: strict window handoff over work/done channels, joined at a deterministic barrier
		go pk.worker(i)
	}
}

// stopWorkers tears the worker pool down (if it was ever started).
func (pk *ParKernel) stopWorkers() {
	if pk.work == nil {
		return
	}
	for _, w := range pk.work {
		close(w)
	}
	pk.work = nil
}

// worker executes windows for shard i until the work channel closes.
func (pk *ParKernel) worker(i int) {
	k := pk.shards[i]
	for bound := range pk.work[i] {
		k.runShardWindow(bound)
		pk.done <- struct{}{}
	}
}

// runShardWindow executes this shard's events with key strictly below bound.
// Runs on the shard's worker goroutine (or inline on the controller for
// small windows — the two are interchangeable); the window log it appends to
// is read back by the controller after the barrier.
func (k *Kernel) runShardWindow(bound eventKey) {
	sh := k.shard
	sh.active = true
	sh.bound = bound
	for k.heap.Len() > 0 {
		if !k.heap.peekKey().less(bound) {
			break
		}
		e := k.heap.pop()
		if check.Enabled && e.at < k.now {
			check.Failf("sim: shard %d event heap went backwards: popped event at %v with the clock already at %v", sh.id, e.at, k.now)
		}
		k.now = e.at
		sh.appendRecord(e.at, e.seq)
		if e.fn != nil {
			e.fn()
			continue
		}
		e.proc.run()
	}
	sh.active = false
}
