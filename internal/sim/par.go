package sim

import (
	"fmt"
	"sync/atomic"

	"chant/internal/check"
)

// The parallel conservative kernel.
//
// ParKernel partitions processes across several shard Kernels and executes
// them concurrently in bounded-lag windows. The cost model makes this safe:
// every cross-PE interaction crosses the simulated wire with latency at
// least Model.NetBase (alpha), so within a window [T, T+alpha) nothing one
// shard does can take effect on another — a conservative lookahead in the
// Chandy-Misra-Bryant sense, applied to the simulator itself.
//
// The hard requirement is bit-identical replay of the sequential kernel,
// which breaks time ties by *global insertion order* (the seq counter).
// Shards executing concurrently cannot know their global insertion numbers,
// so the kernel reconstructs them:
//
//   - In-window insertions get a provisional key provBase|n from a per-shard
//     counter. provBase exceeds every true sequence number, which is correct
//     locally: an event inserted during the window has a larger true seq
//     than every event that predates the window.
//   - Each shard logs the events it executed, in order, with the insertions
//     each one performed. A shard's log order equals the sequential global
//     order restricted to that shard (induction: insertions are performed by
//     executing events, and within one shard provisional counters grow in
//     exactly the order the sequential kernel would have assigned seqs).
//   - At the barrier the controller k-way merges the shard logs by resolved
//     (time, seq) key, assigning true global seqs to every insertion in
//     merged order — reconstructing precisely the sequence the sequential
//     kernel's single seq counter would have produced. A provisional head is
//     always resolvable: its inserter is an earlier record of the same
//     shard's log, hence already merged.
//   - Cross-shard insertions (simnet deliveries) are pushed into the target
//     shard's heap with their true seqs; any such event inside the closing
//     window is a lookahead violation and panics. Journaled side effects
//     (fault-plane event records) replay in merged order. Finally the
//     remaining provisional keys in shard heaps are rewritten to their true
//     seqs and the heaps re-heapified.
//
// Controller callbacks (ParKernel.At: the time-0 rendezvous, scheduled
// crashes) run single-threaded between windows; a pending callback's
// (time, seq) key caps the window bound so callbacks interleave with shard
// events exactly as sequentially, even mid-instant.
const provBase uint64 = 1 << 63

// insEntry records one insertion performed by an in-window event.
type insEntry struct {
	tk   *Kernel // destination shard kernel
	at   Time
	prov uint64 // provisional key when the insertion was shard-local, else 0
	fn   func()
	proc *Proc
}

// execRecord logs one event a shard executed during the current window.
type execRecord struct {
	at  Time
	seq uint64 // key the shard executed under: true seq or provisional key
	ins []insEntry
	jrn []func()
}

// shardState is the per-shard window bookkeeping hanging off a shard Kernel.
type shardState struct {
	pk      *ParKernel
	id      int
	active  bool // true while the shard's worker executes a window
	provSeq uint64
	log     []execRecord
	resolve []uint64 // provisional counter (1-based) -> true global seq
}

func (sh *shardState) cur() *execRecord { return &sh.log[len(sh.log)-1] }

// insertLocal handles an insertion into the shard's own heap.
func (sh *shardState) insertLocal(k *Kernel, t Time, fn func(), p *Proc) {
	if !sh.active {
		// Controller phase: the global order is known immediately.
		k.heap.push(event{at: t, seq: sh.pk.nextSeq(), fn: fn, proc: p})
		return
	}
	sh.provSeq++
	key := provBase | sh.provSeq
	k.heap.push(event{at: t, seq: key, fn: fn, proc: p})
	r := sh.cur()
	r.ins = append(r.ins, insEntry{tk: k, at: t, prov: key, fn: fn, proc: p})
}

// insertRemote handles an insertion aimed at another shard's heap.
func (sh *shardState) insertRemote(tk *Kernel, t Time, fn func(), p *Proc) {
	if !sh.active {
		tk.heap.push(event{at: t, seq: sh.pk.nextSeq(), fn: fn, proc: p})
		return
	}
	r := sh.cur()
	r.ins = append(r.ins, insEntry{tk: tk, at: t, fn: fn, proc: p})
}

// ParKernel drives a set of shard Kernels through bounded-lag windows. It
// implements the same Spawn/At/Run/Now surface as Kernel, so the runtime can
// use either interchangeably.
type ParKernel struct {
	alpha  Duration
	now    Time
	gseq   uint64
	shards []*Kernel
	procs  []*Proc // global spawn order, for the deadlock report
	cbs    eventHeap
	next   int // round-robin spawn cursor

	running bool
	stopped atomic.Bool // latched from any shard; read between windows

	work []chan eventKey
	done chan struct{}

	// Events counts every event dispatched across all shards plus controller
	// callbacks, for diagnostics. Matches the sequential kernel's count.
	Events uint64

	// Windows counts barrier-synchronized execution windows, for diagnostics.
	Windows uint64
}

// NewParKernel returns a parallel kernel with nshards shard kernels and the
// given conservative lookahead. alpha must be positive: it is the promise
// that no in-window action affects another shard sooner than alpha, which
// for Chant is the network base latency Model.NetBase.
func NewParKernel(nshards int, alpha Duration) *ParKernel {
	if nshards < 1 {
		panic("sim: NewParKernel needs at least one shard")
	}
	if alpha <= 0 {
		panic("sim: NewParKernel needs a positive lookahead")
	}
	pk := &ParKernel{alpha: alpha, shards: make([]*Kernel, nshards)}
	for i := range pk.shards {
		k := NewKernel()
		k.shard = &shardState{pk: pk, id: i}
		pk.shards[i] = k
	}
	return pk
}

// Shards reports the number of shard kernels.
func (pk *ParKernel) Shards() int { return len(pk.shards) }

// Now reports the current global virtual time.
func (pk *ParKernel) Now() Time { return pk.now }

// nextSeq allocates the next true global sequence number. Sequence numbers
// start at 1, exactly like the sequential kernel's.
func (pk *ParKernel) nextSeq() uint64 {
	pk.gseq++
	return pk.gseq
}

// Spawn creates a process on the next shard (round-robin), scheduled to
// start at the current virtual time.
func (pk *ParKernel) Spawn(name string, fn func(*Proc)) *Proc {
	return pk.SpawnAt(pk.now, name, fn)
}

// SpawnAt creates a process on the next shard (round-robin), starting at
// virtual time t. Spawning is a controller-phase operation: call it before
// Run or from a controller callback, never from inside a running process.
func (pk *ParKernel) SpawnAt(t Time, name string, fn func(*Proc)) *Proc {
	k := pk.shards[pk.next%len(pk.shards)]
	pk.next++
	p := &Proc{
		k:      k,
		name:   name,
		fn:     fn,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	pk.procs = append(pk.procs, p)
	k.scheduleProc(p, t)
	return p
}

// At schedules a controller callback at virtual time t. Controller callbacks
// run single-threaded between windows, in global (time, seq) order relative
// to every shard event — they are for simulation control (the start
// rendezvous, scheduled crashes), not for per-process work.
func (pk *ParKernel) At(t Time, fn func()) {
	if t < pk.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, pk.now))
	}
	pk.cbs.push(event{at: t, seq: pk.nextSeq(), fn: fn})
}

// Stop halts the run loop at the next window barrier.
func (pk *ParKernel) Stop() { pk.stopped.Store(true) }

// Run executes events until none remain, the deadline passes, or Stop is
// called, mirroring Kernel.Run including its deadline and deadlock
// semantics. A deadline of 0 means no deadline.
func (pk *ParKernel) Run(deadline Time) error {
	if pk.running {
		panic("sim: ParKernel.Run called reentrantly")
	}
	pk.running = true
	pk.stopped.Store(false)
	defer func() { pk.running = false }()

	// One persistent worker per shard. All synchronization is strict channel
	// handoff: the controller owns every shard's state between windows, a
	// worker owns its shard's state while executing one, and the work/done
	// sends order those regimes. Nondeterministic interleaving never touches
	// simulation state — divergence would trip the differential goldens.
	pk.work = make([]chan eventKey, len(pk.shards))
	pk.done = make(chan struct{}, len(pk.shards))
	for i := range pk.shards {
		pk.work[i] = make(chan eventKey, 1)
		//chant:allow-nondet shard worker pool: strict window handoff over work/done channels, joined at a deterministic barrier
		go pk.worker(i)
	}
	defer func() {
		for _, w := range pk.work {
			close(w)
		}
	}()

	for !pk.stopped.Load() {
		// Find the globally earliest pending work: shard events vs
		// controller callbacks.
		have := false
		var min eventKey
		for _, s := range pk.shards {
			if s.heap.Len() == 0 {
				continue
			}
			if k := s.heap.peekKey(); !have || k.less(min) {
				min, have = k, true
			}
		}
		if pk.cbs.Len() > 0 {
			if ck := pk.cbs.peekKey(); !have || ck.less(min) {
				// A controller callback is globally next: run it inline.
				if deadline != 0 && ck.at > deadline {
					pk.now = deadline
					return nil
				}
				e := pk.cbs.pop()
				pk.now = e.at
				pk.Events++
				e.fn()
				continue
			}
		}
		if !have {
			break
		}
		if deadline != 0 && min.at > deadline {
			pk.now = deadline
			return nil
		}

		// The window executes every event with key strictly below bound:
		// the lookahead horizon, capped by the next controller callback
		// (seq and all, so same-instant interleaving matches the sequential
		// kernel) and by the deadline.
		bound := eventKey{at: min.at.Add(pk.alpha)}
		if pk.cbs.Len() > 0 {
			if ck := pk.cbs.peekKey(); ck.less(bound) {
				bound = ck
			}
		}
		if deadline != 0 {
			if dk := (eventKey{at: deadline.Add(1)}); dk.less(bound) {
				bound = dk
			}
		}

		pk.Windows++
		for i := range pk.shards {
			pk.work[i] <- bound
		}
		for range pk.shards {
			<-pk.done
		}
		pk.merge(bound)
	}
	if pk.stopped.Load() {
		return nil
	}
	for _, p := range pk.procs {
		if p.state != procDone {
			return fmt.Errorf("%w (process %q is %s at %v)", ErrDeadlock, p.name, p.state, pk.now)
		}
	}
	return nil
}

// worker executes windows for shard i until the work channel closes.
func (pk *ParKernel) worker(i int) {
	k := pk.shards[i]
	for bound := range pk.work[i] {
		k.runShardWindow(bound)
		pk.done <- struct{}{}
	}
}

// runShardWindow executes this shard's events with key strictly below bound.
// Runs on the shard's worker goroutine; the window log it appends to is read
// back by the controller after the barrier.
func (k *Kernel) runShardWindow(bound eventKey) {
	sh := k.shard
	sh.active = true
	for k.heap.Len() > 0 {
		if !k.heap.peekKey().less(bound) {
			break
		}
		e := k.heap.pop()
		if check.Enabled && e.at < k.now {
			check.Failf("sim: shard %d event heap went backwards: popped event at %v with the clock already at %v", sh.id, e.at, k.now)
		}
		k.now = e.at
		sh.log = append(sh.log, execRecord{at: e.at, seq: e.seq})
		if e.fn != nil {
			e.fn()
			continue
		}
		e.proc.run()
	}
	sh.active = false
}

// merge is the window barrier: it k-way merges the shard execution logs into
// the global sequential order, assigns true sequence numbers to every
// in-window insertion in that order, applies cross-shard insertions, replays
// journaled side effects, rewrites provisional heap keys, and advances the
// global clock. Runs single-threaded on the controller.
func (pk *ParKernel) merge(bound eventKey) {
	shards := pk.shards
	ptr := make([]int, len(shards))
	total := 0
	for _, s := range shards {
		total += len(s.shard.log)
	}

	for merged := 0; merged < total; merged++ {
		best := -1
		var bestKey eventKey
		for si, s := range shards {
			sh := s.shard
			if ptr[si] >= len(sh.log) {
				continue
			}
			r := &sh.log[ptr[si]]
			seq := r.seq
			if seq >= provBase {
				n := seq &^ provBase
				if n > uint64(len(sh.resolve)) || sh.resolve[n-1] == 0 {
					// Unreachable: the inserter is an earlier record of this
					// same log, so the head is always resolved. Kept as a
					// defensive guard; skipping an unresolved head can only
					// stall if the invariant is broken, caught below.
					continue
				}
				seq = sh.resolve[n-1]
			}
			k := eventKey{r.at, seq}
			if best < 0 || k.less(bestKey) {
				best, bestKey = si, k
			}
		}
		if best < 0 {
			panic("sim: parallel barrier merge stalled on an unresolved provisional event; shard log order invariant broken")
		}
		sh := shards[best].shard
		r := &sh.log[ptr[best]]
		ptr[best]++
		for i := range r.ins {
			ins := &r.ins[i]
			g := pk.nextSeq()
			if ins.prov != 0 {
				n := ins.prov &^ provBase
				for uint64(len(sh.resolve)) < n {
					sh.resolve = append(sh.resolve, 0)
				}
				sh.resolve[n-1] = g
				continue
			}
			if ins.at < bound.at {
				panic(fmt.Sprintf("sim: lookahead violation: cross-shard event at %v lands inside the window ending at %v; cross-shard effects must pay at least alpha=%v", ins.at, bound.at, pk.alpha))
			}
			ins.tk.heap.push(event{at: ins.at, seq: g, fn: ins.fn, proc: ins.proc})
		}
		for _, fn := range r.jrn {
			fn()
		}
		r.ins, r.jrn = nil, nil
	}
	pk.Events += uint64(total)

	// Rewrite provisional keys left in shard heaps (events inserted this
	// window that execute in a later one) to their true sequence numbers,
	// then restore each heap invariant and reset the window state.
	for _, s := range shards {
		sh := s.shard
		changed := false
		for i := range s.heap.ev {
			if seq := s.heap.ev[i].seq; seq >= provBase {
				n := seq &^ provBase
				if n > uint64(len(sh.resolve)) || sh.resolve[n-1] == 0 {
					panic("sim: provisional event key survived the barrier unresolved")
				}
				s.heap.ev[i].seq = sh.resolve[n-1]
				changed = true
			}
		}
		if changed {
			s.heap.heapify()
		}
		sh.log = sh.log[:0]
		sh.provSeq = 0
		sh.resolve = sh.resolve[:0]
		if s.now > pk.now {
			pk.now = s.now
		}
	}
}
